/**
 * @file
 * Regenerates Table 2: the performance-gap indicators of TCGNN-SpMM
 * on the eight representative matrices — MeanNnzTC after SGT,
 * #IMAD/#HMMA, and TC pipeline utilization (paper Section 3,
 * Observations 2 and 3), measured on the simulated RTX4090 at N=128.
 */
#include <cstdio>

#include "bench_util.h"
#include "formats/sgt.h"

using namespace dtc;
using namespace dtc::bench;

int
main(int argc, char** argv)
{
    (void)BenchArgs::parse(argc, argv);
    const CostModel cm(ArchSpec::rtx4090());

    std::printf("Table 2: measured key indicator values for "
                "TCGNN-SpMM (N=128, %s model)\n\n",
                cm.arch().name.c_str());

    std::vector<int> widths{4, 8, 10, 12, 13};
    printRule(widths);
    printRow(widths, {"Type", "Dataset", "MeanNnzTC", "#IMAD/#HMMA",
                      "TC Pipe Util"});
    printRule(widths);
    for (const auto& [entry, matrix] : table1Matrices()) {
        SgtResult sgt = sgtCondense(matrix);
        PreparedKernel tcgnn(KernelKind::Tcgnn, matrix);
        if (!tcgnn.error().empty()) {
            printRow(widths,
                     {entry.type == MatrixType::TypeI ? "I" : "II",
                      entry.abbr, fmt(sgt.meanNnzTc), "-",
                      tcgnn.error()});
            continue;
        }
        const LaunchResult& r = tcgnn.cost(128, cm);
        printRow(widths,
                 {entry.type == MatrixType::TypeI ? "I" : "II",
                  entry.abbr, fmt(sgt.meanNnzTc),
                  fmt(r.imadPerHmma), fmt(r.tcUtilPct) + "%"});
    }
    printRule(widths);
    std::printf("\nPaper shapes: MeanNnzTC mostly < 27 (SGT alone "
                "under-condenses); #IMAD/#HMMA ~13-15 on Type I and "
                "much larger on Type II (quadratic FetchSparse); TC "
                "pipeline utilization below 8%% everywhere, worst on "
                "Type II.\n");
    return 0;
}
