/**
 * @file
 * Regenerates Table 1: the eight representative matrices with their
 * type, dimensions, NNZ and average row length — paper values side
 * by side with this repository's scaled analogs (DESIGN.md documents
 * the scaling).
 */
#include <cstdio>

#include "bench_util.h"
#include "matrix/stats.h"

using namespace dtc;
using namespace dtc::bench;

int
main(int argc, char** argv)
{
    (void)BenchArgs::parse(argc, argv);
    std::printf("Table 1: representative matrices "
                "(paper values vs scaled analogs)\n\n");

    std::vector<int> widths{4, 12, 7, 9, 11, 8, 9, 11, 8};
    printRule(widths);
    printRow(widths, {"Type", "Name", "Abbr", "paper M&K",
                      "paper NNZ", "paper L", "analog M",
                      "analog NNZ", "analogL"});
    printRule(widths);
    for (const auto& [entry, matrix] : table1Matrices()) {
        MatrixStats s = computeStats(matrix);
        printRow(widths,
                 {entry.type == MatrixType::TypeI ? "I" : "II",
                  entry.name, entry.abbr,
                  std::to_string(entry.paperRows),
                  std::to_string(entry.paperNnz),
                  fmt(entry.paperAvgRowL, 2),
                  std::to_string(s.rows), std::to_string(s.nnz),
                  fmt(s.avgRowLength, 2)});
    }
    printRule(widths);
    std::printf("\nAnalog NNZ is scaled down per DESIGN.md; AvgRowL "
                "regime (Type I: 2-12, Type II: long rows) is "
                "preserved.\n");
    return 0;
}
