/**
 * @file
 * Reproduces the Fig. 8(b) design decision (paper Section 4.4.1):
 * strided-access vs sequential-access thread arrangements for
 * VFetchDense.  Both achieve coalesced 32-byte sectors on the
 * microbenchmarked RTX4090, but sequential access needs a warp
 * transpose (__shfl_sync, 10.7 cycles measured vs HMMA's 16.0) to
 * restore the column-major fragment layout — an online overhead the
 * paper rejects.  This bench quantifies the gap on the simulator.
 */
#include <cstdio>

#include "bench_util.h"
#include "kernels/dtc.h"

using namespace dtc;
using namespace dtc::bench;

int
main(int argc, char** argv)
{
    (void)BenchArgs::parse(argc, argv);
    const CostModel cm(ArchSpec::rtx4090());
    std::printf("Fig. 8(b) ablation: strided vs sequential B fetch "
                "(N=128, shfl latency %.1f cycles, HMMA %.1f)\n\n",
                cm.arch().shflLatencyCycles,
                cm.arch().hmmaLatencyCycles);

    std::vector<int> widths{8, 13, 15, 10};
    printRule(widths);
    printRow(widths, {"Matrix", "strided (ms)", "sequential (ms)",
                      "overhead"});
    printRule(widths);
    for (const auto& [entry, matrix] : table1Matrices()) {
        DtcOptions strided;
        strided.mode = DtcOptions::Mode::Base;
        DtcKernel ks(strided);
        ks.prepare(matrix);

        DtcOptions sequential = strided;
        sequential.sequentialAccess = true;
        DtcKernel kq(sequential);
        kq.prepare(matrix);

        const double ts = ks.cost(128, cm).timeMs;
        const double tq = kq.cost(128, cm).timeMs;
        printRow(widths, {entry.abbr, fmt(ts, 4), fmt(tq, 4),
                          fmt(100.0 * (tq / ts - 1.0), 1) + "%"});
    }
    printRule(widths);
    std::printf("\nThe warp-transpose overhead of sequential access "
                "is pure loss on every matrix, which is why DTC-SpMM "
                "adopts strided access with register remapping "
                "deferred to the C writeback.\n");
    return 0;
}
