/**
 * @file
 * Regenerates Figure 15: the strict-balance study.
 *   (a) Throughput of DTC-SpMM-base vs DTC-SpMM-balanced on reddit
 *       and ddi (the imbalanced Type II matrices) and on YeastH
 *       (balanced Type I, where strict balance only adds overhead),
 *       plus the Selector's decision for each.
 *   (b) Per-SM busy/idle distribution with and without balancing.
 */
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "kernels/dtc.h"
#include "selector/selector.h"

using namespace dtc;
using namespace dtc::bench;

namespace {

void
printSmSpread(const char* label, const LaunchResult& r)
{
    double mn = 1e300, mx = 0.0, sum = 0.0;
    for (double b : r.smBusyCycles) {
        mn = std::min(mn, b);
        mx = std::max(mx, b);
        sum += b;
    }
    const double mean = sum / r.smBusyCycles.size();
    std::printf("    %-22s busy/makespan: min=%.2f mean=%.2f "
                "max=%.2f\n",
                label, mn / r.makespanCycles,
                mean / r.makespanCycles, mx / r.makespanCycles);
}

} // namespace

int
main(int argc, char** argv)
{
    (void)BenchArgs::parse(argc, argv);
    const CostModel cm(ArchSpec::rtx4090());

    std::printf("Figure 15: effectiveness of the strict-balance "
                "design (%s, N=128)\n\n", cm.arch().name.c_str());

    std::vector<int> widths{8, 12, 12, 12, 8, 10};
    printRule(widths);
    printRow(widths, {"Matrix", "base GFLOPS", "bal. GFLOPS",
                      "improvement", "AR", "Selector"});
    printRule(widths);

    std::vector<std::pair<std::string, LaunchResult>> spreads;
    for (const char* abbr : {"reddit", "ddi", "YH"}) {
        const auto& entry = table1ByAbbr(abbr);
        CsrMatrix m = entry.make();

        DtcOptions base_opts;
        base_opts.mode = DtcOptions::Mode::Base;
        DtcKernel base(base_opts);
        base.prepare(m);
        DtcOptions bal_opts;
        bal_opts.mode = DtcOptions::Mode::Balanced;
        DtcKernel bal(bal_opts);
        bal.prepare(m);

        LaunchResult rb = base.cost(128, cm);
        LaunchResult rl = bal.cost(128, cm);
        SelectorDecision d = base.decide(cm.arch());

        printRow(widths,
                 {abbr, fmt(rb.gflops(), 1), fmt(rl.gflops(), 1),
                  fmt(100.0 * (rl.gflops() / rb.gflops() - 1.0), 1) +
                      "%",
                  fmt(d.approximationRatio),
                  d.useBalanced ? "balanced" : "base"});
        spreads.emplace_back(std::string(abbr) + " base", rb);
        spreads.emplace_back(std::string(abbr) + " balanced", rl);
    }
    printRule(widths);

    std::printf("\nPer-SM workload distribution:\n");
    for (const auto& [label, result] : spreads)
        printSmSpread(label.c_str(), result);

    std::printf("\nPaper shapes: strict balance gains ~15.8%% on "
                "reddit and ~54.3%% on ddi, flattens the per-SM "
                "distribution, and is correctly NOT selected for "
                "Type I matrices like YeastH where it only adds "
                "atomics overhead.\n");
    return 0;
}
