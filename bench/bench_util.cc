#include "bench_util.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace dtc {
namespace bench {

BenchArgs
BenchArgs::parse(int argc, char** argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            args.quick = true;
            args.collectionSize = 48;
        } else if (std::strncmp(argv[i], "--collection=", 13) == 0) {
            args.collectionSize = std::atoi(argv[i] + 13);
        }
    }
    return args;
}

void
printRule(const std::vector<int>& widths)
{
    for (int w : widths) {
        std::fputc('+', stdout);
        for (int i = 0; i < w + 2; ++i)
            std::fputc('-', stdout);
    }
    std::fputs("+\n", stdout);
}

void
printRow(const std::vector<int>& widths,
         const std::vector<std::string>& cells)
{
    for (size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell =
            i < cells.size() ? cells[i] : std::string();
        std::printf("| %-*s ", widths[i], cell.c_str());
    }
    std::fputs("|\n", stdout);
}

std::string
fmt(double v, int digits)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(digits);
    os << v;
    return os.str();
}

std::string
fmtX(double v, int digits)
{
    return fmt(v, digits) + "x";
}

double
geomean(const std::vector<double>& values)
{
    double log_sum = 0.0;
    int64_t count = 0;
    for (double v : values) {
        if (v > 0.0) {
            log_sum += std::log(v);
            count++;
        }
    }
    return count > 0 ? std::exp(log_sum / static_cast<double>(count))
                     : 0.0;
}

PreparedKernel::PreparedKernel(KernelKind kind, const CsrMatrix& a)
    : kernelName(kernelKindName(kind)), kernel(makeKernel(kind))
{
    const Refusal r = kernel->prepare(a);
    err = r.reason;
    code = r.code;
}

const LaunchResult&
PreparedKernel::cost(int64_t n, const CostModel& cm)
{
    auto key = std::make_pair(cm.arch().name, n);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache.emplace(key, kernel->cost(n, cm)).first;
    }
    return it->second;
}

const std::vector<std::pair<Table1Entry, CsrMatrix>>&
table1Matrices()
{
    static const auto* matrices = [] {
        auto* v =
            new std::vector<std::pair<Table1Entry, CsrMatrix>>();
        for (const auto& e : table1Entries())
            v->emplace_back(e, e.make());
        return v;
    }();
    return *matrices;
}

} // namespace bench
} // namespace dtc
