/**
 * @file
 * Perf-regression gate CLI: diffs fresh bench/metrics artifacts
 * against checked-in baselines under bench/baselines/.
 *
 *     bench_compare --baseline bench/baselines/BENCH_engine.json \
 *                   --current  BENCH_engine.json \
 *                   [--metrics-baseline bench/baselines/METRICS_smoke.json \
 *                    --metrics-current  METRICS_smoke.json] \
 *                   [--tolerance 0.25] [--wallclock-advisory]
 *
 * Exit codes: 0 = no regressions, 1 = regression (counter mismatch,
 * missing row, or wall-clock outside tolerance unless
 * --wallclock-advisory), 2 = usage / IO / parse error.
 *
 * Deterministic counters (*_b_round_ops, metrics counters, histogram
 * sample counts, matrix shape, reps) must match the baseline exactly;
 * wall-clock fields compare within --tolerance (default ±25% with a
 * 0.05 ms absolute floor).  CI passes --wallclock-advisory so shared
 * runners can't fail the gate on timing noise while counter drift
 * still blocks the merge.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "common/error.h"
#include "obs/bench_compare.h"
#include "obs/json.h"

namespace {

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --baseline FILE --current FILE\n"
        "          [--metrics-baseline FILE --metrics-current FILE]\n"
        "          [--tolerance REL] [--abs-floor-ms MS]\n"
        "          [--wallclock-advisory]\n",
        argv0);
    return 2;
}

/** Parses @p path or reports and returns false. */
bool
load(const std::string& path, dtc::obs::JsonValue* out)
{
    try {
        *out = dtc::obs::json::parseFile(path);
        return true;
    } catch (const dtc::DtcError& e) {
        std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                     e.what());
        return false;
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::string baseline, current, metrics_baseline, metrics_current;
    dtc::obs::compare::Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg == "--baseline" && i + 1 < argc)
            baseline = argv[++i];
        else if (arg == "--current" && i + 1 < argc)
            current = argv[++i];
        else if (arg == "--metrics-baseline" && i + 1 < argc)
            metrics_baseline = argv[++i];
        else if (arg == "--metrics-current" && i + 1 < argc)
            metrics_current = argv[++i];
        else if (arg == "--tolerance" && i + 1 < argc)
            opts.tolerance = std::strtod(argv[++i], nullptr);
        else if (arg == "--abs-floor-ms" && i + 1 < argc)
            opts.absFloorMs = std::strtod(argv[++i], nullptr);
        else if (arg == "--wallclock-advisory")
            opts.wallclockAdvisory = true;
        else
            return usage(argv[0]);
    }
    if (baseline.empty() || current.empty())
        return usage(argv[0]);
    if (metrics_baseline.empty() != metrics_current.empty()) {
        std::fprintf(stderr,
                     "bench_compare: --metrics-baseline and "
                     "--metrics-current go together\n");
        return 2;
    }

    dtc::obs::JsonValue base_doc, cur_doc;
    if (!load(baseline, &base_doc) || !load(current, &cur_doc))
        return 2;

    dtc::obs::compare::Report report;
    try {
        report = dtc::obs::compare::compareEngineBench(base_doc,
                                                       cur_doc, opts);
    } catch (const dtc::DtcError& e) {
        std::fprintf(stderr, "bench_compare: %s\n", e.what());
        return 2;
    }

    if (!metrics_baseline.empty()) {
        dtc::obs::JsonValue mbase, mcur;
        if (!load(metrics_baseline, &mbase) ||
            !load(metrics_current, &mcur))
            return 2;
        try {
            const dtc::obs::compare::Report mreport =
                dtc::obs::compare::compareMetrics(mbase, mcur, opts);
            report.checks += mreport.checks;
            report.failures.insert(report.failures.end(),
                                   mreport.failures.begin(),
                                   mreport.failures.end());
            report.advisories.insert(report.advisories.end(),
                                     mreport.advisories.begin(),
                                     mreport.advisories.end());
        } catch (const dtc::DtcError& e) {
            std::fprintf(stderr, "bench_compare: %s\n", e.what());
            return 2;
        }
    }

    std::printf("%s", report.toString().c_str());
    return report.ok() ? 0 : 1;
}
