/**
 * @file
 * Regenerates Figure 13 — the TCU-Cache-Aware reordering breakdown:
 *   (a) MeanNnzTC after SGT / METIS / Louvain / LSH64 / TCA,
 *   (b) throughput improvement that TCA reordering gives DTC-SpMM
 *       and cuSPARSE-SpMM,
 *   (c) L2 hit rate of LSH64 vs TCA's TCU-only hierarchy vs full
 *       two-hierarchy TCA.
 *
 * The heavy reorderings run on all eight matrices by default; with
 * --quick only the four smallest are used.
 */
#include <cstdio>

#include "bench_util.h"
#include "formats/sgt.h"
#include "reorder/orderings.h"

using namespace dtc;
using namespace dtc::bench;

int
main(int argc, char** argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    const CostModel cm(ArchSpec::rtx4090());

    std::vector<std::pair<Table1Entry, CsrMatrix>> matrices;
    for (const auto& [entry, matrix] : table1Matrices()) {
        if (args.quick && matrix.nnz() > 2500000)
            continue;
        matrices.emplace_back(entry, matrix);
    }

    std::printf("Figure 13(a): MeanNnzTC by reordering method\n\n");
    std::vector<int> widths{8, 8, 8, 9, 8, 10, 8};
    printRule(widths);
    printRow(widths, {"Matrix", "SGT", "METIS", "Louvain", "LSH64",
                      "TCA(TCU)", "TCA"});
    printRule(widths);

    // Cache permutations for parts (b)/(c).
    std::vector<std::vector<int32_t>> tca_perms;
    std::vector<std::vector<int32_t>> tcu_only_perms;
    std::vector<std::vector<int32_t>> lsh64_perms;

    for (const auto& [entry, matrix] : matrices) {
        auto mean = [&](const std::vector<int32_t>& perm) {
            return sgtCondense(matrix.permuteRows(perm)).meanNnzTc;
        };
        auto metis =
            computeReordering(matrix, ReorderMethod::Metis);
        auto louvain =
            computeReordering(matrix, ReorderMethod::Louvain);
        auto lsh64 =
            computeReordering(matrix, ReorderMethod::Lsh64);
        auto tcu =
            computeReordering(matrix, ReorderMethod::TcaTcuOnly);
        auto tca = computeReordering(matrix, ReorderMethod::Tca);

        printRow(widths,
                 {entry.abbr, fmt(sgtCondense(matrix).meanNnzTc),
                  fmt(mean(metis)), fmt(mean(louvain)),
                  fmt(mean(lsh64)), fmt(mean(tcu)),
                  fmt(mean(tca))});

        lsh64_perms.push_back(std::move(lsh64));
        tcu_only_perms.push_back(std::move(tcu));
        tca_perms.push_back(std::move(tca));
    }
    printRule(widths);

    std::printf("\nFigure 13(b): throughput gain from TCA "
                "reordering (N=128)\n\n");
    std::vector<int> widths_b{8, 16, 16};
    printRule(widths_b);
    printRow(widths_b, {"Matrix", "DTC-SpMM gain", "cuSPARSE gain"});
    printRule(widths_b);
    std::vector<double> dtc_gains, cusparse_gains;
    for (size_t i = 0; i < matrices.size(); ++i) {
        const auto& [entry, matrix] = matrices[i];
        CsrMatrix reordered = matrix.permuteRows(tca_perms[i]);

        PreparedKernel dtc_before(KernelKind::Dtc, matrix);
        PreparedKernel dtc_after(KernelKind::Dtc, reordered);
        PreparedKernel cu_before(KernelKind::CuSparse, matrix);
        PreparedKernel cu_after(KernelKind::CuSparse, reordered);

        const double dtc_gain = 100.0 *
            (dtc_before.cost(128, cm).timeMs /
                 dtc_after.cost(128, cm).timeMs - 1.0);
        const double cu_gain = 100.0 *
            (cu_before.cost(128, cm).timeMs /
                 cu_after.cost(128, cm).timeMs - 1.0);
        dtc_gains.push_back(dtc_gain);
        cusparse_gains.push_back(cu_gain);
        printRow(widths_b, {entry.abbr, fmt(dtc_gain, 1) + "%",
                            fmt(cu_gain, 1) + "%"});
    }
    printRule(widths_b);
    double dtc_avg = 0.0, cu_avg = 0.0;
    for (size_t i = 0; i < dtc_gains.size(); ++i) {
        dtc_avg += dtc_gains[i] / dtc_gains.size();
        cu_avg += cusparse_gains[i] / cusparse_gains.size();
    }
    std::printf("average: DTC %+0.1f%%, cuSPARSE %+0.1f%%\n",
                dtc_avg, cu_avg);

    std::printf("\nFigure 13(c): L2 hit rate by reordering "
                "hierarchy (N=128, DTC-SpMM)\n\n");
    std::vector<int> widths_c{8, 10, 13, 10};
    printRule(widths_c);
    printRow(widths_c, {"Matrix", "LSH64", "TCA(TCU-only)", "TCA"});
    printRule(widths_c);
    for (size_t i = 0; i < matrices.size(); ++i) {
        const auto& [entry, matrix] = matrices[i];
        auto hitRate = [&](const std::vector<int32_t>& perm) {
            PreparedKernel k(KernelKind::Dtc,
                             matrix.permuteRows(perm));
            return k.cost(128, cm).l2HitRate * 100.0;
        };
        printRow(widths_c,
                 {entry.abbr, fmt(hitRate(lsh64_perms[i]), 2) + "%",
                  fmt(hitRate(tcu_only_perms[i]), 2) + "%",
                  fmt(hitRate(tca_perms[i]), 2) + "%"});
    }
    printRule(widths_c);
    std::printf("\nPaper shapes: TCA tops every baseline on "
                "MeanNnzTC (1.13x/1.72x over SGT on Type I/II); "
                "reordering helps DTC (~23%% average) more than "
                "cuSPARSE; the Cache-Aware hierarchy recovers the L2 "
                "hit rate that the 16-row limit alone loses vs "
                "LSH64.\n");
    return 0;
}
