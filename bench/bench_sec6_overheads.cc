/**
 * @file
 * Regenerates the Section 6 overhead study on YeastH and protein:
 *
 *   1. Format Conversion Overhead — the simulated GPU-accelerated
 *      CSR -> ME-TCF conversion relative to one SpMM execution
 *      (paper: 1.48x and 14.5x), and relative to TC-GNN's CPU-side
 *      conversion (paper: 101x and 72x faster).
 *   2. Reordering Overhead (optional) — host wall-clock of TCA
 *      (paper: minutes-scale offline step, down from hours).
 *   3. Selector Overhead — host wall-clock of the makespan
 *      simulation relative to one SpMM (paper: 42.0% / 24.8%).
 *
 * The conversion comparison uses the simulator (both sides of the
 * paper's ratio are GPU/CPU kernel times); TCA and Selector are real
 * host wall-clock, as in the paper's methodology.
 */
#include <cstdio>

#include "bench_util.h"
#include "formats/convert_cost.h"
#include "formats/me_tcf.h"
#include "reorder/tca.h"
#include "selector/selector.h"

using namespace dtc;
using namespace dtc::bench;

int
main(int argc, char** argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    const CostModel cm(ArchSpec::rtx4090());

    std::printf("Section 6: overhead study (RTX4090 model)\n\n");
    std::printf("1. Format conversion overhead\n");

    std::vector<int> widths{9, 11, 13, 14, 12, 12};
    printRule(widths);
    printRow(widths, {"Matrix", "SpMM (ms)", "ME-TCF (ms)",
                      "TC-GNN (ms)", "conv/SpMM", "vs TC-GNN"});
    printRule(widths);
    for (const char* abbr : {"YH", "protein"}) {
        const auto& entry = table1ByAbbr(abbr);
        CsrMatrix m = entry.make();

        PreparedKernel dtc(KernelKind::Dtc, m);
        const double spmm_ms = dtc.cost(128, cm).timeMs;
        const double conv_ms = meTcfConversionCost(m, cm).timeMs;
        const double tcgnn_ms = tcgnnCpuConversionMs(m);

        printRow(widths,
                 {abbr, fmt(spmm_ms, 3), fmt(conv_ms, 3),
                  fmt(tcgnn_ms, 1), fmtX(conv_ms / spmm_ms, 2),
                  fmtX(tcgnn_ms / conv_ms, 1)});
    }
    printRule(widths);
    std::printf("(paper: conversion costs 1.48x / 14.5x of one SpMM "
                "and beats TC-GNN's CPU conversion 101x / 72x)\n");

    std::printf("\n2. Reordering overhead (host wall-clock; optional "
                "offline step)\n");
    std::printf("3. Selector overhead (host wall-clock)\n\n");
    std::vector<int> widths2{9, 12, 14, 14};
    printRule(widths2);
    printRow(widths2, {"Matrix", "TCA (ms)", "Selector (ms)",
                       "Sel/SpMM"});
    printRule(widths2);
    for (const char* abbr : {"YH", "protein"}) {
        const auto& entry = table1ByAbbr(abbr);
        CsrMatrix m = entry.make();
        PreparedKernel dtc(KernelKind::Dtc, m);
        const double spmm_ms = dtc.cost(128, cm).timeMs;

        double tca_ms = 0.0;
        if (!args.quick)
            tca_ms = timedMs(1, [&] { tcaReorder(m); });

        MeTcfMatrix me = MeTcfMatrix::build(m);
        const double selector_ms =
            timedMs(1, [&] { selectKernel(me, cm.arch()); });

        printRow(widths2,
                 {abbr, args.quick ? "(skipped)" : fmt(tca_ms, 1),
                  fmt(selector_ms, 3),
                  fmt(100.0 * selector_ms / spmm_ms, 1) + "%"});
    }
    printRule(widths2);
    std::printf("\nAll three overheads amortize over iterative "
                "workloads (thousands of SpMMs on a fixed matrix); "
                "for per-call-varying matrices, lighter systems "
                "(cuSPARSE-class) remain preferable — see the tuner "
                "module, which makes exactly that call.\n");
    return 0;
}
