/**
 * @file
 * Regenerates Figure 12: DTC-SpMM's speedup over the structured-
 * sparsity tensor-core baselines — Block-SpMM with BELL block sizes
 * 32 and 64, and VectorSparse with CVSE vector lengths 4 and 8 — on
 * the 8 representative matrices at N=128, including the OOM
 * behaviour of BELL padding on large matrices.
 */
#include <cstdio>

#include "bench_util.h"

using namespace dtc;
using namespace dtc::bench;

int
main(int argc, char** argv)
{
    (void)BenchArgs::parse(argc, argv);
    const CostModel cm(ArchSpec::rtx4090());

    std::printf("Figure 12: DTC-SpMM speedup over Block-SpMM and "
                "VectorSparse (%s, N=128)\n\n",
                cm.arch().name.c_str());

    const KernelKind kinds[] = {
        KernelKind::BlockSpmm32,
        KernelKind::BlockSpmm64,
        KernelKind::VectorSparse4,
        KernelKind::VectorSparse8,
    };

    std::vector<int> widths{8, 14, 14, 16, 16};
    printRule(widths);
    printRow(widths, {"Matrix", "BELL(b=32)", "BELL(b=64)",
                      "VectorSparse(4)", "VectorSparse(8)"});
    printRule(widths);
    for (const auto& [entry, matrix] : table1Matrices()) {
        PreparedKernel dtc(KernelKind::Dtc, matrix);
        const double t_dtc = dtc.cost(128, cm).timeMs;
        std::vector<std::string> row{entry.abbr};
        for (KernelKind kind : kinds) {
            PreparedKernel k(kind, matrix);
            if (!k.error().empty()) {
                row.push_back("OOM");
                continue;
            }
            row.push_back(
                fmtX(k.cost(128, cm).timeMs / t_dtc));
        }
        printRow(widths, row);
    }
    printRule(widths);
    std::printf("\nPaper shapes: DTC wins 1.14x-23.51x over "
                "Block-SpMM and 1.89x-4.95x over VectorSparse; BELL "
                "padding OOMs on large scattered matrices.\n");
    return 0;
}
