/**
 * @file
 * Shared helpers for the per-table/per-figure benchmark binaries:
 * fixed-width table printing, geometric means, kernel runners with
 * prepared-format caching, and a --quick flag for abbreviated runs.
 */
#ifndef DTC_BENCH_BENCH_UTIL_H
#define DTC_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "datasets/table1.h"
#include "gpusim/cost_model.h"
#include "kernels/kernel.h"
#include "matrix/csr.h"
#include "obs/trace.h"

namespace dtc {
namespace bench {

/**
 * Wall-clock of @p reps calls of @p fn in milliseconds, on the
 * observability clock (obs::monotonicNowUs) — the one shared timing
 * helper for the bench binaries, replacing per-binary chrono code.
 */
template <typename F>
double
timedMs(int reps, F&& fn)
{
    const double t0 = obs::monotonicNowUs();
    for (int i = 0; i < reps; ++i)
        fn();
    return (obs::monotonicNowUs() - t0) / 1e3;
}

/** Parses shared CLI flags (--quick, --collection=N). */
struct BenchArgs
{
    bool quick = false;
    int collectionSize = 414;

    static BenchArgs parse(int argc, char** argv);
};

/** Prints a horizontal rule sized to the current table. */
void printRule(const std::vector<int>& widths);

/** Prints one row with the given column widths (left-justified). */
void printRow(const std::vector<int>& widths,
              const std::vector<std::string>& cells);

/** Formats a double with @p digits decimals. */
std::string fmt(double v, int digits = 2);

/** Formats "1.23x" speedups. */
std::string fmtX(double v, int digits = 2);

/** Geometric mean of positive values (ignores non-positive). */
double geomean(const std::vector<double>& values);

/**
 * A prepared kernel bound to one matrix, with cost results cached
 * per (arch, n).
 */
class PreparedKernel
{
  public:
    PreparedKernel(KernelKind kind, const CsrMatrix& a);

    /** Empty when prepare() succeeded. */
    const std::string& error() const { return err; }
    /** Taxonomy code of the refusal (meaningless when error() is empty). */
    ErrorCode errorCode() const { return code; }
    const std::string& name() const { return kernelName; }

    /** Simulated launch (cached). */
    const LaunchResult& cost(int64_t n, const CostModel& cm);

  private:
    std::string kernelName;
    std::string err;
    ErrorCode code = ErrorCode::Internal;
    std::unique_ptr<SpmmKernel> kernel;
    std::map<std::pair<std::string, int64_t>, LaunchResult> cache;
};

/** Builds all Table-1 analogs once (they are deterministic). */
const std::vector<std::pair<Table1Entry, CsrMatrix>>&
table1Matrices();

} // namespace bench
} // namespace dtc

#endif // DTC_BENCH_BENCH_UTIL_H
