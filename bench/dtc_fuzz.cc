/**
 * @file
 * dtc_fuzz — the conformance & fuzzing driver.
 *
 * Modes (see src/testing/fuzz.h for the campaign semantics):
 *
 *   dtc_fuzz --smoke
 *       Bounded, deterministic sweep: every structure family x fixed
 *       seeds through the full differential oracle (all kernels x
 *       precisions x engine on/off x thread counts), the metamorphic
 *       property sweep, and the fault-injection sweep.  The ctest /
 *       CI entry point; exits nonzero on any failure.
 *
 *   dtc_fuzz --minutes N [--seed S]
 *       Timed campaign with fresh seeds until the budget expires
 *       (the CI nightly).  Failures are shrunk and dumped under
 *       --corpus-out for upload.
 *
 *   dtc_fuzz --replay DIR
 *       Re-judges every .case artifact in DIR (the checked-in
 *       regression corpus): each must now pass the oracle.
 *
 *   dtc_fuzz --serve-soak [--rounds N]
 *       Serving-layer soak: randomized concurrent clients against
 *       the multi-tenant SpmmService (shared matrix pool, random
 *       precisions/deadlines/queue sizes, occasional armed fault).
 *       Every request must end typed or verified-correct.  CI runs
 *       this leg under ThreadSanitizer.
 */
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "testing/fuzz.h"

namespace {

int
usage(const char* argv0)
{
    std::cerr
        << "usage: " << argv0 << " MODE [options]\n"
        << "modes:\n"
        << "  --smoke            bounded deterministic sweep (CI gate)\n"
        << "  --soak [--rounds N] resilience soak: runtime under randomized\n"
        << "                     deadlines + fault sweep (CI gate)\n"
        << "  --serve-soak [--rounds N] serving-layer soak: concurrent\n"
        << "                     clients against SpmmService (TSan leg)\n"
        << "  --minutes N        timed fuzzing campaign\n"
        << "  --replay DIR       re-judge checked-in corpus artifacts\n"
        << "options:\n"
        << "  --seed S           base seed for --minutes/--soak\n"
        << "  --rounds N         scenarios for --soak (default 64)\n"
        << "  --scale K          generator scale 0..2 (default 0 smoke, 1 timed)\n"
        << "  --width N          dense operand width (default 16)\n"
        << "  --corpus-out DIR   dump shrunk failure artifacts here\n"
        << "  --quiet            suppress per-case progress lines\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace dtc::testing;

    enum class Mode
    {
        None,
        Smoke,
        Soak,
        ServeSoak,
        Timed,
        Replay,
    };
    Mode mode = Mode::None;
    double minutes = 0.0;
    std::string replay_dir;
    std::string corpus_out;
    uint64_t base_seed = 1000;
    bool seed_given = false;
    int64_t rounds = 64;
    int scale = -1;
    int64_t width = 16;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char* what) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs " << what << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--smoke") {
            mode = Mode::Smoke;
        } else if (arg == "--soak") {
            mode = Mode::Soak;
        } else if (arg == "--serve-soak") {
            mode = Mode::ServeSoak;
        } else if (arg == "--rounds") {
            rounds = std::stoll(next("a count"));
        } else if (arg == "--minutes") {
            mode = Mode::Timed;
            minutes = std::stod(next("a duration"));
        } else if (arg == "--replay") {
            mode = Mode::Replay;
            replay_dir = next("a directory");
        } else if (arg == "--seed") {
            base_seed = std::stoull(next("a seed"));
            seed_given = true;
        } else if (arg == "--scale") {
            scale = std::stoi(next("a scale"));
        } else if (arg == "--width") {
            width = std::stoll(next("a width"));
        } else if (arg == "--corpus-out") {
            corpus_out = next("a directory");
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (mode == Mode::None)
        return usage(argv[0]);

    try {
        FuzzOptions opt;
        opt.denseWidth = width;
        opt.log = quiet ? nullptr : &std::cout;
        if (!corpus_out.empty()) {
            std::filesystem::create_directories(corpus_out);
            opt.corpusDir = corpus_out;
        }

        FuzzStats stats;
        switch (mode) {
          case Mode::Smoke:
            opt.scale = scale < 0 ? 0 : scale;
            opt.seeds = {1, 2};
            stats = runSmokeCampaign(opt);
            break;
          case Mode::Soak:
            opt.scale = scale < 0 ? 0 : scale;
            stats = runSoakCampaign(opt, rounds,
                                    seed_given ? base_seed : 5000);
            break;
          case Mode::ServeSoak:
            opt.scale = scale < 0 ? 0 : scale;
            stats = runServeSoakCampaign(
                opt, rounds, seed_given ? base_seed : 7000);
            break;
          case Mode::Timed:
            opt.scale = scale < 0 ? 1 : scale;
            stats = runTimedCampaign(opt, minutes, base_seed);
            break;
          case Mode::Replay:
            stats = replayCorpus(replay_dir,
                                 quiet ? nullptr : &std::cout);
            break;
          case Mode::None:
            return 2;
        }

        std::cout << "dtc_fuzz: " << stats.summary() << "\n";
        for (const std::string& line : stats.failureLines)
            std::cout << "  FAIL " << line << "\n";
        return stats.ok() ? 0 : 1;
    } catch (const std::exception& e) {
        std::cerr << "dtc_fuzz: fatal: " << e.what() << "\n";
        return 1;
    }
}
