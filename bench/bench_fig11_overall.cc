/**
 * @file
 * Regenerates Figure 11: overall performance on the simulated
 * RTX4090.
 *   (a) Speedups over cuSPARSE-SpMM on the 8 representative matrices
 *       (average over N = 128/256/512) for TCGNN-SpMM, Sputnik,
 *       SparseTIR and DTC-SpMM.
 *   (b) GFLOPS across the 414-matrix SuiteSparse-like collection
 *       (N=128) with geometric-mean speedups (the "SuiteSparse*"
 *       column of the figure).
 *
 * Flags: --quick (48-matrix collection), --collection=N.
 */
#include <cstdio>

#include "bench_util.h"
#include "datasets/collection.h"

using namespace dtc;
using namespace dtc::bench;

namespace {

const KernelKind kKernels[] = {
    KernelKind::Tcgnn,
    KernelKind::Sputnik,
    KernelKind::SparseTir,
    KernelKind::Dtc,
};

} // namespace

int
main(int argc, char** argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    const CostModel cm(ArchSpec::rtx4090());
    const int64_t widthsN[] = {128, 256, 512};

    std::printf("Figure 11(a): speedup over cuSPARSE-SpMM on the 8 "
                "representative matrices (%s, avg over N=128/256/512)"
                "\n\n", cm.arch().name.c_str());

    std::vector<int> widths{8, 12, 12, 12, 12};
    printRule(widths);
    printRow(widths, {"Matrix", "TCGNN", "Sputnik", "SparseTIR",
                      "DTC-SpMM"});
    printRule(widths);
    for (const auto& [entry, matrix] : table1Matrices()) {
        PreparedKernel cusparse(KernelKind::CuSparse, matrix);
        std::vector<std::string> row{entry.abbr};
        for (KernelKind kind : kKernels) {
            PreparedKernel k(kind, matrix);
            if (!k.error().empty()) {
                row.push_back("n/a");
                continue;
            }
            std::vector<double> speedups;
            for (int64_t n : widthsN) {
                speedups.push_back(cusparse.cost(n, cm).timeMs /
                                   k.cost(n, cm).timeMs);
            }
            row.push_back(fmtX(geomean(speedups)));
        }
        printRow(widths, row);
    }
    printRule(widths);

    std::printf("\nFigure 11(b): %d-matrix collection sweep (N=128), "
                "GFLOPS and geomean speedup of DTC-SpMM\n\n",
                args.collectionSize);

    std::vector<double> su_cusparse, su_tcgnn, su_sputnik,
        su_sparsetir;
    std::vector<double> gflops_dtc;
    int printed = 0;
    auto entries = makeCollection(args.collectionSize);
    for (const auto& e : entries) {
        CsrMatrix m = e.make();
        PreparedKernel dtc(KernelKind::Dtc, m);
        PreparedKernel cusparse(KernelKind::CuSparse, m);
        PreparedKernel tcgnn(KernelKind::Tcgnn, m);
        PreparedKernel sputnik(KernelKind::Sputnik, m);
        PreparedKernel sparsetir(KernelKind::SparseTir, m);

        const double t_dtc = dtc.cost(128, cm).timeMs;
        gflops_dtc.push_back(dtc.cost(128, cm).gflops());
        su_cusparse.push_back(cusparse.cost(128, cm).timeMs / t_dtc);
        if (tcgnn.error().empty())
            su_tcgnn.push_back(tcgnn.cost(128, cm).timeMs / t_dtc);
        if (sputnik.error().empty())
            su_sputnik.push_back(sputnik.cost(128, cm).timeMs /
                                 t_dtc);
        su_sparsetir.push_back(sparsetir.cost(128, cm).timeMs /
                               t_dtc);

        if (printed < 10) {
            std::printf("  %-22s n=%-7ld nnz=%-8ld DTC=%.1f GFLOPS "
                        "(%.2fx vs cuSPARSE)\n",
                        e.name.c_str(), (long)m.rows(),
                        (long)m.nnz(), gflops_dtc.back(),
                        su_cusparse.back());
            printed++;
        }
    }
    std::printf("  ... (%zu matrices total)\n\n", entries.size());

    std::printf("SuiteSparse*: geomean speedup of DTC-SpMM over\n");
    std::printf("  cuSPARSE-SpMM : %s\n",
                fmtX(geomean(su_cusparse)).c_str());
    std::printf("  TCGNN-SpMM    : %s\n",
                fmtX(geomean(su_tcgnn)).c_str());
    std::printf("  Sputnik       : %s\n",
                fmtX(geomean(su_sputnik)).c_str());
    std::printf("  SparseTIR     : %s\n",
                fmtX(geomean(su_sparsetir)).c_str());
    std::printf("\nPaper shapes (RTX4090): DTC geomean ~2.16x over "
                "cuSPARSE, ~3.25x over TCGNN, ~1.57x over SparseTIR, "
                "~1.46x over Sputnik; larger wins on Type II.\n");
    return 0;
}
