/**
 * @file
 * Regenerates Figure 3: relative execution vs idle time of every SM
 * when TCGNN-SpMM runs YeastH (mild imbalance) and ddi (severe
 * imbalance) on the simulated 128-SM RTX4090.  Prints an ASCII bar
 * per group of SMs plus summary statistics.
 */
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace dtc;
using namespace dtc::bench;

namespace {

void
plotSmUtilization(const LaunchResult& r)
{
    const int num_sms = static_cast<int>(r.smBusyCycles.size());
    double busy_sum = 0.0, busy_min = 1e300, busy_max = 0.0;
    for (double b : r.smBusyCycles) {
        busy_sum += b;
        busy_min = std::min(busy_min, b);
        busy_max = std::max(busy_max, b);
    }
    const double mean = busy_sum / num_sms;

    std::printf("  makespan=%.3f ms  SM busy fraction: mean=%.2f "
                "min=%.2f max=%.2f\n",
                r.timeMs, mean / r.makespanCycles,
                busy_min / r.makespanCycles,
                busy_max / r.makespanCycles);
    // One bar per 4 SMs (32 bars for 128 SMs), '#' = busy fraction.
    std::printf("  per-SM busy (each row = 4 SMs, bar = relative "
                "execution time; blank = idle):\n");
    for (int base = 0; base < num_sms; base += 4) {
        double avg = 0.0;
        int count = 0;
        for (int i = base; i < std::min(base + 4, num_sms); ++i) {
            avg += r.smBusyCycles[i];
            count++;
        }
        avg /= count;
        const int bars = static_cast<int>(
            50.0 * avg / std::max(r.makespanCycles, 1.0));
        std::printf("  SM%3d-%3d |", base,
                    std::min(base + 3, num_sms - 1));
        for (int i = 0; i < bars; ++i)
            std::fputc('#', stdout);
        for (int i = bars; i < 50; ++i)
            std::fputc(' ', stdout);
        std::printf("|\n");
    }
}

} // namespace

int
main(int argc, char** argv)
{
    (void)BenchArgs::parse(argc, argv);
    const CostModel cm(ArchSpec::rtx4090());

    std::printf("Figure 3: per-SM execution/idle time of TCGNN-SpMM "
                "on %s (N=128)\n", cm.arch().name.c_str());
    for (const char* abbr : {"YH", "ddi"}) {
        const auto& entry = table1ByAbbr(abbr);
        CsrMatrix m = entry.make();
        PreparedKernel tcgnn(KernelKind::Tcgnn, m);
        std::printf("\n%s (%s):\n", entry.name.c_str(), abbr);
        plotSmUtilization(tcgnn.cost(128, cm));
    }
    std::printf("\nPaper shape: many idle SMs on ddi (few, huge row "
                "windows), far milder on YeastH.\n");
    return 0;
}
