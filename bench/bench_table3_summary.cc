/**
 * @file
 * Regenerates Table 3: the distribution of DTC-SpMM's speedup over
 * each baseline across the SuiteSparse-like collection, bucketed as
 * the paper does (>1.5x, 1.0-1.5x, 0.9-1.0x, 0.5-0.9x), plus the
 * geometric means, on both simulated GPUs.
 *
 * Flags: --quick (48 matrices), --collection=N.
 */
#include <cstdio>

#include "bench_util.h"
#include "datasets/collection.h"

using namespace dtc;
using namespace dtc::bench;

namespace {

struct Buckets
{
    int over15 = 0;
    int b10to15 = 0;
    int b09to10 = 0;
    int b05to09 = 0;
    int below05 = 0;
    std::vector<double> values;

    void
    add(double speedup)
    {
        values.push_back(speedup);
        if (speedup > 1.5)
            over15++;
        else if (speedup >= 1.0)
            b10to15++;
        else if (speedup >= 0.9)
            b09to10++;
        else if (speedup >= 0.5)
            b05to09++;
        else
            below05++;
    }

    std::string
    pct(int count) const
    {
        return fmt(100.0 * count /
                       std::max<size_t>(1, values.size()),
                   2) + "%";
    }
};

} // namespace

int
main(int argc, char** argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    auto entries = makeCollection(args.collectionSize);

    std::printf("Table 3: DTC-SpMM speedup distribution over %zu "
                "collection matrices (N=128)\n", entries.size());

    for (const ArchSpec& arch :
         {ArchSpec::rtx4090(), ArchSpec::rtx3090()}) {
        const CostModel cm(arch);
        Buckets vs_cusparse, vs_tcgnn, vs_sparsetir, vs_sputnik;
        for (const auto& e : entries) {
            CsrMatrix m = e.make();
            PreparedKernel dtc(KernelKind::Dtc, m);
            const double t = dtc.cost(128, cm).timeMs;

            PreparedKernel cusparse(KernelKind::CuSparse, m);
            vs_cusparse.add(cusparse.cost(128, cm).timeMs / t);
            PreparedKernel tcgnn(KernelKind::Tcgnn, m);
            if (tcgnn.error().empty())
                vs_tcgnn.add(tcgnn.cost(128, cm).timeMs / t);
            PreparedKernel sparsetir(KernelKind::SparseTir, m);
            vs_sparsetir.add(sparsetir.cost(128, cm).timeMs / t);
            PreparedKernel sputnik(KernelKind::Sputnik, m);
            if (sputnik.error().empty())
                vs_sputnik.add(sputnik.cost(128, cm).timeMs / t);
        }

        std::printf("\n%s:\n", arch.name.c_str());
        std::vector<int> widths{16, 11, 9, 12, 9};
        printRule(widths);
        printRow(widths, {"speedup", "vs cuSPARSE", "vs TCGNN",
                          "vs SparseTIR", "vs Sputnik"});
        printRule(widths);
        auto bucketRow = [&](const char* label, auto getter) {
            printRow(widths, {label, getter(vs_cusparse),
                              getter(vs_tcgnn),
                              getter(vs_sparsetir),
                              getter(vs_sputnik)});
        };
        bucketRow(">1.5x", [](const Buckets& b) {
            return b.pct(b.over15);
        });
        bucketRow("1.0-1.5x", [](const Buckets& b) {
            return b.pct(b.b10to15);
        });
        bucketRow("0.9-1.0x", [](const Buckets& b) {
            return b.pct(b.b09to10);
        });
        bucketRow("0.5-0.9x", [](const Buckets& b) {
            return b.pct(b.b05to09);
        });
        bucketRow("<0.5x", [](const Buckets& b) {
            return b.pct(b.below05);
        });
        bucketRow("Geomean speedup", [](const Buckets& b) {
            return fmtX(geomean(b.values));
        });
        printRule(widths);
    }
    std::printf("\nPaper shapes: RTX4090 geomeans 2.16x / 3.25x / "
                "1.57x / 1.46x; RTX3090 slightly lower (1.98x / "
                "3.25x / 1.48x / 1.29x) with a larger slow-down "
                "tail.\n");
    return 0;
}
