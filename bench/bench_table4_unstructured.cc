/**
 * @file
 * Regenerates Table 4: execution time of Flash-LLM (v1/v2), SparTA
 * and DTC-SpMM at N=128 on the simulated RTX4090 across all eight
 * matrices — including Flash-LLM's dense-staging OOM on the large
 * Type I matrices and SparTA's dimension-limit "Not Supported"
 * refusals, exactly as the paper reports.
 */
#include <cstdio>

#include "bench_util.h"

using namespace dtc;
using namespace dtc::bench;

int
main(int argc, char** argv)
{
    (void)BenchArgs::parse(argc, argv);
    const CostModel cm(ArchSpec::rtx4090());

    std::printf("Table 4: execution time at N=128 on %s (unit: ms)\n\n",
                cm.arch().name.c_str());

    std::vector<int> widths{8, 14, 14, 15, 10};
    printRule(widths);
    printRow(widths, {"Dataset", "Flash-LLM(v1)", "Flash-LLM(v2)",
                      "SparTA", "Ours"});
    printRule(widths);
    for (const auto& [entry, matrix] : table1Matrices()) {
        PreparedKernel dtc(KernelKind::Dtc, matrix);
        std::vector<std::string> row{entry.abbr};
        for (KernelKind kind : {KernelKind::FlashLlmV1,
                                KernelKind::FlashLlmV2,
                                KernelKind::SparTA}) {
            PreparedKernel k(kind, matrix);
            if (!k.error().empty()) {
                // The cell label follows the refusal taxonomy, not
                // the kernel identity: budget refusals print as the
                // paper's "OOM", capability refusals as its
                // "Not Supported".
                row.push_back(
                    k.errorCode() == ErrorCode::ResourceExhausted
                        ? "OOM"
                        : "Not Supported");
            } else {
                row.push_back(fmt(k.cost(128, cm).timeMs, 3));
            }
        }
        row.push_back(fmt(dtc.cost(128, cm).timeMs, 3));
        printRow(widths, row);
    }
    printRule(widths);
    std::printf("\nPaper shapes: Flash-LLM runs only on "
                "ddi/protein/reddit (OOM elsewhere) and trails DTC "
                "by >8x on the large Type II matrices while staying "
                "near parity on dense little ddi; SparTA only "
                "supports ddi (dimension limit) and is competitive "
                "there.\n");
    return 0;
}
