/**
 * @file
 * Host-side microbenchmarks (google-benchmark): throughput of the
 * preprocessing stages a deployment actually runs on the CPU/GPU —
 * SGT condensation, ME-TCF/TCF conversion, MinHash signatures, the
 * L2 model, and the thread-block scheduler.  These are real
 * wall-clock numbers (unlike the simulated kernel results).
 */
#include <benchmark/benchmark.h>

#include "common/fault.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "kernels/reference.h"
#include "matrix/dense.h"
#include "datasets/generators.h"
#include "formats/me_tcf.h"
#include "formats/sgt.h"
#include "formats/tcf.h"
#include "gpusim/l2cache.h"
#include "gpusim/scheduler.h"
#include "reorder/minhash.h"
#include "selector/selector.h"

namespace dtc {
namespace {

CsrMatrix&
benchMatrix()
{
    static CsrMatrix m = [] {
        Rng rng(1);
        return genCommunity(16384, 32, 24.0, 0.85, rng);
    }();
    return m;
}

void
BM_SgtCondense(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    for (auto _ : state) {
        SgtResult r = sgtCondense(m);
        benchmark::DoNotOptimize(r.numTcBlocks);
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_SgtCondense);

void
BM_MeTcfBuild(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    for (auto _ : state) {
        MeTcfMatrix t = MeTcfMatrix::build(m);
        benchmark::DoNotOptimize(t.numTcBlocks());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_MeTcfBuild);

void
BM_TcfBuild(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    for (auto _ : state) {
        TcfMatrix t = TcfMatrix::build(m);
        benchmark::DoNotOptimize(t.numTcBlocks());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_TcfBuild);

void
BM_MinhashSignatures(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    const int hashes = static_cast<int>(state.range(0));
    MinHasher hasher(hashes, 42);
    std::vector<uint32_t> sig(static_cast<size_t>(hashes));
    for (auto _ : state) {
        for (int64_t r = 0; r < m.rows(); r += 16) {
            hasher.signature(
                m.colIdx().data() + m.rowPtr()[r],
                m.colIdx().data() + m.rowPtr()[r + 1], sig.data());
        }
        benchmark::DoNotOptimize(sig[0]);
    }
}
BENCHMARK(BM_MinhashSignatures)->Arg(16)->Arg(32);

void
BM_L2CacheAccess(benchmark::State& state)
{
    L2Cache cache(48ll << 20, 16, 512);
    Rng rng(7);
    std::vector<uint64_t> lines(1 << 16);
    for (auto& l : lines)
        l = rng.nextZipf(1 << 18, 1.1);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.accessLine(lines[i++ & (lines.size() - 1)]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2CacheAccess);

void
BM_Scheduler(benchmark::State& state)
{
    Rng rng(9);
    std::vector<double> tbs(static_cast<size_t>(state.range(0)));
    for (auto& t : tbs)
        t = 100.0 + static_cast<double>(rng.nextBounded(1000));
    for (auto _ : state) {
        ScheduleResult r = scheduleThreadBlocks(tbs, 128, 6);
        benchmark::DoNotOptimize(r.makespanCycles);
    }
    state.SetItemsProcessed(state.iterations() * tbs.size());
}
BENCHMARK(BM_Scheduler)->Arg(1024)->Arg(65536);

// ---- threads=1 vs threads=N sweeps of the parallelized hot paths.
// The matrix has >= 100k nnz; results are bitwise identical across
// thread counts (see tests/test_parallel_equivalence.cc), so these
// rows isolate the wall-clock effect of the parallel runtime.

void
BM_SgtCondenseThreads(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    ScopedNumThreads threads(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        SgtResult r = sgtCondense(m);
        benchmark::DoNotOptimize(r.numTcBlocks);
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_SgtCondenseThreads)->Arg(1)->Arg(8);

void
BM_MeTcfBuildThreads(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    ScopedNumThreads threads(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        MeTcfMatrix t = MeTcfMatrix::build(m);
        benchmark::DoNotOptimize(t.numTcBlocks());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_MeTcfBuildThreads)->Arg(1)->Arg(8);

void
BM_ReferenceSpmmThreads(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    static DenseMatrix b = [&] {
        Rng rng(3);
        DenseMatrix d(m.cols(), 32);
        d.fillRandom(rng);
        return d;
    }();
    DenseMatrix c(m.rows(), 32);
    ScopedNumThreads threads(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        referenceSpmm(m, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz() * 32);
}
BENCHMARK(BM_ReferenceSpmmThreads)->Arg(1)->Arg(8);

void
BM_MinhashSignatureBatchThreads(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    MinHasher hasher(32, 42);
    std::vector<uint32_t> sigs(static_cast<size_t>(m.rows()) * 32);
    auto row_set = [&](int64_t r) {
        return std::pair<const int32_t*, const int32_t*>(
            m.colIdx().data() + m.rowPtr()[r],
            m.colIdx().data() + m.rowPtr()[r + 1]);
    };
    ScopedNumThreads threads(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        hasher.signatureBatch(m.rows(), row_set, sigs.data());
        benchmark::DoNotOptimize(sigs[0]);
    }
    state.SetItemsProcessed(state.iterations() * m.rows());
}
BENCHMARK(BM_MinhashSignatureBatchThreads)->Arg(1)->Arg(8);

void
BM_FaultPointDisarmed(benchmark::State& state)
{
    // The cost a DTC_FAULT_POINT adds to a hot path while no fault is
    // armed: one relaxed atomic load and a predicted branch.  This
    // row backs the "zero-cost when disarmed" claim in README.
    fault::disarmAll();
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            DTC_FAULT_POINT("bench.disarmed");
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FaultPointDisarmed);

void
BM_SelectorDecision(benchmark::State& state)
{
    static MeTcfMatrix t = MeTcfMatrix::build(benchMatrix());
    const ArchSpec arch = ArchSpec::rtx4090();
    for (auto _ : state) {
        SelectorDecision d = selectKernel(t, arch);
        benchmark::DoNotOptimize(d.approximationRatio);
    }
}
BENCHMARK(BM_SelectorDecision);

} // namespace
} // namespace dtc

BENCHMARK_MAIN();
