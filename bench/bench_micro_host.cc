/**
 * @file
 * Host-side microbenchmarks (google-benchmark): throughput of the
 * preprocessing stages a deployment actually runs on the CPU/GPU —
 * SGT condensation, ME-TCF/TCF conversion, MinHash signatures, the
 * L2 model, and the thread-block scheduler.  These are real
 * wall-clock numbers (unlike the simulated kernel results).
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/aligned.h"
#include "common/fault.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "engine/prepared_dense.h"
#include "engine/simd/simd.h"
#include "gpusim/cost_model.h"
#include "kernels/kernel.h"
#include "kernels/reference.h"
#include "matrix/dense.h"
#include "datasets/generators.h"
#include "formats/me_tcf.h"
#include "formats/sgt.h"
#include "formats/tcf.h"
#include "gpusim/l2cache.h"
#include "gpusim/scheduler.h"
#include "obs/metrics.h"
#include "reorder/minhash.h"
#include "reorder/tca.h"
#include "runtime/guard.h"
#include "runtime/runtime.h"
#include "selector/selector.h"
#include "tuner/tuner.h"

namespace dtc {
namespace {

CsrMatrix&
benchMatrix()
{
    static CsrMatrix m = [] {
        Rng rng(1);
        return genCommunity(16384, 32, 24.0, 0.85, rng);
    }();
    return m;
}

void
BM_SgtCondense(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    for (auto _ : state) {
        SgtResult r = sgtCondense(m);
        benchmark::DoNotOptimize(r.numTcBlocks);
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_SgtCondense);

void
BM_MeTcfBuild(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    for (auto _ : state) {
        MeTcfMatrix t = MeTcfMatrix::build(m);
        benchmark::DoNotOptimize(t.numTcBlocks());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_MeTcfBuild);

void
BM_TcfBuild(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    for (auto _ : state) {
        TcfMatrix t = TcfMatrix::build(m);
        benchmark::DoNotOptimize(t.numTcBlocks());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_TcfBuild);

void
BM_MinhashSignatures(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    const int hashes = static_cast<int>(state.range(0));
    MinHasher hasher(hashes, 42);
    std::vector<uint32_t> sig(static_cast<size_t>(hashes));
    for (auto _ : state) {
        for (int64_t r = 0; r < m.rows(); r += 16) {
            hasher.signature(
                m.colIdx().data() + m.rowPtr()[r],
                m.colIdx().data() + m.rowPtr()[r + 1], sig.data());
        }
        benchmark::DoNotOptimize(sig[0]);
    }
}
BENCHMARK(BM_MinhashSignatures)->Arg(16)->Arg(32);

void
BM_L2CacheAccess(benchmark::State& state)
{
    L2Cache cache(48ll << 20, 16, 512);
    Rng rng(7);
    std::vector<uint64_t> lines(1 << 16);
    for (auto& l : lines)
        l = rng.nextZipf(1 << 18, 1.1);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.accessLine(lines[i++ & (lines.size() - 1)]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2CacheAccess);

void
BM_Scheduler(benchmark::State& state)
{
    Rng rng(9);
    std::vector<double> tbs(static_cast<size_t>(state.range(0)));
    for (auto& t : tbs)
        t = 100.0 + static_cast<double>(rng.nextBounded(1000));
    for (auto _ : state) {
        ScheduleResult r = scheduleThreadBlocks(tbs, 128, 6);
        benchmark::DoNotOptimize(r.makespanCycles);
    }
    state.SetItemsProcessed(state.iterations() * tbs.size());
}
BENCHMARK(BM_Scheduler)->Arg(1024)->Arg(65536);

// ---- threads=1 vs threads=N sweeps of the parallelized hot paths.
// The matrix has >= 100k nnz; results are bitwise identical across
// thread counts (see tests/test_parallel_equivalence.cc), so these
// rows isolate the wall-clock effect of the parallel runtime.

void
BM_SgtCondenseThreads(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    ScopedNumThreads threads(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        SgtResult r = sgtCondense(m);
        benchmark::DoNotOptimize(r.numTcBlocks);
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_SgtCondenseThreads)->Arg(1)->Arg(8);

void
BM_MeTcfBuildThreads(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    ScopedNumThreads threads(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        MeTcfMatrix t = MeTcfMatrix::build(m);
        benchmark::DoNotOptimize(t.numTcBlocks());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_MeTcfBuildThreads)->Arg(1)->Arg(8);

void
BM_ReferenceSpmmThreads(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    static DenseMatrix b = [&] {
        Rng rng(3);
        DenseMatrix d(m.cols(), 32);
        d.fillRandom(rng);
        return d;
    }();
    DenseMatrix c(m.rows(), 32);
    ScopedNumThreads threads(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        referenceSpmm(m, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz() * 32);
}
BENCHMARK(BM_ReferenceSpmmThreads)->Arg(1)->Arg(8);

void
BM_MinhashSignatureBatchThreads(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    MinHasher hasher(32, 42);
    std::vector<uint32_t> sigs(static_cast<size_t>(m.rows()) * 32);
    auto row_set = [&](int64_t r) {
        return std::pair<const int32_t*, const int32_t*>(
            m.colIdx().data() + m.rowPtr()[r],
            m.colIdx().data() + m.rowPtr()[r + 1]);
    };
    ScopedNumThreads threads(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        hasher.signatureBatch(m.rows(), row_set, sigs.data());
        benchmark::DoNotOptimize(sigs[0]);
    }
    state.SetItemsProcessed(state.iterations() * m.rows());
}
BENCHMARK(BM_MinhashSignatureBatchThreads)->Arg(1)->Arg(8);

void
BM_TraceScopeDisarmed(benchmark::State& state)
{
    // The cost a DTC_TRACE_SCOPE adds to a hot path while tracing is
    // off: one relaxed atomic load and a predicted branch per
    // construction — no clock read, no allocation.  This row backs
    // the "near-zero overhead when disarmed" claim in README, the
    // same way BM_FaultPointDisarmed does for fault points.
    obs::trace::disable();
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            DTC_TRACE_SCOPE("bench.disarmed");
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_TraceScopeDisarmed);

void
BM_FaultPointDisarmed(benchmark::State& state)
{
    // The cost a DTC_FAULT_POINT adds to a hot path while no fault is
    // armed: one relaxed atomic load and a predicted branch.  This
    // row backs the "zero-cost when disarmed" claim in README.
    fault::disarmAll();
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            DTC_FAULT_POINT("bench.disarmed");
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FaultPointDisarmed);

// ---- engine-off vs engine-on sweeps of the host execution engine
// (src/engine/): pre-rounded B panels, column-panel tiling, and flat
// index lanes vs the legacy scalar loops.  Outputs are bitwise
// identical (tests/test_engine_equivalence.cc), so these rows isolate
// the wall-clock effect.  Args: {dense width N, engine on}.

void
BM_DtcComputeEngine(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    static std::unique_ptr<SpmmKernel> kernel = [&] {
        auto k = makeKernel(KernelKind::Dtc);
        k->prepare(m);
        return k;
    }();
    const int64_t n = state.range(0);
    engine::ScopedEngineMode mode(state.range(1) != 0);
    Rng rng(3);
    DenseMatrix b(m.cols(), n);
    b.fillRandom(rng);
    DenseMatrix c(m.rows(), n);
    engine::clearPreparedDenseCache();
    for (auto _ : state) {
        kernel->compute(b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz() * n);
}
BENCHMARK(BM_DtcComputeEngine)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({512, 0})
    ->Args({512, 1});

void
BM_ReferenceTf32Engine(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    const int64_t n = state.range(0);
    engine::ScopedEngineMode mode(state.range(1) != 0);
    Rng rng(3);
    DenseMatrix b(m.cols(), n);
    b.fillRandom(rng);
    DenseMatrix c(m.rows(), n);
    engine::clearPreparedDenseCache();
    for (auto _ : state) {
        referenceSpmmTf32(m, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz() * n);
}
BENCHMARK(BM_ReferenceTf32Engine)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({512, 0})
    ->Args({512, 1});

// ---- SIMD-off vs SIMD-on sweeps of the vector micro-kernel backend
// (src/engine/simd/): the engine stays on in both rows; Arg(1) picks
// Isa::Off (dispatcher bypass, the pre-SIMD inline loops) vs the
// host's detected ISA.  Outputs are bitwise identical
// (tests/test_simd.cc), so these rows isolate the vectorization win.

void
BM_DtcComputeSimd(benchmark::State& state)
{
    const CsrMatrix& m = benchMatrix();
    static std::unique_ptr<SpmmKernel> kernel = [&] {
        auto k = makeKernel(KernelKind::Dtc);
        k->prepare(m);
        return k;
    }();
    const int64_t n = state.range(0);
    engine::ScopedEngineMode mode(true);
    engine::simd::ScopedSimdMode simd(
        state.range(1) != 0 ? engine::simd::detectedIsa()
                            : engine::simd::Isa::Off);
    Rng rng(3);
    DenseMatrix b(m.cols(), n);
    b.fillRandom(rng);
    DenseMatrix c(m.rows(), n);
    engine::clearPreparedDenseCache();
    for (auto _ : state) {
        kernel->compute(b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz() * n);
}
BENCHMARK(BM_DtcComputeSimd)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({512, 0})
    ->Args({512, 1});

void
BM_RoundPanelSimd(benchmark::State& state)
{
    const int64_t n = state.range(0);
    const engine::simd::Kernels& K = engine::simd::kernelsFor(
        state.range(1) != 0 ? engine::simd::detectedIsa()
                            : engine::simd::Isa::Off);
    Rng rng(13);
    AlignedVector<float> in(static_cast<size_t>(n));
    AlignedVector<float> out(static_cast<size_t>(n));
    for (auto& x : in)
        x = rng.nextFloat(-1.0f, 1.0f);
    for (auto _ : state) {
        K.roundPanel(out.data(), in.data(), n, Precision::Tf32);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RoundPanelSimd)
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 1})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1});

void
BM_RuntimeGuardOverhead(benchmark::State& state)
{
    // The online-guard tax on Runtime::run.  Arg(0): guard disabled —
    // the per-run probe is one relaxed atomic load (guard::enabled),
    // so this row should track the bare kernel row.  Arg(1): the
    // default 1% row sample, whose cost is the quantity README's
    // "Resilient runtime" section cites.
    static CsrMatrix m = [] {
        Rng rng(5);
        return genCommunity(4096, 16, 16.0, 0.85, rng);
    }();
    static const CostModel cm(ArchSpec::rtx4090());
    runtime::RuntimeOptions opt;
    opt.guard.sampleFraction = state.range(0) != 0 ? 0.01 : 0.0;
    runtime::Runtime rt(m, cm, std::move(opt));
    Rng rng(3);
    DenseMatrix b(m.cols(), 32);
    b.fillRandom(rng);
    DenseMatrix c(m.rows(), 32);
    for (auto _ : state) {
        rt.run(b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz() * 32);
}
BENCHMARK(BM_RuntimeGuardOverhead)->Arg(0)->Arg(1);

void
BM_SelectorDecision(benchmark::State& state)
{
    static MeTcfMatrix t = MeTcfMatrix::build(benchMatrix());
    const ArchSpec arch = ArchSpec::rtx4090();
    for (auto _ : state) {
        SelectorDecision d = selectKernel(t, arch);
        benchmark::DoNotOptimize(d.approximationRatio);
    }
}
BENCHMARK(BM_SelectorDecision);

} // namespace

// ---- `--smoke` mode: a fast, self-validating engine-vs-scalar
// comparison that writes machine-readable BENCH_engine.json.  Run by
// the `bench_smoke` ctest so the schema and the engine's win on
// rounding work stay checked on every build.

namespace {

struct SmokeRow
{
    const char* kernel;
    int64_t n;
    double offMs;
    double onMs;
    uint64_t legacyBRoundOps; ///< reps * nnz * N (per-use rounding).
    uint64_t engineBRoundOps; ///< measured: K * N once per cache fill.
};

/**
 * Times @p fn engine-off (after one warm-up call) and engine-on (from
 * a cold PreparedDense cache, so the one-time panel rounding is billed
 * to the engine).  Reads the engine counters as before/after deltas
 * instead of resetting them, so the cumulative totals survive into
 * the metrics snapshot this binary writes in --smoke mode.
 */
template <typename F>
SmokeRow
smokeCompare(const char* kernel_name, const CsrMatrix& m, int64_t n,
             int reps, F&& fn)
{
    SmokeRow row;
    row.kernel = kernel_name;
    row.n = n;
    {
        engine::ScopedEngineMode mode(false);
        fn(); // warm-up: touch B/C pages once
        row.offMs = bench::timedMs(reps, fn);
    }
    {
        engine::ScopedEngineMode mode(true);
        engine::clearPreparedDenseCache();
        const uint64_t round0 = engine::stats().roundingOps.load();
        row.onMs = bench::timedMs(reps, fn);
        row.engineBRoundOps =
            engine::stats().roundingOps.load() - round0;
    }
    row.legacyBRoundOps = static_cast<uint64_t>(reps) *
                          static_cast<uint64_t>(m.nnz()) *
                          static_cast<uint64_t>(n);
    return row;
}

/**
 * SIMD-off vs SIMD-on timing in the engine-row shape: the engine is
 * on for both columns; "off" bypasses the vector dispatcher
 * (Isa::Off) and "on" runs the host's detected ISA backend.  The
 * rounding-op columns do not apply; both are 0.
 */
template <typename F>
SmokeRow
simdSmokeCompare(const char* kernel_name, int64_t n, int reps, F&& fn)
{
    SmokeRow row;
    row.kernel = kernel_name;
    row.n = n;
    row.legacyBRoundOps = 0;
    row.engineBRoundOps = 0;
    engine::ScopedEngineMode mode(true);
    {
        engine::simd::ScopedSimdMode simd(engine::simd::Isa::Off);
        engine::clearPreparedDenseCache();
        fn(); // warm-up: touch B/C pages, fill the panel cache
        row.offMs = bench::timedMs(reps, fn);
    }
    {
        engine::simd::ScopedSimdMode simd(
            engine::simd::detectedIsa());
        engine::clearPreparedDenseCache();
        fn();
        row.onMs = bench::timedMs(reps, fn);
    }
    return row;
}

/**
 * Guard-off vs guard-on timing of Runtime::run, reported in the same
 * row shape as the engine rows (off = guard disabled, on = the
 * default 1% sample) so bench_compare gates the guard tax alongside
 * the engine wins.  The rounding-op columns do not apply; both are 0.
 */
SmokeRow
runtimeGuardSmoke(const CsrMatrix& m, int64_t n, int reps)
{
    SmokeRow row;
    row.kernel = "Runtime::run guard_off_on";
    row.n = n;
    row.legacyBRoundOps = 0;
    row.engineBRoundOps = 0;
    const CostModel cm(ArchSpec::rtx4090());
    Rng brng(static_cast<uint64_t>(n) + 1);
    DenseMatrix b(m.cols(), n);
    b.fillRandom(brng);
    DenseMatrix c(m.rows(), n);
    {
        runtime::RuntimeOptions opt;
        opt.guard.sampleFraction = 0.0;
        runtime::Runtime rt(m, cm, std::move(opt));
        rt.run(b, c); // warm-up: prepare the winning kernel
        row.offMs = bench::timedMs(reps, [&] { rt.run(b, c); });
    }
    {
        runtime::RuntimeOptions opt;
        opt.guard.sampleFraction = 0.01;
        runtime::Runtime rt(m, cm, std::move(opt));
        rt.run(b, c);
        row.onMs = bench::timedMs(reps, [&] { rt.run(b, c); });
    }
    return row;
}

/** Minimal structural check of the file runEngineSmoke just wrote. */
bool
validateBenchJson(const std::string& path, size_t expect_rows)
{
    std::ifstream in(path);
    if (!in)
        return false;
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    if (text.find("\"schema\": \"dtc-bench-engine-v1\"") ==
        std::string::npos)
        return false;
    size_t rows = 0;
    for (size_t pos = text.find("\"kernel\":");
         pos != std::string::npos;
         pos = text.find("\"kernel\":", pos + 1))
        rows++;
    if (rows != expect_rows)
        return false;
    for (const char* key : {"\"engine_off_ms\":", "\"engine_on_ms\":",
                            "\"legacy_b_round_ops\":",
                            "\"engine_b_round_ops\":"}) {
        size_t found = 0;
        for (size_t pos = text.find(key); pos != std::string::npos;
             pos = text.find(key, pos + 1)) {
            const double v =
                std::strtod(text.c_str() + pos + std::strlen(key),
                            nullptr);
            if (!(v >= 0.0))
                return false;
            found++;
        }
        if (found != expect_rows)
            return false;
    }
    return true;
}

} // namespace

namespace {

/**
 * Runs each preprocessing phase of the pipeline once over the smoke
 * matrix so the --smoke trace/metrics cover the full span set
 * (sgt.condense, metcf.convert, tca.reorder, tuner.tune,
 * selector.decide) and not only the kernel prepare/compute path.
 */
void
runPipelinePhases(const CsrMatrix& m)
{
    DTC_TRACE_SCOPE("smoke.pipeline");
    const SgtResult sgt = sgtCondense(m);
    const MeTcfMatrix metcf = MeTcfMatrix::build(m);
    TcaParams tca_params;
    tca_params.numHashes = 16; // smoke-sized, still exercises LSH
    const TcaResult tca = tcaReorder(m, tca_params);
    const CostModel cm(ArchSpec::rtx4090());
    TuneRequest req;
    req.denseWidth = 32;
    const TuneResult tuned = tuneSpmm(m, req, cm);
    const SelectorDecision decision =
        selectKernel(metcf, ArchSpec::rtx4090());
    std::printf("smoke: pipeline tc_blocks=%lld clusters=%lld "
                "tuner_best=%s selector_ar=%.3f\n",
                static_cast<long long>(sgt.numTcBlocks),
                static_cast<long long>(tca.numClusters),
                tuned.best().name.c_str(),
                decision.approximationRatio);
}

} // namespace

int
runEngineSmoke(const std::string& out_path,
               const std::string& metrics_path)
{
    // Pin the SIMD backend to the detected ISA for the whole smoke
    // run: the engine.simd.* counter totals in the metrics snapshot
    // must not depend on a DTC_SIMD environment override (the CI
    // DTC_SIMD=off leg runs this binary too), and the definitional
    // 8-wide counter split already makes AVX2 and AVX-512 hosts
    // agree.  The simd_off_on rows below still force Isa::Off
    // locally for their "off" column.
    engine::simd::ScopedSimdMode simd_pin(
        engine::simd::detectedIsa());
    Rng rng(1);
    const CsrMatrix m = genCommunity(4096, 16, 16.0, 0.85, rng);
    runPipelinePhases(m);
    auto dtc_kernel = makeKernel(KernelKind::Dtc);
    if (!dtc_kernel->prepare(m).empty()) {
        std::fprintf(stderr, "smoke: DTC prepare() refused\n");
        return 1;
    }

    const int64_t widths[] = {32, 128, 512};
    const int reps = 3;
    std::vector<SmokeRow> rows;
    for (int64_t n : widths) {
        Rng brng(static_cast<uint64_t>(n));
        DenseMatrix b(m.cols(), n);
        b.fillRandom(brng);
        DenseMatrix c(m.rows(), n);
        rows.push_back(smokeCompare(
            "DtcKernel::compute", m, n, reps,
            [&] { dtc_kernel->compute(b, c); }));
        rows.push_back(smokeCompare(
            "referenceSpmmTf32", m, n, reps,
            [&] { referenceSpmmTf32(m, b, c); }));
    }
    // SIMD rows: engine on in both columns, Isa::Off vs detected.
    // Dense 16x8 blocks on an L2-resident shape give the register-
    // blocked tileInner path something to chew on.  The axpy-bound
    // reference row is load/store-bound (compiler-vectorized Off
    // column already saturates), so the vector win concentrates in
    // tileInner and roundPanel; its row is kept for coverage, not
    // headline speedup.
    {
        Rng srng(2);
        const CsrMatrix md = genBlockDiagonal(1024, 16, 1.0, srng);
        auto dense_kernel = makeKernel(KernelKind::Dtc);
        if (!dense_kernel->prepare(md).empty()) {
            std::fprintf(stderr,
                         "smoke: DTC prepare() refused dense blocks\n");
            return 1;
        }
        Rng brng(128);
        DenseMatrix b(md.cols(), 128);
        b.fillRandom(brng);
        DenseMatrix c(md.rows(), 128);
        const int simd_reps = 30;
        rows.push_back(simdSmokeCompare(
            "DtcKernel::compute simd_off_on", 128, simd_reps,
            [&] { dense_kernel->compute(b, c); }));
        rows.push_back(simdSmokeCompare(
            "referenceSpmmTf32 simd_off_on", 128, simd_reps,
            [&] { referenceSpmmTf32(md, b, c); }));
    }
    {
        // Raw rounding micro-kernel: one 512-wide panel's worth of
        // B per call, the PreparedDense hot loop.
        const int64_t elems = m.cols() * 512;
        Rng prng(512);
        AlignedVector<float> pin(static_cast<size_t>(elems));
        AlignedVector<float> pout(static_cast<size_t>(elems));
        for (auto& x : pin)
            x = prng.nextFloat(-1.0f, 1.0f);
        SmokeRow row;
        row.kernel = "simd::roundPanel simd_off_on";
        row.n = 512;
        row.legacyBRoundOps = 0;
        row.engineBRoundOps = 0;
        const int round_reps = 20;
        {
            const engine::simd::Kernels& K =
                engine::simd::kernelsFor(engine::simd::Isa::Off);
            row.offMs = bench::timedMs(round_reps, [&] {
                K.roundPanel(pout.data(), pin.data(), elems,
                             Precision::Tf32);
            });
        }
        {
            const engine::simd::Kernels& K = engine::simd::kernels();
            row.onMs = bench::timedMs(round_reps, [&] {
                K.roundPanel(pout.data(), pin.data(), elems,
                             Precision::Tf32);
            });
        }
        rows.push_back(row);
    }
    // Resilient-runtime row: the guard tax, gated like the rest.
    rows.push_back(runtimeGuardSmoke(m, 32, reps));

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "smoke: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    char buf[256];
    out << "{\n  \"schema\": \"dtc-bench-engine-v1\",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"matrix\": {\"rows\": %lld, \"cols\": %lld, "
                  "\"nnz\": %lld},\n  \"reps\": %d,\n",
                  static_cast<long long>(m.rows()),
                  static_cast<long long>(m.cols()),
                  static_cast<long long>(m.nnz()), reps);
    out << buf << "  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const SmokeRow& r = rows[i];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"kernel\": \"%s\", \"n\": %lld, "
            "\"engine_off_ms\": %.4f, \"engine_on_ms\": %.4f, "
            "\"speedup\": %.3f, \"legacy_b_round_ops\": %llu, "
            "\"engine_b_round_ops\": %llu}%s\n",
            r.kernel, static_cast<long long>(r.n), r.offMs, r.onMs,
            r.onMs > 0.0 ? r.offMs / r.onMs : 0.0,
            static_cast<unsigned long long>(r.legacyBRoundOps),
            static_cast<unsigned long long>(r.engineBRoundOps),
            i + 1 < rows.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n}\n";
    out.close();

    if (!validateBenchJson(out_path, rows.size())) {
        std::fprintf(stderr, "smoke: %s failed schema validation\n",
                     out_path.c_str());
        return 1;
    }

    std::printf("%-22s %6s %14s %13s %9s %13s\n", "kernel", "n",
                "engine_off_ms", "engine_on_ms", "speedup",
                "b_round_ops");
    for (const SmokeRow& r : rows) {
        std::printf("%-22s %6lld %14.4f %13.4f %8.2fx %5.1fx fewer\n",
                    r.kernel, static_cast<long long>(r.n), r.offMs,
                    r.onMs, r.onMs > 0.0 ? r.offMs / r.onMs : 0.0,
                    r.engineBRoundOps > 0
                        ? static_cast<double>(r.legacyBRoundOps) /
                              static_cast<double>(r.engineBRoundOps)
                        : 0.0);
    }
    std::printf("smoke: wrote %s (validated)\n", out_path.c_str());

    if (!metrics_path.empty()) {
        if (!obs::metrics::writeJson(metrics_path)) {
            std::fprintf(stderr, "smoke: cannot write %s\n",
                         metrics_path.c_str());
            return 1;
        }
        std::printf("smoke: wrote %s\n", metrics_path.c_str());
    }
    return 0;
}

} // namespace dtc

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string out = "BENCH_engine.json";
    std::string metrics_out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--out" && i + 1 < argc)
            out = argv[++i];
        else if (arg == "--metrics-out" && i + 1 < argc)
            metrics_out = argv[++i];
    }
    if (smoke)
        return dtc::runEngineSmoke(out, metrics_out);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
