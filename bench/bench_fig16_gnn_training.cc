/**
 * @file
 * Regenerates Figure 16: end-to-end 2-layer GCN training time (200
 * epochs) for DTC-GCN vs DGL, PyG (SparseTensor mode) and TC-GNN on
 * YeastH, protein, IGB-tiny and IGB-small, at hidden sizes 128 and
 * 256, on both simulated GPUs.  DTC-GCN's time includes its format
 * conversion; TC-GNN's (CPU-side) conversion is excluded, matching
 * the paper's protocol.
 */
#include <cstdio>

#include "bench_util.h"
#include "gnn/frameworks.h"

using namespace dtc;
using namespace dtc::bench;

int
main(int argc, char** argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);

    const GnnFramework frameworks[] = {
        GnnFramework::DtcGcn,
        GnnFramework::Dgl,
        GnnFramework::PygSparseTensor,
        GnnFramework::TcGnn,
    };

    for (const ArchSpec& arch :
         {ArchSpec::rtx4090(), ArchSpec::rtx3090()}) {
        if (args.quick && arch.name == "RTX3090")
            continue;
        std::printf("Figure 16 — GCN training time (200 epochs) on "
                    "%s (unit: s)\n\n", arch.name.c_str());

        std::vector<double> su_dgl, su_pyg, su_tcgnn;
        for (int64_t hidden : {128, 256}) {
            std::printf("hidden = %ld:\n", (long)hidden);
            std::vector<int> widths{10, 10, 10, 10, 10};
            printRule(widths);
            printRow(widths, {"Graph", "DTC-GCN", "DGL", "PyG(ST)",
                              "TC-GNN"});
            printRule(widths);
            for (const auto& entry : gnnCaseStudyEntries()) {
                CsrMatrix a = entry.make();
                GcnTrainingConfig cfg;
                cfg.inFeatures = 128;
                cfg.hidden = hidden;
                cfg.classes = 16;
                cfg.epochs = 200;

                std::vector<std::string> row{entry.abbr};
                double times[4] = {};
                for (int f = 0; f < 4; ++f) {
                    auto est = estimateGcnTraining(a, frameworks[f],
                                                   cfg, arch);
                    times[f] = est.totalMs;
                    row.push_back(fmt(est.totalMs / 1e3, 3));
                }
                printRow(widths, row);
                su_dgl.push_back(times[1] / times[0]);
                su_pyg.push_back(times[2] / times[0]);
                su_tcgnn.push_back(times[3] / times[0]);
            }
            printRule(widths);
        }
        std::printf("\nDTC-GCN geomean speedups on %s: %s over DGL, "
                    "%s over PyG(SparseTensor), %s over TC-GNN\n\n",
                    arch.name.c_str(),
                    fmtX(geomean(su_dgl)).c_str(),
                    fmtX(geomean(su_pyg)).c_str(),
                    fmtX(geomean(su_tcgnn)).c_str());
    }
    std::printf("Paper shapes: RTX4090 geomeans 1.26x (DGL), 1.91x "
                "(PyG), 2.21x (TC-GNN); RTX3090 1.22x / 1.81x / "
                "2.69x.\n");
    return 0;
}
