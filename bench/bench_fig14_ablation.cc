/**
 * @file
 * Regenerates Figure 14: the runtime-kernel optimization ablation.
 * For each representative matrix it reports TC pipeline utilization
 * and #IMAD/#HMMA for TCGNN-SpMM and the cumulative DTC-SpMM stack:
 * Base (ME-TCF only) -> +SMB -> +IP -> +SDB -> +VFD.
 */
#include <cstdio>

#include "bench_util.h"
#include "kernels/dtc.h"

using namespace dtc;
using namespace dtc::bench;

namespace {

DtcOptions
stack(int level)
{
    // level 0 = Base, 1 = +SMB, 2 = +IP, 3 = +SDB, 4 = +VFD.
    DtcOptions o = DtcOptions::baseline();
    o.smb = level >= 1;
    o.ip = level >= 2;
    o.sdb = level >= 3;
    o.vfd = level >= 4;
    return o;
}

} // namespace

int
main(int argc, char** argv)
{
    (void)BenchArgs::parse(argc, argv);
    const CostModel cm(ArchSpec::rtx4090());

    std::printf("Figure 14: TC pipeline utilization and #IMAD/#HMMA "
                "across the optimization stack (%s, N=128)\n\n",
                cm.arch().name.c_str());

    std::vector<int> widths{8, 10, 10, 10, 10, 10, 10};
    printRule(widths);
    printRow(widths, {"Matrix", "TCGNN", "Base", "+SMB", "+IP",
                      "+SDB", "+VFD"});
    printRule(widths);

    // Collect per-type averages for the summary.
    double util_sum[2][6] = {};
    double ratio_sum[2][6] = {};
    int type_count[2] = {};

    std::printf("TC pipeline utilization (%%):\n");
    for (const auto& [entry, matrix] : table1Matrices()) {
        const int t = entry.type == MatrixType::TypeI ? 0 : 1;
        type_count[t]++;
        std::vector<std::string> util_row{entry.abbr};

        PreparedKernel tcgnn(KernelKind::Tcgnn, matrix);
        const LaunchResult& rt = tcgnn.cost(128, cm);
        util_row.push_back(fmt(rt.tcUtilPct));
        util_sum[t][0] += rt.tcUtilPct;
        ratio_sum[t][0] += rt.imadPerHmma;

        for (int level = 0; level < 5; ++level) {
            DtcKernel k(stack(level));
            k.prepare(matrix);
            LaunchResult r = k.cost(128, cm);
            util_row.push_back(fmt(r.tcUtilPct));
            util_sum[t][level + 1] += r.tcUtilPct;
            ratio_sum[t][level + 1] += r.imadPerHmma;
        }
        printRow(widths, util_row);
    }
    printRule(widths);

    std::printf("\n#IMAD/#HMMA:\n");
    printRule(widths);
    printRow(widths, {"Type", "TCGNN", "Base", "+SMB", "+IP", "+SDB",
                      "+VFD"});
    printRule(widths);
    for (int t = 0; t < 2; ++t) {
        std::vector<std::string> row{t == 0 ? "I(avg)" : "II(avg)"};
        for (int c = 0; c < 6; ++c)
            row.push_back(fmt(ratio_sum[t][c] / type_count[t]));
        printRow(widths, row);
    }
    printRule(widths);

    std::printf("\nTC pipeline utilization, per-type average (%%):\n");
    printRule(widths);
    printRow(widths, {"Type", "TCGNN", "Base", "+SMB", "+IP", "+SDB",
                      "+VFD"});
    printRule(widths);
    for (int t = 0; t < 2; ++t) {
        std::vector<std::string> row{t == 0 ? "I(avg)" : "II(avg)"};
        for (int c = 0; c < 6; ++c)
            row.push_back(fmt(util_sum[t][c] / type_count[t]));
        printRow(widths, row);
    }
    printRule(widths);

    std::printf("\nPaper shapes: the Base kernel (ME-TCF alone) "
                "already lifts utilization well above TCGNN "
                "(especially on Type II); each optimization adds "
                "further utilization and the full stack slashes "
                "#IMAD/#HMMA (-38%%/-89%% for Type I/II).\n");
    return 0;
}
