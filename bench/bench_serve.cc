/**
 * @file
 * bench_serve — serving-layer smoke benchmark (--smoke is the ctest /
 * CI entry point).
 *
 * Two self-validating rows in the dtc-bench-engine-v1 schema, gated
 * by bench_compare against bench/baselines/BENCH_serve.json:
 *
 *   - "SpmmService cold_vs_warm": first-request latency (tune +
 *     prepare + run) vs the mean warm-cache request.  The counter
 *     columns *prove* reuse rather than inferring it from timing:
 *     legacy_b_round_ops = tuner invocations billed to the cold
 *     request (must be 1), engine_b_round_ops = tuner invocations
 *     across every warm request (must be 0, or the bench fails).
 *   - "SpmmService serial8_vs_batch8": eight serial Runtime::run
 *     calls over separate B panels vs one coalesced batch of the
 *     same eight panels through the service.  The batch must win
 *     (the kernel walks A's nonzeros once per wide panel instead of
 *     eight times) and must be bitwise identical per panel (SpMM is
 *     column-independent), both asserted here.
 *
 * Counters are exact across runs/compilers; wall-clock columns are
 * gated advisory (--wallclock-advisory) like every other bench.
 * Also writes a dtc-metrics-v1 snapshot (METRICS_serve.json) so the
 * serve.* counter totals are baseline-gated too.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "datasets/generators.h"
#include "gpusim/arch.h"
#include "gpusim/cost_model.h"
#include "matrix/dense.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "serve/service.h"

namespace dtc {
namespace {

struct SmokeRow
{
    const char* kernel;
    int64_t n;
    double offMs;
    double onMs;
    uint64_t legacyBRoundOps;
    uint64_t engineBRoundOps;
};

/** Dense operand with a seeded fill. */
DenseMatrix
makePanel(int64_t rows, int64_t cols, uint64_t seed)
{
    Rng rng(seed);
    DenseMatrix b(rows, cols);
    b.fillRandom(rng);
    return b;
}

int
runServeSmoke(const std::string& out_path,
              const std::string& metrics_path)
{
    const CostModel cm(ArchSpec::rtx4090());
    Rng rng(1);
    const CsrMatrix m = genCommunity(4096, 16, 16.0, 0.85, rng);
    const int64_t n = 16;
    const Precision p = Precision::Fp32;
    std::vector<SmokeRow> rows;

    serve::ServeOptions so;
    so.deterministic = true; // bitwise-replayable, single thread
    so.cacheBytes = int64_t{64} << 20;
    serve::SpmmService svc(so, &cm);
    const serve::MatrixHandle h = svc.attach(m);
    const DenseMatrix b = makePanel(m.cols(), n, 42);

    // Row 1: cold (tune + prepare + run) vs warm (cache hit) request.
    {
        SmokeRow row;
        row.kernel = "SpmmService cold_vs_warm";
        row.n = n;
        const uint64_t tunes0 =
            obs::metrics::counterValue("tuner.tunes");
        const uint64_t hits0 =
            obs::metrics::counterValue("serve.cache.hits");
        row.offMs = bench::timedMs(1, [&] { svc.run(h, b, p); });
        const uint64_t tunes_cold =
            obs::metrics::counterValue("tuner.tunes") - tunes0;

        const int warm_reps = 5;
        row.onMs = bench::timedMs(warm_reps, [&] { svc.run(h, b, p); }) /
                   warm_reps;
        const uint64_t tunes_warm =
            obs::metrics::counterValue("tuner.tunes") - tunes0 -
            tunes_cold;
        const uint64_t hits =
            obs::metrics::counterValue("serve.cache.hits") - hits0;

        row.legacyBRoundOps = tunes_cold;
        row.engineBRoundOps = tunes_warm;
        rows.push_back(row);

        if (tunes_cold != 1 || tunes_warm != 0 ||
            hits != static_cast<uint64_t>(warm_reps)) {
            std::fprintf(stderr,
                         "serve smoke: warm path re-tuned or missed "
                         "the cache (cold_tunes=%llu warm_tunes=%llu "
                         "hits=%llu, want 1/0/%d)\n",
                         static_cast<unsigned long long>(tunes_cold),
                         static_cast<unsigned long long>(tunes_warm),
                         static_cast<unsigned long long>(hits),
                         warm_reps);
            return 1;
        }
    }

    // Row 2: eight serial Runtime::run calls vs one batch of eight.
    {
        SmokeRow row;
        row.kernel = "SpmmService serial8_vs_batch8";
        row.n = n;

        const int64_t panels = 8;
        std::vector<DenseMatrix> bs;
        for (int64_t i = 0; i < panels; ++i)
            bs.push_back(
                makePanel(m.cols(), n,
                          100 + static_cast<uint64_t>(i)));

        // The serial arm reuses the service's tuned state so both
        // arms pay zero tuning and run the same winning kernel —
        // the delta is purely eight A-traversals vs one.
        runtime::RuntimeOptions ropt = so.runtime;
        ropt.precision = p;
        runtime::Runtime rt(
            m, svc.cache().acquire(m, p)->rt->tunedState(), ropt);
        std::vector<DenseMatrix> serial_c(
            panels, DenseMatrix(m.rows(), n));
        rt.run(bs[0], serial_c[0]); // warm-up: prepare the kernel

        const int reps = 3;
        row.offMs = bench::timedMs(reps, [&] {
                        for (int64_t i = 0; i < panels; ++i)
                            rt.run(bs[i], serial_c[i]);
                    }) /
                    reps;

        std::vector<serve::SubmitResult> batch;
        row.onMs = bench::timedMs(reps, [&] {
                       batch = svc.runBatch(h, bs, p);
                   }) /
                   reps;

        for (int64_t i = 0; i < panels; ++i) {
            if (batch[static_cast<size_t>(i)].batchSize != panels) {
                std::fprintf(stderr,
                             "serve smoke: batch did not coalesce "
                             "(batchSize=%lld, want %lld)\n",
                             static_cast<long long>(
                                 batch[static_cast<size_t>(i)]
                                     .batchSize),
                             static_cast<long long>(panels));
                return 1;
            }
            if (!(batch[static_cast<size_t>(i)].c ==
                  serial_c[static_cast<size_t>(i)])) {
                std::fprintf(stderr,
                             "serve smoke: batched panel %lld is not "
                             "bitwise equal to its serial run\n",
                             static_cast<long long>(i));
                return 1;
            }
        }
        if (!(row.onMs < row.offMs)) {
            std::fprintf(stderr,
                         "serve smoke: batch=8 (%.4f ms) did not "
                         "beat 8 serial runs (%.4f ms)\n",
                         row.onMs, row.offMs);
            return 1;
        }

        row.legacyBRoundOps = static_cast<uint64_t>(panels);
        row.engineBRoundOps = 1; // executions per batched arm rep
        rows.push_back(row);
    }

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "serve smoke: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    char buf[256];
    out << "{\n  \"schema\": \"dtc-bench-engine-v1\",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"matrix\": {\"rows\": %lld, \"cols\": %lld, "
                  "\"nnz\": %lld},\n  \"reps\": 3,\n",
                  static_cast<long long>(m.rows()),
                  static_cast<long long>(m.cols()),
                  static_cast<long long>(m.nnz()));
    out << buf << "  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const SmokeRow& r = rows[i];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"kernel\": \"%s\", \"n\": %lld, "
            "\"engine_off_ms\": %.4f, \"engine_on_ms\": %.4f, "
            "\"speedup\": %.3f, \"legacy_b_round_ops\": %llu, "
            "\"engine_b_round_ops\": %llu}%s\n",
            r.kernel, static_cast<long long>(r.n), r.offMs, r.onMs,
            r.onMs > 0.0 ? r.offMs / r.onMs : 0.0,
            static_cast<unsigned long long>(r.legacyBRoundOps),
            static_cast<unsigned long long>(r.engineBRoundOps),
            i + 1 < rows.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n}\n";
    out.close();

    std::printf("%-30s %6s %10s %10s %8s\n", "row", "n", "off_ms",
                "on_ms", "speedup");
    for (const SmokeRow& r : rows)
        std::printf("%-30s %6lld %10.4f %10.4f %7.2fx\n", r.kernel,
                    static_cast<long long>(r.n), r.offMs, r.onMs,
                    r.onMs > 0.0 ? r.offMs / r.onMs : 0.0);
    std::printf("serve smoke: wrote %s\n", out_path.c_str());

    if (!metrics_path.empty()) {
        if (!obs::metrics::writeJson(metrics_path)) {
            std::fprintf(stderr, "serve smoke: cannot write %s\n",
                         metrics_path.c_str());
            return 1;
        }
        std::printf("serve smoke: wrote %s\n", metrics_path.c_str());
    }
    return 0;
}

} // namespace
} // namespace dtc

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string out = "BENCH_serve.json";
    std::string metrics_out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            metrics_out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s --smoke [--out FILE] "
                         "[--metrics-out FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    if (!smoke) {
        std::fprintf(stderr, "bench_serve: only --smoke for now\n");
        return 2;
    }
    return dtc::runServeSmoke(out, metrics_out);
}
