/**
 * @file
 * Design-choice ablations DESIGN.md calls out (no single paper
 * figure; the paper fixes these choices in Sections 4.2-4.3):
 *
 *   1. TC-block shape — the paper uses 16x8 tiles (mma.m16n8k4 with
 *      k-depth 8).  Sweeping window height x block width shows how
 *      the choice trades TC-block count against padding and local-id
 *      width (<= 256 states for the 8-bit TCLocalId).
 *
 *   2. Hierarchy-I cluster size limit — the paper argues 16
 *      (BLOCK_HEIGHT) beats larger limits like 64 because grouping
 *      low-similarity rows dilutes TC blocks.  Sweeping the limit
 *      over {8, 16, 32, 64} quantifies that claim.
 */
#include <cstdio>

#include "bench_util.h"
#include "formats/me_tcf.h"
#include "formats/sgt.h"
#include "reorder/tca.h"

using namespace dtc;
using namespace dtc::bench;

int
main(int argc, char** argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);

    std::printf("Ablation 1: TC-block shape (window height x block "
                "width), SGT condensation quality\n\n");
    const TcBlockShape shapes[] = {
        {8, 4}, {8, 8}, {16, 4}, {16, 8}, {16, 16}, {32, 8},
    };
    std::vector<int> widths{8, 10, 12, 12, 14};
    for (const auto& [entry, matrix] : table1Matrices()) {
        if (args.quick && matrix.nnz() > 2500000)
            continue;
        if (entry.type == MatrixType::TypeI && entry.abbr != "YH" &&
            entry.abbr != "DD")
            continue; // keep the table readable
        std::printf("%s:\n", entry.abbr.c_str());
        printRule(widths);
        printRow(widths, {"shape", "MeanNnzTC", "TC blocks",
                          "idx elems", "vs CSR idx"});
        printRule(widths);
        for (const TcBlockShape& shape : shapes) {
            MeTcfMatrix t = MeTcfMatrix::build(matrix, shape);
            std::string name = std::to_string(shape.windowHeight) +
                               "x" +
                               std::to_string(shape.blockWidth);
            printRow(widths,
                     {name, fmt(t.meanNnzTc()),
                      std::to_string(t.numTcBlocks()),
                      std::to_string(t.indexElementCount()),
                      fmt(100.0 *
                              static_cast<double>(
                                  t.indexElementCount()) /
                              static_cast<double>(
                                  matrix.indexElementCount()),
                          1) + "%"});
        }
        printRule(widths);
    }
    std::printf("\nThe paper's 16x8 sits at the knee: taller/wider "
                "tiles condense worse per slot; narrower tiles "
                "multiply block-bookkeeping overhead.\n");

    std::printf("\nAblation 2: Hierarchy-I cluster size limit "
                "(paper Section 4.3: 16 matches the TC block; 64 "
                "groups low-similarity rows)\n\n");
    std::vector<int> widths2{8, 12, 12, 12, 12};
    printRule(widths2);
    printRow(widths2, {"Matrix", "limit 8", "limit 16", "limit 32",
                       "limit 64"});
    printRule(widths2);
    for (const auto& [entry, matrix] : table1Matrices()) {
        if (matrix.nnz() > (args.quick ? 600000 : 2500000))
            continue;
        std::vector<std::string> row{entry.abbr};
        for (int limit : {8, 16, 32, 64}) {
            TcaParams p;
            p.blockHeight = limit;
            auto perm = tcaReorder(matrix, p).permutation;
            row.push_back(
                fmt(sgtCondense(matrix.permuteRows(perm)).meanNnzTc));
        }
        printRow(widths2, row);
    }
    printRule(widths2);
    std::printf("\nMeanNnzTC after TCA with each cluster cap; the "
                "16-row cap (the TC-block height) should be at or "
                "near the top on most matrices.\n");
    return 0;
}
