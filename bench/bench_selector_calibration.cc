/**
 * @file
 * Reproduces the Selector threshold calibration of paper Section
 * 4.5.2: "We have chosen a threshold value of 1.2 for the AR in the
 * Selector, based on offline experimental results with 1000
 * generated sparse matrices [with] uniformly distributed nonzeros
 * ... a 22.4% performance degradation when using the strict-balance
 * strategy."
 *
 * Part 1 regenerates that measurement: uniform matrices, strict
 * balance vs base, mean degradation.
 * Part 2 sweeps the threshold over a mixed population (uniform +
 * skewed) and reports the geomean slowdown vs an oracle that always
 * picks the faster kernel — showing where the best threshold lies.
 *
 * Flags: --quick (fewer matrices), --collection=N (population size;
 * paper used 1000).
 */
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "datasets/generators.h"
#include "kernels/dtc.h"
#include "selector/selector.h"

using namespace dtc;
using namespace dtc::bench;

namespace {

struct Sample
{
    double arRatio;
    double baseMs;
    double balancedMs;
};

Sample
measure(const CsrMatrix& m, const CostModel& cm)
{
    DtcOptions base_opts;
    base_opts.mode = DtcOptions::Mode::Base;
    DtcKernel base(base_opts);
    base.prepare(m);
    DtcOptions bal_opts;
    bal_opts.mode = DtcOptions::Mode::Balanced;
    DtcKernel bal(bal_opts);
    bal.prepare(m);

    Sample s;
    s.arRatio = base.decide(cm.arch()).approximationRatio;
    s.baseMs = base.cost(128, cm).timeMs;
    s.balancedMs = bal.cost(128, cm).timeMs;
    return s;
}

} // namespace

int
main(int argc, char** argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    const int population =
        args.collectionSize == 414
            ? (args.quick ? 40 : 200)
            : args.collectionSize;
    const CostModel cm(ArchSpec::rtx4090());
    Rng rng(0xca1b);

    // Part 1: uniformly random matrices (naturally balanced).
    std::printf("Selector calibration, part 1: %d uniform matrices "
                "(the paper's 22.4%% degradation experiment)\n",
                population / 2);
    std::vector<Sample> uniform;
    double degradation = 0.0;
    for (int i = 0; i < population / 2; ++i) {
        const int64_t n = 16384 + static_cast<int64_t>(
                                      rng.nextBounded(32768));
        const double avg = 8.0 + static_cast<double>(
                                     rng.nextBounded(24));
        CsrMatrix m = genUniform(n, avg, rng);
        Sample s = measure(m, cm);
        uniform.push_back(s);
        degradation += s.balancedMs / s.baseMs - 1.0;
    }
    degradation /= static_cast<double>(uniform.size());
    std::printf("  mean strict-balance degradation: %+.1f%% "
                "(paper: +22.4%%)\n\n", 100.0 * degradation);

    // Part 2: mixed population, threshold sweep.
    std::printf("Selector calibration, part 2: threshold sweep over "
                "a mixed population (%d matrices)\n", population);
    std::vector<Sample> mixed = uniform;
    for (int i = 0; i < population / 2; ++i) {
        const int64_t n = 8192 + static_cast<int64_t>(
                                     rng.nextBounded(16384));
        const double avg = 16.0 + static_cast<double>(
                                      rng.nextBounded(48));
        CsrMatrix m =
            genPowerLaw(n, avg, 1.3 + 0.4 * rng.nextDouble(), rng);
        mixed.push_back(measure(m, cm));
    }

    std::vector<int> widths{10, 16, 16, 14};
    printRule(widths);
    printRow(widths, {"threshold", "geo slowdown", "balanced used",
                      "wrong picks"});
    printRule(widths);
    double best_threshold = 1.0, best_slowdown = 1e300;
    for (double threshold = 1.0; threshold <= 2.01;
         threshold += 0.1) {
        double log_sum = 0.0;
        int used = 0, wrong = 0;
        for (const Sample& s : mixed) {
            const bool pick_bal = s.arRatio > threshold;
            const double chosen =
                pick_bal ? s.balancedMs : s.baseMs;
            const double oracle = std::min(s.baseMs, s.balancedMs);
            log_sum += std::log(chosen / oracle);
            used += pick_bal ? 1 : 0;
            wrong += chosen > oracle * 1.0001 ? 1 : 0;
        }
        const double slowdown =
            std::exp(log_sum / static_cast<double>(mixed.size()));
        if (slowdown < best_slowdown) {
            best_slowdown = slowdown;
            best_threshold = threshold;
        }
        printRow(widths,
                 {fmt(threshold, 1), fmtX(slowdown, 4),
                  std::to_string(used) + "/" +
                      std::to_string(mixed.size()),
                  std::to_string(wrong)});
    }
    printRule(widths);
    std::printf("\nbest threshold in sweep: %.1f (paper chose 1.2; "
                "\"may not be universally optimal\" but effective)\n",
                best_threshold);
    return 0;
}
