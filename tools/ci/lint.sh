#!/usr/bin/env bash
# Lint driver shared by CI's `lint` job and local dry-runs.
#
#   tools/ci/lint.sh format   — clang-format --dry-run -Werror over
#                               every tracked C++ file (whole tree).
#   tools/ci/lint.sh tidy     — clang-tidy (.clang-tidy profile:
#                               bugprone-*, performance-*,
#                               concurrency-*) over src/, using the
#                               compile_commands.json in $BUILD_DIR
#                               (default: build).
#   tools/ci/lint.sh          — both, format first.
#
# Locally the tools may be absent (the dev container ships only the
# gcc toolchain); each leg then prints SKIP and exits 0 so the README
# dry-run recipe stays runnable everywhere.  CI installs pinned tools
# and the same script gates for real.
set -u

repo_root="$(cd "$(dirname "$0")/../.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
cd "$repo_root"

find_tool() {
    # Prefer an explicitly pinned binary (clang-format-18 on the CI
    # runner), fall back to whatever PATH offers.
    local base="$1" v
    for v in 18 17 16 15 14 ""; do
        if command -v "$base${v:+-$v}" >/dev/null 2>&1; then
            echo "$base${v:+-$v}"
            return 0
        fi
    done
    return 1
}

cxx_sources() {
    git ls-files '*.cc' '*.cpp' '*.h' '*.hpp'
}

run_format() {
    local cf
    if ! cf="$(find_tool clang-format)"; then
        echo "lint: SKIP format (clang-format not installed)"
        return 0
    fi
    echo "lint: format check with $("$cf" --version | head -1)"
    # --dry-run -Werror: exit non-zero on any file that would change.
    cxx_sources | xargs -r "$cf" --style=file --dry-run -Werror
}

run_tidy() {
    local ct
    if ! ct="$(find_tool clang-tidy)"; then
        echo "lint: SKIP tidy (clang-tidy not installed)"
        return 0
    fi
    if [ ! -f "$build_dir/compile_commands.json" ]; then
        echo "lint: SKIP tidy (no $build_dir/compile_commands.json;" \
             "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
        return 0
    fi
    echo "lint: tidy check with $("$ct" --version | sed -n 2p)"
    # Only src/ — tests and benches are exercised by the suite itself
    # and tidy over GTest macro expansions is mostly noise.
    git ls-files 'src/*.cc' |
        xargs -r "$ct" -p "$build_dir" --quiet
}

case "${1:-all}" in
    format) run_format ;;
    tidy) run_tidy ;;
    all) run_format && run_tidy ;;
    *)
        echo "usage: $0 [format|tidy|all]" >&2
        exit 2
        ;;
esac
