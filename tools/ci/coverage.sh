#!/usr/bin/env bash
# Coverage driver shared by CI's `coverage` job and local dry-runs.
#
# Builds an instrumented tree (gcc --coverage via -DDTC_COVERAGE=ON),
# runs the full ctest suite, then reports line coverage for src/ with
# gcovr (HTML report + a one-line rate summary on stdout).
#
# The line-rate floor ($COVERAGE_FLOOR, default 60) is ADVISORY: a
# shortfall prints a warning and the rate still lands in the job
# summary, but the job does not fail — coverage gates that hard-fail
# on noise get deleted, ones that stay visible get acted on.
#
# Usage: tools/ci/coverage.sh [build-dir]   (default: build-cov)
set -eu

repo_root="$(cd "$(dirname "$0")/../.." && pwd)"
build_dir="${1:-$repo_root/build-cov}"
floor="${COVERAGE_FLOOR:-60}"
cd "$repo_root"

cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Debug -DDTC_COVERAGE=ON
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

if ! command -v gcovr >/dev/null 2>&1; then
    echo "coverage: SKIP report (gcovr not installed; .gcda files" \
         "are under $build_dir for manual gcov use)"
    exit 0
fi

mkdir -p "$build_dir/coverage-html"
gcovr --root "$repo_root" --filter 'src/' \
    --exclude-throw-branches \
    --html-details "$build_dir/coverage-html/index.html" \
    --json-summary "$build_dir/coverage-summary.json" \
    --print-summary

rate="$(python3 -c "
import json
with open('$build_dir/coverage-summary.json') as f:
    print(round(json.load(f)['line_percent']))
")"
echo "coverage: src/ line rate ${rate}% (advisory floor ${floor}%)"
if [ "$rate" -lt "$floor" ]; then
    echo "coverage: WARNING — below the advisory floor; new code" \
         "should come with tests"
fi
# Surface the rate in the GitHub job summary when running in Actions.
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    {
        echo "### Coverage (src/, line rate)"
        echo ""
        echo "**${rate}%** — advisory floor ${floor}%"
    } >>"$GITHUB_STEP_SUMMARY"
fi
