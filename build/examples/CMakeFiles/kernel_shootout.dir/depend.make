# Empty dependencies file for kernel_shootout.
# This may be replaced when dependencies are built.
