file(REMOVE_RECURSE
  "CMakeFiles/kernel_shootout.dir/kernel_shootout.cpp.o"
  "CMakeFiles/kernel_shootout.dir/kernel_shootout.cpp.o.d"
  "kernel_shootout"
  "kernel_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
