# Empty dependencies file for label_propagation.
# This may be replaced when dependencies are built.
