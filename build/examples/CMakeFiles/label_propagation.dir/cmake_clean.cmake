file(REMOVE_RECURSE
  "CMakeFiles/label_propagation.dir/label_propagation.cpp.o"
  "CMakeFiles/label_propagation.dir/label_propagation.cpp.o.d"
  "label_propagation"
  "label_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/label_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
