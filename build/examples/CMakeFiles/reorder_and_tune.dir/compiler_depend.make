# Empty compiler generated dependencies file for reorder_and_tune.
# This may be replaced when dependencies are built.
