file(REMOVE_RECURSE
  "CMakeFiles/reorder_and_tune.dir/reorder_and_tune.cpp.o"
  "CMakeFiles/reorder_and_tune.dir/reorder_and_tune.cpp.o.d"
  "reorder_and_tune"
  "reorder_and_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reorder_and_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
