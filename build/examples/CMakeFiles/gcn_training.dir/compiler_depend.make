# Empty compiler generated dependencies file for gcn_training.
# This may be replaced when dependencies are built.
