file(REMOVE_RECURSE
  "CMakeFiles/gcn_training.dir/gcn_training.cpp.o"
  "CMakeFiles/gcn_training.dir/gcn_training.cpp.o.d"
  "gcn_training"
  "gcn_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcn_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
