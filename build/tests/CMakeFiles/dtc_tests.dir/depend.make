# Empty dependencies file for dtc_tests.
# This may be replaced when dependencies are built.
