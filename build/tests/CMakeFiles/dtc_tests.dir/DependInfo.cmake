
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bell_cvse.cc" "tests/CMakeFiles/dtc_tests.dir/test_bell_cvse.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_bell_cvse.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/dtc_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_cost_model_properties.cc" "tests/CMakeFiles/dtc_tests.dir/test_cost_model_properties.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_cost_model_properties.cc.o.d"
  "/root/repo/tests/test_datasets.cc" "tests/CMakeFiles/dtc_tests.dir/test_datasets.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_datasets.cc.o.d"
  "/root/repo/tests/test_edge_cases.cc" "tests/CMakeFiles/dtc_tests.dir/test_edge_cases.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_edge_cases.cc.o.d"
  "/root/repo/tests/test_format_sweep.cc" "tests/CMakeFiles/dtc_tests.dir/test_format_sweep.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_format_sweep.cc.o.d"
  "/root/repo/tests/test_gnn.cc" "tests/CMakeFiles/dtc_tests.dir/test_gnn.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_gnn.cc.o.d"
  "/root/repo/tests/test_gpusim.cc" "tests/CMakeFiles/dtc_tests.dir/test_gpusim.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_gpusim.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/dtc_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_kernel_cost.cc" "tests/CMakeFiles/dtc_tests.dir/test_kernel_cost.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_kernel_cost.cc.o.d"
  "/root/repo/tests/test_kernels.cc" "tests/CMakeFiles/dtc_tests.dir/test_kernels.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_kernels.cc.o.d"
  "/root/repo/tests/test_matrix.cc" "tests/CMakeFiles/dtc_tests.dir/test_matrix.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_matrix.cc.o.d"
  "/root/repo/tests/test_me_tcf.cc" "tests/CMakeFiles/dtc_tests.dir/test_me_tcf.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_me_tcf.cc.o.d"
  "/root/repo/tests/test_mm_io.cc" "tests/CMakeFiles/dtc_tests.dir/test_mm_io.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_mm_io.cc.o.d"
  "/root/repo/tests/test_precision.cc" "tests/CMakeFiles/dtc_tests.dir/test_precision.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_precision.cc.o.d"
  "/root/repo/tests/test_reorder.cc" "tests/CMakeFiles/dtc_tests.dir/test_reorder.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_reorder.cc.o.d"
  "/root/repo/tests/test_selector.cc" "tests/CMakeFiles/dtc_tests.dir/test_selector.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_selector.cc.o.d"
  "/root/repo/tests/test_serialize.cc" "tests/CMakeFiles/dtc_tests.dir/test_serialize.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_serialize.cc.o.d"
  "/root/repo/tests/test_sgt.cc" "tests/CMakeFiles/dtc_tests.dir/test_sgt.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_sgt.cc.o.d"
  "/root/repo/tests/test_tcf.cc" "tests/CMakeFiles/dtc_tests.dir/test_tcf.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_tcf.cc.o.d"
  "/root/repo/tests/test_tuner.cc" "tests/CMakeFiles/dtc_tests.dir/test_tuner.cc.o" "gcc" "tests/CMakeFiles/dtc_tests.dir/test_tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtcspmm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
