file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_unstructured.dir/bench_table4_unstructured.cc.o"
  "CMakeFiles/bench_table4_unstructured.dir/bench_table4_unstructured.cc.o.d"
  "bench_table4_unstructured"
  "bench_table4_unstructured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_unstructured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
