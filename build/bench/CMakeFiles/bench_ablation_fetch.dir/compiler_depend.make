# Empty compiler generated dependencies file for bench_ablation_fetch.
# This may be replaced when dependencies are built.
