# Empty dependencies file for bench_fig16_gnn_training.
# This may be replaced when dependencies are built.
