file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_structured.dir/bench_fig12_structured.cc.o"
  "CMakeFiles/bench_fig12_structured.dir/bench_fig12_structured.cc.o.d"
  "bench_fig12_structured"
  "bench_fig12_structured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_structured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
