# Empty dependencies file for bench_fig12_structured.
# This may be replaced when dependencies are built.
