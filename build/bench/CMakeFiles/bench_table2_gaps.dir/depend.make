# Empty dependencies file for bench_table2_gaps.
# This may be replaced when dependencies are built.
