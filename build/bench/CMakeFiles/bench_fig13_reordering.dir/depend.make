# Empty dependencies file for bench_fig13_reordering.
# This may be replaced when dependencies are built.
