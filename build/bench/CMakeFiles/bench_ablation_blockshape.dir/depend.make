# Empty dependencies file for bench_ablation_blockshape.
# This may be replaced when dependencies are built.
