file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_blockshape.dir/bench_ablation_blockshape.cc.o"
  "CMakeFiles/bench_ablation_blockshape.dir/bench_ablation_blockshape.cc.o.d"
  "bench_ablation_blockshape"
  "bench_ablation_blockshape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_blockshape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
