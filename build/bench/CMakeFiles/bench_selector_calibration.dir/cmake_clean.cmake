file(REMOVE_RECURSE
  "CMakeFiles/bench_selector_calibration.dir/bench_selector_calibration.cc.o"
  "CMakeFiles/bench_selector_calibration.dir/bench_selector_calibration.cc.o.d"
  "bench_selector_calibration"
  "bench_selector_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selector_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
