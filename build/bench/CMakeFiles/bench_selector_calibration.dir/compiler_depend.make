# Empty compiler generated dependencies file for bench_selector_calibration.
# This may be replaced when dependencies are built.
