file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_overheads.dir/bench_sec6_overheads.cc.o"
  "CMakeFiles/bench_sec6_overheads.dir/bench_sec6_overheads.cc.o.d"
  "bench_sec6_overheads"
  "bench_sec6_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
