# Empty dependencies file for bench_fig3_sm_timeline.
# This may be replaced when dependencies are built.
