file(REMOVE_RECURSE
  "libdtcspmm.a"
)
