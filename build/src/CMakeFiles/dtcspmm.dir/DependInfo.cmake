
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/precision.cc" "src/CMakeFiles/dtcspmm.dir/common/precision.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/common/precision.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/dtcspmm.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/CMakeFiles/dtcspmm.dir/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/common/stopwatch.cc.o.d"
  "/root/repo/src/common/tf32.cc" "src/CMakeFiles/dtcspmm.dir/common/tf32.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/common/tf32.cc.o.d"
  "/root/repo/src/datasets/collection.cc" "src/CMakeFiles/dtcspmm.dir/datasets/collection.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/datasets/collection.cc.o.d"
  "/root/repo/src/datasets/generators.cc" "src/CMakeFiles/dtcspmm.dir/datasets/generators.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/datasets/generators.cc.o.d"
  "/root/repo/src/datasets/table1.cc" "src/CMakeFiles/dtcspmm.dir/datasets/table1.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/datasets/table1.cc.o.d"
  "/root/repo/src/formats/bell.cc" "src/CMakeFiles/dtcspmm.dir/formats/bell.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/formats/bell.cc.o.d"
  "/root/repo/src/formats/convert_cost.cc" "src/CMakeFiles/dtcspmm.dir/formats/convert_cost.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/formats/convert_cost.cc.o.d"
  "/root/repo/src/formats/cvse.cc" "src/CMakeFiles/dtcspmm.dir/formats/cvse.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/formats/cvse.cc.o.d"
  "/root/repo/src/formats/me_tcf.cc" "src/CMakeFiles/dtcspmm.dir/formats/me_tcf.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/formats/me_tcf.cc.o.d"
  "/root/repo/src/formats/serialize.cc" "src/CMakeFiles/dtcspmm.dir/formats/serialize.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/formats/serialize.cc.o.d"
  "/root/repo/src/formats/sgt.cc" "src/CMakeFiles/dtcspmm.dir/formats/sgt.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/formats/sgt.cc.o.d"
  "/root/repo/src/formats/tcf.cc" "src/CMakeFiles/dtcspmm.dir/formats/tcf.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/formats/tcf.cc.o.d"
  "/root/repo/src/gnn/dense_ops.cc" "src/CMakeFiles/dtcspmm.dir/gnn/dense_ops.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/gnn/dense_ops.cc.o.d"
  "/root/repo/src/gnn/frameworks.cc" "src/CMakeFiles/dtcspmm.dir/gnn/frameworks.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/gnn/frameworks.cc.o.d"
  "/root/repo/src/gnn/gcn.cc" "src/CMakeFiles/dtcspmm.dir/gnn/gcn.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/gnn/gcn.cc.o.d"
  "/root/repo/src/gnn/trainer.cc" "src/CMakeFiles/dtcspmm.dir/gnn/trainer.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/gnn/trainer.cc.o.d"
  "/root/repo/src/gpusim/arch.cc" "src/CMakeFiles/dtcspmm.dir/gpusim/arch.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/gpusim/arch.cc.o.d"
  "/root/repo/src/gpusim/cost_model.cc" "src/CMakeFiles/dtcspmm.dir/gpusim/cost_model.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/gpusim/cost_model.cc.o.d"
  "/root/repo/src/gpusim/l2cache.cc" "src/CMakeFiles/dtcspmm.dir/gpusim/l2cache.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/gpusim/l2cache.cc.o.d"
  "/root/repo/src/gpusim/scheduler.cc" "src/CMakeFiles/dtcspmm.dir/gpusim/scheduler.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/gpusim/scheduler.cc.o.d"
  "/root/repo/src/kernels/block_spmm.cc" "src/CMakeFiles/dtcspmm.dir/kernels/block_spmm.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/kernels/block_spmm.cc.o.d"
  "/root/repo/src/kernels/cusparse_like.cc" "src/CMakeFiles/dtcspmm.dir/kernels/cusparse_like.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/kernels/cusparse_like.cc.o.d"
  "/root/repo/src/kernels/dtc.cc" "src/CMakeFiles/dtcspmm.dir/kernels/dtc.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/kernels/dtc.cc.o.d"
  "/root/repo/src/kernels/flash_llm_like.cc" "src/CMakeFiles/dtcspmm.dir/kernels/flash_llm_like.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/kernels/flash_llm_like.cc.o.d"
  "/root/repo/src/kernels/reference.cc" "src/CMakeFiles/dtcspmm.dir/kernels/reference.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/kernels/reference.cc.o.d"
  "/root/repo/src/kernels/registry.cc" "src/CMakeFiles/dtcspmm.dir/kernels/registry.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/kernels/registry.cc.o.d"
  "/root/repo/src/kernels/sparsetir_like.cc" "src/CMakeFiles/dtcspmm.dir/kernels/sparsetir_like.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/kernels/sparsetir_like.cc.o.d"
  "/root/repo/src/kernels/sparta_like.cc" "src/CMakeFiles/dtcspmm.dir/kernels/sparta_like.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/kernels/sparta_like.cc.o.d"
  "/root/repo/src/kernels/sputnik_like.cc" "src/CMakeFiles/dtcspmm.dir/kernels/sputnik_like.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/kernels/sputnik_like.cc.o.d"
  "/root/repo/src/kernels/tcgnn.cc" "src/CMakeFiles/dtcspmm.dir/kernels/tcgnn.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/kernels/tcgnn.cc.o.d"
  "/root/repo/src/kernels/vector_sparse.cc" "src/CMakeFiles/dtcspmm.dir/kernels/vector_sparse.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/kernels/vector_sparse.cc.o.d"
  "/root/repo/src/matrix/coo.cc" "src/CMakeFiles/dtcspmm.dir/matrix/coo.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/matrix/coo.cc.o.d"
  "/root/repo/src/matrix/csr.cc" "src/CMakeFiles/dtcspmm.dir/matrix/csr.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/matrix/csr.cc.o.d"
  "/root/repo/src/matrix/dense.cc" "src/CMakeFiles/dtcspmm.dir/matrix/dense.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/matrix/dense.cc.o.d"
  "/root/repo/src/matrix/mm_io.cc" "src/CMakeFiles/dtcspmm.dir/matrix/mm_io.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/matrix/mm_io.cc.o.d"
  "/root/repo/src/matrix/stats.cc" "src/CMakeFiles/dtcspmm.dir/matrix/stats.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/matrix/stats.cc.o.d"
  "/root/repo/src/reorder/louvain.cc" "src/CMakeFiles/dtcspmm.dir/reorder/louvain.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/reorder/louvain.cc.o.d"
  "/root/repo/src/reorder/metis_like.cc" "src/CMakeFiles/dtcspmm.dir/reorder/metis_like.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/reorder/metis_like.cc.o.d"
  "/root/repo/src/reorder/minhash.cc" "src/CMakeFiles/dtcspmm.dir/reorder/minhash.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/reorder/minhash.cc.o.d"
  "/root/repo/src/reorder/orderings.cc" "src/CMakeFiles/dtcspmm.dir/reorder/orderings.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/reorder/orderings.cc.o.d"
  "/root/repo/src/reorder/tca.cc" "src/CMakeFiles/dtcspmm.dir/reorder/tca.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/reorder/tca.cc.o.d"
  "/root/repo/src/selector/selector.cc" "src/CMakeFiles/dtcspmm.dir/selector/selector.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/selector/selector.cc.o.d"
  "/root/repo/src/tuner/tuner.cc" "src/CMakeFiles/dtcspmm.dir/tuner/tuner.cc.o" "gcc" "src/CMakeFiles/dtcspmm.dir/tuner/tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
