# Empty compiler generated dependencies file for dtcspmm.
# This may be replaced when dependencies are built.
