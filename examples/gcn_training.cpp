/**
 * @file
 * End-to-end GCN training on DTC-SpMM (the paper's Section 5.4 case
 * study, runnable): trains a 2-layer GCN on a synthetic node
 * classification task, with every A x H product going through the
 * DTC-SpMM kernel, then compares the estimated full-training time
 * against the DGL / PyG / TC-GNN framework emulations.
 *
 * Run: ./build/examples/gcn_training
 */
#include <cstdio>

#include "common/rng.h"
#include "datasets/generators.h"
#include "gnn/frameworks.h"
#include "gnn/trainer.h"

int
main()
{
    using namespace dtc;

    // A citation-style graph: 2048 nodes, 8 communities.
    Rng rng(7);
    CsrMatrix a = genCommunity(2048, 8, 16.0, 0.9, rng);

    // A learnable task: features weakly indicate a hidden class.
    const int64_t features = 32;
    DenseMatrix x;
    std::vector<int32_t> labels;
    makeClassificationTask(a, features, 4, 11, &x, &labels);

    TrainerConfig cfg;
    cfg.hidden = 32;
    cfg.classes = 4;
    cfg.epochs = 40;
    cfg.learningRate = 0.1f;
    // Crash-safe checkpoints: a snapshot (weights, optimizer state,
    // RNG cursor, history) is written after every epoch via temp file
    // + checksum + atomic rename.  Re-running this example resumes
    // from the last completed epoch and finishes bitwise identical to
    // an uninterrupted run.  (Leave checkpointDir empty to defer to
    // the DTC_CHECKPOINT_DIR environment variable instead.)
    cfg.checkpointDir = "gcn_checkpoints";

    std::printf("training 2-layer GCN (hidden=%lld) on %lld nodes / "
                "%lld edges with DTC-SpMM...\n",
                static_cast<long long>(cfg.hidden),
                static_cast<long long>(a.rows()),
                static_cast<long long>(a.nnz()));
    GcnModel model(a, makeKernel(KernelKind::Dtc), features, cfg);
    const int64_t resumed = model.resumeFrom();
    if (resumed > 0)
        std::printf("  resuming from checkpoint: %lld epochs done\n",
                    static_cast<long long>(resumed));
    TrainStats stats = model.train(x, labels);
    for (size_t e = 0; e < stats.loss.size(); e += 8) {
        std::printf("  epoch %2zu: loss=%.4f acc=%.3f\n", e,
                    stats.loss[e], stats.accuracy[e]);
    }
    std::printf("  final  : loss=%.4f acc=%.3f\n", stats.loss.back(),
                stats.accuracy.back());

    // Estimated wall time of 200 epochs per framework (Fig. 16).
    std::printf("\nestimated 200-epoch training time (RTX4090 "
                "model):\n");
    GcnTrainingConfig tcfg;
    tcfg.inFeatures = features;
    tcfg.hidden = 128;
    tcfg.classes = 4;
    tcfg.epochs = 200;
    const ArchSpec arch = ArchSpec::rtx4090();
    for (GnnFramework fw :
         {GnnFramework::DtcGcn, GnnFramework::Dgl,
          GnnFramework::PygSparseTensor, GnnFramework::TcGnn}) {
        auto est = estimateGcnTraining(a, fw, tcfg, arch);
        std::printf("  %-18s %8.1f ms  (SpMM %.1f, GEMM %.1f, "
                    "overhead %.1f, conversion %.1f)\n",
                    gnnFrameworkName(fw), est.totalMs, est.spmmMs,
                    est.gemmMs, est.overheadMs, est.conversionMs);
    }
    return 0;
}
