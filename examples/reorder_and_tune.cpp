/**
 * @file
 * Offline preprocessing walkthrough: given a sparse matrix (here
 * loaded through the Matrix Market path, as a deployment would),
 * compare every reordering method's condensation quality and
 * simulated SpMM throughput, apply the best one, and show the
 * Selector's decision before/after — the paper's Fig. 4 pipeline as
 * a tuning session.
 *
 * Run: ./build/examples/reorder_and_tune [path/to/matrix.mtx]
 */
#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "datasets/generators.h"
#include "formats/sgt.h"
#include "kernels/dtc.h"
#include "matrix/mm_io.h"
#include "matrix/stats.h"
#include "reorder/orderings.h"

int
main(int argc, char** argv)
{
    using namespace dtc;

    CsrMatrix a;
    if (argc > 1) {
        std::printf("loading %s...\n", argv[1]);
        a = CsrMatrix::fromCoo(readMatrixMarketFile(argv[1]));
    } else {
        // Demo input: a community graph written to and read back
        // from Matrix Market, labels shuffled.
        Rng rng(3);
        CsrMatrix gen = shuffleLabels(
            genCommunity(4096, 32, 30.0, 0.92, rng), rng);
        const char* path = "/tmp/dtc_example.mtx";
        writeMatrixMarketFile(path, gen.toCoo());
        std::printf("no input given; wrote demo matrix to %s\n",
                    path);
        a = CsrMatrix::fromCoo(readMatrixMarketFile(path));
    }
    std::printf("matrix: %s\n\n", computeStats(a).toString().c_str());

    const ArchSpec arch = ArchSpec::rtx4090();
    const CostModel cm(arch);
    auto evaluate = [&](const CsrMatrix& m) {
        DtcKernel kernel;
        kernel.prepare(m);
        return kernel.cost(128, cm);
    };

    const double base_mean = sgtCondense(a).meanNnzTc;
    const double base_ms = evaluate(a).timeMs;
    std::printf("%-14s MeanNnzTC %7.2f  simulated %8.4f ms  "
                "(reorder cost      --)\n",
                "original", base_mean, base_ms);

    ReorderMethod best = ReorderMethod::Identity;
    double best_ms = base_ms;
    for (ReorderMethod method :
         {ReorderMethod::Degree, ReorderMethod::Rcm,
          ReorderMethod::Metis, ReorderMethod::Louvain,
          ReorderMethod::Lsh64, ReorderMethod::Tca}) {
        Stopwatch sw;
        auto perm = computeReordering(a, method);
        const double reorder_ms = sw.elapsedMs();
        CsrMatrix reordered = a.permuteRows(perm);
        const double mean = sgtCondense(reordered).meanNnzTc;
        const double ms = evaluate(reordered).timeMs;
        std::printf("%-14s MeanNnzTC %7.2f  simulated %8.4f ms  "
                    "(reorder cost %7.1f ms host)\n",
                    reorderMethodName(method), mean, ms, reorder_ms);
        if (ms < best_ms) {
            best_ms = ms;
            best = method;
        }
    }

    std::printf("\nbest method: %s (%.1f%% faster than original "
                "ordering)\n",
                reorderMethodName(best),
                100.0 * (base_ms / best_ms - 1.0));

    CsrMatrix tuned =
        a.permuteRows(computeReordering(a, best));
    DtcKernel kernel;
    kernel.prepare(tuned);
    SelectorDecision d = kernel.decide(arch);
    std::printf("Selector on tuned matrix: AR=%.2f -> %s kernel\n",
                d.approximationRatio,
                d.useBalanced ? "strict-balance" : "base");
    return 0;
}
