/**
 * @file
 * Quickstart: the complete DTC-SpMM pipeline in ~60 lines of API.
 *
 *   1. build (or load) a sparse matrix,
 *   2. convert it to ME-TCF inside the DTC-SpMM kernel,
 *   3. let the simulation-based Selector pick base vs balanced,
 *   4. compute C = A * B functionally (TF32 numerics),
 *   5. verify against the reference and report simulated performance,
 *   6. do the same through the resilient runtime — the entry point a
 *      deployment actually calls (deadline, retry/reroute, guard).
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "common/rng.h"
#include "datasets/generators.h"
#include "gpusim/cost_model.h"
#include "kernels/dtc.h"
#include "kernels/reference.h"
#include "matrix/stats.h"
#include "runtime/runtime.h"

int
main()
{
    using namespace dtc;

    // 1. A synthetic GNN-style adjacency matrix: 4096 nodes in 16
    //    communities, ~40 neighbours per node, labels shuffled the
    //    way real-world node ids are.
    Rng rng(42);
    CsrMatrix a = shuffleLabels(
        genCommunity(4096, 16, 40.0, 0.9, rng), rng);
    std::printf("matrix: %s\n", computeStats(a).toString().c_str());

    // 2. Prepare the DTC-SpMM kernel: this converts A to ME-TCF.
    DtcKernel kernel; // default options = full DTC-SpMM, Auto mode
    const std::string err = kernel.prepare(a);
    if (!err.empty()) {
        std::printf("prepare failed: %s\n", err.c_str());
        return 1;
    }
    std::printf("ME-TCF: %lld TC blocks, MeanNnzTC=%.2f, index "
                "footprint %.1f%% of CSR\n",
                static_cast<long long>(kernel.meTcf().numTcBlocks()),
                kernel.meTcf().meanNnzTc(),
                100.0 *
                    static_cast<double>(
                        kernel.meTcf().indexElementCount()) /
                    static_cast<double>(a.indexElementCount()));

    // 3. The Selector decides the load-distribution strategy.
    const ArchSpec arch = ArchSpec::rtx4090();
    SelectorDecision d = kernel.decide(arch);
    std::printf("Selector: AR=%.2f -> %s kernel\n",
                d.approximationRatio,
                d.useBalanced ? "strict-balance" : "base");

    // 4. Compute C = A * B.
    const int64_t n = 128;
    DenseMatrix b(a.cols(), n), c(a.rows(), n);
    b.fillRandom(rng);
    kernel.compute(b, c);

    // 5. Verify against the TF32 reference (bit-exact) and the
    //    double-precision reference (tolerance), then report the
    //    simulated launch.
    DenseMatrix want_tf32(a.rows(), n), want_fp64(a.rows(), n);
    referenceSpmmTf32(a, b, want_tf32);
    referenceSpmm(a, b, want_fp64);
    std::printf("verification: TF32 bit-exact=%s, max |err| vs fp64 "
                "reference=%.2e\n",
                c == want_tf32 ? "yes" : "NO",
                c.maxAbsDiff(want_fp64));

    CostModel cm(arch);
    LaunchResult r = kernel.cost(n, cm);
    std::printf("simulated on %s: %.3f ms, %.1f GFLOPS, TC pipe "
                "utilization %.1f%%, L2 hit rate %.1f%%\n",
                arch.name.c_str(), r.timeMs, r.gflops(),
                r.tcUtilPct, r.l2HitRate * 100.0);

    // 6. In a deployment you don't pick a kernel by hand: the
    //    resilient runtime tunes the whole registry, runs the winner
    //    under a deadline, retries transient failures, reroutes
    //    around persistent ones (circuit breaker), and spot-checks
    //    ~1% of output rows against a double-precision recompute.
    runtime::RuntimeOptions ropt;
    ropt.deadlineMs = 10000;        // or export DTC_DEADLINE_MS
    ropt.guard.sampleFraction = 0.01; // or export DTC_GUARD_SAMPLE
    runtime::Runtime rt(a, cm, std::move(ropt));
    runtime::RunReport rep;
    rt.run(b, c, &rep);
    std::printf("runtime: kernel=%s attempts=%d guard rows "
                "checked=%lld, max |err| vs fp64=%.2e\n",
                rep.kernel.c_str(), rep.attempts,
                static_cast<long long>(rep.guardRowsChecked),
                c.maxAbsDiff(want_fp64));
    return 0;
}
