/**
 * @file
 * Serving-layer demo: N concurrent tenants share one SpmmService.
 *
 * What it shows, in order:
 *
 *   1. attach two sparse operands and start a threaded service,
 *   2. fire 4 client threads x 6 async submits each (mixed A,
 *      mixed precision, one tenant with a tight deadline),
 *   3. harvest the futures: per-request RunReport, cache-hit flag,
 *      and how many requests rode in the same batched execution,
 *   4. dump the serve.* counters — tune/prepare ran once per
 *      (A, precision), everything else was cache reuse, and
 *      same-A requests coalesced into wide-panel executions
 *      (the paper's preprocessing-amortization story, served).
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/serve_demo
 */
#include <cstdio>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "datasets/generators.h"
#include "matrix/dense.h"
#include "obs/metrics.h"
#include "serve/service.h"

using namespace dtc;

namespace {

DenseMatrix
makePanel(int64_t rows, int64_t cols, uint64_t seed)
{
    Rng rng(seed);
    DenseMatrix b(rows, cols);
    b.fillRandom(rng);
    return b;
}

} // namespace

int
main()
{
    // 1. Two tenant matrices: a GNN-style community graph and a
    //    uniform-random one.  The service keeps tuned/prepared state
    //    for each behind a content-hashed LRU.
    Rng rng(7);
    CsrMatrix graph = genCommunity(2048, 16, 12.0, 0.85, rng);
    CsrMatrix mesh = genUniform(1536, 8.0, rng);

    serve::ServeOptions so;
    so.threads = 2;
    so.maxBatch = 8;
    serve::SpmmService svc(so);
    const serve::MatrixHandle hg = svc.attach(graph);
    const serve::MatrixHandle hm = svc.attach(mesh);

    // 2. Four clients, six requests each, submitted concurrently.
    //    Client 3 runs with a 5 ms deadline to show the typed
    //    failure path — a lapsed deadline arrives through the
    //    future as DtcError{DeadlineExceeded}, never as a crash.
    const int clients = 4;
    const int per_client = 6;
    std::mutex mu;
    std::vector<std::future<serve::SubmitResult>> futures;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            Rng crng(100 + static_cast<uint64_t>(c));
            for (int i = 0; i < per_client; ++i) {
                const bool on_graph = (c + i) % 3 != 0;
                const serve::MatrixHandle h = on_graph ? hg : hm;
                const int64_t rows =
                    on_graph ? graph.cols() : mesh.cols();
                DenseMatrix b = makePanel(rows, 16, crng.next64());
                const Precision p = (c % 2 == 0) ? Precision::Fp32
                                                 : Precision::Tf32;
                serve::SubmitOptions sopt;
                if (c == 3)
                    sopt.deadlineMs = 5;
                try {
                    auto f = svc.submit(h, std::move(b), p, sopt);
                    std::lock_guard<std::mutex> lk(mu);
                    futures.push_back(std::move(f));
                } catch (const DtcError& e) {
                    // Full admission queue — a typed, retryable
                    // rejection the client sees synchronously.
                    std::printf("client %d: rejected: %s\n", c,
                                e.what());
                }
            }
        });
    }
    for (std::thread& t : threads)
        t.join();

    // 3. Harvest.  Each future either carries a result (with the
    //    RunReport of the execution that served it) or throws the
    //    typed DtcError for that request alone.
    int ok = 0, deadline = 0, hits = 0;
    int64_t batched = 0;
    for (auto& f : futures) {
        try {
            serve::SubmitResult r = f.get();
            ++ok;
            if (r.preparedCacheHit)
                ++hits;
            if (r.batchSize > 1)
                batched += 1;
        } catch (const DtcError& e) {
            if (e.code() == ErrorCode::DeadlineExceeded)
                ++deadline;
            else
                std::printf("request failed: %s\n", e.what());
        }
    }
    svc.drain();
    std::printf("requests: %d ok, %d deadline-expired, "
                "%d served from warm cache, %lld rode a batch\n",
                ok, deadline, hits,
                static_cast<long long>(batched));

    // One more request after the storm: the service is warm now, so
    // this pays neither tune nor prepare — preprocessing amortized
    // across every tenant that follows.
    const serve::SubmitResult warm =
        svc.run(hg, makePanel(graph.cols(), 16, 999),
                Precision::Fp32);
    std::printf("post-storm request: cache_hit=%s kernel=%s\n",
                warm.preparedCacheHit ? "yes" : "no",
                warm.report.kernel.c_str());

    // 4. The service-level story in counters: tune/prepare ran once
    //    per distinct (A contents, precision); every other request
    //    reused it, and queued same-A requests coalesced.
    const char* keys[] = {
        "serve.submits",          "serve.cache.hits",
        "serve.cache.misses",     "serve.batches",
        "serve.batched_requests", "serve.deadline_expired_queued",
        "tuner.tunes",
    };
    std::printf("\ncounters:\n");
    for (const char* k : keys)
        std::printf("  %-30s %llu\n", k,
                    static_cast<unsigned long long>(
                        obs::metrics::counterValue(k)));
    return 0;
}
