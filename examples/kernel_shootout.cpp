/**
 * @file
 * Kernel shootout: runs every SpMM implementation in the library on
 * one matrix — functional verification against the reference plus
 * the simulated RTX4090 launch — and prints a comparison table.
 * A compact tour of the whole kernel zoo, including the baselines'
 * refusal behaviours (BELL OOM, SparTA dimension limit).
 *
 * Run: ./build/examples/kernel_shootout [rows] [avg_degree]
 */
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "datasets/generators.h"
#include "kernels/kernel.h"
#include "kernels/reference.h"
#include "tuner/tuner.h"

int
main(int argc, char** argv)
{
    using namespace dtc;

    const int64_t rows = argc > 1 ? std::atoll(argv[1]) : 2048;
    const double avg = argc > 2 ? std::atof(argv[2]) : 24.0;

    Rng rng(123);
    CsrMatrix a = shuffleLabels(
        genCommunity(rows, std::max<int64_t>(4, rows / 256), avg,
                     0.85, rng),
        rng);
    const int64_t n = 128;
    DenseMatrix b(a.cols(), n);
    b.fillRandom(rng);
    DenseMatrix want(a.rows(), n);
    referenceSpmm(a, b, want);

    const CostModel cm(ArchSpec::rtx4090());
    std::printf("%lld x %lld, nnz=%lld, N=%lld (RTX4090 model)\n\n",
                static_cast<long long>(a.rows()),
                static_cast<long long>(a.cols()),
                static_cast<long long>(a.nnz()),
                static_cast<long long>(n));
    std::printf("%-20s %10s %10s %8s %10s  %s\n", "kernel",
                "time(ms)", "GFLOPS", "TC util", "max|err|",
                "status");

    for (KernelKind kind :
         {KernelKind::CuSparse, KernelKind::Sputnik,
          KernelKind::SparseTir, KernelKind::Tcgnn,
          KernelKind::DtcBase, KernelKind::DtcBalanced,
          KernelKind::Dtc, KernelKind::BlockSpmm32,
          KernelKind::BlockSpmm64, KernelKind::VectorSparse4,
          KernelKind::VectorSparse8, KernelKind::FlashLlmV1,
          KernelKind::FlashLlmV2, KernelKind::SparTA}) {
        auto kernel = makeKernel(kind);
        const std::string err = kernel->prepare(a);
        if (!err.empty()) {
            std::printf("%-20s %10s %10s %8s %10s  %s\n",
                        kernelKindName(kind), "-", "-", "-", "-",
                        err.c_str());
            continue;
        }
        DenseMatrix c(a.rows(), n);
        kernel->compute(b, c);
        LaunchResult r = kernel->cost(n, cm);
        std::printf("%-20s %10.4f %10.1f %7.1f%% %10.2e  ok\n",
                    kernel->name().c_str(), r.timeMs, r.gflops(),
                    r.tcUtilPct, c.maxAbsDiff(want));
    }

    // The tuner makes the deployment call, amortizing conversion.
    std::printf("\ntuner verdicts (amortized per-SpMM time):\n");
    for (int64_t iterations : {int64_t{1}, int64_t{1000}}) {
        TuneRequest req;
        req.denseWidth = n;
        req.iterations = iterations;
        TuneResult res = tuneSpmm(a, req, cm);
        std::printf("  %5lld iteration(s): use %-14s (%.4f ms "
                    "amortized, conversion %.3f ms)\n",
                    static_cast<long long>(iterations),
                    res.best().name.c_str(), res.best().amortizedMs,
                    res.best().conversionMs);
    }
    return 0;
}
