/**
 * @file
 * Iterative SpMM workload (the scenario Section 6 argues DTC-SpMM
 * is built for): semi-supervised label propagation, where the same
 * sparse adjacency multiplies a dense label-distribution matrix for
 * many iterations — so the one-time ME-TCF conversion, reordering
 * and Selector costs amortize to nothing.
 *
 *   X_{t+1}[i] = normalize( sum_{j in N(i)} A_ij * X_t[j] ),
 *   seeded nodes clamped to their one-hot labels.
 *
 * Run: ./build/examples/label_propagation
 */
#include <cstdio>

#include "common/rng.h"
#include "datasets/generators.h"
#include "gpusim/cost_model.h"
#include "kernels/dtc.h"
#include "kernels/kernel.h"

int
main()
{
    using namespace dtc;

    // A community graph whose communities define the ground truth.
    const int64_t n = 4096, n_comm = 8, labels = 8;
    Rng rng(5);
    CsrMatrix a = genCommunity(n, n_comm, 24.0, 0.92, rng);
    const int64_t comm_size = n / n_comm;

    // Seed 2% of the nodes with their true label.
    std::vector<int8_t> seeded(static_cast<size_t>(n), 0);
    DenseMatrix x(n, labels);
    for (int64_t i = 0; i < n; ++i) {
        if (rng.nextDouble() < 0.02) {
            seeded[i] = 1;
            x.at(i, i / comm_size) = 1.0f;
        } else {
            for (int64_t l = 0; l < labels; ++l)
                x.at(i, l) = 1.0f / static_cast<float>(labels);
        }
    }

    DtcKernel kernel;
    const std::string err = kernel.prepare(a);
    if (!err.empty()) {
        std::printf("prepare failed: %s\n", err.c_str());
        return 1;
    }

    const int iterations = 30;
    DenseMatrix next(n, labels);
    for (int it = 1; it <= iterations; ++it) {
        kernel.compute(x, next); // the SpMM

        // Row-normalize and clamp the seeds.
        for (int64_t i = 0; i < n; ++i) {
            if (seeded[i])
                continue;
            double sum = 0.0;
            for (int64_t l = 0; l < labels; ++l)
                sum += next.at(i, l);
            if (sum <= 0.0)
                continue;
            for (int64_t l = 0; l < labels; ++l)
                x.at(i, l) = static_cast<float>(next.at(i, l) / sum);
        }

        if (it % 10 == 0 || it == 1) {
            int64_t correct = 0;
            for (int64_t i = 0; i < n; ++i) {
                int64_t best = 0;
                for (int64_t l = 1; l < labels; ++l)
                    if (x.at(i, l) > x.at(i, best))
                        best = l;
                if (best == i / comm_size)
                    correct++;
            }
            std::printf("iteration %2d: accuracy %.3f\n", it,
                        static_cast<double>(correct) /
                            static_cast<double>(n));
        }
    }

    // Amortization math the paper makes in Section 6.
    CostModel cm(ArchSpec::rtx4090());
    const double spmm_ms = kernel.cost(labels, cm).timeMs;
    const double conv_ms =
        static_cast<double>(a.nnz()) * 40.0 /
        (cm.arch().dramBwGBps * 1e9) * 1e3 * 6.0;
    std::printf("\nsimulated: one SpMM = %.4f ms; conversion = %.4f "
                "ms; over %d iterations conversion adds %.2f%%\n",
                spmm_ms, conv_ms, iterations,
                100.0 * conv_ms /
                    (spmm_ms * static_cast<double>(iterations)));
    return 0;
}
