/**
 * @file
 * Unit tests for Matrix Market I/O: parsing, symmetric expansion,
 * pattern handling, round trips, malformed inputs.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "common/budget.h"
#include "common/error.h"
#include "common/rng.h"
#include "datasets/generators.h"
#include "matrix/csr.h"
#include "matrix/mm_io.h"

namespace dtc {
namespace {

/**
 * Parses @p text and requires a typed outcome: success or DtcError
 * with a non-Internal code.  The corruption sweep feeds this hostile
 * bytes; an untyped exception or crash is a failure.
 */
void
expectTypedParse(const std::string& text, const std::string& label)
{
    std::istringstream in(text);
    try {
        CooMatrix m = readMatrixMarket(in);
        (void)m;
    } catch (const DtcError& e) {
        EXPECT_NE(e.code(), ErrorCode::Internal) << label;
    } catch (const std::exception& e) {
        FAIL() << label << ": untyped exception: " << e.what();
    }
}

TEST(MmIo, ParsesGeneralReal)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment line\n"
        "3 4 2\n"
        "1 2 1.5\n"
        "3 4 -2.0\n");
    CooMatrix coo = readMatrixMarket(in);
    EXPECT_EQ(coo.rows(), 3);
    EXPECT_EQ(coo.cols(), 4);
    EXPECT_EQ(coo.nnz(), 2);
    CsrMatrix m = CsrMatrix::fromCoo(coo);
    auto d = m.toDense();
    EXPECT_FLOAT_EQ(d[0 * 4 + 1], 1.5f);
    EXPECT_FLOAT_EQ(d[2 * 4 + 3], -2.0f);
}

TEST(MmIo, SymmetricExpandsBothTriangles)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "2 1 4.0\n"
        "3 3 7.0\n");
    CooMatrix coo = readMatrixMarket(in);
    CsrMatrix m = CsrMatrix::fromCoo(coo);
    EXPECT_EQ(m.nnz(), 3); // (1,0), (0,1), (2,2)
    auto d = m.toDense();
    EXPECT_FLOAT_EQ(d[1 * 3 + 0], 4.0f);
    EXPECT_FLOAT_EQ(d[0 * 3 + 1], 4.0f);
    EXPECT_FLOAT_EQ(d[2 * 3 + 2], 7.0f);
}

TEST(MmIo, PatternEntriesGetUnitValues)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 1\n"
        "2 2\n");
    CooMatrix coo = readMatrixMarket(in);
    EXPECT_FLOAT_EQ(coo.values()[0], 1.0f);
    EXPECT_FLOAT_EQ(coo.values()[1], 1.0f);
}

TEST(MmIo, IntegerFieldAccepted)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate integer general\n"
        "2 2 1\n"
        "2 1 -3\n");
    CooMatrix coo = readMatrixMarket(in);
    EXPECT_FLOAT_EQ(coo.values()[0], -3.0f);
}

TEST(MmIo, RejectsMissingBanner)
{
    std::istringstream in("3 3 0\n");
    EXPECT_THROW(readMatrixMarket(in), std::invalid_argument);
}

TEST(MmIo, RejectsUnsupportedFormat)
{
    std::istringstream in(
        "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
    EXPECT_THROW(readMatrixMarket(in), std::invalid_argument);
}

TEST(MmIo, RejectsOutOfRangeEntry)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 1.0\n");
    EXPECT_THROW(readMatrixMarket(in), std::invalid_argument);
}

TEST(MmIo, RejectsTruncatedFile)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n");
    EXPECT_THROW(readMatrixMarket(in), std::invalid_argument);
}

TEST(MmIo, WriteReadRoundTrip)
{
    Rng rng(11);
    CsrMatrix m = genUniform(64, 5.0, rng);
    std::ostringstream out;
    writeMatrixMarket(out, m.toCoo());
    std::istringstream in(out.str());
    CsrMatrix back = CsrMatrix::fromCoo(readMatrixMarket(in));
    EXPECT_EQ(back.rows(), m.rows());
    EXPECT_EQ(back.nnz(), m.nnz());
    EXPECT_EQ(back.rowPtr(), m.rowPtr());
    EXPECT_EQ(back.colIdx(), m.colIdx());
    // The writer emits max_digits10 significant digits, so the text
    // round trip is bit-exact — the fuzz corpus replays shrunk
    // failures from .mtx files and needs the identical floats back.
    EXPECT_EQ(back.values(), m.values());
    EXPECT_TRUE(back == m);
}

TEST(MmIo, FileRoundTrip)
{
    Rng rng(12);
    CsrMatrix m = genBanded(32, 4, 3.0, rng);
    const std::string path = "/tmp/dtc_mmio_test.mtx";
    writeMatrixMarketFile(path, m.toCoo());
    CsrMatrix back = CsrMatrix::fromCoo(readMatrixMarketFile(path));
    EXPECT_EQ(back.rowPtr(), m.rowPtr());
    EXPECT_EQ(back.colIdx(), m.colIdx());
}

TEST(MmIo, MissingFileThrows)
{
    EXPECT_THROW(readMatrixMarketFile("/nonexistent/nope.mtx"),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Hardened parsing: malformed tokens, trailing garbage, dimension
// overflow, budget enforcement, and a seeded mutation sweep.
// ---------------------------------------------------------------------

TEST(MmIoRobustness, RejectsNonNumericTokens)
{
    const char* cases[] = {
        // Bad size line.
        "%%MatrixMarket matrix coordinate real general\nx 3 1\n1 1 1\n",
        "%%MatrixMarket matrix coordinate real general\n3 y 1\n1 1 1\n",
        "%%MatrixMarket matrix coordinate real general\n3 3 z\n1 1 1\n",
        "%%MatrixMarket matrix coordinate real general\n3 3 1 9\n1 1 1\n",
        // Bad entry tokens.
        "%%MatrixMarket matrix coordinate real general\n3 3 1\na 1 1\n",
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 b 1\n",
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 c\n",
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1\n",
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 1 extra\n",
        // Pattern entry with a stray value.
        "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1 5\n",
    };
    for (const char* text : cases) {
        std::istringstream in(text);
        try {
            readMatrixMarket(in);
            FAIL() << "accepted: " << text;
        } catch (const DtcError& e) {
            EXPECT_EQ(e.code(), ErrorCode::InvalidInput) << text;
        }
    }
}

TEST(MmIoRobustness, RejectsTrailingGarbage)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "1 1 1.0\n"
        "2 2 9.0\n"); // one more entry than declared
    try {
        readMatrixMarket(in);
        FAIL() << "trailing entry accepted";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidInput);
        EXPECT_EQ(e.context().component, "mm_io");
    }
}

TEST(MmIoRobustness, AllowsTrailingCommentsAndBlanks)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "1 1 1.0\n"
        "\n"
        "% trailing comment is fine\n");
    CooMatrix m = readMatrixMarket(in);
    EXPECT_EQ(m.nnz(), 1);
}

TEST(MmIoRobustness, RejectsDimensionsBeyondInt32)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "4294967296 10 0\n");
    try {
        readMatrixMarket(in);
        FAIL() << "oversized dims accepted";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidInput);
        EXPECT_EQ(e.context().rows, 4294967296ll);
    }
}

TEST(MmIoRobustness, StagingBudgetBoundsEntryCount)
{
    // A header declaring a billion entries must be refused before the
    // reserve, not after the machine pages itself to death.
    ResourceBudget tiny = ResourceBudget::defaults();
    tiny.stagingBytes = 1024;
    ScopedResourceBudget scope(tiny);
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "1000 1000 1000000000\n");
    try {
        readMatrixMarket(in);
        FAIL() << "over-budget entry count accepted";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::ResourceExhausted);
    }
}

TEST(MmIoRobustness, SeededCharacterMutationSweep)
{
    // Corrupt single characters of a valid file at seeded positions.
    // Some mutations stay parseable (digit swaps); every other
    // outcome must be a typed InvalidInput — never a crash or an
    // Internal error.
    Rng rng(0x3a7);
    CsrMatrix m = genUniform(48, 4.0, rng);
    std::ostringstream out;
    writeMatrixMarket(out, m.toCoo());
    const std::string good = out.str();

    const char replacements[] = {'x', '-', '%', ' ', '\t', '.', '9',
                                 '\0', '?', ':'};
    for (int i = 0; i < 80; ++i) {
        std::string bad = good;
        const size_t pos = static_cast<size_t>(rng.nextInt(
            0, static_cast<int64_t>(bad.size()) - 1));
        bad[pos] = replacements[rng.nextInt(
            0, static_cast<int64_t>(sizeof(replacements)) - 1)];
        expectTypedParse(bad, "mutation at " + std::to_string(pos));
    }
}

TEST(MmIoRobustness, SeededTruncationSweep)
{
    Rng rng(0x3a8);
    CsrMatrix m = genBanded(40, 4, 3.0, rng);
    std::ostringstream out;
    writeMatrixMarket(out, m.toCoo());
    const std::string good = out.str();
    for (int i = 0; i < 30; ++i) {
        const size_t keep = static_cast<size_t>(rng.nextInt(
            0, static_cast<int64_t>(good.size()) - 1));
        expectTypedParse(good.substr(0, keep),
                         "truncate to " + std::to_string(keep));
    }
}

} // namespace
} // namespace dtc
