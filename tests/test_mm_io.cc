/**
 * @file
 * Unit tests for Matrix Market I/O: parsing, symmetric expansion,
 * pattern handling, round trips, malformed inputs.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "datasets/generators.h"
#include "matrix/csr.h"
#include "matrix/mm_io.h"

namespace dtc {
namespace {

TEST(MmIo, ParsesGeneralReal)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment line\n"
        "3 4 2\n"
        "1 2 1.5\n"
        "3 4 -2.0\n");
    CooMatrix coo = readMatrixMarket(in);
    EXPECT_EQ(coo.rows(), 3);
    EXPECT_EQ(coo.cols(), 4);
    EXPECT_EQ(coo.nnz(), 2);
    CsrMatrix m = CsrMatrix::fromCoo(coo);
    auto d = m.toDense();
    EXPECT_FLOAT_EQ(d[0 * 4 + 1], 1.5f);
    EXPECT_FLOAT_EQ(d[2 * 4 + 3], -2.0f);
}

TEST(MmIo, SymmetricExpandsBothTriangles)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "2 1 4.0\n"
        "3 3 7.0\n");
    CooMatrix coo = readMatrixMarket(in);
    CsrMatrix m = CsrMatrix::fromCoo(coo);
    EXPECT_EQ(m.nnz(), 3); // (1,0), (0,1), (2,2)
    auto d = m.toDense();
    EXPECT_FLOAT_EQ(d[1 * 3 + 0], 4.0f);
    EXPECT_FLOAT_EQ(d[0 * 3 + 1], 4.0f);
    EXPECT_FLOAT_EQ(d[2 * 3 + 2], 7.0f);
}

TEST(MmIo, PatternEntriesGetUnitValues)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 1\n"
        "2 2\n");
    CooMatrix coo = readMatrixMarket(in);
    EXPECT_FLOAT_EQ(coo.values()[0], 1.0f);
    EXPECT_FLOAT_EQ(coo.values()[1], 1.0f);
}

TEST(MmIo, IntegerFieldAccepted)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate integer general\n"
        "2 2 1\n"
        "2 1 -3\n");
    CooMatrix coo = readMatrixMarket(in);
    EXPECT_FLOAT_EQ(coo.values()[0], -3.0f);
}

TEST(MmIo, RejectsMissingBanner)
{
    std::istringstream in("3 3 0\n");
    EXPECT_THROW(readMatrixMarket(in), std::invalid_argument);
}

TEST(MmIo, RejectsUnsupportedFormat)
{
    std::istringstream in(
        "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
    EXPECT_THROW(readMatrixMarket(in), std::invalid_argument);
}

TEST(MmIo, RejectsOutOfRangeEntry)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 1.0\n");
    EXPECT_THROW(readMatrixMarket(in), std::invalid_argument);
}

TEST(MmIo, RejectsTruncatedFile)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n");
    EXPECT_THROW(readMatrixMarket(in), std::invalid_argument);
}

TEST(MmIo, WriteReadRoundTrip)
{
    Rng rng(11);
    CsrMatrix m = genUniform(64, 5.0, rng);
    std::ostringstream out;
    writeMatrixMarket(out, m.toCoo());
    std::istringstream in(out.str());
    CsrMatrix back = CsrMatrix::fromCoo(readMatrixMarket(in));
    EXPECT_EQ(back.rows(), m.rows());
    EXPECT_EQ(back.nnz(), m.nnz());
    EXPECT_EQ(back.rowPtr(), m.rowPtr());
    EXPECT_EQ(back.colIdx(), m.colIdx());
    // Values pass through text formatting; compare loosely.
    for (int64_t i = 0; i < m.nnz(); ++i)
        EXPECT_NEAR(back.values()[i], m.values()[i], 1e-4f);
}

TEST(MmIo, FileRoundTrip)
{
    Rng rng(12);
    CsrMatrix m = genBanded(32, 4, 3.0, rng);
    const std::string path = "/tmp/dtc_mmio_test.mtx";
    writeMatrixMarketFile(path, m.toCoo());
    CsrMatrix back = CsrMatrix::fromCoo(readMatrixMarketFile(path));
    EXPECT_EQ(back.rowPtr(), m.rowPtr());
    EXPECT_EQ(back.colIdx(), m.colIdx());
}

TEST(MmIo, MissingFileThrows)
{
    EXPECT_THROW(readMatrixMarketFile("/nonexistent/nope.mtx"),
                 std::invalid_argument);
}

} // namespace
} // namespace dtc
