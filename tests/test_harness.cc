/**
 * @file
 * Tests of the conformance & fuzzing harness itself (src/testing/):
 * generator determinism and per-family structure contracts, oracle
 * verdicts across every adversarial family, metamorphic properties,
 * shrinker behaviour, and the end-to-end demonstration the harness
 * exists for — a deliberately injected off-by-one in an ME-TCF
 * local-index decode is invisible to benign inputs, caught by the
 * differential oracle on adversarial structure, and shrunk to a
 * <= 32-nnz replayable corpus artifact.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>

#include "common/error.h"
#include "common/precision.h"
#include "formats/me_tcf.h"
#include "kernels/kernel.h"
#include "matrix/coo.h"
#include "matrix/csr.h"
#include "matrix/dense.h"
#include "testing/fuzz.h"
#include "testing/generators.h"
#include "testing/oracle.h"
#include "testing/properties.h"
#include "testing/shrink.h"

namespace dtc {
namespace {

using testing::StructureFamily;

// ---------------------------------------------------------------------
// Structure generators.
// ---------------------------------------------------------------------

TEST(Generators, DeterministicAndValidAcrossFamiliesAndScales)
{
    for (StructureFamily family : testing::allStructureFamilies()) {
        SCOPED_TRACE(testing::structureFamilyName(family));
        for (int scale : {0, 1}) {
            const CsrMatrix a =
                testing::generateStructure(family, 5, scale);
            const CsrMatrix b =
                testing::generateStructure(family, 5, scale);
            EXPECT_TRUE(a == b) << "scale " << scale;
            EXPECT_NO_THROW(a.validate());
        }
    }
}

TEST(Generators, FamilyNamesRoundTripAndAreUnique)
{
    std::set<std::string> names;
    for (StructureFamily family : testing::allStructureFamilies()) {
        const std::string n = testing::structureFamilyName(family);
        EXPECT_TRUE(names.insert(n).second) << "duplicate name " << n;
        EXPECT_EQ(testing::structureFamilyFromName(n), family);
    }
    EXPECT_THROW(testing::structureFamilyFromName("not-a-family"),
                 DtcError);
}

/** Max nonzeros in any single row of @p m. */
int64_t
maxRowNnz(const CsrMatrix& m)
{
    int64_t best = 0;
    for (int64_t r = 0; r < m.rows(); ++r)
        best = std::max(best, m.rowPtr()[r + 1] - m.rowPtr()[r]);
    return best;
}

TEST(Generators, FamiliesDeliverTheirAdvertisedPathology)
{
    // Each family exists to stress a specific structural corner; if a
    // refactor quietly softens one, the fuzzer's coverage claim rots.
    const uint64_t seed = 9;

    const CsrMatrix empty_rows = testing::generateStructure(
        StructureFamily::EmptyRows, seed, 0);
    int64_t empties = 0;
    for (int64_t r = 0; r < empty_rows.rows(); ++r) {
        if (empty_rows.rowPtr()[r + 1] == empty_rows.rowPtr()[r])
            ++empties;
    }
    EXPECT_GT(empties, empty_rows.rows() / 2);

    const CsrMatrix singleton = testing::generateStructure(
        StructureFamily::SingletonRows, seed, 0);
    EXPECT_EQ(maxRowNnz(singleton), 1);
    EXPECT_GT(singleton.nnz(), 0);

    const CsrMatrix hub = testing::generateStructure(
        StructureFamily::PowerLaw, seed, 0);
    EXPECT_GE(maxRowNnz(hub), hub.cols() / 2);

    EXPECT_EQ(testing::generateStructure(StructureFamily::SingleRowWide,
                                         seed, 0)
                  .rows(),
              1);
    EXPECT_EQ(testing::generateStructure(StructureFamily::SingleColTall,
                                         seed, 0)
                  .cols(),
              1);
    EXPECT_EQ(testing::generateStructure(StructureFamily::AllZero, seed,
                                         0)
                  .nnz(),
              0);

    const CsrMatrix wide = testing::generateStructure(
        StructureFamily::WideColumnSpan, seed, 0);
    EXPECT_GT(wide.cols(), int64_t{32768});
    int64_t span = 0;
    for (int64_t r = 0; r < wide.rows(); ++r) {
        const int64_t lo = wide.rowPtr()[r], hi = wide.rowPtr()[r + 1];
        if (hi > lo)
            span = std::max<int64_t>(
                span, wide.colIdx()[hi - 1] - wide.colIdx()[lo]);
    }
    EXPECT_GT(span, int64_t{32767});

    const CsrMatrix zeros = testing::generateStructure(
        StructureFamily::ZeroValues, seed, 0);
    int64_t stored_zeros = 0;
    for (float v : zeros.values())
        stored_zeros += (v == 0.0f);
    EXPECT_GT(stored_zeros, 0);
}

// ---------------------------------------------------------------------
// Oracle.
// ---------------------------------------------------------------------

TEST(Oracle, GreenOnEveryAdversarialFamily)
{
    // The full-width sweep lives in the fuzz_smoke ctest; this inner
    // slice keeps gtest fast while still touching every family.
    testing::OracleConfig cfg;
    cfg.precisions = {Precision::Fp32, Precision::Tf32,
                      Precision::Fp16};
    cfg.threadCounts = {1, 4};
    for (StructureFamily family : testing::allStructureFamilies()) {
        testing::OracleCase c;
        c.a = testing::generateStructure(family, 2, 0);
        c.label = testing::structureFamilyName(family);
        const testing::OracleReport rep = testing::runOracle(c, cfg);
        EXPECT_TRUE(rep.ok())
            << c.label << ": "
            << (rep.firstFailure() ? rep.firstFailure()->describe()
                                   : "");
        EXPECT_GT(rep.passes, 0) << c.label;
        EXPECT_EQ(rep.combos(),
                  static_cast<int64_t>(allKernelKinds().size()) * 3 * 2
                      * 2 * 2)
            << c.label;
    }
}

TEST(Oracle, SingleConfigJudgesExactlyOneCombo)
{
    testing::OracleCase c;
    c.a = testing::generateStructure(StructureFamily::Banded, 3, 0);
    const testing::OracleReport rep = testing::runOracle(
        c, testing::OracleConfig::single(KernelKind::Dtc,
                                         Precision::Tf32, true, true,
                                         1));
    EXPECT_EQ(rep.combos(), 1);
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

// ---------------------------------------------------------------------
// Metamorphic properties.
// ---------------------------------------------------------------------

TEST(Properties, HoldOnRepresentativeFamilies)
{
    for (StructureFamily family : {StructureFamily::PowerLaw,
                                   StructureFamily::Banded,
                                   StructureFamily::DuplicateColumns}) {
        SCOPED_TRACE(testing::structureFamilyName(family));
        const CsrMatrix a = testing::generateStructure(family, 4, 0);
        testing::PropertyResult r = testing::checkLinearity(
            a, KernelKind::Dtc, Precision::Tf32, 16, 9);
        EXPECT_TRUE(r.passed) << "linearity: " << r.detail;
        r = testing::checkScalarScaling(a, KernelKind::Dtc,
                                        Precision::Tf32, 16, 9);
        EXPECT_TRUE(r.passed) << "scaling: " << r.detail;
        r = testing::checkSerializeRoundTrip(a, KernelKind::Dtc,
                                             Precision::Tf32, 16, 9);
        EXPECT_TRUE(r.passed) << "serialize: " << r.detail;
    }
}

TEST(Properties, ReorderInvarianceAcrossRegistryMethods)
{
    const CsrMatrix a = testing::generateStructure(
        StructureFamily::PowerLaw, 6, 0);
    for (ReorderMethod method :
         {ReorderMethod::Tca, ReorderMethod::Louvain,
          ReorderMethod::Metis}) {
        const testing::PropertyResult r =
            testing::checkReorderInvariance(a, method, KernelKind::Dtc,
                                            Precision::Tf32, 16, 9);
        EXPECT_TRUE(r.passed) << r.detail;
    }
}

// ---------------------------------------------------------------------
// Fault sweep and corpus replay plumbing.
// ---------------------------------------------------------------------

TEST(FaultSweep, EveryInjectedFaultIsTypedOrCorrect)
{
    testing::FuzzOptions opt;
    const testing::FuzzStats stats = testing::runFaultSweep(opt);
    EXPECT_TRUE(stats.ok()) << stats.summary();
    EXPECT_GT(stats.faultRuns, 0);
    EXPECT_TRUE(stats.failureLines.empty());
}

TEST(CorpusReplay, MissingDirectoryIsGreen)
{
    const testing::FuzzStats stats =
        testing::replayCorpus("/nonexistent/dtc-corpus", nullptr);
    EXPECT_TRUE(stats.ok());
    EXPECT_EQ(stats.cases, 0);
}

// ---------------------------------------------------------------------
// Shrinker.
// ---------------------------------------------------------------------

TEST(Shrinker, RejectsNonReproducingInput)
{
    const CsrMatrix m = testing::generateStructure(
        StructureFamily::Banded, 1, 0);
    EXPECT_THROW(
        testing::shrinkMatrix(m,
                              [](const CsrMatrix&) { return false; }),
        DtcError);
}

TEST(Shrinker, MinimizesToTheSingleLoadBearingNonzero)
{
    // A value-tagged predicate: the failure "is" one marked nonzero,
    // so a correct shrinker must strip everything else away.
    CsrMatrix m = testing::generateStructure(StructureFamily::Banded,
                                             8, 0);
    ASSERT_GT(m.nnz(), 10);
    CooMatrix coo = m.toCoo();
    const auto marked = [](const CsrMatrix& c) {
        for (float v : c.values())
            if (v == 42.0f)
                return true;
        return false;
    };
    CooMatrix tagged(m.rows(), m.cols());
    for (int64_t i = 0; i < coo.nnz(); ++i) {
        tagged.add(coo.rowIndices()[i], coo.colIndices()[i],
                   i == coo.nnz() / 2 ? 42.0f : coo.values()[i]);
    }
    const CsrMatrix failing = CsrMatrix::fromCoo(tagged);
    ASSERT_TRUE(marked(failing));

    const testing::ShrinkResult r =
        testing::shrinkMatrix(failing, marked);
    EXPECT_EQ(r.matrix.nnz(), 1);
    EXPECT_TRUE(marked(r.matrix));
    EXPECT_GT(r.reductions, 0);
    EXPECT_GT(r.evaluations, 0);
    EXPECT_LE(r.matrix.rows(), failing.rows());
    EXPECT_LE(r.matrix.cols(), failing.cols());
}

// ---------------------------------------------------------------------
// The injected-bug demonstration (issue acceptance criterion): an
// off-by-one in the ME-TCF local-index decode must be caught by the
// oracle judgement and shrink to a <= 32-nnz reproducer.
// ---------------------------------------------------------------------

/**
 * A deliberately buggy DTC-style SpMM walking ME-TCF directly: for a
 * nonzero in the last block lane it decodes localCol as 0 instead of
 * blockWidth-1 — the classic off-by-one in the 8-bit local id
 * (localRow*8 + localCol).  The bug is dormant unless some row window
 * condenses to >= 8 distinct columns, so benign narrow inputs pass
 * bit-exactly and only adversarial structure exposes it.
 */
DenseMatrix
buggyMeTcfSpmm(const CsrMatrix& a, const DenseMatrix& b)
{
    const MeTcfMatrix t = MeTcfMatrix::build(a);
    DenseMatrix c(a.rows(), b.cols());
    c.setZero();
    const int bw = t.shape().blockWidth;
    for (int64_t w = 0; w < t.numWindows(); ++w) {
        for (int64_t blk = t.rowWindowOffset()[w];
             blk < t.rowWindowOffset()[w + 1]; ++blk) {
            for (int64_t k = t.tcOffset()[blk];
                 k < t.tcOffset()[blk + 1]; ++k) {
                const int local = t.tcLocalId()[k];
                const int lr = local / bw;
                int lc = local % bw;
                if (lc == bw - 1)
                    lc = 0; // BUG: off-by-one wrap of the local column
                const int64_t row =
                    w * t.shape().windowHeight + lr;
                const int32_t b_row =
                    t.sparseAtoB()[blk * bw + lc];
                if (b_row == MeTcfMatrix::kPadColumn)
                    continue;
                const float v = t.values()[k];
                for (int64_t j = 0; j < b.cols(); ++j)
                    c.at(row, j) += v * b.at(b_row, j);
            }
        }
    }
    return c;
}

/** The oracle's verdict on the buggy kernel for matrix @p m. */
bool
buggyKernelFails(const CsrMatrix& m)
{
    const DenseMatrix b = testing::makeDenseOperand(m.cols(), 8, 77);
    const DenseMatrix c = buggyMeTcfSpmm(m, b);
    return !testing::judgeResult(m, b, c, Precision::Fp32,
                                 /*bit_exact=*/true, 8.0)
                .empty();
}

TEST(InjectedBug, DormantOnNarrowWindowsCaughtOnAdversarialOnes)
{
    // DuplicateColumns draws every nonzero from a pool of < 8
    // columns, so no window reaches block lane 7: the buggy kernel is
    // bit-exact there and a naive "one nice matrix" test passes it.
    const CsrMatrix narrow = testing::generateStructure(
        StructureFamily::DuplicateColumns, 11, 0);
    EXPECT_FALSE(buggyKernelFails(narrow));

    // The power-law hub row condenses to far more than 8 distinct
    // columns, populating lane 7 — the differential oracle flags it.
    const CsrMatrix hub = testing::generateStructure(
        StructureFamily::PowerLaw, 11, 0);
    EXPECT_TRUE(buggyKernelFails(hub));
}

TEST(InjectedBug, ShrinksToTinyReproducerAndRoundTripsAsArtifact)
{
    const CsrMatrix hub = testing::generateStructure(
        StructureFamily::PowerLaw, 11, 0);
    ASSERT_TRUE(buggyKernelFails(hub));

    const testing::ShrinkResult shrunk =
        testing::shrinkMatrix(hub, buggyKernelFails, 1500);
    EXPECT_LE(shrunk.matrix.nnz(), 32)
        << "issue acceptance: <= 32-nnz reproducer";
    EXPECT_TRUE(buggyKernelFails(shrunk.matrix));
    EXPECT_GT(shrunk.reductions, 0);
    EXPECT_LT(shrunk.matrix.nnz(), hub.nnz());

    // Dump -> reload must preserve the reproducer bit for bit (the
    // mm writer emits max_digits10), and the replay axes verbatim.
    const std::string dir = "/tmp/dtc_harness_corpus";
    std::filesystem::create_directories(dir);
    testing::FailureArtifact info;
    info.family = testing::structureFamilyName(
        StructureFamily::PowerLaw);
    info.structSeed = 11;
    info.scale = 0;
    info.kind = KernelKind::Dtc;
    info.precision = Precision::Tf32;
    info.engineOn = true;
    info.threads = 1;
    info.denseWidth = 8;
    info.denseSeed = 77;
    info.detail = "injected me-tcf local-index off-by-one";
    const std::string case_path = testing::writeFailureArtifact(
        dir, "injected-local-index", shrunk.matrix, info);

    const testing::LoadedArtifact loaded =
        testing::loadFailureArtifact(case_path);
    EXPECT_TRUE(loaded.matrix == shrunk.matrix);
    EXPECT_EQ(loaded.info.family, info.family);
    EXPECT_EQ(loaded.info.kind, info.kind);
    EXPECT_EQ(loaded.info.precision, info.precision);
    EXPECT_EQ(loaded.info.denseSeed, info.denseSeed);

    // The reloaded matrix still trips the buggy kernel...
    EXPECT_TRUE(buggyKernelFails(loaded.matrix));
    // ...while the real registry kernel passes the same combo, which
    // is exactly what a checked-in regression artifact asserts.
    EXPECT_FALSE(testing::replayArtifact(loaded));
}

} // namespace
} // namespace dtc
