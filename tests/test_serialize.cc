/**
 * @file
 * Unit tests for binary (de)serialization of CSR and ME-TCF:
 * round trips across matrix classes and shapes, corruption
 * detection (magic, truncation, bit flips), file-path helpers.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "common/budget.h"
#include "common/error.h"
#include "common/rng.h"
#include "datasets/generators.h"
#include "formats/serialize.h"

namespace dtc {
namespace {

/** FNV-1a over bytes, matching the serializer's checksum. */
uint64_t
fnv1a(const char* data, size_t bytes)
{
    uint64_t state = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < bytes; ++i) {
        state ^= static_cast<unsigned char>(data[i]);
        state *= 0x100000001b3ull;
    }
    return state;
}

/** Rewrites the trailing checksum so only the *semantic* check trips. */
void
fixupChecksum(std::string& data)
{
    ASSERT_GE(data.size(), 16u);
    const uint64_t sum = fnv1a(data.data() + 8, data.size() - 16);
    std::memcpy(data.data() + data.size() - 8, &sum, sizeof(sum));
}

/**
 * Feeds @p data to the CSR loader and requires a typed, recoverable
 * outcome: success or DtcError with a non-Internal code.  Anything
 * else (crash, UB, untyped exception) fails the sweep.
 */
void
expectTypedCsrLoad(const std::string& data, const std::string& label)
{
    std::stringstream in(data);
    try {
        CsrMatrix m = loadCsr(in);
        (void)m;
    } catch (const DtcError& e) {
        EXPECT_NE(e.code(), ErrorCode::Internal) << label;
    } catch (const std::exception& e) {
        FAIL() << label << ": untyped exception: " << e.what();
    }
}

void
expectTypedMeTcfLoad(const std::string& data, const std::string& label)
{
    std::stringstream in(data);
    try {
        MeTcfMatrix m = loadMeTcf(in);
        (void)m;
    } catch (const DtcError& e) {
        EXPECT_NE(e.code(), ErrorCode::Internal) << label;
    } catch (const std::exception& e) {
        FAIL() << label << ": untyped exception: " << e.what();
    }
}

TEST(Serialize, CsrRoundTrip)
{
    Rng rng(1);
    for (int which = 0; which < 3; ++which) {
        CsrMatrix m = which == 0   ? genUniform(300, 8.0, rng)
                      : which == 1 ? genPowerLaw(257, 6.0, 1.3, rng)
                                   : CsrMatrix(33, 77); // empty
        std::stringstream buf;
        saveCsr(buf, m);
        CsrMatrix back = loadCsr(buf);
        EXPECT_TRUE(m == back) << which;
    }
}

TEST(Serialize, MeTcfRoundTrip)
{
    Rng rng(2);
    CsrMatrix m = genCommunity(512, 8, 24.0, 0.85, rng);
    MeTcfMatrix t = MeTcfMatrix::build(m);
    std::stringstream buf;
    saveMeTcf(buf, t);
    MeTcfMatrix back = loadMeTcf(buf);
    EXPECT_NO_THROW(back.validate());
    EXPECT_EQ(back.rowWindowOffset(), t.rowWindowOffset());
    EXPECT_EQ(back.tcOffset(), t.tcOffset());
    EXPECT_EQ(back.tcLocalId(), t.tcLocalId());
    EXPECT_EQ(back.sparseAtoB(), t.sparseAtoB());
    EXPECT_EQ(back.values(), t.values());
    EXPECT_TRUE(back.toCsr() == m);
}

TEST(Serialize, MeTcfRoundTripNonDefaultShape)
{
    Rng rng(3);
    CsrMatrix m = genUniform(130, 6.0, rng);
    TcBlockShape shape;
    shape.windowHeight = 8;
    shape.blockWidth = 4;
    MeTcfMatrix t = MeTcfMatrix::build(m, shape);
    std::stringstream buf;
    saveMeTcf(buf, t);
    MeTcfMatrix back = loadMeTcf(buf);
    EXPECT_EQ(back.shape().windowHeight, 8);
    EXPECT_EQ(back.shape().blockWidth, 4);
    EXPECT_TRUE(back.toCsr() == m);
}

TEST(Serialize, RejectsWrongMagic)
{
    Rng rng(4);
    CsrMatrix m = genUniform(64, 4.0, rng);
    std::stringstream buf;
    saveCsr(buf, m);
    // A CSR file is not an ME-TCF file.
    EXPECT_THROW(loadMeTcf(buf), std::invalid_argument);
}

TEST(Serialize, RejectsTruncation)
{
    Rng rng(5);
    CsrMatrix m = genUniform(64, 4.0, rng);
    std::stringstream buf;
    saveCsr(buf, m);
    std::string data = buf.str();
    std::stringstream cut(data.substr(0, data.size() / 2));
    EXPECT_THROW(loadCsr(cut), std::invalid_argument);
}

TEST(Serialize, RejectsBitFlip)
{
    Rng rng(6);
    CsrMatrix m = genUniform(64, 4.0, rng);
    std::stringstream buf;
    saveCsr(buf, m);
    std::string data = buf.str();
    data[data.size() / 2] ^= 0x40; // corrupt the payload
    std::stringstream bad(data);
    EXPECT_THROW(loadCsr(bad), std::exception);
}

TEST(Serialize, FileHelpersRoundTrip)
{
    Rng rng(7);
    CsrMatrix m = genBanded(128, 8, 4.0, rng);
    const std::string csr_path = "/tmp/dtc_ser_test.csr";
    const std::string me_path = "/tmp/dtc_ser_test.metcf";
    saveCsrFile(csr_path, m);
    EXPECT_TRUE(loadCsrFile(csr_path) == m);
    MeTcfMatrix t = MeTcfMatrix::build(m);
    saveMeTcfFile(me_path, t);
    EXPECT_TRUE(loadMeTcfFile(me_path).toCsr() == m);
}

TEST(Serialize, MissingFileThrows)
{
    EXPECT_THROW(loadCsrFile("/nonexistent/x.csr"),
                 std::invalid_argument);
    EXPECT_THROW(loadMeTcfFile("/nonexistent/x.metcf"),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Seeded corruption sweep: every mutation of a valid stream must load
// clean or throw a typed, recoverable DtcError — never crash, never
// surface an Internal error, never allocate from a hostile length.
// ---------------------------------------------------------------------

TEST(SerializeCorruption, CsrBitFlipSweep)
{
    Rng rng(0xc0de);
    CsrMatrix m = genUniform(96, 5.0, rng);
    std::stringstream buf;
    saveCsr(buf, m);
    const std::string good = buf.str();
    for (int i = 0; i < 60; ++i) {
        std::string bad = good;
        const size_t byte = static_cast<size_t>(
            rng.nextInt(0, static_cast<int64_t>(bad.size()) - 1));
        bad[byte] ^= static_cast<char>(
            1u << rng.nextInt(0, 7));
        std::stringstream in(bad);
        // A flip anywhere is covered by magic or checksum, so it must
        // throw — and the error must be typed.
        try {
            loadCsr(in);
            FAIL() << "flip at byte " << byte << " not detected";
        } catch (const DtcError& e) {
            EXPECT_NE(e.code(), ErrorCode::Internal) << byte;
        }
    }
}

TEST(SerializeCorruption, CsrTruncationSweep)
{
    Rng rng(0xc0df);
    CsrMatrix m = genPowerLaw(80, 4.0, 1.4, rng);
    std::stringstream buf;
    saveCsr(buf, m);
    const std::string good = buf.str();
    for (int i = 0; i < 30; ++i) {
        const size_t keep = static_cast<size_t>(rng.nextInt(
            0, static_cast<int64_t>(good.size()) - 1));
        expectTypedCsrLoad(good.substr(0, keep),
                           "truncate to " + std::to_string(keep));
    }
}

TEST(SerializeCorruption, MeTcfBitFlipSweep)
{
    Rng rng(0xd0de);
    CsrMatrix m = genCommunity(128, 4, 8.0, 0.85, rng);
    MeTcfMatrix t = MeTcfMatrix::build(m);
    std::stringstream buf;
    saveMeTcf(buf, t);
    const std::string good = buf.str();
    for (int i = 0; i < 60; ++i) {
        std::string bad = good;
        const size_t byte = static_cast<size_t>(
            rng.nextInt(0, static_cast<int64_t>(bad.size()) - 1));
        bad[byte] ^= static_cast<char>(1u << rng.nextInt(0, 7));
        std::stringstream in(bad);
        try {
            loadMeTcf(in);
            FAIL() << "flip at byte " << byte << " not detected";
        } catch (const DtcError& e) {
            EXPECT_NE(e.code(), ErrorCode::Internal) << byte;
        }
    }
}

TEST(SerializeCorruption, MeTcfTruncationSweep)
{
    Rng rng(0xd0df);
    CsrMatrix m = genBanded(96, 6, 4.0, rng);
    std::stringstream buf;
    saveMeTcf(buf, MeTcfMatrix::build(m));
    const std::string good = buf.str();
    for (int i = 0; i < 30; ++i) {
        const size_t keep = static_cast<size_t>(rng.nextInt(
            0, static_cast<int64_t>(good.size()) - 1));
        expectTypedMeTcfLoad(good.substr(0, keep),
                             "truncate to " + std::to_string(keep));
    }
}

TEST(SerializeCorruption, HugeLengthPrefixRejectedBeforeAllocation)
{
    // Patch the rowPtr length prefix to 2^56 and fix the checksum so
    // only the remaining-bytes bound can catch it.  The loader must
    // reject *without* attempting the allocation.
    Rng rng(0xeade);
    CsrMatrix m = genUniform(64, 4.0, rng);
    std::stringstream buf;
    saveCsr(buf, m);
    std::string data = buf.str();
    // Layout after magic(8): version u32, rows i64, cols i64, then
    // the u64 rowPtr length prefix.
    const size_t len_off = 8 + 4 + 8 + 8;
    const uint64_t huge = 1ull << 56;
    std::memcpy(data.data() + len_off, &huge, sizeof(huge));
    fixupChecksum(data);
    std::stringstream in(data);
    try {
        loadCsr(in);
        FAIL() << "huge length prefix accepted";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::CorruptData);
        EXPECT_NE(std::string(e.what()).find("length"),
                  std::string::npos);
    }
}

TEST(SerializeCorruption, ChecksumVerifiedBeforeInterpreting)
{
    // Corrupt an array length *without* fixing the checksum: the
    // error must be the checksum mismatch, proving validation order.
    Rng rng(0xeadf);
    CsrMatrix m = genUniform(64, 4.0, rng);
    std::stringstream buf;
    saveCsr(buf, m);
    std::string data = buf.str();
    const size_t len_off = 8 + 4 + 8 + 8;
    const uint64_t huge = 1ull << 56;
    std::memcpy(data.data() + len_off, &huge, sizeof(huge));
    std::stringstream in(data);
    try {
        loadCsr(in);
        FAIL() << "corruption accepted";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::CorruptData);
        EXPECT_NE(std::string(e.what()).find("checksum"),
                  std::string::npos);
    }
}

TEST(SerializeCorruption, StagingBudgetBoundsLoad)
{
    Rng rng(0xfade);
    CsrMatrix m = genUniform(512, 8.0, rng);
    std::stringstream buf;
    saveCsr(buf, m);

    ResourceBudget tiny = ResourceBudget::defaults();
    tiny.stagingBytes = 128; // smaller than the stream
    ScopedResourceBudget scope(tiny);
    try {
        loadCsr(buf);
        FAIL() << "over-budget stream accepted";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::ResourceExhausted);
    }
}

TEST(SerializeCorruption, TrailingBytesRejected)
{
    Rng rng(0xfadf);
    CsrMatrix m = genUniform(48, 4.0, rng);
    std::stringstream buf;
    saveCsr(buf, m);
    std::string data = buf.str();
    data += "extra";
    expectTypedCsrLoad(data, "trailing bytes");
    // Specifically: appending bytes shifts the checksum window, so
    // this must throw, not load.
    std::stringstream in(data);
    EXPECT_THROW(loadCsr(in), DtcError);
}

TEST(Serialize, ConvertOnceReuseAcrossRuns)
{
    // The Section 6 deployment story: convert + persist, then later
    // runs load ME-TCF directly and skip conversion.
    Rng rng(8);
    CsrMatrix m = shuffleLabels(
        genCommunity(512, 8, 20.0, 0.9, rng), rng);
    const std::string path = "/tmp/dtc_ser_deploy.metcf";
    saveMeTcfFile(path, MeTcfMatrix::build(m));

    MeTcfMatrix loaded = loadMeTcfFile(path);
    EXPECT_DOUBLE_EQ(loaded.meanNnzTc(),
                     MeTcfMatrix::build(m).meanNnzTc());
    EXPECT_TRUE(loaded.toCsr() == m);
}

} // namespace
} // namespace dtc
