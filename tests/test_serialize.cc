/**
 * @file
 * Unit tests for binary (de)serialization of CSR and ME-TCF:
 * round trips across matrix classes and shapes, corruption
 * detection (magic, truncation, bit flips), file-path helpers.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "datasets/generators.h"
#include "formats/serialize.h"

namespace dtc {
namespace {

TEST(Serialize, CsrRoundTrip)
{
    Rng rng(1);
    for (int which = 0; which < 3; ++which) {
        CsrMatrix m = which == 0   ? genUniform(300, 8.0, rng)
                      : which == 1 ? genPowerLaw(257, 6.0, 1.3, rng)
                                   : CsrMatrix(33, 77); // empty
        std::stringstream buf;
        saveCsr(buf, m);
        CsrMatrix back = loadCsr(buf);
        EXPECT_TRUE(m == back) << which;
    }
}

TEST(Serialize, MeTcfRoundTrip)
{
    Rng rng(2);
    CsrMatrix m = genCommunity(512, 8, 24.0, 0.85, rng);
    MeTcfMatrix t = MeTcfMatrix::build(m);
    std::stringstream buf;
    saveMeTcf(buf, t);
    MeTcfMatrix back = loadMeTcf(buf);
    EXPECT_NO_THROW(back.validate());
    EXPECT_EQ(back.rowWindowOffset(), t.rowWindowOffset());
    EXPECT_EQ(back.tcOffset(), t.tcOffset());
    EXPECT_EQ(back.tcLocalId(), t.tcLocalId());
    EXPECT_EQ(back.sparseAtoB(), t.sparseAtoB());
    EXPECT_EQ(back.values(), t.values());
    EXPECT_TRUE(back.toCsr() == m);
}

TEST(Serialize, MeTcfRoundTripNonDefaultShape)
{
    Rng rng(3);
    CsrMatrix m = genUniform(130, 6.0, rng);
    TcBlockShape shape;
    shape.windowHeight = 8;
    shape.blockWidth = 4;
    MeTcfMatrix t = MeTcfMatrix::build(m, shape);
    std::stringstream buf;
    saveMeTcf(buf, t);
    MeTcfMatrix back = loadMeTcf(buf);
    EXPECT_EQ(back.shape().windowHeight, 8);
    EXPECT_EQ(back.shape().blockWidth, 4);
    EXPECT_TRUE(back.toCsr() == m);
}

TEST(Serialize, RejectsWrongMagic)
{
    Rng rng(4);
    CsrMatrix m = genUniform(64, 4.0, rng);
    std::stringstream buf;
    saveCsr(buf, m);
    // A CSR file is not an ME-TCF file.
    EXPECT_THROW(loadMeTcf(buf), std::invalid_argument);
}

TEST(Serialize, RejectsTruncation)
{
    Rng rng(5);
    CsrMatrix m = genUniform(64, 4.0, rng);
    std::stringstream buf;
    saveCsr(buf, m);
    std::string data = buf.str();
    std::stringstream cut(data.substr(0, data.size() / 2));
    EXPECT_THROW(loadCsr(cut), std::invalid_argument);
}

TEST(Serialize, RejectsBitFlip)
{
    Rng rng(6);
    CsrMatrix m = genUniform(64, 4.0, rng);
    std::stringstream buf;
    saveCsr(buf, m);
    std::string data = buf.str();
    data[data.size() / 2] ^= 0x40; // corrupt the payload
    std::stringstream bad(data);
    EXPECT_THROW(loadCsr(bad), std::exception);
}

TEST(Serialize, FileHelpersRoundTrip)
{
    Rng rng(7);
    CsrMatrix m = genBanded(128, 8, 4.0, rng);
    const std::string csr_path = "/tmp/dtc_ser_test.csr";
    const std::string me_path = "/tmp/dtc_ser_test.metcf";
    saveCsrFile(csr_path, m);
    EXPECT_TRUE(loadCsrFile(csr_path) == m);
    MeTcfMatrix t = MeTcfMatrix::build(m);
    saveMeTcfFile(me_path, t);
    EXPECT_TRUE(loadMeTcfFile(me_path).toCsr() == m);
}

TEST(Serialize, MissingFileThrows)
{
    EXPECT_THROW(loadCsrFile("/nonexistent/x.csr"),
                 std::invalid_argument);
    EXPECT_THROW(loadMeTcfFile("/nonexistent/x.metcf"),
                 std::invalid_argument);
}

TEST(Serialize, ConvertOnceReuseAcrossRuns)
{
    // The Section 6 deployment story: convert + persist, then later
    // runs load ME-TCF directly and skip conversion.
    Rng rng(8);
    CsrMatrix m = shuffleLabels(
        genCommunity(512, 8, 20.0, 0.9, rng), rng);
    const std::string path = "/tmp/dtc_ser_deploy.metcf";
    saveMeTcfFile(path, MeTcfMatrix::build(m));

    MeTcfMatrix loaded = loadMeTcfFile(path);
    EXPECT_DOUBLE_EQ(loaded.meanNnzTc(),
                     MeTcfMatrix::build(m).meanNnzTc());
    EXPECT_TRUE(loaded.toCsr() == m);
}

} // namespace
} // namespace dtc
