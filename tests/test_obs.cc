/**
 * @file
 * Observability layer tests: trace span nesting and thread
 * attribution, the disarmed-probe cost contract (no recording, no
 * allocation), metrics registry semantics (quantiles, reset-in-place,
 * engine::Stats absorption), the dtc-metrics-v1 JSON round-trip
 * through the obs JSON reader, and the bench_compare gate semantics
 * (exact counters, tolerated wall-clock, advisory mode).
 *
 * The metrics registry is process-global and other suites in this
 * binary bump counters too, so every assertion here works on deltas
 * or on names namespaced "test.obs.*" that nothing else touches.
 */
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "matrix/dense.h"
#include "obs/bench_compare.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dtc {
namespace {

/** Restores a clean, disarmed trace state around each trace test. */
class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::trace::disable();
        obs::trace::clear();
    }
    void TearDown() override
    {
        obs::trace::disable();
        obs::trace::clear();
    }
};

TEST_F(TraceTest, RecordsNestedSpansWithDepth)
{
    obs::trace::enable();
    {
        DTC_TRACE_SCOPE("test.outer");
        {
            DTC_TRACE_SCOPE("test.inner");
            {
                DTC_TRACE_SCOPE("test.leaf");
            }
        }
    }
    obs::trace::disable();

    const std::vector<obs::SpanRecord> spans = obs::trace::snapshot();
    ASSERT_EQ(spans.size(), 3u);
    // snapshot() orders by (tid, start): outer, inner, leaf.
    EXPECT_EQ(spans[0].name, "test.outer");
    EXPECT_EQ(spans[0].depth, 0);
    EXPECT_EQ(spans[1].name, "test.inner");
    EXPECT_EQ(spans[1].depth, 1);
    EXPECT_EQ(spans[2].name, "test.leaf");
    EXPECT_EQ(spans[2].depth, 2);
    for (const obs::SpanRecord& s : spans) {
        EXPECT_EQ(s.tid, spans[0].tid);
        EXPECT_GE(s.durUs, 0.0);
    }
    // Children start no earlier and end no later than the parent.
    EXPECT_GE(spans[1].tsUs, spans[0].tsUs);
    EXPECT_LE(spans[1].tsUs + spans[1].durUs,
              spans[0].tsUs + spans[0].durUs + 1e-6);
}

TEST_F(TraceTest, AttributesSpansToThreads)
{
    obs::trace::enable();
    {
        DTC_TRACE_SCOPE("test.main_thread");
    }
    std::thread worker([] { DTC_TRACE_SCOPE("test.worker_thread"); });
    worker.join();
    obs::trace::disable();

    const std::vector<obs::SpanRecord> spans = obs::trace::snapshot();
    ASSERT_EQ(spans.size(), 2u);
    int main_tid = -1, worker_tid = -1;
    for (const obs::SpanRecord& s : spans) {
        if (s.name == "test.main_thread")
            main_tid = s.tid;
        if (s.name == "test.worker_thread")
            worker_tid = s.tid;
    }
    ASSERT_GE(main_tid, 0);
    ASSERT_GE(worker_tid, 0);
    EXPECT_NE(main_tid, worker_tid);
}

TEST_F(TraceTest, DisarmedSpansRecordNothingAndAllocateNothing)
{
    // Disarmed (the fixture disabled tracing): spans on a brand-new
    // thread must not record and must not even create that thread's
    // buffer — the constructor bails on one relaxed load.
    const int64_t buffers_before =
        obs::trace::detail::threadBufferCount();
    std::thread t([] {
        for (int i = 0; i < 100; ++i)
            DTC_TRACE_SCOPE("test.disarmed");
    });
    t.join();
    EXPECT_EQ(obs::trace::detail::threadBufferCount(),
              buffers_before);
    EXPECT_TRUE(obs::trace::snapshot().empty());
}

TEST_F(TraceTest, WriteJsonIsChromeTracingLoadable)
{
    obs::trace::enable();
    {
        DTC_TRACE_SCOPE("test.json_span");
        std::thread t([] { DTC_TRACE_SCOPE("test.json_worker"); });
        t.join();
    }
    obs::trace::disable();

    const std::string path = ::testing::TempDir() + "dtc_trace.json";
    ASSERT_TRUE(obs::trace::writeJson(path));

    // The file must be standard JSON with the chrome://tracing shape:
    // a traceEvents array of complete ("ph": "X") events.
    const obs::JsonValue doc = obs::json::parseFile(path);
    const auto& events = doc.at("traceEvents").asArray();
    ASSERT_EQ(events.size(), 2u);
    for (const obs::JsonValue& e : events) {
        EXPECT_EQ(e.at("ph").asString(), "X");
        EXPECT_TRUE(e.at("name").isString());
        EXPECT_GE(e.at("dur").asNumber(), 0.0);
        EXPECT_TRUE(e.at("tid").isNumber());
        EXPECT_TRUE(e.at("args").at("depth").isNumber());
    }
}

TEST(ObsMetrics, HistogramNearestRankQuantiles)
{
    obs::Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.95), 95.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(ObsMetrics, HistogramCapsQuantileSamplesButNotTotals)
{
    obs::Histogram h;
    const int total = static_cast<int>(obs::Histogram::kMaxSamples) +
                      500;
    for (int i = 0; i < total; ++i)
        h.record(1.0);
    h.record(1000.0); // beyond the sample cap: exact stats only
    EXPECT_EQ(h.count(), total + 1);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(total) + 1000.0);
    // The capped quantile never saw the late outlier.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(ObsMetrics, ReferencesSurviveReset)
{
    obs::Counter& c = obs::metrics::counter("test.obs.survivor");
    c.add(7);
    EXPECT_EQ(obs::metrics::counterValue("test.obs.survivor"), 7u);
    obs::metrics::reset();
    EXPECT_EQ(c.load(), 0u);
    c.add(3); // the pre-reset reference still feeds the registry
    EXPECT_EQ(obs::metrics::counterValue("test.obs.survivor"), 3u);
}

TEST(ObsMetrics, EngineStatsAreRegistryCounters)
{
    // engine::Stats is a view over the registry: the same counts must
    // be visible under the public metric names.
    const uint64_t before =
        obs::metrics::counterValue("engine.b_round_ops");
    engine::stats().roundingOps.fetch_add(
        41, std::memory_order_relaxed);
    EXPECT_EQ(obs::metrics::counterValue("engine.b_round_ops"),
              before + 41);
    EXPECT_EQ(engine::stats().roundingOps.load(), before + 41);
}

TEST(ObsMetrics, ToJsonRoundTripsThroughReader)
{
    obs::metrics::counter("test.obs.rt_counter").add(5);
    obs::metrics::gauge("test.obs.rt_gauge").set(2.5);
    obs::Histogram& h =
        obs::metrics::histogram("test.obs.rt_hist");
    h.reset();
    h.record(1.0);
    h.record(3.0);

    const obs::JsonValue doc =
        obs::json::parse(obs::metrics::toJson());
    EXPECT_EQ(doc.at("schema").asString(), "dtc-metrics-v1");
    EXPECT_GE(
        doc.at("counters").at("test.obs.rt_counter").asNumber(),
        5.0);
    EXPECT_DOUBLE_EQ(
        doc.at("gauges").at("test.obs.rt_gauge").asNumber(), 2.5);
    const obs::JsonValue& hist =
        doc.at("histograms").at("test.obs.rt_hist");
    EXPECT_DOUBLE_EQ(hist.at("count").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(hist.at("sum").asNumber(), 4.0);
    EXPECT_DOUBLE_EQ(hist.at("min").asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(hist.at("max").asNumber(), 3.0);
}

TEST(ObsJson, RejectsMalformedInput)
{
    EXPECT_THROW(obs::json::parse(""), DtcError);
    EXPECT_THROW(obs::json::parse("{"), DtcError);
    EXPECT_THROW(obs::json::parse("{\"a\": 1} extra"), DtcError);
    EXPECT_THROW(obs::json::parse("{'a': 1}"), DtcError);
    EXPECT_THROW(obs::json::parse("[1, 2,]"), DtcError);
    EXPECT_THROW(obs::json::parse("nul"), DtcError);
}

TEST(ObsJson, ParsesEscapesAndNumbers)
{
    const obs::JsonValue v = obs::json::parse(
        "{\"s\": \"a\\n\\\"b\\u0041\", \"n\": -1.5e2, "
        "\"t\": true, \"z\": null, \"a\": [1, 2]}");
    EXPECT_EQ(v.at("s").asString(), "a\n\"bA");
    EXPECT_DOUBLE_EQ(v.at("n").asNumber(), -150.0);
    EXPECT_TRUE(v.at("t").asBool());
    EXPECT_TRUE(v.at("z").isNull());
    ASSERT_EQ(v.at("a").asArray().size(), 2u);
    EXPECT_FALSE(v.has("missing"));
    EXPECT_THROW(v.at("missing"), DtcError);
}

// ---- bench_compare gate semantics over fixture documents.

std::string
engineDoc(const char* off_ms, const char* round_ops)
{
    std::string s = "{\"schema\": \"dtc-bench-engine-v1\",";
    s += "\"matrix\": {\"rows\": 64, \"cols\": 64, \"nnz\": 256},";
    s += "\"reps\": 3, \"results\": [{\"kernel\": \"K\", \"n\": 32,";
    s += " \"engine_off_ms\": ";
    s += off_ms;
    s += ", \"engine_on_ms\": 1.0, \"speedup\": 1.0,";
    s += " \"legacy_b_round_ops\": 100, \"engine_b_round_ops\": ";
    s += round_ops;
    s += "}]}";
    return s;
}

TEST(ObsBenchCompare, PassesOnIdenticalDocuments)
{
    const obs::JsonValue doc =
        obs::json::parse(engineDoc("10.0", "42"));
    const obs::compare::Report r = obs::compare::compareEngineBench(
        doc, doc, obs::compare::Options{});
    EXPECT_TRUE(r.ok());
    EXPECT_GT(r.checks, 0);
    EXPECT_TRUE(r.advisories.empty());
}

TEST(ObsBenchCompare, CounterDriftAlwaysFails)
{
    const obs::JsonValue base =
        obs::json::parse(engineDoc("10.0", "42"));
    const obs::JsonValue cur =
        obs::json::parse(engineDoc("10.0", "43"));
    obs::compare::Options opts;
    opts.wallclockAdvisory = true; // counters must still gate
    const obs::compare::Report r =
        obs::compare::compareEngineBench(base, cur, opts);
    EXPECT_FALSE(r.ok());
    ASSERT_EQ(r.failures.size(), 1u);
    EXPECT_NE(r.failures[0].find("engine_b_round_ops"),
              std::string::npos);
}

TEST(ObsBenchCompare, WallclockRespectsToleranceAndAdvisoryMode)
{
    const obs::JsonValue base =
        obs::json::parse(engineDoc("10.0", "42"));
    const obs::JsonValue within =
        obs::json::parse(engineDoc("12.0", "42"));
    const obs::JsonValue outside =
        obs::json::parse(engineDoc("20.0", "42"));

    obs::compare::Options opts; // default ±25%
    EXPECT_TRUE(obs::compare::compareEngineBench(base, within, opts)
                    .ok());

    const obs::compare::Report fail =
        obs::compare::compareEngineBench(base, outside, opts);
    EXPECT_FALSE(fail.ok());

    opts.wallclockAdvisory = true;
    const obs::compare::Report advisory =
        obs::compare::compareEngineBench(base, outside, opts);
    EXPECT_TRUE(advisory.ok());
    EXPECT_FALSE(advisory.advisories.empty());

    // A loose explicit tolerance also passes outright.
    obs::compare::Options loose;
    loose.tolerance = 1.5;
    EXPECT_TRUE(obs::compare::compareEngineBench(base, outside, loose)
                    .ok());
}

TEST(ObsBenchCompare, MissingRowFails)
{
    const obs::JsonValue base =
        obs::json::parse(engineDoc("10.0", "42"));
    std::string two_rows = engineDoc("10.0", "42");
    // Splice in a second row so current-vs-base has one extra
    // (advisory) and base-vs-current has one missing (failure).
    const std::string extra =
        ", {\"kernel\": \"K2\", \"n\": 64, \"engine_off_ms\": 1.0, "
        "\"engine_on_ms\": 1.0, \"speedup\": 1.0, "
        "\"legacy_b_round_ops\": 1, \"engine_b_round_ops\": 1}";
    two_rows.insert(two_rows.rfind("]"), extra);
    const obs::JsonValue wide = obs::json::parse(two_rows);

    const obs::compare::Report extra_row =
        obs::compare::compareEngineBench(base, wide,
                                         obs::compare::Options{});
    EXPECT_TRUE(extra_row.ok());
    EXPECT_FALSE(extra_row.advisories.empty());

    const obs::compare::Report missing_row =
        obs::compare::compareEngineBench(wide, base,
                                         obs::compare::Options{});
    EXPECT_FALSE(missing_row.ok());
}

TEST(ObsBenchCompare, MetricsCountersExactHistogramCountsExact)
{
    const char* base_text =
        "{\"schema\": \"dtc-metrics-v1\","
        "\"counters\": {\"c\": 5},"
        "\"gauges\": {\"g\": 1.0},"
        "\"histograms\": {\"h\": {\"count\": 3, \"sum\": 6.0,"
        " \"min\": 1.0, \"max\": 3.0, \"p50\": 2.0, \"p95\": 3.0}}}";
    const obs::JsonValue base = obs::json::parse(base_text);

    obs::compare::Options opts;
    opts.wallclockAdvisory = true;
    EXPECT_TRUE(
        obs::compare::compareMetrics(base, base, opts).ok());

    // Counter drift fails even in advisory mode.
    std::string drift(base_text);
    drift.replace(drift.find("\"c\": 5"), 6, "\"c\": 6");
    EXPECT_FALSE(obs::compare::compareMetrics(
                     base, obs::json::parse(drift), opts)
                     .ok());

    // Histogram sample-count drift fails too (it is deterministic).
    std::string count_drift(base_text);
    count_drift.replace(count_drift.find("\"count\": 3"), 10,
                        "\"count\": 4");
    EXPECT_FALSE(obs::compare::compareMetrics(
                     base, obs::json::parse(count_drift), opts)
                     .ok());

    // Wall-clock-class drift (histogram stats) is advisory here.
    std::string slow(base_text);
    slow.replace(slow.find("\"sum\": 6.0"), 10, "\"sum\": 60.0");
    const obs::compare::Report r = obs::compare::compareMetrics(
        base, obs::json::parse(slow), opts);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r.advisories.empty());
}

TEST(ObsBenchCompare, SchemaMismatchFailsTheGate)
{
    const obs::JsonValue engine =
        obs::json::parse(engineDoc("10.0", "42"));
    const obs::JsonValue metrics = obs::json::parse(
        "{\"schema\": \"dtc-metrics-v1\", \"counters\": {},"
        " \"gauges\": {}, \"histograms\": {}}");
    // A wrong-schema document fails the report before any field
    // comparison (it does not throw: the CLI turns the report into
    // exit code 1).
    const obs::compare::Report eng = obs::compare::compareEngineBench(
        engine, metrics, obs::compare::Options{});
    EXPECT_FALSE(eng.ok());
    EXPECT_NE(eng.toString().find("schema"), std::string::npos);
    const obs::compare::Report met = obs::compare::compareMetrics(
        metrics, engine, obs::compare::Options{});
    EXPECT_FALSE(met.ok());
}

} // namespace
} // namespace dtc
