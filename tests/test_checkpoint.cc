/**
 * @file
 * Tests for crash-safe training checkpoints: snapshot roundtrip,
 * corruption detection, the temp-file + atomic-rename crash protocol
 * under injected faults, and trainer resume-equivalence — a run
 * crashed mid-training and resumed must finish bitwise identical to
 * an uninterrupted one.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "common/fault_sites.h"
#include "common/rng.h"
#include "datasets/generators.h"
#include "gnn/trainer.h"
#include "kernels/kernel.h"
#include "runtime/checkpoint.h"

namespace dtc {
namespace {

namespace fs = std::filesystem;
using runtime::checkpointPath;
using runtime::latestCheckpoint;
using runtime::readCheckpoint;
using runtime::TrainerSnapshot;
using runtime::writeCheckpoint;

class CheckpointTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::disarmAll();
        dir = fs::path(::testing::TempDir()) /
              ("dtc_ckpt_" +
               std::string(::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->name()));
        fs::remove_all(dir);
        fs::create_directories(dir);
    }
    void
    TearDown() override
    {
        fault::disarmAll();
        fs::remove_all(dir);
    }

    std::string
    path(int64_t epoch) const
    {
        return checkpointPath(dir.string(), epoch);
    }

    fs::path dir;
};

/** A snapshot with every field populated, incl. Adam moments. */
TrainerSnapshot
sampleSnapshot()
{
    TrainerSnapshot s;
    s.epochsDone = 7;
    s.adamT = 7;
    s.rngState = 0xdeadbeefcafef00dull;
    s.optimizer = Optimizer::Adam;
    s.loss = {1.5, 1.2, 0.9};
    s.accuracy = {0.4, 0.6, 0.8};
    Rng rng(31);
    for (int l = 0; l < 2; ++l) {
        GcnLayerState st;
        st.weight = DenseMatrix(8, 4);
        st.adamM = DenseMatrix(8, 4);
        st.adamV = DenseMatrix(8, 4);
        for (int64_t i = 0; i < 8; ++i)
            for (int64_t j = 0; j < 4; ++j) {
                st.weight.at(i, j) = rng.nextFloat(-1.f, 1.f);
                st.adamM.at(i, j) = rng.nextFloat(-1.f, 1.f);
                st.adamV.at(i, j) = rng.nextFloat(0.f, 1.f);
            }
        for (int j = 0; j < 4; ++j) {
            st.bias.push_back(rng.nextFloat(-1.f, 1.f));
            st.adamMBias.push_back(rng.nextFloat(-1.f, 1.f));
            st.adamVBias.push_back(rng.nextFloat(0.f, 1.f));
        }
        s.layers.push_back(std::move(st));
    }
    return s;
}

void
expectSnapshotsEqual(const TrainerSnapshot& a,
                     const TrainerSnapshot& b)
{
    EXPECT_EQ(a.epochsDone, b.epochsDone);
    EXPECT_EQ(a.adamT, b.adamT);
    EXPECT_EQ(a.rngState, b.rngState);
    EXPECT_EQ(a.optimizer, b.optimizer);
    EXPECT_EQ(a.loss, b.loss);
    EXPECT_EQ(a.accuracy, b.accuracy);
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (size_t i = 0; i < a.layers.size(); ++i) {
        EXPECT_TRUE(a.layers[i].weight == b.layers[i].weight);
        EXPECT_EQ(a.layers[i].bias, b.layers[i].bias);
        EXPECT_TRUE(a.layers[i].adamM == b.layers[i].adamM);
        EXPECT_TRUE(a.layers[i].adamV == b.layers[i].adamV);
        EXPECT_EQ(a.layers[i].adamMBias, b.layers[i].adamMBias);
        EXPECT_EQ(a.layers[i].adamVBias, b.layers[i].adamVBias);
    }
}

void
expectCorrupt(const std::string& p)
{
    try {
        (void)readCheckpoint(p);
        FAIL() << "should have thrown for " << p;
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::CorruptData);
    }
}

std::vector<char>
slurp(const std::string& p)
{
    std::ifstream in(p, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
}

void
spit(const std::string& p, const std::vector<char>& bytes)
{
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------
// Snapshot file format
// ---------------------------------------------------------------------

TEST_F(CheckpointTest, RoundtripPreservesEveryFieldBitwise)
{
    const TrainerSnapshot s = sampleSnapshot();
    writeCheckpoint(path(7), s);
    expectSnapshotsEqual(readCheckpoint(path(7)), s);
    // No stale temp file left behind.
    EXPECT_FALSE(fs::exists(path(7) + ".tmp"));
}

TEST_F(CheckpointTest, EmptySnapshotRoundtrips)
{
    writeCheckpoint(path(0), TrainerSnapshot{});
    expectSnapshotsEqual(readCheckpoint(path(0)), TrainerSnapshot{});
}

TEST_F(CheckpointTest, BitFlipAnywhereIsRejected)
{
    writeCheckpoint(path(1), sampleSnapshot());
    const std::vector<char> good = slurp(path(1));
    // Flip a byte in the header, the payload middle, and the stored
    // checksum itself.
    for (const size_t at :
         {size_t{2}, good.size() / 2, good.size() - 3}) {
        std::vector<char> bad = good;
        bad[at] = static_cast<char>(bad[at] ^ 0x40);
        spit(path(1), bad);
        expectCorrupt(path(1));
    }
}

TEST_F(CheckpointTest, TruncationAndTrailingBytesAreRejected)
{
    writeCheckpoint(path(1), sampleSnapshot());
    const std::vector<char> good = slurp(path(1));

    std::vector<char> torn(good.begin(),
                           good.begin() +
                               static_cast<int64_t>(good.size() / 2));
    spit(path(1), torn);
    expectCorrupt(path(1));

    std::vector<char> tail = good;
    tail.push_back('x'); // breaks the checksum framing
    spit(path(1), tail);
    expectCorrupt(path(1));
}

TEST_F(CheckpointTest, BadMagicAndMissingFileAreRejected)
{
    spit(path(1), {'N', 'O', 'T', 'A', 'C', 'K', 'P', 'T', 0, 0, 0,
                   0, 0, 0, 0, 0});
    expectCorrupt(path(1));
    expectCorrupt(path(99)); // never written
}

TEST_F(CheckpointTest, LatestCheckpointPicksHighestEpoch)
{
    EXPECT_EQ(latestCheckpoint((dir / "missing").string()), "");
    EXPECT_EQ(latestCheckpoint(dir.string()), "");
    writeCheckpoint(path(2), sampleSnapshot());
    writeCheckpoint(path(10), sampleSnapshot());
    writeCheckpoint(path(9), sampleSnapshot());
    // Stale temp files and unrelated names are ignored.
    spit(path(99) + ".tmp", {'j', 'u', 'n', 'k'});
    spit((dir / "notes.txt").string(), {'h', 'i'});
    EXPECT_EQ(latestCheckpoint(dir.string()), path(10));
}

// ---------------------------------------------------------------------
// Crash protocol under injected faults
// ---------------------------------------------------------------------

TEST_F(CheckpointTest, CrashDuringWriteNeverPromotesTornFile)
{
    writeCheckpoint(path(1), sampleSnapshot()); // previous good one

    fault::ScopedFault f(fault::sites::kTrainerCheckpointWrite, 1,
                         ErrorCode::Internal);
    TrainerSnapshot next = sampleSnapshot();
    next.epochsDone = 2;
    EXPECT_THROW(writeCheckpoint(path(2), next), DtcError);

    // The crash left at worst a torn temp file; epoch 2 was never
    // promoted and the previous checkpoint is still the latest and
    // still readable.
    EXPECT_FALSE(fs::exists(path(2)));
    EXPECT_EQ(latestCheckpoint(dir.string()), path(1));
    expectSnapshotsEqual(readCheckpoint(path(1)), sampleSnapshot());
    if (fs::exists(path(2) + ".tmp"))
        expectCorrupt(path(2) + ".tmp"); // torn: fails the checksum
}

TEST_F(CheckpointTest, CrashBeforeRenameKeepsPreviousLatest)
{
    writeCheckpoint(path(1), sampleSnapshot());

    fault::ScopedFault f(fault::sites::kTrainerCheckpointRename, 1,
                         ErrorCode::Internal);
    TrainerSnapshot next = sampleSnapshot();
    next.epochsDone = 2;
    EXPECT_THROW(writeCheckpoint(path(2), next), DtcError);

    // Temp file is complete but was never promoted.
    EXPECT_FALSE(fs::exists(path(2)));
    EXPECT_TRUE(fs::exists(path(2) + ".tmp"));
    EXPECT_EQ(latestCheckpoint(dir.string()), path(1));

    // Retrying the write (fault consumed) succeeds and promotes.
    writeCheckpoint(path(2), next);
    EXPECT_EQ(latestCheckpoint(dir.string()), path(2));
    expectSnapshotsEqual(readCheckpoint(path(2)), next);
}

// ---------------------------------------------------------------------
// Trainer resume-equivalence
// ---------------------------------------------------------------------

struct Task
{
    CsrMatrix adj;
    DenseMatrix x;
    std::vector<int32_t> labels;
    int64_t features = 16;
};

Task
makeTask()
{
    Task t;
    Rng rng(2024);
    t.adj = genCommunity(96, 4, 6.0, 0.8, rng);
    makeClassificationTask(t.adj, t.features, 4, 77, &t.x,
                           &t.labels);
    return t;
}

TrainerConfig
makeConfig(const std::string& ckpt_dir, Optimizer opt)
{
    TrainerConfig cfg;
    cfg.hidden = 16;
    cfg.classes = 4;
    cfg.epochs = 6;
    cfg.seed = 0xfeed;
    cfg.optimizer = opt;
    cfg.checkpointDir = ckpt_dir;
    return cfg;
}

GcnModel
makeModel(const Task& t, const TrainerConfig& cfg)
{
    // Fixed-kernel variant: a mid-step fault propagates (no fallback
    // pool), which is exactly the "crash" the resume drill needs.
    return GcnModel(t.adj, makeKernel(KernelKind::CuSparse),
                    t.features, cfg);
}

/** Stats + final model outputs of an uninterrupted run. */
struct RunOutcome
{
    TrainStats stats;
    DenseMatrix probs;
};

RunOutcome
uninterruptedRun(const Task& t, const TrainerConfig& cfg)
{
    GcnModel m = makeModel(t, cfg);
    RunOutcome out;
    out.stats = m.train(t.x, t.labels);
    out.probs = DenseMatrix(t.adj.rows(), cfg.classes);
    m.forward(t.x, out.probs);
    return out;
}

/**
 * Crashes a fresh run at fault @p site / @p nth, then resumes from
 * the latest checkpoint with a new model instance and verifies the
 * completed run is bitwise identical to @p want.
 */
void
crashResumeDrill(const Task& t, const TrainerConfig& cfg,
                 const RunOutcome& want, const char* site,
                 int64_t nth)
{
    // Phase 1: crash mid-training.
    {
        fault::ScopedFault f(site, nth, ErrorCode::Internal);
        GcnModel m = makeModel(t, cfg);
        EXPECT_THROW(m.train(t.x, t.labels), DtcError)
            << site << ":" << nth;
    }
    // Phase 2: a new process (modeled by a new model instance)
    // resumes from whatever survived on disk.
    GcnModel m = makeModel(t, cfg);
    const int64_t done = m.resumeFrom();
    EXPECT_GT(done, 0) << site;
    EXPECT_LT(done, cfg.epochs) << site;
    const TrainStats stats = m.train(t.x, t.labels);

    // Bitwise equivalence with the uninterrupted run: full per-epoch
    // history and the final model's outputs.
    EXPECT_EQ(stats.loss, want.stats.loss) << site;
    EXPECT_EQ(stats.accuracy, want.stats.accuracy) << site;
    DenseMatrix probs(t.adj.rows(), cfg.classes);
    m.forward(t.x, probs);
    EXPECT_TRUE(probs == want.probs) << site;
}

TEST_F(CheckpointTest, ResumeEquivalenceAfterCrashAtEveryCrashPoint)
{
    const Task t = makeTask();
    const RunOutcome want =
        uninterruptedRun(t, makeConfig((dir / "base").string(),
                                       Optimizer::Sgd));

    // Three distinct crash points per epoch: mid-step (before the
    // optimizer applies), mid-checkpoint-write (torn temp file), and
    // pre-rename (complete but unpromoted temp file).  nth=4 lands
    // each inside epoch 4 of 6.
    int run = 0;
    for (const char* site : {fault::sites::kTrainerStep,
                             fault::sites::kTrainerCheckpointWrite,
                             fault::sites::kTrainerCheckpointRename}) {
        const std::string d =
            (dir / ("crash" + std::to_string(run++))).string();
        crashResumeDrill(t, makeConfig(d, Optimizer::Sgd), want,
                         site, 4);
    }
}

TEST_F(CheckpointTest, ResumeEquivalenceCoversAdamMoments)
{
    // Same drill under Adam: the moments and the bias-correction
    // timestep must survive the crash for bitwise equivalence.
    const Task t = makeTask();
    const TrainerConfig base =
        makeConfig((dir / "base").string(), Optimizer::Adam);
    const RunOutcome want = uninterruptedRun(t, base);
    crashResumeDrill(t, makeConfig((dir / "crash").string(),
                                   Optimizer::Adam),
                     want, fault::sites::kTrainerStep, 3);
}

TEST_F(CheckpointTest, CheckpointEveryNSkipsIntermediateEpochs)
{
    const Task t = makeTask();
    TrainerConfig cfg =
        makeConfig((dir / "every3").string(), Optimizer::Sgd);
    cfg.checkpointEvery = 3;
    GcnModel m = makeModel(t, cfg);
    m.train(t.x, t.labels);
    EXPECT_FALSE(fs::exists(checkpointPath(cfg.checkpointDir, 1)));
    EXPECT_FALSE(fs::exists(checkpointPath(cfg.checkpointDir, 2)));
    EXPECT_TRUE(fs::exists(checkpointPath(cfg.checkpointDir, 3)));
    // The final epoch is always checkpointed.
    EXPECT_TRUE(fs::exists(checkpointPath(cfg.checkpointDir, 6)));
}

TEST_F(CheckpointTest, ResumeFromCompletedRunTrainsNothingMore)
{
    const Task t = makeTask();
    const TrainerConfig cfg =
        makeConfig((dir / "full").string(), Optimizer::Sgd);
    const RunOutcome want = uninterruptedRun(t, cfg);

    GcnModel m = makeModel(t, cfg);
    EXPECT_EQ(m.resumeFrom(), cfg.epochs);
    const TrainStats stats = m.train(t.x, t.labels);
    EXPECT_EQ(stats.loss, want.stats.loss);
    EXPECT_EQ(stats.accuracy, want.stats.accuracy);
}

TEST_F(CheckpointTest, ResumeWithMismatchedOptimizerIsTyped)
{
    const Task t = makeTask();
    {
        GcnModel m = makeModel(
            t, makeConfig((dir / "sgd").string(), Optimizer::Sgd));
        m.train(t.x, t.labels);
    }
    GcnModel m = makeModel(
        t, makeConfig((dir / "sgd").string(), Optimizer::Adam));
    try {
        m.resumeFrom();
        FAIL() << "should have thrown";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidInput);
    }
}

TEST_F(CheckpointTest, ResumeFromNothingStartsFresh)
{
    const Task t = makeTask();
    GcnModel m = makeModel(
        t, makeConfig((dir / "empty").string(), Optimizer::Sgd));
    EXPECT_EQ(m.resumeFrom(), 0);
}

TEST_F(CheckpointTest, CheckpointDirEnvKnobIsHonoured)
{
    const Task t = makeTask();
    const std::string env_dir = (dir / "from_env").string();
    ASSERT_EQ(setenv("DTC_CHECKPOINT_DIR", env_dir.c_str(), 1), 0);
    TrainerConfig cfg = makeConfig("", Optimizer::Sgd); // defer to env
    {
        GcnModel m = makeModel(t, cfg);
        m.train(t.x, t.labels);
    }
    EXPECT_EQ(latestCheckpoint(env_dir),
              checkpointPath(env_dir, cfg.epochs));
    GcnModel m = makeModel(t, cfg);
    EXPECT_EQ(m.resumeFrom(), cfg.epochs);
    ASSERT_EQ(unsetenv("DTC_CHECKPOINT_DIR"), 0);
}

} // namespace
} // namespace dtc
