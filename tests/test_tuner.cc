/**
 * @file
 * Unit tests for the conversion cost models and the input-adaptive
 * kernel tuner: Section 6 overhead relationships (GPU conversion
 * within a handful of SpMMs, orders faster than TC-GNN's CPU pass)
 * and amortization-aware kernel choice.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/generators.h"
#include "formats/convert_cost.h"
#include "kernels/dtc.h"
#include "tuner/tuner.h"

namespace dtc {
namespace {

class TunerTest : public ::testing::Test
{
  protected:
    CostModel cm{ArchSpec::rtx4090()};
    Rng rng{99};
};

TEST_F(TunerTest, GpuConversionCostsFewSpmms)
{
    // Paper Section 6: ME-TCF conversion is 1.48x-14.5x of one SpMM.
    CsrMatrix m = genCommunity(8192, 16, 40.0, 0.85, rng);
    DtcKernel kernel;
    ASSERT_EQ(kernel.prepare(m), "");
    const double spmm = kernel.cost(128, cm).timeMs;
    const double conv = meTcfConversionCost(m, cm).timeMs;
    EXPECT_GT(conv, 0.2 * spmm);
    EXPECT_LT(conv, 30.0 * spmm);
}

TEST_F(TunerTest, GpuConversionFarFasterThanTcgnnCpu)
{
    // Paper Section 6: 101x/72x faster than TC-GNN's conversion.
    CsrMatrix m = genCommunity(8192, 16, 40.0, 0.85, rng);
    const double gpu = meTcfConversionCost(m, cm).timeMs;
    const double cpu = tcgnnCpuConversionMs(m);
    EXPECT_GT(cpu / gpu, 20.0);
    EXPECT_LT(cpu / gpu, 500.0);
}

TEST_F(TunerTest, ConversionScalesWithNnz)
{
    CsrMatrix small = genUniform(2048, 8.0, rng);
    CsrMatrix big = genUniform(16384, 16.0, rng);
    EXPECT_LT(meTcfConversionCost(small, cm).timeMs,
              meTcfConversionCost(big, cm).timeMs);
    EXPECT_LT(tcgnnCpuConversionMs(small),
              tcgnnCpuConversionMs(big));
}

TEST_F(TunerTest, RanksSupportedFirstAndSorted)
{
    CsrMatrix m = genUniform(4096, 12.0, rng);
    TuneRequest req;
    TuneResult res = tuneSpmm(m, req, cm);
    ASSERT_FALSE(res.entries.empty());
    bool seen_unsupported = false;
    double prev = 0.0;
    for (const TuneEntry& e : res.entries) {
        if (!e.supported) {
            seen_unsupported = true;
            continue;
        }
        EXPECT_FALSE(seen_unsupported); // supported block first
        EXPECT_GE(e.amortizedMs, prev);
        prev = e.amortizedMs;
    }
}

TEST_F(TunerTest, DtcWinsIterativeWorkloads)
{
    // GNN-style graph, thousands of iterations: conversion
    // amortizes and the fastest kernel (DTC) wins.
    CsrMatrix m = shuffleLabels(
        genCommunity(8192, 32, 40.0, 0.9, rng), rng);
    TuneRequest req;
    req.iterations = 5000;
    TuneResult res = tuneSpmm(m, req, cm);
    EXPECT_EQ(res.best().kind, KernelKind::Dtc);
}

TEST_F(TunerTest, SingleShotPenalizesHeavyConversion)
{
    // With one execution, conversion cost dominates: a zero-
    // conversion kernel must beat any kernel whose conversion alone
    // exceeds the cuSPARSE execution.
    CsrMatrix m = genUniform(8192, 12.0, rng);
    TuneRequest req;
    req.iterations = 1;
    TuneResult res = tuneSpmm(m, req, cm);
    const TuneEntry& best = res.best();
    for (const TuneEntry& e : res.entries) {
        if (e.supported) {
            EXPECT_LE(best.amortizedMs, e.amortizedMs);
        }
    }
    // TCGNN (CPU conversion, minutes-scale) must never win one-shot.
    EXPECT_NE(best.kind, KernelKind::Tcgnn);
}

TEST_F(TunerTest, CustomCandidateList)
{
    CsrMatrix m = genUniform(1024, 8.0, rng);
    TuneRequest req;
    req.candidates = {KernelKind::CuSparse, KernelKind::Sputnik};
    TuneResult res = tuneSpmm(m, req, cm);
    EXPECT_EQ(res.entries.size(), 2u);
}

int64_t
SpartaKernelDims()
{
    return 6000; // above SparTA's scaled dimension limit
}

TEST_F(TunerTest, UnsupportedCandidatesCarryReason)
{
    CsrMatrix m = genUniform(SpartaKernelDims(), 2.0, rng);
    TuneRequest req;
    req.candidates = {KernelKind::SparTA, KernelKind::CuSparse};
    TuneResult res = tuneSpmm(m, req, cm);
    bool found = false;
    for (const TuneEntry& e : res.entries) {
        if (e.kind == KernelKind::SparTA) {
            EXPECT_FALSE(e.supported);
            EXPECT_FALSE(e.reason.empty());
            // The skip carries the taxonomy code, not just a string.
            EXPECT_EQ(e.refusal, ErrorCode::Unsupported);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    EXPECT_EQ(res.best().kind, KernelKind::CuSparse);
    EXPECT_FALSE(res.fallbackAppended);
}

TEST_F(TunerTest, RejectsBadRequest)
{
    CsrMatrix m = genUniform(64, 4.0, rng);
    TuneRequest req;
    req.iterations = 0;
    EXPECT_THROW(tuneSpmm(m, req, cm), std::invalid_argument);
}

} // namespace
} // namespace dtc
