/**
 * @file
 * Unit tests for common utilities: RNG determinism and
 * distributions, TF32 rounding semantics, check macros.
 */
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "common/tf32.h"

namespace dtc {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next64() == b.next64())
            same++;
    EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        uint64_t v = rng.nextBounded(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, BoundedCoversAllValues)
{
    Rng rng(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextIntInclusiveRange)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        int64_t v = rng.nextInt(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ZipfSkewPrefersSmallValues)
{
    Rng rng(5);
    int64_t small = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        if (rng.nextZipf(1000, 1.5) < 10)
            small++;
    // With s=1.5 the first 10 values carry most of the mass.
    EXPECT_GT(small, trials / 2);
}

TEST(Rng, ZipfZeroSkewIsUniformish)
{
    Rng rng(5);
    int64_t small = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        if (rng.nextZipf(1000, 0.0) < 100)
            small++;
    EXPECT_NEAR(static_cast<double>(small) / trials, 0.1, 0.02);
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    Rng rng(9);
    auto s = rng.sampleWithoutReplacement(100, 40);
    std::set<uint64_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 40u);
    for (uint64_t v : s)
        EXPECT_LT(v, 100u);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(13);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Tf32, ExactValuesUnchanged)
{
    // Values representable in 10 mantissa bits pass through.
    EXPECT_EQ(tf32Round(1.0f), 1.0f);
    EXPECT_EQ(tf32Round(-2.5f), -2.5f);
    EXPECT_EQ(tf32Round(0.0f), 0.0f);
    EXPECT_EQ(tf32Round(1024.0f), 1024.0f);
}

TEST(Tf32, DropsLowMantissaBits)
{
    const float x = 1.0f + std::ldexp(1.0f, -20); // needs 20 bits
    const float r = tf32Round(x);
    EXPECT_EQ(r, 1.0f); // rounds back down to 1.0
}

TEST(Tf32, RoundsToNearest)
{
    // 1 + 2^-11 is exactly halfway between 1 and 1+2^-10;
    // round-to-even keeps 1.0.
    const float x = 1.0f + std::ldexp(1.0f, -11);
    EXPECT_EQ(tf32Round(x), 1.0f);
    // Just above the halfway point rounds up.
    const float y = 1.0f + std::ldexp(1.0f, -11) +
                    std::ldexp(1.0f, -14);
    EXPECT_EQ(tf32Round(y), 1.0f + std::ldexp(1.0f, -10));
}

TEST(Tf32, RelativeErrorBounded)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i) {
        float x = rng.nextFloat(-1000.0f, 1000.0f);
        if (x == 0.0f)
            continue;
        float r = tf32Round(x);
        EXPECT_LE(std::abs(r - x) / std::abs(x),
                  std::ldexp(1.0, -11) + 1e-9);
    }
}

TEST(Tf32, MantissaActuallyTruncated)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i) {
        float x = rng.nextFloat(-100.0f, 100.0f);
        uint32_t bits = std::bit_cast<uint32_t>(tf32Round(x));
        EXPECT_EQ(bits & ((1u << 13) - 1), 0u);
    }
}

TEST(Tf32, NonFinitePassThrough)
{
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(tf32Round(inf), inf);
    EXPECT_EQ(tf32Round(-inf), -inf);
    EXPECT_TRUE(std::isnan(
        tf32Round(std::numeric_limits<float>::quiet_NaN())));
}

TEST(Tf32, FmaMatchesManualRounding)
{
    const float a = 1.2345678f, b = 7.654321f, acc = 0.5f;
    EXPECT_EQ(tf32Fma(a, b, acc),
              acc + tf32Round(a) * tf32Round(b));
}

TEST(Check, CheckThrowsInvalidArgument)
{
    EXPECT_THROW(DTC_CHECK(1 == 2), std::invalid_argument);
    EXPECT_NO_THROW(DTC_CHECK(1 == 1));
}

TEST(Check, AssertThrowsLogicError)
{
    EXPECT_THROW(DTC_ASSERT(false), std::logic_error);
    EXPECT_NO_THROW(DTC_ASSERT(true));
}

TEST(Check, MessageIncludesDetail)
{
    try {
        DTC_CHECK_MSG(false, "rows=" << 42);
        FAIL() << "expected throw";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("rows=42"),
                  std::string::npos);
    }
}

} // namespace
} // namespace dtc
