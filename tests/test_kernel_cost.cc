/**
 * @file
 * Behavioural tests of the kernel cost models: the relationships the
 * paper establishes (Observations 1-4 and the Section 5 breakdowns)
 * must hold on this simulator — TCGNN's quadratic FetchSparse blowing
 * up #IMAD/#HMMA on long rows, DTC beating TCGNN everywhere, ablation
 * flags each helping, strict balance fixing skew, reordering helping.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/generators.h"
#include "datasets/table1.h"
#include "kernels/dtc.h"
#include "kernels/kernel.h"

namespace dtc {
namespace {

LaunchResult
runCost(KernelKind kind, const CsrMatrix& a, int64_t n,
        const CostModel& cm)
{
    auto kernel = makeKernel(kind);
    const std::string err = kernel->prepare(a);
    if (!err.empty())
        return LaunchResult::unsupported(kernel->name(), err);
    return kernel->cost(n, cm);
}

class KernelCostTest : public ::testing::Test
{
  protected:
    CostModel cm{ArchSpec::rtx4090()};
    Rng rng{2024};
};

TEST_F(KernelCostTest, TcgnnImadHmmaExplodesOnLongRows)
{
    CsrMatrix short_rows = genUniform(4096, 4.0, rng);
    CsrMatrix long_rows = genUniform(2048, 400.0, rng);
    auto r_short = runCost(KernelKind::Tcgnn, short_rows, 128, cm);
    auto r_long = runCost(KernelKind::Tcgnn, long_rows, 128, cm);
    // Observation 3 / Table 2: Type I sits around 13-15, Type II far
    // higher.
    EXPECT_GT(r_short.imadPerHmma, 8.0);
    EXPECT_LT(r_short.imadPerHmma, 25.0);
    EXPECT_GT(r_long.imadPerHmma, 2.0 * r_short.imadPerHmma);
}

TEST_F(KernelCostTest, TcgnnTcUtilizationUnderEightPercent)
{
    for (const char* abbr : {"YH", "DD"}) {
        CsrMatrix a = table1ByAbbr(abbr).make();
        auto r = runCost(KernelKind::Tcgnn, a, 128, cm);
        EXPECT_LT(r.tcUtilPct, 8.0) << abbr;
        EXPECT_GT(r.tcUtilPct, 0.5) << abbr;
    }
}

TEST_F(KernelCostTest, DtcUtilizationBeatsTcgnn)
{
    CsrMatrix a = genCommunity(4096, 16, 60.0, 0.8, rng);
    auto tcgnn = runCost(KernelKind::Tcgnn, a, 128, cm);
    auto dtc = runCost(KernelKind::DtcBase, a, 128, cm);
    EXPECT_GT(dtc.tcUtilPct, tcgnn.tcUtilPct);
    EXPECT_LT(dtc.imadPerHmma, tcgnn.imadPerHmma);
}

TEST_F(KernelCostTest, DtcFasterThanTcgnnEverywhere)
{
    // Table 3: DTC achieves speedups over TCGNN on ALL matrices.
    for (int which = 0; which < 4; ++which) {
        CsrMatrix a =
            which == 0   ? genUniform(16384, 8.0, rng)
            : which == 1 ? genPowerLaw(16384, 16.0, 1.3, rng)
            : which == 2 ? genCommunity(16384, 32, 100.0, 0.8, rng)
                         : genBanded(16384, 32, 12.0, rng);
        auto tcgnn = runCost(KernelKind::Tcgnn, a, 128, cm);
        auto dtc = runCost(KernelKind::Dtc, a, 128, cm);
        EXPECT_LT(dtc.timeMs, tcgnn.timeMs) << which;
    }
}

TEST_F(KernelCostTest, TcgnnLosesToCuSparseOnTypeII)
{
    CsrMatrix a = table1ByAbbr("ddi").make();
    auto tcgnn = runCost(KernelKind::Tcgnn, a, 128, cm);
    auto cusp = runCost(KernelKind::CuSparse, a, 128, cm);
    EXPECT_GT(tcgnn.timeMs, cusp.timeMs);
}

TEST_F(KernelCostTest, DtcBeatsCudaCoreBaselinesOnTypeII)
{
    CsrMatrix a = table1ByAbbr("ddi").make();
    auto dtc = runCost(KernelKind::Dtc, a, 128, cm);
    auto cusp = runCost(KernelKind::CuSparse, a, 128, cm);
    EXPECT_LT(dtc.timeMs, cusp.timeMs);
}

TEST_F(KernelCostTest, AblationFlagsEachImproveTime)
{
    CsrMatrix a = genCommunity(4096, 16, 80.0, 0.85, rng);
    auto costWith = [&](bool smb, bool ip, bool sdb, bool vfd) {
        DtcOptions o;
        o.smb = smb;
        o.ip = ip;
        o.sdb = sdb;
        o.vfd = vfd;
        o.mode = DtcOptions::Mode::Base;
        DtcKernel k(o);
        EXPECT_EQ(k.prepare(a), "");
        return k.cost(128, cm);
    };
    auto base = costWith(false, false, false, false);
    auto smb = costWith(true, false, false, false);
    auto ip = costWith(true, true, false, false);
    auto sdb = costWith(true, true, true, false);
    auto vfd = costWith(true, true, true, true);
    // Fig. 14: each added optimization raises TC pipe utilization.
    EXPECT_GT(smb.tcUtilPct, base.tcUtilPct);
    EXPECT_GT(ip.tcUtilPct, smb.tcUtilPct);
    EXPECT_GT(sdb.tcUtilPct, ip.tcUtilPct);
    EXPECT_GT(vfd.tcUtilPct, sdb.tcUtilPct);
    EXPECT_LT(vfd.timeMs, base.timeMs);
    // IP specifically cuts integer work.
    EXPECT_LT(ip.totalImad, smb.totalImad);
    // SMB removes the shared-memory round trip.
    EXPECT_LT(smb.totalSts, base.totalSts);
}

TEST_F(KernelCostTest, BalancedFixesSkewedWorkloads)
{
    // Skewed: a few windows hold almost all TC blocks.
    CsrMatrix a = genPowerLaw(8192, 60.0, 1.6, rng);
    auto base = runCost(KernelKind::DtcBase, a, 128, cm);
    auto bal = runCost(KernelKind::DtcBalanced, a, 128, cm);
    EXPECT_LT(bal.timeMs, base.timeMs);

    // Per-SM busy spread collapses under strict balance.
    auto spread = [](const LaunchResult& r) {
        double mx = 0.0, mn = 1e300;
        for (double b : r.smBusyCycles) {
            mx = std::max(mx, b);
            mn = std::min(mn, b);
        }
        return mx / std::max(mn, 1.0);
    };
    EXPECT_LT(spread(bal), spread(base));
}

TEST_F(KernelCostTest, BalancedCostsOverheadOnUniformWorkloads)
{
    // Paper Section 4.5.2: ~22% degradation on naturally balanced
    // matrices motivates the 1.2 AR threshold.  Needs a grid large
    // enough to saturate the device in base mode.
    CsrMatrix a = genUniform(24576, 24.0, rng);
    auto base = runCost(KernelKind::DtcBase, a, 128, cm);
    auto bal = runCost(KernelKind::DtcBalanced, a, 128, cm);
    EXPECT_GT(bal.timeMs, base.timeMs);
}

TEST_F(KernelCostTest, AutoModeNeverWorseThanWorstChoice)
{
    for (int which = 0; which < 2; ++which) {
        CsrMatrix a = which == 0
                          ? genUniform(4096, 24.0, rng)
                          : genPowerLaw(4096, 60.0, 1.6, rng);
        auto base = runCost(KernelKind::DtcBase, a, 128, cm);
        auto bal = runCost(KernelKind::DtcBalanced, a, 128, cm);
        auto autod = runCost(KernelKind::Dtc, a, 128, cm);
        EXPECT_LE(autod.timeMs,
                  std::max(base.timeMs, bal.timeMs) + 1e-12);
    }
}

TEST_F(KernelCostTest, FlashLlmPaysDenseComputeOnVerySparse)
{
    // >99.7% sparse: almost every 64x64 tile is nonempty but nearly
    // empty, so Load-as-Sparse-Compute-as-Dense wastes its FLOPs.
    CsrMatrix a = genCommunity(8192, 32, 24.0, 0.8, rng);
    auto fl = runCost(KernelKind::FlashLlmV1, a, 128, cm);
    auto dtc = runCost(KernelKind::Dtc, a, 128, cm);
    EXPECT_GT(fl.timeMs, 3.0 * dtc.timeMs);
}

TEST_F(KernelCostTest, FlashLlmCompetitiveOnDenseMatrices)
{
    // ddi-like density (~12%): Table 4 shows near parity.
    CsrMatrix a = genUniform(2048, 240.0, rng);
    auto fl = runCost(KernelKind::FlashLlmV1, a, 128, cm);
    auto dtc = runCost(KernelKind::Dtc, a, 128, cm);
    EXPECT_LT(fl.timeMs, 4.0 * dtc.timeMs);
}

TEST_F(KernelCostTest, BlockSpmmWastesFlopsOnUnstructured)
{
    CsrMatrix a = genPowerLaw(4096, 10.0, 1.3, rng);
    auto blk = runCost(KernelKind::BlockSpmm32, a, 128, cm);
    auto dtc = runCost(KernelKind::Dtc, a, 128, cm);
    ASSERT_TRUE(blk.supported);
    EXPECT_GT(blk.timeMs, dtc.timeMs);
}

TEST_F(KernelCostTest, SputnikBeatsCuSparseOnSkew)
{
    CsrMatrix a = genPowerLaw(8192, 24.0, 1.5, rng);
    auto sp = runCost(KernelKind::Sputnik, a, 128, cm);
    auto cu = runCost(KernelKind::CuSparse, a, 128, cm);
    EXPECT_LT(sp.timeMs, cu.timeMs);
}

TEST_F(KernelCostTest, TimeScalesWithDenseWidth)
{
    CsrMatrix a = genUniform(2048, 16.0, rng);
    auto r128 = runCost(KernelKind::Dtc, a, 128, cm);
    auto r512 = runCost(KernelKind::Dtc, a, 512, cm);
    EXPECT_GT(r512.timeMs, 2.0 * r128.timeMs);
    EXPECT_LT(r512.timeMs, 8.0 * r128.timeMs);
}

TEST_F(KernelCostTest, Rtx3090SlowerThan4090)
{
    CsrMatrix a = genCommunity(4096, 16, 60.0, 0.8, rng);
    CostModel cm3090{ArchSpec::rtx3090()};
    auto r40 = runCost(KernelKind::Dtc, a, 128, cm);
    auto r30 = runCost(KernelKind::Dtc, a, 128, cm3090);
    EXPECT_GT(r30.timeMs, r40.timeMs);
}

TEST_F(KernelCostTest, ReorderingImprovesDtcThroughput)
{
    // Hidden community structure, shuffled away; grouping similar
    // rows back together must speed DTC up (Fig. 13b).
    CsrMatrix structured = genCommunity(4096, 64, 60.0, 0.95, rng);
    CsrMatrix shuffled = shuffleLabels(structured, rng);
    auto before = runCost(KernelKind::DtcBase, shuffled, 128, cm);
    auto after = runCost(KernelKind::DtcBase, structured, 128, cm);
    EXPECT_LT(after.timeMs, before.timeMs);
}

TEST_F(KernelCostTest, SequentialAccessPaysWarpTranspose)
{
    // Paper Section 4.4.1 / Fig. 8b: sequential access needs a
    // shfl-based warp transpose; strided access avoids it.
    CsrMatrix a = genCommunity(8192, 16, 40.0, 0.85, rng);
    DtcOptions strided;
    strided.mode = DtcOptions::Mode::Base;
    DtcKernel ks(strided);
    ASSERT_EQ(ks.prepare(a), "");
    DtcOptions sequential = strided;
    sequential.sequentialAccess = true;
    DtcKernel kq(sequential);
    ASSERT_EQ(kq.prepare(a), "");
    EXPECT_GT(kq.cost(128, cm).timeMs, ks.cost(128, cm).timeMs);
}

TEST_F(KernelCostTest, L2HitRateReported)
{
    CsrMatrix a = genCommunity(2048, 8, 60.0, 0.9, rng);
    auto r = runCost(KernelKind::Dtc, a, 128, cm);
    EXPECT_GT(r.l2HitRate, 0.0);
    EXPECT_LE(r.l2HitRate, 1.0);
}

} // namespace
} // namespace dtc
