/**
 * @file
 * Unit tests for the structured-sparsity formats: Blocked-ELL
 * (padding, OOM refusal) and CVSE (vector packing, fill efficiency).
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/generators.h"
#include "formats/bell.h"
#include "formats/cvse.h"
#include "matrix/coo.h"

namespace dtc {
namespace {

constexpr int64_t kBigLimit = 1ll << 40;

TEST(Bell, BlockStructurePreserved)
{
    Rng rng(1);
    CsrMatrix m = genBlockDiagonal(128, 32, 0.4, rng);
    auto res = bellTryBuild(m, 32, kBigLimit);
    ASSERT_FALSE(res.oom);
    const BellMatrix& b = res.matrix;
    // A block-diagonal matrix with matching block size packs into
    // exactly one block column per block row.
    EXPECT_EQ(b.ellCols(), 1);
    EXPECT_EQ(b.numNonzeroBlocks(), 4);
    EXPECT_GT(b.fillEfficiency(), 0.3);
}

TEST(Bell, ValuesLandInRightSlots)
{
    CooMatrix coo(4, 4);
    coo.add(0, 0, 1.0f);
    coo.add(1, 3, 2.0f);
    coo.add(3, 2, 3.0f);
    CsrMatrix m = CsrMatrix::fromCoo(coo);
    auto res = bellTryBuild(m, 2, kBigLimit);
    ASSERT_FALSE(res.oom);
    const BellMatrix& b = res.matrix;
    auto dense = m.toDense();
    // Reconstruct from BELL and compare.
    std::vector<float> rebuilt(16, 0.0f);
    for (int64_t br = 0; br < b.numBlockRows(); ++br) {
        for (int64_t s = 0; s < b.ellCols(); ++s) {
            int32_t bc = b.blockColIdx()[br * b.ellCols() + s];
            if (bc == BellMatrix::kPadBlock)
                continue;
            for (int64_t i = 0; i < 2; ++i)
                for (int64_t j = 0; j < 2; ++j)
                    rebuilt[(br * 2 + i) * 4 + bc * 2 + j] =
                        b.values()[((br * b.ellCols() + s) * 2 + i) *
                                       2 +
                                   j];
        }
    }
    EXPECT_EQ(rebuilt, dense);
}

TEST(Bell, EllPaddingUsesSentinel)
{
    // One dense row block, one sparse: ELL width padded to the max.
    CooMatrix coo(4, 64);
    for (int32_t c = 0; c < 64; c += 2)
        coo.add(0, c, 1.0f);
    coo.add(2, 0, 1.0f);
    CsrMatrix m = CsrMatrix::fromCoo(coo);
    auto res = bellTryBuild(m, 2, kBigLimit);
    ASSERT_FALSE(res.oom);
    const BellMatrix& b = res.matrix;
    EXPECT_EQ(b.ellCols(), 32);
    int64_t pads = 0;
    for (int32_t bc : b.blockColIdx())
        if (bc == BellMatrix::kPadBlock)
            pads++;
    EXPECT_EQ(pads, 31); // second block row has 1 real of 32 slots
}

TEST(Bell, OomRefusalOnScatteredMatrix)
{
    // Power-law hubs touch many block columns: padded footprint
    // explodes and the conversion must refuse.
    Rng rng(2);
    CsrMatrix m = genPowerLaw(8192, 12.0, 1.5, rng);
    auto res = bellTryBuild(m, 64, 8ll << 20); // 8 MiB budget
    EXPECT_TRUE(res.oom);
    EXPECT_GT(res.projectedBytes, 8ll << 20);
}

TEST(Bell, FootprintBytesMatchesArrays)
{
    Rng rng(3);
    CsrMatrix m = genBanded(256, 16, 6.0, rng);
    auto res = bellTryBuild(m, 16, kBigLimit);
    ASSERT_FALSE(res.oom);
    EXPECT_EQ(res.matrix.footprintBytes(),
              static_cast<int64_t>(res.matrix.values().size() * 4 +
                                   res.matrix.blockColIdx().size() *
                                       4));
    EXPECT_EQ(res.projectedBytes, res.matrix.footprintBytes());
}

TEST(Cvse, PanelsCoverAllRows)
{
    Rng rng(4);
    CsrMatrix m = genUniform(100, 6.0, rng);
    CvseMatrix v = CvseMatrix::build(m, 8);
    EXPECT_EQ(v.numPanels(), (m.rows() + 7) / 8);
}

TEST(Cvse, ReconstructsMatrix)
{
    Rng rng(5);
    CsrMatrix m = genUniform(96, 5.0, rng);
    CvseMatrix v = CvseMatrix::build(m, 4);
    auto dense = m.toDense();
    std::vector<float> rebuilt(dense.size(), 0.0f);
    for (int64_t p = 0; p < v.numPanels(); ++p) {
        for (int64_t s = v.panelOffset()[p]; s < v.panelOffset()[p + 1];
             ++s) {
            for (int64_t i = 0; i < 4; ++i) {
                const int64_t row = p * 4 + i;
                if (row >= m.rows())
                    break;
                rebuilt[row * m.cols() + v.vecCol()[s]] =
                    v.values()[s * 4 + i];
            }
        }
    }
    EXPECT_EQ(rebuilt, dense);
}

TEST(Cvse, MeanNnzPerVectorBounded)
{
    Rng rng(6);
    CsrMatrix m = genUniform(200, 8.0, rng);
    CvseMatrix v = CvseMatrix::build(m, 8);
    EXPECT_GT(v.meanNnzPerVector(), 1.0 - 1e-9);
    EXPECT_LE(v.meanNnzPerVector(), 8.0);
    EXPECT_DOUBLE_EQ(v.fillEfficiency(),
                     v.meanNnzPerVector() / 8.0);
}

TEST(Cvse, FinerVectorsPadLess)
{
    Rng rng(7);
    CsrMatrix m = genPowerLaw(1024, 10.0, 1.3, rng);
    CvseMatrix v4 = CvseMatrix::build(m, 4);
    CvseMatrix v8 = CvseMatrix::build(m, 8);
    EXPECT_GE(v4.fillEfficiency(), v8.fillEfficiency());
}

TEST(Cvse, SharedColumnsCondense)
{
    // All 8 rows of a panel share the same columns: one vector per
    // column, perfectly filled.
    CooMatrix coo(8, 32);
    for (int32_t r = 0; r < 8; ++r)
        for (int32_t c = 0; c < 4; ++c)
            coo.add(r, c * 8, 2.0f);
    CvseMatrix v = CvseMatrix::build(CsrMatrix::fromCoo(coo), 8);
    EXPECT_EQ(v.numVectors(), 4);
    EXPECT_DOUBLE_EQ(v.fillEfficiency(), 1.0);
}

} // namespace
} // namespace dtc
