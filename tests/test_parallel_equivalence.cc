/**
 * @file
 * Parallel-vs-serial equivalence suite: every registered kernel must
 * produce bitwise-identical compute() output and identical cost()
 * event tallies with threads=1 and threads=8, across a sweep of
 * matrix shapes; format conversions and TCA reordering must be
 * thread-count-invariant too.  Plus a randomized property test that
 * the parallel CSR -> SGT -> ME-TCF conversion roundtrips exactly.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "datasets/generators.h"
#include "formats/me_tcf.h"
#include "formats/sgt.h"
#include "gpusim/arch.h"
#include "gpusim/cost_model.h"
#include "kernels/kernel.h"
#include "matrix/coo.h"
#include "reorder/tca.h"

namespace dtc {
namespace {

constexpr int kParallelThreads = 8;
constexpr int64_t kDenseCols = 16;

/** The ISSUE's shape sweep: name + matrix. */
std::vector<std::pair<std::string, CsrMatrix>>
sweepMatrices()
{
    std::vector<std::pair<std::string, CsrMatrix>> out;
    out.emplace_back("empty-32x32", CsrMatrix(32, 32));

    CooMatrix onerow(64, 64);
    for (int32_t c = 0; c < 64; c += 3)
        onerow.add(0, c, 1.0f + static_cast<float>(c));
    out.emplace_back("single-populated-row",
                     CsrMatrix::fromCoo(onerow));

    CooMatrix wide(1, 256);
    for (int32_t c = 1; c < 256; c += 7)
        wide.add(0, c, 0.5f * static_cast<float>(c));
    out.emplace_back("1xN", CsrMatrix::fromCoo(wide));

    Rng rng(2024);
    out.emplace_back("dense-ish",
                     genBlockDiagonal(64, 16, 0.9, rng));
    out.emplace_back("sparse-95pct", genUniform(512, 4.0, rng));
    // > 10 windows of 16 rows.
    out.emplace_back("tall-128-windows",
                     genCommunity(2048, 8, 16.0, 0.85, rng));
    return out;
}

std::vector<KernelKind>
allKernelKinds()
{
    return {KernelKind::CuSparse,      KernelKind::Tcgnn,
            KernelKind::Dtc,           KernelKind::DtcBase,
            KernelKind::DtcBalanced,   KernelKind::Sputnik,
            KernelKind::SparseTir,     KernelKind::BlockSpmm32,
            KernelKind::BlockSpmm64,   KernelKind::VectorSparse4,
            KernelKind::VectorSparse8, KernelKind::FlashLlmV1,
            KernelKind::FlashLlmV2,    KernelKind::SparTA};
}

struct KernelRun
{
    bool supported = false;
    DenseMatrix c;
    LaunchResult cost;
};

/** Full prepare + compute + cost pipeline at a fixed thread count. */
KernelRun
runKernel(KernelKind kind, const CsrMatrix& a, int threads)
{
    ScopedNumThreads t(threads);
    KernelRun run;
    auto kernel = makeKernel(kind);
    if (!kernel->prepare(a).empty())
        return run;
    run.supported = true;

    Rng rng(99);
    DenseMatrix b(a.cols(), kDenseCols);
    b.fillRandom(rng);
    run.c = DenseMatrix(a.rows(), kDenseCols);
    kernel->compute(b, run.c);

    CostModel cm(ArchSpec::rtx4090());
    run.cost = kernel->cost(kDenseCols, cm);
    return run;
}

void
expectBitwiseEqual(const DenseMatrix& a, const DenseMatrix& b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          a.size() * sizeof(float)),
              0);
}

void
expectIdenticalCost(const LaunchResult& a, const LaunchResult& b)
{
    EXPECT_EQ(a.kernel, b.kernel);
    EXPECT_EQ(a.supported, b.supported);
    EXPECT_EQ(a.timeMs, b.timeMs);
    EXPECT_EQ(a.makespanCycles, b.makespanCycles);
    EXPECT_EQ(a.smBusyCycles, b.smBusyCycles);
    EXPECT_EQ(a.tcUtilPct, b.tcUtilPct);
    EXPECT_EQ(a.totalHmma, b.totalHmma);
    EXPECT_EQ(a.totalImad, b.totalImad);
    EXPECT_EQ(a.totalFma, b.totalFma);
    EXPECT_EQ(a.totalLdg, b.totalLdg);
    EXPECT_EQ(a.totalSts, b.totalSts);
    EXPECT_EQ(a.imadPerHmma, b.imadPerHmma);
    EXPECT_EQ(a.l2HitRate, b.l2HitRate);
    EXPECT_EQ(a.dramBytes, b.dramBytes);
    EXPECT_EQ(a.flops, b.flops);
}

TEST(ParallelEquivalence, AllKernelsAllShapes)
{
    for (const auto& [mat_name, m] : sweepMatrices()) {
        for (KernelKind kind : allKernelKinds()) {
            SCOPED_TRACE(std::string(kernelKindName(kind)) + " on " +
                         mat_name);
            KernelRun serial = runKernel(kind, m, 1);
            KernelRun parallel = runKernel(kind, m, kParallelThreads);
            ASSERT_EQ(serial.supported, parallel.supported);
            if (!serial.supported)
                continue; // kernel refuses this shape either way
            expectBitwiseEqual(serial.c, parallel.c);
            expectIdenticalCost(serial.cost, parallel.cost);
        }
    }
}

TEST(ParallelEquivalence, SgtCondensationArrays)
{
    for (const auto& [mat_name, m] : sweepMatrices()) {
        SCOPED_TRACE(mat_name);
        SgtResult s1, s8;
        {
            ScopedNumThreads t(1);
            s1 = sgtCondense(m);
        }
        {
            ScopedNumThreads t(kParallelThreads);
            s8 = sgtCondense(m);
        }
        EXPECT_EQ(s1.numWindows, s8.numWindows);
        EXPECT_EQ(s1.numTcBlocks, s8.numTcBlocks);
        EXPECT_EQ(s1.windowColOffset, s8.windowColOffset);
        EXPECT_EQ(s1.windowCols, s8.windowCols);
        EXPECT_EQ(s1.blocksPerWindow, s8.blocksPerWindow);
        EXPECT_EQ(s1.meanNnzTc, s8.meanNnzTc);
    }
}

TEST(ParallelEquivalence, MeTcfConversionArrays)
{
    for (const auto& [mat_name, m] : sweepMatrices()) {
        SCOPED_TRACE(mat_name);
        MeTcfMatrix t1, t8;
        {
            ScopedNumThreads t(1);
            t1 = MeTcfMatrix::build(m);
        }
        {
            ScopedNumThreads t(kParallelThreads);
            t8 = MeTcfMatrix::build(m);
        }
        EXPECT_EQ(t1.rowWindowOffset(), t8.rowWindowOffset());
        EXPECT_EQ(t1.tcOffset(), t8.tcOffset());
        EXPECT_EQ(t1.tcLocalId(), t8.tcLocalId());
        EXPECT_EQ(t1.sparseAtoB(), t8.sparseAtoB());
        EXPECT_EQ(t1.values(), t8.values());
    }
}

TEST(ParallelEquivalence, TcaReorderPermutation)
{
    Rng rng(7);
    CsrMatrix m = shuffleLabels(
        genCommunity(1024, 16, 20.0, 0.9, rng), rng);
    TcaParams params;
    TcaResult r1, r8;
    {
        ScopedNumThreads t(1);
        r1 = tcaReorder(m, params);
    }
    {
        ScopedNumThreads t(kParallelThreads);
        r8 = tcaReorder(m, params);
    }
    EXPECT_EQ(r1.permutation, r8.permutation);
    EXPECT_EQ(r1.numClusters, r8.numClusters);
    EXPECT_EQ(r1.numSuperClusters, r8.numSuperClusters);
}

/**
 * Randomized roundtrip property: random CSR -> SGT/ME-TCF (parallel
 * conversion path) -> reconstructed CSR equals the input, ~100 cases
 * with per-case forked RNG streams (no shared mutable RNG).
 */
TEST(ParallelEquivalence, RandomizedFormatRoundtrip)
{
    const Rng master(0xF00Dull);
    ScopedNumThreads t(kParallelThreads);
    for (uint64_t i = 0; i < 100; ++i) {
        SCOPED_TRACE("case " + std::to_string(i));
        Rng rng = master.forkAt(i);
        CsrMatrix m;
        const int64_t n = rng.nextInt(1, 300);
        switch (i % 5) {
          case 0:
            m = genUniform(n, rng.nextFloat(0.5f, 8.0f), rng);
            break;
          case 1:
            m = genPowerLaw(n, rng.nextFloat(1.0f, 6.0f), 1.1, rng);
            break;
          case 2:
            m = genBanded(n, rng.nextInt(1, 16),
                          rng.nextFloat(1.0f, 6.0f), rng);
            break;
          case 3:
            m = genBlockDiagonal(n, rng.nextInt(2, 24),
                                 rng.nextDouble(), rng);
            break;
          default: {
            // Non-square COO with duplicate-free random pattern.
            const int64_t cols = rng.nextInt(1, 300);
            CooMatrix coo(n, cols);
            const int64_t entries = rng.nextInt(0, 4 * n);
            for (int64_t e = 0; e < entries; ++e)
                coo.add(static_cast<int32_t>(rng.nextBounded(n)),
                        static_cast<int32_t>(rng.nextBounded(cols)),
                        rng.nextFloat(-2.0f, 2.0f));
            m = CsrMatrix::fromCoo(coo);
            break;
          }
        }

        const SgtResult sgt = sgtCondense(m);
        EXPECT_EQ(sgt.nnz, m.nnz());

        const MeTcfMatrix conv = MeTcfMatrix::build(m);
        const CsrMatrix back = conv.toCsr();
        EXPECT_TRUE(back == m);
    }
}

} // namespace
} // namespace dtc
