/**
 * @file
 * Tests for the resilient runtime: circuit-breaker state machine,
 * deadline/cancellation plumbing, retry + reroute under injected
 * faults, and the online sampled-row result guard.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/env.h"
#include "common/error.h"
#include "common/fault.h"
#include "common/fault_sites.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "datasets/generators.h"
#include "gpusim/arch.h"
#include "gpusim/cost_model.h"
#include "kernels/reference.h"
#include "obs/metrics.h"
#include "runtime/breaker.h"
#include "runtime/guard.h"
#include "runtime/runtime.h"
#include "testing/oracle.h"

namespace dtc {
namespace {

using runtime::BreakerOptions;
using runtime::BreakerRegistry;
using runtime::CircuitBreaker;
using runtime::RunReport;
using runtime::Runtime;
using runtime::RuntimeOptions;

class RuntimeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::disarmAll();
        runtime::guard::setSampleFraction(0.0); // opt-in per test
    }
    void
    TearDown() override
    {
        fault::disarmAll();
        runtime::guard::setSampleFraction(-1.0); // back to env
    }

    CostModel cm{ArchSpec::rtx4090()};
    Rng rng{99};
};

/** Max |got - want| across the whole matrix. */
double
maxDiff(const DenseMatrix& got, const DenseMatrix& want)
{
    return got.maxAbsDiff(want);
}

/** Loose correctness vs the double-accumulation reference. */
void
expectCloseToReference(const CsrMatrix& a, const DenseMatrix& b,
                       const DenseMatrix& got)
{
    DenseMatrix want(a.rows(), b.cols());
    referenceSpmm(a, b, want);
    // TF32 operand rounding on unit-scale data stays well inside 0.05.
    EXPECT_LT(maxDiff(got, want), 0.05);
}

// ---------------------------------------------------------------------
// Circuit breaker state machine
// ---------------------------------------------------------------------

TEST(CircuitBreaker, ClosedToOpenToHalfOpenToClosed)
{
    BreakerOptions opt;
    opt.failureThreshold = 3;
    opt.cooldownRejections = 2;
    CircuitBreaker br("k", opt);

    EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
    br.onFailure();
    br.onFailure();
    EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
    EXPECT_EQ(br.consecutiveFailures(), 2);
    EXPECT_TRUE(br.allow());
    br.onFailure(); // third consecutive failure trips it
    EXPECT_EQ(br.state(), CircuitBreaker::State::Open);

    // Cool-down counted in rejected requests: one rejection, then the
    // caller that drains the budget becomes the half-open probe.
    EXPECT_FALSE(br.allow());
    EXPECT_TRUE(br.allow()); // cool-down elapsed: probe granted
    EXPECT_EQ(br.state(), CircuitBreaker::State::HalfOpen);
    // Only one probe is in flight.
    EXPECT_FALSE(br.allow());
    br.onSuccess();
    EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
    EXPECT_EQ(br.consecutiveFailures(), 0);
    EXPECT_TRUE(br.allow());
}

TEST(CircuitBreaker, FailedProbeReopensWithFreshCooldown)
{
    BreakerOptions opt;
    opt.failureThreshold = 1;
    opt.cooldownRejections = 2;
    CircuitBreaker br("k", opt);
    br.onFailure();
    EXPECT_EQ(br.state(), CircuitBreaker::State::Open);
    EXPECT_FALSE(br.allow()); // rejection 1 of 2
    EXPECT_TRUE(br.allow());  // cool-down elapsed: this is the probe
    EXPECT_EQ(br.state(), CircuitBreaker::State::HalfOpen);
    br.onFailure(); // probe failed
    EXPECT_EQ(br.state(), CircuitBreaker::State::Open);
    // The cool-down restarted in full: a rejection comes first again.
    EXPECT_FALSE(br.allow());
    EXPECT_TRUE(br.allow());
    EXPECT_EQ(br.state(), CircuitBreaker::State::HalfOpen);
}

TEST(CircuitBreaker, SuccessResetsConsecutiveFailures)
{
    BreakerOptions opt;
    opt.failureThreshold = 3;
    CircuitBreaker br("k", opt);
    br.onFailure();
    br.onFailure();
    br.onSuccess();
    br.onFailure();
    br.onFailure();
    EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
}

TEST(CircuitBreaker, RegistryKeysByKernelName)
{
    BreakerRegistry reg;
    CircuitBreaker& a = reg.forKernel("a");
    CircuitBreaker& b = reg.forKernel("b");
    EXPECT_NE(&a, &b);
    EXPECT_EQ(&a, &reg.forKernel("a"));
    a.onFailure();
    reg.resetAll();
    EXPECT_EQ(a.consecutiveFailures(), 0);
}

// ---------------------------------------------------------------------
// Cooperative cancellation & deadlines
// ---------------------------------------------------------------------

TEST_F(RuntimeTest, CancelAbortsParallelForMidSpmm)
{
    CsrMatrix a = genUniform(512, 8.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 32, 7);
    DenseMatrix c(a.rows(), b.cols());

    CancelToken tok;
    tok.cancel();
    cancel::ScopedCancel scope(&tok);
    try {
        referenceSpmm(a, b, c);
        FAIL() << "should have thrown";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Cancelled);
    }
}

TEST_F(RuntimeTest, DeterministicDeadlineTripsAtNthPoll)
{
    ScopedNumThreads serial(1);
    CsrMatrix a = genUniform(256, 8.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 16, 3);
    DenseMatrix c(a.rows(), b.cols());

    CancelToken tok;
    tok.expireAfterChecks(3);
    cancel::ScopedCancel scope(&tok);
    try {
        referenceSpmm(a, b, c);
        FAIL() << "should have thrown";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::DeadlineExceeded);
    }
}

TEST_F(RuntimeTest, RunIsLeakFreeAfterDeadlineAbort)
{
    CsrMatrix a = genUniform(512, 8.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 32, 9);
    Runtime rt(a, cm, RuntimeOptions{});

    DenseMatrix c(a.rows(), b.cols());
    {
        CancelToken tok;
        tok.expireAfterChecks(1);
        cancel::ScopedCancel scope(&tok);
        try {
            rt.run(b, c);
            FAIL() << "should have thrown";
        } catch (const DtcError& e) {
            EXPECT_EQ(e.code(), ErrorCode::DeadlineExceeded);
        }
    }
    // The same instance serves the next request correctly: nothing
    // leaked from the aborted run.
    RunReport rep;
    rt.run(b, c, &rep);
    EXPECT_FALSE(rep.kernel.empty());
    expectCloseToReference(a, b, c);
}

TEST_F(RuntimeTest, DeadlineExpiryAtEveryPhaseIsTypedOrCorrect)
{
    // Walk the deterministic deadline through every poll point of the
    // pipeline (candidate loop, attempt loop, engine panels via
    // parallelFor, guard rows): each run must either throw the typed
    // DeadlineExceeded or complete with a correct result — never
    // hang, never return garbage silently.
    ScopedNumThreads serial(1);
    CsrMatrix a = genUniform(256, 6.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 16, 5);
    DenseMatrix want(a.rows(), b.cols());
    referenceSpmm(a, b, want);

    int threw = 0;
    int succeeded = 0;
    for (int64_t k = 1; k <= 96 && succeeded < 3; ++k) {
        RuntimeOptions opt;
        opt.deadlineChecks = k;
        opt.guard.sampleFraction = 0.1;
        Runtime rt(a, cm, std::move(opt));
        DenseMatrix c(a.rows(), b.cols());
        try {
            rt.run(b, c);
            ++succeeded;
            EXPECT_LT(maxDiff(c, want), 0.05) << "k=" << k;
        } catch (const DtcError& e) {
            ++threw;
            EXPECT_EQ(e.code(), ErrorCode::DeadlineExceeded)
                << "k=" << k;
        }
    }
    EXPECT_GT(threw, 0);
    EXPECT_GT(succeeded, 0) << "deadline never stopped tripping — "
                               "polls are not being consumed";
}

TEST_F(RuntimeTest, GarbageDeadlineEnvThrowsTyped)
{
    CsrMatrix a = genUniform(128, 4.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 8, 1);
    Runtime rt(a, cm, RuntimeOptions{});
    DenseMatrix c(a.rows(), b.cols());

    ASSERT_EQ(setenv("DTC_DEADLINE_MS", "10 ms", 1), 0);
    try {
        rt.run(b, c);
        FAIL() << "should have thrown";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidInput);
        EXPECT_NE(std::string(e.what()).find("DTC_DEADLINE_MS"),
                  std::string::npos);
    }
    ASSERT_EQ(setenv("DTC_DEADLINE_MS", "60000", 1), 0);
    EXPECT_NO_THROW(rt.run(b, c));
    ASSERT_EQ(unsetenv("DTC_DEADLINE_MS"), 0);
}

TEST_F(RuntimeTest, RunWithDeadlineConvenienceCompletes)
{
    CsrMatrix a = genUniform(256, 6.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 16, 2);
    DenseMatrix c(a.rows(), b.cols());
    RunReport rep;
    runtime::runWithDeadline(a, b, c, cm, /*deadline_ms=*/60000,
                             &rep);
    EXPECT_FALSE(rep.kernel.empty());
    EXPECT_EQ(rep.attempts, 1);
    expectCloseToReference(a, b, c);
}

// ---------------------------------------------------------------------
// Retry, reroute, breaker integration (deterministic under DTC_FAULT)
// ---------------------------------------------------------------------

TEST_F(RuntimeTest, TransientFaultRetriesSameKernelAndSucceeds)
{
    CsrMatrix a = genUniform(512, 8.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 32, 4);
    Runtime rt(a, cm, RuntimeOptions{});
    const std::string best = rt.tuning().best().name;

    fault::ScopedFault f(fault::sites::kRuntimeCompute, 1,
                         ErrorCode::ResourceExhausted);
    DenseMatrix c(a.rows(), b.cols());
    RunReport rep;
    rt.run(b, c, &rep);
    // One transient failure, one retry, same kernel won.
    EXPECT_EQ(rep.kernel, best);
    EXPECT_EQ(rep.attempts, 2);
    EXPECT_EQ(rep.retries, 1);
    ASSERT_EQ(rep.failures.size(), 1u);
    EXPECT_EQ(rep.failures[0].code, ErrorCode::ResourceExhausted);
    expectCloseToReference(a, b, c);
}

TEST_F(RuntimeTest, NonTransientFaultReroutesToNextBest)
{
    CsrMatrix a = genUniform(512, 8.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 32, 8);
    Runtime rt(a, cm, RuntimeOptions{});
    const std::string best = rt.tuning().best().name;

    fault::ScopedFault f(fault::sites::kRuntimeCompute, 1,
                         ErrorCode::Internal);
    DenseMatrix c(a.rows(), b.cols());
    RunReport rep;
    rt.run(b, c, &rep);
    EXPECT_NE(rep.kernel, best);
    EXPECT_FALSE(rep.kernel.empty());
    EXPECT_EQ(rep.attempts, 2); // no same-kernel retry for Internal
    expectCloseToReference(a, b, c);
}

TEST_F(RuntimeTest, PersistentFailureTripsBreakerThenHalfOpenHeals)
{
    // The ISSUE acceptance drill: a kernel failing persistently trips
    // its breaker within K attempts; requests keep completing on the
    // fallback; after the cool-down the breaker half-opens and the
    // healed kernel wins again.  DTC_FAULT fires once per arming, so
    // "persistent" = re-arm before every request.
    CsrMatrix a = genUniform(512, 8.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 32, 6);
    RuntimeOptions opt;
    opt.breaker.failureThreshold = 3; // K
    opt.breaker.cooldownRejections = 2;
    Runtime rt(a, cm, std::move(opt));
    const std::string best = rt.tuning().best().name;
    CircuitBreaker& br = rt.breakers().forKernel(best);

    // K failing requests: each fails the best kernel once (Internal,
    // so no same-kernel retry) and completes on the fallback.
    for (int i = 0; i < 3; ++i) {
        fault::ScopedFault f(fault::sites::kRuntimeCompute, 1,
                             ErrorCode::Internal);
        DenseMatrix c(a.rows(), b.cols());
        RunReport rep;
        rt.run(b, c, &rep);
        EXPECT_NE(rep.kernel, best) << "request " << i;
        expectCloseToReference(a, b, c);
    }
    EXPECT_EQ(br.state(), CircuitBreaker::State::Open);

    // While open, healthy requests are served by the fallback without
    // touching the quarantined kernel; each counts toward cool-down.
    {
        DenseMatrix c(a.rows(), b.cols());
        RunReport rep;
        rt.run(b, c, &rep);
        EXPECT_NE(rep.kernel, best);
        expectCloseToReference(a, b, c);
    }
    {
        // Second rejection elapses the cool-down: this request's
        // allow() half-opens and the probe (now healthy) succeeds.
        DenseMatrix c(a.rows(), b.cols());
        RunReport rep;
        rt.run(b, c, &rep);
        EXPECT_EQ(rep.kernel, best);
        expectCloseToReference(a, b, c);
    }
    EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
}

TEST_F(RuntimeTest, BreakerMetricsAreTallied)
{
    obs::metrics::reset();
    BreakerOptions opt;
    opt.failureThreshold = 1;
    opt.cooldownRejections = 1;
    CircuitBreaker br("kernel-x", opt);
    br.onFailure();            // opened
    (void)br.allow();          // rejection -> half_open
    br.onFailure();            // reopened
    (void)br.allow();          // rejection -> half_open
    br.onSuccess();            // closed
    EXPECT_EQ(obs::metrics::counterValue("runtime.breaker.opened"),
              1u);
    EXPECT_EQ(obs::metrics::counterValue("runtime.breaker.reopened"),
              1u);
    EXPECT_EQ(
        obs::metrics::counterValue("runtime.breaker.half_open"), 2u);
    EXPECT_EQ(obs::metrics::counterValue("runtime.breaker.closed"),
              1u);
    EXPECT_EQ(
        obs::metrics::counterValue("runtime.failures.kernel-x"), 2u);
}

// ---------------------------------------------------------------------
// Online result guard
// ---------------------------------------------------------------------

TEST_F(RuntimeTest, GuardAcceptsCorrectResults)
{
    CsrMatrix a = genUniform(512, 8.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 32, 11);
    DenseMatrix c(a.rows(), b.cols());
    referenceSpmmTf32(a, b, c);
    runtime::guard::GuardOptions opt;
    opt.sampleFraction = 1.0; // every row
    const runtime::guard::GuardResult g =
        runtime::guard::checkSampledRows(a, b, c, Precision::Tf32,
                                         opt);
    EXPECT_EQ(g.rowsChecked, a.rows());
    EXPECT_TRUE(g.ok()) << g.detail;
}

TEST_F(RuntimeTest, GuardFlagsSilentCorruption)
{
    CsrMatrix a = genUniform(512, 8.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 32, 12);
    DenseMatrix c(a.rows(), b.cols());
    referenceSpmm(a, b, c);
    c.at(100, 3) += 10.0f; // silent bit corruption
    runtime::guard::GuardOptions opt;
    opt.sampleFraction = 1.0;
    const runtime::guard::GuardResult g =
        runtime::guard::checkSampledRows(a, b, c, Precision::Fp32,
                                         opt);
    EXPECT_FALSE(g.ok());
    EXPECT_EQ(g.firstBadRow, 100);
    EXPECT_NE(g.detail.find("guard mismatch"), std::string::npos);
}

TEST_F(RuntimeTest, GuardSamplingIsDeterministic)
{
    CsrMatrix a = genUniform(1024, 6.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 16, 13);
    DenseMatrix c(a.rows(), b.cols());
    referenceSpmm(a, b, c);
    runtime::guard::GuardOptions opt;
    opt.sampleFraction = 0.01;
    const auto g1 = runtime::guard::checkSampledRows(
        a, b, c, Precision::Fp32, opt);
    const auto g2 = runtime::guard::checkSampledRows(
        a, b, c, Precision::Fp32, opt);
    EXPECT_EQ(g1.rowsChecked, g2.rowsChecked);
    EXPECT_GE(g1.rowsChecked, 1);
    EXPECT_LE(g1.rowsChecked, 16); // ~1% of 1024
}

TEST_F(RuntimeTest, GuardMismatchTriggersReexecutionOnFallback)
{
    obs::metrics::reset();
    CsrMatrix a = genUniform(512, 8.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 32, 14);

    RuntimeOptions opt;
    opt.guard.sampleFraction = 1.0;
    Runtime rt(a, cm, RuntimeOptions{});
    const std::string best = rt.tuning().best().name;
    opt.postComputeHook = [&](const std::string& kernel,
                              DenseMatrix& c) {
        if (kernel == best)
            c.at(0, 0) += 100.0f; // only the best kernel corrupts
    };
    Runtime rt2(a, cm, std::move(opt));

    DenseMatrix c(a.rows(), b.cols());
    RunReport rep;
    rt2.run(b, c, &rep);
    EXPECT_NE(rep.kernel, best);
    EXPECT_EQ(rep.reexecs, 1);
    ASSERT_FALSE(rep.failures.empty());
    EXPECT_TRUE(rep.failures[0].guardMismatch);
    EXPECT_EQ(rep.failures[0].code, ErrorCode::CorruptData);
    expectCloseToReference(a, b, c);
    EXPECT_GE(
        obs::metrics::counterValue("runtime.guard.mismatches"), 1u);
    EXPECT_GE(obs::metrics::counterValue("runtime.guard.reexecs"),
              1u);
    EXPECT_GE(obs::metrics::counterValue("runtime.guard.checks"), 2u);
}

TEST_F(RuntimeTest, GuardDisabledProbeIsOneAtomicLoad)
{
    // Functional half of the BM_RuntimeGuardOverhead acceptance: with
    // the guard disabled no rows are checked and no counters move.
    obs::metrics::reset();
    runtime::guard::setSampleFraction(0.0);
    CsrMatrix a = genUniform(256, 6.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 16, 15);
    Runtime rt(a, cm, RuntimeOptions{});
    DenseMatrix c(a.rows(), b.cols());
    RunReport rep;
    rt.run(b, c, &rep);
    EXPECT_EQ(rep.guardRowsChecked, 0);
    EXPECT_EQ(obs::metrics::counterValue("runtime.guard.checks"), 0u);
    EXPECT_FALSE(runtime::guard::enabled());
}

TEST_F(RuntimeTest, TunedStateReuseSkipsReTuning)
{
    // The serving layer's amortization contract: tune() once, then
    // any number of Runtime constructions from the shared ranking
    // without the tuner (or its cost-model walk) running again.
    obs::metrics::reset();
    CsrMatrix a = genUniform(256, 6.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 8, 77);

    const auto tuned =
        Runtime::tune(a, RuntimeOptions{}.tune, cm);
    EXPECT_EQ(obs::metrics::counterValue("tuner.tunes"), 1u);
    const uint64_t evaluated = obs::metrics::counterValue(
        "tuner.candidates_evaluated");

    Runtime rt1(a, tuned, RuntimeOptions{});
    Runtime rt2(a, tuned, RuntimeOptions{});
    DenseMatrix c1(a.rows(), b.cols());
    DenseMatrix c2(a.rows(), b.cols());
    rt1.run(b, c1);
    rt2.run(b, c2);

    EXPECT_EQ(obs::metrics::counterValue("tuner.tunes"), 1u);
    EXPECT_EQ(
        obs::metrics::counterValue("tuner.candidates_evaluated"),
        evaluated);
    EXPECT_TRUE(c1 == c2);
    EXPECT_EQ(rt1.tunedState().get(), tuned.get());
    expectCloseToReference(a, b, c1);

    // A null tuned state is a caller bug, reported typed.
    EXPECT_THROW(Runtime(a, nullptr, RuntimeOptions{}), DtcError);
}

TEST_F(RuntimeTest, GuardSampleEnvKnobIsValidated)
{
    ASSERT_EQ(setenv("DTC_GUARD_SAMPLE", "0.5", 1), 0);
    runtime::guard::setSampleFraction(-1.0); // re-resolve from env
    EXPECT_TRUE(runtime::guard::enabled());
    EXPECT_EQ(runtime::guard::sampleFraction(), 0.5);

    ASSERT_EQ(setenv("DTC_GUARD_SAMPLE", "lots", 1), 0);
    runtime::guard::setSampleFraction(-1.0);
    EXPECT_THROW(runtime::guard::sampleFraction(), DtcError);
    ASSERT_EQ(unsetenv("DTC_GUARD_SAMPLE"), 0);
    runtime::guard::setSampleFraction(-1.0);
    EXPECT_EQ(runtime::guard::sampleFraction(), 0.01); // default
}

} // namespace
} // namespace dtc
