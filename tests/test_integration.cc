/**
 * @file
 * Integration tests: the full DTC-SpMM pipeline (reorder -> convert
 * -> select -> compute) end to end, cross-module consistency, and
 * Table-1-scale smoke checks.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/generators.h"
#include "datasets/table1.h"
#include "formats/me_tcf.h"
#include "kernels/dtc.h"
#include "kernels/reference.h"
#include "reorder/tca.h"
#include "selector/selector.h"

namespace dtc {
namespace {

TEST(Integration, FullPipelineMatchesReference)
{
    // The complete DTC-SpMM flow of Fig. 4: TCA reorder, ME-TCF
    // conversion, Selector decision, runtime kernel — then verify the
    // product against the reference on the reordered matrix.
    Rng rng(1);
    CsrMatrix a = shuffleLabels(
        genCommunity(1024, 16, 24.0, 0.9, rng), rng);

    auto perm = tcaReorder(a).permutation;
    CsrMatrix reordered = a.permuteRows(perm);

    DtcKernel kernel;
    ASSERT_EQ(kernel.prepare(reordered), "");
    SelectorDecision d = kernel.decide(ArchSpec::rtx4090());
    EXPECT_GT(d.approximationRatio, 0.0);

    DenseMatrix b(reordered.cols(), 64);
    b.fillRandom(rng);
    DenseMatrix c(reordered.rows(), 64);
    kernel.compute(b, c);

    DenseMatrix want(reordered.rows(), 64);
    referenceSpmmTf32(reordered, b, want);
    EXPECT_TRUE(c == want);

    // Row permutation only permutes C rows: verify against the
    // original matrix through the permutation.
    DenseMatrix orig_want(a.rows(), 64);
    referenceSpmmTf32(a, b, orig_want);
    for (int64_t r = 0; r < a.rows(); ++r)
        for (int64_t j = 0; j < 64; ++j)
            EXPECT_FLOAT_EQ(c.at(r, j), orig_want.at(perm[r], j));
}

TEST(Integration, ReorderingImprovesCondensationOnTable1Analog)
{
    CsrMatrix a = table1ByAbbr("DD").make();
    const double before = MeTcfMatrix::build(a).meanNnzTc();
    auto perm = tcaReorder(a).permutation;
    const double after =
        MeTcfMatrix::build(a.permuteRows(perm)).meanNnzTc();
    EXPECT_GT(after, before);
}

TEST(Integration, SelectorDecisionsDifferAcrossTable1Types)
{
    // Type II matrices with few, huge windows want strict balance;
    // fine-grained Type I matrices do not.
    CsrMatrix yh = table1ByAbbr("YH").make();
    CsrMatrix ddi = table1ByAbbr("ddi").make();
    ArchSpec arch = ArchSpec::rtx4090();
    SelectorDecision d_yh =
        selectKernel(MeTcfMatrix::build(yh), arch);
    SelectorDecision d_ddi =
        selectKernel(MeTcfMatrix::build(ddi), arch);
    EXPECT_FALSE(d_yh.useBalanced);
    EXPECT_TRUE(d_ddi.useBalanced);
}

TEST(Integration, CostModelConsistentWithFunctionalNnz)
{
    Rng rng(2);
    CsrMatrix a = genUniform(512, 12.0, rng);
    DtcKernel kernel;
    ASSERT_EQ(kernel.prepare(a), "");
    CostModel cm(ArchSpec::rtx4090());
    LaunchResult r = kernel.cost(128, cm);
    EXPECT_DOUBLE_EQ(r.flops, 2.0 * static_cast<double>(a.nnz()) *
                                  128.0);
    // HMMA work covers at least the useful MACs.
    EXPECT_GE(r.totalHmma * ArchSpec::kMacsPerHmma,
              static_cast<double>(a.nnz()) * 128.0);
}

TEST(Integration, PermutationInvariantResultNorm)
{
    // Symmetric relabeling must not change the multiset of C values
    // when B rows are permuted consistently.
    Rng rng(3);
    CsrMatrix a = genCommunity(256, 4, 12.0, 0.9, rng);
    auto perm = randomPermutation(a.rows(), rng);
    CsrMatrix pa = a.permuteSymmetric(perm);

    DenseMatrix b(a.cols(), 8);
    b.fillRandom(rng);
    DenseMatrix pb(a.cols(), 8);
    for (int64_t r = 0; r < a.rows(); ++r)
        for (int64_t j = 0; j < 8; ++j)
            pb.at(r, j) = b.at(perm[r], j);

    DtcKernel k1, k2;
    ASSERT_EQ(k1.prepare(a), "");
    ASSERT_EQ(k2.prepare(pa), "");
    DenseMatrix c(a.rows(), 8), pc(a.rows(), 8);
    k1.compute(b, c);
    k2.compute(pb, pc);
    for (int64_t r = 0; r < a.rows(); ++r)
        for (int64_t j = 0; j < 8; ++j)
            EXPECT_NEAR(pc.at(r, j), c.at(perm[r], j), 1e-4)
                << r << "," << j;
}

TEST(Integration, Table1AnalogSmoke)
{
    // Build the smallest Type I and Type II analogs, run the whole
    // kernel set's prepare + cost; everything must either work or
    // refuse with the documented reasons.
    CostModel cm(ArchSpec::rtx4090());
    for (const char* abbr : {"DD", "ddi"}) {
        CsrMatrix a = table1ByAbbr(abbr).make();
        for (KernelKind kind :
             {KernelKind::CuSparse, KernelKind::Tcgnn,
              KernelKind::Dtc, KernelKind::Sputnik,
              KernelKind::SparseTir}) {
            auto kernel = makeKernel(kind);
            ASSERT_EQ(kernel->prepare(a), "") << abbr;
            LaunchResult r = kernel->cost(128, cm);
            EXPECT_GT(r.timeMs, 0.0)
                << abbr << " " << kernel->name();
            EXPECT_GT(r.gflops(), 0.0);
        }
    }
}

} // namespace
} // namespace dtc
