/**
 * @file
 * Functional correctness of every SpMM kernel: agreement with the
 * double-precision reference within TF32/FP32 tolerance, bit-level
 * agreement of TC kernels with the TF32 reference, baseline refusal
 * behaviours (OOM / Not Supported), parameterized sweeps across
 * matrix classes and dense widths.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "datasets/generators.h"
#include "kernels/dtc.h"
#include "kernels/kernel.h"
#include "kernels/reference.h"
#include "kernels/sparta_like.h"

namespace dtc {
namespace {

/** Relative-error comparison helper. */
void
expectClose(const DenseMatrix& got, const DenseMatrix& want,
            double rel_tol)
{
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    const double scale = std::max(1.0, want.frobeniusNorm() /
                                           std::sqrt(static_cast<double>(
                                               want.size())));
    EXPECT_LE(got.maxAbsDiff(want), rel_tol * scale * 50.0);
}

CsrMatrix
testMatrix(int which, Rng& rng)
{
    switch (which % 5) {
      case 0:
        return genUniform(300, 8.0, rng);
      case 1:
        return genPowerLaw(257, 6.0, 1.3, rng);
      case 2:
        return genCommunity(320, 4, 20.0, 0.85, rng);
      case 3:
        return genBanded(300, 12, 5.0, rng);
      default:
        return genComponents(310, 6, 20, 0.2, rng);
    }
}

/**
 * Parameterized over the registry's own enumeration: a kernel added
 * to allKernelTraits() is swept here with zero test edits.
 */
class KernelCorrectness
    : public ::testing::TestWithParam<KernelTraits>
{};

TEST_P(KernelCorrectness, MatchesReferenceAcrossMatrixClasses)
{
    const KernelTraits& kt = GetParam();
    Rng rng(123);
    for (int which = 0; which < 5; ++which) {
        CsrMatrix a = testMatrix(which, rng);
        auto kernel = makeKernel(kt.kind);
        const std::string err = kernel->prepare(a);
        ASSERT_EQ(err, "") << kernel->name();

        DenseMatrix b(a.cols(), 32);
        b.fillRandom(rng);
        DenseMatrix c(a.rows(), 32);
        kernel->compute(b, c);

        DenseMatrix want(a.rows(), 32);
        referenceSpmm(a, b, want);
        expectClose(c, want,
                    kt.nativePrecision == Precision::Fp32 ? 1e-6
                                                          : 1e-3);
    }
}

TEST_P(KernelCorrectness, BitMatchesRoundedReference)
{
    const KernelTraits& kt = GetParam();
    if (!kt.bitExactRounded)
        GTEST_SKIP() << "kernel mixes precisions (tolerance-only)";
    Rng rng(7);
    CsrMatrix a = genUniform(200, 10.0, rng);
    auto kernel = makeKernel(kt.kind);
    ASSERT_EQ(kernel->prepare(a), "");

    DenseMatrix b(a.cols(), 16);
    b.fillRandom(rng);
    DenseMatrix c(a.rows(), 16);
    kernel->compute(b, c);

    DenseMatrix want(a.rows(), 16);
    referenceSpmmRounded(a, b, want, kt.nativePrecision);
    EXPECT_TRUE(c == want) << kernel->name()
                           << " maxdiff=" << c.maxAbsDiff(want);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelCorrectness,
    ::testing::ValuesIn(allKernelTraits()),
    [](const ::testing::TestParamInfo<KernelTraits>& info) {
        std::string n = kernelKindName(info.param.kind);
        for (char& ch : n)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n;
    });

class DenseWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(DenseWidthSweep, DtcCorrectAtWidth)
{
    const int n = GetParam();
    Rng rng(31);
    CsrMatrix a = genCommunity(256, 4, 16.0, 0.8, rng);
    DtcKernel kernel;
    ASSERT_EQ(kernel.prepare(a), "");
    DenseMatrix b(a.cols(), n);
    b.fillRandom(rng);
    DenseMatrix c(a.rows(), n), want(a.rows(), n);
    kernel.compute(b, c);
    referenceSpmmTf32(a, b, want);
    EXPECT_TRUE(c == want);
}

INSTANTIATE_TEST_SUITE_P(Widths, DenseWidthSweep,
                         ::testing::Values(1, 8, 16, 32, 128, 256));

TEST(Kernels, DtcAblationVariantsAllCorrect)
{
    // All 16 on/off combinations of {smb, ip, sdb, vfd} compute the
    // same (bit-exact) result: the flags change the instruction
    // stream, never the math.
    Rng rng(77);
    CsrMatrix a = genUniform(200, 8.0, rng);
    DenseMatrix b(a.cols(), 16);
    b.fillRandom(rng);
    DenseMatrix want(a.rows(), 16);
    referenceSpmmTf32(a, b, want);
    for (int mask = 0; mask < 16; ++mask) {
        DtcOptions o;
        o.smb = mask & 1;
        o.ip = mask & 2;
        o.sdb = mask & 4;
        o.vfd = mask & 8;
        DtcKernel kernel(o);
        ASSERT_EQ(kernel.prepare(a), "");
        DenseMatrix c(a.rows(), 16);
        kernel.compute(b, c);
        EXPECT_TRUE(c == want) << "mask=" << mask;
    }
}

TEST(Kernels, SpartaMatchesReferenceLoosely)
{
    // SparTA mixes TF32 (structured) and FP32 (remainder) numerics.
    Rng rng(9);
    CsrMatrix a = genUniform(400, 12.0, rng);
    SpartaKernel kernel;
    ASSERT_EQ(kernel.prepare(a), "");
    DenseMatrix b(a.cols(), 24);
    b.fillRandom(rng);
    DenseMatrix c(a.rows(), 24), want(a.rows(), 24);
    kernel.compute(b, c);
    referenceSpmm(a, b, want);
    expectClose(c, want, 1e-3);
}

TEST(Kernels, SpartaSplitsNnzConsistently)
{
    Rng rng(10);
    CsrMatrix a = genUniform(500, 20.0, rng);
    SpartaKernel kernel;
    ASSERT_EQ(kernel.prepare(a), "");
    EXPECT_EQ(kernel.structuredNnz() + kernel.remainderNnz(),
              a.nnz());
    EXPECT_GT(kernel.structuredNnz(), 0);
}

TEST(Kernels, SpartaRefusesLargeMatrices)
{
    Rng rng(11);
    CsrMatrix a = genUniform(SpartaKernel::kDimLimit + 100, 2.0, rng);
    SpartaKernel kernel;
    const std::string err = kernel.prepare(a);
    EXPECT_NE(err.find("Not Supported"), std::string::npos);
    EXPECT_FALSE(kernel.prepared());
}

TEST(Kernels, FlashLlmRefusesHugeDenseStaging)
{
    // 200k^2 dense floats = 160 GB > the modeled host budget.
    CsrMatrix a(200000, 200000);
    auto kernel = makeKernel(KernelKind::FlashLlmV1);
    const std::string err = kernel->prepare(a);
    EXPECT_NE(err.find("OOM"), std::string::npos);
}

TEST(Kernels, BlockSpmmRefusesPaddingBlowup)
{
    Rng rng(12);
    CsrMatrix a = genPowerLaw(120000, 12.0, 1.5, rng);
    auto kernel = makeKernel(KernelKind::BlockSpmm64);
    const std::string err = kernel->prepare(a);
    EXPECT_NE(err.find("OOM"), std::string::npos) << err;
}

TEST(Kernels, TcgnnRefusesNonSquare)
{
    CsrMatrix a(100, 50);
    auto kernel = makeKernel(KernelKind::Tcgnn);
    EXPECT_NE(kernel->prepare(a), "");
}

TEST(Kernels, NamesMatchRegistry)
{
    // The traits table is the single source of truth: every kind it
    // lists must construct, carry the registry name, and appear in
    // allKernelNames() exactly once.
    const std::vector<std::string> names = allKernelNames();
    const std::vector<KernelKind> kinds = allKernelKinds();
    ASSERT_EQ(names.size(), kinds.size());
    for (size_t i = 0; i < kinds.size(); ++i) {
        auto kernel = makeKernel(kinds[i]);
        ASSERT_NE(kernel, nullptr);
        EXPECT_EQ(kernel->name(), kernelKindName(kinds[i]));
        EXPECT_EQ(kernel->name(), names[i]);
    }
    std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
}

TEST(Kernels, MakeKernelAtHonorsTraits)
{
    for (const KernelTraits& kt : allKernelTraits())
        for (Precision p : {Precision::Fp32, Precision::Tf32,
                            Precision::Bf16, Precision::Fp16}) {
            auto kernel = makeKernelAt(kt.kind, p);
            if (kernelSupportsPrecision(kt.kind, p))
                EXPECT_NE(kernel, nullptr)
                    << kernelKindName(kt.kind) << " @ "
                    << precisionName(p);
            else
                EXPECT_EQ(kernel, nullptr)
                    << kernelKindName(kt.kind) << " @ "
                    << precisionName(p);
        }
}

TEST(Kernels, ReferenceTf32CloseToDouble)
{
    Rng rng(13);
    CsrMatrix a = genUniform(300, 10.0, rng);
    DenseMatrix b(a.cols(), 16);
    b.fillRandom(rng);
    DenseMatrix d(a.rows(), 16), t(a.rows(), 16);
    referenceSpmm(a, b, d);
    referenceSpmmTf32(a, b, t);
    // TF32 keeps ~3 decimal digits.
    expectClose(t, d, 1e-3);
    EXPECT_FALSE(t == d); // but is genuinely lower precision
}

} // namespace
} // namespace dtc
