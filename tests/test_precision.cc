/**
 * @file
 * Unit tests for the multi-precision extension (the conclusion's
 * "other precisions" future work): BF16/FP16 rounding semantics,
 * precision-parameterized DTC kernels, error bounds ordered by
 * mantissa width, and the FP16/BF16 rate advantage in the cost
 * model.
 */
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "common/precision.h"
#include "common/rng.h"
#include "datasets/generators.h"
#include "kernels/dtc.h"
#include "kernels/reference.h"

namespace dtc {
namespace {

TEST(Precision, Bf16DropsSixteenBits)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        float x = rng.nextFloat(-100.0f, 100.0f);
        uint32_t bits = std::bit_cast<uint32_t>(bf16Round(x));
        EXPECT_EQ(bits & 0xFFFFu, 0u);
    }
}

TEST(Precision, Bf16KeepsFp32Range)
{
    // Unlike FP16, huge magnitudes survive (same 8-bit exponent).
    EXPECT_TRUE(std::isfinite(bf16Round(1e38f)));
    EXPECT_NEAR(bf16Round(1e38f) / 1e38f, 1.0, 0.01);
    EXPECT_TRUE(std::isfinite(bf16Round(1e-38f)));
}

TEST(Precision, Fp16SaturatesAndFlushes)
{
    EXPECT_TRUE(std::isinf(fp16Round(70000.0f)));
    EXPECT_TRUE(std::isinf(fp16Round(-70000.0f)));
    EXPECT_FLOAT_EQ(fp16Round(65504.0f), 65504.0f);
    // Subnormal range flushes to (signed) zero.
    EXPECT_EQ(fp16Round(1e-6f), 0.0f);
    EXPECT_EQ(std::signbit(fp16Round(-1e-6f)), true);
}

TEST(Precision, RoundToPrecisionDispatch)
{
    const float x = 1.2345678f;
    EXPECT_EQ(roundToPrecision(x, Precision::Fp32), x);
    EXPECT_EQ(roundToPrecision(x, Precision::Tf32), tf32Round(x));
    EXPECT_EQ(roundToPrecision(x, Precision::Bf16), bf16Round(x));
    EXPECT_EQ(roundToPrecision(x, Precision::Fp16), fp16Round(x));
}

TEST(Precision, UnitRoundoffOrdering)
{
    EXPECT_LT(unitRoundoff(Precision::Tf32),
              unitRoundoff(Precision::Bf16));
    EXPECT_DOUBLE_EQ(unitRoundoff(Precision::Tf32),
                     unitRoundoff(Precision::Fp16));
    EXPECT_DOUBLE_EQ(unitRoundoff(Precision::Fp32), 0.0);
}

TEST(Precision, RelativeErrorWithinUnitRoundoff)
{
    Rng rng(2);
    for (Precision p : {Precision::Tf32, Precision::Bf16}) {
        for (int i = 0; i < 2000; ++i) {
            float x = rng.nextFloat(-1e4f, 1e4f);
            if (x == 0.0f)
                continue;
            float r = roundToPrecision(x, p);
            EXPECT_LE(std::abs(r - x) / std::abs(x),
                      unitRoundoff(p) + 1e-12)
                << precisionName(p);
        }
    }
}

int64_t
computeMaxRow(const CsrMatrix& a)
{
    int64_t mx = 0;
    for (int64_t r = 0; r < a.rows(); ++r)
        mx = std::max(mx, a.rowLength(r));
    return mx;
}

class DtcPrecision : public ::testing::TestWithParam<Precision>
{};

TEST_P(DtcPrecision, KernelMatchesPrecisionReference)
{
    const Precision prec = GetParam();
    Rng rng(3);
    CsrMatrix a = genUniform(256, 8.0, rng);
    DenseMatrix b(a.cols(), 16);
    b.fillRandom(rng);

    DtcOptions o;
    o.precision = prec;
    DtcKernel kernel(o);
    ASSERT_EQ(kernel.prepare(a), "");
    DenseMatrix c(a.rows(), 16);
    kernel.compute(b, c);

    // Error vs the double-precision reference must stay within a
    // few unit roundoffs times the accumulation length.
    DenseMatrix want(a.rows(), 16);
    referenceSpmm(a, b, want);
    const double bound =
        unitRoundoff(prec) * 3.0 *
        (static_cast<double>(computeMaxRow(a)) + 4.0) * 16.0;
    EXPECT_LE(c.maxAbsDiff(want), bound) << precisionName(prec);
}

TEST_P(DtcPrecision, NameCarriesPrecision)
{
    const Precision prec = GetParam();
    DtcOptions o;
    o.precision = prec;
    DtcKernel kernel(o);
    if (prec == Precision::Tf32) {
        EXPECT_EQ(kernel.name().find("<"), std::string::npos);
    } else {
        EXPECT_NE(kernel.name().find(precisionName(prec)),
                  std::string::npos);
    }
}

INSTANTIATE_TEST_SUITE_P(Precisions, DtcPrecision,
                         ::testing::Values(Precision::Tf32,
                                           Precision::Bf16,
                                           Precision::Fp16),
                         [](const auto& info) {
                             return precisionName(info.param);
                         });

TEST(Precision, Fp16HalvesTensorCoreTime)
{
    Rng rng(4);
    CsrMatrix a = genCommunity(2048, 8, 60.0, 0.85, rng);
    CostModel cm(ArchSpec::rtx4090());

    DtcOptions tf32;
    tf32.mode = DtcOptions::Mode::Base;
    DtcKernel k32(tf32);
    ASSERT_EQ(k32.prepare(a), "");

    DtcOptions fp16 = tf32;
    fp16.precision = Precision::Fp16;
    DtcKernel k16(fp16);
    ASSERT_EQ(k16.prepare(a), "");

    LaunchResult r32 = k32.cost(128, cm);
    LaunchResult r16 = k16.cost(128, cm);
    // Half the HMMA residency; total time improves but less than 2x
    // (memory does not shrink).
    EXPECT_NEAR(r16.totalHmma, r32.totalHmma / 2.0, 1e-6);
    EXPECT_LT(r16.timeMs, r32.timeMs);
    EXPECT_GT(r16.timeMs, r32.timeMs / 2.0);
}

TEST(Precision, Fp32RejectedByTensorKernel)
{
    DtcOptions o;
    o.precision = Precision::Fp32;
    DtcKernel kernel(o);
    CsrMatrix a(16, 16);
    EXPECT_NE(kernel.prepare(a), "");
}

} // namespace
} // namespace dtc
