/**
 * @file
 * Unit tests for the synthetic dataset generators, Table-1 analogs,
 * and the SuiteSparse-like collection.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/collection.h"
#include "datasets/generators.h"
#include "datasets/table1.h"
#include "matrix/stats.h"
#include "reorder/orderings.h"

namespace dtc {
namespace {

TEST(Generators, UniformHitsTargetDegree)
{
    Rng rng(1);
    CsrMatrix m = genUniform(4000, 12.0, rng);
    EXPECT_NO_THROW(m.validate());
    MatrixStats s = computeStats(m);
    EXPECT_NEAR(s.avgRowLength, 12.0, 1.5);
}

TEST(Generators, UniformIsSymmetric)
{
    Rng rng(2);
    CsrMatrix m = genUniform(500, 6.0, rng);
    CsrMatrix t = m.transposed();
    EXPECT_EQ(m.rowPtr(), t.rowPtr());
    EXPECT_EQ(m.colIdx(), t.colIdx());
}

TEST(Generators, PowerLawSkewsDegrees)
{
    Rng rng(3);
    CsrMatrix m = genPowerLaw(4000, 10.0, 1.3, rng);
    MatrixStats s = computeStats(m);
    EXPECT_NEAR(s.avgRowLength, 10.0, 3.0);
    EXPECT_GT(s.maxRowLength, 30 * 10); // hubs exist
}

TEST(Generators, RmatProducesTargetishNnz)
{
    Rng rng(4);
    CsrMatrix m = genRmat(2048, 2048 * 8, 0.57, 0.19, 0.19, rng);
    EXPECT_NO_THROW(m.validate());
    // Symmetrization + dedup move the count; demand the right order.
    EXPECT_GT(m.nnz(), 2048 * 4);
    EXPECT_LT(m.nnz(), 2048 * 12);
}

TEST(Generators, BandedStaysInBand)
{
    Rng rng(5);
    const int64_t band = 8;
    CsrMatrix m = genBanded(1000, band, 4.0, rng);
    for (int64_t r = 0; r < m.rows(); ++r) {
        for (int64_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1]; ++k)
            EXPECT_LE(std::abs(m.colIdx()[k] - r), band);
    }
}

TEST(Generators, BlockDiagonalStaysInBlocks)
{
    Rng rng(6);
    const int64_t block = 32;
    CsrMatrix m = genBlockDiagonal(256, block, 0.3, rng);
    for (int64_t r = 0; r < m.rows(); ++r) {
        for (int64_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1]; ++k)
            EXPECT_EQ(m.colIdx()[k] / block, r / block);
    }
}

TEST(Generators, CommunityMostlyIntra)
{
    Rng rng(7);
    const int64_t n = 2048, n_comm = 8;
    CsrMatrix m = genCommunity(n, n_comm, 20.0, 0.9, rng);
    const int64_t comm_size = n / n_comm;
    int64_t intra = 0;
    for (int64_t r = 0; r < n; ++r) {
        for (int64_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1]; ++k)
            if (m.colIdx()[k] / comm_size == r / comm_size)
                intra++;
    }
    EXPECT_GT(static_cast<double>(intra) /
                  static_cast<double>(m.nnz()),
              0.8);
}

TEST(Generators, ComponentsHaveSmallRows)
{
    Rng rng(8);
    CsrMatrix m = genComponents(20000, 8, 28, 0.10, rng);
    MatrixStats s = computeStats(m);
    EXPECT_GT(s.avgRowLength, 1.5);
    EXPECT_LT(s.avgRowLength, 3.0);
    EXPECT_EQ(s.emptyRows, 0);
}

TEST(Generators, ShuffleLabelsPreservesNnz)
{
    Rng rng(9);
    CsrMatrix m = genCommunity(512, 8, 10.0, 0.9, rng);
    CsrMatrix s = shuffleLabels(m, rng);
    EXPECT_EQ(s.nnz(), m.nnz());
    EXPECT_NO_THROW(s.validate());
}

TEST(Generators, DeterministicAcrossRuns)
{
    Rng a(42), b(42);
    CsrMatrix m1 = genPowerLaw(1000, 8.0, 1.2, a);
    CsrMatrix m2 = genPowerLaw(1000, 8.0, 1.2, b);
    EXPECT_TRUE(m1 == m2);
}

TEST(Table1, HasEightEntriesInPaperOrder)
{
    const auto& entries = table1Entries();
    ASSERT_EQ(entries.size(), 8u);
    EXPECT_EQ(entries[0].abbr, "YH");
    EXPECT_EQ(entries[5].abbr, "reddit");
    EXPECT_EQ(entries[7].abbr, "protein");
}

TEST(Table1, TypeClassificationMatchesPaper)
{
    for (const auto& e : table1Entries()) {
        if (e.paperAvgRowL < 100) {
            EXPECT_EQ(e.type, MatrixType::TypeI) << e.abbr;
        } else {
            EXPECT_EQ(e.type, MatrixType::TypeII) << e.abbr;
        }
    }
}

TEST(Table1, AnalogsPreserveRowLengthRegime)
{
    for (const auto& e : table1Entries()) {
        CsrMatrix m = e.make();
        MatrixStats s = computeStats(m);
        if (e.type == MatrixType::TypeI) {
            EXPECT_LT(s.avgRowLength, 30.0) << e.abbr;
            // Within 2.5x of the paper's AvgRowL.
            EXPECT_NEAR(s.avgRowLength / e.paperAvgRowL, 1.0, 1.5)
                << e.abbr;
        } else {
            EXPECT_GT(s.avgRowLength, 150.0) << e.abbr;
        }
    }
}

TEST(Table1, DdiKeepsExactPaperDimensions)
{
    const auto& e = table1ByAbbr("ddi");
    CsrMatrix m = e.make();
    EXPECT_EQ(m.rows(), 4267); // must stay under SparTA's scaled limit
}

TEST(Table1, LookupUnknownThrows)
{
    EXPECT_THROW(table1ByAbbr("nope"), std::invalid_argument);
}

TEST(Table1, GnnCaseStudyHasFourGraphs)
{
    const auto& entries = gnnCaseStudyEntries();
    ASSERT_EQ(entries.size(), 4u);
    EXPECT_EQ(entries[2].abbr, "IGB-tiny");
    CsrMatrix igb = entries[2].make();
    EXPECT_NO_THROW(igb.validate());
    EXPECT_GT(igb.nnz(), 100000);
}

TEST(Collection, DefaultHas414Entries)
{
    auto entries = makeCollection();
    EXPECT_EQ(entries.size(), 414u);
}

TEST(Collection, CoversAllStructureClasses)
{
    auto entries = makeCollection(12);
    bool seen[6] = {};
    for (const auto& e : entries)
        seen[static_cast<int>(e.klass)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Collection, EntriesBuildValidSquareMatrices)
{
    auto entries = makeCollection(12);
    for (const auto& e : entries) {
        CsrMatrix m = e.make();
        EXPECT_NO_THROW(m.validate()) << e.name;
        EXPECT_EQ(m.rows(), m.cols()) << e.name;
        EXPECT_GT(m.nnz(), 10000) << e.name;
    }
}

TEST(Collection, DeterministicBySeed)
{
    auto a = makeCollection(5);
    auto b = makeCollection(5);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_TRUE(a[i].make() == b[i].make());
    }
}

TEST(Collection, RandomPermutationIsPermutation)
{
    Rng rng(10);
    auto perm = randomPermutation(1000, rng);
    EXPECT_TRUE(isPermutation(perm, 1000));
}

} // namespace
} // namespace dtc
