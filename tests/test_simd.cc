/**
 * @file
 * SIMD backend suite (src/engine/simd/).
 *
 * Three contracts:
 *   1. Bitwise identity — every backend (scalar, and each ISA the
 *      host supports) produces output identical to Isa::Off (the
 *      dispatcher bypass, i.e. the pre-SIMD engine loops) for every
 *      engine-routed kernel, precision, thread count and width,
 *      including ragged tails (N = 1, 7, 9, 33) and the dense-tile
 *      inner-product path.
 *   2. Dispatch — cpuid detection, the typed DTC_SIMD override
 *      (off|scalar|avx2|avx512, unknown/unsupported raise
 *      DtcError(InvalidInput)), and ScopedSimdMode nesting.
 *   3. Observability — engine.simd.vector_elems / tail_elems follow
 *      the fixed 8-wide definitional split, independent of the
 *      physical vector width.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/precision.h"
#include "common/rng.h"
#include "datasets/generators.h"
#include "engine/engine.h"
#include "engine/prepared_dense.h"
#include "engine/simd/simd.h"
#include "kernels/dtc.h"
#include "kernels/kernel.h"
#include "matrix/coo.h"

namespace dtc {
namespace {

using engine::simd::Isa;
using engine::simd::ScopedSimdMode;

/** Saves/restores DTC_SIMD around a test (CI legs may force it). */
class EnvGuard
{
  public:
    explicit EnvGuard(const char* name) : varName(name)
    {
        const char* v = std::getenv(name);
        if (v) {
            had = true;
            saved = v;
        }
        ::unsetenv(name);
    }
    ~EnvGuard()
    {
        if (had)
            ::setenv(varName.c_str(), saved.c_str(), 1);
        else
            ::unsetenv(varName.c_str());
    }
    void set(const std::string& v)
    {
        ::setenv(varName.c_str(), v.c_str(), 1);
    }
    void unset() { ::unsetenv(varName.c_str()); }

  private:
    std::string varName;
    bool had = false;
    std::string saved;
};

/** Every backend the host can actually run (always includes Scalar). */
std::vector<Isa>
supportedBackends()
{
    std::vector<Isa> out = {Isa::Scalar};
    for (Isa isa : {Isa::Avx2, Isa::Avx512})
        if (engine::simd::isaSupported(isa))
            out.push_back(isa);
    return out;
}

std::vector<std::pair<std::string, CsrMatrix>>
simdSweepMatrices()
{
    std::vector<std::pair<std::string, CsrMatrix>> out;
    Rng rng(7);
    // Full 16x8 blocks: the register-blocked tileInner path.
    out.emplace_back("dense-blocks",
                     genBlockDiagonal(64, 16, 1.0, rng));
    // Partially-filled blocks: the residue-lane (axpyPrefetch) path.
    out.emplace_back("dense-ish", genBlockDiagonal(64, 16, 0.9, rng));
    out.emplace_back("sparse", genUniform(128, 4.0, rng));
    return out;
}

DenseMatrix
runCompute(SpmmKernel& kernel, const CsrMatrix& a, int64_t n, Isa isa)
{
    ScopedSimdMode mode(isa);
    Rng rng(41);
    DenseMatrix b(a.cols(), n);
    b.fillRandom(rng);
    DenseMatrix c(a.rows(), n);
    // Fresh rounding pass per call so PreparedDense cannot hand one
    // backend a panel rounded by another (identity must hold anyway,
    // but the test should exercise each backend's roundPanel too).
    engine::clearPreparedDenseCache();
    kernel.compute(b, c);
    return c;
}

void
expectBitwiseEqual(const DenseMatrix& a, const DenseMatrix& b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    if (a.size() > 0) {
        EXPECT_EQ(std::memcmp(a.data(), b.data(),
                              a.size() * sizeof(float)),
                  0);
    }
}

// ---------------------------------------------------------------------
// 1. Bitwise identity.
// ---------------------------------------------------------------------

/** Widths around the vector boundaries: 1, 7 (sub-vector), 9 (one
 * vector + tail), 33 (crosses the AVX-512 16-lane step). */
const int64_t kSimdWidths[] = {1, 7, 9, 33};

TEST(SimdEquivalence, AllEngineRoutedKernels)
{
    const KernelKind kinds[] = {KernelKind::CuSparse,
                                KernelKind::Tcgnn,
                                KernelKind::Dtc,
                                KernelKind::DtcBase,
                                KernelKind::DtcBalanced,
                                KernelKind::Sputnik};
    for (const auto& [mat_name, m] : simdSweepMatrices()) {
        for (KernelKind kind : kinds) {
            auto kernel = makeKernel(kind);
            if (!kernel->prepare(m).empty())
                continue;
            for (int64_t n : kSimdWidths) {
                const DenseMatrix off =
                    runCompute(*kernel, m, n, Isa::Off);
                for (Isa isa : supportedBackends()) {
                    SCOPED_TRACE(std::string(kernelKindName(kind)) +
                                 " on " + mat_name + " n=" +
                                 std::to_string(n) + " isa=" +
                                 engine::simd::isaName(isa));
                    expectBitwiseEqual(
                        off, runCompute(*kernel, m, n, isa));
                }
            }
        }
    }
}

TEST(SimdEquivalence, DtcAllPrecisionsAllThreadCounts)
{
    for (const auto& [mat_name, m] : simdSweepMatrices()) {
        for (Precision p : {Precision::Tf32, Precision::Bf16,
                            Precision::Fp16}) {
            DtcOptions opts;
            opts.precision = p;
            DtcKernel kernel(opts);
            if (!kernel.prepare(m).empty())
                continue;
            for (int threads : {1, 4, 8}) {
                ScopedNumThreads nt(threads);
                for (int64_t n : kSimdWidths) {
                    const DenseMatrix off =
                        runCompute(kernel, m, n, Isa::Off);
                    for (Isa isa : supportedBackends()) {
                        SCOPED_TRACE(
                            mat_name + " p=" + precisionName(p) +
                            " threads=" + std::to_string(threads) +
                            " n=" + std::to_string(n) + " isa=" +
                            engine::simd::isaName(isa));
                        expectBitwiseEqual(
                            off, runCompute(kernel, m, n, isa));
                    }
                }
            }
        }
    }
}

/** Raw roundPanel vs the scalar roundToPrecision, including FP16
 * saturation/flush edges and non-finite passthrough. */
TEST(SimdEquivalence, RoundPanelMatchesScalarRounding)
{
    AlignedVector<float> in;
    Rng rng(23);
    for (int i = 0; i < 1000; ++i)
        in.push_back(rng.nextFloat(-70000.0f, 70000.0f));
    for (int i = 0; i < 100; ++i)
        in.push_back(rng.nextFloat(-1e-4f, 1e-4f)); // FP16 subnormals
    const float specials[] = {
        0.0f,
        -0.0f,
        65504.0f,
        -65504.0f,
        65520.0f,
        std::numeric_limits<float>::infinity(),
        -std::numeric_limits<float>::infinity(),
        std::numeric_limits<float>::quiet_NaN(),
        std::numeric_limits<float>::denorm_min(),
        6.103515625e-5f,
    };
    in.insert(in.end(), std::begin(specials), std::end(specials));
    // Odd total length: exercises the scalar tail of every backend.
    in.push_back(1.5f);

    const int64_t n = static_cast<int64_t>(in.size());
    for (Precision p : {Precision::Fp32, Precision::Tf32,
                        Precision::Bf16, Precision::Fp16}) {
        for (Isa isa : supportedBackends()) {
            SCOPED_TRACE(std::string(precisionName(p)) + " isa=" +
                         engine::simd::isaName(isa));
            const engine::simd::Kernels& K =
                engine::simd::kernelsFor(isa);
            AlignedVector<float> out(in.size(), 0.0f);
            K.roundPanel(out.data(), in.data(), n, p);
            for (int64_t i = 0; i < n; ++i) {
                const float want = roundToPrecision(in[i], p);
                ASSERT_EQ(std::memcmp(&out[i], &want, sizeof(float)),
                          0)
                    << "i=" << i << " in=" << in[i] << " got="
                    << out[i] << " want=" << want;
            }
        }
    }
}

// ---------------------------------------------------------------------
// 2. Dispatch.
// ---------------------------------------------------------------------

TEST(SimdDispatch, DetectedIsaIsSupportedAndDefault)
{
    EnvGuard guard("DTC_SIMD");
    const Isa detected = engine::simd::detectedIsa();
    EXPECT_TRUE(engine::simd::isaSupported(detected));
    EXPECT_NE(detected, Isa::Off);
    // With no env and no override, activeIsa is the detection.
    EXPECT_EQ(engine::simd::activeIsa(), detected);
    EXPECT_EQ(engine::simd::kernels().isa, detected);
}

TEST(SimdDispatch, EnvOverrideIsHonoured)
{
    EnvGuard guard("DTC_SIMD");
    guard.set("off");
    EXPECT_EQ(engine::simd::activeIsa(), Isa::Off);
    guard.set("scalar");
    EXPECT_EQ(engine::simd::activeIsa(), Isa::Scalar);
    for (Isa isa : {Isa::Avx2, Isa::Avx512}) {
        guard.set(engine::simd::isaName(isa));
        if (engine::simd::isaSupported(isa))
            EXPECT_EQ(engine::simd::activeIsa(), isa);
        else
            EXPECT_THROW(engine::simd::activeIsa(), DtcError);
    }
}

TEST(SimdDispatch, UnknownEnvValueRaisesTypedError)
{
    EnvGuard guard("DTC_SIMD");
    guard.set("avx-512"); // typo'd knob must fail loudly
    try {
        engine::simd::activeIsa();
        FAIL() << "expected DtcError";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidInput);
        EXPECT_NE(std::string(e.what()).find("DTC_SIMD"),
                  std::string::npos);
    }
}

TEST(SimdDispatch, ScopedModeOverridesEnvAndNests)
{
    EnvGuard guard("DTC_SIMD");
    guard.set("off");
    {
        ScopedSimdMode outer(Isa::Scalar);
        EXPECT_EQ(engine::simd::activeIsa(), Isa::Scalar);
        {
            ScopedSimdMode inner(Isa::Off);
            EXPECT_EQ(engine::simd::activeIsa(), Isa::Off);
        }
        EXPECT_EQ(engine::simd::activeIsa(), Isa::Scalar);
    }
    EXPECT_EQ(engine::simd::activeIsa(), Isa::Off); // env again
}

TEST(SimdDispatch, KernelsForUnavailableBackendRaises)
{
    for (Isa isa : {Isa::Avx2, Isa::Avx512}) {
        if (engine::simd::isaSupported(isa)) {
            EXPECT_EQ(engine::simd::kernelsFor(isa).isa, isa);
        } else {
            EXPECT_THROW(engine::simd::kernelsFor(isa), DtcError);
        }
    }
    EXPECT_EQ(engine::simd::kernelsFor(Isa::Off).isa, Isa::Off);
    EXPECT_EQ(engine::simd::kernelsFor(Isa::Scalar).isa, Isa::Scalar);
}

// ---------------------------------------------------------------------
// 3. Observability counters.
// ---------------------------------------------------------------------

TEST(SimdCounters, FollowTheFixed8WideSplit)
{
    AlignedVector<float> c(33, 0.0f);
    AlignedVector<float> b(33, 1.0f);
    for (Isa isa : supportedBackends()) {
        SCOPED_TRACE(engine::simd::isaName(isa));
        const engine::simd::Kernels& K = engine::simd::kernelsFor(isa);
        engine::simd::resetStats();
        K.axpy(c.data(), b.data(), 2.0f, 33);
        // Definitional split: vector = n - n%8, tail = n%8, except
        // the scalar backend books everything to the tail.
        if (isa == Isa::Scalar) {
            EXPECT_EQ(engine::simd::stats().vectorElems.load(), 0u);
            EXPECT_EQ(engine::simd::stats().tailElems.load(), 33u);
        } else {
            EXPECT_EQ(engine::simd::stats().vectorElems.load(), 32u);
            EXPECT_EQ(engine::simd::stats().tailElems.load(), 1u);
        }
    }
    // The Off table bypasses the dispatcher: no counters at all.
    engine::simd::resetStats();
    const engine::simd::Kernels& off =
        engine::simd::kernelsFor(Isa::Off);
    off.axpy(c.data(), b.data(), 2.0f, 33);
    EXPECT_EQ(engine::simd::stats().vectorElems.load(), 0u);
    EXPECT_EQ(engine::simd::stats().tailElems.load(), 0u);
}

TEST(SimdCounters, PreparedDenseBooksWholePasses)
{
    engine::clearPreparedDenseCache();
    Rng rng(31);
    DenseMatrix b(15, 33); // 495 elements: 61 vectors + 7-wide tail
    b.fillRandom(rng);
    const uint64_t total = 15 * 33;
    ScopedSimdMode mode(engine::simd::detectedIsa());
    engine::simd::resetStats();
    engine::PreparedDense pd(b, Precision::Tf32);
    if (engine::simd::detectedIsa() == Isa::Scalar) {
        EXPECT_EQ(engine::simd::stats().tailElems.load(), total);
    } else {
        EXPECT_EQ(engine::simd::stats().vectorElems.load(),
                  total - total % 8);
        EXPECT_EQ(engine::simd::stats().tailElems.load(), total % 8);
    }
    engine::clearPreparedDenseCache();
}

// ---------------------------------------------------------------------
// Panel-width auto-tune (satellite: engine::panelColsBase).
// ---------------------------------------------------------------------

TEST(PanelCols, OverridesResolveStrongestFirst)
{
    EnvGuard guard("DTC_PANEL_COLS");
    // Probe/default path: multiple of kJBlock inside the clamp.
    guard.unset();
    const int64_t base = engine::panelColsBase();
    EXPECT_GE(base, 64);
    EXPECT_LE(base, 4096);
    EXPECT_EQ(base % engine::kJBlock, 0);

    // Env knob beats the probe.
    guard.set("128");
    EXPECT_EQ(engine::panelColsBase(), 128);
    // Typed validation: garbage raises instead of silently ignoring.
    guard.set("many");
    EXPECT_THROW(engine::panelColsBase(), DtcError);
    guard.set("0");
    EXPECT_THROW(engine::panelColsBase(), DtcError);

    // Scoped override beats the env knob.
    guard.set("128");
    {
        engine::ScopedPanelCols pin(64);
        EXPECT_EQ(engine::panelColsBase(), 64);
        EXPECT_EQ(engine::panelCols(1000), 64);
        EXPECT_EQ(engine::panelCols(128), 128); // single panel
    }
    EXPECT_EQ(engine::panelColsBase(), 128);
}

} // namespace
} // namespace dtc
