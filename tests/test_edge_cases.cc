/**
 * @file
 * Edge-case and failure-injection tests across modules: degenerate
 * matrices (empty, single row, dense, empty windows), boundary
 * dense widths, odd architecture parameters, traffic-meter
 * conservation, and conversions at the uint8 local-id limits.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/generators.h"
#include "formats/me_tcf.h"
#include "formats/tcf.h"
#include "gpusim/scheduler.h"
#include "kernels/b_traffic.h"
#include "kernels/dtc.h"
#include "kernels/kernel.h"
#include "kernels/reference.h"
#include "matrix/coo.h"
#include "selector/selector.h"
#include "testing/oracle.h"

namespace dtc {
namespace {

/** Kernels that accept any square matrix. */
const KernelKind kAlwaysSupported[] = {
    KernelKind::CuSparse,      KernelKind::Sputnik,
    KernelKind::SparseTir,     KernelKind::Tcgnn,
    KernelKind::Dtc,           KernelKind::VectorSparse4,
};

TEST(EdgeCases, EmptyMatrixThroughEveryKernel)
{
    CsrMatrix a(64, 64); // structurally empty
    DenseMatrix b(64, 8), c(64, 8);
    Rng rng(1);
    b.fillRandom(rng);
    CostModel cm(ArchSpec::rtx4090());
    for (KernelKind kind : kAlwaysSupported) {
        auto kernel = makeKernel(kind);
        ASSERT_EQ(kernel->prepare(a), "") << kernelKindName(kind);
        c.fill(99.0f);
        kernel->compute(b, c);
        for (size_t i = 0; i < c.size(); ++i)
            ASSERT_EQ(c.data()[i], 0.0f) << kernelKindName(kind);
        LaunchResult r = kernel->cost(8, cm);
        EXPECT_GE(r.timeMs, 0.0) << kernelKindName(kind);
    }
}

TEST(EdgeCases, ZeroDimensionShapesThroughFullPipeline)
{
    // 0x0, 0xN and Mx0 through SGT -> ME-TCF -> every registered
    // kernel: each must refuse with a structured Refusal or produce a
    // correctly-shaped all-zero C — never crash or mis-size.
    struct Shape
    {
        int64_t rows;
        int64_t cols;
    };
    CostModel cm(ArchSpec::rtx4090());
    for (const Shape s : {Shape{0, 0}, Shape{0, 64}, Shape{64, 0}}) {
        SCOPED_TRACE(::testing::Message()
                     << s.rows << "x" << s.cols);
        CsrMatrix a(s.rows, s.cols);
        MeTcfMatrix t = MeTcfMatrix::build(a);
        EXPECT_NO_THROW(t.validate());
        EXPECT_TRUE(a == t.toCsr());

        const DenseMatrix b =
            testing::makeDenseOperand(s.cols, 8, 42);
        for (KernelKind kind : allKernelKinds()) {
            auto kernel = makeKernel(kind);
            const Refusal r = kernel->prepare(a);
            if (!r.ok()) {
                EXPECT_FALSE(kernel->prepared())
                    << kernelKindName(kind);
                continue;
            }
            DenseMatrix c(s.rows, 8);
            c.fill(99.0f);
            kernel->compute(b, c);
            ASSERT_EQ(c.rows(), s.rows) << kernelKindName(kind);
            ASSERT_EQ(c.cols(), 8) << kernelKindName(kind);
            for (size_t i = 0; i < c.size(); ++i)
                ASSERT_EQ(c.data()[i], 0.0f) << kernelKindName(kind);
            const LaunchResult lr = kernel->cost(8, cm);
            EXPECT_GE(lr.timeMs, 0.0) << kernelKindName(kind);
        }
    }
}

TEST(EdgeCases, AllZeroRowsInterleavedThroughEveryKernel)
{
    // Rows 0, 17 and 40 populated, everything else (including whole
    // 16-row windows) empty: every kernel that accepts must match the
    // reference at its native precision — empty rows exactly zero.
    CooMatrix coo(48, 48);
    coo.add(0, 5, 1.5f);
    coo.add(17, 31, -2.0f);
    coo.add(40, 0, 0.5f);
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    const DenseMatrix b = testing::makeDenseOperand(48, 8, 43);
    for (const KernelTraits& kt : allKernelTraits()) {
        auto kernel = makeKernel(kt.kind);
        if (!kernel->prepare(a).ok())
            continue;
        DenseMatrix c(48, 8);
        c.fill(99.0f);
        kernel->compute(b, c);
        EXPECT_EQ(testing::judgeResult(a, b, c, kt.nativePrecision,
                                       kt.bitExactRounded, 8.0),
                  "")
            << kernel->name();
        for (int64_t r : {1, 16, 30, 47})
            for (int64_t j = 0; j < 8; ++j)
                ASSERT_EQ(c.at(r, j), 0.0f)
                    << kernel->name() << " row " << r;
    }
}

TEST(EdgeCases, SingleElementThroughEveryKernel)
{
    // One nonzero in a 1x1 matrix, judged through the same oracle the
    // fuzzer uses (refusal allowed, wrong answer not).
    CooMatrix coo(1, 1);
    coo.add(0, 0, 2.5f);
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    MeTcfMatrix t = MeTcfMatrix::build(a);
    EXPECT_NO_THROW(t.validate());
    EXPECT_TRUE(a == t.toCsr());
    const DenseMatrix b = testing::makeDenseOperand(1, 4, 44);
    for (const KernelTraits& kt : allKernelTraits()) {
        auto kernel = makeKernel(kt.kind);
        if (!kernel->prepare(a).ok())
            continue;
        DenseMatrix c(1, 4);
        kernel->compute(b, c);
        EXPECT_EQ(testing::judgeResult(a, b, c, kt.nativePrecision,
                                       kt.bitExactRounded, 8.0),
                  "")
            << kernel->name();
    }
}

TEST(EdgeCases, SingleEntryMatrix)
{
    CooMatrix coo(1, 1);
    coo.add(0, 0, 2.5f);
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    DenseMatrix b(1, 4), c(1, 4);
    for (int j = 0; j < 4; ++j)
        b.at(0, j) = static_cast<float>(j + 1);
    DtcKernel kernel;
    ASSERT_EQ(kernel.prepare(a), "");
    kernel.compute(b, c);
    for (int j = 0; j < 4; ++j)
        EXPECT_FLOAT_EQ(c.at(0, j), 2.5f * (j + 1));
}

TEST(EdgeCases, FullyDenseMatrix)
{
    // Every position nonzero: SGT has nothing to condense but must
    // still be exact.
    const int64_t n = 48;
    CooMatrix coo(n, n);
    Rng rng(2);
    for (int32_t r = 0; r < n; ++r)
        for (int32_t c = 0; c < n; ++c)
            coo.add(r, c, rng.nextFloat(0.5f, 1.5f));
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    MeTcfMatrix t = MeTcfMatrix::build(a);
    EXPECT_NO_THROW(t.validate());
    EXPECT_DOUBLE_EQ(t.meanNnzTc(), 128.0); // every block full
    EXPECT_TRUE(a == t.toCsr());
}

TEST(EdgeCases, EmptyWindowsInMiddle)
{
    // Rows 16..31 empty: that window contributes zero TC blocks.
    CooMatrix coo(48, 48);
    coo.add(3, 7, 1.0f);
    coo.add(40, 2, 2.0f);
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    MeTcfMatrix t = MeTcfMatrix::build(a);
    EXPECT_EQ(t.numWindows(), 3);
    EXPECT_EQ(t.blocksInWindow(0), 1);
    EXPECT_EQ(t.blocksInWindow(1), 0);
    EXPECT_EQ(t.blocksInWindow(2), 1);
    EXPECT_TRUE(a == t.toCsr());

    DenseMatrix b(48, 8), c(48, 8);
    Rng rng(3);
    b.fillRandom(rng);
    DtcKernel kernel;
    ASSERT_EQ(kernel.prepare(a), "");
    kernel.compute(b, c);
    DenseMatrix want(48, 8);
    referenceSpmmTf32(a, b, want);
    EXPECT_TRUE(c == want);
}

TEST(EdgeCases, RowCountNotMultipleOfWindow)
{
    Rng rng(4);
    for (int64_t n : {15, 17, 31, 33, 255}) {
        CsrMatrix a = genUniform(n, 3.0, rng);
        MeTcfMatrix t = MeTcfMatrix::build(a);
        EXPECT_NO_THROW(t.validate()) << n;
        EXPECT_TRUE(a == t.toCsr()) << n;
    }
}

TEST(EdgeCases, LocalIdBoundaryRow15Column7)
{
    // A nonzero landing on local id 127 exactly.
    CooMatrix coo(16, 64);
    for (int32_t c = 0; c < 8; ++c)
        coo.add(15, c * 8, 1.0f); // row 15 gets 8 distinct columns
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    MeTcfMatrix t = MeTcfMatrix::build(a);
    EXPECT_EQ(t.tcLocalId().back(), 127);
    EXPECT_TRUE(a == t.toCsr());
}

TEST(EdgeCases, DenseWidthOne)
{
    Rng rng(5);
    CsrMatrix a = genUniform(128, 6.0, rng);
    DenseMatrix b(a.cols(), 1), c(a.rows(), 1), want(a.rows(), 1);
    b.fillRandom(rng);
    for (KernelKind kind : kAlwaysSupported) {
        auto kernel = makeKernel(kind);
        ASSERT_EQ(kernel->prepare(a), "");
        kernel->compute(b, c);
        referenceSpmm(a, b, want);
        EXPECT_LT(c.maxAbsDiff(want), 0.05) << kernelKindName(kind);
    }
}

TEST(EdgeCases, TrafficMeterConservesBytes)
{
    ArchSpec arch = ArchSpec::rtx4090();
    BTrafficMeter meter(arch, 128);
    std::vector<TbWork> tbs(3);
    Rng rng(6);
    double expect[3] = {};
    for (int i = 0; i < 300; ++i) {
        size_t tb = rng.nextBounded(3);
        meter.accessRow(static_cast<int32_t>(rng.nextBounded(1000)),
                        tb);
        expect[tb] += 128 * 4;
    }
    meter.apportion(tbs);
    for (int t = 0; t < 3; ++t) {
        EXPECT_NEAR(tbs[t].bytesL2Hit + tbs[t].bytesDram, expect[t],
                    1e-6);
    }
}

TEST(EdgeCases, TrafficMeterHitRateAppliedUniformly)
{
    ArchSpec arch = ArchSpec::rtx4090();
    BTrafficMeter meter(arch, 64);
    std::vector<TbWork> tbs(2);
    // Same row 10 times in tb0 (hits), 10 distinct rows in tb1
    // (misses): both get the launch-wide rate.
    for (int i = 0; i < 10; ++i)
        meter.accessRow(0, 0);
    for (int i = 0; i < 10; ++i)
        meter.accessRow(100 + i, 1);
    const double rate = meter.hitRate();
    meter.apportion(tbs);
    EXPECT_NEAR(tbs[0].bytesL2Hit / (tbs[0].bytesL2Hit +
                                     tbs[0].bytesDram),
                rate, 1e-9);
    EXPECT_NEAR(tbs[1].bytesL2Hit / (tbs[1].bytesL2Hit +
                                     tbs[1].bytesDram),
                rate, 1e-9);
}

TEST(EdgeCases, SchedulerOddSmCount)
{
    std::vector<double> tbs(100, 10.0);
    ScheduleResult r = scheduleThreadBlocks(tbs, 7, 3);
    double total = 0.0;
    for (double b : r.smBusyCycles)
        total += b;
    EXPECT_NEAR(total, 1000.0, 1e-9);
    EXPECT_GE(r.makespanCycles, 1000.0 / 21.0);
}

TEST(EdgeCases, SchedulerSingleSm)
{
    std::vector<double> tbs{5.0, 6.0, 7.0};
    ScheduleResult r = scheduleThreadBlocks(tbs, 1, 1);
    EXPECT_DOUBLE_EQ(r.makespanCycles, 18.0);
    EXPECT_EQ(r.tbToSm, (std::vector<int>{0, 0, 0}));
}

TEST(EdgeCases, SelectorAllEmptyWindows)
{
    std::vector<int64_t> blocks(100, 0);
    SelectorDecision d =
        selectKernel(blocks, ArchSpec::rtx4090());
    EXPECT_FALSE(d.useBalanced);
}

TEST(EdgeCases, GeneratorsRejectBadArguments)
{
    Rng rng(7);
    EXPECT_THROW(genUniform(0, 4.0, rng), std::invalid_argument);
    EXPECT_THROW(genUniform(10, 0.0, rng), std::invalid_argument);
    EXPECT_THROW(genBanded(10, 0, 2.0, rng), std::invalid_argument);
    EXPECT_THROW(genCommunity(10, 20, 2.0, 0.5, rng),
                 std::invalid_argument);
    EXPECT_THROW(genCommunity(10, 2, 2.0, 1.5, rng),
                 std::invalid_argument);
    EXPECT_THROW(genComponents(10, 1, 5, 0.1, rng),
                 std::invalid_argument);
}

TEST(EdgeCases, NearDenseGeneratorClampsGracefully)
{
    // avg degree close to n: dedup caps realized degree.
    Rng rng(8);
    CsrMatrix a = genUniform(64, 60.0, rng);
    EXPECT_NO_THROW(a.validate());
    EXPECT_LE(a.nnz(), 64 * 64);
    MeTcfMatrix t = MeTcfMatrix::build(a);
    EXPECT_NO_THROW(t.validate());
}

TEST(EdgeCases, KernelsRejectShapeMismatches)
{
    Rng rng(9);
    CsrMatrix a = genUniform(64, 4.0, rng);
    DtcKernel kernel;
    ASSERT_EQ(kernel.prepare(a), "");
    DenseMatrix wrong_b(32, 8); // wrong inner dimension
    DenseMatrix c(64, 8);
    EXPECT_THROW(kernel.compute(wrong_b, c), std::invalid_argument);
    DenseMatrix b(64, 8);
    DenseMatrix wrong_c(64, 4); // wrong output width
    EXPECT_THROW(kernel.compute(b, wrong_c), std::invalid_argument);
}

TEST(EdgeCases, ComputeBeforePrepareThrows)
{
    DtcKernel kernel;
    DenseMatrix b(8, 8), c(8, 8);
    EXPECT_THROW(kernel.compute(b, c), std::invalid_argument);
    CostModel cm(ArchSpec::rtx4090());
    EXPECT_THROW(kernel.cost(8, cm), std::invalid_argument);
}

} // namespace
} // namespace dtc
