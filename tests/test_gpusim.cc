/**
 * @file
 * Unit tests for the GPU execution-model simulator: scheduler policy
 * (Eq. 1), slot-based scheduling, L2 cache model, cost-model
 * arithmetic.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "gpusim/arch.h"
#include "gpusim/cost_model.h"
#include "gpusim/l2cache.h"
#include "gpusim/scheduler.h"

namespace dtc {
namespace {

TEST(Arch, FactoryValues)
{
    ArchSpec a = ArchSpec::rtx4090();
    EXPECT_EQ(a.numSms, 128);
    EXPECT_EQ(a.occupancy, 6);
    EXPECT_DOUBLE_EQ(a.hmmaLatencyCycles, 16.0);
    ArchSpec b = ArchSpec::rtx3090();
    EXPECT_EQ(b.numSms, 82);
    EXPECT_LT(b.l2Bytes, a.l2Bytes);
    EXPECT_LT(b.tcMacsPerCycle, a.tcMacsPerCycle);
}

TEST(Arch, DerivedRates)
{
    ArchSpec a = ArchSpec::rtx4090();
    EXPECT_DOUBLE_EQ(a.cyclesPerHmma(), 512.0 / 256.0);
    EXPECT_NEAR(a.dramBytesPerCycle(), 1008.0 / 2.52, 1e-9);
}

TEST(Scheduler, PolicyMatchesPaperEquation)
{
    // Eq. 1 with 128 SMs: sm = 2*(b mod 64) + (b/64) mod 2.
    for (int64_t b = 0; b < 512; ++b) {
        EXPECT_EQ(schedulerPolicySm(b, 128),
                  2 * (b % 64) + (b / 64) % 2);
    }
}

TEST(Scheduler, PolicyFirstWaveCoversAllSms)
{
    std::vector<bool> hit(128, false);
    for (int64_t b = 0; b < 128; ++b)
        hit[schedulerPolicySm(b, 128)] = true;
    for (bool h : hit)
        EXPECT_TRUE(h);
}

TEST(Scheduler, UniformBlocksBalance)
{
    std::vector<double> tbs(1280, 100.0);
    ScheduleResult r = scheduleThreadBlocks(tbs, 128, 6);
    // 1280 equal blocks over 128 SMs: 1000 busy cycles each.
    for (double busy : r.smBusyCycles)
        EXPECT_NEAR(busy, 1000.0, 1e-6);
    // 768 slots, 1280 blocks: the fullest slot runs 2 blocks.
    EXPECT_NEAR(r.makespanCycles, 200.0, 1e-6);
}

TEST(Scheduler, MakespanAtLeastCriticalPath)
{
    std::vector<double> tbs{5000.0, 1.0, 1.0, 1.0};
    ScheduleResult r = scheduleThreadBlocks(tbs, 4, 2);
    EXPECT_GE(r.makespanCycles, 5000.0);
}

TEST(Scheduler, SkewedBlocksLeaveSmsIdle)
{
    // One giant block, many tiny: the giant block's SM dominates.
    std::vector<double> tbs(256, 10.0);
    tbs[0] = 100000.0;
    ScheduleResult r = scheduleThreadBlocks(tbs, 128, 6);
    EXPECT_NEAR(r.makespanCycles, 100000.0, 1000.0);
    // Most SMs are nearly idle relative to the makespan.
    int idle = 0;
    for (double busy : r.smBusyCycles)
        if (busy < 0.01 * r.makespanCycles)
            idle++;
    EXPECT_GT(idle, 100);
}

TEST(Scheduler, WorkConserving)
{
    std::vector<double> tbs;
    for (int i = 0; i < 1000; ++i)
        tbs.push_back(10.0 + (i % 7) * 3.0);
    ScheduleResult r = scheduleThreadBlocks(tbs, 16, 4);
    const double total =
        std::accumulate(tbs.begin(), tbs.end(), 0.0);
    double busy = 0.0;
    for (double b : r.smBusyCycles)
        busy += b;
    EXPECT_NEAR(busy, total, 1e-6);
    // Perfect packing bound: makespan >= total / (SMs * occupancy).
    EXPECT_GE(r.makespanCycles * 16.0 * 4.0, total - 1e-6);
}

TEST(Scheduler, TbToSmRecordsAssignment)
{
    std::vector<double> tbs(64, 5.0);
    ScheduleResult r = scheduleThreadBlocks(tbs, 8, 2);
    ASSERT_EQ(r.tbToSm.size(), tbs.size());
    for (int sm : r.tbToSm) {
        EXPECT_GE(sm, 0);
        EXPECT_LT(sm, 8);
    }
}

TEST(L2Cache, HitsOnRepeat)
{
    L2Cache c(1 << 16, 4, 64);
    EXPECT_FALSE(c.access(0));
    EXPECT_TRUE(c.access(0));
    EXPECT_TRUE(c.access(32)); // same line
    EXPECT_EQ(c.hits(), 2);
    EXPECT_EQ(c.misses(), 1);
}

TEST(L2Cache, EvictsLruWithinSet)
{
    // 2-way, force 3 lines into one set.
    L2Cache c(2 * 64, 2, 64); // 1 set, 2 ways
    EXPECT_EQ(c.numSets(), 1);
    c.access(0);
    c.access(64);
    c.access(128); // evicts line 0
    EXPECT_FALSE(c.access(0));
}

TEST(L2Cache, LruKeepsRecentlyUsed)
{
    L2Cache c(2 * 64, 2, 64);
    c.access(0);
    c.access(64);
    c.access(0);   // refresh line 0
    c.access(128); // should evict line 64, not 0
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(64));
}

TEST(L2Cache, WorkingSetWithinCapacityAllHits)
{
    L2Cache c(1 << 20, 16, 128);
    for (int pass = 0; pass < 3; ++pass)
        for (uint64_t line = 0; line < 1000; ++line)
            c.accessLine(line);
    // First pass misses, later passes hit.
    EXPECT_EQ(c.misses(), 1000);
    EXPECT_EQ(c.hits(), 2000);
}

TEST(L2Cache, ResetClears)
{
    L2Cache c(1 << 16, 4, 64);
    c.access(0);
    c.access(0);
    c.reset();
    EXPECT_EQ(c.hits(), 0);
    EXPECT_FALSE(c.access(0));
}

TEST(CostModel, MoreWorkMoreCycles)
{
    CostModel cm(ArchSpec::rtx4090());
    TbWork small, big;
    small.hmma = 10;
    big.hmma = 1000;
    EXPECT_LT(cm.tbCycles(small), cm.tbCycles(big));
}

TEST(CostModel, OverlapReducesCycles)
{
    CostModel cm(ArchSpec::rtx4090());
    TbWork serial, overlapped;
    serial.hmma = overlapped.hmma = 100;
    serial.imad = overlapped.imad = 400;
    serial.bytesDram = overlapped.bytesDram = 1e5;
    serial.execSerialFrac = 1.0;
    serial.memSerialFrac = 1.0;
    overlapped.execSerialFrac = 0.3;
    overlapped.memSerialFrac = 0.3;
    EXPECT_LT(cm.tbCycles(overlapped), cm.tbCycles(serial));
}

TEST(CostModel, LaunchAggregatesCounters)
{
    CostModel cm(ArchSpec::rtx4090());
    std::vector<TbWork> tbs(10);
    for (auto& w : tbs) {
        w.hmma = 5;
        w.imad = 50;
    }
    LaunchResult r = cm.launch("k", tbs, 1e6, 0.5);
    EXPECT_DOUBLE_EQ(r.totalHmma, 50.0);
    EXPECT_DOUBLE_EQ(r.totalImad, 500.0);
    EXPECT_DOUBLE_EQ(r.imadPerHmma, 10.0);
    EXPECT_DOUBLE_EQ(r.l2HitRate, 0.5);
    EXPECT_GT(r.timeMs, 0.0);
    EXPECT_GT(r.gflops(), 0.0);
}

TEST(CostModel, UtilizationBetweenZeroAndHundred)
{
    CostModel cm(ArchSpec::rtx4090());
    std::vector<TbWork> tbs(500);
    for (auto& w : tbs) {
        w.hmma = 100;
        w.imad = 10;
        w.execSerialFrac = 0.0;
        w.memSerialFrac = 0.0;
        w.fixedCycles = 0.0;
    }
    LaunchResult r = cm.launch("k", tbs, 1.0, 0.0);
    EXPECT_GT(r.tcUtilPct, 0.0);
    EXPECT_LE(r.tcUtilPct, 100.0 + 1e-9);
}

TEST(CostModel, UnsupportedMarker)
{
    LaunchResult r = LaunchResult::unsupported("X", "because");
    EXPECT_FALSE(r.supported);
    EXPECT_EQ(r.unsupportedReason, "because");
}

} // namespace
} // namespace dtc
