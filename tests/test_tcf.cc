/**
 * @file
 * Unit tests for the TCF format (TC-GNN's storage): array contents,
 * memory accounting (Observation 1), compressed column consistency.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/generators.h"
#include "formats/tcf.h"
#include "matrix/coo.h"

namespace dtc {
namespace {

TEST(Tcf, ArraysHavePaperSizes)
{
    Rng rng(1);
    CsrMatrix m = genUniform(300, 8.0, rng);
    TcfMatrix t = TcfMatrix::build(m);
    EXPECT_EQ(static_cast<int64_t>(t.blockPartition().size()),
              (m.rows() + 15) / 16);
    EXPECT_EQ(static_cast<int64_t>(t.nodePointer().size()),
              m.rows() + 1);
    EXPECT_EQ(static_cast<int64_t>(t.edgeList().size()), m.nnz());
    EXPECT_EQ(static_cast<int64_t>(t.edgeToColumn().size()), m.nnz());
    EXPECT_EQ(static_cast<int64_t>(t.edgeToRow().size()), m.nnz());
}

TEST(Tcf, IndexElementCountFormula)
{
    Rng rng(2);
    CsrMatrix m = genUniform(300, 8.0, rng);
    TcfMatrix t = TcfMatrix::build(m);
    EXPECT_EQ(t.indexElementCount(),
              (m.rows() + 15) / 16 + m.rows() + 1 + 3 * m.nnz());
}

TEST(Tcf, ConsumesFarMoreThanCsr)
{
    // Observation 1: TCF averages ~168% more memory than CSR.  For a
    // matrix with avg row length >= 2, 3*NNZ dominates and TCF must
    // exceed CSR by at least ~80%.
    Rng rng(3);
    CsrMatrix m = genUniform(1000, 8.0, rng);
    TcfMatrix t = TcfMatrix::build(m);
    const double ratio =
        static_cast<double>(t.indexElementCount()) /
        static_cast<double>(m.indexElementCount());
    EXPECT_GT(ratio, 1.8);
}

TEST(Tcf, EdgeToRowMatchesCsrStructure)
{
    Rng rng(4);
    CsrMatrix m = genPowerLaw(200, 5.0, 1.1, rng);
    TcfMatrix t = TcfMatrix::build(m);
    for (int64_t r = 0; r < m.rows(); ++r) {
        for (int64_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1]; ++k) {
            EXPECT_EQ(t.edgeToRow()[k], r);
            EXPECT_EQ(t.edgeList()[k], m.colIdx()[k]);
        }
    }
}

TEST(Tcf, CompressedColumnsAreWindowLocalRanks)
{
    Rng rng(5);
    CsrMatrix m = genUniform(200, 6.0, rng);
    TcfMatrix t = TcfMatrix::build(m);
    // Within a window, equal original columns get equal compressed
    // columns, and ordering by compressed column matches ordering by
    // original column.
    for (int64_t w = 0; w < t.numWindows(); ++w) {
        const int64_t row_lo = w * 16;
        const int64_t row_hi = std::min<int64_t>(row_lo + 16, m.rows());
        std::map<int32_t, int32_t> seen; // orig -> compressed
        for (int64_t r = row_lo; r < row_hi; ++r) {
            for (int64_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1];
                 ++k) {
                auto [it, fresh] = seen.emplace(
                    t.edgeList()[k], t.edgeToColumn()[k]);
                if (!fresh) {
                    EXPECT_EQ(it->second, t.edgeToColumn()[k]);
                }
            }
        }
        int32_t prev = -1;
        for (const auto& [orig, comp] : seen) {
            EXPECT_EQ(comp, prev + 1); // ranks are dense, ascending
            prev = comp;
        }
    }
}

TEST(Tcf, BlockPartitionMatchesSgt)
{
    Rng rng(6);
    CsrMatrix m = genCommunity(400, 4, 12.0, 0.8, rng);
    TcfMatrix t = TcfMatrix::build(m);
    SgtResult s = sgtCondense(m);
    EXPECT_EQ(t.blockPartition(), s.blocksPerWindow);
    EXPECT_EQ(t.numTcBlocks(), s.numTcBlocks);
    EXPECT_DOUBLE_EQ(t.meanNnzTc(), s.meanNnzTc);
}

TEST(Tcf, ValuesAlignedWithEdges)
{
    Rng rng(7);
    CsrMatrix m = genUniform(100, 4.0, rng);
    TcfMatrix t = TcfMatrix::build(m);
    EXPECT_EQ(t.values(), m.values());
}

} // namespace
} // namespace dtc
