/**
 * @file
 * Property tests of the cost model and scheduler, including the
 * paper's Fig. 10(b) worked example of the Eq. 1 scheduling policy
 * (SM 0 hosts blocks 0, 128, 256, 384, 512, 640 in the first wave;
 * block 768 arrives when a slot frees), monotonicity of every cost
 * knob, and conservation properties of launches.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "formats/me_tcf.h"
#include "gpusim/cost_model.h"
#include "gpusim/scheduler.h"
#include "selector/selector.h"
#include "testing/generators.h"

namespace dtc {
namespace {

TEST(SchedulerProperties, Fig10WorkedExample)
{
    // Paper Fig. 10(b): with 128 SMs and occupancy 6, SM 0's six
    // concurrent blocks are 0, 128, 256, 384, 512, 640.
    std::vector<int64_t> sm0_first_wave;
    for (int64_t b = 0; b < 128 * 6; ++b) {
        if (schedulerPolicySm(b, 128) == 0)
            sm0_first_wave.push_back(b);
    }
    EXPECT_EQ(sm0_first_wave,
              (std::vector<int64_t>{0, 128, 256, 384, 512, 640}));

    // "As one thread block completes its computation (e.g., block
    // 128), the next block (e.g., block 768) is scheduled."  Make
    // block 128 the shortest so its slot frees first: block 768 must
    // land on SM 0.
    std::vector<double> tbs(1024, 100.0);
    tbs[128] = 1.0;
    ScheduleResult r = scheduleThreadBlocks(tbs, 128, 6);
    EXPECT_EQ(r.tbToSm[768], 0);
}

TEST(SchedulerProperties, PolicyIsInterleavedEvenOdd)
{
    // Eq. 1 alternates even SMs then odd SMs across each half-wave.
    for (int64_t b = 0; b < 64; ++b)
        EXPECT_EQ(schedulerPolicySm(b, 128) % 2, 0);
    for (int64_t b = 64; b < 128; ++b)
        EXPECT_EQ(schedulerPolicySm(b, 128) % 2, 1);
}

TEST(SchedulerProperties, MakespanMonotoneInWork)
{
    std::vector<double> tbs(500, 50.0);
    double prev = scheduleThreadBlocks(tbs, 16, 2).makespanCycles;
    for (double extra : {10.0, 100.0, 1000.0}) {
        auto grown = tbs;
        grown[123] += extra;
        double ms = scheduleThreadBlocks(grown, 16, 2).makespanCycles;
        EXPECT_GE(ms, prev);
        prev = ms;
    }
}

TEST(SchedulerProperties, AssignmentsInRangeOnPathologicalShapes)
{
    // Every adversarial structure family, through SGT/ME-TCF, feeds
    // the Eq. 1 scheduler: each thread block must land on a real SM
    // and every block must be scheduled — no out-of-range indexing on
    // empty-window-heavy or hub-dominated distributions.
    for (testing::StructureFamily family :
         testing::allStructureFamilies()) {
        SCOPED_TRACE(testing::structureFamilyName(family));
        const CsrMatrix m = testing::generateStructure(family, 1, 0);
        const MeTcfMatrix me = MeTcfMatrix::build(m);
        std::vector<double> tbs;
        for (int64_t w = 0; w < me.numWindows(); ++w)
            tbs.push_back(static_cast<double>(me.blocksInWindow(w)));
        if (tbs.empty())
            continue;
        const ScheduleResult r = scheduleThreadBlocks(tbs, 128, 6);
        ASSERT_EQ(r.tbToSm.size(), tbs.size());
        for (int sm : r.tbToSm) {
            ASSERT_GE(sm, 0);
            ASSERT_LT(sm, 128);
        }
        ASSERT_EQ(r.smBusyCycles.size(), 128u);
    }
}

TEST(SelectorProperties, DecisionSaneOnPathologicalShapes)
{
    // The Selector must evaluate every adversarial family without
    // throwing: degenerate inputs fall back to base with a note;
    // non-degenerate ones satisfy AR = base/balanced >= 1 and the
    // threshold rule.
    const ArchSpec arch = ArchSpec::rtx4090();
    for (testing::StructureFamily family :
         testing::allStructureFamilies()) {
        SCOPED_TRACE(testing::structureFamilyName(family));
        const CsrMatrix m = testing::generateStructure(family, 1, 0);
        const MeTcfMatrix me = MeTcfMatrix::build(m);
        const SelectorDecision d = selectKernel(me, arch);
        if (d.degenerate) {
            EXPECT_FALSE(d.useBalanced);
            EXPECT_FALSE(d.note.empty());
            continue;
        }
        EXPECT_GT(d.makespanBalanced, 0.0);
        EXPECT_GE(d.makespanBase, d.makespanBalanced - 1e-9);
        EXPECT_GE(d.approximationRatio, 1.0 - 1e-9);
        EXPECT_EQ(d.useBalanced,
                  d.approximationRatio > kSelectorArThreshold);
    }
}

TEST(SelectorProperties, BaseMakespanMonotoneInTcBlockCount)
{
    // Adding a TC block to any row window can only grow (or keep) the
    // simulated base-kernel makespan — the cost the Selector ranks.
    for (testing::StructureFamily family :
         {testing::StructureFamily::PowerLaw,
          testing::StructureFamily::EmptyRows,
          testing::StructureFamily::DuplicateColumns}) {
        SCOPED_TRACE(testing::structureFamilyName(family));
        const CsrMatrix m = testing::generateStructure(family, 3, 0);
        const MeTcfMatrix me = MeTcfMatrix::build(m);
        std::vector<int64_t> blocks;
        for (int64_t w = 0; w < me.numWindows(); ++w)
            blocks.push_back(me.blocksInWindow(w));
        if (blocks.empty())
            continue;
        const ArchSpec arch = ArchSpec::rtx4090();
        const SelectorDecision base = selectKernel(blocks, arch);
        for (size_t w = 0; w < blocks.size();
             w += std::max<size_t>(1, blocks.size() / 7)) {
            std::vector<int64_t> grown = blocks;
            ++grown[w];
            const SelectorDecision d = selectKernel(grown, arch);
            EXPECT_GE(d.makespanBase, base.makespanBase)
                << "window " << w;
        }
    }
}

class CostModelProperties : public ::testing::Test
{
  protected:
    CostModel cm{ArchSpec::rtx4090()};

    TbWork
    baseWork()
    {
        TbWork w;
        w.hmma = 100.0;
        w.imad = 500.0;
        w.ldg = 200.0;
        w.bytesL2Hit = 5e5;
        w.bytesDram = 1e5;
        w.stallCycles = 1000.0;
        w.execSerialFrac = 0.5;
        w.memSerialFrac = 0.5;
        w.memEfficiency = 0.8;
        return w;
    }
};

TEST_F(CostModelProperties, EveryCounterIncreasesCycles)
{
    const double base = cm.tbCycles(baseWork());
    for (int knob = 0; knob < 7; ++knob) {
        TbWork w = baseWork();
        switch (knob) {
          case 0:
            w.hmma *= 2;
            break;
          case 1:
            w.imad *= 2;
            break;
          case 2:
            w.ldg *= 2;
            break;
          case 3:
            w.bytesDram *= 2;
            break;
          case 4:
            w.bytesL2Hit *= 2;
            break;
          case 5:
            w.stallCycles *= 2;
            break;
          case 6:
            w.atom += 100;
            break;
        }
        EXPECT_GT(cm.tbCycles(w), base) << "knob " << knob;
    }
}

TEST_F(CostModelProperties, EfficiencyAndOverlapReduceCycles)
{
    TbWork w = baseWork();
    TbWork better = w;
    better.memEfficiency = 0.95;
    EXPECT_LT(cm.tbCycles(better), cm.tbCycles(w));

    TbWork overlapped = w;
    overlapped.execSerialFrac = 0.1;
    overlapped.memSerialFrac = 0.1;
    EXPECT_LT(cm.tbCycles(overlapped), cm.tbCycles(w));
}

TEST_F(CostModelProperties, FewerActiveSmsMoreBandwidthEach)
{
    // A thread block in a tiny grid gets a larger bandwidth share.
    TbWork w = baseWork();
    EXPECT_LT(cm.tbCycles(w, 8.0), cm.tbCycles(w, 128.0));
}

TEST_F(CostModelProperties, SmallLaunchUsesActiveSmShare)
{
    TbWork w = baseWork();
    std::vector<TbWork> small(4, w), large(512, w);
    LaunchResult rs = cm.launch("s", small, 1.0, 0.0);
    LaunchResult rl = cm.launch("l", large, 1.0, 0.0);
    // Per-block residency is shorter in the small launch (its 4
    // blocks split the memory system 4 ways, not 128).
    const double per_block_small = rs.makespanCycles;
    const double per_block_large =
        rl.makespanCycles / (512.0 / 128.0);
    EXPECT_LT(per_block_small, per_block_large);
}

TEST_F(CostModelProperties, LaunchBusyCyclesConserveWork)
{
    // 256 blocks saturate all 128 SMs, so the launch uses the same
    // full-device bandwidth share as the tbCycles default.
    std::vector<TbWork> tbs(256, baseWork());
    LaunchResult r = cm.launch("k", tbs, 1.0, 0.0);
    const double total_busy =
        std::accumulate(r.smBusyCycles.begin(),
                        r.smBusyCycles.end(), 0.0);
    EXPECT_NEAR(total_busy, 256.0 * cm.tbCycles(baseWork()), 1e-6);
}

TEST_F(CostModelProperties, TbWorkAddAccumulates)
{
    TbWork a = baseWork(), b = baseWork();
    TbWork sum = a;
    sum.add(b);
    EXPECT_DOUBLE_EQ(sum.hmma, a.hmma + b.hmma);
    EXPECT_DOUBLE_EQ(sum.bytesDram, a.bytesDram + b.bytesDram);
    EXPECT_DOUBLE_EQ(sum.stallCycles,
                     a.stallCycles + b.stallCycles);
}

TEST_F(CostModelProperties, Rtx3090TensorOpsCostMore)
{
    CostModel cm3090{ArchSpec::rtx3090()};
    TbWork w;
    w.hmma = 1000.0;
    w.execSerialFrac = 0.0;
    w.memSerialFrac = 0.0;
    w.fixedCycles = 0.0;
    w.stallCycles = 0.0;
    // GA102 retires TF32 MMA at half the Ada rate.
    EXPECT_NEAR(cm3090.tbCycles(w) / cm.tbCycles(w), 2.0, 1e-9);
}

} // namespace
} // namespace dtc
