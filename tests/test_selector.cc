/**
 * @file
 * Unit tests for the simulation-based Selector: makespan estimates,
 * approximation ratio, threshold behaviour on balanced vs skewed
 * inputs (paper Section 4.5).
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/generators.h"
#include "formats/me_tcf.h"
#include "selector/selector.h"

namespace dtc {
namespace {

TEST(Selector, EmptyInput)
{
    SelectorDecision d = selectKernel(std::vector<int64_t>{},
                                      ArchSpec::rtx4090());
    EXPECT_FALSE(d.useBalanced);
    EXPECT_DOUBLE_EQ(d.approximationRatio, 1.0);
}

TEST(Selector, UniformWindowsKeepBaseKernel)
{
    // Many equal windows: the scheduler packs them perfectly, AR ~ 1.
    std::vector<int64_t> blocks(10000, 4);
    SelectorDecision d = selectKernel(blocks, ArchSpec::rtx4090());
    EXPECT_LT(d.approximationRatio, 1.2);
    EXPECT_FALSE(d.useBalanced);
}

TEST(Selector, OneGiantWindowTriggersBalanced)
{
    std::vector<int64_t> blocks(2000, 1);
    blocks[500] = 100000;
    SelectorDecision d = selectKernel(blocks, ArchSpec::rtx4090());
    EXPECT_GT(d.approximationRatio, 10.0);
    EXPECT_TRUE(d.useBalanced);
}

TEST(Selector, MakespanBalancedIsIdealPacking)
{
    std::vector<int64_t> blocks{10, 20, 30, 40};
    ArchSpec arch = ArchSpec::rtx4090();
    SelectorDecision d = selectKernel(blocks, arch);
    EXPECT_DOUBLE_EQ(d.makespanBalanced,
                     100.0 / (arch.numSms * arch.occupancy));
}

TEST(Selector, MakespanBaseAtLeastLargestWindow)
{
    std::vector<int64_t> blocks{1, 2, 3, 500, 4};
    SelectorDecision d = selectKernel(blocks, ArchSpec::rtx4090());
    EXPECT_GE(d.makespanBase, 500.0);
}

TEST(Selector, ThresholdBoundaryRespected)
{
    std::vector<int64_t> blocks(2000, 1);
    blocks[0] = 30; // mild skew
    ArchSpec arch = ArchSpec::rtx4090();
    SelectorDecision d = selectKernel(blocks, arch, 1.2);
    // Whatever the AR, the decision must follow the threshold.
    EXPECT_EQ(d.useBalanced, d.approximationRatio > 1.2);
    // A huge threshold never balances; a tiny one always does.
    EXPECT_FALSE(selectKernel(blocks, arch, 1e9).useBalanced);
    EXPECT_TRUE(selectKernel(blocks, arch, 1e-9).useBalanced);
}

TEST(Selector, UniformRandomMatricesStayBase)
{
    // The paper calibrated the threshold on uniformly random
    // matrices where strict balance only adds overhead.
    // Window count must dwarf the device's slot count (as the
    // paper's 1000 calibration matrices did), else thread-block
    // quantization alone inflates the AR.
    Rng rng(1);
    for (int trial = 0; trial < 3; ++trial) {
        CsrMatrix m = genUniform(65536, 8.0 + trial * 4.0, rng);
        MeTcfMatrix t = MeTcfMatrix::build(m);
        SelectorDecision d = selectKernel(t, ArchSpec::rtx4090());
        EXPECT_FALSE(d.useBalanced) << trial;
    }
}

TEST(Selector, SkewedPowerLawTriggersBalanced)
{
    Rng rng(2);
    CsrMatrix m = genPowerLaw(8192, 60.0, 1.6, rng);
    MeTcfMatrix t = MeTcfMatrix::build(m);
    SelectorDecision d = selectKernel(t, ArchSpec::rtx4090());
    EXPECT_TRUE(d.useBalanced);
}

TEST(Selector, ArchitectureChangesDecisionScale)
{
    // Fewer SMs -> relatively less idle waste for the same skew.
    std::vector<int64_t> blocks(200, 1);
    blocks[0] = 300;
    SelectorDecision d4090 =
        selectKernel(blocks, ArchSpec::rtx4090());
    ArchSpec tiny = ArchSpec::rtx4090();
    tiny.numSms = 2;
    SelectorDecision dtiny = selectKernel(blocks, tiny);
    EXPECT_GT(d4090.approximationRatio, dtiny.approximationRatio);
}

TEST(Selector, RejectsNonPositiveThreshold)
{
    EXPECT_THROW(selectKernel(std::vector<int64_t>{1},
                              ArchSpec::rtx4090(), 0.0),
                 std::invalid_argument);
}

} // namespace
} // namespace dtc
