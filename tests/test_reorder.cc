/**
 * @file
 * Unit tests for the reordering stack: MinHash/LSH/Jaccard, TCA
 * (both hierarchies), Louvain, METIS-like partitioning, classic
 * orderings, and the Fig. 13 relationships (TCA raises MeanNnzTC
 * above the baselines).
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/generators.h"
#include "formats/sgt.h"
#include "matrix/coo.h"
#include "reorder/louvain.h"
#include "reorder/metis_like.h"
#include "reorder/minhash.h"
#include "reorder/orderings.h"
#include "reorder/tca.h"

namespace dtc {
namespace {

TEST(MinHash, IdenticalSetsIdenticalSignatures)
{
    MinHasher h(16, 1);
    std::vector<int32_t> a{3, 7, 19, 42};
    std::vector<uint32_t> sa(16), sb(16);
    h.signature(a.data(), a.data() + a.size(), sa.data());
    h.signature(a.data(), a.data() + a.size(), sb.data());
    EXPECT_EQ(sa, sb);
}

TEST(MinHash, SignatureAgreementTracksJaccard)
{
    MinHasher h(128, 2);
    std::vector<int32_t> a, b;
    for (int32_t i = 0; i < 100; ++i)
        a.push_back(i);
    for (int32_t i = 50; i < 150; ++i)
        b.push_back(i); // Jaccard = 50/150 = 1/3
    std::vector<uint32_t> sa(128), sb(128);
    h.signature(a.data(), a.data() + a.size(), sa.data());
    h.signature(b.data(), b.data() + b.size(), sb.data());
    int agree = 0;
    for (int i = 0; i < 128; ++i)
        if (sa[i] == sb[i])
            agree++;
    EXPECT_NEAR(agree / 128.0, 1.0 / 3.0, 0.12);
}

TEST(MinHash, EmptySetSignatureIsSentinel)
{
    MinHasher h(8, 3);
    std::vector<uint32_t> s(8);
    h.signature(nullptr, nullptr, s.data());
    for (uint32_t v : s)
        EXPECT_EQ(v, std::numeric_limits<uint32_t>::max());
}

TEST(Jaccard, ExactValues)
{
    std::vector<int32_t> a{1, 2, 3, 4};
    std::vector<int32_t> b{3, 4, 5, 6};
    EXPECT_DOUBLE_EQ(jaccardSorted(a.data(), a.data() + 4, b.data(),
                                   b.data() + 4),
                     2.0 / 6.0);
    EXPECT_DOUBLE_EQ(jaccardSorted(a.data(), a.data() + 4, a.data(),
                                   a.data() + 4),
                     1.0);
    EXPECT_DOUBLE_EQ(
        jaccardSorted(a.data(), a.data(), b.data(), b.data()), 0.0);
}

TEST(Lsh, FindsSimilarPairs)
{
    // Two groups of near-identical sets must produce in-group pairs.
    MinHasher h(32, 4);
    std::vector<std::vector<int32_t>> sets;
    for (int g = 0; g < 2; ++g) {
        for (int i = 0; i < 4; ++i) {
            std::vector<int32_t> s;
            for (int32_t c = 0; c < 30; ++c)
                s.push_back(g * 1000 + c);
            s.push_back(g * 1000 + 100 + i); // tiny difference
            sets.push_back(s);
        }
    }
    std::vector<uint32_t> sigs(sets.size() * 32);
    for (size_t i = 0; i < sets.size(); ++i)
        h.signature(sets[i].data(), sets[i].data() + sets[i].size(),
                    sigs.data() + i * 32);
    auto pairs = lshCandidatePairs(sigs, sets.size(), 32, 8, 1000);
    EXPECT_FALSE(pairs.empty());
    for (auto [a, b] : pairs)
        EXPECT_EQ(a / 4, b / 4); // never across groups
}

TEST(Tca, PermutationIsValid)
{
    Rng rng(1);
    CsrMatrix m = shuffleLabels(genCommunity(512, 8, 16.0, 0.9, rng),
                                rng);
    TcaResult r = tcaReorder(m);
    EXPECT_TRUE(isPermutation(r.permutation, m.rows()));
    EXPECT_GT(r.numClusters, 0);
}

TEST(Tca, RecoversPlantedRowGroups)
{
    // 32 groups of 16 identical-pattern rows, shuffled: TCA should
    // push MeanNnzTC back near the unshuffled value.
    Rng rng(2);
    CooMatrix coo(512, 512);
    for (int32_t g = 0; g < 32; ++g) {
        for (int32_t i = 0; i < 16; ++i) {
            for (int32_t c = 0; c < 8; ++c)
                coo.add(g * 16 + i, g * 16 + c, 1.0f);
        }
    }
    CsrMatrix ideal = CsrMatrix::fromCoo(coo);
    const double ideal_mean = sgtCondense(ideal).meanNnzTc;

    CsrMatrix shuffled = shuffleLabels(ideal, rng);
    const double shuffled_mean = sgtCondense(shuffled).meanNnzTc;
    EXPECT_LT(shuffled_mean, ideal_mean * 0.6);

    auto perm = tcaReorder(shuffled).permutation;
    const double recovered =
        sgtCondense(shuffled.permuteRows(perm)).meanNnzTc;
    EXPECT_GT(recovered, shuffled_mean * 1.5);
    EXPECT_GT(recovered, ideal_mean * 0.7);
}

TEST(Tca, ImprovesMeanNnzTcOnCommunityGraphs)
{
    Rng rng(3);
    CsrMatrix m = shuffleLabels(
        genCommunity(2048, 32, 40.0, 0.95, rng), rng);
    const double before = sgtCondense(m).meanNnzTc;
    auto perm = tcaReorder(m).permutation;
    const double after =
        sgtCondense(m.permuteRows(perm)).meanNnzTc;
    EXPECT_GT(after, before * 1.1);
}

TEST(Tca, CompetitiveOnUniformCommunities)
{
    // On idealized equal-similarity communities any community-pure
    // grouping (Louvain, LSH64) is near-optimal; TCA must land in
    // the same band and clearly beat structure-blind orderings.
    Rng rng(4);
    CsrMatrix m = shuffleLabels(
        genCommunity(2048, 32, 40.0, 0.95, rng), rng);
    auto mean = [&](ReorderMethod method) {
        auto perm = computeReordering(m, method);
        return sgtCondense(m.permuteRows(perm)).meanNnzTc;
    };
    const double tca = mean(ReorderMethod::Tca);
    EXPECT_GE(tca, mean(ReorderMethod::Metis) * 0.9);
    EXPECT_GE(tca, mean(ReorderMethod::Louvain) * 0.9);
    EXPECT_GE(tca, mean(ReorderMethod::Lsh64) * 0.9);
    EXPECT_GT(tca, 2.0 * mean(ReorderMethod::Identity));
}

TEST(Tca, BeatsLsh64OnGradedSimilarity)
{
    // Fig. 13a's mechanism: when similarity is graded — 16-row
    // sub-groups (Jaccard 1.0 inside) nested in 64-row super-groups
    // (Jaccard ~0.33 across sub-groups) — a 64-row cluster limit
    // merges across sub-groups and dilutes the windows, while TCA's
    // 16-row limit keeps windows sub-group-pure.
    Rng rng(5);
    CooMatrix coo(2048, 2048);
    for (int32_t sg = 0; sg < 32; ++sg) {      // super-groups
        for (int32_t sub = 0; sub < 4; ++sub) { // sub-groups of 16
            for (int32_t i = 0; i < 16; ++i) {
                const int32_t row = sg * 64 + sub * 16 + i;
                for (int32_t c = 0; c < 8; ++c) {
                    coo.add(row, sg * 64 + c, 1.0f); // shared cols
                    coo.add(row, sg * 64 + 8 + sub * 8 + c,
                            1.0f); // sub-group cols
                }
            }
        }
    }
    CsrMatrix m = shuffleLabels(CsrMatrix::fromCoo(coo), rng);
    auto mean = [&](ReorderMethod method) {
        auto perm = computeReordering(m, method);
        return sgtCondense(m.permuteRows(perm)).meanNnzTc;
    };
    const double tca = mean(ReorderMethod::Tca);
    const double lsh64 = mean(ReorderMethod::Lsh64);
    EXPECT_GT(tca, lsh64 * 1.2);
    EXPECT_GT(tca, mean(ReorderMethod::Identity) * 2.0);
}

TEST(Tca, TcuOnlySkipsHierarchyTwo)
{
    Rng rng(5);
    CsrMatrix m = shuffleLabels(
        genCommunity(1024, 16, 24.0, 0.9, rng), rng);
    TcaParams p;
    p.cacheAware = false;
    TcaResult r = tcaReorder(m, p);
    EXPECT_TRUE(isPermutation(r.permutation, m.rows()));
    EXPECT_EQ(r.numSuperClusters, r.numClusters);
    EXPECT_EQ(r.candidatePairsH2, 0);
}

TEST(Tca, EmptyAndTinyMatrices)
{
    CsrMatrix empty(0, 0);
    EXPECT_TRUE(tcaReorder(empty).permutation.empty());
    CsrMatrix one(1, 1);
    auto r = tcaReorder(one);
    EXPECT_TRUE(isPermutation(r.permutation, 1));
}

TEST(Louvain, FindsPlantedCommunities)
{
    Rng rng(6);
    CsrMatrix m = genCommunity(1024, 8, 20.0, 0.95, rng);
    LouvainResult r = louvainReorder(m);
    EXPECT_TRUE(isPermutation(r.permutation, m.rows()));
    EXPECT_GT(r.modularity, 0.5);
    EXPECT_GE(r.numCommunities, 4);
    EXPECT_LE(r.numCommunities, 400);
}

TEST(Louvain, CommunityLabelsConsistentWithPermutation)
{
    Rng rng(7);
    CsrMatrix m = genCommunity(512, 4, 12.0, 0.9, rng);
    LouvainResult r = louvainReorder(m);
    // Permutation groups rows by community: labels must be
    // non-interleaved along the permutation.
    std::set<int32_t> closed;
    int32_t current = -1;
    for (int32_t row : r.permutation) {
        int32_t c = r.community[row];
        if (c != current) {
            EXPECT_EQ(closed.count(c), 0u);
            if (current >= 0)
                closed.insert(current);
            current = c;
        }
    }
}

TEST(MetisLike, ProducesValidPermutation)
{
    Rng rng(8);
    CsrMatrix m = genCommunity(1024, 8, 16.0, 0.9, rng);
    auto perm = metisLikeReorder(m);
    EXPECT_TRUE(isPermutation(perm, m.rows()));
}

TEST(MetisLike, PartsGroupNeighbours)
{
    // On a strongly banded graph, partition-ordered neighbours stay
    // close: mean |pos(u) - pos(v)| over edges far below random.
    Rng rng(9);
    CsrMatrix ideal = genBanded(2048, 8, 6.0, rng);
    CsrMatrix m = shuffleLabels(ideal, rng);
    MetisParams params;
    params.targetPartSize = 128;
    auto perm = metisLikeReorder(m, params);
    std::vector<int64_t> pos(static_cast<size_t>(m.rows()));
    for (size_t i = 0; i < perm.size(); ++i)
        pos[perm[i]] = static_cast<int64_t>(i);
    double dist = 0.0;
    for (int64_t r = 0; r < m.rows(); ++r)
        for (int64_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1]; ++k)
            dist += std::abs(pos[r] - pos[m.colIdx()[k]]);
    dist /= static_cast<double>(m.nnz());
    EXPECT_LT(dist, 2048.0 / 3.0 * 0.8); // random baseline ~n/3
}

TEST(Orderings, DegreeSortsDescending)
{
    Rng rng(10);
    CsrMatrix m = genPowerLaw(512, 8.0, 1.4, rng);
    auto perm = degreeOrder(m);
    EXPECT_TRUE(isPermutation(perm, m.rows()));
    for (size_t i = 1; i < perm.size(); ++i)
        EXPECT_GE(m.rowLength(perm[i - 1]), m.rowLength(perm[i]));
}

TEST(Orderings, RcmReducesBandwidth)
{
    Rng rng(11);
    CsrMatrix ideal = genBanded(1024, 6, 4.0, rng);
    CsrMatrix m = shuffleLabels(ideal, rng);
    auto bandwidth = [](const CsrMatrix& a) {
        int64_t bw = 0;
        for (int64_t r = 0; r < a.rows(); ++r)
            for (int64_t k = a.rowPtr()[r]; k < a.rowPtr()[r + 1];
                 ++k)
                bw = std::max(bw, std::abs(a.colIdx()[k] - r));
        return bw;
    };
    auto perm = rcmOrder(m);
    EXPECT_TRUE(isPermutation(perm, m.rows()));
    CsrMatrix reordered = m.permuteSymmetric(perm);
    EXPECT_LT(bandwidth(reordered), bandwidth(m) / 4);
}

TEST(Orderings, DispatcherCoversAllMethods)
{
    Rng rng(12);
    CsrMatrix m = genCommunity(256, 4, 10.0, 0.85, rng);
    for (ReorderMethod method :
         {ReorderMethod::Identity, ReorderMethod::Degree,
          ReorderMethod::Rcm, ReorderMethod::Metis,
          ReorderMethod::Louvain, ReorderMethod::Lsh64,
          ReorderMethod::TcaTcuOnly, ReorderMethod::Tca}) {
        auto perm = computeReordering(m, method);
        EXPECT_TRUE(isPermutation(perm, m.rows()))
            << reorderMethodName(method);
    }
}

TEST(Orderings, IsPermutationRejectsBadVectors)
{
    EXPECT_FALSE(isPermutation({0, 0, 1}, 3));
    EXPECT_FALSE(isPermutation({0, 1}, 3));
    EXPECT_FALSE(isPermutation({0, 1, 3}, 3));
    EXPECT_TRUE(isPermutation({2, 0, 1}, 3));
}

} // namespace
} // namespace dtc
