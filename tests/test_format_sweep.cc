/**
 * @file
 * Round-trip and cross-format property sweeps: every condensed
 * format must reconstruct the original matrix for every generator
 * class (parameterized), and the format family must agree on
 * fundamental counts.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/generators.h"
#include "formats/bell.h"
#include "formats/cvse.h"
#include "formats/me_tcf.h"
#include "formats/sgt.h"
#include "formats/tcf.h"
#include "kernels/kernel.h"
#include "testing/oracle.h"

namespace dtc {
namespace {

enum class Gen { Uniform, PowerLaw, Community, Banded, BlockDiag,
                 Components };

const char*
genName(Gen g)
{
    switch (g) {
      case Gen::Uniform:
        return "Uniform";
      case Gen::PowerLaw:
        return "PowerLaw";
      case Gen::Community:
        return "Community";
      case Gen::Banded:
        return "Banded";
      case Gen::BlockDiag:
        return "BlockDiag";
      case Gen::Components:
        return "Components";
    }
    return "?";
}

CsrMatrix
makeMatrix(Gen g, Rng& rng)
{
    switch (g) {
      case Gen::Uniform:
        return genUniform(311, 7.0, rng);
      case Gen::PowerLaw:
        return genPowerLaw(293, 6.0, 1.4, rng);
      case Gen::Community:
        return genCommunity(320, 5, 18.0, 0.9, rng);
      case Gen::Banded:
        return genBanded(307, 9, 5.0, rng);
      case Gen::BlockDiag:
        return genBlockDiagonal(288, 24, 0.3, rng);
      case Gen::Components:
        return genComponents(301, 5, 19, 0.3, rng);
    }
    return CsrMatrix();
}

class FormatSweep : public ::testing::TestWithParam<Gen>
{
  protected:
    CsrMatrix
    matrix()
    {
        Rng rng(static_cast<uint64_t>(GetParam()) * 17 + 5);
        return shuffleLabels(makeMatrix(GetParam(), rng), rng);
    }
};

TEST_P(FormatSweep, MeTcfRoundTrips)
{
    CsrMatrix m = matrix();
    MeTcfMatrix t = MeTcfMatrix::build(m);
    EXPECT_NO_THROW(t.validate());
    EXPECT_TRUE(m == t.toCsr());
}

TEST_P(FormatSweep, TcfAndMeTcfAgreeOnBlockCounts)
{
    CsrMatrix m = matrix();
    TcfMatrix tcf = TcfMatrix::build(m);
    MeTcfMatrix me = MeTcfMatrix::build(m);
    EXPECT_EQ(tcf.numTcBlocks(), me.numTcBlocks());
    EXPECT_DOUBLE_EQ(tcf.meanNnzTc(), me.meanNnzTc());
}

TEST_P(FormatSweep, MeTcfAlwaysSmallerThanTcf)
{
    CsrMatrix m = matrix();
    EXPECT_LT(MeTcfMatrix::build(m).indexElementCount(),
              TcfMatrix::build(m).indexElementCount());
}

TEST_P(FormatSweep, BellPreservesNnz)
{
    CsrMatrix m = matrix();
    auto res = bellTryBuild(m, 16, 1ll << 40);
    ASSERT_FALSE(res.oom);
    EXPECT_EQ(res.matrix.nnz(), m.nnz());
    EXPECT_GT(res.matrix.fillEfficiency(), 0.0);
    EXPECT_LE(res.matrix.fillEfficiency(), 1.0);
}

TEST_P(FormatSweep, CvseCountsConsistent)
{
    CsrMatrix m = matrix();
    CvseMatrix v = CvseMatrix::build(m, 8);
    EXPECT_EQ(v.nnz(), m.nnz());
    EXPECT_EQ(v.panelOffset().back(), v.numVectors());
    EXPECT_EQ(static_cast<int64_t>(v.values().size()),
              v.numVectors() * 8);
}

TEST_P(FormatSweep, EveryRegisteredKernelConformsOnThisClass)
{
    // Enumerated from the registry (no hard-coded kernel list): each
    // kernel either refuses this matrix class or agrees with the
    // reference at its native precision — the same judgement the
    // fuzzing oracle applies.
    CsrMatrix m = matrix();
    const DenseMatrix b = testing::makeDenseOperand(
        m.cols(), 16, static_cast<uint64_t>(GetParam()) + 99);
    for (const KernelTraits& kt : allKernelTraits()) {
        auto kernel = makeKernel(kt.kind);
        const Refusal r = kernel->prepare(m);
        if (!r.ok())
            continue;
        DenseMatrix c(m.rows(), 16);
        kernel->compute(b, c);
        EXPECT_EQ(testing::judgeResult(m, b, c, kt.nativePrecision,
                                       kt.bitExactRounded, 8.0),
                  "")
            << kernel->name();
    }
}

TEST_P(FormatSweep, SgtBlockBoundsHold)
{
    // NumTCBlocks is bounded below by ceil(distinct/8) per window
    // and above by NNZ (each block holds >= 1 nonzero).
    CsrMatrix m = matrix();
    SgtResult r = sgtCondense(m);
    EXPECT_LE(r.numTcBlocks, m.nnz());
    EXPECT_GE(r.meanNnzTc, 1.0 - 1e-9);
    EXPECT_LE(r.meanNnzTc, 128.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, FormatSweep,
    ::testing::Values(Gen::Uniform, Gen::PowerLaw, Gen::Community,
                      Gen::Banded, Gen::BlockDiag, Gen::Components),
    [](const ::testing::TestParamInfo<Gen>& info) {
        return genName(info.param);
    });

} // namespace
} // namespace dtc
