/**
 * @file
 * Unit tests for matrix types: COO canonicalization/symmetrization,
 * CSR construction, transpose, permutations, stats.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/generators.h"
#include "matrix/coo.h"
#include "matrix/csr.h"
#include "matrix/dense.h"
#include "matrix/stats.h"

namespace dtc {
namespace {

CooMatrix
smallCoo()
{
    CooMatrix coo(4, 4);
    coo.add(0, 1, 1.0f);
    coo.add(2, 3, 2.0f);
    coo.add(0, 1, 0.5f); // duplicate of (0,1)
    coo.add(3, 0, 3.0f);
    coo.add(1, 1, 4.0f);
    return coo;
}

TEST(Coo, CanonicalizeSortsAndMerges)
{
    CooMatrix coo = smallCoo();
    coo.canonicalize();
    ASSERT_EQ(coo.nnz(), 4);
    EXPECT_EQ(coo.rowIndices()[0], 0);
    EXPECT_EQ(coo.colIndices()[0], 1);
    EXPECT_FLOAT_EQ(coo.values()[0], 1.5f); // merged duplicate
    // Sorted by (row, col).
    for (int64_t i = 1; i < coo.nnz(); ++i) {
        EXPECT_TRUE(coo.rowIndices()[i - 1] < coo.rowIndices()[i] ||
                    (coo.rowIndices()[i - 1] == coo.rowIndices()[i] &&
                     coo.colIndices()[i - 1] < coo.colIndices()[i]));
    }
}

TEST(Coo, AddOutOfRangeThrows)
{
    CooMatrix coo(2, 2);
    EXPECT_THROW(coo.add(2, 0, 1.0f), std::invalid_argument);
    EXPECT_THROW(coo.add(0, -1, 1.0f), std::invalid_argument);
}

TEST(Coo, SymmetrizeMirrorsOffDiagonal)
{
    CooMatrix coo(3, 3);
    coo.add(0, 1, 2.0f);
    coo.add(2, 2, 5.0f);
    coo.symmetrize();
    CsrMatrix m = CsrMatrix::fromCoo(coo);
    EXPECT_EQ(m.nnz(), 3); // (0,1), (1,0), (2,2)
    auto d = m.toDense();
    EXPECT_FLOAT_EQ(d[0 * 3 + 1], 2.0f);
    EXPECT_FLOAT_EQ(d[1 * 3 + 0], 2.0f);
    EXPECT_FLOAT_EQ(d[2 * 3 + 2], 5.0f);
}

TEST(Csr, FromCooBuildsSortedRows)
{
    CsrMatrix m = CsrMatrix::fromCoo(smallCoo());
    EXPECT_EQ(m.rows(), 4);
    EXPECT_EQ(m.nnz(), 4);
    EXPECT_NO_THROW(m.validate());
    EXPECT_EQ(m.rowLength(0), 1);
    EXPECT_EQ(m.rowLength(1), 1);
    EXPECT_EQ(m.rowLength(2), 1);
    EXPECT_EQ(m.rowLength(3), 1);
}

TEST(Csr, RoundTripThroughCoo)
{
    Rng rng(1);
    CsrMatrix m = genUniform(200, 6.0, rng);
    CsrMatrix back = CsrMatrix::fromCoo(m.toCoo());
    EXPECT_TRUE(m == back);
}

TEST(Csr, TransposeTwiceIsIdentity)
{
    Rng rng(2);
    CsrMatrix m = genPowerLaw(300, 5.0, 1.2, rng);
    CsrMatrix t = m.transposed();
    EXPECT_NO_THROW(t.validate());
    EXPECT_TRUE(m == t.transposed());
}

TEST(Csr, TransposeMatchesDense)
{
    CsrMatrix m = CsrMatrix::fromCoo(smallCoo());
    auto d = m.toDense();
    auto dt = m.transposed().toDense();
    for (int64_t r = 0; r < 4; ++r)
        for (int64_t c = 0; c < 4; ++c)
            EXPECT_FLOAT_EQ(d[r * 4 + c], dt[c * 4 + r]);
}

TEST(Csr, PermuteRowsMovesRows)
{
    CsrMatrix m = CsrMatrix::fromCoo(smallCoo());
    std::vector<int32_t> perm{3, 2, 1, 0};
    CsrMatrix p = m.permuteRows(perm);
    EXPECT_NO_THROW(p.validate());
    auto d = m.toDense();
    auto dp = p.toDense();
    for (int64_t r = 0; r < 4; ++r)
        for (int64_t c = 0; c < 4; ++c)
            EXPECT_FLOAT_EQ(dp[r * 4 + c], d[perm[r] * 4 + c]);
}

TEST(Csr, PermuteSymmetricRelabels)
{
    Rng rng(3);
    CsrMatrix m = genUniform(50, 4.0, rng);
    auto perm = randomPermutation(50, rng);
    CsrMatrix p = m.permuteSymmetric(perm);
    EXPECT_NO_THROW(p.validate());
    EXPECT_EQ(p.nnz(), m.nnz());
    auto d = m.toDense();
    auto dp = p.toDense();
    for (int64_t r = 0; r < 50; ++r)
        for (int64_t c = 0; c < 50; ++c)
            EXPECT_FLOAT_EQ(dp[r * 50 + c],
                            d[perm[r] * 50 + perm[c]]);
}

TEST(Csr, PermuteSymmetricPreservesPatternSymmetry)
{
    Rng rng(4);
    CsrMatrix m = genUniform(64, 5.0, rng); // symmetrized by generator
    auto perm = randomPermutation(64, rng);
    CsrMatrix p = m.permuteSymmetric(perm);
    CsrMatrix pt = p.transposed();
    // Structure symmetric: pattern of p == pattern of p^T.
    EXPECT_EQ(p.rowPtr(), pt.rowPtr());
    EXPECT_EQ(p.colIdx(), pt.colIdx());
}

TEST(Csr, FromPartsValidates)
{
    EXPECT_THROW(CsrMatrix::fromParts(2, 2, {0, 1}, {0}, {1.0f}),
                 std::logic_error); // rowPtr too short
    EXPECT_THROW(
        CsrMatrix::fromParts(2, 2, {0, 1, 2}, {0, 5}, {1.0f, 1.0f}),
        std::logic_error); // column out of range
    EXPECT_NO_THROW(
        CsrMatrix::fromParts(2, 2, {0, 1, 2}, {0, 1}, {1.0f, 1.0f}));
}

TEST(Csr, IndexElementCountMatchesFormula)
{
    Rng rng(5);
    CsrMatrix m = genUniform(100, 4.0, rng);
    EXPECT_EQ(m.indexElementCount(), m.rows() + 1 + m.nnz());
}

TEST(Dense, FillAndTranspose)
{
    DenseMatrix m(3, 2);
    m.at(0, 1) = 5.0f;
    m.at(2, 0) = -1.0f;
    DenseMatrix t = m.transposed();
    EXPECT_EQ(t.rows(), 2);
    EXPECT_EQ(t.cols(), 3);
    EXPECT_FLOAT_EQ(t.at(1, 0), 5.0f);
    EXPECT_FLOAT_EQ(t.at(0, 2), -1.0f);
}

TEST(Dense, MaxAbsDiff)
{
    DenseMatrix a(2, 2), b(2, 2);
    a.at(1, 1) = 3.0f;
    b.at(1, 1) = 2.5f;
    EXPECT_DOUBLE_EQ(a.maxAbsDiff(b), 0.5);
}

TEST(Stats, ComputesRowLengthStatistics)
{
    CooMatrix coo(4, 4);
    coo.add(0, 0, 1.0f);
    coo.add(0, 1, 1.0f);
    coo.add(0, 2, 1.0f);
    coo.add(1, 0, 1.0f);
    CsrMatrix m = CsrMatrix::fromCoo(coo);
    MatrixStats s = computeStats(m);
    EXPECT_EQ(s.nnz, 4);
    EXPECT_DOUBLE_EQ(s.avgRowLength, 1.0);
    EXPECT_EQ(s.maxRowLength, 3);
    EXPECT_EQ(s.minRowLength, 0);
    EXPECT_EQ(s.emptyRows, 2);
    EXPECT_GT(s.rowLengthCv, 1.0);
}

TEST(Stats, UniformMatrixLowCv)
{
    Rng rng(6);
    CsrMatrix m = genUniform(2000, 16.0, rng);
    MatrixStats s = computeStats(m);
    EXPECT_NEAR(s.avgRowLength, 16.0, 2.0);
    EXPECT_LT(s.rowLengthCv, 0.5);
}

TEST(Stats, PowerLawHighCv)
{
    Rng rng(7);
    CsrMatrix m = genPowerLaw(2000, 16.0, 1.5, rng);
    MatrixStats s = computeStats(m);
    EXPECT_GT(s.rowLengthCv, 1.0);
}

} // namespace
} // namespace dtc
