/**
 * @file
 * Tests for the hardened pipeline: the error taxonomy, resource
 * budgets, deterministic fault injection, and the graceful-degradation
 * paths they enable (tuner terminal fallback, trainer mid-training
 * kernel replacement, selector degenerate-input handling).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/check.h"
#include "common/env.h"
#include "common/error.h"
#include "common/fault.h"
#include "common/fault_sites.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "datasets/generators.h"
#include "formats/me_tcf.h"
#include "formats/sgt.h"
#include "gnn/trainer.h"
#include "kernels/kernel.h"
#include "selector/selector.h"
#include "tuner/tuner.h"

namespace dtc {
namespace {

/** Disarms every fault on entry and exit so tests stay independent. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { fault::disarmAll(); }
    void TearDown() override { fault::disarmAll(); }

    CostModel cm{ArchSpec::rtx4090()};
    Rng rng{77};
};

// ---------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------

TEST(ErrorTaxonomy, CodeNamesRoundTrip)
{
    for (ErrorCode c :
         {ErrorCode::InvalidInput, ErrorCode::CorruptData,
          ErrorCode::ResourceExhausted, ErrorCode::Unsupported,
          ErrorCode::Internal}) {
        EXPECT_EQ(parseErrorCode(errorCodeName(c)), c);
    }
    // Case-insensitive.
    EXPECT_EQ(parseErrorCode("resourceexhausted"),
              ErrorCode::ResourceExhausted);
    EXPECT_THROW(parseErrorCode("NotACode"), DtcError);
}

TEST(ErrorTaxonomy, DtcErrorIsInvalidArgument)
{
    // Legacy catch sites use std::invalid_argument; the taxonomy must
    // stay visible through them.
    try {
        throw DtcError(ErrorCode::CorruptData, "boom",
                       ErrorContext{.component = "serialize",
                                    .byteOffset = 42});
    } catch (const std::invalid_argument& e) {
        const auto* d = dynamic_cast<const DtcError*>(&e);
        ASSERT_NE(d, nullptr);
        EXPECT_EQ(d->code(), ErrorCode::CorruptData);
        EXPECT_EQ(d->context().component, "serialize");
        EXPECT_EQ(d->context().byteOffset, 42);
        EXPECT_NE(std::string(e.what()).find("boom"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("CorruptData"),
                  std::string::npos);
    }
}

TEST(ErrorTaxonomy, InternalErrorIsLogicError)
{
    try {
        throw DtcInternalError("invariant");
    } catch (const std::logic_error& e) {
        const auto* d = dynamic_cast<const DtcInternalError*>(&e);
        ASSERT_NE(d, nullptr);
        EXPECT_EQ(d->code(), ErrorCode::Internal);
    }
}

TEST(ErrorTaxonomy, ChecksThrowTypedErrors)
{
    EXPECT_THROW(DTC_CHECK(false), DtcError);
    EXPECT_THROW(DTC_ASSERT(false), DtcInternalError);
    try {
        DTC_CHECK_CODE(false, ErrorCode::Unsupported, "nope " << 7);
        FAIL() << "should have thrown";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Unsupported);
        EXPECT_NE(std::string(e.what()).find("nope 7"),
                  std::string::npos);
    }
}

TEST(ErrorTaxonomy, RefusalShimsMatchStringCallSites)
{
    Refusal ok = Refusal::accept();
    EXPECT_TRUE(ok.ok());
    EXPECT_TRUE(ok.empty());
    EXPECT_EQ(ok, "");

    Refusal r = Refusal::refuse(ErrorCode::ResourceExhausted, "OOM");
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.empty());
    EXPECT_NE(r, "");
    EXPECT_EQ(r, "OOM");
    const std::string as_string = r;
    EXPECT_EQ(as_string, "OOM");
    EXPECT_EQ(r.code, ErrorCode::ResourceExhausted);
}

// ---------------------------------------------------------------------
// Resource budgets
// ---------------------------------------------------------------------

TEST(ResourceBudget, DefaultsComeFromArch)
{
    const ResourceBudget& b = ResourceBudget::defaults();
    EXPECT_EQ(b.conversionBytes, ArchSpec::rtx4090().deviceMemBytes);
    EXPECT_EQ(b.stagingBytes, ArchSpec::rtx4090().hostMemBytes);
    EXPECT_EQ(b.maxStructuredDim, 5000);
}

TEST(ResourceBudget, ScopedOverrideAppliesAndRestores)
{
    const int64_t before = ResourceBudget::current().conversionBytes;
    {
        ResourceBudget tight = ResourceBudget::defaults();
        tight.conversionBytes = 1024;
        ScopedResourceBudget scope(tight);
        EXPECT_EQ(ResourceBudget::current().conversionBytes, 1024);
        EXPECT_THROW(ResourceBudget::current().checkConversion(
                         2048, "test"),
                     DtcError);
    }
    EXPECT_EQ(ResourceBudget::current().conversionBytes, before);
}

TEST(ResourceBudget, CheckThrowsResourceExhausted)
{
    ResourceBudget tiny = ResourceBudget::defaults();
    tiny.stagingBytes = 10;
    ScopedResourceBudget scope(tiny);
    try {
        ResourceBudget::current().checkStaging(100, "test");
        FAIL() << "should have thrown";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::ResourceExhausted);
    }
}

TEST_F(FaultTest, TightConversionBudgetRefusesEveryFormatKernel)
{
    CsrMatrix a = genUniform(256, 8.0, rng);
    ResourceBudget tight = ResourceBudget::defaults();
    tight.conversionBytes = 64; // smaller than any format
    ScopedResourceBudget scope(tight);
    for (KernelKind kind :
         {KernelKind::Dtc, KernelKind::Tcgnn, KernelKind::Sputnik,
          KernelKind::SparseTir, KernelKind::BlockSpmm32,
          KernelKind::VectorSparse4, KernelKind::FlashLlmV1}) {
        auto kernel = makeKernel(kind);
        Refusal r = kernel->prepare(a);
        ASSERT_FALSE(r.ok()) << kernel->name();
        EXPECT_EQ(r.code, ErrorCode::ResourceExhausted)
            << kernel->name();
    }
}

TEST_F(FaultTest, StructuredDimBudgetDrivesSpartaRefusal)
{
    // SparTA's 5,000-dim cuSPARSELt limit now lives in the budget:
    // shrinking it makes a small matrix refuse, raising it un-refuses
    // the paper's 6,000-dim case.
    CsrMatrix small = genUniform(300, 4.0, rng);
    auto kernel = makeKernel(KernelKind::SparTA);
    EXPECT_TRUE(kernel->prepare(small).ok());

    ResourceBudget b = ResourceBudget::defaults();
    b.maxStructuredDim = 200;
    {
        ScopedResourceBudget scope(b);
        auto k2 = makeKernel(KernelKind::SparTA);
        Refusal r = k2->prepare(small);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.code, ErrorCode::Unsupported);
    }
}

// ---------------------------------------------------------------------
// Fault injection mechanics
// ---------------------------------------------------------------------

TEST_F(FaultTest, FiresOnNthSerialHitExactlyOnce)
{
    fault::arm("test.site", 3, ErrorCode::CorruptData);
    EXPECT_NO_THROW(DTC_FAULT_POINT("test.site")); // hit 1
    EXPECT_NO_THROW(DTC_FAULT_POINT("test.site")); // hit 2
    try {
        DTC_FAULT_POINT("test.site"); // hit 3: fires
        FAIL() << "should have thrown";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::CorruptData);
        EXPECT_EQ(e.context().component, "test.site");
    }
    // Each arming fires at most once.
    EXPECT_NO_THROW(DTC_FAULT_POINT("test.site"));
    EXPECT_EQ(fault::hitCount("test.site"), 4);
}

TEST_F(FaultTest, DisarmedSiteNeverFires)
{
    fault::arm("test.other", 1, ErrorCode::Internal);
    EXPECT_NO_THROW(DTC_FAULT_POINT("test.site"));
    fault::disarm("test.other");
    EXPECT_NO_THROW(DTC_FAULT_POINT("test.other"));
}

TEST_F(FaultTest, ScopedFaultDisarmsOnExit)
{
    {
        fault::ScopedFault f("test.scoped", 1,
                             ErrorCode::ResourceExhausted);
        EXPECT_THROW(DTC_FAULT_POINT("test.scoped"), DtcError);
    }
    EXPECT_NO_THROW(DTC_FAULT_POINT("test.scoped"));
}

TEST_F(FaultTest, ArmFromSpecParsesMultipleEntries)
{
    fault::armFromSpec(
        "test.one:2:CorruptData,test.two:1:ResourceExhausted");
    auto armed = fault::armedFaults();
    ASSERT_EQ(armed.size(), 2u);
    EXPECT_NO_THROW(DTC_FAULT_POINT("test.one"));
    EXPECT_THROW(DTC_FAULT_POINT("test.one"), DtcError);
    EXPECT_THROW(DTC_FAULT_POINT("test.two"), DtcError);
}

TEST_F(FaultTest, RejectsMalformedSpecs)
{
    EXPECT_THROW(fault::armFromSpec("missing-colons"), DtcError);
    EXPECT_THROW(fault::armFromSpec("site:0:Internal"), DtcError);
    EXPECT_THROW(fault::armFromSpec("site:1:Bogus"), DtcError);
}

// ---------------------------------------------------------------------
// Central fault-site registry
// ---------------------------------------------------------------------

TEST(FaultSites, RegistryIsSortedUniqueAndNonEmpty)
{
    const std::vector<std::string>& sites = fault::allFaultSites();
    ASSERT_FALSE(sites.empty());
    for (size_t i = 1; i < sites.size(); ++i)
        EXPECT_LT(sites[i - 1], sites[i]);
    // Spot-check that the constants referenced by call sites are in.
    EXPECT_NE(std::find(sites.begin(), sites.end(),
                        fault::sites::kTrainerStep),
              sites.end());
    EXPECT_NE(std::find(sites.begin(), sites.end(),
                        fault::sites::kRuntimeCompute),
              sites.end());
    EXPECT_NE(std::find(sites.begin(), sites.end(),
                        fault::sites::kTrainerCheckpointRename),
              sites.end());
}

TEST_F(FaultTest, EveryRegisteredSiteArmsAndIsValid)
{
    // Per-site driver: arming each registered site must be accepted
    // (an orphaned or typo'd registration would throw here), and the
    // validity predicate must agree with the registry.
    for (const std::string& site : fault::allFaultSites()) {
        EXPECT_TRUE(fault::isValidFaultSite(site)) << site;
        EXPECT_NO_THROW(fault::arm(site, 1, ErrorCode::Internal))
            << site;
        fault::disarm(site);
    }
}

TEST_F(FaultTest, UnknownSiteIsRejectedListingValidSites)
{
    try {
        fault::arm("no.such.site", 1, ErrorCode::Internal);
        FAIL() << "should have thrown";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidInput);
        const std::string what = e.what();
        EXPECT_NE(what.find("no.such.site"), std::string::npos);
        // The message teaches the valid vocabulary.
        EXPECT_NE(what.find("trainer.step"), std::string::npos);
        EXPECT_NE(what.find("runtime.compute"), std::string::npos);
    }
    EXPECT_THROW(fault::armFromSpec("no.such.site:1:Internal"),
                 DtcError);
}

TEST_F(FaultTest, TestAndBenchPrefixesAreExemptFromRegistry)
{
    EXPECT_TRUE(fault::isValidFaultSite("test.anything.goes"));
    EXPECT_TRUE(fault::isValidFaultSite("bench.spmm.probe"));
    EXPECT_FALSE(fault::isValidFaultSite("prod.anything"));
    EXPECT_NO_THROW(
        fault::arm("bench.spmm.probe", 1, ErrorCode::Internal));
    fault::disarm("bench.spmm.probe");
}

// ---------------------------------------------------------------------
// Validated env parsing
// ---------------------------------------------------------------------

TEST(EnvValidation, UnsetAndEmptyReturnNullopt)
{
    ASSERT_EQ(unsetenv("DTC_TEST_KNOB"), 0);
    EXPECT_FALSE(env::readInt64("DTC_TEST_KNOB", 0, 10).has_value());
    EXPECT_FALSE(
        env::readDouble("DTC_TEST_KNOB", 0.0, 1.0).has_value());
    EXPECT_FALSE(env::readString("DTC_TEST_KNOB").has_value());
    ASSERT_EQ(setenv("DTC_TEST_KNOB", "", 1), 0);
    EXPECT_FALSE(env::readInt64("DTC_TEST_KNOB", 0, 10).has_value());
    ASSERT_EQ(unsetenv("DTC_TEST_KNOB"), 0);
}

TEST(EnvValidation, GarbageNumericsThrowTypedNamingTheVariable)
{
    ASSERT_EQ(setenv("DTC_NUM_THREADS", "fuor", 1), 0);
    try {
        env::readInt64("DTC_NUM_THREADS", 1, 1024);
        FAIL() << "should have thrown";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidInput);
        const std::string what = e.what();
        EXPECT_NE(what.find("DTC_NUM_THREADS"), std::string::npos);
        EXPECT_NE(what.find("fuor"), std::string::npos);
    }
    // Trailing garbage and out-of-range are rejected, not truncated.
    ASSERT_EQ(setenv("DTC_NUM_THREADS", "4x", 1), 0);
    EXPECT_THROW(env::readInt64("DTC_NUM_THREADS", 1, 1024),
                 DtcError);
    ASSERT_EQ(setenv("DTC_NUM_THREADS", "0", 1), 0);
    EXPECT_THROW(env::readInt64("DTC_NUM_THREADS", 1, 1024),
                 DtcError);
    ASSERT_EQ(setenv("DTC_NUM_THREADS", "8", 1), 0);
    EXPECT_EQ(env::readInt64("DTC_NUM_THREADS", 1, 1024), 8);
    ASSERT_EQ(unsetenv("DTC_NUM_THREADS"), 0);

    ASSERT_EQ(setenv("DTC_GUARD_SAMPLE", "1%", 1), 0);
    EXPECT_THROW(env::readDouble("DTC_GUARD_SAMPLE", 0.0, 1.0),
                 DtcError);
    ASSERT_EQ(setenv("DTC_GUARD_SAMPLE", "2.0", 1), 0);
    EXPECT_THROW(env::readDouble("DTC_GUARD_SAMPLE", 0.0, 1.0),
                 DtcError);
    ASSERT_EQ(setenv("DTC_GUARD_SAMPLE", "0.25", 1), 0);
    EXPECT_EQ(env::readDouble("DTC_GUARD_SAMPLE", 0.0, 1.0), 0.25);
    ASSERT_EQ(unsetenv("DTC_GUARD_SAMPLE"), 0);
}

TEST_F(FaultTest, EnvUnknownFaultSiteRejectedListingValidSites)
{
    ASSERT_EQ(setenv("DTC_FAULT", "bogus.site:1:Internal", 1), 0);
    try {
        fault::reloadFromEnv();
        FAIL() << "should have thrown";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidInput);
        const std::string what = e.what();
        EXPECT_NE(what.find("bogus.site"), std::string::npos);
        EXPECT_NE(what.find("trainer.step"), std::string::npos);
    }
    // Garbage nth is a typed error too, not a silent skip.
    ASSERT_EQ(setenv("DTC_FAULT", "trainer.step:abc:Internal", 1), 0);
    EXPECT_THROW(fault::reloadFromEnv(), DtcError);
    ASSERT_EQ(unsetenv("DTC_FAULT"), 0);
    fault::reloadFromEnv();
}

TEST_F(FaultTest, EnvReloadArmsFaults)
{
    ASSERT_EQ(setenv("DTC_FAULT", "test.env:1:Unsupported", 1), 0);
    fault::reloadFromEnv();
    try {
        DTC_FAULT_POINT("test.env");
        FAIL() << "should have thrown";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Unsupported);
    }
    ASSERT_EQ(unsetenv("DTC_FAULT"), 0);
    fault::reloadFromEnv();
    EXPECT_NO_THROW(DTC_FAULT_POINT("test.env"));
}

TEST_F(FaultTest, ParallelChunkOrdinalIsDeterministic)
{
    // Arm the sgt condensation chunk fault at ordinal 2 (2048 rows /
    // windowHeight 16 / grain 64 = 2 chunks) and run the conversion
    // at 1 and 8 threads: the surfaced error must be bitwise
    // identical (same code, same message).
    CsrMatrix m = genUniform(2048, 8.0, rng);
    std::string what1, what8;
    for (int threads : {1, 8}) {
        ScopedNumThreads scope(threads);
        fault::arm("sgt.condense.chunk", 2, ErrorCode::CorruptData);
        try {
            sgtCondense(m, TcBlockShape{});
            FAIL() << "should have thrown at threads=" << threads;
        } catch (const DtcError& e) {
            EXPECT_EQ(e.code(), ErrorCode::CorruptData);
            (threads == 1 ? what1 : what8) = e.what();
        }
        fault::disarmAll();
    }
    EXPECT_EQ(what1, what8);
}

TEST_F(FaultTest, ConversionFaultSurfacesThroughPrepare)
{
    // me_tcf.convert throws inside DtcKernel::prepare; the tuner path
    // below turns it into a skip, but a direct prepare propagates.
    CsrMatrix a = genUniform(128, 4.0, rng);
    fault::ScopedFault f("me_tcf.convert", 1,
                         ErrorCode::ResourceExhausted);
    auto kernel = makeKernel(KernelKind::Dtc);
    EXPECT_THROW(kernel->prepare(a), DtcError);
}

// ---------------------------------------------------------------------
// Graceful degradation: tuner
// ---------------------------------------------------------------------

TEST_F(FaultTest, TunerSkipsFaultedCandidateAndRecordsCode)
{
    // The acceptance drill: DTC_FAULT=tuner.prepare:1:ResourceExhausted
    // hits the first candidate (DTC); tuning must complete with DTC
    // skipped and the skip reason carrying the taxonomy code.
    CsrMatrix m = genUniform(1024, 8.0, rng);
    fault::ScopedFault f("tuner.prepare", 1,
                         ErrorCode::ResourceExhausted);
    TuneRequest req;
    TuneResult res = tuneSpmm(m, req, cm);

    const TuneEntry* dtc_entry = nullptr;
    for (const TuneEntry& e : res.entries) {
        if (e.kind == KernelKind::Dtc)
            dtc_entry = &e;
    }
    ASSERT_NE(dtc_entry, nullptr);
    EXPECT_FALSE(dtc_entry->supported);
    EXPECT_EQ(dtc_entry->refusal, ErrorCode::ResourceExhausted);
    EXPECT_NE(dtc_entry->reason.find("fault injected"),
              std::string::npos);
    // A guaranteed-supported kernel still wins.
    EXPECT_TRUE(res.best().supported);
    EXPECT_NE(res.best().kind, KernelKind::Dtc);
}

TEST_F(FaultTest, TunerAppendsTerminalFallbackWhenAllRefused)
{
    // Every requested candidate refuses (tight conversion budget and
    // no cuSPARSE in the list): the tuner appends the cuSPARSE-like
    // terminal fallback so best() still returns a runnable kernel.
    CsrMatrix m = genUniform(512, 6.0, rng);
    ResourceBudget tight = ResourceBudget::defaults();
    tight.conversionBytes = 64;
    ScopedResourceBudget scope(tight);

    TuneRequest req;
    req.candidates = {KernelKind::Dtc, KernelKind::Sputnik};
    TuneResult res = tuneSpmm(m, req, cm);
    EXPECT_TRUE(res.fallbackAppended);
    EXPECT_EQ(res.entries.size(), 3u);
    const TuneEntry& best = res.best();
    EXPECT_TRUE(best.supported);
    EXPECT_EQ(best.kind, KernelKind::CuSparse);
    EXPECT_NE(best.name.find("terminal fallback"), std::string::npos);
}

TEST_F(FaultTest, BestThrowsTypedErrorOnlyWhenNothingWorks)
{
    // Refuse the candidates *and* sabotage the fallback: best() must
    // throw a typed Unsupported error listing per-candidate reasons.
    CsrMatrix m = genUniform(256, 4.0, rng);
    ResourceBudget tight = ResourceBudget::defaults();
    tight.conversionBytes = 64;
    ScopedResourceBudget scope(tight);
    // nth=2: first hit is the Dtc candidate... no — hit 1 = Dtc,
    // hit 2 = the terminal-fallback evaluation of CuSparse.
    fault::ScopedFault f("tuner.prepare", 2, ErrorCode::Internal);

    TuneRequest req;
    req.candidates = {KernelKind::Dtc};
    TuneResult res = tuneSpmm(m, req, cm);
    EXPECT_FALSE(res.fallbackAppended);
    try {
        res.best();
        FAIL() << "should have thrown";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Unsupported);
        EXPECT_NE(std::string(e.what()).find("DTC-SpMM"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// Graceful degradation: selector
// ---------------------------------------------------------------------

TEST(SelectorRobustness, EmptyScheduleFallsBackToBase)
{
    SelectorDecision d =
        selectKernel(std::vector<int64_t>{}, ArchSpec::rtx4090());
    EXPECT_FALSE(d.useBalanced);
    EXPECT_TRUE(d.degenerate);
    EXPECT_FALSE(d.note.empty());

    d = selectKernel(std::vector<int64_t>{0, 0, 0},
                     ArchSpec::rtx4090());
    EXPECT_FALSE(d.useBalanced);
    EXPECT_TRUE(d.degenerate);
}

TEST(SelectorRobustness, DegenerateArchFallsBackToBase)
{
    ArchSpec arch = ArchSpec::rtx4090();
    arch.numSms = 0;
    SelectorDecision d = selectKernel({4, 5, 6}, arch);
    EXPECT_FALSE(d.useBalanced);
    EXPECT_TRUE(d.degenerate);
    EXPECT_NE(d.note.find("arch"), std::string::npos);
}

TEST(SelectorRobustness, InvalidInputsThrowTyped)
{
    try {
        selectKernel({3, -1, 2}, ArchSpec::rtx4090());
        FAIL() << "should have thrown";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidInput);
    }
    EXPECT_THROW(
        selectKernel({1, 2}, ArchSpec::rtx4090(), /*threshold=*/0.0),
        DtcError);
}

TEST(SelectorRobustness, NormalDecisionIsNotDegenerate)
{
    SelectorDecision d = selectKernel(std::vector<int64_t>(512, 4),
                                      ArchSpec::rtx4090());
    EXPECT_FALSE(d.degenerate);
    EXPECT_TRUE(d.note.empty());
}

// ---------------------------------------------------------------------
// Graceful degradation: trainer
// ---------------------------------------------------------------------

TEST_F(FaultTest, TrainerSurvivesMidTrainingKernelFault)
{
    // The acceptance drill's second half: a kernel failure mid-epoch
    // must not kill training — the model re-tunes minus the failed
    // kernel, re-prepares, retries the epoch, and still converges.
    CsrMatrix a = genCommunity(256, 4, 8.0, 0.85, rng);
    const int64_t features = 16;
    DenseMatrix x;
    std::vector<int32_t> labels;
    makeClassificationTask(a, features, 4, 123, &x, &labels);

    TrainerConfig cfg;
    cfg.epochs = 12;
    TuneRequest req;
    req.denseWidth = features;
    GcnModel model(a, req, cm, features, cfg);
    const std::string initial = model.kernel().name();

    // Fire inside epoch 3's step (serial hits count one per epoch;
    // the constructor's tuning already consumed none of them).
    fault::arm("trainer.step", 4, ErrorCode::ResourceExhausted);
    TrainStats stats = model.train(x, labels);

    ASSERT_EQ(stats.loss.size(), static_cast<size_t>(cfg.epochs));
    ASSERT_EQ(stats.fallbacks.size(), 1u);
    const FallbackEvent& ev = stats.fallbacks[0];
    EXPECT_EQ(ev.epoch, 3);
    EXPECT_EQ(ev.fromKernel, initial);
    EXPECT_EQ(ev.code, ErrorCode::ResourceExhausted);
    EXPECT_FALSE(ev.toKernel.empty());
    EXPECT_NE(model.kernel().name(), initial);
    // Training still works after the swap: loss decreased overall.
    EXPECT_LT(stats.loss.back(), stats.loss.front());
}

TEST_F(FaultTest, FullTrainingRunWithDtcFaultedOut)
{
    // ISSUE acceptance: with DTC_FAULT arming tuner.prepare against
    // the DTC kernel, a full GCN training run completes via fallback.
    ASSERT_EQ(
        setenv("DTC_FAULT", "tuner.prepare:1:ResourceExhausted", 1),
        0);
    fault::reloadFromEnv();

    CsrMatrix a = genCommunity(256, 4, 8.0, 0.85, rng);
    const int64_t features = 16;
    DenseMatrix x;
    std::vector<int32_t> labels;
    makeClassificationTask(a, features, 4, 321, &x, &labels);

    TrainerConfig cfg;
    cfg.epochs = 15;
    TuneRequest req;
    req.denseWidth = features;
    GcnModel model(a, req, cm, features, cfg);
    // DTC was the first tuner.prepare hit, so the bound kernel is a
    // fallback, not DTC-SpMM.
    EXPECT_EQ(model.kernel().name().find("DTC-SpMM"),
              std::string::npos);

    TrainStats stats = model.train(x, labels);
    ASSERT_EQ(stats.loss.size(), static_cast<size_t>(cfg.epochs));
    EXPECT_LT(stats.loss.back(), stats.loss.front());
    EXPECT_GT(stats.accuracy.back(), 0.5);

    ASSERT_EQ(unsetenv("DTC_FAULT"), 0);
    fault::reloadFromEnv();
}

TEST_F(FaultTest, FixedKernelCtorThrowsTypedOnRefusal)
{
    CsrMatrix a = genUniform(128, 4.0, rng);
    ResourceBudget tight = ResourceBudget::defaults();
    tight.conversionBytes = 64;
    ScopedResourceBudget scope(tight);
    TrainerConfig cfg;
    try {
        GcnModel model(a, makeKernel(KernelKind::Dtc), 16, cfg);
        FAIL() << "should have thrown";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::ResourceExhausted);
    }
}

} // namespace
} // namespace dtc
