/**
 * @file
 * Unit tests for SGT condensation: window partitioning, compressed
 * column assignment, TC-block counts, MeanNnzTC.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/generators.h"
#include "formats/sgt.h"
#include "matrix/coo.h"

namespace dtc {
namespace {

TEST(Sgt, EmptyMatrix)
{
    CsrMatrix m(32, 32);
    SgtResult r = sgtCondense(m);
    EXPECT_EQ(r.numWindows, 2);
    EXPECT_EQ(r.numTcBlocks, 0);
    EXPECT_DOUBLE_EQ(r.meanNnzTc, 0.0);
}

TEST(Sgt, WindowCountCeil)
{
    CsrMatrix m(17, 17); // 17 rows -> 2 windows of height 16
    SgtResult r = sgtCondense(m);
    EXPECT_EQ(r.numWindows, 2);
}

TEST(Sgt, SingleDenseColumnGivesOneBlockPerWindow)
{
    // All rows share column 0: each window has 1 distinct column.
    CooMatrix coo(32, 32);
    for (int32_t r = 0; r < 32; ++r)
        coo.add(r, 0, 1.0f);
    SgtResult res = sgtCondense(CsrMatrix::fromCoo(coo));
    EXPECT_EQ(res.numTcBlocks, 2);
    EXPECT_DOUBLE_EQ(res.meanNnzTc, 16.0);
}

TEST(Sgt, DistinctColumnsAreSortedAndUnique)
{
    Rng rng(1);
    CsrMatrix m = genUniform(200, 8.0, rng);
    SgtResult r = sgtCondense(m);
    for (int64_t w = 0; w < r.numWindows; ++w) {
        const int32_t* begin = r.windowColsBegin(w);
        const int64_t count = r.windowColCount(w);
        for (int64_t i = 1; i < count; ++i)
            EXPECT_LT(begin[i - 1], begin[i]);
    }
}

TEST(Sgt, EveryNonzeroColumnAppearsInItsWindow)
{
    Rng rng(2);
    CsrMatrix m = genPowerLaw(300, 6.0, 1.2, rng);
    SgtResult r = sgtCondense(m);
    for (int64_t row = 0; row < m.rows(); ++row) {
        const int64_t w = row / 16;
        const int32_t* begin = r.windowColsBegin(w);
        const int32_t* end = begin + r.windowColCount(w);
        for (int64_t k = m.rowPtr()[row]; k < m.rowPtr()[row + 1];
             ++k) {
            EXPECT_TRUE(
                std::binary_search(begin, end, m.colIdx()[k]));
        }
    }
}

TEST(Sgt, BlocksPerWindowIsCeilOfDistinctOver8)
{
    Rng rng(3);
    CsrMatrix m = genUniform(500, 10.0, rng);
    SgtResult r = sgtCondense(m);
    int64_t total = 0;
    for (int64_t w = 0; w < r.numWindows; ++w) {
        const int64_t expect =
            (r.windowColCount(w) + 7) / 8;
        EXPECT_EQ(r.blocksPerWindow[w], expect);
        total += expect;
    }
    EXPECT_EQ(r.numTcBlocks, total);
}

TEST(Sgt, MeanNnzTcDefinition)
{
    Rng rng(4);
    CsrMatrix m = genUniform(500, 10.0, rng);
    SgtResult r = sgtCondense(m);
    EXPECT_DOUBLE_EQ(r.meanNnzTc,
                     static_cast<double>(m.nnz()) /
                         static_cast<double>(r.numTcBlocks));
}

TEST(Sgt, CondensationBeatsNaiveColumnTiling)
{
    // SGT packs distinct columns leftward: the block count must never
    // exceed what fixed 8-column tiling of the full width would use.
    Rng rng(5);
    CsrMatrix m = genCommunity(800, 8, 30.0, 0.9, rng);
    SgtResult r = sgtCondense(m);
    int64_t naive = 0;
    for (int64_t w = 0; w < r.numWindows; ++w) {
        // Naive: every touched 8-column stripe of the original index
        // space becomes a block.
        std::vector<int32_t> stripes;
        const int32_t* begin = r.windowColsBegin(w);
        for (int64_t i = 0; i < r.windowColCount(w); ++i)
            stripes.push_back(begin[i] / 8);
        stripes.erase(std::unique(stripes.begin(), stripes.end()),
                      stripes.end());
        naive += static_cast<int64_t>(stripes.size());
    }
    EXPECT_LE(r.numTcBlocks, naive);
}

TEST(Sgt, SimilarRowsGroupedRaisesMeanNnzTc)
{
    // 16 identical rows in one window condense to minimal blocks.
    CooMatrix coo(16, 64);
    for (int32_t r = 0; r < 16; ++r)
        for (int32_t c = 0; c < 8; ++c)
            coo.add(r, c * 8, 1.0f);
    SgtResult res = sgtCondense(CsrMatrix::fromCoo(coo));
    EXPECT_EQ(res.numTcBlocks, 1);
    EXPECT_DOUBLE_EQ(res.meanNnzTc, 128.0);
}

TEST(Sgt, CustomShapeRespected)
{
    Rng rng(6);
    CsrMatrix m = genUniform(128, 6.0, rng);
    TcBlockShape shape;
    shape.windowHeight = 8;
    shape.blockWidth = 4;
    SgtResult r = sgtCondense(m, shape);
    EXPECT_EQ(r.numWindows, 16);
    for (int64_t w = 0; w < r.numWindows; ++w)
        EXPECT_EQ(r.blocksPerWindow[w],
                  (r.windowColCount(w) + 3) / 4);
}

} // namespace
} // namespace dtc
