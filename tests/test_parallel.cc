/**
 * @file
 * Unit tests for the parallel runtime (common/parallel.h): pool
 * startup/shutdown, exception propagation out of parallelFor, nested
 * calls, the DTC_NUM_THREADS=1 fallback, and range edge cases.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.h"

namespace dtc {
namespace {

TEST(ThreadPool, StartupAndShutdown)
{
    // Construct-use-destroy cycles must neither leak nor hang.
    for (int workers : {0, 1, 4}) {
        ThreadPool pool(workers);
        EXPECT_EQ(pool.workerCount(), workers);
        std::atomic<int64_t> sum{0};
        pool.run(100, workers + 1,
                 [&](int64_t i) { sum.fetch_add(i + 1); });
        EXPECT_EQ(sum.load(), 100 * 101 / 2);
    }
}

TEST(ThreadPool, EnsureWorkersGrows)
{
    ThreadPool pool(1);
    pool.ensureWorkers(3);
    EXPECT_EQ(pool.workerCount(), 3);
    pool.ensureWorkers(2); // never shrinks
    EXPECT_EQ(pool.workerCount(), 3);
}

TEST(ThreadPool, EveryTaskRunsExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.run(257, 5, [&](int64_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeNeverCallsBody)
{
    ScopedNumThreads t(4);
    bool called = false;
    parallelFor(5, 5, 1, [&](int64_t, int64_t) { called = true; });
    parallelFor(7, 3, 1, [&](int64_t, int64_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleElementRange)
{
    ScopedNumThreads t(4);
    int calls = 0;
    int64_t lo = -1, hi = -1;
    parallelFor(41, 42, 16, [&](int64_t b, int64_t e) {
        ++calls;
        lo = b;
        hi = e;
    });
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(lo, 41);
    EXPECT_EQ(hi, 42);
}

TEST(ParallelFor, ChunkDecompositionCoversRangeExactly)
{
    ScopedNumThreads t(8);
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(0, 1000, 7, [&](int64_t b, int64_t e) {
        EXPECT_EQ(b % 7, 0);
        EXPECT_LE(e - b, 7);
        for (int64_t i = b; i < e; ++i)
            hits[i].fetch_add(1);
    });
    for (const auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ExceptionPropagatesToCaller)
{
    ScopedNumThreads t(8);
    EXPECT_THROW(
        parallelFor(0, 100, 1,
                    [&](int64_t b, int64_t) {
                        if (b == 37)
                            throw std::runtime_error("chunk 37 bad");
                    }),
        std::runtime_error);

    // The message of the (single) throwing chunk survives.
    try {
        parallelFor(0, 100, 1, [&](int64_t b, int64_t) {
            if (b == 37)
                throw std::runtime_error("chunk 37 bad");
        });
        FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "chunk 37 bad");
    }
}

TEST(ParallelFor, NestedCallsRunInlineAndComplete)
{
    ScopedNumThreads t(4);
    std::vector<int64_t> out(64, 0);
    parallelFor(0, 8, 1, [&](int64_t b_outer, int64_t) {
        // Inner parallelFor from a pool task must not deadlock; it
        // runs serially on the worker.
        parallelFor(0, 8, 2, [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i)
                out[b_outer * 8 + i] = b_outer * 8 + i;
        });
    });
    for (int64_t i = 0; i < 64; ++i)
        EXPECT_EQ(out[i], i);
}

TEST(ParallelFor, SingleThreadOverrideRunsOnCaller)
{
    ScopedNumThreads t(1);
    const std::thread::id self = std::this_thread::get_id();
    std::set<std::thread::id> ids;
    parallelFor(0, 100, 3, [&](int64_t, int64_t) {
        ids.insert(std::this_thread::get_id());
    });
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(*ids.begin(), self);
}

TEST(ParallelFor, EnvVarFallbackToOneThread)
{
    ASSERT_EQ(setenv("DTC_NUM_THREADS", "1", 1), 0);
    EXPECT_EQ(defaultNumThreads(), 1);
    EXPECT_EQ(currentNumThreads(), 1);

    const std::thread::id self = std::this_thread::get_id();
    std::set<std::thread::id> ids;
    parallelFor(0, 64, 4, [&](int64_t, int64_t) {
        ids.insert(std::this_thread::get_id());
    });
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(*ids.begin(), self);

    ASSERT_EQ(unsetenv("DTC_NUM_THREADS"), 0);
    EXPECT_GE(defaultNumThreads(), 1);
}

TEST(ParallelFor, EnvVarRespectedWhenNoOverride)
{
    ASSERT_EQ(setenv("DTC_NUM_THREADS", "3", 1), 0);
    EXPECT_EQ(currentNumThreads(), 3);
    {
        ScopedNumThreads t(7); // override beats the environment
        EXPECT_EQ(currentNumThreads(), 7);
    }
    EXPECT_EQ(currentNumThreads(), 3);
    ASSERT_EQ(unsetenv("DTC_NUM_THREADS"), 0);
}

TEST(ParallelReduce, OrderedMergeIsThreadCountInvariant)
{
    // Doubles chosen so that re-associating the fold changes the
    // rounding: identical bits across thread counts proves the chunk
    // structure and merge order are fixed.
    std::vector<double> xs(10007);
    double v = 1.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        v = v * 1.000001 + 1e-7;
        xs[i] = v;
    }
    auto sum_with = [&](int threads) {
        ScopedNumThreads t(threads);
        return parallelReduce(
            0, static_cast<int64_t>(xs.size()), 64, 0.0,
            [&](int64_t b, int64_t e) {
                double s = 0.0;
                for (int64_t i = b; i < e; ++i)
                    s += xs[static_cast<size_t>(i)];
                return s;
            },
            [](double a, double b) { return a + b; });
    };
    const double serial = sum_with(1);
    EXPECT_EQ(serial, sum_with(2));
    EXPECT_EQ(serial, sum_with(8));
}

TEST(ParallelReduce, EmptyRangeReturnsInit)
{
    ScopedNumThreads t(4);
    const int64_t r = parallelReduce(
        3, 3, 1, int64_t{42},
        [](int64_t, int64_t) { return int64_t{1}; },
        [](int64_t a, int64_t b) { return a + b; });
    EXPECT_EQ(r, 42);
}

} // namespace
} // namespace dtc
