/**
 * @file
 * Engine-vs-scalar equivalence suite: every kernel routed through the
 * host execution engine (src/engine/) must produce bitwise-identical
 * compute() output with the engine on and off, across matrix shapes,
 * dense widths (including odd N not divisible by the j-block width
 * and N wide enough for multiple column panels), operand precisions,
 * and thread counts.  Also pins the PreparedDense cache semantics:
 * hits on unchanged B, re-round on in-place mutation.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/precision.h"
#include "common/rng.h"
#include "datasets/generators.h"
#include "engine/engine.h"
#include "engine/prepared_dense.h"
#include "gnn/dense_ops.h"
#include "kernels/dtc.h"
#include "kernels/kernel.h"
#include "kernels/reference.h"
#include "matrix/coo.h"

namespace dtc {
namespace {

/**
 * Dense widths: j-block multiples, odd tails (13, 137), panel-exact
 * (256 = kPanelCols), and 515 (odd AND > 2*kPanelCols, forcing the
 * multi-panel path with a ragged last panel).  Tests that depend on
 * 515 exercising multiple panels pin ScopedPanelCols(kPanelCols),
 * since the auto-tuned base (engine::panelColsBase) can be wide
 * enough on big-cache hosts to make 515 a single panel.
 */
const int64_t kWidths[] = {1, 8, 13, 16, 137, 256, 515};

std::vector<std::pair<std::string, CsrMatrix>>
sweepMatrices()
{
    std::vector<std::pair<std::string, CsrMatrix>> out;
    out.emplace_back("empty-32x32", CsrMatrix(32, 32));

    CooMatrix onerow(64, 64);
    for (int32_t c = 0; c < 64; c += 3)
        onerow.add(0, c, 1.0f + static_cast<float>(c));
    out.emplace_back("single-populated-row",
                     CsrMatrix::fromCoo(onerow));

    Rng rng(2024);
    // Dense blocks: exercises the DTC fully-occupied-tile path.
    out.emplace_back("dense-blocks",
                     genBlockDiagonal(64, 16, 1.0, rng));
    out.emplace_back("dense-ish",
                     genBlockDiagonal(64, 16, 0.9, rng));
    out.emplace_back("sparse-95pct", genUniform(256, 4.0, rng));
    out.emplace_back("community",
                     genCommunity(512, 8, 12.0, 0.85, rng));
    return out;
}

std::vector<KernelKind>
engineRoutedKinds()
{
    return {KernelKind::CuSparse, KernelKind::Tcgnn,
            KernelKind::Dtc,      KernelKind::DtcBase,
            KernelKind::DtcBalanced, KernelKind::Sputnik};
}

/** compute() under a forced engine mode; empty c when refused. */
DenseMatrix
runCompute(SpmmKernel& kernel, const CsrMatrix& a, int64_t n,
           bool engine_on)
{
    engine::ScopedEngineMode mode(engine_on);
    Rng rng(99);
    DenseMatrix b(a.cols(), n);
    b.fillRandom(rng);
    DenseMatrix c(a.rows(), n);
    kernel.compute(b, c);
    return c;
}

void
expectBitwiseEqual(const DenseMatrix& a, const DenseMatrix& b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    if (a.size() > 0) {
        EXPECT_EQ(std::memcmp(a.data(), b.data(),
                              a.size() * sizeof(float)),
                  0);
    }
}

TEST(EngineEquivalence, AllEngineRoutedKernelsAllWidths)
{
    engine::ScopedPanelCols pin(engine::kPanelCols);
    for (const auto& [mat_name, m] : sweepMatrices()) {
        for (KernelKind kind : engineRoutedKinds()) {
            auto kernel = makeKernel(kind);
            if (!kernel->prepare(m).empty())
                continue;
            for (int64_t n : kWidths) {
                SCOPED_TRACE(std::string(kernelKindName(kind)) +
                             " on " + mat_name + " n=" +
                             std::to_string(n));
                DenseMatrix scalar =
                    runCompute(*kernel, m, n, false);
                DenseMatrix engine = runCompute(*kernel, m, n, true);
                expectBitwiseEqual(scalar, engine);
            }
        }
    }
}

TEST(EngineEquivalence, DtcAllPrecisions)
{
    engine::ScopedPanelCols pin(engine::kPanelCols);
    const Precision precisions[] = {Precision::Tf32, Precision::Bf16,
                                    Precision::Fp16};
    for (const auto& [mat_name, m] : sweepMatrices()) {
        for (Precision p : precisions) {
            DtcOptions opts;
            opts.precision = p;
            DtcKernel kernel(opts);
            if (!kernel.prepare(m).empty())
                continue;
            for (int64_t n : kWidths) {
                SCOPED_TRACE(mat_name + " precision=" +
                             precisionName(p) + " n=" +
                             std::to_string(n));
                DenseMatrix scalar = runCompute(kernel, m, n, false);
                DenseMatrix engine = runCompute(kernel, m, n, true);
                expectBitwiseEqual(scalar, engine);
            }
        }
    }
}

TEST(EngineEquivalence, ReferenceKernels)
{
    engine::ScopedPanelCols pin(engine::kPanelCols);
    for (const auto& [mat_name, m] : sweepMatrices()) {
        for (int64_t n : kWidths) {
            SCOPED_TRACE(mat_name + " n=" + std::to_string(n));
            Rng rng(5);
            DenseMatrix b(m.cols(), n);
            b.fillRandom(rng);

            DenseMatrix c_scalar(m.rows(), n);
            DenseMatrix c_engine(m.rows(), n);
            {
                engine::ScopedEngineMode mode(false);
                referenceSpmm(m, b, c_scalar);
            }
            {
                engine::ScopedEngineMode mode(true);
                referenceSpmm(m, b, c_engine);
            }
            expectBitwiseEqual(c_scalar, c_engine);

            {
                engine::ScopedEngineMode mode(false);
                referenceSpmmTf32(m, b, c_scalar);
            }
            {
                engine::ScopedEngineMode mode(true);
                referenceSpmmTf32(m, b, c_engine);
            }
            expectBitwiseEqual(c_scalar, c_engine);
        }
    }
}

TEST(EngineEquivalence, GemmAllTransposeCombos)
{
    Rng rng(11);
    const int64_t m = 37, k = 23, n = 13; // odd, j-block-ragged
    for (bool ta : {false, true}) {
        for (bool tb : {false, true}) {
            SCOPED_TRACE(std::string("ta=") + (ta ? "1" : "0") +
                         " tb=" + (tb ? "1" : "0"));
            DenseMatrix a(ta ? k : m, ta ? m : k);
            DenseMatrix b(tb ? n : k, tb ? k : n);
            a.fillRandom(rng);
            b.fillRandom(rng);
            DenseMatrix c_scalar(m, n), c_engine(m, n);
            {
                engine::ScopedEngineMode mode(false);
                gemm(a, ta, b, tb, c_scalar);
            }
            {
                engine::ScopedEngineMode mode(true);
                gemm(a, ta, b, tb, c_engine);
            }
            expectBitwiseEqual(c_scalar, c_engine);
        }
    }
}

TEST(EngineEquivalence, EngineOnThreadCountInvariant)
{
    for (const auto& [mat_name, m] : sweepMatrices()) {
        for (KernelKind kind : engineRoutedKinds()) {
            auto kernel = makeKernel(kind);
            if (!kernel->prepare(m).empty())
                continue;
            SCOPED_TRACE(std::string(kernelKindName(kind)) + " on " +
                         mat_name);
            DenseMatrix c1, c8;
            {
                ScopedNumThreads t(1);
                c1 = runCompute(*kernel, m, 137, true);
            }
            {
                ScopedNumThreads t(8);
                c8 = runCompute(*kernel, m, 137, true);
            }
            expectBitwiseEqual(c1, c8);
        }
    }
}

TEST(EngineEquivalence, PreparedDenseCacheHitsAndInvalidation)
{
    engine::clearPreparedDenseCache();
    engine::resetStats();
    Rng rng(3);
    DenseMatrix b(64, 32);
    b.fillRandom(rng);

    {
        engine::PreparedDense p1(b, Precision::Tf32);
        EXPECT_FALSE(p1.fromCache());
    }
    EXPECT_EQ(engine::stats().panelMisses.load(), 1u);
    EXPECT_EQ(engine::stats().roundingOps.load(),
              static_cast<uint64_t>(64 * 32));

    {
        // Same contents: served from cache, no new rounding.
        engine::PreparedDense p2(b, Precision::Tf32);
        EXPECT_TRUE(p2.fromCache());
    }
    EXPECT_EQ(engine::stats().panelHits.load(), 1u);
    EXPECT_EQ(engine::stats().roundingOps.load(),
              static_cast<uint64_t>(64 * 32));

    {
        // Different precision: its own entry.
        engine::PreparedDense p3(b, Precision::Fp16);
        EXPECT_FALSE(p3.fromCache());
    }
    EXPECT_EQ(engine::stats().panelMisses.load(), 2u);

    // In-place mutation (a GCN feature matrix between steps) must
    // re-round rather than serve the stale panel.
    b.at(5, 7) += 1.0f;
    {
        engine::PreparedDense p4(b, Precision::Tf32);
        EXPECT_FALSE(p4.fromCache());
    }
    EXPECT_EQ(engine::stats().panelMisses.load(), 3u);

    // Fp32 is pass-through: no rounding, no cache traffic.
    const uint64_t ops = engine::stats().roundingOps.load();
    {
        engine::PreparedDense p5(b, Precision::Fp32);
        EXPECT_FALSE(p5.fromCache());
        EXPECT_EQ(p5.row(0), b.row(0));
    }
    EXPECT_EQ(engine::stats().roundingOps.load(), ops);

    engine::clearPreparedDenseCache();
}

/** The rounded panel must contain exactly roundToPrecision(B). */
TEST(EngineEquivalence, PreparedDenseValuesMatchScalarRounding)
{
    engine::clearPreparedDenseCache();
    Rng rng(17);
    DenseMatrix b(33, 21);
    b.fillRandom(rng, -70000.0f, 70000.0f); // exercise FP16 saturation
    for (Precision p :
         {Precision::Tf32, Precision::Bf16, Precision::Fp16}) {
        engine::PreparedDense pd(b, p);
        for (int64_t r = 0; r < b.rows(); ++r) {
            const float* pr = pd.row(r);
            for (int64_t j = 0; j < b.cols(); ++j) {
                const float want = roundToPrecision(b.at(r, j), p);
                ASSERT_EQ(std::memcmp(&pr[j], &want, sizeof(float)),
                          0)
                    << "r=" << r << " j=" << j
                    << " p=" << precisionName(p);
            }
        }
    }
    engine::clearPreparedDenseCache();
}

} // namespace
} // namespace dtc
