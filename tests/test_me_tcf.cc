/**
 * @file
 * Unit tests for ME-TCF: structural invariants, round trip to CSR,
 * memory accounting vs TCF and CSR (Observation 1 / Section 5.3),
 * block expansion.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/generators.h"
#include "datasets/table1.h"
#include "formats/me_tcf.h"
#include "formats/tcf.h"
#include "reorder/tca.h"

namespace dtc {
namespace {

TEST(MeTcf, ValidatesOnRandomMatrices)
{
    Rng rng(1);
    for (int trial = 0; trial < 5; ++trial) {
        CsrMatrix m = genUniform(257 + trial * 31, 7.0, rng);
        MeTcfMatrix t = MeTcfMatrix::build(m);
        EXPECT_NO_THROW(t.validate());
    }
}

TEST(MeTcf, RoundTripsToCsr)
{
    Rng rng(2);
    CsrMatrix m = genPowerLaw(500, 9.0, 1.3, rng);
    MeTcfMatrix t = MeTcfMatrix::build(m);
    CsrMatrix back = t.toCsr();
    EXPECT_TRUE(m == back);
}

TEST(MeTcf, RoundTripsCommunityMatrix)
{
    Rng rng(3);
    CsrMatrix m = genCommunity(512, 8, 24.0, 0.85, rng);
    MeTcfMatrix t = MeTcfMatrix::build(m);
    EXPECT_TRUE(m == t.toCsr());
}

TEST(MeTcf, LocalIdsStrictlyIncreasePerBlock)
{
    Rng rng(4);
    CsrMatrix m = genUniform(300, 10.0, rng);
    MeTcfMatrix t = MeTcfMatrix::build(m);
    for (int64_t b = 0; b < t.numTcBlocks(); ++b) {
        for (int64_t k = t.tcOffset()[b] + 1; k < t.tcOffset()[b + 1];
             ++k)
            EXPECT_LT(t.tcLocalId()[k - 1], t.tcLocalId()[k]);
    }
}

TEST(MeTcf, LocalIdsFitInSevenBits)
{
    // 16x8 blocks: the largest local index is 127, within uint8.
    Rng rng(5);
    CsrMatrix m = genUniform(300, 10.0, rng);
    MeTcfMatrix t = MeTcfMatrix::build(m);
    for (uint8_t id : t.tcLocalId())
        EXPECT_LT(id, 128);
}

TEST(MeTcf, IndexElementCountFormula)
{
    Rng rng(6);
    CsrMatrix m = genUniform(400, 8.0, rng);
    MeTcfMatrix t = MeTcfMatrix::build(m);
    const int64_t expect = (m.rows() + 15) / 16 + 1 +
                           t.numTcBlocks() + 1 +
                           t.numTcBlocks() * 8 + (m.nnz() + 3) / 4;
    EXPECT_EQ(t.indexElementCount(), expect);
}

TEST(MeTcf, FarSmallerThanTcf)
{
    Rng rng(7);
    CsrMatrix m = genUniform(1000, 8.0, rng);
    MeTcfMatrix me = MeTcfMatrix::build(m);
    TcfMatrix tcf = TcfMatrix::build(m);
    EXPECT_LT(me.indexElementCount(), tcf.indexElementCount() / 2);
}

TEST(MeTcf, NearCsrFootprintOnTable1Analogs)
{
    // Section 5.3: before reordering ME-TCF is ~6% below CSR; allow
    // a generous band but require the same ballpark.
    Rng rng(8);
    CsrMatrix m = table1ByAbbr("DD").make();
    MeTcfMatrix me = MeTcfMatrix::build(m);
    const double ratio =
        static_cast<double>(me.indexElementCount()) /
        static_cast<double>(m.indexElementCount());
    EXPECT_GT(ratio, 0.4);
    EXPECT_LT(ratio, 1.6);
}

TEST(MeTcf, ReorderingShrinksFootprint)
{
    // TCA raises MeanNnzTC => fewer blocks => smaller SparseAtoB.
    Rng rng(9);
    CsrMatrix m = genCommunity(2048, 32, 24.0, 0.9, rng);
    m = shuffleLabels(m, rng);
    MeTcfMatrix before = MeTcfMatrix::build(m);
    TcaParams params;
    auto perm = tcaReorder(m, params).permutation;
    MeTcfMatrix after = MeTcfMatrix::build(m.permuteRows(perm));
    EXPECT_LT(after.indexElementCount(), before.indexElementCount());
}

TEST(MeTcf, ExpandBlockReconstructsTile)
{
    Rng rng(10);
    CsrMatrix m = genUniform(64, 6.0, rng);
    MeTcfMatrix t = MeTcfMatrix::build(m);
    auto dense = m.toDense();
    float tile[16 * 8];
    for (int64_t w = 0; w < t.numWindows(); ++w) {
        for (int64_t b = t.rowWindowOffset()[w];
             b < t.rowWindowOffset()[w + 1]; ++b) {
            t.expandBlock(b, tile);
            for (int lr = 0; lr < 16; ++lr) {
                for (int lc = 0; lc < 8; ++lc) {
                    const int64_t row = w * 16 + lr;
                    const int32_t col = t.sparseAtoB()[b * 8 + lc];
                    const float expect =
                        (row < m.rows() &&
                         col != MeTcfMatrix::kPadColumn)
                            ? dense[row * m.cols() + col]
                            : 0.0f;
                    EXPECT_FLOAT_EQ(tile[lr * 8 + lc], expect);
                }
            }
        }
    }
}

TEST(MeTcf, SparseAtoBPadsOnlyTailLanes)
{
    Rng rng(11);
    CsrMatrix m = genUniform(128, 5.0, rng);
    MeTcfMatrix t = MeTcfMatrix::build(m);
    for (int64_t b = 0; b < t.numTcBlocks(); ++b) {
        bool seen_pad = false;
        for (int lane = 0; lane < 8; ++lane) {
            const bool pad =
                t.sparseAtoB()[b * 8 + lane] == MeTcfMatrix::kPadColumn;
            if (seen_pad) {
                EXPECT_TRUE(pad); // pads are a suffix
            }
            seen_pad |= pad;
        }
    }
}

TEST(MeTcf, MeanNnzTcMatchesSgt)
{
    Rng rng(12);
    CsrMatrix m = genCommunity(600, 6, 16.0, 0.8, rng);
    MeTcfMatrix t = MeTcfMatrix::build(m);
    SgtResult s = sgtCondense(m);
    EXPECT_DOUBLE_EQ(t.meanNnzTc(), s.meanNnzTc);
    EXPECT_EQ(t.numTcBlocks(), s.numTcBlocks);
}

TEST(MeTcf, RejectsOversizedBlocks)
{
    CsrMatrix m(16, 16);
    TcBlockShape shape;
    shape.windowHeight = 32;
    shape.blockWidth = 16; // 512 > 256 local ids
    EXPECT_THROW(MeTcfMatrix::build(m, shape), std::invalid_argument);
}

} // namespace
} // namespace dtc
