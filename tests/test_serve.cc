/**
 * @file
 * Tests for the serving layer (src/serve/): the content-hashed
 * prepared-kernel cache (hit/miss/eviction under a byte budget,
 * in-place mutation re-prepares), admission control, queued-deadline
 * expiry, batching bitwise equality, concurrent-storm linearizability
 * against the deterministic mode, and tuned-state reuse (the warm
 * path must never re-tune).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "common/rng.h"
#include "datasets/generators.h"
#include "gpusim/arch.h"
#include "gpusim/cost_model.h"
#include "obs/metrics.h"
#include "runtime/guard.h"
#include "serve/prepared_cache.h"
#include "serve/service.h"
#include "testing/oracle.h"

namespace dtc {
namespace {

using serve::MatrixHandle;
using serve::PreparedCache;
using serve::ServeOptions;
using serve::SpmmService;
using serve::SubmitOptions;
using serve::SubmitResult;

class ServeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::disarmAll();
        runtime::guard::setSampleFraction(0.0);
    }
    void
    TearDown() override
    {
        fault::disarmAll();
        runtime::guard::setSampleFraction(-1.0);
    }

    /** Deterministic-mode options with a roomy cache. */
    ServeOptions
    inlineOptions() const
    {
        ServeOptions so;
        so.deterministic = true;
        so.cacheBytes = int64_t{64} << 20;
        return so;
    }

    CostModel cm{ArchSpec::rtx4090()};
    Rng rng{4242};
};

TEST_F(ServeTest, CacheHitMissAndGauges)
{
    obs::metrics::reset();
    const CsrMatrix a = genUniform(256, 6.0, rng);
    PreparedCache cache(int64_t{64} << 20);

    auto e1 = cache.acquire(a, Precision::Fp32);
    EXPECT_EQ(obs::metrics::counterValue("serve.cache.misses"), 1u);
    auto e2 = cache.acquire(a, Precision::Fp32);
    EXPECT_EQ(obs::metrics::counterValue("serve.cache.hits"), 1u);
    EXPECT_EQ(e1.get(), e2.get()); // same contents -> same entry

    // Same contents, different precision: a distinct entry.
    auto e3 = cache.acquire(a, Precision::Tf32);
    EXPECT_EQ(obs::metrics::counterValue("serve.cache.misses"), 2u);
    EXPECT_NE(e1.get(), e3.get());
    EXPECT_EQ(cache.entries(), 2u);
    EXPECT_EQ(cache.residentBytes(),
              2 * PreparedCache::entryBytes(a));
}

TEST_F(ServeTest, EvictionUnderByteBudget)
{
    obs::metrics::reset();
    const CsrMatrix a1 = genUniform(256, 6.0, rng);
    const CsrMatrix a2 = genUniform(300, 6.0, rng);

    // Budget fits one entry: inserting the second evicts the first.
    PreparedCache cache(PreparedCache::entryBytes(a2) + 1);
    auto e1 = cache.acquire(a1, Precision::Fp32);
    auto e2 = cache.acquire(a2, Precision::Fp32);
    EXPECT_EQ(obs::metrics::counterValue("serve.cache.evictions"),
              1u);
    EXPECT_EQ(cache.entries(), 1u);

    // The evicted shared_ptr stays alive for its holder.
    EXPECT_EQ(e1->a.rows(), a1.rows());

    // Re-acquiring the evicted matrix is a fresh miss.
    auto e1b = cache.acquire(a1, Precision::Fp32);
    EXPECT_NE(e1.get(), e1b.get());
    EXPECT_EQ(obs::metrics::counterValue("serve.cache.misses"), 3u);

    // A single over-budget entry still serves (never evicted).
    PreparedCache tiny(16);
    auto big = tiny.acquire(a1, Precision::Fp32);
    EXPECT_EQ(tiny.entries(), 1u);
    EXPECT_NE(big, nullptr);
}

TEST_F(ServeTest, InPlaceMutationRePrepares)
{
    obs::metrics::reset();
    CsrMatrix a = genUniform(256, 6.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 8, 1);

    SpmmService svc(inlineOptions(), &cm);
    const MatrixHandle h = svc.attach(a);
    const SubmitResult r1 = svc.run(h, b, Precision::Fp32);
    EXPECT_FALSE(r1.preparedCacheHit);
    const SubmitResult r2 = svc.run(h, b, Precision::Fp32);
    EXPECT_TRUE(r2.preparedCacheHit);
    const uint64_t tunes_before =
        obs::metrics::counterValue("tuner.tunes");

    // Mutating A in place changes the content hash: the next submit
    // must re-tune/re-prepare and compute against the new values.
    a.values()[0] += 1.0f;
    const SubmitResult r3 = svc.run(h, b, Precision::Fp32);
    EXPECT_FALSE(r3.preparedCacheHit);
    EXPECT_GT(obs::metrics::counterValue("tuner.tunes"),
              tunes_before);
    EXPECT_EQ(testing::judgeResult(a, b, r3.c, r3.report.precision,
                                   /*bit_exact=*/false,
                                   /*tolerance_safety=*/8.0),
              "");
    EXPECT_FALSE(r3.c == r1.c); // new contents, new result
}

TEST_F(ServeTest, WarmPathNeverReTunes)
{
    obs::metrics::reset();
    const CsrMatrix a = genUniform(256, 6.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 8, 2);

    SpmmService svc(inlineOptions(), &cm);
    const MatrixHandle h = svc.attach(a);
    svc.run(h, b, Precision::Fp32); // cold: tunes once
    const uint64_t tunes =
        obs::metrics::counterValue("tuner.tunes");
    const uint64_t evaluated = obs::metrics::counterValue(
        "tuner.candidates_evaluated");
    for (int i = 0; i < 4; ++i)
        svc.run(h, b, Precision::Fp32);
    EXPECT_EQ(obs::metrics::counterValue("tuner.tunes"), tunes);
    EXPECT_EQ(
        obs::metrics::counterValue("tuner.candidates_evaluated"),
        evaluated);
}

TEST_F(ServeTest, BatchIsBitwiseEqualToSoloRuns)
{
    const CsrMatrix a = genUniform(512, 8.0, rng);
    std::vector<DenseMatrix> panels;
    for (int i = 0; i < 5; ++i)
        panels.push_back(testing::makeDenseOperand(
            a.cols(), 8, 10 + static_cast<uint64_t>(i)));

    SpmmService svc(inlineOptions(), &cm);
    const MatrixHandle h = svc.attach(a);
    const std::vector<SubmitResult> batched =
        svc.runBatch(h, panels, Precision::Fp32);
    ASSERT_EQ(batched.size(), panels.size());
    for (const SubmitResult& r : batched)
        EXPECT_EQ(r.batchSize, 5);

    for (size_t i = 0; i < panels.size(); ++i) {
        const SubmitResult solo =
            svc.run(h, panels[i], Precision::Fp32);
        EXPECT_TRUE(batched[i].c == solo.c)
            << "panel " << i << " differs from its solo run";
    }
}

TEST_F(ServeTest, AdmissionControlRejectsTyped)
{
    const CsrMatrix a = genUniform(256, 6.0, rng);
    ServeOptions so;
    so.threads = 1;
    so.queueCapacity = 2;
    so.cacheBytes = int64_t{64} << 20;
    SpmmService svc(so, &cm);
    const MatrixHandle h = svc.attach(a);

    svc.pause(); // park the worker so the queue fills
    std::vector<std::future<SubmitResult>> futs;
    for (int i = 0; i < 2; ++i)
        futs.push_back(svc.submit(
            h, testing::makeDenseOperand(a.cols(), 8, 20),
            Precision::Fp32));
    try {
        svc.submit(h, testing::makeDenseOperand(a.cols(), 8, 21),
                   Precision::Fp32);
        FAIL() << "third submit should have been rejected";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::ResourceExhausted);
    }
    EXPECT_GE(obs::metrics::counterValue("serve.rejected"), 1u);

    svc.resume();
    for (auto& f : futs)
        EXPECT_NO_THROW(f.get()); // queued work still completes
}

TEST_F(ServeTest, QueuedDeadlineExpiryIsTypedAndDoesNotPoison)
{
    const CsrMatrix a = genUniform(256, 6.0, rng);
    const DenseMatrix b = testing::makeDenseOperand(a.cols(), 8, 30);
    ServeOptions so;
    so.threads = 1;
    so.cacheBytes = int64_t{64} << 20;
    SpmmService svc(so, &cm);
    const MatrixHandle h = svc.attach(a);

    svc.pause();
    SubmitOptions sopt;
    sopt.deadlineMs = 1;
    auto doomed = svc.submit(h, b, Precision::Fp32, sopt);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    svc.resume();
    try {
        doomed.get();
        FAIL() << "queued request should have expired";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::DeadlineExceeded);
    }
    EXPECT_GE(obs::metrics::counterValue(
                  "serve.deadline_expired_queued"),
              1u);

    // The cache entry is not poisoned: the same A served fresh
    // (without a deadline) completes and verifies.
    const SubmitResult ok = svc.run(h, b, Precision::Fp32);
    EXPECT_EQ(testing::judgeResult(a, b, ok.c, ok.report.precision,
                                   /*bit_exact=*/false,
                                   /*tolerance_safety=*/8.0),
              "");
}

TEST_F(ServeTest, ConcurrentStormMatchesDeterministicMode)
{
    const CsrMatrix a = genUniform(512, 8.0, rng);
    const int kClients = 4;
    const int kPerClient = 6;

    // Reference results from the deterministic inline mode.
    std::vector<DenseMatrix> want;
    {
        SpmmService ref(inlineOptions(), &cm);
        const MatrixHandle h = ref.attach(a);
        for (int i = 0; i < kClients * kPerClient; ++i)
            want.push_back(
                ref.run(h,
                        testing::makeDenseOperand(
                            a.cols(), 8,
                            static_cast<uint64_t>(100 + i)),
                        Precision::Fp32)
                    .c);
    }

    // The threaded storm must produce bitwise-identical results for
    // every request (batching is column-independent) regardless of
    // interleaving.
    const uint64_t tunes_before =
        obs::metrics::counterValue("tuner.tunes");
    ServeOptions so;
    so.threads = 3;
    so.queueCapacity = 256;
    so.cacheBytes = int64_t{64} << 20;
    SpmmService svc(so, &cm);
    const MatrixHandle h = svc.attach(a);
    std::vector<std::future<SubmitResult>> futs(
        static_cast<size_t>(kClients * kPerClient));
    std::vector<std::thread> clients;
    std::atomic<int> rejected{0};
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int i = 0; i < kPerClient; ++i) {
                const int id = c * kPerClient + i;
                try {
                    futs[static_cast<size_t>(id)] = svc.submit(
                        h,
                        testing::makeDenseOperand(
                            a.cols(), 8,
                            static_cast<uint64_t>(100 + id)),
                        Precision::Fp32);
                } catch (const DtcError&) {
                    rejected.fetch_add(1);
                }
            }
        });
    }
    for (std::thread& t : clients)
        t.join();
    EXPECT_EQ(rejected.load(), 0); // capacity 256 admits everything

    for (size_t i = 0; i < futs.size(); ++i) {
        const SubmitResult r = futs[i].get();
        EXPECT_TRUE(r.c == want[i]) << "request " << i
                                    << " differs from deterministic";
    }
    // Exactly one tune across the whole storm: every request after
    // the first reused the prepared entry.
    EXPECT_EQ(obs::metrics::counterValue("tuner.tunes"),
              tunes_before + 1);
}

TEST_F(ServeTest, ShapeMismatchThrowsInvalidInput)
{
    const CsrMatrix a = genUniform(64, 4.0, rng);
    SpmmService svc(inlineOptions(), &cm);
    const MatrixHandle h = svc.attach(a);
    DenseMatrix bad(a.cols() + 1, 4);
    try {
        svc.submit(h, std::move(bad), Precision::Fp32);
        FAIL() << "shape mismatch should throw";
    } catch (const DtcError& e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidInput);
    }
}

} // namespace
} // namespace dtc
