/**
 * @file
 * Unit tests for the GNN stack: dense ops (with numerical gradient
 * checks), GCN layer forward/backward, end-to-end training
 * convergence, framework time estimation (Fig. 16 relationships).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "datasets/generators.h"
#include "gnn/dense_ops.h"
#include "gnn/frameworks.h"
#include "gnn/trainer.h"

namespace dtc {
namespace {

TEST(DenseOps, GemmSmallKnownValues)
{
    DenseMatrix a(2, 3), b(3, 2), c(2, 2);
    float av[] = {1, 2, 3, 4, 5, 6};
    float bv[] = {7, 8, 9, 10, 11, 12};
    std::copy(av, av + 6, a.data());
    std::copy(bv, bv + 6, b.data());
    gemm(a, false, b, false, c);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(DenseOps, GemmTransposesAgree)
{
    Rng rng(1);
    DenseMatrix a(5, 7), b(7, 4);
    a.fillRandom(rng);
    b.fillRandom(rng);
    DenseMatrix c(5, 4), c2(5, 4);
    gemm(a, false, b, false, c);
    DenseMatrix at = a.transposed();
    gemm(at, true, b, false, c2);
    EXPECT_LT(c.maxAbsDiff(c2), 1e-5);
    DenseMatrix bt = b.transposed();
    gemm(a, false, bt, true, c2);
    EXPECT_LT(c.maxAbsDiff(c2), 1e-5);
}

TEST(DenseOps, ReluForwardBackward)
{
    DenseMatrix x(1, 4);
    x.at(0, 0) = -1.0f;
    x.at(0, 1) = 2.0f;
    x.at(0, 2) = 0.0f;
    x.at(0, 3) = 5.0f;
    DenseMatrix act = x;
    reluForward(act);
    EXPECT_FLOAT_EQ(act.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(act.at(0, 1), 2.0f);
    DenseMatrix g(1, 4);
    g.fill(1.0f);
    reluBackward(act, g);
    EXPECT_FLOAT_EQ(g.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(g.at(0, 1), 1.0f);
    EXPECT_FLOAT_EQ(g.at(0, 2), 0.0f);
    EXPECT_FLOAT_EQ(g.at(0, 3), 1.0f);
}

TEST(DenseOps, SoftmaxRowsSumToOne)
{
    Rng rng(2);
    DenseMatrix x(10, 7);
    x.fillRandom(rng, -5.0f, 5.0f);
    softmaxRows(x);
    for (int64_t i = 0; i < x.rows(); ++i) {
        double sum = 0.0;
        for (int64_t j = 0; j < x.cols(); ++j) {
            EXPECT_GE(x.at(i, j), 0.0f);
            sum += x.at(i, j);
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(DenseOps, CrossEntropyGradientMatchesNumerical)
{
    Rng rng(3);
    const int64_t rows = 4, classes = 3;
    DenseMatrix logits(rows, classes);
    logits.fillRandom(rng, -1.0f, 1.0f);
    std::vector<int32_t> labels{0, 2, 1, 2};

    DenseMatrix probs = logits;
    softmaxRows(probs);
    DenseMatrix grad(rows, classes);
    crossEntropy(probs, labels, &grad);

    // Numerical gradient wrt logits.
    const float eps = 1e-3f;
    for (int64_t i = 0; i < rows; ++i) {
        for (int64_t j = 0; j < classes; ++j) {
            DenseMatrix lp = logits, lm = logits;
            lp.at(i, j) += eps;
            lm.at(i, j) -= eps;
            softmaxRows(lp);
            softmaxRows(lm);
            const double fp = crossEntropy(lp, labels, nullptr);
            const double fm = crossEntropy(lm, labels, nullptr);
            const double num = (fp - fm) / (2.0 * eps);
            EXPECT_NEAR(grad.at(i, j), num, 5e-3);
        }
    }
}

TEST(DenseOps, AccuracyCountsArgmax)
{
    DenseMatrix p(2, 2);
    p.at(0, 0) = 0.9f;
    p.at(0, 1) = 0.1f;
    p.at(1, 0) = 0.2f;
    p.at(1, 1) = 0.8f;
    EXPECT_DOUBLE_EQ(accuracy(p, {0, 1}), 1.0);
    EXPECT_DOUBLE_EQ(accuracy(p, {1, 1}), 0.5);
}

TEST(DenseOps, GemmCostMonotone)
{
    ArchSpec arch = ArchSpec::rtx4090();
    EXPECT_LT(denseGemmTimeMs(1000, 128, 128, arch),
              denseGemmTimeMs(4000, 128, 128, arch));
    EXPECT_GT(denseGemmTimeMs(1000, 128, 128, arch), 0.0);
}

TEST(GcnLayer, BackwardGradientsDescendTheLoss)
{
    // The analytic gradients must actually reduce the loss when a
    // small SGD step follows them — a functional gradient check over
    // the full layer stack (SpMM included).
    Rng rng(4);
    CsrMatrix a = genUniform(64, 4.0, rng);
    DenseMatrix x(64, 6);
    x.fillRandom(rng);
    std::vector<int32_t> labels(64);
    for (int i = 0; i < 64; ++i)
        labels[i] = i % 3;

    TrainerConfig cfg;
    cfg.hidden = 5;
    cfg.classes = 3;
    cfg.seed = 99;
    cfg.learningRate = 0.05f;
    GcnModel model(a, makeKernel(KernelKind::CuSparse), 6, cfg);

    double first = model.trainStep(x, labels, nullptr);
    double loss = first;
    for (int step = 0; step < 10; ++step)
        loss = model.trainStep(x, labels, nullptr);
    EXPECT_LT(loss, first);
}

TEST(GcnLayer, DeterministicGivenSeed)
{
    Rng rng(14);
    CsrMatrix a = genUniform(32, 4.0, rng);
    DenseMatrix x(32, 6);
    x.fillRandom(rng);
    std::vector<int32_t> labels(32, 0);

    TrainerConfig cfg;
    cfg.hidden = 4;
    cfg.classes = 2;
    cfg.seed = 123;
    GcnModel m1(a, makeKernel(KernelKind::CuSparse), 6, cfg);
    GcnModel m2(a, makeKernel(KernelKind::CuSparse), 6, cfg);
    EXPECT_DOUBLE_EQ(m1.trainStep(x, labels, nullptr),
                     m2.trainStep(x, labels, nullptr));
}

TEST(Trainer, LossDecreasesOnLearnableTask)
{
    Rng rng(5);
    CsrMatrix a = genCommunity(256, 4, 10.0, 0.9, rng);
    DenseMatrix x;
    std::vector<int32_t> labels;
    makeClassificationTask(a, 16, 4, 7, &x, &labels);

    TrainerConfig cfg;
    cfg.hidden = 16;
    cfg.classes = 4;
    cfg.epochs = 25;
    cfg.learningRate = 0.2f;
    GcnModel model(a, makeKernel(KernelKind::Dtc), 16, cfg);
    TrainStats stats = model.train(x, labels);
    ASSERT_EQ(stats.loss.size(), 25u);
    EXPECT_LT(stats.loss.back(), stats.loss.front() * 0.7);
    EXPECT_GT(stats.accuracy.back(), 0.6);
}

TEST(Trainer, DtcAndCusparseModelsConvergeSimilarly)
{
    // TF32 vs FP32 SpMM: same task, both train; final losses close.
    Rng rng(6);
    CsrMatrix a = genCommunity(128, 4, 8.0, 0.9, rng);
    DenseMatrix x;
    std::vector<int32_t> labels;
    makeClassificationTask(a, 12, 4, 11, &x, &labels);

    TrainerConfig cfg;
    cfg.hidden = 12;
    cfg.classes = 4;
    cfg.epochs = 20;
    cfg.learningRate = 0.02f;
    GcnModel m1(a, makeKernel(KernelKind::Dtc), 12, cfg);
    GcnModel m2(a, makeKernel(KernelKind::CuSparse), 12, cfg);
    auto s1 = m1.train(x, labels);
    auto s2 = m2.train(x, labels);
    // TF32 vs FP32 diverge slowly; demand agreement within 10%.
    EXPECT_NEAR(s1.loss.back() / s2.loss.back(), 1.0, 0.1);
}

TEST(Frameworks, ProfilesMatchPaperConventions)
{
    EXPECT_TRUE(frameworkProfile(GnnFramework::DtcGcn)
                    .chargeConversion);
    EXPECT_FALSE(frameworkProfile(GnnFramework::TcGnn)
                     .chargeConversion);
    EXPECT_EQ(frameworkProfile(GnnFramework::Dgl).spmmKernel,
              KernelKind::CuSparse);
}

TEST(Frameworks, DtcGcnFastestOnGnnGraphs)
{
    Rng rng(7);
    CsrMatrix a = genCommunity(4096, 16, 30.0, 0.85, rng);
    GcnTrainingConfig cfg;
    cfg.epochs = 200;
    ArchSpec arch = ArchSpec::rtx4090();
    auto dtc = estimateGcnTraining(a, GnnFramework::DtcGcn, cfg, arch);
    auto dgl = estimateGcnTraining(a, GnnFramework::Dgl, cfg, arch);
    auto pyg = estimateGcnTraining(a, GnnFramework::PygSparseTensor,
                                   cfg, arch);
    // Fig. 16 ordering: DTC-GCN < DGL < PyG.
    EXPECT_LT(dtc.totalMs, dgl.totalMs);
    EXPECT_LT(dgl.totalMs, pyg.totalMs);
    // Conversion charged once and small relative to training.
    EXPECT_GT(dtc.conversionMs, 0.0);
    EXPECT_LT(dtc.conversionMs, 0.05 * dtc.totalMs);
}

TEST(Frameworks, EstimateScalesWithEpochs)
{
    Rng rng(8);
    CsrMatrix a = genUniform(1024, 12.0, rng);
    GcnTrainingConfig cfg;
    cfg.epochs = 100;
    ArchSpec arch = ArchSpec::rtx4090();
    auto e100 = estimateGcnTraining(a, GnnFramework::Dgl, cfg, arch);
    cfg.epochs = 200;
    auto e200 = estimateGcnTraining(a, GnnFramework::Dgl, cfg, arch);
    EXPECT_NEAR(e200.totalMs / e100.totalMs, 2.0, 0.05);
}

} // namespace
} // namespace dtc
