#include "engine/spmm_csr.h"

#include <algorithm>
#include <vector>

#include "common/cancel.h"
#include "common/parallel.h"
#include "engine/engine.h"
#include "engine/prepared_dense.h"
#include "engine/simd/simd.h"

namespace dtc {
namespace engine {

void
spmmCsrRounded(int64_t rows, const int64_t* row_ptr,
               const int32_t* col_idx, const float* vals, Precision p,
               const DenseMatrix& b, DenseMatrix& c, int64_t grain)
{
    const int64_t n = c.cols();
    const PreparedDense pb(b, p);
    const bool round_a = p != Precision::Fp32;
    c.setZero();
    // Resolve the SIMD table and panel width on the calling thread:
    // ScopedSimdMode / ScopedPanelCols are thread-local and would not
    // reach parallelFor workers.
    const simd::Kernels& K = simd::kernels();
    const int64_t pw = panelCols(n);
    parallelFor(0, rows, grain, [&](int64_t r_lo, int64_t r_hi) {
        for (int64_t j0 = 0; j0 < n; j0 += pw) {
            // Deadline poll per (chunk, panel): even one huge chunk
            // cannot stall a runWithDeadline past a single panel.
            cancel::poll();
            const int64_t pn = std::min(pw, n - j0);
            for (int64_t r = r_lo; r < r_hi; ++r) {
                float* __restrict crow = c.row(r) + j0;
                const int64_t k_end = row_ptr[r + 1];
                for (int64_t k = row_ptr[r]; k < k_end; ++k) {
                    const float v =
                        round_a ? roundToPrecision(vals[k], p)
                                : vals[k];
                    const float* next_b =
                        k + 1 < k_end ? pb.row(col_idx[k + 1]) + j0
                                      : nullptr;
                    K.axpyPrefetch(crow, pb.row(col_idx[k]) + j0, v,
                                   pn, next_b);
                }
            }
        }
    });
}

void
spmmCsrDoubleAcc(int64_t rows, const int64_t* row_ptr,
                 const int32_t* col_idx, const float* vals,
                 const DenseMatrix& b, DenseMatrix& c, int64_t grain)
{
    const int64_t n = c.cols();
    const PreparedDense pb(b, Precision::Fp32);
    const simd::Kernels& K = simd::kernels();
    const int64_t pw = panelCols(n);
    parallelFor(0, rows, grain, [&](int64_t r_lo, int64_t r_hi) {
        std::vector<double> acc(static_cast<size_t>(pw));
        for (int64_t j0 = 0; j0 < n; j0 += pw) {
            cancel::poll();
            const int64_t pn = std::min(pw, n - j0);
            for (int64_t r = r_lo; r < r_hi; ++r) {
                std::fill(acc.begin(), acc.begin() + pn, 0.0);
                for (int64_t k = row_ptr[r]; k < row_ptr[r + 1];
                     ++k) {
                    K.axpyDouble(acc.data(),
                                 pb.row(col_idx[k]) + j0,
                                 static_cast<double>(vals[k]), pn);
                }
                float* __restrict crow = c.row(r) + j0;
                for (int64_t j = 0; j < pn; ++j)
                    crow[j] = static_cast<float>(acc[j]);
            }
        }
    });
}

} // namespace engine
} // namespace dtc
