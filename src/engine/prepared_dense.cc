#include "engine/prepared_dense.h"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "common/parallel.h"
#include "engine/engine.h"
#include "engine/simd/simd.h"

namespace dtc {
namespace engine {

namespace {

/** Rows per parallelFor chunk for hashing and rounding passes. */
constexpr int64_t kRowGrain = 256;

/** Cached (B, precision) pairs kept; beyond this, LRU eviction. */
constexpr size_t kCacheCapacity = 8;

/**
 * FNV-1a over the raw words of rows [lo, hi), combined across chunks
 * in ascending chunk order — deterministic for any thread count.
 */
uint64_t
contentHash(const DenseMatrix& b)
{
    const uint64_t seed = 0xcbf29ce484222325ull;
    if (b.size() == 0)
        return seed;
    return parallelReduce(
        0, b.rows(), kRowGrain, seed,
        [&](int64_t lo, int64_t hi) {
            uint64_t h = 0xcbf29ce484222325ull;
            const size_t words =
                static_cast<size_t>((hi - lo) * b.cols());
            const float* p = b.row(lo);
            for (size_t i = 0; i < words; ++i) {
                uint32_t w;
                std::memcpy(&w, p + i, sizeof(w));
                h = (h ^ w) * 0x100000001b3ull;
            }
            return h;
        },
        [](uint64_t acc, uint64_t part) {
            return (acc ^ part) * 0x100000001b3ull;
        });
}

struct CacheEntry
{
    const void* src;
    int64_t rows;
    int64_t cols;
    Precision prec;
    uint64_t hash;
    uint64_t tick;
    std::shared_ptr<const AlignedVector<float>> buf;
};

std::mutex cacheMu;
std::vector<CacheEntry>& cacheEntries()
{
    static std::vector<CacheEntry> c;
    return c;
}
uint64_t cacheTick = 0;

std::shared_ptr<const AlignedVector<float>>
roundDense(const DenseMatrix& b, Precision p)
{
    auto buf = std::make_shared<AlignedVector<float>>(b.size());
    float* out = buf->data();
    const float* in = b.data();
    // Table resolved on the calling thread (a thread-local
    // ScopedSimdMode would not reach parallelFor workers).
    const simd::Kernels& K = simd::kernels();
    parallelFor(0, b.rows(), kRowGrain,
                [&](int64_t lo, int64_t hi) {
        const int64_t e_lo = lo * b.cols();
        const int64_t e_hi = hi * b.cols();
        K.roundPanel(out + e_lo, in + e_lo, e_hi - e_lo, p);
    });
    stats().roundingOps.fetch_add(static_cast<uint64_t>(b.size()),
                                  std::memory_order_relaxed);
    // roundPanel itself does not book elements (chunk sizes follow
    // the parallelFor decomposition); count the whole pass here,
    // definitionally against the fixed 8-wide block, so the
    // engine.simd.* totals are thread-count independent.
    const auto total = static_cast<uint64_t>(b.size());
    if (K.isa == simd::Isa::Scalar) {
        simd::stats().tailElems.fetch_add(total,
                                          std::memory_order_relaxed);
    } else if (K.isa != simd::Isa::Off) {
        simd::stats().vectorElems.fetch_add(
            total - total % 8, std::memory_order_relaxed);
        simd::stats().tailElems.fetch_add(total % 8,
                                          std::memory_order_relaxed);
    }
    return buf;
}

} // namespace

PreparedDense::PreparedDense(const DenseMatrix& b, Precision p)
    : nRows(b.rows()), nCols(b.cols())
{
    if (p == Precision::Fp32) {
        // No rounding, no copy: point straight at the caller's data.
        base = b.data();
        return;
    }

    DTC_TRACE_SCOPE("engine.prepare_dense");
    const uint64_t hash = contentHash(b);
    {
        std::lock_guard<std::mutex> lock(cacheMu);
        for (CacheEntry& e : cacheEntries()) {
            if (e.src == static_cast<const void*>(b.data()) &&
                e.rows == nRows && e.cols == nCols && e.prec == p &&
                e.hash == hash) {
                e.tick = ++cacheTick;
                owned = e.buf;
                base = owned->data();
                cached = true;
                stats().panelHits.fetch_add(
                    1, std::memory_order_relaxed);
                return;
            }
        }
    }

    stats().panelMisses.fetch_add(1, std::memory_order_relaxed);
    owned = roundDense(b, p);
    base = owned->data();

    std::lock_guard<std::mutex> lock(cacheMu);
    auto& cache = cacheEntries();
    // A same-pointer entry whose hash no longer matches is stale
    // (matrix mutated in place): replace it instead of growing.
    for (CacheEntry& e : cache) {
        if (e.src == static_cast<const void*>(b.data()) &&
            e.rows == nRows && e.cols == nCols && e.prec == p) {
            e.hash = hash;
            e.tick = ++cacheTick;
            e.buf = owned;
            return;
        }
    }
    if (cache.size() >= kCacheCapacity) {
        auto lru = std::min_element(
            cache.begin(), cache.end(),
            [](const CacheEntry& a, const CacheEntry& b2) {
                return a.tick < b2.tick;
            });
        cache.erase(lru);
    }
    cache.push_back({b.data(), nRows, nCols, p, hash, ++cacheTick,
                     owned});
    obs::metrics::gauge("engine.panel_cache_entries")
        .set(static_cast<double>(cache.size()));
}

void
clearPreparedDenseCache()
{
    std::lock_guard<std::mutex> lock(cacheMu);
    cacheEntries().clear();
}

} // namespace engine
} // namespace dtc
