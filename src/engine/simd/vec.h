/**
 * @file
 * Fixed-width vector abstraction for the per-ISA micro-kernel TUs.
 *
 * Included only by the kernels_*.cc translation units, each of which
 * defines exactly one of DTC_SIMD_BACKEND_SCALAR /
 * DTC_SIMD_BACKEND_AVX2 / DTC_SIMD_BACKEND_AVX512 before inclusion
 * and is compiled with the matching -m flags *plus -ffp-contract=off*
 * (mandatory: a contracted FMA would fuse the separate multiply and
 * add these helpers emit and break bitwise identity with the scalar
 * engine).
 *
 * Two op families:
 *   - 8-wide __m256 helpers (AVX2 and AVX-512 TUs; -mavx512f implies
 *     AVX2, and -mavx512vl makes the 256-bit EVEX forms available);
 *   - 16-wide __m512 helpers (AVX-512 TU only).
 *
 * The rounding helpers reproduce common/precision.cc bit for bit:
 * RNE mantissa truncation as integer arithmetic on the float bit
 * patterns (add (1<<(drop-1))-1 + lsb, mask the low bits), with
 * non-finite inputs passed through unchanged, and for FP16 the
 * saturate-beyond-65504 / flush-below-min-normal semantics of the
 * hardware MMA path.  All loads/stores are unaligned-instruction
 * forms: buffer *bases* are 64-byte aligned (common/aligned.h) but
 * panel-offset row interiors need not be.
 */
#ifndef DTC_ENGINE_SIMD_VEC_H
#define DTC_ENGINE_SIMD_VEC_H

#include <cstdint>

#if defined(DTC_SIMD_BACKEND_AVX2) || defined(DTC_SIMD_BACKEND_AVX512)
#include <immintrin.h>
#endif

namespace dtc {
namespace engine {
namespace simd {
namespace vec {

#if defined(DTC_SIMD_BACKEND_AVX2) || defined(DTC_SIMD_BACKEND_AVX512)

// ---- 8-wide float (__m256) -----------------------------------------

inline __m256
load8(const float* p)
{
    return _mm256_loadu_ps(p);
}

inline void
store8(float* p, __m256 v)
{
    _mm256_storeu_ps(p, v);
}

inline __m256
set8(float x)
{
    return _mm256_set1_ps(x);
}

/** acc + v * b as separate mul then add (no contraction). */
inline __m256
mulAdd8(__m256 acc, __m256 v, __m256 b)
{
    return _mm256_add_ps(acc, _mm256_mul_ps(v, b));
}

/**
 * RNE-truncates the low Drop mantissa bits of every finite lane;
 * non-finite lanes (exponent all-ones: NaN/Inf) pass through.
 * Bit-identical to precision.cc roundMantissa applied per lane.
 */
template <int Drop>
inline __m256
roundMantissa8(__m256 x)
{
    const __m256i bits = _mm256_castps_si256(x);
    const __m256i lsb = _mm256_and_si256(
        _mm256_srli_epi32(bits, Drop), _mm256_set1_epi32(1));
    __m256i r = _mm256_add_epi32(
        bits, _mm256_add_epi32(
                  _mm256_set1_epi32((1 << (Drop - 1)) - 1), lsb));
    r = _mm256_and_si256(
        r, _mm256_set1_epi32(~((1 << Drop) - 1)));
    const __m256i exp_mask = _mm256_set1_epi32(0x7F800000);
    const __m256i nonfinite = _mm256_cmpeq_epi32(
        _mm256_and_si256(bits, exp_mask), exp_mask);
    return _mm256_castsi256_ps(
        _mm256_blendv_epi8(r, bits, nonfinite));
}

inline __m256
roundTf32x8(__m256 x)
{
    return roundMantissa8<13>(x);
}

inline __m256
roundBf16x8(__m256 x)
{
    return roundMantissa8<16>(x);
}

inline __m256
roundFp16x8(__m256 x)
{
    const __m256 r = roundMantissa8<13>(x);
    const __m256 abs_mask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
    const __m256 abs_r = _mm256_and_ps(r, abs_mask);
    const __m256 sign = _mm256_andnot_ps(abs_mask, r);
    // Saturate |r| > 65504 to signed infinity; flush |r| below the
    // FP16 min normal to signed zero.  The two masks are disjoint, so
    // application order is immaterial; a +-0 lane "flushes" to the
    // identical +-0.  Non-finite *inputs* were already passed through
    // by roundMantissa8 (their |r| is Inf/NaN: the GT compare leaves
    // Inf saturated to the same signed Inf, and ordered compares are
    // false for NaN — both preserved).
    const __m256 sat =
        _mm256_cmp_ps(abs_r, _mm256_set1_ps(65504.0f), _CMP_GT_OQ);
    const __m256 flush = _mm256_cmp_ps(
        abs_r, _mm256_set1_ps(6.103515625e-5f), _CMP_LT_OQ);
    const __m256 inf = _mm256_castsi256_ps(
        _mm256_set1_epi32(0x7F800000));
    __m256 out = _mm256_blendv_ps(r, _mm256_or_ps(sign, inf), sat);
    out = _mm256_blendv_ps(out, sign, flush);
    return out;
}

/** Pull the cache lines of [p, p + floats) toward L1. */
inline void
prefetch(const float* p, int64_t floats)
{
    if (!p)
        return;
    _mm_prefetch(reinterpret_cast<const char*>(p), _MM_HINT_T0);
    if (floats > 16)
        _mm_prefetch(reinterpret_cast<const char*>(p + 16),
                     _MM_HINT_T0);
}

#endif // AVX2 || AVX512

#if defined(DTC_SIMD_BACKEND_AVX512)

// ---- 16-wide float (__m512) ----------------------------------------

inline __m512
load16(const float* p)
{
    return _mm512_loadu_ps(p);
}

inline void
store16(float* p, __m512 v)
{
    _mm512_storeu_ps(p, v);
}

inline __m512
set16(float x)
{
    return _mm512_set1_ps(x);
}

inline __m512
mulAdd16(__m512 acc, __m512 v, __m512 b)
{
    return _mm512_add_ps(acc, _mm512_mul_ps(v, b));
}

template <int Drop>
inline __m512
roundMantissa16(__m512 x)
{
    const __m512i bits = _mm512_castps_si512(x);
    const __m512i lsb = _mm512_and_si512(
        _mm512_srli_epi32(bits, Drop), _mm512_set1_epi32(1));
    __m512i r = _mm512_add_epi32(
        bits, _mm512_add_epi32(
                  _mm512_set1_epi32((1 << (Drop - 1)) - 1), lsb));
    r = _mm512_and_si512(
        r, _mm512_set1_epi32(~((1 << Drop) - 1)));
    const __m512i exp_mask = _mm512_set1_epi32(0x7F800000);
    const __mmask16 nonfinite = _mm512_cmpeq_epi32_mask(
        _mm512_and_si512(bits, exp_mask), exp_mask);
    return _mm512_castsi512_ps(
        _mm512_mask_blend_epi32(nonfinite, r, bits));
}

inline __m512
roundTf32x16(__m512 x)
{
    return roundMantissa16<13>(x);
}

inline __m512
roundBf16x16(__m512 x)
{
    return roundMantissa16<16>(x);
}

inline __m512
roundFp16x16(__m512 x)
{
    const __m512 r = roundMantissa16<13>(x);
    const __m512 abs_mask =
        _mm512_castsi512_ps(_mm512_set1_epi32(0x7FFFFFFF));
    const __m512 abs_r = _mm512_and_ps(r, abs_mask);
    const __m512 sign = _mm512_andnot_ps(abs_mask, r);
    const __mmask16 sat = _mm512_cmp_ps_mask(
        abs_r, _mm512_set1_ps(65504.0f), _CMP_GT_OQ);
    const __mmask16 flush = _mm512_cmp_ps_mask(
        abs_r, _mm512_set1_ps(6.103515625e-5f), _CMP_LT_OQ);
    const __m512 inf = _mm512_castsi512_ps(
        _mm512_set1_epi32(0x7F800000));
    __m512 out =
        _mm512_mask_blend_ps(sat, r, _mm512_or_ps(sign, inf));
    out = _mm512_mask_blend_ps(flush, out, sign);
    return out;
}

#endif // AVX512

#if defined(DTC_SIMD_BACKEND_SCALAR)

/** Portable prefetch hint (a no-op on targets without one). */
inline void
prefetch(const float* p, int64_t)
{
    if (p)
        __builtin_prefetch(p, 0, 3);
}

#endif // SCALAR

} // namespace vec
} // namespace simd
} // namespace engine
} // namespace dtc

#endif // DTC_ENGINE_SIMD_VEC_H
