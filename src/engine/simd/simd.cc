#include "engine/simd/simd.h"

#include <string>

#include "common/env.h"
#include "common/error.h"
#include "engine/engine.h"
#include "engine/simd/tables.h"

namespace dtc {
namespace engine {
namespace simd {

namespace {

/** -1: no override; else the forced Isa of a ScopedSimdMode. */
thread_local int tlsSimdOverride = -1;

#if defined(DTC_SIMD_HAVE_X86)
bool
cpuHasAvx2()
{
    static const bool has = __builtin_cpu_supports("avx2") != 0;
    return has;
}

bool
cpuHasAvx512()
{
    // The backend uses F (512-bit base), VL (256-bit EVEX remainder
    // step), and DQ/BW for completeness of the integer/blend forms.
    static const bool has = __builtin_cpu_supports("avx512f") &&
                            __builtin_cpu_supports("avx512vl") &&
                            __builtin_cpu_supports("avx512dq") &&
                            __builtin_cpu_supports("avx512bw");
    return has;
}
#endif

/**
 * Parses a DTC_SIMD value.  Unknown strings raise
 * DtcError(InvalidInput) naming the variable (env.h convention).
 */
Isa
parseIsa(const std::string& s)
{
    if (s == "off")
        return Isa::Off;
    if (s == "scalar")
        return Isa::Scalar;
    if (s == "avx2")
        return Isa::Avx2;
    if (s == "avx512")
        return Isa::Avx512;
    DTC_RAISE(ErrorCode::InvalidInput,
              "DTC_SIMD must be one of off|scalar|avx2|avx512, got \""
                  << s << "\"");
}

// ---- The Off table: PR 3's inline loops, bypassing the dispatcher.
// No element counters, no prefetch — bitwise (and observably)
// identical to the engine before this backend existed.

void
offAxpy(float* c, const float* b, float v, int64_t n)
{
    engine::axpy(c, b, v, n);
}

void
offAxpyPrefetch(float* c, const float* b, float v, int64_t n,
                const float* /*next_b*/)
{
    engine::axpy(c, b, v, n);
}

void
offAxpyDouble(double* acc, const float* b, double v, int64_t n)
{
    engine::axpyDouble(acc, b, v, n);
}

void
offTileInner(float* c, int64_t c_stride, const float* tile,
             const float* const* brows, int64_t wh, int64_t bw,
             int64_t n)
{
    for (int64_t i = 0; i < wh; ++i) {
        float* ci = c + i * c_stride;
        const float* trow = tile + i * bw;
        for (int64_t l = 0; l < bw; ++l)
            engine::axpy(ci, brows[l], trow[l], n);
    }
}

void
offRoundPanel(float* out, const float* in, int64_t n, Precision p)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = roundToPrecision(in[i], p);
}

const Kernels&
offTable()
{
    static const Kernels k{Isa::Off,       offAxpy,      offAxpyPrefetch,
                           offAxpyDouble, offTileInner, offRoundPanel};
    return k;
}

} // namespace

const char*
isaName(Isa isa)
{
    switch (isa) {
      case Isa::Off:
        return "off";
      case Isa::Scalar:
        return "scalar";
      case Isa::Avx2:
        return "avx2";
      case Isa::Avx512:
        return "avx512";
    }
    return "?";
}

Isa
detectedIsa()
{
#if defined(DTC_SIMD_HAVE_X86)
    static const Isa isa = [] {
        if (cpuHasAvx512())
            return Isa::Avx512;
        if (cpuHasAvx2())
            return Isa::Avx2;
        return Isa::Scalar;
    }();
    return isa;
#else
    return Isa::Scalar;
#endif
}

bool
isaSupported(Isa isa)
{
    switch (isa) {
      case Isa::Off:
      case Isa::Scalar:
        return true;
      case Isa::Avx2:
#if defined(DTC_SIMD_HAVE_X86)
        return cpuHasAvx2();
#else
        return false;
#endif
      case Isa::Avx512:
#if defined(DTC_SIMD_HAVE_X86)
        return cpuHasAvx512();
#else
        return false;
#endif
    }
    return false;
}

Isa
activeIsa()
{
    if (tlsSimdOverride >= 0)
        return static_cast<Isa>(tlsSimdOverride);
    if (const auto s = env::readString("DTC_SIMD")) {
        const Isa isa = parseIsa(*s);
        DTC_CHECK_CODE(isaSupported(isa), ErrorCode::InvalidInput,
                       "DTC_SIMD=" << *s
                                   << " requested but this build/CPU "
                                      "does not support it (detected: "
                                   << isaName(detectedIsa()) << ")");
        return isa;
    }
    return detectedIsa();
}

ScopedSimdMode::ScopedSimdMode(Isa isa) : prev(tlsSimdOverride)
{
    tlsSimdOverride = static_cast<int>(isa);
}

ScopedSimdMode::~ScopedSimdMode()
{
    tlsSimdOverride = prev;
}

const Kernels&
kernelsFor(Isa isa)
{
    switch (isa) {
      case Isa::Off:
        return offTable();
      case Isa::Scalar:
        return detail::scalarTable();
      case Isa::Avx2:
#if defined(DTC_SIMD_HAVE_X86)
        if (cpuHasAvx2())
            return detail::avx2Table();
#endif
        break;
      case Isa::Avx512:
#if defined(DTC_SIMD_HAVE_X86)
        if (cpuHasAvx512())
            return detail::avx512Table();
#endif
        break;
    }
    DTC_RAISE(ErrorCode::InvalidInput,
              "SIMD backend \"" << isaName(isa)
                                << "\" is not available on this "
                                   "build/CPU (detected: "
                                << isaName(detectedIsa()) << ")");
}

const Kernels&
kernels()
{
    const Isa isa = activeIsa();
    static obs::Gauge& g = obs::metrics::gauge("engine.simd.isa");
    g.set(static_cast<double>(isa));
    return kernelsFor(isa);
}

SimdStats&
stats()
{
    static SimdStats s{
        obs::metrics::counter("engine.simd.vector_elems"),
        obs::metrics::counter("engine.simd.tail_elems"),
    };
    return s;
}

void
resetStats()
{
    stats().vectorElems.store(0, std::memory_order_relaxed);
    stats().tailElems.store(0, std::memory_order_relaxed);
}

} // namespace simd
} // namespace engine
} // namespace dtc
