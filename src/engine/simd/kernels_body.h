/**
 * @file
 * Micro-kernel bodies shared by the per-ISA translation units.
 *
 * Each kernels_*.cc defines DTC_SIMD_NS (a unique namespace) and one
 * DTC_SIMD_BACKEND_* macro, then includes this header; the per-ISA
 * code paths are selected with the preprocessor so every TU compiles
 * only the instructions its -m flags permit.  NOT a normal header —
 * no include guard, include it exactly once per backend TU.
 *
 * Contract (see simd.h): per output element, every backend performs
 * the scalar engine's exact FP32 sequence — separate multiply then
 * add in ascending-j / ascending-lane order.  The TUs are compiled
 * with -ffp-contract=off, so the compiler cannot fuse them either.
 *
 * Element counters are defined against the fixed 8-wide j-block
 * (vector = n - n%8, tail = n%8) regardless of the backend's physical
 * width, so AVX2 and AVX-512 hosts produce identical counter totals;
 * the scalar backend attributes everything to the tail counter.
 * roundPanel deliberately does not count (its chunk sizes follow the
 * parallelFor decomposition; the caller counts whole passes).
 */
#include <cstdint>

#include "common/precision.h"
#include "engine/simd/simd.h"
#include "engine/simd/vec.h"

namespace dtc {
namespace engine {
namespace simd {
namespace DTC_SIMD_NS {

namespace {

/**
 * Books @p scale axpy-equivalents of length @p n (scale = 1 for a
 * plain axpy, wh*bw for a dense tile).
 */
inline void
countSplit(int64_t n, int64_t scale)
{
    SimdStats& s = stats();
#if defined(DTC_SIMD_BACKEND_SCALAR)
    s.tailElems.fetch_add(static_cast<uint64_t>(n * scale),
                          std::memory_order_relaxed);
#else
    // Skip zero-sized halves: an aligned width (n % 8 == 0) costs one
    // atomic, not two — booking is on every axpy's fast path.
    if (n - (n & 7) > 0) {
        s.vectorElems.fetch_add(
            static_cast<uint64_t>((n - (n & 7)) * scale),
            std::memory_order_relaxed);
    }
    if ((n & 7) > 0) {
        s.tailElems.fetch_add(
            static_cast<uint64_t>((n & 7) * scale),
            std::memory_order_relaxed);
    }
#endif
}

/** axpy body without counting (shared by axpy / axpyPrefetch / tiles). */
inline void
axpyBody(float* __restrict c, const float* __restrict b, float v,
         int64_t n)
{
    int64_t j = 0;
#if defined(DTC_SIMD_BACKEND_SCALAR)
    for (; j + 8 <= n; j += 8) {
        for (int64_t u = 0; u < 8; ++u)
            c[j + u] += v * b[j + u];
    }
#else
#if defined(DTC_SIMD_BACKEND_AVX512)
    const __m512 v16 = vec::set16(v);
    for (; j + 16 <= n; j += 16)
        vec::store16(c + j, vec::mulAdd16(vec::load16(c + j), v16,
                                          vec::load16(b + j)));
#endif
    // AVX2 main loop; under AVX-512 this is the 8..15 remainder step.
    const __m256 v8 = vec::set8(v);
    for (; j + 8 <= n; j += 8)
        vec::store8(c + j, vec::mulAdd8(vec::load8(c + j), v8,
                                        vec::load8(b + j)));
#endif
    for (; j < n; ++j)
        c[j] += v * b[j];
}

void
axpy(float* c, const float* b, float v, int64_t n)
{
    countSplit(n, 1);
    axpyBody(c, b, v, n);
}

void
axpyPrefetch(float* c, const float* b, float v, int64_t n,
             const float* next_b)
{
    vec::prefetch(next_b, n);
    countSplit(n, 1);
    axpyBody(c, b, v, n);
}

void
axpyDouble(double* __restrict acc, const float* __restrict b,
           double v, int64_t n)
{
    countSplit(n, 1);
    int64_t j = 0;
#if defined(DTC_SIMD_BACKEND_SCALAR)
    for (; j + 8 <= n; j += 8) {
        for (int64_t u = 0; u < 8; ++u)
            acc[j + u] += v * static_cast<double>(b[j + u]);
    }
#elif defined(DTC_SIMD_BACKEND_AVX512)
    const __m512d vd = _mm512_set1_pd(v);
    for (; j + 8 <= n; j += 8) {
        const __m512d bd = _mm512_cvtps_pd(_mm256_loadu_ps(b + j));
        _mm512_storeu_pd(
            acc + j, _mm512_add_pd(_mm512_loadu_pd(acc + j),
                                   _mm512_mul_pd(vd, bd)));
    }
#else
    const __m256d vd = _mm256_set1_pd(v);
    for (; j + 4 <= n; j += 4) {
        const __m256d bd = _mm256_cvtps_pd(_mm_loadu_ps(b + j));
        _mm256_storeu_pd(
            acc + j, _mm256_add_pd(_mm256_loadu_pd(acc + j),
                                   _mm256_mul_pd(vd, bd)));
    }
#endif
    for (; j < n; ++j)
        acc[j] += v * static_cast<double>(b[j]);
}

/** Widest lane count the register-blocked tile path keeps in registers. */
[[maybe_unused]] constexpr int64_t kMaxTileBw = 16;

void
tileInner(float* c, int64_t c_stride, const float* tile,
          const float* const* brows, int64_t wh, int64_t bw,
          int64_t n)
{
    countSplit(n, wh * bw);
#if !defined(DTC_SIMD_BACKEND_SCALAR)
    if (bw <= kMaxTileBw) {
        // Register-blocked: load each B row's j-chunk once and reuse
        // it across all wh C rows (the fragment-reuse half of the
        // m16n8k8 MMA).  Loop order is j-chunk / i / l, so per C
        // element the accumulation is still ascending-l — bitwise
        // identical to wh*bw successive axpy calls.
        int64_t j = 0;
#if defined(DTC_SIMD_BACKEND_AVX512)
        for (; j + 16 <= n; j += 16) {
            __m512 bv[kMaxTileBw];
            for (int64_t l = 0; l < bw; ++l)
                bv[l] = vec::load16(brows[l] + j);
            for (int64_t i = 0; i < wh; ++i) {
                float* ci = c + i * c_stride;
                const float* trow = tile + i * bw;
                __m512 acc = vec::load16(ci + j);
                for (int64_t l = 0; l < bw; ++l)
                    acc = vec::mulAdd16(acc, vec::set16(trow[l]),
                                        bv[l]);
                vec::store16(ci + j, acc);
            }
        }
#endif
        for (; j + 8 <= n; j += 8) {
            __m256 bv[kMaxTileBw];
            for (int64_t l = 0; l < bw; ++l)
                bv[l] = vec::load8(brows[l] + j);
            for (int64_t i = 0; i < wh; ++i) {
                float* ci = c + i * c_stride;
                const float* trow = tile + i * bw;
                __m256 acc = vec::load8(ci + j);
                for (int64_t l = 0; l < bw; ++l)
                    acc = vec::mulAdd8(acc, vec::set8(trow[l]),
                                       bv[l]);
                vec::store8(ci + j, acc);
            }
        }
        for (; j < n; ++j) {
            for (int64_t i = 0; i < wh; ++i) {
                float* ci = c + i * c_stride;
                const float* trow = tile + i * bw;
                for (int64_t l = 0; l < bw; ++l)
                    ci[j] += trow[l] * brows[l][j];
            }
        }
        return;
    }
#endif
    // Scalar backend, or a block shape too wide to register-block:
    // the PR 3 loop nest (per row, per lane, axpy across the panel).
    for (int64_t i = 0; i < wh; ++i) {
        float* ci = c + i * c_stride;
        const float* trow = tile + i * bw;
        for (int64_t l = 0; l < bw; ++l)
            axpyBody(ci, brows[l], trow[l], n);
    }
}

void
roundPanel(float* __restrict out, const float* __restrict in,
           int64_t n, Precision p)
{
#if defined(DTC_SIMD_BACKEND_SCALAR)
    for (int64_t i = 0; i < n; ++i)
        out[i] = roundToPrecision(in[i], p);
#else
    if (p == Precision::Fp32) {
        for (int64_t i = 0; i < n; ++i)
            out[i] = in[i];
        return;
    }
    int64_t j = 0;
#if defined(DTC_SIMD_BACKEND_AVX512)
#define DTC_SIMD_ROUND16(FN)                                          \
    for (; j + 16 <= n; j += 16)                                      \
        vec::store16(out + j, vec::FN(vec::load16(in + j)));
#else
#define DTC_SIMD_ROUND16(FN)
#endif
#define DTC_SIMD_ROUND_LOOP(FN16, FN8)                                \
    do {                                                              \
        DTC_SIMD_ROUND16(FN16)                                        \
        for (; j + 8 <= n; j += 8)                                    \
            vec::store8(out + j, vec::FN8(vec::load8(in + j)));       \
    } while (0)
    switch (p) {
      case Precision::Tf32:
        DTC_SIMD_ROUND_LOOP(roundTf32x16, roundTf32x8);
        break;
      case Precision::Bf16:
        DTC_SIMD_ROUND_LOOP(roundBf16x16, roundBf16x8);
        break;
      case Precision::Fp16:
        DTC_SIMD_ROUND_LOOP(roundFp16x16, roundFp16x8);
        break;
      case Precision::Fp32:
        break; // handled above
    }
#undef DTC_SIMD_ROUND_LOOP
#undef DTC_SIMD_ROUND16
    for (; j < n; ++j)
        out[j] = roundToPrecision(in[j], p);
#endif
}

} // namespace

/** The backend's dispatch table (see tables.h). */
Kernels
makeTable(Isa isa)
{
    return Kernels{isa,      axpy,      axpyPrefetch,
                   axpyDouble, tileInner, roundPanel};
}

} // namespace DTC_SIMD_NS
} // namespace simd
} // namespace engine
} // namespace dtc
