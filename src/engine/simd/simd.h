/**
 * @file
 * Runtime-dispatched SIMD micro-kernel backend of the host engine.
 *
 * PR 3's engine reproduced the paper's *data movement* (flat lanes,
 * dense 16x8 tiles, pre-rounded column panels) but executed every
 * FLOP through scalar j-block loops — the host had the layout half of
 * DTC-SpMM without the MMA half.  This module is that compute tier: a
 * small table of register-blocked micro-kernels (axpy, residue-lane
 * axpy with software prefetch, double-accumulation axpy, the dense
 * windowHeight x blockWidth tile inner product, and the PreparedDense
 * precision-rounding pass), each implemented per ISA:
 *
 *   - scalar  — portable fallback, same loops as PR 3;
 *   - avx2    — 8-wide __m256 (compiled with -mavx2);
 *   - avx512  — 16-wide __m512 with an 8-wide remainder step
 *               (compiled with -mavx512{f,dq,bw,vl}).
 *
 * Bitwise identity is a hard contract: every backend performs, per
 * output element, the exact FP32 operation sequence of the scalar
 * path — separate multiply then add (the per-ISA translation units
 * are compiled with -ffp-contract=off so no FMA contraction can merge
 * them) and ascending-j, ascending-lane accumulation order.
 * Vectorizing across the j (column) dimension is order-preserving
 * because each c[j] += v * b[j] is independent per j.
 *
 * Dispatch resolution, strongest first: an active ScopedSimdMode on
 * the calling thread, the typed DTC_SIMD environment knob
 * (off|scalar|avx2|avx512 — anything else, or an ISA the CPU lacks,
 * raises DtcError(InvalidInput)), then cpuid auto-detection.  "off"
 * bypasses the dispatcher entirely (PR 3's inline loops, no
 * counters); "scalar" selects the dispatcher's portable backend.
 *
 * Observability: the selected ISA is published as the
 * "engine.simd.isa" gauge, and every dispatched call splits its
 * elements into "engine.simd.vector_elems" / "engine.simd.tail_elems"
 * counters.  The split is *defined* against the fixed 8-wide j-block
 * (vector = n - n%8, tail = n%8) rather than the physical lane count,
 * so an AVX-512 host and an AVX2 host report identical counters and
 * bench_compare can gate them exactly across machines.
 */
#ifndef DTC_ENGINE_SIMD_SIMD_H
#define DTC_ENGINE_SIMD_SIMD_H

#include <cstdint>

#include "common/precision.h"
#include "obs/metrics.h"

namespace dtc {
namespace engine {
namespace simd {

/** Backend selector.  Order matters: later entries are wider ISAs. */
enum class Isa
{
    Off,    ///< Bypass the dispatcher (the PR 3 inline loops).
    Scalar, ///< Portable dispatcher backend (counts elements).
    Avx2,   ///< 8-wide __m256.
    Avx512, ///< 16-wide __m512 (+ 8-wide remainder step).
};

/** Display name: "off", "scalar", "avx2", "avx512". */
const char* isaName(Isa isa);

/** Widest ISA this CPU supports (never Off; cached after first call). */
Isa detectedIsa();

/** True when this build + CPU can execute @p isa. */
bool isaSupported(Isa isa);

/**
 * The backend the calling thread should use right now.  Resolution,
 * strongest first: ScopedSimdMode on this thread, the DTC_SIMD
 * environment variable (re-read per call so tests can toggle it;
 * typed — unknown or unsupported values raise
 * DtcError(InvalidInput)), then detectedIsa().
 */
Isa activeIsa();

/** RAII thread-local ISA override (mirrors ScopedEngineMode). */
class ScopedSimdMode
{
  public:
    explicit ScopedSimdMode(Isa isa);
    ~ScopedSimdMode();

    ScopedSimdMode(const ScopedSimdMode&) = delete;
    ScopedSimdMode& operator=(const ScopedSimdMode&) = delete;

  private:
    int prev;
};

/**
 * The micro-kernel table of one backend.  Callers resolve the table
 * once per compute() call — on the calling thread, *before* entering
 * parallelFor, so a ScopedSimdMode override propagates into worker
 * threads via the captured reference.
 */
struct Kernels
{
    Isa isa;

    /** c[0..n) += v * b[0..n); ascending j, separate mul + add. */
    void (*axpy)(float* c, const float* b, float v, int64_t n);

    /**
     * axpy plus a software prefetch of @p next_b (the next sparse
     * lane's B row; nullptr = nothing to prefetch).  The residue-lane
     * analog of the paper's non-condensed fetch path: the next lane's
     * B row is pulled toward L1 while the current lane multiplies.
     */
    void (*axpyPrefetch)(float* c, const float* b, float v, int64_t n,
                         const float* next_b);

    /** acc[0..n) += v * (double)b[0..n) (referenceSpmm). */
    void (*axpyDouble)(double* acc, const float* b, double v,
                       int64_t n);

    /**
     * Dense-tile inner product, the host analog of one m16n8k8 MMA:
     * for every tile row i in [0, wh) and column j in [0, n),
     *   c[i*c_stride + j] += sum over l in [0, bw) of
     *                        tile[i*bw + l] * brows[l][j],
     * accumulated in ascending-l order per element (bitwise identical
     * to bw successive axpy calls).  @p brows holds the bw B-row
     * pointers, already offset to the current column panel.
     */
    void (*tileInner)(float* c, int64_t c_stride, const float* tile,
                      const float* const* brows, int64_t wh,
                      int64_t bw, int64_t n);

    /**
     * out[0..n) = roundToPrecision(in[0..n), p) — the PreparedDense
     * round-to-storage pass.  Does NOT bump the simd element
     * counters: its chunk sizes depend on parallelFor decomposition,
     * so the caller counts once per whole pass instead (keeping
     * counter totals independent of thread count).
     */
    void (*roundPanel)(float* out, const float* in, int64_t n,
                       Precision p);
};

/** Table for activeIsa(); also publishes the "engine.simd.isa" gauge. */
const Kernels& kernels();

/**
 * Table for a specific ISA.  Raises DtcError(InvalidInput) when the
 * backend is not compiled into this build or the CPU lacks it.
 */
const Kernels& kernelsFor(Isa isa);

/**
 * Element counters, backed by the metrics registry under
 * "engine.simd.vector_elems" / "engine.simd.tail_elems".  Defined
 * against the fixed 8-wide j-block regardless of physical ISA width
 * (see file comment); the scalar backend counts everything as tail;
 * the Off table counts nothing.
 */
struct SimdStats
{
    obs::Counter& vectorElems;
    obs::Counter& tailElems;
};

SimdStats& stats();
void resetStats();

} // namespace simd
} // namespace engine
} // namespace dtc

#endif // DTC_ENGINE_SIMD_SIMD_H
