/**
 * @file
 * Internal: per-backend dispatch-table accessors, defined by the
 * kernels_*.cc translation units and consumed by simd.cc.  The AVX
 * backends exist only in x86-64 builds (CMake compiles those TUs and
 * defines DTC_SIMD_HAVE_X86 when the toolchain supports the flags).
 */
#ifndef DTC_ENGINE_SIMD_TABLES_H
#define DTC_ENGINE_SIMD_TABLES_H

#include "engine/simd/simd.h"

namespace dtc {
namespace engine {
namespace simd {
namespace detail {

const Kernels& scalarTable();
#if defined(DTC_SIMD_HAVE_X86)
const Kernels& avx2Table();
const Kernels& avx512Table();
#endif

} // namespace detail
} // namespace simd
} // namespace engine
} // namespace dtc

#endif // DTC_ENGINE_SIMD_TABLES_H
