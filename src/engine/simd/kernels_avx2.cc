/**
 * @file
 * AVX2 backend: 8-wide __m256 micro-kernels.  Compiled with
 * -mavx2 -ffp-contract=off (see src/CMakeLists.txt) — the contract
 * flag is load-bearing: it stops the compiler from fusing the
 * separate multiply and add into an FMA, which would change low-order
 * bits versus the scalar engine.
 */
#define DTC_SIMD_BACKEND_AVX2 1
#define DTC_SIMD_NS avx2_impl
#include "engine/simd/kernels_body.h"
#undef DTC_SIMD_NS
#undef DTC_SIMD_BACKEND_AVX2

#include "engine/simd/tables.h"

namespace dtc {
namespace engine {
namespace simd {
namespace detail {

const Kernels&
avx2Table()
{
    static const Kernels k = avx2_impl::makeTable(Isa::Avx2);
    return k;
}

} // namespace detail
} // namespace simd
} // namespace engine
} // namespace dtc
