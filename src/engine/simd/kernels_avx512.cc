/**
 * @file
 * AVX-512 backend: 16-wide __m512 main loops with one 8-wide __m256
 * step for the 8..15 remainder, then a scalar tail — so the element
 * split it *books* matches the fixed 8-wide counter definition even
 * though the physical width is 16.  Compiled with
 * -mavx512f -mavx512dq -mavx512bw -mavx512vl -ffp-contract=off.
 */
#define DTC_SIMD_BACKEND_AVX512 1
#define DTC_SIMD_NS avx512_impl
#include "engine/simd/kernels_body.h"
#undef DTC_SIMD_NS
#undef DTC_SIMD_BACKEND_AVX512

#include "engine/simd/tables.h"

namespace dtc {
namespace engine {
namespace simd {
namespace detail {

const Kernels&
avx512Table()
{
    static const Kernels k = avx512_impl::makeTable(Isa::Avx512);
    return k;
}

} // namespace detail
} // namespace simd
} // namespace engine
} // namespace dtc
