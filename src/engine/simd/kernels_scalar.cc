/**
 * @file
 * Portable scalar backend of the SIMD dispatcher (DTC_SIMD=scalar and
 * the fallback on CPUs without AVX2).  Same loops as the PR 3 inline
 * engine micro-kernels, but routed through the dispatch table and
 * booking every element to the tail counter.
 */
#define DTC_SIMD_BACKEND_SCALAR 1
#define DTC_SIMD_NS scalar_impl
#include "engine/simd/kernels_body.h"
#undef DTC_SIMD_NS
#undef DTC_SIMD_BACKEND_SCALAR

#include "engine/simd/tables.h"

namespace dtc {
namespace engine {
namespace simd {
namespace detail {

const Kernels&
scalarTable()
{
    static const Kernels k = scalar_impl::makeTable(Isa::Scalar);
    return k;
}

} // namespace detail
} // namespace simd
} // namespace engine
} // namespace dtc
