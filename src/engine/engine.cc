#include "engine/engine.h"

#include <cstdlib>

namespace dtc {
namespace engine {

namespace {

/** -1: no override; 0/1: forced off/on by ScopedEngineMode. */
thread_local int tlsEngineOverride = -1;

} // namespace

bool
enabled()
{
    if (tlsEngineOverride >= 0)
        return tlsEngineOverride != 0;
    if (const char* env = std::getenv("DTC_ENGINE"))
        return env[0] != '0';
    return true;
}

ScopedEngineMode::ScopedEngineMode(bool on) : prev(tlsEngineOverride)
{
    tlsEngineOverride = on ? 1 : 0;
}

ScopedEngineMode::~ScopedEngineMode()
{
    tlsEngineOverride = prev;
}

int64_t
panelCols(int64_t n)
{
    return n <= 2 * kPanelCols ? n : kPanelCols;
}

Stats&
stats()
{
    static Stats s{
        obs::metrics::counter("engine.b_round_ops"),
        obs::metrics::counter("engine.panel_hits"),
        obs::metrics::counter("engine.panel_misses"),
    };
    return s;
}

void
resetStats()
{
    stats().roundingOps.store(0, std::memory_order_relaxed);
    stats().panelHits.store(0, std::memory_order_relaxed);
    stats().panelMisses.store(0, std::memory_order_relaxed);
}

} // namespace engine
} // namespace dtc
