#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include <unistd.h>

#include "common/env.h"
#include "engine/simd/simd.h"

namespace dtc {
namespace engine {

namespace {

/** -1: no override; 0/1: forced off/on by ScopedEngineMode. */
thread_local int tlsEngineOverride = -1;

/** <= 0: no override; else forced by ScopedPanelCols. */
thread_local int64_t tlsPanelCols = 0;

/**
 * One-shot cache probe: size the panel so one row window's C slab
 * (windowHeight = 16 rows) plus a TC block's B rows (blockWidth = 8)
 * — 24 float rows, 96 bytes per column — fill about a quarter of L2,
 * leaving the rest for the index arrays and the other panels' tails.
 * Falls back to L3/8 when L2 is unreported, and to kPanelCols when
 * the probe is unavailable (containers often report 0).  The result
 * is rounded down to a multiple of kJBlock and clamped to [64, 4096].
 */
int64_t
probePanelCols()
{
    long bytes = -1;
#if defined(_SC_LEVEL2_CACHE_SIZE)
    bytes = ::sysconf(_SC_LEVEL2_CACHE_SIZE);
#endif
#if defined(_SC_LEVEL3_CACHE_SIZE)
    if (bytes <= 0) {
        const long l3 = ::sysconf(_SC_LEVEL3_CACHE_SIZE);
        if (l3 > 0)
            bytes = l3 / 8;
    }
#endif
    if (bytes <= 0)
        return kPanelCols;
    constexpr int64_t kBytesPerCol = (16 + 8) * 4;
    int64_t cols = (static_cast<int64_t>(bytes) / 4) / kBytesPerCol;
    cols &= ~(kJBlock - 1);
    return std::clamp<int64_t>(cols, 64, 4096);
}

} // namespace

bool
enabled()
{
    if (tlsEngineOverride >= 0)
        return tlsEngineOverride != 0;
    if (const char* env = std::getenv("DTC_ENGINE"))
        return env[0] != '0';
    return true;
}

ScopedEngineMode::ScopedEngineMode(bool on) : prev(tlsEngineOverride)
{
    tlsEngineOverride = on ? 1 : 0;
}

ScopedEngineMode::~ScopedEngineMode()
{
    tlsEngineOverride = prev;
}

int64_t
panelColsBase()
{
    if (tlsPanelCols > 0)
        return tlsPanelCols;
    if (const auto v = env::readInt64("DTC_PANEL_COLS", 8, 1 << 20))
        return *v;
    static std::atomic<int64_t> probed{0};
    int64_t base = probed.load(std::memory_order_relaxed);
    if (base == 0) {
        base = probePanelCols();
        probed.store(base, std::memory_order_relaxed);
        obs::metrics::gauge("engine.panel_cols")
            .set(static_cast<double>(base));
    }
    return base;
}

ScopedPanelCols::ScopedPanelCols(int64_t cols) : prev(tlsPanelCols)
{
    tlsPanelCols = cols;
}

ScopedPanelCols::~ScopedPanelCols()
{
    tlsPanelCols = prev;
}

int64_t
panelCols(int64_t n)
{
    const int64_t base = panelColsBase();
    return n <= 2 * base ? n : base;
}

Stats&
stats()
{
    static Stats s{
        obs::metrics::counter("engine.b_round_ops"),
        obs::metrics::counter("engine.panel_hits"),
        obs::metrics::counter("engine.panel_misses"),
    };
    return s;
}

void
resetStats()
{
    stats().roundingOps.store(0, std::memory_order_relaxed);
    stats().panelHits.store(0, std::memory_order_relaxed);
    stats().panelMisses.store(0, std::memory_order_relaxed);
}

} // namespace engine
} // namespace dtc
