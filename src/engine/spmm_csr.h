/**
 * @file
 * Engine drivers for CSR-shaped SpMM — the panel-tiled, pre-rounded
 * hot loops behind the reference, cuSPARSE-like, TCGNN and
 * Sputnik-like kernels (anything that walks row -> nonzeros ->
 * N-wide B row).
 *
 * Loop structure (per parallelFor chunk of rows):
 *
 *   for each column panel [j0, j0+pn):          // engine::panelCols
 *     for each row r in the chunk:
 *       for each nonzero k of r:                // CSR order
 *         axpy(C[r]+j0, Bprep[col(k)]+j0, v(k), pn)
 *
 * Panel tiling only reorders work across *distinct* output columns;
 * for any single C element the nonzeros are applied in exactly the
 * CSR order the scalar loops use, so outputs are bitwise identical.
 * B comes from PreparedDense (rounded once); A values are rounded
 * inline per panel — O(nnz * N/panel), negligible next to the
 * O(nnz*N) B-rounding this replaces.
 */
#ifndef DTC_ENGINE_SPMM_CSR_H
#define DTC_ENGINE_SPMM_CSR_H

#include <cstdint>

#include "common/precision.h"
#include "matrix/dense.h"

namespace dtc {
namespace engine {

/**
 * C = A * B with operands rounded to @p p (Fp32 = no rounding) and
 * FP32 accumulation.  @p c must be pre-sized; it is zeroed here.
 * Rows are processed in parallel chunks of @p grain.
 */
void spmmCsrRounded(int64_t rows, const int64_t* row_ptr,
                    const int32_t* col_idx, const float* vals,
                    Precision p, const DenseMatrix& b, DenseMatrix& c,
                    int64_t grain);

/**
 * C = A * B with double accumulation rounded to float at the end
 * (the referenceSpmm numerics).  Every element of @p c is written.
 */
void spmmCsrDoubleAcc(int64_t rows, const int64_t* row_ptr,
                      const int32_t* col_idx, const float* vals,
                      const DenseMatrix& b, DenseMatrix& c,
                      int64_t grain);

} // namespace engine
} // namespace dtc

#endif // DTC_ENGINE_SPMM_CSR_H
