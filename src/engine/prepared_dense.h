/**
 * @file
 * PreparedDense — the engine's B-panel cache.
 *
 * Tensor-core kernels round every B operand to the MMA input
 * precision (TF32/BF16/FP16).  The scalar paths do that inside the
 * innermost loop — O(nnz*N) roundings per compute() call, the single
 * largest source of per-element overhead on the host.  PreparedDense
 * rounds B exactly once per (contents, precision) pair — O(K*N) —
 * and shares the rounded copy across kernels, tuner candidates and
 * repeated launches through a small process-wide LRU keyed by
 * (data pointer, shape, precision, content hash).  The content hash
 * is a full deterministic pass over B, so a matrix mutated in place
 * (a GCN feature matrix between training steps) re-rounds instead of
 * serving stale panels.
 *
 * Fp32 needs no rounding: acquisition is a zero-copy view of the
 * caller's matrix (the SMB analog — no staging copy at all).
 *
 * Rounding is elementwise, so the rounded buffer is bitwise
 * independent of thread count, and reading rounded values multiplies
 * the exact floats the scalar paths produce inline.
 */
#ifndef DTC_ENGINE_PREPARED_DENSE_H
#define DTC_ENGINE_PREPARED_DENSE_H

#include <cstdint>
#include <memory>

#include "common/aligned.h"
#include "common/precision.h"
#include "matrix/dense.h"

namespace dtc {
namespace engine {

/**
 * A read view of B in the target operand precision, valid while both
 * this object and the source matrix are alive.
 */
class PreparedDense
{
  public:
    /**
     * Acquires the rounded form of @p b under precision @p p: a
     * cache hit, a fresh rounding pass (cache miss), or a
     * pass-through view for Fp32.
     */
    PreparedDense(const DenseMatrix& b, Precision p);

    int64_t rows() const { return nRows; }
    int64_t cols() const { return nCols; }

    /** Row @p r of B, already in the operand precision. */
    const float*
    row(int64_t r) const
    {
        return base + r * nCols;
    }

    /** True when this view came from the process-wide cache. */
    bool fromCache() const { return cached; }

  private:
    std::shared_ptr<const AlignedVector<float>> owned;
    const float* base = nullptr;
    int64_t nRows = 0;
    int64_t nCols = 0;
    bool cached = false;
};

/** Drops every cached panel (tests / benchmarks). */
void clearPreparedDenseCache();

} // namespace engine
} // namespace dtc

#endif // DTC_ENGINE_PREPARED_DENSE_H
