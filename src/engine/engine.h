/**
 * @file
 * Host execution engine — the CPU analog of the paper's runtime
 * optimisations, shared by every SpMM kernel's compute() path.
 *
 * The paper's kernels win through three fetch/index restructurings:
 *   - VFD (Vectorized Fetch Dense): wide, regular B loads;
 *   - IP  (Index Precomputing): nonzero coordinates resolved at
 *     format-conversion time instead of per-MAC;
 *   - SMB (Shared-Memory Bypassing): operands flow to the compute
 *     units without a staging round trip.
 *
 * On the host the same factors dominate, so the engine provides their
 * CPU analogs:
 *   - PreparedDense (prepared_dense.h): B is rounded to the target
 *     tensor-core precision once per (contents, precision) pair —
 *     O(K*N) rounding ops — instead of once per touching nonzero
 *     inside each kernel's hot loop (O(nnz*N));
 *   - column-panel tiling (panelCols): the N dimension is processed
 *     in L1/L2-sized panels so each row window's C slab and the B
 *     panel behind it stay cache-resident (the VFD/SMB analog);
 *   - axpy micro-kernels (below): restrict-qualified, fixed-width
 *     j-blocked inner loops the compiler can vectorize, with the
 *     per-j accumulation order unchanged so results stay *bitwise
 *     identical* to the scalar paths;
 *   - flat (row, col, val) lanes for DTC (built in prepare(), see
 *     DtcKernel): the IP analog.
 *
 * The engine is on by default.  DTC_ENGINE=0 in the environment or a
 * ScopedEngineMode(false) on the calling thread routes kernels
 * through their original scalar loops — the equivalence suite
 * (tests/test_engine_equivalence.cc) pins the two paths to bitwise
 * identity.
 */
#ifndef DTC_ENGINE_ENGINE_H
#define DTC_ENGINE_ENGINE_H

#include <cstdint>

#include "obs/metrics.h"

namespace dtc {
namespace engine {

/**
 * True when kernels should route through the engine.  Resolution,
 * strongest first: an active ScopedEngineMode on the calling thread,
 * the DTC_ENGINE environment variable (0/1, re-read per call so
 * tests can toggle it), then the default (on).
 */
bool enabled();

/** RAII thread-local engine on/off override (mirrors ScopedNumThreads). */
class ScopedEngineMode
{
  public:
    explicit ScopedEngineMode(bool on);
    ~ScopedEngineMode();

    ScopedEngineMode(const ScopedEngineMode&) = delete;
    ScopedEngineMode& operator=(const ScopedEngineMode&) = delete;

  private:
    int prev;
};

/**
 * Column-panel width for dense width @p n: the N dimension is
 * processed panelColsBase() floats at a time so a row window's C slab
 * plus the B rows behind it stay cache-resident.  Widths up to
 * 2*panelColsBase() run as a single panel: one pass over the index
 * arrays is cheaper than two panels of re-scan.
 *
 * Callers on the engine hot paths resolve this once per compute()
 * call on the calling thread (before parallelFor), so a
 * ScopedPanelCols override propagates into worker threads via the
 * captured value.
 */
int64_t panelCols(int64_t n);

/**
 * The base panel width, resolved strongest-first from: an active
 * ScopedPanelCols on the calling thread; the DTC_PANEL_COLS knob
 * (typed, [8, 1M], re-read per call so tests can toggle it); a
 * one-shot sysconf L2/L3 cache probe rounded down to a multiple of
 * kJBlock and clamped to [64, 4096] (cached after the first call, and
 * published as the "engine.panel_cols" gauge); kPanelCols when the
 * probe is unavailable.  Keeping the width a multiple of kJBlock
 * keeps the engine.simd.* element counters independent of the panel
 * split (only the last panel can be partial).
 */
int64_t panelColsBase();

/** RAII thread-local panel-width override (tests pin multi-panel
 * coverage with it regardless of the host's cache size). */
class ScopedPanelCols
{
  public:
    explicit ScopedPanelCols(int64_t cols);
    ~ScopedPanelCols();

    ScopedPanelCols(const ScopedPanelCols&) = delete;
    ScopedPanelCols& operator=(const ScopedPanelCols&) = delete;

  private:
    int64_t prev;
};

/** Fallback panel width in floats (pre-probe default). */
constexpr int64_t kPanelCols = 256;

/** Fixed j-block width of the axpy micro-kernels. */
constexpr int64_t kJBlock = 8;

/**
 * Process-wide engine counters, backed by the observability metrics
 * registry (obs/metrics.h) under the names "engine.b_round_ops",
 * "engine.panel_hits" and "engine.panel_misses" — so they appear in
 * metrics::toJson() snapshots and bench_compare gates on them.
 * obs::Counter mimics std::atomic<uint64_t> (load / store /
 * fetch_add), so call sites are unchanged; resetStats() zeroes them.
 *
 * roundingOps is the measurable form of the O(nnz*N) -> O(K*N)
 * B-rounding reduction: PreparedDense bumps it by rows*cols once per
 * cache miss, while the scalar paths would have performed nnz*N
 * roundings per compute() call.
 */
struct Stats
{
    obs::Counter& roundingOps;  ///< B elements rounded.
    obs::Counter& panelHits;    ///< PreparedDense cache hits.
    obs::Counter& panelMisses;  ///< PreparedDense cache misses.
};

Stats& stats();
void resetStats();

/**
 * c[0..n) += v * b[0..n).
 *
 * The workhorse inner loop of every engine-routed kernel: restrict
 * pointers tell the compiler C and B never alias, and the fixed-trip
 * j-block gives it a clean vectorizable body with a scalar tail for
 * N not divisible by kJBlock.  Per output element this performs the
 * exact FP32 operation sequence of the scalar paths (one multiply,
 * one add, ascending j), so outputs are bitwise identical.
 */
inline void
axpy(float* __restrict c, const float* __restrict b, float v,
     int64_t n)
{
    int64_t j = 0;
    for (; j + kJBlock <= n; j += kJBlock) {
        for (int64_t u = 0; u < kJBlock; ++u)
            c[j + u] += v * b[j + u];
    }
    for (; j < n; ++j)
        c[j] += v * b[j];
}

/** acc[0..n) += v * b[0..n) with double accumulation (referenceSpmm). */
inline void
axpyDouble(double* __restrict acc, const float* __restrict b, double v,
           int64_t n)
{
    int64_t j = 0;
    for (; j + kJBlock <= n; j += kJBlock) {
        for (int64_t u = 0; u < kJBlock; ++u)
            acc[j + u] += v * static_cast<double>(b[j + u]);
    }
    for (; j < n; ++j)
        acc[j] += v * static_cast<double>(b[j]);
}

} // namespace engine
} // namespace dtc

#endif // DTC_ENGINE_ENGINE_H
