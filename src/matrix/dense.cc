#include "matrix/dense.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace dtc {

DenseMatrix::DenseMatrix(int64_t rows, int64_t cols)
    : nRows(rows), nCols(cols), buf(static_cast<size_t>(rows * cols), 0.0f)
{
    DTC_CHECK(rows >= 0 && cols >= 0);
}

void
DenseMatrix::setZero()
{
    std::fill(buf.begin(), buf.end(), 0.0f);
}

void
DenseMatrix::fill(float v)
{
    std::fill(buf.begin(), buf.end(), v);
}

void
DenseMatrix::fillRandom(Rng& rng, float lo, float hi)
{
    for (float& x : buf)
        x = rng.nextFloat(lo, hi);
}

double
DenseMatrix::maxAbsDiff(const DenseMatrix& other) const
{
    DTC_CHECK(nRows == other.nRows && nCols == other.nCols);
    // max is exact under any association, so the parallel reduction
    // matches the serial scan bit for bit.
    return parallelReduce(
        0, static_cast<int64_t>(buf.size()), 1 << 16, 0.0,
        [&](int64_t lo, int64_t hi) {
            double m = 0.0;
            for (int64_t i = lo; i < hi; ++i)
                m = std::max(
                    m, std::abs(static_cast<double>(
                                    buf[static_cast<size_t>(i)]) -
                                static_cast<double>(
                                    other.buf[static_cast<size_t>(
                                        i)])));
            return m;
        },
        [](double a, double b) { return std::max(a, b); });
}

double
DenseMatrix::frobeniusNorm() const
{
    double s = 0.0;
    for (float x : buf)
        s += static_cast<double>(x) * static_cast<double>(x);
    return std::sqrt(s);
}

DenseMatrix
DenseMatrix::transposed() const
{
    DenseMatrix t(nCols, nRows);
    for (int64_t r = 0; r < nRows; ++r)
        for (int64_t c = 0; c < nCols; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

bool
DenseMatrix::operator==(const DenseMatrix& other) const
{
    return nRows == other.nRows && nCols == other.nCols &&
           buf == other.buf;
}

} // namespace dtc
