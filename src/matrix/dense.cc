#include "matrix/dense.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace dtc {

DenseMatrix::DenseMatrix(int64_t rows, int64_t cols)
    : nRows(rows), nCols(cols), buf(static_cast<size_t>(rows * cols), 0.0f)
{
    DTC_CHECK(rows >= 0 && cols >= 0);
}

void
DenseMatrix::setZero()
{
    std::fill(buf.begin(), buf.end(), 0.0f);
}

void
DenseMatrix::fill(float v)
{
    std::fill(buf.begin(), buf.end(), v);
}

void
DenseMatrix::fillRandom(Rng& rng, float lo, float hi)
{
    for (float& x : buf)
        x = rng.nextFloat(lo, hi);
}

double
DenseMatrix::maxAbsDiff(const DenseMatrix& other) const
{
    DTC_CHECK(nRows == other.nRows && nCols == other.nCols);
    double m = 0.0;
    for (size_t i = 0; i < buf.size(); ++i)
        m = std::max(m, std::abs(static_cast<double>(buf[i]) -
                                 static_cast<double>(other.buf[i])));
    return m;
}

double
DenseMatrix::frobeniusNorm() const
{
    double s = 0.0;
    for (float x : buf)
        s += static_cast<double>(x) * static_cast<double>(x);
    return std::sqrt(s);
}

DenseMatrix
DenseMatrix::transposed() const
{
    DenseMatrix t(nCols, nRows);
    for (int64_t r = 0; r < nRows; ++r)
        for (int64_t c = 0; c < nCols; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

bool
DenseMatrix::operator==(const DenseMatrix& other) const
{
    return nRows == other.nRows && nCols == other.nCols &&
           buf == other.buf;
}

} // namespace dtc
