/**
 * @file
 * Structural statistics of a sparse matrix.
 *
 * These are the quantities the paper's analysis sections report:
 * M, K, NNZ, average row length (AvgRowL, Table 1), the row-length
 * skew that drives load imbalance (Observation 4), and density.
 */
#ifndef DTC_MATRIX_STATS_H
#define DTC_MATRIX_STATS_H

#include <cstdint>
#include <string>

namespace dtc {

class CsrMatrix;

/** Summary statistics of a sparse matrix's structure. */
struct MatrixStats
{
    int64_t rows = 0;
    int64_t cols = 0;
    int64_t nnz = 0;
    double avgRowLength = 0.0;
    int64_t maxRowLength = 0;
    int64_t minRowLength = 0;
    int64_t emptyRows = 0;
    /** Coefficient of variation of row lengths (stddev / mean). */
    double rowLengthCv = 0.0;
    /** Fraction of positions that are nonzero. */
    double density = 0.0;

    /** One-line human-readable rendering. */
    std::string toString() const;
};

/** Computes structural statistics of @p m. */
MatrixStats computeStats(const CsrMatrix& m);

} // namespace dtc

#endif // DTC_MATRIX_STATS_H
