#include "matrix/csr.h"

#include <algorithm>

#include "common/check.h"
#include "matrix/coo.h"

namespace dtc {

CsrMatrix::CsrMatrix(int64_t rows, int64_t cols)
    : nRows(rows), nCols(cols), rowPtrArr(static_cast<size_t>(rows) + 1, 0)
{
    DTC_CHECK(rows >= 0 && cols >= 0);
}

CsrMatrix
CsrMatrix::fromCoo(const CooMatrix& coo)
{
    CooMatrix canon = coo;
    canon.canonicalize();

    CsrMatrix m(canon.rows(), canon.cols());
    const auto& ri = canon.rowIndices();
    const auto& ci = canon.colIndices();
    const auto& v = canon.values();

    for (int32_t r : ri)
        m.rowPtrArr[static_cast<size_t>(r) + 1]++;
    for (size_t i = 1; i < m.rowPtrArr.size(); ++i)
        m.rowPtrArr[i] += m.rowPtrArr[i - 1];

    m.colIdxArr.assign(ci.begin(), ci.end());
    m.valArr.assign(v.begin(), v.end());
    return m;
}

CsrMatrix
CsrMatrix::fromParts(int64_t rows, int64_t cols,
                     std::vector<int64_t> row_ptr,
                     std::vector<int32_t> col_idx, std::vector<float> values)
{
    CsrMatrix m;
    m.nRows = rows;
    m.nCols = cols;
    m.rowPtrArr = std::move(row_ptr);
    m.colIdxArr = std::move(col_idx);
    m.valArr = std::move(values);
    m.validate();
    return m;
}

CsrMatrix
CsrMatrix::transposed() const
{
    CsrMatrix t(nCols, nRows);
    t.colIdxArr.resize(colIdxArr.size());
    t.valArr.resize(valArr.size());

    // Count entries per column, then prefix-sum.
    for (int32_t c : colIdxArr)
        t.rowPtrArr[static_cast<size_t>(c) + 1]++;
    for (size_t i = 1; i < t.rowPtrArr.size(); ++i)
        t.rowPtrArr[i] += t.rowPtrArr[i - 1];

    std::vector<int64_t> cursor(t.rowPtrArr.begin(), t.rowPtrArr.end() - 1);
    for (int64_t r = 0; r < nRows; ++r) {
        for (int64_t k = rowPtrArr[r]; k < rowPtrArr[r + 1]; ++k) {
            int32_t c = colIdxArr[k];
            int64_t pos = cursor[c]++;
            t.colIdxArr[pos] = static_cast<int32_t>(r);
            t.valArr[pos] = valArr[k];
        }
    }
    // Rows of the source are visited in increasing order, so column
    // indices in each transposed row are already sorted.
    return t;
}

CsrMatrix
CsrMatrix::permuteRows(const std::vector<int32_t>& perm) const
{
    DTC_CHECK(static_cast<int64_t>(perm.size()) == nRows);
    CsrMatrix out(nRows, nCols);
    out.colIdxArr.reserve(colIdxArr.size());
    out.valArr.reserve(valArr.size());
    for (int64_t r = 0; r < nRows; ++r) {
        int32_t src = perm[r];
        DTC_CHECK(src >= 0 && src < nRows);
        for (int64_t k = rowPtrArr[src]; k < rowPtrArr[src + 1]; ++k) {
            out.colIdxArr.push_back(colIdxArr[k]);
            out.valArr.push_back(valArr[k]);
        }
        out.rowPtrArr[r + 1] = static_cast<int64_t>(out.colIdxArr.size());
    }
    return out;
}

CsrMatrix
CsrMatrix::permuteSymmetric(const std::vector<int32_t>& perm) const
{
    DTC_CHECK_MSG(nRows == nCols,
                  "symmetric permutation requires a square matrix");
    DTC_CHECK(static_cast<int64_t>(perm.size()) == nRows);

    // inv[old] = new position.
    std::vector<int32_t> inv(perm.size());
    for (size_t i = 0; i < perm.size(); ++i)
        inv[perm[i]] = static_cast<int32_t>(i);

    CsrMatrix out(nRows, nCols);
    out.colIdxArr.reserve(colIdxArr.size());
    out.valArr.reserve(valArr.size());
    std::vector<std::pair<int32_t, float>> row_buf;
    for (int64_t r = 0; r < nRows; ++r) {
        int32_t src = perm[r];
        row_buf.clear();
        for (int64_t k = rowPtrArr[src]; k < rowPtrArr[src + 1]; ++k)
            row_buf.emplace_back(inv[colIdxArr[k]], valArr[k]);
        std::sort(row_buf.begin(), row_buf.end());
        for (const auto& [c, v] : row_buf) {
            out.colIdxArr.push_back(c);
            out.valArr.push_back(v);
        }
        out.rowPtrArr[r + 1] = static_cast<int64_t>(out.colIdxArr.size());
    }
    return out;
}

CooMatrix
CsrMatrix::toCoo() const
{
    CooMatrix coo(nRows, nCols);
    coo.reserve(static_cast<size_t>(nnz()));
    for (int64_t r = 0; r < nRows; ++r)
        for (int64_t k = rowPtrArr[r]; k < rowPtrArr[r + 1]; ++k)
            coo.add(static_cast<int32_t>(r), colIdxArr[k], valArr[k]);
    return coo;
}

std::vector<float>
CsrMatrix::toDense() const
{
    std::vector<float> d(static_cast<size_t>(nRows * nCols), 0.0f);
    for (int64_t r = 0; r < nRows; ++r)
        for (int64_t k = rowPtrArr[r]; k < rowPtrArr[r + 1]; ++k)
            d[static_cast<size_t>(r * nCols + colIdxArr[k])] = valArr[k];
    return d;
}

bool
CsrMatrix::operator==(const CsrMatrix& other) const
{
    return nRows == other.nRows && nCols == other.nCols &&
           rowPtrArr == other.rowPtrArr && colIdxArr == other.colIdxArr &&
           valArr == other.valArr;
}

void
CsrMatrix::validate() const
{
    DTC_ASSERT(static_cast<int64_t>(rowPtrArr.size()) == nRows + 1);
    DTC_ASSERT(rowPtrArr.front() == 0);
    DTC_ASSERT(rowPtrArr.back() ==
               static_cast<int64_t>(colIdxArr.size()));
    DTC_ASSERT(colIdxArr.size() == valArr.size());
    for (int64_t r = 0; r < nRows; ++r) {
        DTC_ASSERT(rowPtrArr[r] <= rowPtrArr[r + 1]);
        for (int64_t k = rowPtrArr[r]; k < rowPtrArr[r + 1]; ++k) {
            DTC_ASSERT(colIdxArr[k] >= 0 && colIdxArr[k] < nCols);
            if (k > rowPtrArr[r])
                DTC_ASSERT(colIdxArr[k - 1] < colIdxArr[k]);
        }
    }
}

} // namespace dtc
