/**
 * @file
 * Matrix Market (.mtx) coordinate-format I/O.
 *
 * Supports the subset of the format that covers SuiteSparse matrices:
 * `matrix coordinate (real|integer|pattern) (general|symmetric)`.
 * Pattern entries get value 1.0; symmetric files are expanded to both
 * triangles on read.
 */
#ifndef DTC_MATRIX_MM_IO_H
#define DTC_MATRIX_MM_IO_H

#include <iosfwd>
#include <string>

#include "matrix/coo.h"

namespace dtc {

/** Reads a Matrix Market coordinate file from a stream. */
CooMatrix readMatrixMarket(std::istream& in);

/** Reads a Matrix Market coordinate file from disk. */
CooMatrix readMatrixMarketFile(const std::string& path);

/** Writes a COO matrix as `matrix coordinate real general`. */
void writeMatrixMarket(std::ostream& out, const CooMatrix& m);

/** Writes a COO matrix to disk. */
void writeMatrixMarketFile(const std::string& path, const CooMatrix& m);

} // namespace dtc

#endif // DTC_MATRIX_MM_IO_H
