/**
 * @file
 * Row-major dense matrix of floats.
 *
 * Used for the dense operand B and output C of SpMM (C = A * B), for
 * GNN feature/weight matrices, and as the uncompressed staging format
 * that Flash-LLM-style conversion requires.
 */
#ifndef DTC_MATRIX_DENSE_H
#define DTC_MATRIX_DENSE_H

#include <cstddef>
#include <cstdint>

#include "common/aligned.h"

namespace dtc {

class Rng;

/** A row-major dense float matrix. */
class DenseMatrix
{
  public:
    /** Creates an empty 0x0 matrix. */
    DenseMatrix() = default;

    /** Creates a zero-initialized @p rows x @p cols matrix. */
    DenseMatrix(int64_t rows, int64_t cols);

    /** Number of rows. */
    int64_t rows() const { return nRows; }

    /** Number of columns. */
    int64_t cols() const { return nCols; }

    /** Element access. */
    float& at(int64_t r, int64_t c) { return buf[r * nCols + c]; }
    float at(int64_t r, int64_t c) const { return buf[r * nCols + c]; }

    /** Pointer to the start of row @p r. */
    float* row(int64_t r) { return buf.data() + r * nCols; }
    const float* row(int64_t r) const { return buf.data() + r * nCols; }

    /** Raw storage access. */
    float* data() { return buf.data(); }
    const float* data() const { return buf.data(); }
    size_t size() const { return buf.size(); }

    /** Sets every element to zero. */
    void setZero();

    /** Sets every element to @p v. */
    void fill(float v);

    /** Fills with uniform random values in [lo, hi). */
    void fillRandom(Rng& rng, float lo = -1.0f, float hi = 1.0f);

    /** Returns the maximum absolute elementwise difference vs @p other. */
    double maxAbsDiff(const DenseMatrix& other) const;

    /** Returns the Frobenius norm. */
    double frobeniusNorm() const;

    /** Returns the transposed matrix. */
    DenseMatrix transposed() const;

    /** Elementwise equality of shape and contents. */
    bool operator==(const DenseMatrix& other) const;

  private:
    int64_t nRows = 0;
    int64_t nCols = 0;
    /** 64-byte-aligned so SIMD micro-kernels see aligned row bases
     * whenever nCols is a multiple of 16. */
    AlignedVector<float> buf;
};

} // namespace dtc

#endif // DTC_MATRIX_DENSE_H
