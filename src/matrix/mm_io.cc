#include "matrix/mm_io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace dtc {

namespace {

/** Lowercases a token in place and returns it. */
std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

} // namespace

CooMatrix
readMatrixMarket(std::istream& in)
{
    std::string line;
    DTC_CHECK_MSG(std::getline(in, line), "empty Matrix Market stream");

    std::istringstream header(line);
    std::string banner, object, fmt, field, symmetry;
    header >> banner >> object >> fmt >> field >> symmetry;
    DTC_CHECK_MSG(banner == "%%MatrixMarket",
                  "missing %%MatrixMarket banner");
    DTC_CHECK_MSG(lower(object) == "matrix", "unsupported object");
    DTC_CHECK_MSG(lower(fmt) == "coordinate",
                  "only coordinate format is supported");
    field = lower(field);
    symmetry = lower(symmetry);
    DTC_CHECK_MSG(field == "real" || field == "integer" ||
                      field == "pattern",
                  "unsupported field type: " << field);
    DTC_CHECK_MSG(symmetry == "general" || symmetry == "symmetric",
                  "unsupported symmetry: " << symmetry);

    // Skip comments.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%')
            break;
    }
    std::istringstream dims(line);
    int64_t rows = 0, cols = 0, entries = 0;
    dims >> rows >> cols >> entries;
    DTC_CHECK_MSG(rows > 0 && cols > 0 && entries >= 0,
                  "bad size line: " << line);

    CooMatrix m(rows, cols);
    m.reserve(static_cast<size_t>(entries) *
              (symmetry == "symmetric" ? 2 : 1));
    for (int64_t i = 0; i < entries; ++i) {
        DTC_CHECK_MSG(std::getline(in, line),
                      "truncated file at entry " << i);
        std::istringstream es(line);
        int64_t r = 0, c = 0;
        double v = 1.0;
        es >> r >> c;
        if (field != "pattern")
            es >> v;
        DTC_CHECK_MSG(r >= 1 && r <= rows && c >= 1 && c <= cols,
                      "entry out of range: " << line);
        m.add(static_cast<int32_t>(r - 1), static_cast<int32_t>(c - 1),
              static_cast<float>(v));
        if (symmetry == "symmetric" && r != c) {
            m.add(static_cast<int32_t>(c - 1),
                  static_cast<int32_t>(r - 1), static_cast<float>(v));
        }
    }
    m.canonicalize();
    return m;
}

CooMatrix
readMatrixMarketFile(const std::string& path)
{
    std::ifstream f(path);
    DTC_CHECK_MSG(f.good(), "cannot open " << path);
    return readMatrixMarket(f);
}

void
writeMatrixMarket(std::ostream& out, const CooMatrix& m)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << m.rows() << " " << m.cols() << " " << m.nnz() << "\n";
    const auto& r = m.rowIndices();
    const auto& c = m.colIndices();
    const auto& v = m.values();
    for (int64_t i = 0; i < m.nnz(); ++i) {
        out << (r[i] + 1) << " " << (c[i] + 1) << " " << v[i] << "\n";
    }
}

void
writeMatrixMarketFile(const std::string& path, const CooMatrix& m)
{
    std::ofstream f(path);
    DTC_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
    writeMatrixMarket(f, m);
}

} // namespace dtc
