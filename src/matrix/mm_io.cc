#include "matrix/mm_io.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/budget.h"
#include "common/check.h"
#include "common/fault.h"
#include "common/fault_sites.h"
#include "obs/metrics.h"

namespace dtc {

namespace {

/** Lowercases a token in place and returns it. */
std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

/** True if the stream holds nothing but whitespace past the cursor. */
bool
onlyWhitespaceLeft(std::istream& s)
{
    char c;
    while (s.get(c)) {
        if (!std::isspace(static_cast<unsigned char>(c)))
            return false;
    }
    return true;
}

[[noreturn]] void
raiseMm(const std::string& msg, int64_t rows = -1, int64_t cols = -1)
{
    DTC_RAISE_CTX(ErrorCode::InvalidInput, msg,
                  (ErrorContext{.component = "mm_io",
                                .rows = rows,
                                .cols = cols}));
}

} // namespace

CooMatrix
readMatrixMarket(std::istream& in)
{
    DTC_FAULT_POINT(fault::sites::kMmIoRead);
    DTC_TRACE_SCOPE("mm_io.read");
    obs::ScopedTimerMs timer("mm_io.read_ms");
    static obs::Counter& reads =
        obs::metrics::counter("mm_io.reads");
    reads.add(1);
    std::string line;
    if (!std::getline(in, line))
        raiseMm("empty Matrix Market stream");

    std::istringstream header(line);
    std::string banner, object, fmt, field, symmetry;
    header >> banner >> object >> fmt >> field >> symmetry;
    DTC_CHECK_MSG(banner == "%%MatrixMarket",
                  "missing %%MatrixMarket banner");
    DTC_CHECK_MSG(lower(object) == "matrix", "unsupported object");
    DTC_CHECK_MSG(lower(fmt) == "coordinate",
                  "only coordinate format is supported");
    field = lower(field);
    symmetry = lower(symmetry);
    DTC_CHECK_MSG(field == "real" || field == "integer" ||
                      field == "pattern",
                  "unsupported field type: " << field);
    DTC_CHECK_MSG(symmetry == "general" || symmetry == "symmetric",
                  "unsupported symmetry: " << symmetry);

    // Skip comments.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%')
            break;
    }
    std::istringstream dims(line);
    int64_t rows = 0, cols = 0, entries = 0;
    dims >> rows >> cols >> entries;
    if (dims.fail() || rows <= 0 || cols <= 0 || entries < 0 ||
        !onlyWhitespaceLeft(dims)) {
        raiseMm("bad size line: " + line);
    }
    // Indices are stored as int32, so dimensions past INT32_MAX
    // cannot be represented — refuse rather than truncate.
    constexpr int64_t kMaxDim = std::numeric_limits<int32_t>::max();
    if (rows > kMaxDim || cols > kMaxDim) {
        raiseMm("dimensions exceed the int32 index range", rows,
                cols);
    }

    const int64_t stored =
        entries * (symmetry == "symmetric" ? 2 : 1);
    // COO entry: int32 row + int32 col + float value.
    ResourceBudget::current().checkStaging(stored * 12, "mm_io");

    CooMatrix m(rows, cols);
    m.reserve(static_cast<size_t>(stored));
    for (int64_t i = 0; i < entries; ++i) {
        if (!std::getline(in, line)) {
            raiseMm("truncated file at entry " +
                        std::to_string(i),
                    rows, cols);
        }
        std::istringstream es(line);
        int64_t r = 0, c = 0;
        double v = 1.0;
        es >> r >> c;
        if (field != "pattern")
            es >> v;
        if (es.fail() || !onlyWhitespaceLeft(es))
            raiseMm("malformed entry: " + line, rows, cols);
        if (r < 1 || r > rows || c < 1 || c > cols)
            raiseMm("entry out of range: " + line, rows, cols);
        m.add(static_cast<int32_t>(r - 1), static_cast<int32_t>(c - 1),
              static_cast<float>(v));
        if (symmetry == "symmetric" && r != c) {
            m.add(static_cast<int32_t>(c - 1),
                  static_cast<int32_t>(r - 1), static_cast<float>(v));
        }
    }
    // Reject content past the declared entries (comments and blank
    // lines excepted — common in hand-edited files).
    while (std::getline(in, line)) {
        const auto pos = line.find_first_not_of(" \t\r");
        if (pos != std::string::npos && line[pos] != '%') {
            raiseMm("trailing garbage after " +
                        std::to_string(entries) +
                        " declared entries: " + line,
                    rows, cols);
        }
    }
    m.canonicalize();
    static obs::Counter& entries_read =
        obs::metrics::counter("mm_io.entries");
    entries_read.add(static_cast<uint64_t>(m.nnz()));
    return m;
}

CooMatrix
readMatrixMarketFile(const std::string& path)
{
    std::ifstream f(path);
    DTC_CHECK_MSG(f.good(), "cannot open " << path);
    return readMatrixMarket(f);
}

void
writeMatrixMarket(std::ostream& out, const CooMatrix& m)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << m.rows() << " " << m.cols() << " " << m.nnz() << "\n";
    // max_digits10 keeps the write -> read round trip bit-exact; the
    // fuzz corpus replays shrunk failures from these files, so lossy
    // values would change the reproduced bits.
    const auto old_precision = out.precision(
        std::numeric_limits<float>::max_digits10);
    const auto& r = m.rowIndices();
    const auto& c = m.colIndices();
    const auto& v = m.values();
    for (int64_t i = 0; i < m.nnz(); ++i) {
        out << (r[i] + 1) << " " << (c[i] + 1) << " " << v[i] << "\n";
    }
    out.precision(old_precision);
}

void
writeMatrixMarketFile(const std::string& path, const CooMatrix& m)
{
    std::ofstream f(path);
    DTC_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
    writeMatrixMarket(f, m);
}

} // namespace dtc
