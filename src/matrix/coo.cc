#include "matrix/coo.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace dtc {

void
CooMatrix::add(int32_t r, int32_t c, float v)
{
    DTC_CHECK_MSG(r >= 0 && r < nRows && c >= 0 && c < nCols,
                  "entry (" << r << "," << c << ") outside " << nRows
                            << "x" << nCols);
    rowIdx.push_back(r);
    colIdx.push_back(c);
    vals.push_back(v);
}

void
CooMatrix::reserve(size_t n)
{
    rowIdx.reserve(n);
    colIdx.reserve(n);
    vals.reserve(n);
}

void
CooMatrix::canonicalize()
{
    const size_t n = rowIdx.size();
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (rowIdx[a] != rowIdx[b])
            return rowIdx[a] < rowIdx[b];
        return colIdx[a] < colIdx[b];
    });

    std::vector<int32_t> r2, c2;
    std::vector<float> v2;
    r2.reserve(n);
    c2.reserve(n);
    v2.reserve(n);
    for (size_t k = 0; k < n; ++k) {
        size_t i = order[k];
        if (!r2.empty() && r2.back() == rowIdx[i] &&
            c2.back() == colIdx[i]) {
            v2.back() += vals[i];
        } else {
            r2.push_back(rowIdx[i]);
            c2.push_back(colIdx[i]);
            v2.push_back(vals[i]);
        }
    }
    rowIdx = std::move(r2);
    colIdx = std::move(c2);
    vals = std::move(v2);
}

void
CooMatrix::symmetrize()
{
    DTC_CHECK_MSG(nRows == nCols, "symmetrize requires a square matrix");
    const size_t n = rowIdx.size();
    for (size_t i = 0; i < n; ++i) {
        if (rowIdx[i] != colIdx[i]) {
            rowIdx.push_back(colIdx[i]);
            colIdx.push_back(rowIdx[i]);
            vals.push_back(vals[i]);
        }
    }
    // Merge duplicates keeping max magnitude (adjacency convention).
    std::vector<size_t> order(rowIdx.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (rowIdx[a] != rowIdx[b])
            return rowIdx[a] < rowIdx[b];
        return colIdx[a] < colIdx[b];
    });
    std::vector<int32_t> r2, c2;
    std::vector<float> v2;
    for (size_t k = 0; k < order.size(); ++k) {
        size_t i = order[k];
        if (!r2.empty() && r2.back() == rowIdx[i] &&
            c2.back() == colIdx[i]) {
            if (std::abs(vals[i]) > std::abs(v2.back()))
                v2.back() = vals[i];
        } else {
            r2.push_back(rowIdx[i]);
            c2.push_back(colIdx[i]);
            v2.push_back(vals[i]);
        }
    }
    rowIdx = std::move(r2);
    colIdx = std::move(c2);
    vals = std::move(v2);
}

} // namespace dtc
