/**
 * @file
 * Coordinate-format sparse matrix.
 *
 * COO is the assembly format: dataset generators and the Matrix Market
 * reader emit COO triplets, which are then canonicalized (sorted,
 * duplicates merged) and converted to CSR for everything downstream.
 */
#ifndef DTC_MATRIX_COO_H
#define DTC_MATRIX_COO_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dtc {

/** A sparse matrix in coordinate (triplet) format. */
class CooMatrix
{
  public:
    /** Creates an empty matrix of the given shape. */
    CooMatrix(int64_t rows = 0, int64_t cols = 0)
        : nRows(rows), nCols(cols)
    {}

    /** Appends one entry.  Duplicates are allowed until canonicalize(). */
    void add(int32_t r, int32_t c, float v);

    /** Reserves space for @p n entries. */
    void reserve(size_t n);

    int64_t rows() const { return nRows; }
    int64_t cols() const { return nCols; }
    int64_t nnz() const { return static_cast<int64_t>(rowIdx.size()); }

    const std::vector<int32_t>& rowIndices() const { return rowIdx; }
    const std::vector<int32_t>& colIndices() const { return colIdx; }
    const std::vector<float>& values() const { return vals; }

    /**
     * Sorts entries by (row, col) and merges duplicates by summing
     * their values.  Entries that sum to exactly zero are kept (their
     * position is structurally nonzero).
     */
    void canonicalize();

    /**
     * Makes the pattern symmetric by adding the transpose of every
     * off-diagonal entry (values mirrored).  Duplicates are merged by
     * keeping the maximum magnitude, which is the convention used when
     * symmetrizing adjacency matrices for GNNs.
     */
    void symmetrize();

  private:
    int64_t nRows;
    int64_t nCols;
    std::vector<int32_t> rowIdx;
    std::vector<int32_t> colIdx;
    std::vector<float> vals;
};

} // namespace dtc

#endif // DTC_MATRIX_COO_H
