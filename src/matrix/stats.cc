#include "matrix/stats.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "matrix/csr.h"

namespace dtc {

std::string
MatrixStats::toString() const
{
    std::ostringstream os;
    os << rows << "x" << cols << " nnz=" << nnz
       << " avgRowL=" << avgRowLength << " maxRowL=" << maxRowLength
       << " cv=" << rowLengthCv;
    return os.str();
}

MatrixStats
computeStats(const CsrMatrix& m)
{
    MatrixStats s;
    s.rows = m.rows();
    s.cols = m.cols();
    s.nnz = m.nnz();
    if (s.rows == 0)
        return s;

    s.minRowLength = std::numeric_limits<int64_t>::max();
    double sum = 0.0, sum_sq = 0.0;
    for (int64_t r = 0; r < s.rows; ++r) {
        int64_t len = m.rowLength(r);
        if (len == 0)
            s.emptyRows++;
        s.maxRowLength = std::max(s.maxRowLength, len);
        s.minRowLength = std::min(s.minRowLength, len);
        sum += static_cast<double>(len);
        sum_sq += static_cast<double>(len) * static_cast<double>(len);
    }
    s.avgRowLength = sum / static_cast<double>(s.rows);
    double var = sum_sq / static_cast<double>(s.rows) -
                 s.avgRowLength * s.avgRowLength;
    if (var < 0.0)
        var = 0.0;
    s.rowLengthCv =
        s.avgRowLength > 0.0 ? std::sqrt(var) / s.avgRowLength : 0.0;
    s.density = s.rows * s.cols > 0
                    ? static_cast<double>(s.nnz) /
                          (static_cast<double>(s.rows) *
                           static_cast<double>(s.cols))
                    : 0.0;
    return s;
}

} // namespace dtc
