/**
 * @file
 * Compressed Sparse Row matrix — the canonical sparse type of the
 * library.
 *
 * Every format conversion (TCF, ME-TCF, Blocked-ELL, CVSE), every
 * reordering, and every kernel in this repository starts from CSR,
 * mirroring the paper's pipeline (Section 4.1: CSR in, ME-TCF out).
 * Column indices within each row are kept sorted.
 */
#ifndef DTC_MATRIX_CSR_H
#define DTC_MATRIX_CSR_H

#include <cstdint>
#include <vector>

namespace dtc {

class CooMatrix;

/** A sparse matrix in CSR format with sorted column indices per row. */
class CsrMatrix
{
  public:
    /** Creates an empty 0x0 matrix. */
    CsrMatrix() : nRows(0), nCols(0) { rowPtrArr = {0}; }

    /** Creates an all-zero matrix of the given shape. */
    CsrMatrix(int64_t rows, int64_t cols);

    /** Builds a CSR matrix from a COO matrix (canonicalizes a copy). */
    static CsrMatrix fromCoo(const CooMatrix& coo);

    /** Builds directly from raw arrays (validated). */
    static CsrMatrix fromParts(int64_t rows, int64_t cols,
                               std::vector<int64_t> row_ptr,
                               std::vector<int32_t> col_idx,
                               std::vector<float> values);

    int64_t rows() const { return nRows; }
    int64_t cols() const { return nCols; }
    int64_t nnz() const { return rowPtrArr.back(); }

    /** Row pointer array (size rows()+1). */
    const std::vector<int64_t>& rowPtr() const { return rowPtrArr; }

    /** Column index array (size nnz()). */
    const std::vector<int32_t>& colIdx() const { return colIdxArr; }

    /** Value array (size nnz()). */
    const std::vector<float>& values() const { return valArr; }
    std::vector<float>& values() { return valArr; }

    /** Number of stored entries in row @p r. */
    int64_t rowLength(int64_t r) const
    {
        return rowPtrArr[r + 1] - rowPtrArr[r];
    }

    /** Returns the transposed matrix. */
    CsrMatrix transposed() const;

    /**
     * Applies a row permutation: row r of the result is row
     * @p perm[r] of this matrix.  @p perm must be a permutation of
     * [0, rows()).
     */
    CsrMatrix permuteRows(const std::vector<int32_t>& perm) const;

    /**
     * Applies the same permutation to rows and columns (symmetric
     * relabeling, as graph reordering does): result(r, c) =
     * this(perm[r], perm[c]).
     */
    CsrMatrix permuteSymmetric(const std::vector<int32_t>& perm) const;

    /** Converts back to COO. */
    CooMatrix toCoo() const;

    /** Returns a dense copy (for small-matrix testing). */
    std::vector<float> toDense() const;

    /** True if shapes, patterns and values all match. */
    bool operator==(const CsrMatrix& other) const;

    /** Checks structural invariants; throws std::logic_error if broken. */
    void validate() const;

    /**
     * Index-array memory footprint in 32-bit-element units, as the
     * paper counts it for Observation 1: M + 1 + NNZ elements.
     */
    int64_t indexElementCount() const { return nRows + 1 + nnz(); }

  private:
    int64_t nRows;
    int64_t nCols;
    std::vector<int64_t> rowPtrArr;
    std::vector<int32_t> colIdxArr;
    std::vector<float> valArr;
};

} // namespace dtc

#endif // DTC_MATRIX_CSR_H
