#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "common/cancel.h"
#include "common/check.h"
#include "common/env.h"
#include "gpusim/arch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dtc {
namespace serve {

namespace {

int
resolveThreads(int requested)
{
    if (requested >= 0)
        return requested;
    const auto env_threads = env::readInt64("DTC_SERVE_THREADS", 0, 256);
    return env_threads ? static_cast<int>(*env_threads) : 2;
}

int64_t
resolveQueueCapacity(int64_t requested)
{
    if (requested >= 0)
        return requested;
    const auto env_cap = env::readInt64("DTC_SERVE_QUEUE", 1, 1 << 20);
    return env_cap ? *env_cap : 64;
}

int64_t
resolveCacheBytes(int64_t requested)
{
    if (requested > 0)
        return requested;
    const auto env_bytes = env::readInt64(
        "DTC_SERVE_CACHE_BYTES", 1, int64_t{1} << 40);
    return env_bytes ? *env_bytes : 0; // 0: PreparedCache env default
}

/** Remaining milliseconds before @p deadline_us, clamped >= 0. */
double
remainingMs(double deadline_us)
{
    return std::max(0.0, (deadline_us - obs::monotonicNowUs()) / 1e3);
}

} // namespace

SpmmService::SpmmService(ServeOptions options, const CostModel* cm)
    : opt(std::move(options)),
      costModel(cm ? *cm : CostModel(ArchSpec::rtx4090())),
      preparedCache(resolveCacheBytes(opt.cacheBytes)),
      queueCap(resolveQueueCapacity(opt.queueCapacity))
{
    // Per-request deadlines arrive via the installed CancelToken;
    // the per-entry Runtime must not also read DTC_DEADLINE_MS.
    opt.runtime.deadlineMs = 0;
    opt.runtime.deadlineChecks = 0;
    const int n = resolveThreads(opt.threads);
    inlineMode = opt.deterministic || n == 0;
    if (!inlineMode)
        for (int i = 0; i < n; ++i)
            workers.emplace_back([this] { workerLoop(); });
}

SpmmService::~SpmmService()
{
    {
        std::lock_guard<std::mutex> lock(qmu);
        stopping = true;
        paused = false;
    }
    qcv.notify_all();
    for (std::thread& w : workers)
        w.join();
}

MatrixHandle
SpmmService::attach(const CsrMatrix& a) const
{
    return MatrixHandle{&a};
}

std::future<SubmitResult>
SpmmService::submit(MatrixHandle h, DenseMatrix b, Precision p,
                    SubmitOptions sopt)
{
    DTC_TRACE_SCOPE("serve.submit");
    DTC_CHECK_CODE(h.matrix != nullptr, ErrorCode::InvalidInput,
                   "serve: submit against a null matrix handle");
    DTC_CHECK_CODE(b.rows() == h.matrix->cols(),
                   ErrorCode::InvalidInput,
                   "serve: B has " << b.rows() << " rows, want "
                                   << h.matrix->cols());
    obs::metrics::counter("serve.submits").add(1);

    auto r = std::make_unique<Request>();
    r->entry = preparedCache.acquire(*h.matrix, p);
    r->cacheHit = r->entry->prepared.load(std::memory_order_acquire);
    r->b = std::move(b);
    r->submitUs = obs::monotonicNowUs();
    if (sopt.deadlineMs > 0)
        r->deadlineUs =
            r->submitUs + static_cast<double>(sopt.deadlineMs) * 1e3;
    std::future<SubmitResult> fut = r->promise.get_future();

    if (inlineMode) {
        std::vector<std::unique_ptr<Request>> batch;
        batch.push_back(std::move(r));
        executeBatch(std::move(batch));
        return fut;
    }
    enqueue(std::move(r));
    return fut;
}

SubmitResult
SpmmService::run(MatrixHandle h, const DenseMatrix& b, Precision p,
                 SubmitOptions sopt)
{
    DenseMatrix copy(b.rows(), b.cols());
    std::copy(b.data(), b.data() + b.size(), copy.data());
    return submit(h, std::move(copy), p, sopt).get();
}

std::vector<SubmitResult>
SpmmService::runBatch(MatrixHandle h,
                      const std::vector<DenseMatrix>& bs, Precision p,
                      SubmitOptions sopt)
{
    std::vector<SubmitResult> results;
    if (bs.empty())
        return results;

    if (inlineMode) {
        // One coalesced execution, bypassing the queue: the
        // deterministic twin of what the workers do for concurrent
        // same-A traffic.  One call sees one snapshot of A, so the
        // contents are hashed once for the whole batch, not per
        // panel.
        DTC_CHECK_CODE(h.matrix != nullptr, ErrorCode::InvalidInput,
                       "serve: runBatch on a null handle");
        std::shared_ptr<PreparedEntry> entry =
            preparedCache.acquire(*h.matrix, p);
        const bool hit =
            entry->prepared.load(std::memory_order_acquire);
        std::vector<std::unique_ptr<Request>> batch;
        std::vector<std::future<SubmitResult>> futs;
        for (const DenseMatrix& b : bs) {
            DTC_CHECK_CODE(b.rows() == h.matrix->cols(),
                           ErrorCode::InvalidInput,
                           "serve: B has " << b.rows()
                                           << " rows, want "
                                           << h.matrix->cols());
            obs::metrics::counter("serve.submits").add(1);
            auto r = std::make_unique<Request>();
            r->entry = entry;
            r->cacheHit = hit;
            r->borrowedB = &b; // synchronous call: no copy needed
            r->submitUs = obs::monotonicNowUs();
            if (sopt.deadlineMs > 0)
                r->deadlineUs =
                    r->submitUs +
                    static_cast<double>(sopt.deadlineMs) * 1e3;
            futs.push_back(r->promise.get_future());
            batch.push_back(std::move(r));
        }
        executeBatch(std::move(batch));
        for (auto& f : futs)
            results.push_back(f.get());
        return results;
    }

    std::vector<std::future<SubmitResult>> futs;
    for (const DenseMatrix& b : bs) {
        DenseMatrix copy(b.rows(), b.cols());
        std::copy(b.data(), b.data() + b.size(), copy.data());
        futs.push_back(submit(h, std::move(copy), p, sopt));
    }
    for (auto& f : futs)
        results.push_back(f.get());
    return results;
}

void
SpmmService::enqueue(std::unique_ptr<Request> r)
{
    {
        std::lock_guard<std::mutex> lock(qmu);
        if (static_cast<int64_t>(queue.size()) >= queueCap) {
            obs::metrics::counter("serve.rejected").add(1);
            DTC_RAISE(ErrorCode::ResourceExhausted,
                      "serve: admission queue full (capacity "
                          << queueCap << ")");
        }
        queue.push_back(std::move(r));
    }
    qcv.notify_one();
}

void
SpmmService::drain()
{
    std::unique_lock<std::mutex> lock(qmu);
    idleCv.wait(lock, [&] {
        return (queue.empty() || paused) && inFlight == 0;
    });
}

void
SpmmService::pause()
{
    std::lock_guard<std::mutex> lock(qmu);
    paused = true;
}

void
SpmmService::resume()
{
    {
        std::lock_guard<std::mutex> lock(qmu);
        paused = false;
    }
    qcv.notify_all();
}

int64_t
SpmmService::queueDepth() const
{
    std::lock_guard<std::mutex> lock(qmu);
    return static_cast<int64_t>(queue.size());
}

std::vector<std::unique_ptr<SpmmService::Request>>
SpmmService::nextBatch()
{
    std::vector<std::unique_ptr<Request>> batch;
    std::unique_lock<std::mutex> lock(qmu);
    qcv.wait(lock, [&] {
        return stopping || (!paused && !queue.empty());
    });
    if (queue.empty())
        return batch; // stopping, fully drained

    batch.push_back(std::move(queue.front()));
    queue.pop_front();
    // Coalesce queued same-entry requests (same A contents and
    // precision resolve to the same PreparedEntry) into this
    // execution, preserving queue order.
    const PreparedEntry* key = batch.front()->entry.get();
    for (auto it = queue.begin();
         it != queue.end() &&
         static_cast<int64_t>(batch.size()) < opt.maxBatch;) {
        if ((*it)->entry.get() == key) {
            batch.push_back(std::move(*it));
            it = queue.erase(it);
        } else {
            ++it;
        }
    }
    inFlight += static_cast<int>(batch.size());
    return batch;
}

void
SpmmService::workerLoop()
{
    for (;;) {
        std::vector<std::unique_ptr<Request>> batch = nextBatch();
        if (batch.empty())
            return;
        const int n = static_cast<int>(batch.size());
        executeBatch(std::move(batch));
        {
            std::lock_guard<std::mutex> lock(qmu);
            inFlight -= n;
        }
        idleCv.notify_all();
    }
}

void
SpmmService::executeSingle(std::unique_ptr<Request> r)
{
    try {
        CancelToken token;
        const bool own = r->deadlineUs > 0.0;
        if (own) {
            const double rem = remainingMs(r->deadlineUs);
            if (rem <= 0.0) {
                obs::metrics::counter("serve.deadline_expired")
                    .add(1);
                DTC_RAISE(ErrorCode::DeadlineExceeded,
                          "serve: deadline expired before execution");
            }
            token.setDeadlineInMs(rem);
        }
        cancel::ScopedCancel scope(own ? &token : cancel::current());
        SubmitResult res;
        res.preparedCacheHit = r->cacheHit;
        const DenseMatrix& b = r->operandB();
        res.c = DenseMatrix(r->entry->a.rows(), b.cols());
        r->entry->rt->run(b, res.c, &res.report);
        obs::metrics::histogram("serve.queue_wait_ms")
            .record((obs::monotonicNowUs() - r->submitUs) / 1e3);
        r->promise.set_value(std::move(res));
    } catch (...) {
        r->promise.set_exception(std::current_exception());
    }
}

void
SpmmService::executeBatch(std::vector<std::unique_ptr<Request>> batch)
{
    DTC_TRACE_SCOPE("serve.batch");

    // Requests whose deadline lapsed while queued fail typed, before
    // any prepared state is touched (a dead tenant must not poison
    // the cache or the batch).
    const double now = obs::monotonicNowUs();
    std::vector<std::unique_ptr<Request>> live;
    for (auto& r : batch) {
        if (r->deadlineUs > 0.0 && now >= r->deadlineUs) {
            obs::metrics::counter("serve.deadline_expired_queued")
                .add(1);
            r->promise.set_exception(std::make_exception_ptr(DtcError(
                ErrorCode::DeadlineExceeded,
                "serve: deadline expired while queued")));
        } else {
            live.push_back(std::move(r));
        }
    }
    if (live.empty())
        return;

    // Declared before entryLock so it destroys after it: if the
    // entry was evicted from the cache while this batch was queued,
    // the requests hold the only other refs — executeSingle below
    // destroys them with the lock still held, and without this ref
    // the guard would unlock a freed mutex.
    const std::shared_ptr<PreparedEntry> keepAlive =
        live.front()->entry;

    // Runtime::run is not thread-safe; every execution against one
    // entry serializes here.  Cross-entry batches run concurrently
    // on other workers.
    std::lock_guard<std::mutex> entryLock(keepAlive->mu);
    try {
        live.front()->entry->ensurePrepared(costModel, opt.runtime);
    } catch (...) {
        auto err = std::current_exception();
        for (auto& r : live)
            r->promise.set_exception(err);
        return;
    }

    obs::metrics::counter("serve.batches").add(1);
    obs::metrics::counter("serve.batched_requests")
        .add(static_cast<uint64_t>(live.size()));
    obs::metrics::histogram("serve.batch_size")
        .record(static_cast<double>(live.size()));

    if (live.size() == 1) {
        executeSingle(std::move(live.front()));
        return;
    }

    PreparedEntry& entry = *live.front()->entry;
    const int64_t k = entry.a.cols();
    int64_t total_cols = 0;
    for (const auto& r : live)
        total_cols += r->operandB().cols();

    // Column-wise concatenation: SpMM is independent per output
    // column, so each tenant's slice of the wide result is bitwise
    // what a solo run would produce — the kernel just walks A's
    // nonzeros once per panel for the whole batch.
    // Row-major pack: each wide row is filled contiguously in one
    // sweep (request-major order would re-touch every wide row once
    // per member — eight strided passes over the whole panel).
    DenseMatrix wide_b(k, total_cols);
    {
        DTC_TRACE_SCOPE("serve.batch.pack");
        for (int64_t row = 0; row < k; ++row) {
            float* dst = wide_b.row(row);
            int64_t col = 0;
            for (const auto& r : live) {
                const DenseMatrix& b = r->operandB();
                std::copy(b.row(row), b.row(row) + b.cols(),
                          dst + col);
                col += b.cols();
            }
        }
    }

    // The batch runs under the earliest member deadline; a trip
    // falls back to solo re-execution so one tenant's tight budget
    // cannot fail its batchmates.
    double min_deadline = 0.0;
    for (const auto& r : live)
        if (r->deadlineUs > 0.0 &&
            (min_deadline == 0.0 || r->deadlineUs < min_deadline))
            min_deadline = r->deadlineUs;

    DenseMatrix wide_c(entry.a.rows(), total_cols);
    runtime::RunReport report;
    try {
        CancelToken token;
        const bool own = min_deadline > 0.0;
        if (own)
            token.setDeadlineInMs(remainingMs(min_deadline));
        cancel::ScopedCancel scope(own ? &token : cancel::current());
        DTC_TRACE_SCOPE("serve.batch.run");
        entry.rt->run(wide_b, wide_c, &report);
    } catch (const DtcError& e) {
        if (e.code() == ErrorCode::DeadlineExceeded ||
            e.code() == ErrorCode::Cancelled) {
            obs::metrics::counter("serve.batch_deadline_splits")
                .add(1);
            for (auto& r : live)
                executeSingle(std::move(r));
        } else {
            auto err = std::current_exception();
            for (auto& r : live)
                r->promise.set_exception(err);
        }
        return;
    } catch (...) {
        auto err = std::current_exception();
        for (auto& r : live)
            r->promise.set_exception(err);
        return;
    }

    // Row-major split, mirroring the pack: one sweep over wide C.
    const double done = obs::monotonicNowUs();
    std::vector<SubmitResult> results(live.size());
    for (size_t i = 0; i < live.size(); ++i)
        results[i].c = DenseMatrix(entry.a.rows(),
                                   live[i]->operandB().cols());
    for (int64_t row = 0; row < entry.a.rows(); ++row) {
        const float* src = wide_c.row(row);
        int64_t col = 0;
        for (size_t i = 0; i < live.size(); ++i) {
            const int64_t n = results[i].c.cols();
            std::copy(src + col, src + col + n,
                      results[i].c.row(row));
            col += n;
        }
    }
    for (size_t i = 0; i < live.size(); ++i) {
        SubmitResult& res = results[i];
        res.report = report;
        res.preparedCacheHit = live[i]->cacheHit;
        res.batchSize = static_cast<int64_t>(live.size());
        obs::metrics::histogram("serve.queue_wait_ms")
            .record((done - live[i]->submitUs) / 1e3);
        live[i]->promise.set_value(std::move(res));
    }
}

} // namespace serve
} // namespace dtc
