/**
 * @file
 * PreparedCache — the serving layer's content-hashed LRU of
 * tuned/prepared sparse operands.
 *
 * DTC-SpMM's economics (and cuTeSpMM's / Acc-SpMM's) rest on
 * amortizing one-time sparse preprocessing — SGT condensation,
 * ME-TCF conversion, tuning — across many SpMM executions over the
 * same A.  A serving deployment meets that workload as *repeat
 * traffic*: many tenants multiplying the same graph against fresh
 * dense panels.  This cache is where the amortization lives: one
 * entry per (A contents, requested precision) holding the tuner's
 * ranking plus a resilient Runtime whose kernels prepare once and
 * then serve every subsequent request.
 *
 * Identity is the *contents*, not the pointer: acquire() hashes A's
 * arrays (FNV-1a, deterministic for any thread count), so a caller
 * that mutates its matrix in place gets a fresh entry — never stale
 * prepared state — exactly like the engine's PreparedDense B-panel
 * cache one level down.
 *
 * Capacity is a byte budget (ServeOptions::cacheBytes, falling back
 * to ResourceBudget::current().stagingBytes): inserting past it
 * evicts least-recently-used entries.  Evicted entries stay alive
 * while in-flight requests hold their shared_ptr, so eviction never
 * races an execution.  Counters: serve.cache.{hits,misses,
 * evictions}; gauges: serve.cache.{entries,bytes}.
 */
#ifndef DTC_SERVE_PREPARED_CACHE_H
#define DTC_SERVE_PREPARED_CACHE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/precision.h"
#include "gpusim/cost_model.h"
#include "matrix/csr.h"
#include "runtime/runtime.h"
#include "tuner/tuner.h"

namespace dtc {
namespace serve {

/**
 * One cached (A, precision) pair: the owned matrix copy, the
 * lazily-tuned ranking, and the Runtime whose prepared kernels every
 * request against this entry reuses.  Runtime::run is not
 * thread-safe, so executions on one entry serialize on `mu` — the
 * service batches same-entry requests instead of racing them.
 */
struct PreparedEntry
{
    CsrMatrix a;          ///< Owned copy, stable across caller mutation.
    Precision precision = Precision::Fp32;
    uint64_t key = 0;     ///< Content hash of (shape, arrays).
    int64_t bytes = 0;    ///< Approximate resident footprint.

    /** Serializes ensurePrepared() + every run on this entry. */
    std::mutex mu;

    /** Tuner ranking; null until the first execution prepares it. */
    std::shared_ptr<const TuneResult> tuned;

    /** Resilient executor; null until the first execution. */
    std::unique_ptr<runtime::Runtime> rt;

    /**
     * Lock-free mirror of `rt != nullptr` (release-set at the end of
     * ensurePrepared): submit() reads it for the cache-hit flag
     * without taking `mu`, which an in-flight execution may hold for
     * the length of a run.
     */
    std::atomic<bool> prepared{false};

    /**
     * Tunes + constructs the Runtime on first call (under `mu`,
     * which the caller must hold); later calls are no-ops — the
     * warm-path guarantee the acceptance bench gates on.
     */
    void ensurePrepared(const CostModel& cm,
                        const runtime::RuntimeOptions& ropt);
};

/** Content-hashed LRU of PreparedEntry (see file comment). */
class PreparedCache
{
  public:
    /**
     * @param capacity_bytes  eviction threshold; <= 0 defers to
     *                        ResourceBudget::current().stagingBytes.
     */
    explicit PreparedCache(int64_t capacity_bytes);

    /**
     * The entry for (@p a's contents, @p p): a hit bumps LRU age, a
     * miss inserts a fresh (untuned) entry and evicts past the byte
     * budget.  The returned entry is shared — it outlives eviction
     * for as long as the caller holds it.
     */
    std::shared_ptr<PreparedEntry> acquire(const CsrMatrix& a,
                                           Precision p);

    /** Deterministic FNV-1a over shape + rowPtr + colIdx + values. */
    static uint64_t contentHash(const CsrMatrix& a);

    /** Approximate resident bytes of one entry for @p a. */
    static int64_t entryBytes(const CsrMatrix& a);

    size_t entries() const;
    int64_t residentBytes() const;
    int64_t capacityBytes() const { return capacity; }

    /** Drops every entry (tests). */
    void clear();

  private:
    mutable std::mutex mu;
    int64_t capacity;
    int64_t resident = 0;
    uint64_t tick = 0;

    struct Slot
    {
        std::shared_ptr<PreparedEntry> entry;
        uint64_t lastUse = 0;
    };
    std::vector<Slot> slots;
};

} // namespace serve
} // namespace dtc

#endif // DTC_SERVE_PREPARED_CACHE_H
