#include "serve/prepared_cache.h"

#include <algorithm>
#include <cstring>

#include "common/budget.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dtc {
namespace serve {

namespace {

/**
 * FNV-1a fold of @p n raw bytes into @p h, eight bytes per step so
 * hashing a multi-megabyte operand costs a fraction of its SpMM (the
 * hash runs on every submit).  Not the canonical byte-wise FNV
 * stream, but the same mixing — all that matters is determinism and
 * diffusion, and both arrays being hashed are little-endian POD.
 */
uint64_t
fnv1a(uint64_t h, const void* data, size_t n)
{
    const unsigned char* p = static_cast<const unsigned char*>(data);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        uint64_t w;
        std::memcpy(&w, p + i, 8);
        h = (h ^ w) * 0x100000001b3ull;
    }
    for (; i < n; ++i)
        h = (h ^ p[i]) * 0x100000001b3ull;
    return h;
}

void
publishGauges(size_t entries, int64_t bytes)
{
    obs::metrics::gauge("serve.cache.entries")
        .set(static_cast<double>(entries));
    obs::metrics::gauge("serve.cache.bytes")
        .set(static_cast<double>(bytes));
}

} // namespace

void
PreparedEntry::ensurePrepared(const CostModel& cm,
                              const runtime::RuntimeOptions& ropt)
{
    if (rt)
        return;
    DTC_TRACE_SCOPE("serve.prepare");
    obs::ScopedTimerMs timer("serve.prepare_ms");
    runtime::RuntimeOptions opt = ropt;
    opt.precision = precision;
    if (!tuned)
        tuned = runtime::Runtime::tune(a, opt.tune, cm);
    rt = std::make_unique<runtime::Runtime>(a, tuned, std::move(opt));
    prepared.store(true, std::memory_order_release);
}

PreparedCache::PreparedCache(int64_t capacity_bytes)
    : capacity(capacity_bytes > 0
                   ? capacity_bytes
                   : ResourceBudget::current().stagingBytes)
{
}

uint64_t
PreparedCache::contentHash(const CsrMatrix& a)
{
    uint64_t h = 0xcbf29ce484222325ull;
    const int64_t dims[2] = {a.rows(), a.cols()};
    h = fnv1a(h, dims, sizeof(dims));
    h = fnv1a(h, a.rowPtr().data(),
              a.rowPtr().size() * sizeof(int64_t));
    h = fnv1a(h, a.colIdx().data(),
              a.colIdx().size() * sizeof(int32_t));
    h = fnv1a(h, a.values().data(), a.values().size() * sizeof(float));
    return h;
}

int64_t
PreparedCache::entryBytes(const CsrMatrix& a)
{
    // The entry's CSR copy plus the Runtime's own copy; prepared
    // kernel formats (lanes, tiles, ME-TCF) are the same order of
    // magnitude, folded into the 2x rather than re-measured.
    const int64_t csr =
        static_cast<int64_t>(a.rowPtr().size()) * 8 +
        static_cast<int64_t>(a.nnz()) * (4 + 4);
    return 2 * csr + 1024;
}

std::shared_ptr<PreparedEntry>
PreparedCache::acquire(const CsrMatrix& a, Precision p)
{
    DTC_TRACE_SCOPE("serve.cache.acquire");
    const uint64_t key = contentHash(a);

    std::lock_guard<std::mutex> lock(mu);
    for (Slot& s : slots) {
        if (s.entry->key == key && s.entry->precision == p &&
            s.entry->a.rows() == a.rows() &&
            s.entry->a.cols() == a.cols()) {
            s.lastUse = ++tick;
            obs::metrics::counter("serve.cache.hits").add(1);
            return s.entry;
        }
    }

    obs::metrics::counter("serve.cache.misses").add(1);
    auto entry = std::make_shared<PreparedEntry>();
    entry->a = a;
    entry->precision = p;
    entry->key = key;
    entry->bytes = entryBytes(a);
    slots.push_back({entry, ++tick});
    resident += entry->bytes;

    // Evict past the byte budget, oldest first, but never the entry
    // just inserted — a single over-budget matrix must still serve.
    while (resident > capacity && slots.size() > 1) {
        auto lru = std::min_element(
            slots.begin(), slots.end(),
            [](const Slot& x, const Slot& y) {
                return x.lastUse < y.lastUse;
            });
        if (lru->entry == entry)
            break;
        resident -= lru->entry->bytes;
        slots.erase(lru);
        obs::metrics::counter("serve.cache.evictions").add(1);
    }
    publishGauges(slots.size(), resident);
    return entry;
}

size_t
PreparedCache::entries() const
{
    std::lock_guard<std::mutex> lock(mu);
    return slots.size();
}

int64_t
PreparedCache::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mu);
    return resident;
}

void
PreparedCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    slots.clear();
    resident = 0;
    publishGauges(0, 0);
}

} // namespace serve
} // namespace dtc
