/**
 * @file
 * SpmmService — the multi-tenant SpMM serving front-end.
 *
 * Sits on top of the resilient runtime (runtime/runtime.h) and turns
 * the repo's one-request-at-a-time execution model into a service:
 *
 *   - submit(handle, B, precision) is asynchronous: the request is
 *     admitted to a bounded queue and a std::future carries the
 *     result (or the typed DtcError) back to the tenant.
 *   - Same-(A, precision) requests waiting in the queue coalesce
 *     into one batched panel execution: their B panels concatenate
 *     column-wise into a single wide operand, the prepared kernel
 *     walks A's nonzeros once per column panel for the whole batch,
 *     and the wide C splits back per request.  SpMM is
 *     column-independent, so every tenant's slice is bitwise
 *     identical to a solo run — batching changes wall-clock, never
 *     results.
 *   - Prepared state (tuner ranking + prepared kernels) lives in a
 *     content-hashed LRU (serve/prepared_cache.h): the first request
 *     for a matrix pays the tune/prepare cost, every later one —
 *     from any tenant — reuses it.  Mutating A in place changes the
 *     hash and re-prepares; no stale kernels.
 *   - Admission control: a full queue rejects with typed
 *     DtcError{ResourceExhausted} instead of queueing unboundedly.
 *     Per-request deadlines propagate through CancelToken; a request
 *     whose deadline lapses while queued fails typed
 *     DeadlineExceeded without touching the prepared cache.
 *   - Breaker / guard / reference-fallback semantics are the
 *     runtime's, preserved per entry: every request gets the
 *     RunReport of the execution that served it.
 *
 * Determinism: ServeOptions::deterministic executes submissions
 * inline on the calling thread (no workers, no queue), so a recorded
 * request sequence is bitwise-replayable — the oracle and the serve
 * tests compare threaded results against this mode.
 *
 * Knobs (constructor options, env fallback): DTC_SERVE_THREADS,
 * DTC_SERVE_QUEUE, DTC_SERVE_CACHE_BYTES.
 */
#ifndef DTC_SERVE_SERVICE_H
#define DTC_SERVE_SERVICE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/precision.h"
#include "gpusim/cost_model.h"
#include "matrix/csr.h"
#include "matrix/dense.h"
#include "runtime/runtime.h"
#include "serve/prepared_cache.h"

namespace dtc {
namespace serve {

/** Service-wide knobs. */
struct ServeOptions
{
    /**
     * Worker threads; < 0 resolves DTC_SERVE_THREADS (default 2),
     * 0 behaves like deterministic = true.
     */
    int threads = -1;

    /**
     * Admission-queue capacity in requests; < 0 resolves
     * DTC_SERVE_QUEUE (default 64).  A submit against a full queue
     * throws DtcError{ResourceExhausted}.
     */
    int64_t queueCapacity = -1;

    /**
     * Prepared-A cache budget in bytes; <= 0 resolves
     * DTC_SERVE_CACHE_BYTES, else the thread-local
     * ResourceBudget::current().stagingBytes.
     */
    int64_t cacheBytes = 0;

    /** Max requests coalesced into one batched execution. */
    int64_t maxBatch = 8;

    /**
     * Inline single-thread mode: submit() executes on the calling
     * thread and returns a ready future.  Results are bitwise
     * identical to the threaded mode (column independence), which is
     * what makes recorded request streams replayable for the oracle.
     */
    bool deterministic = false;

    /**
     * Per-entry runtime knobs (tune request, breaker, guard, retry).
     * deadlineMs/deadlineChecks are ignored — deadlines are
     * per-request (SubmitOptions) in the service.
     */
    runtime::RuntimeOptions runtime;
};

/** Per-request knobs. */
struct SubmitOptions
{
    /** Deadline in ms from submit time; 0 = none. */
    int64_t deadlineMs = 0;
};

/** A tenant's reference to a sparse operand it keeps alive. */
struct MatrixHandle
{
    const CsrMatrix* matrix = nullptr;
};

/** What one served request got back. */
struct SubmitResult
{
    DenseMatrix c;

    /** The runtime's report for the execution that served this
     *  request (shared across a batch). */
    runtime::RunReport report;

    /** Prepared-A cache hit (no tune/prepare on this request). */
    bool preparedCacheHit = false;

    /** Requests coalesced into the execution that produced c. */
    int64_t batchSize = 1;
};

/** Multi-tenant batched SpMM service (see file comment). */
class SpmmService
{
  public:
    /**
     * @param opt  service knobs
     * @param cm   cost model for tuning; nullptr = the modeled
     *             RTX 4090 deployment default
     */
    explicit SpmmService(ServeOptions opt = {},
                         const CostModel* cm = nullptr);

    /** Drains the queue, then stops and joins the workers. */
    ~SpmmService();

    SpmmService(const SpmmService&) = delete;
    SpmmService& operator=(const SpmmService&) = delete;

    /**
     * Registers @p a for submission.  The service hashes *contents*
     * at each submit, so mutating @p a in place is safe — the next
     * submit sees the new contents and re-prepares.  @p a must stay
     * alive until every submit against the handle completed.
     */
    MatrixHandle attach(const CsrMatrix& a) const;

    /**
     * C = A * B asynchronously.  Throws DtcError{InvalidInput} on a
     * shape mismatch and DtcError{ResourceExhausted} when the
     * admission queue is full; every per-request failure (deadline,
     * exhausted reroute chain) arrives through the future instead.
     */
    std::future<SubmitResult> submit(MatrixHandle h, DenseMatrix b,
                                     Precision p,
                                     SubmitOptions sopt = {});

    /** Synchronous convenience: submit + get. */
    SubmitResult run(MatrixHandle h, const DenseMatrix& b,
                     Precision p, SubmitOptions sopt = {});

    /**
     * Submits every panel in @p bs (same A, same precision) and
     * waits; in deterministic mode the panels execute as one batch
     * inline.  The batching win the bench gates on.
     */
    std::vector<SubmitResult> runBatch(MatrixHandle h,
                                       const std::vector<DenseMatrix>& bs,
                                       Precision p,
                                       SubmitOptions sopt = {});

    /** Blocks until the queue is empty and every worker is idle. */
    void drain();

    /**
     * Test seam: workers finish their in-flight batch, then park
     * until resume().  Lets tests fill the queue deterministically
     * (admission control) and let queued deadlines lapse.
     */
    void pause();
    void resume();

    /** Requests currently queued (excludes in-flight). */
    int64_t queueDepth() const;

    PreparedCache& cache() { return preparedCache; }
    const ServeOptions& options() const { return opt; }

  private:
    struct Request
    {
        std::shared_ptr<PreparedEntry> entry;
        bool cacheHit = false;
        DenseMatrix b;
        /**
         * Inline runBatch borrows the caller's panels instead of
         * copying (the call is synchronous, so they outlive the
         * execution); queued submits own their operand in `b`.
         */
        const DenseMatrix* borrowedB = nullptr;
        double submitUs = 0.0;   ///< Monotonic submit timestamp.
        double deadlineUs = 0.0; ///< Absolute monotonic; 0 = none.
        std::promise<SubmitResult> promise;

        const DenseMatrix& operandB() const
        {
            return borrowedB ? *borrowedB : b;
        }
    };

    /** Admits @p r or throws ResourceExhausted; notifies a worker. */
    void enqueue(std::unique_ptr<Request> r);

    void workerLoop();

    /**
     * Pops the next runnable request plus every queued same-entry
     * same-precision companion (up to maxBatch).  Returns empty when
     * stopping and the queue is drained.
     */
    std::vector<std::unique_ptr<Request>> nextBatch();

    /**
     * Executes a coalesced batch against its (shared) entry:
     * prepare-once, wide-B concatenation, one Runtime::run, split,
     * fulfill.  Deadline trips re-run still-live members solo.
     */
    void executeBatch(std::vector<std::unique_ptr<Request>> batch);

    /** One request, its own deadline token; fulfills its promise. */
    void executeSingle(std::unique_ptr<Request> r);

    ServeOptions opt;
    CostModel costModel;
    PreparedCache preparedCache;
    int64_t queueCap;
    bool inlineMode;

    mutable std::mutex qmu;
    std::condition_variable qcv;    ///< Wakes workers.
    std::condition_variable idleCv; ///< Wakes drain().
    std::deque<std::unique_ptr<Request>> queue;
    int inFlight = 0; ///< Requests popped but not yet fulfilled.
    bool paused = false;
    bool stopping = false;
    std::vector<std::thread> workers;
};

} // namespace serve
} // namespace dtc

#endif // DTC_SERVE_SERVICE_H
