#include "gpusim/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace dtc {

void
TbWork::add(const TbWork& other)
{
    hmma += other.hmma;
    fma += other.fma;
    imad += other.imad;
    ldg += other.ldg;
    sts += other.sts;
    lds += other.lds;
    shfl += other.shfl;
    atom += other.atom;
    syncs += other.syncs;
    stallCycles += other.stallCycles;
    bytesL2Hit += other.bytesL2Hit;
    bytesDram += other.bytesDram;
}

double
LaunchResult::gflops() const
{
    return timeMs > 0.0 ? flops / (timeMs * 1e6) : 0.0;
}

LaunchResult
LaunchResult::unsupported(const std::string& kernel,
                          const std::string& reason)
{
    LaunchResult r;
    r.kernel = kernel;
    r.supported = false;
    r.unsupportedReason = reason;
    return r;
}

double
CostModel::tbCycles(const TbWork& w, double memShare) const
{
    // Throughput-conserving SM model: each SM is a serial queue of
    // thread blocks running at the SM's full pipe rates (occupancy
    // interleaves blocks but cannot add issue slots), and the device
    // memory system hands each SM a 1/numSms share of bandwidth.
    // This makes per-SM busy time and load imbalance come out right:
    // an SM holding 3 blocks is busy 1.5x as long as one holding 2 —
    // the Fig. 3 / Fig. 15 effect.
    const ArchSpec& a = archSpec;

    const double t_tc = w.hmma * a.cyclesPerHmma();
    const double warp_int_rate = a.intLanesPerCycle / 32.0;
    const double warp_fma_rate = a.fmaLanesPerCycle / 32.0;
    const double t_int = w.imad / warp_int_rate;
    const double t_fma = w.fma / warp_fma_rate;
    const double t_ls = (w.ldg + w.sts + w.lds) / a.lsuPerCycle;
    // Global atomics serialize on L2 read-modify-write.
    const double t_atom = w.atom * a.atomicCycles;
    const double t_shfl = w.shfl * a.shflLatencyCycles;
    const double t_sync = w.syncs * 20.0;
    const double t_other =
        t_int + t_fma + t_ls + t_atom + t_shfl + t_sync;

    const double esf = std::clamp(w.execSerialFrac, 0.0, 1.0);
    const double exec = esf * (t_tc + t_other) +
                        (1.0 - esf) * std::max(t_tc, t_other);

    const double share = memShare > 0.0
                             ? memShare
                             : static_cast<double>(a.numSms);
    const double eff = std::clamp(w.memEfficiency, 0.05, 1.0);
    const double t_mem =
        (w.bytesDram / (a.dramBytesPerCycle() / share) +
         w.bytesL2Hit / (a.l2BytesPerCycle() / share)) / eff;

    const double msf = std::clamp(w.memSerialFrac, 0.0, 1.0);
    const double cycles = msf * (exec + t_mem) +
                          (1.0 - msf) * std::max(exec, t_mem) +
                          w.stallCycles + w.fixedCycles;
    return cycles;
}

LaunchResult
CostModel::launch(const std::string& kernel_name,
                  const std::vector<TbWork>& tbs, double flops,
                  double l2_hit_rate) const
{
    LaunchResult r;
    r.kernel = kernel_name;
    r.flops = flops;
    r.l2HitRate = l2_hit_rate;

    // A grid smaller than the SM count leaves bandwidth shares for
    // the active SMs only.
    const double mem_share = std::max(
        1.0, std::min(static_cast<double>(tbs.size()),
                      static_cast<double>(archSpec.numSms)));

    // Per-block cycle tallies are independent — compute them in
    // parallel (disjoint writes) — while the event totals are merged
    // serially in launch order below, so every counter is bitwise
    // identical for any thread count.
    std::vector<double> cycles(tbs.size());
    parallelFor(0, static_cast<int64_t>(tbs.size()), 256,
                [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            cycles[static_cast<size_t>(i)] =
                tbCycles(tbs[static_cast<size_t>(i)], mem_share);
    });
    for (const TbWork& w : tbs) {
        r.totalHmma += w.hmma;
        r.totalImad += w.imad;
        r.totalFma += w.fma;
        r.totalLdg += w.ldg;
        r.totalSts += w.sts;
        r.dramBytes += w.bytesDram;
    }

    // Serial-queue-per-SM scheduling (see tbCycles): one slot per SM;
    // the occupancy parameter of the paper's Eq. 1 model governs the
    // Selector's makespan units, not wall-clock accounting.
    ScheduleResult sched =
        scheduleThreadBlocks(cycles, archSpec.numSms, 1);
    r.makespanCycles = sched.makespanCycles;
    r.smBusyCycles = std::move(sched.smBusyCycles);
    r.timeMs = r.makespanCycles / (archSpec.clockGhz * 1e6);

    if (r.makespanCycles > 0.0) {
        const double tc_busy = r.totalHmma * archSpec.cyclesPerHmma();
        r.tcUtilPct = 100.0 * tc_busy /
                      (r.makespanCycles *
                       static_cast<double>(archSpec.numSms));
    }
    r.imadPerHmma =
        r.totalHmma > 0.0 ? r.totalImad / r.totalHmma : 0.0;
    return r;
}

} // namespace dtc
