#include "gpusim/scheduler.h"

#include <queue>
#include <tuple>

#include "common/check.h"

namespace dtc {

int
schedulerPolicySm(int64_t block_idx, int num_sms)
{
    DTC_CHECK(num_sms > 0);
    if (num_sms % 2 != 0)
        return static_cast<int>(block_idx % num_sms);
    const int64_t half = num_sms / 2;
    return static_cast<int>(2 * (block_idx % half) +
                            (block_idx / half) % 2);
}

ScheduleResult
scheduleThreadBlocks(const std::vector<double>& tb_cycles, int num_sms,
                     int occupancy)
{
    DTC_CHECK(num_sms > 0 && occupancy > 0);

    ScheduleResult res;
    res.smBusyCycles.assign(static_cast<size_t>(num_sms), 0.0);
    res.tbToSm.resize(tb_cycles.size());

    // Slot = (freeTime, seq, sm).  seq breaks ties so the initial wave
    // (all slots free at t=0) pops in Eq.1 policy order.
    using Slot = std::tuple<double, int64_t, int>;
    std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> pq;
    int64_t seq = 0;
    for (int wave = 0; wave < occupancy; ++wave) {
        for (int i = 0; i < num_sms; ++i) {
            int sm = schedulerPolicySm(
                static_cast<int64_t>(wave) * num_sms + i, num_sms);
            pq.emplace(0.0, seq++, sm);
        }
    }

    for (size_t b = 0; b < tb_cycles.size(); ++b) {
        auto [free_at, s, sm] = pq.top();
        pq.pop();
        (void)s;
        double end = free_at + tb_cycles[b];
        res.tbToSm[b] = sm;
        res.smBusyCycles[sm] += tb_cycles[b];
        res.makespanCycles = std::max(res.makespanCycles, end);
        pq.emplace(end, seq++, sm);
    }
    return res;
}

} // namespace dtc
