#include "gpusim/arch.h"

namespace dtc {

ArchSpec
ArchSpec::rtx4090()
{
    ArchSpec a;
    a.name = "RTX4090";
    a.numSms = 128;
    a.clockGhz = 2.52;
    a.l2Bytes = 72ll * 1024 * 1024;
    a.l2Ways = 16;
    a.occupancy = 6;
    a.tcMacsPerCycle = 256.0;
    a.fmaLanesPerCycle = 128.0;
    a.intLanesPerCycle = 64.0;
    a.lsuPerCycle = 4.0;
    a.dramBwGBps = 1008.0;
    a.l2BwGBps = 5200.0;
    a.hmmaLatencyCycles = 16.0;
    a.shflLatencyCycles = 10.7;
    return a;
}

ArchSpec
ArchSpec::rtx3090()
{
    ArchSpec a;
    a.name = "RTX3090";
    a.numSms = 82;
    a.clockGhz = 1.70;
    a.l2Bytes = 6ll * 1024 * 1024;
    a.l2Ways = 16;
    a.occupancy = 6;
    // GA102 tensor cores run TF32 at half the Ada per-SM rate.
    a.tcMacsPerCycle = 128.0;
    a.fmaLanesPerCycle = 128.0;
    a.intLanesPerCycle = 64.0;
    a.lsuPerCycle = 4.0;
    a.dramBwGBps = 936.0;
    a.l2BwGBps = 2400.0;
    a.hmmaLatencyCycles = 16.0;
    a.shflLatencyCycles = 10.7;
    return a;
}

} // namespace dtc
