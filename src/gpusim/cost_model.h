/**
 * @file
 * Kernel cost model: converts per-thread-block event counts into
 * cycles, schedules the blocks, and derives the metrics the paper
 * profiles with NCU (kernel time, TC pipeline utilization,
 * #IMAD/#HMMA, L2 hit rate, per-SM busy/idle).
 *
 * Every kernel in kernels/ tallies a TbWork per thread block while
 * traversing exactly the data structures the real CUDA kernel would
 * walk; the CostModel then:
 *   1. turns each TbWork into cycles using per-SM pipe throughputs
 *      shared among `occupancy` resident blocks,
 *   2. schedules blocks with the Eq. 1 policy model (scheduler.h),
 *   3. reports makespan-derived wall time and aggregate counters.
 *
 * The pipeline-overlap knobs (execSerialFrac, memSerialFrac) are how
 * kernels express their scheduling quality: a fully synchronous
 * WMMA pipeline like TCGNN-SpMM serializes stages (frac -> 1), while
 * DTC-SpMM's sparse double buffering and async copies overlap them
 * (frac -> 0).
 */
#ifndef DTC_GPUSIM_COST_MODEL_H
#define DTC_GPUSIM_COST_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/arch.h"
#include "gpusim/scheduler.h"

namespace dtc {

/** Event counts of one thread block. */
struct TbWork
{
    /** Warp-level mma.m16n8k4-equivalent tensor-core instructions. */
    double hmma = 0.0;
    /** Warp-level FP32 FMA instructions (CUDA cores). */
    double fma = 0.0;
    /** Warp-level integer (IMAD) instructions. */
    double imad = 0.0;
    /** Warp-level global-load instructions. */
    double ldg = 0.0;
    /** Warp-level shared-memory store / load instructions. */
    double sts = 0.0;
    double lds = 0.0;
    /** Warp shuffles (latency-weighted separately). */
    double shfl = 0.0;
    /** Global atomic instructions. */
    double atom = 0.0;
    /** Barrier count. */
    double syncs = 0.0;

    /** Bytes served by the L2 (hits) and by DRAM (misses). */
    double bytesL2Hit = 0.0;
    double bytesDram = 0.0;

    /**
     * Serialization between the tensor-core pipe and the other exec
     * pipes: 1 = fully serial stages (sync-heavy kernel), 0 = fully
     * overlapped (dual-issue across pipes).
     */
    double execSerialFrac = 1.0;

    /**
     * Serialization between execution and memory time: 1 = exposed
     * memory latency, 0 = perfectly hidden (prefetch/double buffer).
     */
    double memSerialFrac = 0.5;

    /**
     * Fraction of peak memory bandwidth the kernel's access pattern
     * sustains (roofline derating): scalar dependent loads sit near
     * 0.5-0.6, wide double-buffered vector pipelines near 0.9+.
     */
    double memEfficiency = 1.0;

    /**
     * Exposed memory-latency stalls (cycles).  CUDA-core SpMM on
     * short rows issues few independent loads per warp, so DRAM
     * latency cannot be hidden — the reason TC kernels with wide
     * block fetches beat cuSPARSE even at equal traffic.  Kernels
     * compute this as (#dependent accesses) * latency / MLP.
     */
    double stallCycles = 0.0;

    /** Fixed prologue/epilogue cycles (launch, fences, drain). */
    double fixedCycles = 600.0;

    /** Accumulates another block's counters (used by fused TBs). */
    void add(const TbWork& other);
};

/** Aggregate results of one simulated kernel launch. */
struct LaunchResult
{
    std::string kernel;     ///< Kernel name.
    bool supported = true;  ///< False when the baseline refuses input.
    std::string unsupportedReason;

    double timeMs = 0.0;
    double makespanCycles = 0.0;
    std::vector<double> smBusyCycles;

    /** Fraction (percent) of SM tensor-pipe issue slots kept busy. */
    double tcUtilPct = 0.0;

    double totalHmma = 0.0;
    double totalImad = 0.0;
    double totalFma = 0.0;
    double totalLdg = 0.0;
    double totalSts = 0.0;

    /** The paper's #IMAD/#HMMA indicator (inf-safe: 0 when no HMMA). */
    double imadPerHmma = 0.0;

    double l2HitRate = 0.0;
    double dramBytes = 0.0;

    /** Useful FLOPs of the SpMM (2 * NNZ * N). */
    double flops = 0.0;

    /** Achieved useful GFLOP/s. */
    double gflops() const;

    /** Makes an "unsupported" marker result. */
    static LaunchResult unsupported(const std::string& kernel,
                                    const std::string& reason);
};

/** Converts TbWork vectors into scheduled launch results. */
class CostModel
{
  public:
    explicit CostModel(ArchSpec arch) : archSpec(std::move(arch)) {}

    const ArchSpec& arch() const { return archSpec; }

    /**
     * Cycles one thread block keeps its SM busy: exec pipes at the
     * SM's full rates (SMs are modeled as serial block queues —
     * occupancy interleaves blocks without adding issue slots) and
     * memory at a 1/memShare bandwidth share.  @p memShare is the
     * number of SMs splitting the memory system (launch() passes the
     * number of *active* SMs; <= 0 means all SMs).
     */
    double tbCycles(const TbWork& w, double memShare = 0.0) const;

    /**
     * Schedules the blocks and aggregates metrics.
     * @param kernel_name  reported kernel name
     * @param tbs          per-thread-block work, launch order
     * @param flops        useful FLOPs for GFLOP/s reporting
     * @param l2_hit_rate  hit rate measured by the kernel's L2 stream
     */
    LaunchResult launch(const std::string& kernel_name,
                        const std::vector<TbWork>& tbs, double flops,
                        double l2_hit_rate) const;

  private:
    ArchSpec archSpec;
};

} // namespace dtc

#endif // DTC_GPUSIM_COST_MODEL_H
