#include "gpusim/l2cache.h"

#include <algorithm>

#include "common/check.h"

namespace dtc {

namespace {

/** Largest power of two not exceeding @p v (v >= 1). */
int64_t
floorPow2(int64_t v)
{
    int64_t p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

} // namespace

L2Cache::L2Cache(int64_t capacity_bytes, int ways, int64_t line_bytes)
    : lineBytes(line_bytes), nWays(ways)
{
    DTC_CHECK(capacity_bytes > 0 && ways > 0 && line_bytes > 0);
    int64_t lines = std::max<int64_t>(ways, capacity_bytes / line_bytes);
    nSets = std::max<int64_t>(1, floorPow2(lines / ways));
    tags.assign(static_cast<size_t>(nSets) * nWays, kInvalid);
    lastUse.assign(tags.size(), 0);
}

bool
L2Cache::access(uint64_t addr)
{
    tick++;
    const uint64_t line = addr / static_cast<uint64_t>(lineBytes);
    const uint64_t set = line & static_cast<uint64_t>(nSets - 1);
    const size_t base = static_cast<size_t>(set) * nWays;

    int victim = 0;
    uint64_t victim_use = ~0ull;
    for (int w = 0; w < nWays; ++w) {
        if (tags[base + w] == line) {
            lastUse[base + w] = tick;
            nHits++;
            return true;
        }
        if (tags[base + w] == kInvalid) {
            // Prefer filling an empty way; oldest possible use time.
            if (victim_use != 0) {
                victim = w;
                victim_use = 0;
            }
        } else if (lastUse[base + w] < victim_use) {
            victim = w;
            victim_use = lastUse[base + w];
        }
    }
    tags[base + victim] = line;
    lastUse[base + victim] = tick;
    nMisses++;
    return false;
}

double
L2Cache::hitRate() const
{
    const int64_t total = nHits + nMisses;
    return total > 0 ? static_cast<double>(nHits) /
                           static_cast<double>(total)
                     : 0.0;
}

void
L2Cache::reset()
{
    std::fill(tags.begin(), tags.end(), kInvalid);
    std::fill(lastUse.begin(), lastUse.end(), 0);
    nHits = 0;
    nMisses = 0;
    tick = 0;
}

} // namespace dtc
