/**
 * @file
 * GPU architecture specifications for the execution-model simulator.
 *
 * This environment has no GPU, so the paper's RTX4090 (Ada Lovelace)
 * and RTX3090 (Ampere) testbeds are substituted by parameterized
 * models (DESIGN.md Section 2).  The parameters are public-whitepaper
 * and paper-measured values: SM count, clocks, L2 capacity, DRAM
 * bandwidth, tensor-core TF32 throughput, and the instruction
 * latencies the paper microbenchmarks (HMMA 16.0 cycles, shfl 10.7).
 */
#ifndef DTC_GPUSIM_ARCH_H
#define DTC_GPUSIM_ARCH_H

#include <cstdint>
#include <string>

namespace dtc {

/** Parameters of one simulated GPU. */
struct ArchSpec
{
    std::string name;

    int numSms = 128;       ///< Streaming multiprocessors.
    double clockGhz = 2.52; ///< Boost clock.
    int64_t l2Bytes = 72 * 1024 * 1024; ///< L2 capacity.
    int l2Ways = 16;        ///< L2 associativity.
    int sectorBytes = 32;   ///< Memory-access granularity (1 sector).

    /**
     * Concurrent thread blocks per SM for the SpMM kernels in this
     * paper (occupancy; the paper measures 6 on RTX4090).
     */
    int occupancy = 6;

    /** TF32 tensor-core MACs per cycle per SM. */
    double tcMacsPerCycle = 256.0;

    /** FP32 CUDA-core FMA lanes per SM. */
    double fmaLanesPerCycle = 128.0;

    /** INT32 ALU lanes per SM. */
    double intLanesPerCycle = 64.0;

    /** Load/store unit: warp-level memory instructions per cycle/SM. */
    double lsuPerCycle = 4.0;

    /** Device-memory bandwidth. */
    double dramBwGBps = 1008.0;

    /** Aggregate L2 bandwidth. */
    double l2BwGBps = 5000.0;

    /** Paper-measured instruction latencies (cycles). */
    double hmmaLatencyCycles = 16.0;
    double shflLatencyCycles = 10.7;

    /** Effective cost of a global atomic (L2 read-modify-write). */
    double atomicCycles = 8.0;

    /** DRAM access latency (cycles), for exposed-stall modeling. */
    double dramLatencyCycles = 600.0;

    /**
     * Host-side memory available for Flash-LLM's dense conversion
     * staging.  Scaled ~50x down from a 256 GB workstation to match
     * the dataset scaling (DESIGN.md): the Table-1 analogs that OOM'd
     * in the paper still OOM here.
     */
    int64_t hostMemBytes = 4ll * 1024 * 1024 * 1024;

    /** Device memory budget for format footprints (BELL OOM check). */
    int64_t deviceMemBytes = 24ll * 1024 * 1024 * 1024;

    /**
     * MACs per "HMMA unit".  One unit is one warp-level
     * mma.m16n8k4 (16*8*4 = 512 MACs), the instruction DTC-SpMM
     * emits; all kernels report TC work in these units.
     */
    static constexpr double kMacsPerHmma = 16.0 * 8.0 * 4.0;

    /** Cycles one SM needs to retire one HMMA unit (throughput). */
    double
    cyclesPerHmma() const
    {
        return kMacsPerHmma / tcMacsPerCycle;
    }

    /** DRAM bytes transferred per GPU cycle (whole device). */
    double
    dramBytesPerCycle() const
    {
        return dramBwGBps / clockGhz;
    }

    /** L2 bytes served per GPU cycle (whole device). */
    double
    l2BytesPerCycle() const
    {
        return l2BwGBps / clockGhz;
    }

    /** The paper's RTX4090 (Ada Lovelace, CC 8.9) model. */
    static ArchSpec rtx4090();

    /** The paper's RTX3090 (Ampere, CC 8.6) model. */
    static ArchSpec rtx3090();
};

} // namespace dtc

#endif // DTC_GPUSIM_ARCH_H
