/**
 * @file
 * Thread-block scheduler model (paper Section 4.5.2, Eq. 1).
 *
 * The paper models NVIDIA's proprietary TB scheduler with the
 * acknowledged policy
 *
 *     sm_idx = 2 * (block_idx mod 64) + (block_idx / 64) mod 2
 *
 * for the 128-SM RTX4090: the first wave of numSms * occupancy blocks
 * lands on SMs in that interleaved pattern, and afterwards each block
 * is dispatched to the first SM slot that frees up.  This module
 * implements exactly that, generalized to any even SM count, and is
 * used both by the kernel cost model (per-SM busy/idle, Fig. 3 and
 * Fig. 15) and by the Selector's makespan estimation.
 */
#ifndef DTC_GPUSIM_SCHEDULER_H
#define DTC_GPUSIM_SCHEDULER_H

#include <cstdint>
#include <vector>

namespace dtc {

/** Outcome of scheduling a kernel's thread blocks. */
struct ScheduleResult
{
    /** Busy cycles accumulated by each SM. */
    std::vector<double> smBusyCycles;

    /** Finish time of the last thread block (kernel duration). */
    double makespanCycles = 0.0;

    /** SM each thread block ran on (same order as input). */
    std::vector<int> tbToSm;
};

/**
 * Maps a launch-order block index to an SM for the initial wave,
 * implementing the paper's Eq. 1 generalized to @p num_sms.
 */
int schedulerPolicySm(int64_t block_idx, int num_sms);

/**
 * Schedules @p tb_cycles thread blocks (launch order) onto
 * @p num_sms SMs with @p occupancy concurrent blocks per SM.
 */
ScheduleResult scheduleThreadBlocks(const std::vector<double>& tb_cycles,
                                    int num_sms, int occupancy);

} // namespace dtc

#endif // DTC_GPUSIM_SCHEDULER_H
