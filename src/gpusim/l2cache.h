/**
 * @file
 * Set-associative LRU L2 cache model.
 *
 * The L2 is the GPU resource that DTC-SpMM's Cache-Aware reordering
 * hierarchy targets (paper Section 4.3, Fig. 13c): concurrent thread
 * blocks share it, so scheduling similar row windows near each other
 * raises the hit rate on B-row fetches.  The model is a classic
 * set-associative LRU cache; kernels feed it their B-row access
 * streams in scheduled launch order.
 *
 * Addresses are abstract: kernels pass `row * lineBytes` so one line
 * holds one B-row segment of N floats.  A fixed fraction of capacity
 * is reserved for the streaming traffic (A-format arrays and C
 * writeback) that flows through L2 without reuse.
 */
#ifndef DTC_GPUSIM_L2CACHE_H
#define DTC_GPUSIM_L2CACHE_H

#include <cstdint>
#include <vector>

namespace dtc {

/** A set-associative LRU cache with hit/miss accounting. */
class L2Cache
{
  public:
    /**
     * @param capacity_bytes  usable capacity (already reduced for
     *                        streaming pollution by the caller)
     * @param ways            associativity
     * @param line_bytes      bytes per line
     */
    L2Cache(int64_t capacity_bytes, int ways, int64_t line_bytes);

    /** Accesses @p addr; returns true on hit.  Misses fill the line. */
    bool access(uint64_t addr);

    /** Convenience: access line index @p line directly. */
    bool
    accessLine(uint64_t line)
    {
        return access(line * static_cast<uint64_t>(lineBytes));
    }

    int64_t hits() const { return nHits; }
    int64_t misses() const { return nMisses; }

    /** Hit fraction over all accesses so far (0 if none). */
    double hitRate() const;

    /** Clears contents and statistics. */
    void reset();

    int64_t numSets() const { return nSets; }

  private:
    int64_t lineBytes;
    int nWays;
    int64_t nSets;
    int64_t nHits = 0;
    int64_t nMisses = 0;
    uint64_t tick = 0;

    /** tags[set*ways + way]; kInvalid = empty. */
    std::vector<uint64_t> tags;
    /** Last-use timestamp per way. */
    std::vector<uint64_t> lastUse;

    static constexpr uint64_t kInvalid = ~0ull;
};

} // namespace dtc

#endif // DTC_GPUSIM_L2CACHE_H
