/**
 * @file
 * Graph Convolutional Network layers (Kipf & Welling) — the paper's
 * end-to-end case study workload (Section 5.4, Eq. 2):
 *
 *     H_{l+1} = sigma[(A x H_l) x w_l + b_l]
 *
 * The A x H product runs through any SpmmKernel, so DTC-GCN and the
 * framework baselines differ only in which kernel (and overhead
 * profile) they plug in.  Backward passes reuse the same kernel: for
 * a symmetric adjacency, dH = A^T(...) = A(...).
 */
#ifndef DTC_GNN_GCN_H
#define DTC_GNN_GCN_H

#include <cstdint>
#include <memory>
#include <vector>

#include "kernels/kernel.h"
#include "matrix/csr.h"
#include "matrix/dense.h"

namespace dtc {

class Rng;

/**
 * Optimizer selection for the trainer.  Values are the on-disk
 * encoding used by runtime/checkpoint.cc — do not renumber.
 */
enum class Optimizer : uint32_t
{
    Sgd = 0,
    Adam = 1,
};

/** Adam hyper-parameters (Kingma & Ba, 2015). */
struct AdamParams
{
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
};

/**
 * Full learnable + optimizer state of one layer, as captured for
 * crash-safe checkpoints (runtime/checkpoint.h).  Adam moments are
 * empty (0x0 / size 0) when the layer has only ever stepped with SGD.
 */
struct GcnLayerState
{
    DenseMatrix weight;
    std::vector<float> bias;
    DenseMatrix adamM;
    DenseMatrix adamV;
    std::vector<float> adamMBias;
    std::vector<float> adamVBias;
};

/** One GraphConv layer with weights, bias and their gradients. */
class GcnLayer
{
  public:
    /**
     * @param in_features   input feature width
     * @param out_features  output feature width
     * @param relu          apply ReLU (hidden layers only)
     */
    GcnLayer(int64_t in_features, int64_t out_features, bool relu,
             Rng& rng);

    int64_t inFeatures() const { return weight.rows(); }
    int64_t outFeatures() const { return weight.cols(); }

    /**
     * Forward pass: out = act((A x h) x W + b), where the SpMM runs on
     * @p kernel (already prepared with A).  Caches activations for
     * backward().
     */
    void forward(const SpmmKernel& kernel, const DenseMatrix& h,
                 DenseMatrix& out);

    /**
     * Backward pass: consumes d(loss)/d(out) in @p grad_out, fills
     * weight/bias gradients and d(loss)/d(h) in @p grad_in.
     * A is assumed symmetric (GNN adjacency), so A^T SpMM reuses the
     * same kernel.
     */
    void backward(const SpmmKernel& kernel, const DenseMatrix& grad_out,
                  DenseMatrix& grad_in);

    /** SGD step with learning rate @p lr; clears gradients. */
    void step(float lr);

    /**
     * Adam step with bias-corrected moments at 1-based timestep @p t;
     * clears gradients.  Moment buffers are allocated (zeroed) on the
     * first call so SGD-only training pays nothing for them.
     */
    void stepAdam(float lr, const AdamParams& p, int64_t t);

    /** Copies out the checkpointable state (weights + Adam moments). */
    GcnLayerState saveState() const;

    /**
     * Restores state captured by saveState().  Throws
     * DtcError(InvalidInput) on shape mismatch.
     */
    void loadState(const GcnLayerState& s);

    const DenseMatrix& weights() const { return weight; }
    const DenseMatrix& weightGrad() const { return gradWeight; }

  private:
    bool applyRelu;
    DenseMatrix weight;    ///< in x out.
    std::vector<float> bias;
    DenseMatrix gradWeight;
    std::vector<float> gradBias;

    // Adam first/second moments; empty until stepAdam runs.
    DenseMatrix adamM;
    DenseMatrix adamV;
    std::vector<float> adamMBias;
    std::vector<float> adamVBias;

    // Cached forward tensors.
    DenseMatrix aggregated; ///< A x h.
    DenseMatrix activated;  ///< Layer output (post activation).
};

} // namespace dtc

#endif // DTC_GNN_GCN_H
