#include "gnn/dense_ops.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "engine/engine.h"
#include "engine/simd/simd.h"

namespace dtc {

void
gemm(const DenseMatrix& a, bool transpose_a, const DenseMatrix& b,
     bool transpose_b, DenseMatrix& c)
{
    const int64_t m = transpose_a ? a.cols() : a.rows();
    const int64_t k = transpose_a ? a.rows() : a.cols();
    const int64_t kb = transpose_b ? b.cols() : b.rows();
    const int64_t n = transpose_b ? b.rows() : b.cols();
    DTC_CHECK(k == kb);
    DTC_CHECK(c.rows() == m && c.cols() == n);

    auto ea = [&](int64_t i, int64_t j) {
        return transpose_a ? a.at(j, i) : a.at(i, j);
    };
    auto eb = [&](int64_t i, int64_t j) {
        return transpose_b ? b.at(j, i) : b.at(i, j);
    };

    c.setZero();
    if (engine::enabled() && !transpose_b) {
        // Engine path: eb(kk, j) is contiguous B row kk, so the inner
        // loop is the same restrict/j-blocked axpy the SpMM kernels
        // use, panel-tiled over N.  Per C element the kk order (and
        // the av == 0 skip) is unchanged — bitwise-identical output.
        const engine::simd::Kernels& K = engine::simd::kernels();
        const int64_t pw = engine::panelCols(n);
        for (int64_t j0 = 0; j0 < n; j0 += pw) {
            const int64_t pn = std::min(pw, n - j0);
            for (int64_t i = 0; i < m; ++i) {
                float* crow = c.row(i) + j0;
                for (int64_t kk = 0; kk < k; ++kk) {
                    const float av = ea(i, kk);
                    if (av == 0.0f)
                        continue;
                    K.axpy(crow, b.row(kk) + j0, av, pn);
                }
            }
        }
        return;
    }
    // i-k-j loop order keeps the inner loop streaming over C and B
    // rows (cache friendly for the common non-transposed case).
    for (int64_t i = 0; i < m; ++i) {
        float* crow = c.row(i);
        for (int64_t kk = 0; kk < k; ++kk) {
            const float av = ea(i, kk);
            if (av == 0.0f)
                continue;
            for (int64_t j = 0; j < n; ++j)
                crow[j] += av * eb(kk, j);
        }
    }
}

void
addBias(DenseMatrix& c, const std::vector<float>& bias)
{
    DTC_CHECK(static_cast<int64_t>(bias.size()) == c.cols());
    for (int64_t i = 0; i < c.rows(); ++i) {
        float* row = c.row(i);
        for (int64_t j = 0; j < c.cols(); ++j)
            row[j] += bias[j];
    }
}

void
reluForward(DenseMatrix& x)
{
    float* d = x.data();
    for (size_t i = 0; i < x.size(); ++i)
        d[i] = std::max(0.0f, d[i]);
}

void
reluBackward(const DenseMatrix& activated, DenseMatrix& grad)
{
    DTC_CHECK(activated.rows() == grad.rows() &&
              activated.cols() == grad.cols());
    const float* a = activated.data();
    float* g = grad.data();
    for (size_t i = 0; i < grad.size(); ++i) {
        if (a[i] <= 0.0f)
            g[i] = 0.0f;
    }
}

void
softmaxRows(DenseMatrix& x)
{
    for (int64_t i = 0; i < x.rows(); ++i) {
        float* row = x.row(i);
        float mx = row[0];
        for (int64_t j = 1; j < x.cols(); ++j)
            mx = std::max(mx, row[j]);
        double sum = 0.0;
        for (int64_t j = 0; j < x.cols(); ++j) {
            row[j] = std::exp(row[j] - mx);
            sum += row[j];
        }
        const float inv = static_cast<float>(1.0 / sum);
        for (int64_t j = 0; j < x.cols(); ++j)
            row[j] *= inv;
    }
}

double
crossEntropy(const DenseMatrix& probs,
             const std::vector<int32_t>& labels,
             DenseMatrix* grad_logits)
{
    DTC_CHECK(static_cast<int64_t>(labels.size()) == probs.rows());
    const double inv_rows = 1.0 / static_cast<double>(probs.rows());
    double loss = 0.0;
    if (grad_logits) {
        DTC_CHECK(grad_logits->rows() == probs.rows() &&
                  grad_logits->cols() == probs.cols());
    }
    for (int64_t i = 0; i < probs.rows(); ++i) {
        const int32_t y = labels[i];
        DTC_CHECK(y >= 0 && y < probs.cols());
        const float p = std::max(probs.at(i, y), 1e-12f);
        loss -= std::log(static_cast<double>(p)) * inv_rows;
        if (grad_logits) {
            for (int64_t j = 0; j < probs.cols(); ++j) {
                grad_logits->at(i, j) =
                    static_cast<float>((probs.at(i, j) -
                                        (j == y ? 1.0f : 0.0f)) *
                                       inv_rows);
            }
        }
    }
    return loss;
}

double
accuracy(const DenseMatrix& probs, const std::vector<int32_t>& labels)
{
    DTC_CHECK(static_cast<int64_t>(labels.size()) == probs.rows());
    int64_t correct = 0;
    for (int64_t i = 0; i < probs.rows(); ++i) {
        int64_t best = 0;
        for (int64_t j = 1; j < probs.cols(); ++j)
            if (probs.at(i, j) > probs.at(i, best))
                best = j;
        if (best == labels[i])
            correct++;
    }
    return static_cast<double>(correct) /
           static_cast<double>(probs.rows());
}

double
denseGemmTimeMs(int64_t m, int64_t k, int64_t n, const ArchSpec& arch)
{
    const double flops = 2.0 * static_cast<double>(m) *
                         static_cast<double>(k) *
                         static_cast<double>(n);
    const double peak_flops =
        2.0 * arch.tcMacsPerCycle * static_cast<double>(arch.numSms) *
        arch.clockGhz * 1e9;
    // cuBLAS TF32 GEMM sustains ~70% of peak on these shapes.
    const double t_compute = flops / (0.70 * peak_flops) * 1e3;
    const double bytes =
        4.0 * (static_cast<double>(m) * k + static_cast<double>(k) * n +
               static_cast<double>(m) * n);
    const double t_mem = bytes / (arch.dramBwGBps * 1e9) * 1e3;
    return std::max(t_compute, t_mem) + 0.004; // launch overhead
}

double
elementwiseTimeMs(int64_t elems, const ArchSpec& arch)
{
    const double bytes = 8.0 * static_cast<double>(elems);
    return bytes / (arch.dramBwGBps * 1e9) * 1e3 + 0.003;
}

} // namespace dtc
