/**
 * @file
 * GNN framework emulations for the Fig. 16 case study.
 *
 * The four training stacks the paper compares differ in (a) which
 * SpMM kernel performs A x H, and (b) per-operator dispatch overhead:
 *
 *   - DTC-GCN: DTC-SpMM (Selector mode), light CUDA-extension
 *     dispatch, plus ME-TCF format conversion counted once up front
 *     (the paper includes it);
 *   - DGL: cuSPARSE CSR SpMM behind a graph-kernel dispatcher;
 *   - PyG (SparseTensor mode): torch-sparse's CSR kernel — modelled
 *     as the cuSPARSE kernel at a torch-sparse efficiency factor —
 *     behind PyTorch autograd dispatch;
 *   - TC-GNN: TCGNN-SpMM; its (CPU-side, slow) format conversion is
 *     excluded, as the paper does for Fig. 16.
 */
#ifndef DTC_GNN_FRAMEWORKS_H
#define DTC_GNN_FRAMEWORKS_H

#include <cstdint>
#include <memory>
#include <string>

#include "gpusim/cost_model.h"
#include "kernels/kernel.h"
#include "matrix/csr.h"

namespace dtc {

/** Frameworks of the Fig. 16 comparison. */
enum class GnnFramework
{
    DtcGcn,          ///< This paper's DTC-GCN.
    Dgl,             ///< Deep Graph Library.
    PygSparseTensor, ///< PyTorch-Geometric, SparseTensor mode.
    TcGnn,           ///< TC-GNN.
};

/** Display name matching the paper. */
const char* gnnFrameworkName(GnnFramework fw);

/** Per-framework profile used by the time estimator. */
struct FrameworkProfile
{
    /** Kernel performing A x H. */
    KernelKind spmmKernel;

    /** Multiplier on the SpMM kernel's simulated time (kernel-level
     *  efficiency differences not captured by the kernel itself). */
    double spmmFactor = 1.0;

    /** Dispatch overhead per GPU operator launch (ms). */
    double perOpOverheadMs = 0.0;

    /** Whether one-time format conversion is charged (paper's
     *  convention: yes for DTC-GCN, no for TC-GNN). */
    bool chargeConversion = false;
};

/** Profile of one framework. */
FrameworkProfile frameworkProfile(GnnFramework fw);

/** Inputs of the training-time estimate. */
struct GcnTrainingConfig
{
    int64_t inFeatures = 128;
    int64_t hidden = 128;
    int64_t classes = 16;
    int epochs = 200;
};

/** Breakdown of an estimated training run. */
struct GcnTrainingEstimate
{
    double totalMs = 0.0;
    double spmmMs = 0.0;       ///< All epochs' SpMM time.
    double gemmMs = 0.0;       ///< All epochs' dense GEMM time.
    double overheadMs = 0.0;   ///< Dispatch + elementwise.
    double conversionMs = 0.0; ///< One-time format conversion.
};

/**
 * Estimates end-to-end 2-layer GCN training time on @p arch for the
 * adjacency @p a under framework @p fw (paper Section 5.4 protocol:
 * full-batch, 200 epochs, forward + backward each epoch).
 */
GcnTrainingEstimate estimateGcnTraining(const CsrMatrix& a,
                                        GnnFramework fw,
                                        const GcnTrainingConfig& cfg,
                                        const ArchSpec& arch);

} // namespace dtc

#endif // DTC_GNN_FRAMEWORKS_H
