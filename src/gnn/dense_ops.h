/**
 * @file
 * Dense operations for the GNN stack: GEMM (with transpose options),
 * bias, ReLU forward/backward, row softmax, cross-entropy — plus a
 * cost model for cuBLAS-grade dense GEMM so end-to-end GCN training
 * time (Fig. 16) can be simulated.
 */
#ifndef DTC_GNN_DENSE_OPS_H
#define DTC_GNN_DENSE_OPS_H

#include <cstdint>
#include <vector>

#include "gpusim/arch.h"
#include "matrix/dense.h"

namespace dtc {

/** C = op(A) * op(B); op is optional transposition. */
void gemm(const DenseMatrix& a, bool transpose_a, const DenseMatrix& b,
          bool transpose_b, DenseMatrix& c);

/** Adds bias vector @p bias (size c.cols()) to every row of @p c. */
void addBias(DenseMatrix& c, const std::vector<float>& bias);

/** In-place ReLU. */
void reluForward(DenseMatrix& x);

/**
 * ReLU backward: zeroes gradient entries where the forward
 * activation was <= 0.  @p activated is the post-ReLU tensor.
 */
void reluBackward(const DenseMatrix& activated, DenseMatrix& grad);

/** Row-wise softmax, numerically stabilized. */
void softmaxRows(DenseMatrix& x);

/**
 * Mean cross-entropy of softmax probabilities @p probs against
 * integer @p labels; writes d(loss)/d(logits) into @p grad_logits
 * (probs - onehot, scaled by 1/rows).
 */
double crossEntropy(const DenseMatrix& probs,
                    const std::vector<int32_t>& labels,
                    DenseMatrix* grad_logits);

/** Fraction of rows whose argmax matches the label. */
double accuracy(const DenseMatrix& probs,
                const std::vector<int32_t>& labels);

/**
 * Simulated time of a dense m x k x n TF32 GEMM on @p arch — the
 * cuBLAS-grade roofline every framework shares for the XW products.
 */
double denseGemmTimeMs(int64_t m, int64_t k, int64_t n,
                       const ArchSpec& arch);

/** Simulated time of an elementwise pass over @p elems floats. */
double elementwiseTimeMs(int64_t elems, const ArchSpec& arch);

} // namespace dtc

#endif // DTC_GNN_DENSE_OPS_H
