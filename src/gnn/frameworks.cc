#include "gnn/frameworks.h"

#include "common/check.h"
#include "gnn/dense_ops.h"

namespace dtc {

const char*
gnnFrameworkName(GnnFramework fw)
{
    switch (fw) {
      case GnnFramework::DtcGcn:
        return "DTC-GCN";
      case GnnFramework::Dgl:
        return "DGL";
      case GnnFramework::PygSparseTensor:
        return "PyG(SparseTensor)";
      case GnnFramework::TcGnn:
        return "TC-GNN";
    }
    return "?";
}

FrameworkProfile
frameworkProfile(GnnFramework fw)
{
    FrameworkProfile p;
    switch (fw) {
      case GnnFramework::DtcGcn:
        p.spmmKernel = KernelKind::Dtc;
        p.spmmFactor = 1.0;
        p.perOpOverheadMs = 0.006; // thin CUDA-extension dispatch
        p.chargeConversion = true;
        break;
      case GnnFramework::Dgl:
        p.spmmKernel = KernelKind::CuSparse;
        // DGL's segment-reduce SpMM beats vanilla cuSPARSE slightly
        // on GNN-shaped graphs.
        p.spmmFactor = 0.85;
        p.perOpOverheadMs = 0.020; // DGL graph-op dispatcher
        break;
      case GnnFramework::PygSparseTensor:
        p.spmmKernel = KernelKind::CuSparse;
        // torch-sparse's CSR kernel trails cuSPARSE on these shapes.
        p.spmmFactor = 1.35;
        p.perOpOverheadMs = 0.035; // autograd + SparseTensor wrapper
        break;
      case GnnFramework::TcGnn:
        p.spmmKernel = KernelKind::Tcgnn;
        p.spmmFactor = 1.0;
        p.perOpOverheadMs = 0.008;
        // Paper excludes TC-GNN's (CPU, very slow) conversion.
        p.chargeConversion = false;
        break;
    }
    return p;
}

GcnTrainingEstimate
estimateGcnTraining(const CsrMatrix& a, GnnFramework fw,
                    const GcnTrainingConfig& cfg, const ArchSpec& arch)
{
    DTC_CHECK(cfg.epochs > 0);
    const FrameworkProfile prof = frameworkProfile(fw);
    auto kernel = makeKernel(prof.spmmKernel);
    const Refusal r = kernel->prepare(a);
    if (!r.ok()) {
        DTC_RAISE(r.code, kernel->name() << ": " << r.reason);
    }

    const CostModel cm(arch);
    const double spmm_in =
        kernel->cost(cfg.inFeatures, cm).timeMs * prof.spmmFactor;
    const double spmm_hidden =
        kernel->cost(cfg.hidden, cm).timeMs * prof.spmmFactor;

    const int64_t m = a.rows();
    GcnTrainingEstimate est;

    // Per epoch: forward SpMMs at widths F0 and hidden; backward
    // SpMMs (dH paths) at the same widths.
    const double spmm_epoch = 2.0 * (spmm_in + spmm_hidden);

    // Dense GEMMs per epoch: each layer does XW forward plus dW and
    // dZ W^T backward.
    const double gemm_epoch =
        denseGemmTimeMs(m, cfg.inFeatures, cfg.hidden, arch) * 3.0 +
        denseGemmTimeMs(m, cfg.hidden, cfg.classes, arch) * 3.0;

    // Elementwise traffic: ReLU fwd/bwd, bias, softmax, loss, SGD.
    const double ew_epoch =
        elementwiseTimeMs(m * cfg.hidden, arch) * 4.0 +
        elementwiseTimeMs(m * cfg.classes, arch) * 3.0;

    // ~18 operator launches per epoch pay framework dispatch.
    const double overhead_epoch =
        18.0 * prof.perOpOverheadMs + ew_epoch;

    est.spmmMs = spmm_epoch * cfg.epochs;
    est.gemmMs = gemm_epoch * cfg.epochs;
    est.overheadMs = overhead_epoch * cfg.epochs;

    if (prof.chargeConversion) {
        // GPU-accelerated ME-TCF conversion: a few streaming passes
        // (histogram, prefix sums, scatter, lane table) over the CSR
        // arrays.
        const double bytes = static_cast<double>(a.nnz()) * 40.0;
        est.conversionMs = bytes / (arch.dramBwGBps * 1e9) * 1e3 * 6.0;
    }
    est.totalMs =
        est.spmmMs + est.gemmMs + est.overheadMs + est.conversionMs;
    return est;
}

} // namespace dtc
