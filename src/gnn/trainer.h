/**
 * @file
 * Functional full-batch GCN trainer — the executable counterpart of
 * the Fig. 16 estimate: a real 2-layer GCN trained end-to-end on a
 * synthetic node-classification task, exercising the SpMM kernels
 * inside forward and backward passes and verifying that training
 * converges (loss decreases, accuracy rises) with TC numerics.
 */
#ifndef DTC_GNN_TRAINER_H
#define DTC_GNN_TRAINER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "gnn/gcn.h"
#include "kernels/kernel.h"
#include "matrix/csr.h"
#include "matrix/dense.h"

namespace dtc {

/** Trainer configuration. */
struct TrainerConfig
{
    int64_t hidden = 32;
    int64_t classes = 4;
    int epochs = 30;
    float learningRate = 0.05f;
    uint64_t seed = 0x6cafe;
};

/** Per-epoch record of one training run. */
struct TrainStats
{
    std::vector<double> loss;     ///< One entry per epoch.
    std::vector<double> accuracy; ///< One entry per epoch.
};

/**
 * A 2-layer GCN bound to one SpMM kernel and one adjacency matrix.
 */
class GcnModel
{
  public:
    /**
     * @param adjacency  square (symmetric) adjacency matrix
     * @param kernel     SpMM implementation, not yet prepared
     * @param features   node feature width
     */
    GcnModel(const CsrMatrix& adjacency,
             std::unique_ptr<SpmmKernel> kernel, int64_t features,
             const TrainerConfig& cfg);

    /** Forward pass producing class probabilities. */
    void forward(const DenseMatrix& x, DenseMatrix& probs);

    /**
     * One training step on (x, labels): forward, cross-entropy,
     * backward, SGD.  Returns the loss; writes accuracy if non-null.
     */
    double trainStep(const DenseMatrix& x,
                     const std::vector<int32_t>& labels,
                     double* accuracy_out);

    /** Trains for cfg.epochs epochs. */
    TrainStats train(const DenseMatrix& x,
                     const std::vector<int32_t>& labels);

    const SpmmKernel& kernel() const { return *spmm; }

  private:
    std::unique_ptr<SpmmKernel> spmm;
    TrainerConfig config;
    Rng initRng; ///< Weight-init stream; must precede the layers.
    GcnLayer layer1;
    GcnLayer layer2;

    // Scratch tensors reused across steps.
    DenseMatrix h1, logits, gradLogits, gradH1, gradX;
};

/**
 * Builds a learnable synthetic node-classification task on @p a:
 * features correlate with a hidden class assignment derived from
 * graph position, so a GCN can fit it.
 */
void makeClassificationTask(const CsrMatrix& a, int64_t features,
                            int64_t classes, uint64_t seed,
                            DenseMatrix* x_out,
                            std::vector<int32_t>* labels_out);

} // namespace dtc

#endif // DTC_GNN_TRAINER_H
