/**
 * @file
 * Functional full-batch GCN trainer — the executable counterpart of
 * the Fig. 16 estimate: a real 2-layer GCN trained end-to-end on a
 * synthetic node-classification task, exercising the SpMM kernels
 * inside forward and backward passes and verifying that training
 * converges (loss decreases, accuracy rises) with TC numerics.
 */
#ifndef DTC_GNN_TRAINER_H
#define DTC_GNN_TRAINER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "gnn/gcn.h"
#include "kernels/kernel.h"
#include "matrix/csr.h"
#include "matrix/dense.h"
#include "runtime/checkpoint.h"
#include "tuner/tuner.h"

namespace dtc {

/** Trainer configuration. */
struct TrainerConfig
{
    int64_t hidden = 32;
    int64_t classes = 4;
    int epochs = 30;
    float learningRate = 0.05f;
    uint64_t seed = 0x6cafe;

    /** Optimizer; Sgd keeps the historical trainer numerics. */
    Optimizer optimizer = Optimizer::Sgd;

    /** Adam hyper-parameters (used when optimizer == Adam). */
    AdamParams adam;

    /**
     * Crash-safe checkpoint directory; empty defers to
     * DTC_CHECKPOINT_DIR (unset = checkpointing off).  The directory
     * is created on first write.
     */
    std::string checkpointDir;

    /** Checkpoint every N completed epochs (<= 0 means every 1). */
    int checkpointEvery = 1;
};

/** One mid-training kernel replacement (graceful degradation). */
struct FallbackEvent
{
    int epoch = 0;           ///< Epoch whose step failed.
    std::string fromKernel;  ///< Kernel that failed.
    std::string toKernel;    ///< Kernel re-tuned onto.
    ErrorCode code = ErrorCode::Internal; ///< Failure taxonomy code.
    std::string reason;      ///< The failure message.
};

/** Per-epoch record of one training run. */
struct TrainStats
{
    std::vector<double> loss;     ///< One entry per epoch.
    std::vector<double> accuracy; ///< One entry per epoch.

    /** Kernel fallbacks that happened mid-training (usually empty). */
    std::vector<FallbackEvent> fallbacks;
};

/**
 * A 2-layer GCN bound to one SpMM kernel and one adjacency matrix.
 */
class GcnModel
{
  public:
    /**
     * Binds to one fixed kernel.  Throws DtcError (carrying the
     * refusal's code) if the kernel refuses the adjacency; this
     * variant has no fallback pool, so a mid-training kernel failure
     * propagates.
     *
     * @param adjacency  square (symmetric) adjacency matrix
     * @param kernel     SpMM implementation, not yet prepared
     * @param features   node feature width
     */
    GcnModel(const CsrMatrix& adjacency,
             std::unique_ptr<SpmmKernel> kernel, int64_t features,
             const TrainerConfig& cfg);

    /**
     * Resilient variant: tunes @p request's candidates on
     * @p adjacency under @p cm and binds to the winner.  If the bound
     * kernel later throws a DtcError mid-step, train() re-tunes with
     * the failed kernel excluded, re-prepares, records a
     * FallbackEvent, and retries the epoch — training survives any
     * single-kernel failure as long as one candidate (or the terminal
     * cuSPARSE-like fallback) still works.
     */
    GcnModel(const CsrMatrix& adjacency, const TuneRequest& request,
             const CostModel& cm, int64_t features,
             const TrainerConfig& cfg);

    /** Forward pass producing class probabilities. */
    void forward(const DenseMatrix& x, DenseMatrix& probs);

    /**
     * One training step on (x, labels): forward, cross-entropy,
     * backward, SGD.  Returns the loss; writes accuracy if non-null.
     */
    double trainStep(const DenseMatrix& x,
                     const std::vector<int32_t>& labels,
                     double* accuracy_out);

    /**
     * Trains for cfg.epochs epochs.  With the resilient constructor,
     * kernel failures are absorbed via re-tuning (see above) and
     * reported in TrainStats::fallbacks.
     *
     * When a checkpoint directory is configured (cfg.checkpointDir or
     * DTC_CHECKPOINT_DIR), a crash-safe snapshot is written every
     * cfg.checkpointEvery completed epochs; after resumeFrom() the
     * loop continues at the checkpointed epoch and the returned stats
     * cover the whole run — bitwise identical to an uninterrupted
     * one.
     */
    TrainStats train(const DenseMatrix& x,
                     const std::vector<int32_t>& labels);

    /**
     * Restores training state from the checkpoint at @p path (empty =
     * the latest in the configured directory).  Must be called before
     * train(); throws DtcError{CorruptData} on a damaged file,
     * DtcError{InvalidInput} on a model-shape or optimizer mismatch.
     *
     * @return epochs already completed (0 when @p path is empty and
     *         no checkpoint exists yet).
     */
    int64_t resumeFrom(const std::string& path = std::string());

    const SpmmKernel& kernel() const { return *spmm; }

  private:
    /** checkpointDir > DTC_CHECKPOINT_DIR > "" (off). */
    std::string effectiveCheckpointDir() const;

    /** Writes the post-epoch snapshot (see runtime/checkpoint.h). */
    void writeCheckpointNow(const std::string& dir,
                            int64_t epochs_done,
                            const TrainStats& stats) const;

    /** Tunes over remainingCandidates and binds the winner. */
    void bindTunedKernel();

    std::unique_ptr<SpmmKernel> spmm;
    TrainerConfig config;
    Rng initRng; ///< Weight-init stream; must precede the layers.
    GcnLayer layer1;
    GcnLayer layer2;

    // Resilient-mode state (empty/null for the fixed-kernel ctor).
    bool resilient = false;
    CsrMatrix adj;                  ///< Adjacency copy for re-prepare.
    TuneRequest tuneRequest;        ///< Width/iterations for re-tune.
    std::unique_ptr<CostModel> costModel;
    std::vector<KernelKind> remainingCandidates;
    KernelKind currentKind = KernelKind::CuSparse;

    // Checkpoint/resume state.
    int64_t startEpoch = 0;   ///< First epoch train() will run.
    int64_t optimizerT = 0;   ///< Optimizer steps taken (Adam t).
    std::vector<double> resumedLoss;     ///< History before resume.
    std::vector<double> resumedAccuracy; ///< History before resume.

    // Scratch tensors reused across steps.
    DenseMatrix h1, logits, gradLogits, gradH1, gradX;
};

/**
 * Builds a learnable synthetic node-classification task on @p a:
 * features correlate with a hidden class assignment derived from
 * graph position, so a GCN can fit it.
 */
void makeClassificationTask(const CsrMatrix& a, int64_t features,
                            int64_t classes, uint64_t seed,
                            DenseMatrix* x_out,
                            std::vector<int32_t>* labels_out);

} // namespace dtc

#endif // DTC_GNN_TRAINER_H
