#include "gnn/trainer.h"

#include "common/check.h"
#include "common/rng.h"
#include "gnn/dense_ops.h"

namespace dtc {

GcnModel::GcnModel(const CsrMatrix& adjacency,
                   std::unique_ptr<SpmmKernel> kernel, int64_t features,
                   const TrainerConfig& cfg)
    : spmm(std::move(kernel)), config(cfg), initRng(cfg.seed),
      layer1(features, cfg.hidden, /*relu=*/true, initRng),
      layer2(cfg.hidden, cfg.classes, /*relu=*/false, initRng)
{
    DTC_CHECK_MSG(adjacency.rows() == adjacency.cols(),
                  "GCN adjacency must be square");
    const std::string err = spmm->prepare(adjacency);
    DTC_CHECK_MSG(err.empty(), spmm->name() << ": " << err);
}

void
GcnModel::forward(const DenseMatrix& x, DenseMatrix& probs)
{
    layer1.forward(*spmm, x, h1);
    layer2.forward(*spmm, h1, logits);
    probs = logits;
    softmaxRows(probs);
}

double
GcnModel::trainStep(const DenseMatrix& x,
                    const std::vector<int32_t>& labels,
                    double* accuracy_out)
{
    DenseMatrix probs;
    forward(x, probs);
    if (accuracy_out)
        *accuracy_out = accuracy(probs, labels);

    if (gradLogits.rows() != probs.rows() ||
        gradLogits.cols() != probs.cols())
        gradLogits = DenseMatrix(probs.rows(), probs.cols());
    const double loss = crossEntropy(probs, labels, &gradLogits);

    layer2.backward(*spmm, gradLogits, gradH1);
    layer1.backward(*spmm, gradH1, gradX);
    layer1.step(config.learningRate);
    layer2.step(config.learningRate);
    return loss;
}

TrainStats
GcnModel::train(const DenseMatrix& x,
                const std::vector<int32_t>& labels)
{
    TrainStats stats;
    stats.loss.reserve(static_cast<size_t>(config.epochs));
    stats.accuracy.reserve(static_cast<size_t>(config.epochs));
    for (int e = 0; e < config.epochs; ++e) {
        double acc = 0.0;
        stats.loss.push_back(trainStep(x, labels, &acc));
        stats.accuracy.push_back(acc);
    }
    return stats;
}

void
makeClassificationTask(const CsrMatrix& a, int64_t features,
                       int64_t classes, uint64_t seed,
                       DenseMatrix* x_out,
                       std::vector<int32_t>* labels_out)
{
    DTC_CHECK(features >= classes);
    Rng rng(seed);
    const int64_t n = a.rows();

    // Hidden class = contiguous stripe of node ids; features are
    // noisy indicators of the class so the task is learnable.
    std::vector<int32_t>& labels = *labels_out;
    labels.resize(static_cast<size_t>(n));
    const int64_t stripe = (n + classes - 1) / classes;
    for (int64_t i = 0; i < n; ++i)
        labels[i] = static_cast<int32_t>(i / stripe);

    DenseMatrix& x = *x_out;
    x = DenseMatrix(n, features);
    x.fillRandom(rng, -0.1f, 0.1f);
    for (int64_t i = 0; i < n; ++i)
        x.at(i, labels[i]) += 1.0f;
}

} // namespace dtc
