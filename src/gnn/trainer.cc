#include "gnn/trainer.h"

#include <algorithm>
#include <iostream>

#include "common/check.h"
#include "common/fault.h"
#include "common/rng.h"
#include "gnn/dense_ops.h"
#include "obs/metrics.h"

namespace dtc {

GcnModel::GcnModel(const CsrMatrix& adjacency,
                   std::unique_ptr<SpmmKernel> kernel, int64_t features,
                   const TrainerConfig& cfg)
    : spmm(std::move(kernel)), config(cfg), initRng(cfg.seed),
      layer1(features, cfg.hidden, /*relu=*/true, initRng),
      layer2(cfg.hidden, cfg.classes, /*relu=*/false, initRng)
{
    DTC_CHECK_MSG(adjacency.rows() == adjacency.cols(),
                  "GCN adjacency must be square");
    const Refusal r = spmm->prepare(adjacency);
    if (!r.ok()) {
        DTC_RAISE(r.code, spmm->name() << ": " << r.reason);
    }
}

GcnModel::GcnModel(const CsrMatrix& adjacency,
                   const TuneRequest& request, const CostModel& cm,
                   int64_t features, const TrainerConfig& cfg)
    : config(cfg), initRng(cfg.seed),
      layer1(features, cfg.hidden, /*relu=*/true, initRng),
      layer2(cfg.hidden, cfg.classes, /*relu=*/false, initRng),
      resilient(true), adj(adjacency), tuneRequest(request),
      costModel(std::make_unique<CostModel>(cm))
{
    DTC_CHECK_MSG(adjacency.rows() == adjacency.cols(),
                  "GCN adjacency must be square");
    remainingCandidates = tuneRequest.candidates.empty()
                              ? defaultTuneCandidates()
                              : tuneRequest.candidates;
    bindTunedKernel();
}

void
GcnModel::bindTunedKernel()
{
    TuneRequest req = tuneRequest;
    req.candidates = remainingCandidates;
    // An empty candidate list means "the default set" to the tuner;
    // here it means every candidate already failed — let the tuner
    // evaluate just the terminal fallback instead.
    if (req.candidates.empty())
        req.candidates = {KernelKind::CuSparse};
    const TuneResult tuned = tuneSpmm(adj, req, *costModel);
    const TuneEntry& winner = tuned.best(); // throws if nothing works
    currentKind = winner.kind;
    spmm = makeKernel(currentKind);
    const Refusal r = spmm->prepare(adj);
    if (!r.ok()) {
        DTC_RAISE(r.code, spmm->name() << ": " << r.reason);
    }
}

void
GcnModel::forward(const DenseMatrix& x, DenseMatrix& probs)
{
    layer1.forward(*spmm, x, h1);
    layer2.forward(*spmm, h1, logits);
    probs = logits;
    softmaxRows(probs);
}

double
GcnModel::trainStep(const DenseMatrix& x,
                    const std::vector<int32_t>& labels,
                    double* accuracy_out)
{
    DTC_FAULT_POINT("trainer.step");
    DenseMatrix probs;
    forward(x, probs);
    if (accuracy_out)
        *accuracy_out = accuracy(probs, labels);

    if (gradLogits.rows() != probs.rows() ||
        gradLogits.cols() != probs.cols())
        gradLogits = DenseMatrix(probs.rows(), probs.cols());
    const double loss = crossEntropy(probs, labels, &gradLogits);

    layer2.backward(*spmm, gradLogits, gradH1);
    layer1.backward(*spmm, gradH1, gradX);
    layer1.step(config.learningRate);
    layer2.step(config.learningRate);
    return loss;
}

TrainStats
GcnModel::train(const DenseMatrix& x,
                const std::vector<int32_t>& labels)
{
    DTC_TRACE_SCOPE("gnn.train");
    obs::ScopedTimerMs train_timer("gnn.train_ms");
    static obs::Counter& epochs =
        obs::metrics::counter("gnn.epochs");
    static obs::Counter& fallbacks =
        obs::metrics::counter("gnn.fallbacks");
    TrainStats stats;
    stats.loss.reserve(static_cast<size_t>(config.epochs));
    stats.accuracy.reserve(static_cast<size_t>(config.epochs));
    for (int e = 0; e < config.epochs; ++e) {
        DTC_TRACE_SCOPE("gnn.epoch");
        epochs.add(1);
        double acc = 0.0;
        double loss = 0.0;
        if (!resilient) {
            loss = trainStep(x, labels, &acc);
        } else {
            // Graceful degradation: a kernel failure mid-step does
            // not kill the run.  Exclude the failed kernel, re-tune
            // over what remains (tuneSpmm appends the terminal
            // cuSPARSE-like fallback if needed), re-prepare, and
            // retry this epoch.  Bounded by the candidate count, so
            // it cannot loop forever.
            for (;;) {
                try {
                    loss = trainStep(x, labels, &acc);
                    break;
                } catch (const DtcError& err) {
                    // An empty pool means the previous bind already
                    // used the forced terminal fallback; if *that*
                    // failed, nothing is left — propagate.
                    if (remainingCandidates.empty())
                        throw;
                    FallbackEvent ev;
                    ev.epoch = e;
                    ev.fromKernel = spmm->name();
                    ev.code = err.code();
                    ev.reason = err.what();
                    remainingCandidates.erase(
                        std::remove(remainingCandidates.begin(),
                                    remainingCandidates.end(),
                                    currentKind),
                        remainingCandidates.end());
                    bindTunedKernel(); // rethrows if nothing is left
                    ev.toKernel = spmm->name();
                    std::cerr << "[dtc] trainer: epoch " << e << ": "
                              << ev.fromKernel << " failed ("
                              << errorCodeName(ev.code) << ": "
                              << ev.reason << "); re-tuned onto "
                              << ev.toKernel << "\n";
                    fallbacks.add(1);
                    stats.fallbacks.push_back(std::move(ev));
                }
            }
        }
        stats.loss.push_back(loss);
        stats.accuracy.push_back(acc);
    }
    if (!stats.loss.empty()) {
        obs::metrics::gauge("gnn.final_loss").set(stats.loss.back());
        obs::metrics::gauge("gnn.final_accuracy")
            .set(stats.accuracy.back());
    }
    return stats;
}

void
makeClassificationTask(const CsrMatrix& a, int64_t features,
                       int64_t classes, uint64_t seed,
                       DenseMatrix* x_out,
                       std::vector<int32_t>* labels_out)
{
    DTC_CHECK(features >= classes);
    Rng rng(seed);
    const int64_t n = a.rows();

    // Hidden class = contiguous stripe of node ids; features are
    // noisy indicators of the class so the task is learnable.
    std::vector<int32_t>& labels = *labels_out;
    labels.resize(static_cast<size_t>(n));
    const int64_t stripe = (n + classes - 1) / classes;
    for (int64_t i = 0; i < n; ++i)
        labels[i] = static_cast<int32_t>(i / stripe);

    DenseMatrix& x = *x_out;
    x = DenseMatrix(n, features);
    x.fillRandom(rng, -0.1f, 0.1f);
    for (int64_t i = 0; i < n; ++i)
        x.at(i, labels[i]) += 1.0f;
}

} // namespace dtc
