#include "gnn/trainer.h"

#include <algorithm>
#include <filesystem>
#include <iostream>

#include "common/check.h"
#include "common/env.h"
#include "common/fault.h"
#include "common/fault_sites.h"
#include "common/rng.h"
#include "gnn/dense_ops.h"
#include "obs/metrics.h"

namespace dtc {

GcnModel::GcnModel(const CsrMatrix& adjacency,
                   std::unique_ptr<SpmmKernel> kernel, int64_t features,
                   const TrainerConfig& cfg)
    : spmm(std::move(kernel)), config(cfg), initRng(cfg.seed),
      layer1(features, cfg.hidden, /*relu=*/true, initRng),
      layer2(cfg.hidden, cfg.classes, /*relu=*/false, initRng)
{
    DTC_CHECK_MSG(adjacency.rows() == adjacency.cols(),
                  "GCN adjacency must be square");
    const Refusal r = spmm->prepare(adjacency);
    if (!r.ok()) {
        DTC_RAISE(r.code, spmm->name() << ": " << r.reason);
    }
}

GcnModel::GcnModel(const CsrMatrix& adjacency,
                   const TuneRequest& request, const CostModel& cm,
                   int64_t features, const TrainerConfig& cfg)
    : config(cfg), initRng(cfg.seed),
      layer1(features, cfg.hidden, /*relu=*/true, initRng),
      layer2(cfg.hidden, cfg.classes, /*relu=*/false, initRng),
      resilient(true), adj(adjacency), tuneRequest(request),
      costModel(std::make_unique<CostModel>(cm))
{
    DTC_CHECK_MSG(adjacency.rows() == adjacency.cols(),
                  "GCN adjacency must be square");
    remainingCandidates = tuneRequest.candidates.empty()
                              ? defaultTuneCandidates()
                              : tuneRequest.candidates;
    bindTunedKernel();
}

void
GcnModel::bindTunedKernel()
{
    TuneRequest req = tuneRequest;
    req.candidates = remainingCandidates;
    // An empty candidate list means "the default set" to the tuner;
    // here it means every candidate already failed — let the tuner
    // evaluate just the terminal fallback instead.
    if (req.candidates.empty())
        req.candidates = {KernelKind::CuSparse};
    const TuneResult tuned = tuneSpmm(adj, req, *costModel);
    const TuneEntry& winner = tuned.best(); // throws if nothing works
    currentKind = winner.kind;
    spmm = makeKernel(currentKind);
    const Refusal r = spmm->prepare(adj);
    if (!r.ok()) {
        DTC_RAISE(r.code, spmm->name() << ": " << r.reason);
    }
}

void
GcnModel::forward(const DenseMatrix& x, DenseMatrix& probs)
{
    layer1.forward(*spmm, x, h1);
    layer2.forward(*spmm, h1, logits);
    probs = logits;
    softmaxRows(probs);
}

double
GcnModel::trainStep(const DenseMatrix& x,
                    const std::vector<int32_t>& labels,
                    double* accuracy_out)
{
    DTC_FAULT_POINT(fault::sites::kTrainerStep);
    DenseMatrix probs;
    forward(x, probs);
    if (accuracy_out)
        *accuracy_out = accuracy(probs, labels);

    if (gradLogits.rows() != probs.rows() ||
        gradLogits.cols() != probs.cols())
        gradLogits = DenseMatrix(probs.rows(), probs.cols());
    const double loss = crossEntropy(probs, labels, &gradLogits);

    layer2.backward(*spmm, gradLogits, gradH1);
    layer1.backward(*spmm, gradH1, gradX);
    // The step counter advances only once the gradients are complete:
    // a kernel fault above unwinds with the weights *and* the
    // optimizer clock untouched, so a retried epoch replays
    // identically.
    ++optimizerT;
    if (config.optimizer == Optimizer::Adam) {
        layer1.stepAdam(config.learningRate, config.adam, optimizerT);
        layer2.stepAdam(config.learningRate, config.adam, optimizerT);
    } else {
        layer1.step(config.learningRate);
        layer2.step(config.learningRate);
    }
    return loss;
}

std::string
GcnModel::effectiveCheckpointDir() const
{
    if (!config.checkpointDir.empty())
        return config.checkpointDir;
    const auto env_dir = env::readString("DTC_CHECKPOINT_DIR");
    return env_dir ? *env_dir : std::string();
}

void
GcnModel::writeCheckpointNow(const std::string& dir,
                             int64_t epochs_done,
                             const TrainStats& stats) const
{
    std::filesystem::create_directories(dir);
    runtime::TrainerSnapshot snap;
    snap.epochsDone = epochs_done;
    snap.adamT = optimizerT;
    snap.rngState = initRng.stateBits();
    snap.optimizer = config.optimizer;
    snap.loss = stats.loss;
    snap.accuracy = stats.accuracy;
    snap.layers.push_back(layer1.saveState());
    snap.layers.push_back(layer2.saveState());
    runtime::writeCheckpoint(
        runtime::checkpointPath(dir, epochs_done), snap);
}

int64_t
GcnModel::resumeFrom(const std::string& path)
{
    std::string file = path;
    if (file.empty()) {
        const std::string dir = effectiveCheckpointDir();
        if (!dir.empty())
            file = runtime::latestCheckpoint(dir);
        if (file.empty())
            return 0; // nothing to resume — fresh run
    }
    const runtime::TrainerSnapshot snap =
        runtime::readCheckpoint(file);
    DTC_CHECK_CODE(snap.layers.size() == 2, ErrorCode::InvalidInput,
                   "checkpoint has " << snap.layers.size()
                                     << " layers, want 2");
    DTC_CHECK_CODE(snap.optimizer == config.optimizer,
                   ErrorCode::InvalidInput,
                   "checkpoint optimizer does not match the config");
    layer1.loadState(snap.layers[0]);
    layer2.loadState(snap.layers[1]);
    initRng.setStateBits(snap.rngState);
    optimizerT = snap.adamT;
    startEpoch = snap.epochsDone;
    resumedLoss = snap.loss;
    resumedAccuracy = snap.accuracy;
    return startEpoch;
}

TrainStats
GcnModel::train(const DenseMatrix& x,
                const std::vector<int32_t>& labels)
{
    DTC_TRACE_SCOPE("gnn.train");
    obs::ScopedTimerMs train_timer("gnn.train_ms");
    static obs::Counter& epochs =
        obs::metrics::counter("gnn.epochs");
    static obs::Counter& fallbacks =
        obs::metrics::counter("gnn.fallbacks");
    TrainStats stats;
    stats.loss.reserve(static_cast<size_t>(config.epochs));
    stats.accuracy.reserve(static_cast<size_t>(config.epochs));
    // Resume support: pre-fill history and skip completed epochs so
    // the returned stats cover the whole run.
    stats.loss = resumedLoss;
    stats.accuracy = resumedAccuracy;
    const std::string ckpt_dir = effectiveCheckpointDir();
    const int ckpt_every = std::max(1, config.checkpointEvery);
    for (int64_t e = startEpoch; e < config.epochs; ++e) {
        DTC_TRACE_SCOPE("gnn.epoch");
        epochs.add(1);
        double acc = 0.0;
        double loss = 0.0;
        if (!resilient) {
            loss = trainStep(x, labels, &acc);
        } else {
            // Graceful degradation: a kernel failure mid-step does
            // not kill the run.  Exclude the failed kernel, re-tune
            // over what remains (tuneSpmm appends the terminal
            // cuSPARSE-like fallback if needed), re-prepare, and
            // retry this epoch.  Bounded by the candidate count, so
            // it cannot loop forever.
            for (;;) {
                try {
                    loss = trainStep(x, labels, &acc);
                    break;
                } catch (const DtcError& err) {
                    // An empty pool means the previous bind already
                    // used the forced terminal fallback; if *that*
                    // failed, nothing is left — propagate.
                    if (remainingCandidates.empty())
                        throw;
                    FallbackEvent ev;
                    ev.epoch = static_cast<int>(e);
                    ev.fromKernel = spmm->name();
                    ev.code = err.code();
                    ev.reason = err.what();
                    remainingCandidates.erase(
                        std::remove(remainingCandidates.begin(),
                                    remainingCandidates.end(),
                                    currentKind),
                        remainingCandidates.end());
                    bindTunedKernel(); // rethrows if nothing is left
                    ev.toKernel = spmm->name();
                    std::cerr << "[dtc] trainer: epoch " << e << ": "
                              << ev.fromKernel << " failed ("
                              << errorCodeName(ev.code) << ": "
                              << ev.reason << "); re-tuned onto "
                              << ev.toKernel << "\n";
                    fallbacks.add(1);
                    stats.fallbacks.push_back(std::move(ev));
                }
            }
        }
        stats.loss.push_back(loss);
        stats.accuracy.push_back(acc);
        // Crash site: the epoch's work is done but not yet persisted.
        DTC_FAULT_POINT(fault::sites::kTrainerEpochEnd);
        if (!ckpt_dir.empty() &&
            ((e + 1) % ckpt_every == 0 || e + 1 == config.epochs))
            writeCheckpointNow(ckpt_dir, e + 1, stats);
    }
    if (!stats.loss.empty()) {
        obs::metrics::gauge("gnn.final_loss").set(stats.loss.back());
        obs::metrics::gauge("gnn.final_accuracy")
            .set(stats.accuracy.back());
    }
    return stats;
}

void
makeClassificationTask(const CsrMatrix& a, int64_t features,
                       int64_t classes, uint64_t seed,
                       DenseMatrix* x_out,
                       std::vector<int32_t>* labels_out)
{
    DTC_CHECK(features >= classes);
    Rng rng(seed);
    const int64_t n = a.rows();

    // Hidden class = contiguous stripe of node ids; features are
    // noisy indicators of the class so the task is learnable.
    std::vector<int32_t>& labels = *labels_out;
    labels.resize(static_cast<size_t>(n));
    const int64_t stripe = (n + classes - 1) / classes;
    for (int64_t i = 0; i < n; ++i)
        labels[i] = static_cast<int32_t>(i / stripe);

    DenseMatrix& x = *x_out;
    x = DenseMatrix(n, features);
    x.fillRandom(rng, -0.1f, 0.1f);
    for (int64_t i = 0; i < n; ++i)
        x.at(i, labels[i]) += 1.0f;
}

} // namespace dtc
