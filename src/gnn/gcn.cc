#include "gnn/gcn.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "gnn/dense_ops.h"

namespace dtc {

GcnLayer::GcnLayer(int64_t in_features, int64_t out_features, bool relu,
                   Rng& rng)
    : applyRelu(relu), weight(in_features, out_features),
      bias(static_cast<size_t>(out_features), 0.0f),
      gradWeight(in_features, out_features),
      gradBias(static_cast<size_t>(out_features), 0.0f)
{
    // Glorot-uniform initialization.
    const float limit = std::sqrt(
        6.0f / static_cast<float>(in_features + out_features));
    weight.fillRandom(rng, -limit, limit);
}

void
GcnLayer::forward(const SpmmKernel& kernel, const DenseMatrix& h,
                  DenseMatrix& out)
{
    DTC_CHECK(h.cols() == weight.rows());
    const int64_t nodes = h.rows();

    if (aggregated.rows() != nodes || aggregated.cols() != h.cols())
        aggregated = DenseMatrix(nodes, h.cols());
    kernel.compute(h, aggregated);

    if (out.rows() != nodes || out.cols() != weight.cols())
        out = DenseMatrix(nodes, weight.cols());
    gemm(aggregated, false, weight, false, out);
    addBias(out, bias);
    if (applyRelu)
        reluForward(out);
    activated = out;
}

void
GcnLayer::backward(const SpmmKernel& kernel, const DenseMatrix& grad_out,
                   DenseMatrix& grad_in)
{
    DTC_CHECK(grad_out.rows() == aggregated.rows());
    DTC_CHECK(grad_out.cols() == weight.cols());

    DenseMatrix dz = grad_out;
    if (applyRelu)
        reluBackward(activated, dz);

    // dW = (A x H)^T x dZ ; db = column sums of dZ.
    gemm(aggregated, true, dz, false, gradWeight);
    std::fill(gradBias.begin(), gradBias.end(), 0.0f);
    for (int64_t i = 0; i < dz.rows(); ++i)
        for (int64_t j = 0; j < dz.cols(); ++j)
            gradBias[j] += dz.at(i, j);

    // dH = A^T x (dZ x W^T); A symmetric => same kernel.
    DenseMatrix dzw(dz.rows(), weight.rows());
    gemm(dz, false, weight, true, dzw);
    if (grad_in.rows() != dz.rows() ||
        grad_in.cols() != weight.rows())
        grad_in = DenseMatrix(dz.rows(), weight.rows());
    kernel.compute(dzw, grad_in);
}

void
GcnLayer::step(float lr)
{
    for (int64_t i = 0; i < weight.rows(); ++i)
        for (int64_t j = 0; j < weight.cols(); ++j)
            weight.at(i, j) -= lr * gradWeight.at(i, j);
    for (size_t j = 0; j < bias.size(); ++j)
        bias[j] -= lr * gradBias[j];
    gradWeight.setZero();
    std::fill(gradBias.begin(), gradBias.end(), 0.0f);
}

} // namespace dtc
