#include "gnn/gcn.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "gnn/dense_ops.h"

namespace dtc {

GcnLayer::GcnLayer(int64_t in_features, int64_t out_features, bool relu,
                   Rng& rng)
    : applyRelu(relu), weight(in_features, out_features),
      bias(static_cast<size_t>(out_features), 0.0f),
      gradWeight(in_features, out_features),
      gradBias(static_cast<size_t>(out_features), 0.0f)
{
    // Glorot-uniform initialization.
    const float limit = std::sqrt(
        6.0f / static_cast<float>(in_features + out_features));
    weight.fillRandom(rng, -limit, limit);
}

void
GcnLayer::forward(const SpmmKernel& kernel, const DenseMatrix& h,
                  DenseMatrix& out)
{
    DTC_CHECK(h.cols() == weight.rows());
    const int64_t nodes = h.rows();

    if (aggregated.rows() != nodes || aggregated.cols() != h.cols())
        aggregated = DenseMatrix(nodes, h.cols());
    kernel.compute(h, aggregated);

    if (out.rows() != nodes || out.cols() != weight.cols())
        out = DenseMatrix(nodes, weight.cols());
    gemm(aggregated, false, weight, false, out);
    addBias(out, bias);
    if (applyRelu)
        reluForward(out);
    activated = out;
}

void
GcnLayer::backward(const SpmmKernel& kernel, const DenseMatrix& grad_out,
                   DenseMatrix& grad_in)
{
    DTC_CHECK(grad_out.rows() == aggregated.rows());
    DTC_CHECK(grad_out.cols() == weight.cols());

    DenseMatrix dz = grad_out;
    if (applyRelu)
        reluBackward(activated, dz);

    // dW = (A x H)^T x dZ ; db = column sums of dZ.
    gemm(aggregated, true, dz, false, gradWeight);
    std::fill(gradBias.begin(), gradBias.end(), 0.0f);
    for (int64_t i = 0; i < dz.rows(); ++i)
        for (int64_t j = 0; j < dz.cols(); ++j)
            gradBias[j] += dz.at(i, j);

    // dH = A^T x (dZ x W^T); A symmetric => same kernel.
    DenseMatrix dzw(dz.rows(), weight.rows());
    gemm(dz, false, weight, true, dzw);
    if (grad_in.rows() != dz.rows() ||
        grad_in.cols() != weight.rows())
        grad_in = DenseMatrix(dz.rows(), weight.rows());
    kernel.compute(dzw, grad_in);
}

void
GcnLayer::step(float lr)
{
    for (int64_t i = 0; i < weight.rows(); ++i)
        for (int64_t j = 0; j < weight.cols(); ++j)
            weight.at(i, j) -= lr * gradWeight.at(i, j);
    for (size_t j = 0; j < bias.size(); ++j)
        bias[j] -= lr * gradBias[j];
    gradWeight.setZero();
    std::fill(gradBias.begin(), gradBias.end(), 0.0f);
}

void
GcnLayer::stepAdam(float lr, const AdamParams& p, int64_t t)
{
    DTC_CHECK_MSG(t >= 1, "Adam timestep must be >= 1, got " << t);
    if (adamM.rows() != weight.rows() ||
        adamM.cols() != weight.cols()) {
        adamM = DenseMatrix(weight.rows(), weight.cols());
        adamV = DenseMatrix(weight.rows(), weight.cols());
        adamM.setZero();
        adamV.setZero();
        adamMBias.assign(bias.size(), 0.0f);
        adamVBias.assign(bias.size(), 0.0f);
    }
    const float corr1 =
        1.0f - std::pow(p.beta1, static_cast<float>(t));
    const float corr2 =
        1.0f - std::pow(p.beta2, static_cast<float>(t));
    for (int64_t i = 0; i < weight.rows(); ++i)
        for (int64_t j = 0; j < weight.cols(); ++j) {
            const float g = gradWeight.at(i, j);
            float& m = adamM.at(i, j);
            float& v = adamV.at(i, j);
            m = p.beta1 * m + (1.0f - p.beta1) * g;
            v = p.beta2 * v + (1.0f - p.beta2) * g * g;
            weight.at(i, j) -=
                lr * (m / corr1) /
                (std::sqrt(v / corr2) + p.eps);
        }
    for (size_t j = 0; j < bias.size(); ++j) {
        const float g = gradBias[j];
        adamMBias[j] = p.beta1 * adamMBias[j] + (1.0f - p.beta1) * g;
        adamVBias[j] =
            p.beta2 * adamVBias[j] + (1.0f - p.beta2) * g * g;
        bias[j] -= lr * (adamMBias[j] / corr1) /
                   (std::sqrt(adamVBias[j] / corr2) + p.eps);
    }
    gradWeight.setZero();
    std::fill(gradBias.begin(), gradBias.end(), 0.0f);
}

GcnLayerState
GcnLayer::saveState() const
{
    GcnLayerState s;
    s.weight = weight;
    s.bias = bias;
    s.adamM = adamM;
    s.adamV = adamV;
    s.adamMBias = adamMBias;
    s.adamVBias = adamVBias;
    return s;
}

void
GcnLayer::loadState(const GcnLayerState& s)
{
    DTC_CHECK_CODE(s.weight.rows() == weight.rows() &&
                       s.weight.cols() == weight.cols(),
                   ErrorCode::InvalidInput,
                   "checkpoint weight shape "
                       << s.weight.rows() << "x" << s.weight.cols()
                       << " does not match layer "
                       << weight.rows() << "x" << weight.cols());
    DTC_CHECK_CODE(s.bias.size() == bias.size(),
                   ErrorCode::InvalidInput,
                   "checkpoint bias size " << s.bias.size()
                                           << " does not match layer "
                                           << bias.size());
    DTC_CHECK_CODE(
        s.adamM.size() == 0 ||
            (s.adamM.rows() == weight.rows() &&
             s.adamM.cols() == weight.cols() &&
             s.adamV.rows() == weight.rows() &&
             s.adamV.cols() == weight.cols() &&
             s.adamMBias.size() == bias.size() &&
             s.adamVBias.size() == bias.size()),
        ErrorCode::InvalidInput,
        "checkpoint Adam state shape does not match layer");
    weight = s.weight;
    bias = s.bias;
    adamM = s.adamM;
    adamV = s.adamV;
    adamMBias = s.adamMBias;
    adamVBias = s.adamVBias;
    gradWeight.setZero();
    std::fill(gradBias.begin(), gradBias.end(), 0.0f);
}

} // namespace dtc
