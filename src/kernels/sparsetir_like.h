/**
 * @file
 * SparseTIR-style composable-format SpMM baseline (Ye et al.,
 * ASPLOS'23; CUDA cores).
 *
 * SparseTIR's key idea for SpMM is format composition: rows are
 * bucketed by length into ELL buckets whose row length is padded to
 * the bucket's power-of-two width, and a tuned dense-regular kernel
 * runs per bucket.  Uniform work inside a bucket gives near-perfect
 * balance; the cost is the padding FLOPs and a kernel launch per
 * bucket.
 */
#ifndef DTC_KERNELS_SPARSETIR_LIKE_H
#define DTC_KERNELS_SPARSETIR_LIKE_H

#include <vector>

#include "kernels/kernel.h"

namespace dtc {

/** The SparseTIR baseline. */
class SparseTirKernel : public SpmmKernel
{
  public:
    /** Rows of one bucket handled per thread block. */
    static constexpr int64_t kRowsPerTb = 32;

    /**
     * Rows longer than this are split into segments before
     * bucketing (SparseTIR's composition handles hub rows with a
     * separate split format rather than padding to their length).
     */
    static constexpr int64_t kMaxSegment = 512;

    /** One padded-ELL work item: a row segment. */
    struct Segment
    {
        int32_t row;
        int64_t kLo; ///< First nonzero (CSR position).
        int64_t kHi; ///< One past the last nonzero.
    };

    std::string name() const override { return "SparseTIR"; }
    Refusal prepare(const CsrMatrix& a) override;
    bool prepared() const override { return ready; }
    void compute(const DenseMatrix& b, DenseMatrix& c) const override;
    LaunchResult cost(int64_t n, const CostModel& cm) const override;

    /** Segments grouped by power-of-two padded length (for tests). */
    const std::vector<std::vector<Segment>>& buckets() const
    {
        return segBuckets;
    }

  private:
    CsrMatrix mat;
    /** segBuckets[i] = segments with padded length 2^i. */
    std::vector<std::vector<Segment>> segBuckets;
    bool ready = false;
};

} // namespace dtc

#endif // DTC_KERNELS_SPARSETIR_LIKE_H
