#include "kernels/reference.h"

#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/tf32.h"
#include "engine/engine.h"
#include "engine/spmm_csr.h"

namespace dtc {

namespace {

/** Rows per parallelFor chunk: each chunk owns disjoint C rows. */
constexpr int64_t kRowGrain = 64;

} // namespace

void
referenceSpmm(const CsrMatrix& a, const DenseMatrix& b, DenseMatrix& c)
{
    DTC_CHECK(a.cols() == b.rows());
    DTC_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
    if (engine::enabled()) {
        engine::spmmCsrDoubleAcc(a.rows(), a.rowPtr().data(),
                                 a.colIdx().data(), a.values().data(),
                                 b, c, kRowGrain);
        return;
    }
    const int64_t n = b.cols();
    parallelFor(0, a.rows(), kRowGrain,
                [&](int64_t r_lo, int64_t r_hi) {
        std::vector<double> acc(static_cast<size_t>(n));
        for (int64_t r = r_lo; r < r_hi; ++r) {
            std::fill(acc.begin(), acc.end(), 0.0);
            for (int64_t k = a.rowPtr()[r]; k < a.rowPtr()[r + 1];
                 ++k) {
                const double v = a.values()[k];
                const float* brow = b.row(a.colIdx()[k]);
                for (int64_t j = 0; j < n; ++j)
                    acc[j] += v * static_cast<double>(brow[j]);
            }
            float* crow = c.row(r);
            for (int64_t j = 0; j < n; ++j)
                crow[j] = static_cast<float>(acc[j]);
        }
    });
}

void
referenceSpmmRounded(const CsrMatrix& a, const DenseMatrix& b,
                     DenseMatrix& c, Precision p)
{
    DTC_CHECK(a.cols() == b.rows());
    DTC_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
    if (engine::enabled()) {
        engine::spmmCsrRounded(a.rows(), a.rowPtr().data(),
                               a.colIdx().data(), a.values().data(),
                               p, b, c, kRowGrain);
        return;
    }
    const int64_t n = b.cols();
    c.setZero();
    const bool round_a = p != Precision::Fp32;
    parallelFor(0, a.rows(), kRowGrain,
                [&](int64_t r_lo, int64_t r_hi) {
        for (int64_t r = r_lo; r < r_hi; ++r) {
            float* crow = c.row(r);
            for (int64_t k = a.rowPtr()[r]; k < a.rowPtr()[r + 1];
                 ++k) {
                const float v =
                    round_a ? roundToPrecision(a.values()[k], p)
                            : a.values()[k];
                const float* brow = b.row(a.colIdx()[k]);
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += v * (round_a
                                        ? roundToPrecision(brow[j], p)
                                        : brow[j]);
            }
        }
    });
}

void
referenceSpmmTf32(const CsrMatrix& a, const DenseMatrix& b,
                  DenseMatrix& c)
{
    DTC_CHECK(a.cols() == b.rows());
    DTC_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
    if (engine::enabled()) {
        engine::spmmCsrRounded(a.rows(), a.rowPtr().data(),
                               a.colIdx().data(), a.values().data(),
                               Precision::Tf32, b, c, kRowGrain);
        return;
    }
    const int64_t n = b.cols();
    c.setZero();
    parallelFor(0, a.rows(), kRowGrain,
                [&](int64_t r_lo, int64_t r_hi) {
        for (int64_t r = r_lo; r < r_hi; ++r) {
            float* crow = c.row(r);
            for (int64_t k = a.rowPtr()[r]; k < a.rowPtr()[r + 1];
                 ++k) {
                const float v = tf32Round(a.values()[k]);
                const float* brow = b.row(a.colIdx()[k]);
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += v * tf32Round(brow[j]);
            }
        }
    });
}

double
spmmRowErrorBound(Precision p, int64_t row_len, double row_abs_sum,
                  double max_abs_b, double safety)
{
    // 2^-24 rounded up — the FP32 accumulation epsilon.
    constexpr double kEps32 = 5.97e-8;
    const double u = unitRoundoff(p);
    return safety *
           (2.0 * u + static_cast<double>(row_len + 8) * kEps32) *
           row_abs_sum * max_abs_b;
}

} // namespace dtc
