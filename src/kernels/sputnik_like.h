/**
 * @file
 * Sputnik-style SpMM baseline (Gale et al., SC'20; CUDA cores).
 *
 * Sputnik's 1-Dimensional Tiling splits the nonzeros of each row into
 * fixed-size 1-D tiles processed by independent warps, uses reverse
 * offset memory alignment to enable vector loads on unaligned rows,
 * and row-swizzles (sorts rows by length) so concurrently scheduled
 * tiles have similar cost — markedly better load balance and load
 * efficiency than plain row-split, which is why it is the strongest
 * CUDA-core baseline in the paper (DTC geomean 1.46x over it).
 *
 * Sputnik computes indices in int32; matrices whose index space
 * overflows int32 segfault in the real library and are refused here.
 */
#ifndef DTC_KERNELS_SPUTNIK_LIKE_H
#define DTC_KERNELS_SPUTNIK_LIKE_H

#include <vector>

#include "kernels/kernel.h"

namespace dtc {

/** The Sputnik baseline. */
class SputnikKernel : public SpmmKernel
{
  public:
    /** Nonzeros per 1-D tile (one warp's strip). */
    static constexpr int64_t kTileNnz = 32;

    /** 1-D tiles per thread block. */
    static constexpr int64_t kTilesPerTb = 4;

    std::string name() const override { return "Sputnik"; }
    Refusal prepare(const CsrMatrix& a) override;
    bool prepared() const override { return ready; }
    void compute(const DenseMatrix& b, DenseMatrix& c) const override;
    LaunchResult cost(int64_t n, const CostModel& cm) const override;

  private:
    CsrMatrix mat;
    /** Rows sorted by descending length (row swizzle). */
    std::vector<int32_t> swizzle;
    bool ready = false;
};

} // namespace dtc

#endif // DTC_KERNELS_SPUTNIK_LIKE_H
