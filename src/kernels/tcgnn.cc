#include "kernels/tcgnn.h"

#include <algorithm>

#include "common/check.h"
#include "common/parallel.h"
#include "common/tf32.h"
#include "engine/engine.h"
#include "engine/spmm_csr.h"
#include "kernels/b_traffic.h"

namespace dtc {

Refusal
TcgnnKernel::prepare(const CsrMatrix& a)
{
    if (a.rows() != a.cols()) {
        return Refusal::refuse(
            ErrorCode::Unsupported,
            "TCGNN-SpMM cannot handle non-square matrices");
    }
    if (Refusal r = refuseIfOverConversionBudget(a, "TCF"); !r.ok())
        return r;
    format = TcfMatrix::build(a);
    sgt = sgtCondense(a);
    ready = true;
    return Refusal::accept();
}

void
TcgnnKernel::compute(const DenseMatrix& b, DenseMatrix& c) const
{
    DTC_CHECK(ready);
    DTC_CHECK(format.cols() == b.rows());
    DTC_CHECK(c.rows() == format.rows() && c.cols() == b.cols());
    if (engine::enabled()) {
        // TCF's nodePointer/edgeList walk is CSR-shaped: route it
        // through the engine's panel-tiled TF32 driver.
        engine::spmmCsrRounded(format.rows(),
                               format.nodePointer().data(),
                               format.edgeList().data(),
                               format.values().data(),
                               Precision::Tf32, b, c, 256);
        return;
    }
    const int64_t n = b.cols();
    c.setZero();
    // Walk the TCF arrays exactly as the kernel's FetchSparse does:
    // nonzeros in CSR order, located via nodePointer/edgeList.  Within
    // a row this accumulates in ascending-column order — the same
    // order the WMMA tiles accumulate — with TF32 operand rounding.
    // Row-parallel: nonzeros are grouped by row (edgeToRow ascending),
    // so chunking on row boundaries keeps C writes disjoint.
    const auto& node_ptr = format.nodePointer();
    const auto& cols = format.edgeList();
    const auto& vals = format.values();
    parallelFor(0, format.rows(), 256,
                [&](int64_t r_lo, int64_t r_hi) {
        for (int64_t r = r_lo; r < r_hi; ++r) {
            float* crow = c.row(r);
            for (int64_t k = node_ptr[r]; k < node_ptr[r + 1]; ++k) {
                const float v = tf32Round(vals[k]);
                const float* brow = b.row(cols[k]);
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += v * tf32Round(brow[j]);
            }
        }
    });
}

LaunchResult
TcgnnKernel::cost(int64_t n, const CostModel& cm) const
{
    DTC_CHECK(ready);
    const ArchSpec& arch = cm.arch();
    BTrafficMeter meter(arch, n);
    const double nd = static_cast<double>(n);

    const int64_t windows = sgt.numWindows;
    const auto& node_ptr = format.nodePointer();

    std::vector<TbWork> tbs(static_cast<size_t>(windows));
    for (int64_t w = 0; w < windows; ++w) {
        TbWork& tb = tbs[static_cast<size_t>(w)];
        const int64_t row_lo = w * sgt.shape.windowHeight;
        const int64_t row_hi =
            std::min(row_lo + sgt.shape.windowHeight, format.rows());
        const double e = static_cast<double>(node_ptr[row_hi] -
                                             node_ptr[row_lo]);
        const double k_w = static_cast<double>(sgt.blocksPerWindow[w]);
        if (k_w == 0.0) {
            tb.fixedCycles = 400.0;
            continue;
        }

        // B traffic: each TC block fetches the 8 B rows behind its
        // compressed columns.
        const int32_t* wcols = sgt.windowColsBegin(w);
        const int64_t distinct = sgt.windowColCount(w);
        for (int64_t j = 0; j < distinct; ++j)
            meter.accessRow(wcols[j], static_cast<size_t>(w));

        // WMMA compute: per block, N/16 m16n16k8 ops = N/4 units of
        // mma.m16n8k4.
        tb.hmma = k_w * nd / 4.0;

        // FetchSparse: the whole window edge list is re-scanned once
        // per TC block (quadratic), ~kScanOpsPerEdge thread-ops and 2
        // loads per scanned edge.
        tb.imad = k_w * kScanOpsPerEdge * e / 32.0;
        tb.ldg = k_w * 2.0 * e / 32.0;
        // Rebuilding the 16x8 sparse tile in shared memory.
        tb.sts = k_w * (16.0 * 8.0) / 32.0;

        // ScatterFetchDense: 8*N scalar LDG.32 per block with heavy
        // per-element coordinate math, staged via shared memory and
        // re-loaded by wmma::load_matrix_sync.
        tb.imad += k_w * kDenseFetchOpsPerElement * 8.0 * nd / 32.0;
        tb.ldg += k_w * 8.0 * nd / 32.0;
        tb.sts += k_w * 8.0 * nd / 32.0;
        tb.lds += k_w * (8.0 * nd / 32.0 + 16.0 * 8.0 / 32.0);

        // Three barrier-separated stages per block iteration.
        tb.syncs = 3.0 * k_w;
        // Each block iteration exposes the scattered-fetch round
        // trip behind its barriers (no prefetching).
        tb.stallCycles = k_w * arch.dramLatencyCycles / 2.0;

        // A-array traffic: first scan streams the 3 index arrays +
        // values from DRAM; the k_w-1 re-scans hit in L2.
        tb.bytesDram += e * 16.0;
        tb.bytesL2Hit += std::max(0.0, k_w - 1.0) * e * 8.0;
        // C writeback.
        tb.bytesDram +=
            static_cast<double>(row_hi - row_lo) * nd * 4.0;

        // Fully synchronous WMMA pipeline: stages serialize and
        // memory latency is exposed between them.
        tb.execSerialFrac = 1.0;
        tb.memSerialFrac = 0.75;
        tb.memEfficiency = 0.65;
        tb.fixedCycles = 800.0;
    }

    meter.apportion(tbs);
    const double flops = 2.0 * static_cast<double>(format.nnz()) * nd;
    return cm.launch(name(), tbs, flops, meter.hitRate());
}

} // namespace dtc
