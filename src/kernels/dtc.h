/**
 * @file
 * DTC-SpMM — the paper's runtime kernel (Section 4.4/4.5).
 *
 * One implementation drives the whole Fig. 14 ablation through
 * feature flags, all defaulting to the full DTC-SpMM configuration:
 *
 *   - smb (Shared-Memory Bypassing): B tiles go straight from global
 *     memory to the register file via PTX mma + LDG, skipping the
 *     STS/LDS round trip the WMMA path requires;
 *   - ip  (Index-Precomputing): per-nonzero register slots come
 *     directly from ME-TCF's tcLocalId, eliminating runtime
 *     coordinate IMADs;
 *   - sdb (Sparse Double Buffering): the next sparse A tile is
 *     prefetched into a second shared-memory buffer with cp.async,
 *     overlapping FetchSparse with TC compute;
 *   - vfd (Vectorized Fetch Dense): LDG.128 strided-access B loads
 *     with register remapping deferred to the C writeback.
 *
 * Load distribution is either Base (one thread block per row window),
 * Balanced (strict-balance: 32 TC blocks per thread block regardless
 * of window, with atomic combination), or Auto (the simulation-based
 * Selector decides per input and architecture).
 */
#ifndef DTC_KERNELS_DTC_H
#define DTC_KERNELS_DTC_H

#include "common/aligned.h"
#include "common/precision.h"
#include "formats/me_tcf.h"
#include "kernels/kernel.h"
#include "selector/selector.h"

namespace dtc {

/** Feature flags and load-distribution mode of the DTC kernel. */
struct DtcOptions
{
    bool smb = true; ///< Shared-memory bypassing.
    bool ip = true;  ///< Index precomputing.
    bool sdb = true; ///< Sparse double buffering.
    bool vfd = true; ///< Vectorized dense fetch.

    /**
     * Thread arrangement of the VFetchDense stage (paper Fig. 8b):
     * strided-access (default) lets threads load the column-major
     * B-fragment layout directly; sequential-access coalesces
     * neighbouring threads on one row but then needs a warp
     * transpose (__shfl_sync) per fragment, whose measured 10.7-cycle
     * latency the paper rejects as significant online overhead.
     */
    bool sequentialAccess = false;

    /**
     * Tensor-core operand precision (the paper targets TF32; BF16
     * and FP16 are the "other precisions" extension its conclusion
     * names — FP16/BF16 MMA runs at twice the TF32 rate).
     * Precision::Fp32 is rejected: this is a tensor-core kernel.
     */
    Precision precision = Precision::Tf32;

    enum class Mode { Base, Balanced, Auto };
    Mode mode = Mode::Auto;

    /** "Base" configuration of Fig. 14 (ME-TCF only, no opts). */
    static DtcOptions
    baseline()
    {
        DtcOptions o;
        o.smb = o.ip = o.sdb = o.vfd = false;
        o.mode = Mode::Base;
        return o;
    }
};

/** The DTC-SpMM kernel. */
class DtcKernel : public SpmmKernel
{
  public:
    /** TC blocks per thread block under strict balance. */
    static constexpr int64_t kBlocksPerBalancedTb = 32;

    explicit DtcKernel(DtcOptions options = {});

    std::string name() const override { return cachedName; }
    Refusal prepare(const CsrMatrix& a) override;
    bool prepared() const override { return ready; }
    void compute(const DenseMatrix& b, DenseMatrix& c) const override;
    LaunchResult cost(int64_t n, const CostModel& cm) const override;

    /** The ME-TCF representation (for analysis benches). */
    const MeTcfMatrix& meTcf() const { return format; }

    const DtcOptions& options() const { return opts; }

    /** Selector decision this kernel would make on @p arch. */
    SelectorDecision decide(const ArchSpec& arch) const;

    /**
     * The engine's Index-Precomputing analog, built once in
     * prepare(): every (localId, sparseAtoB) pair expanded into flat
     * (C row, B row, pre-rounded value) lanes in ME-TCF nonzero
     * order, plus pre-expanded dense 16x8 tiles for fully-occupied
     * TC blocks (the expandBlock micro-kernel path).
     */
    struct FlatLanes
    {
        AlignedVector<int32_t> row;  ///< C row per nonzero.
        AlignedVector<int32_t> col;  ///< B row per nonzero.
        AlignedVector<float> val;    ///< Value in operand precision.
        /** Per TC block: index into denseTiles, or -1 (sparse path). */
        AlignedVector<int64_t> denseTileOf;
        /** Rounded windowHeight x blockWidth tiles, tile-major. */
        AlignedVector<float> denseTiles;
    };

    const FlatLanes& flatLanes() const { return lanes; }

  private:
    LaunchResult costBase(int64_t n, const CostModel& cm) const;
    LaunchResult costBalanced(int64_t n, const CostModel& cm) const;

    /** Builds FlatLanes from the freshly converted ME-TCF format. */
    void buildLanes();

    /** Per-block event tally shared by both load distributions. */
    void blockWork(int64_t block, int64_t n, TbWork& tb,
                   size_t tb_index, class BTrafficMeter& meter) const;

    /** Applies the options' pipeline-overlap profile to @p tb. */
    void applyPipelineProfile(TbWork& tb) const;

    DtcOptions opts;
    std::string cachedName;
    MeTcfMatrix format;
    FlatLanes lanes;
    bool ready = false;
};

} // namespace dtc

#endif // DTC_KERNELS_DTC_H
