#include "kernels/sparta_like.h"

#include <algorithm>

#include "common/check.h"
#include "common/tf32.h"
#include "kernels/b_traffic.h"

namespace dtc {

Refusal
SpartaKernel::prepare(const CsrMatrix& a)
{
    const int64_t dim_limit =
        ResourceBudget::current().maxStructuredDim;
    if (a.rows() > dim_limit || a.cols() > dim_limit) {
        return Refusal::refuse(
            ErrorCode::Unsupported,
            "Not Supported: dimensions exceed the cuSPARSELt limit");
    }

    mat = a;
    nnz24 = 0;
    occupiedGroups = 0;
    // Per row, per aligned 4-column group, up to 2 nonzeros fit the
    // 2:4 pattern; the rest spill into the unstructured remainder.
    for (int64_t r = 0; r < a.rows(); ++r) {
        int64_t k = a.rowPtr()[r];
        const int64_t end = a.rowPtr()[r + 1];
        while (k < end) {
            const int32_t group = a.colIdx()[k] / 4;
            int64_t in_group = 0;
            while (k < end && a.colIdx()[k] / 4 == group) {
                in_group++;
                k++;
            }
            occupiedGroups++;
            nnz24 += std::min<int64_t>(2, in_group);
        }
    }
    ready = true;
    return Refusal::accept();
}

void
SpartaKernel::compute(const DenseMatrix& b, DenseMatrix& c) const
{
    DTC_CHECK(ready);
    DTC_CHECK(mat.cols() == b.rows());
    DTC_CHECK(c.rows() == mat.rows() && c.cols() == b.cols());
    // Both components accumulate per row in ascending-column order;
    // the structured part runs on (sparse) tensor cores, so TF32
    // rounding applies there, and the CUDA-core remainder is FP32.
    // For functional purposes we apply the structured numerics to the
    // first 2 nonzeros of each group, FP32 to the spill.
    const int64_t n = b.cols();
    c.setZero();
    for (int64_t r = 0; r < mat.rows(); ++r) {
        float* crow = c.row(r);
        int64_t k = mat.rowPtr()[r];
        const int64_t end = mat.rowPtr()[r + 1];
        while (k < end) {
            const int32_t group = mat.colIdx()[k] / 4;
            int64_t pos = 0;
            while (k < end && mat.colIdx()[k] / 4 == group) {
                const bool structured = pos < 2;
                const float v = structured
                                    ? tf32Round(mat.values()[k])
                                    : mat.values()[k];
                const float* brow = b.row(mat.colIdx()[k]);
                for (int64_t j = 0; j < n; ++j) {
                    crow[j] += v * (structured ? tf32Round(brow[j])
                                               : brow[j]);
                }
                pos++;
                k++;
            }
        }
    }
}

LaunchResult
SpartaKernel::cost(int64_t n, const CostModel& cm) const
{
    DTC_CHECK(ready);
    const ArchSpec& arch = cm.arch();
    BTrafficMeter meter(arch, n);
    const double nd = static_cast<double>(n);

    // Structured pass: sparse tensor cores over the occupied 4-column
    // groups (2:4 MMA does 2 real MACs per 4-wide group at the dense
    // rate of 2) + CUDA-core remainder, row-chunk thread blocks.
    constexpr int64_t rows_per_tb = 64;
    const int64_t num_tbs =
        (mat.rows() + rows_per_tb - 1) / rows_per_tb;
    std::vector<TbWork> tbs(static_cast<size_t>(num_tbs));
    for (int64_t tb_i = 0; tb_i < num_tbs; ++tb_i) {
        const int64_t row_lo = tb_i * rows_per_tb;
        const int64_t row_hi =
            std::min(row_lo + rows_per_tb, mat.rows());
        TbWork& w = tbs[static_cast<size_t>(tb_i)];

        double groups = 0.0, spill = 0.0, e = 0.0;
        for (int64_t r = row_lo; r < row_hi; ++r) {
            int64_t k = mat.rowPtr()[r];
            const int64_t end = mat.rowPtr()[r + 1];
            while (k < end) {
                const int32_t group = mat.colIdx()[k] / 4;
                int64_t in_group = 0;
                while (k < end && mat.colIdx()[k] / 4 == group) {
                    // Spill nonzeros fetch B rows individually on
                    // CUDA cores; the 2:4 component reads B tiled
                    // like a GEMM (charged below).
                    if (in_group >= 2) {
                        meter.accessRow(mat.colIdx()[k],
                                        static_cast<size_t>(tb_i));
                    }
                    in_group++;
                    k++;
                    e += 1.0;
                }
                groups += 1.0;
                spill += static_cast<double>(
                    std::max<int64_t>(0, in_group - 2));
            }
        }
        // cuSPARSELt's structured pass streams B GEMM-style: every
        // 128-row M-tile reads the full K x N slab once via shared
        // memory, so B traffic is K*N*4 per two row chunks.
        w.bytesL2Hit += static_cast<double>(mat.cols()) * nd * 4.0 *
                        static_cast<double>(row_hi - row_lo) / 128.0;
        // Sparse-TC MACs: each occupied group costs a 4-wide slab at
        // the 2x sparse rate => 2 dense-equivalent MACs * N.
        w.hmma = groups * 2.0 * nd / ArchSpec::kMacsPerHmma;
        // Remainder on CUDA cores.
        w.fma = spill * nd / 32.0;
        w.ldg = e * (nd / 128.0) + 2.0 * e / 128.0;
        w.imad = e * (nd / 128.0) + 2.0 * e / 32.0;
        w.syncs = 2.0;
        w.bytesDram += e * 10.0 +
                       static_cast<double>(row_hi - row_lo) * nd * 4.0;
        w.execSerialFrac = 0.5;
        w.memSerialFrac = 0.15;
        w.memEfficiency = 0.70;
        w.fixedCycles = 700.0;
    }

    meter.apportion(tbs);

    // cuSPARSELt tiles the dense dimension as cuSPARSE does; split
    // each row-chunk block into N/32-column slabs.
    const int64_t col_tbs = std::clamp<int64_t>(n / 32, 1, 8);
    if (col_tbs > 1) {
        std::vector<TbWork> split;
        split.reserve(tbs.size() * static_cast<size_t>(col_tbs));
        const double inv = 1.0 / static_cast<double>(col_tbs);
        for (const TbWork& w : tbs) {
            TbWork part = w;
            part.hmma *= inv;
            part.fma *= inv;
            part.imad *= inv;
            part.ldg *= inv;
            part.sts *= inv;
            part.lds *= inv;
            part.atom *= inv;
            part.bytesL2Hit *= inv;
            part.bytesDram *= inv;
            part.stallCycles *= inv;
            for (int64_t c = 0; c < col_tbs; ++c)
                split.push_back(part);
        }
        tbs = std::move(split);
    }

    const double flops = 2.0 * static_cast<double>(mat.nnz()) * nd;
    return cm.launch(name(), tbs, flops, meter.hitRate());
}

} // namespace dtc
