#include "kernels/flash_llm_like.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/tf32.h"
#include "kernels/b_traffic.h"

namespace dtc {

Refusal
FlashLlmKernel::prepare(const CsrMatrix& a)
{
    // Conversion stages the matrix uncompressed (dense) first; the
    // staging budget (host RAM) bounds it.
    const double dense_bytes = static_cast<double>(a.rows()) *
                               static_cast<double>(a.cols()) * 4.0;
    if (dense_bytes > static_cast<double>(
                          ResourceBudget::current().stagingBytes)) {
        std::ostringstream os;
        os << "OOM: dense staging needs "
           << static_cast<int64_t>(dense_bytes / (1024 * 1024))
           << " MiB";
        return Refusal::refuse(ErrorCode::ResourceExhausted, os.str());
    }
    // The Tiled-CSL format itself must fit device memory.
    if (Refusal r = refuseIfOverConversionBudget(a, "Tiled-CSL");
        !r.ok())
        return r;

    mat = a;
    const int64_t tile_rows = (a.rows() + kTile - 1) / kTile;
    tiles.assign(static_cast<size_t>(tile_rows), {});
    std::vector<int32_t> scratch;
    for (int64_t tr = 0; tr < tile_rows; ++tr) {
        const int64_t row_lo = tr * kTile;
        const int64_t row_hi = std::min(row_lo + kTile, a.rows());
        scratch.clear();
        for (int64_t r = row_lo; r < row_hi; ++r) {
            for (int64_t k = a.rowPtr()[r]; k < a.rowPtr()[r + 1]; ++k)
                scratch.push_back(
                    static_cast<int32_t>(a.colIdx()[k] / kTile));
        }
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()),
                      scratch.end());
        tiles[static_cast<size_t>(tr)] = scratch;
    }
    ready = true;
    return Refusal::accept();
}

void
FlashLlmKernel::compute(const DenseMatrix& b, DenseMatrix& c) const
{
    DTC_CHECK(ready);
    DTC_CHECK(mat.cols() == b.rows());
    DTC_CHECK(c.rows() == mat.rows() && c.cols() == b.cols());
    // Load-as-Sparse-Compute-as-Dense: the dense MMA multiplies the
    // expanded tile, so the arithmetic per nonzero is ordinary TF32
    // ascending-column accumulation (zeros contribute nothing).
    const int64_t n = b.cols();
    c.setZero();
    for (int64_t r = 0; r < mat.rows(); ++r) {
        float* crow = c.row(r);
        for (int64_t k = mat.rowPtr()[r]; k < mat.rowPtr()[r + 1]; ++k) {
            const float v = tf32Round(mat.values()[k]);
            const float* brow = b.row(mat.colIdx()[k]);
            for (int64_t j = 0; j < n; ++j)
                crow[j] += v * tf32Round(brow[j]);
        }
    }
}

LaunchResult
FlashLlmKernel::cost(int64_t n, const CostModel& cm) const
{
    DTC_CHECK(ready);
    const ArchSpec& arch = cm.arch();
    BTrafficMeter meter(arch, n);
    const double nd = static_cast<double>(n);
    const double tile = static_cast<double>(kTile);

    // One thread block per tile row; every nonempty tile costs a full
    // dense 64x64xN MMA despite holding a handful of nonzeros.
    std::vector<TbWork> tbs(tiles.size());
    for (size_t tr = 0; tr < tiles.size(); ++tr) {
        TbWork& tb = tbs[tr];
        const double nt = static_cast<double>(tiles[tr].size());
        for (int32_t tc : tiles[tr]) {
            for (int64_t j = 0; j < kTile; ++j) {
                const int64_t col =
                    static_cast<int64_t>(tc) * kTile + j;
                if (col < mat.cols())
                    meter.accessRow(static_cast<int32_t>(col), tr);
            }
        }
        tb.hmma = nt * tile * tile * nd / ArchSpec::kMacsPerHmma;
        // Sparse loading is the point: A traffic is compressed.
        const double e = nt > 0.0
                             ? static_cast<double>(
                                   mat.rowPtr()[std::min<int64_t>(
                                       (tr + 1) * kTile, mat.rows())] -
                                   mat.rowPtr()[tr * kTile])
                             : 0.0;
        tb.bytesDram += e * 6.0; // compressed tile payloads
        tb.ldg = e / 64.0 + nt * tile * nd / 128.0;
        // Extracting the sparse encoding into dense fragments.
        tb.imad = e * 4.0 / 32.0 + nt * tile * nd / 128.0;
        tb.sts = nt * tile * tile / 32.0;
        tb.lds = tb.sts;
        tb.syncs = 2.0 * nt;
        tb.bytesDram += tile * nd * 4.0; // C writeback
        // Double-buffered GEMM-style pipeline.
        tb.execSerialFrac = ver >= 2 ? 0.25 : 0.35;
        tb.memSerialFrac = ver >= 2 ? 0.20 : 0.30;
        tb.memEfficiency = ver >= 2 ? 0.92 : 0.85;
        tb.fixedCycles = ver >= 2 ? 1400.0 : 800.0;
    }

    meter.apportion(tbs);
    const double flops = 2.0 * static_cast<double>(mat.nnz()) * nd;
    return cm.launch(name(), tbs, flops, meter.hitRate());
}

} // namespace dtc
