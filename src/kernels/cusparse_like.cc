#include "kernels/cusparse_like.h"

#include <algorithm>

#include "common/check.h"
#include "common/parallel.h"
#include "engine/engine.h"
#include "engine/spmm_csr.h"
#include "kernels/b_traffic.h"

namespace dtc {

Refusal
CuSparseKernel::prepare(const CsrMatrix& a)
{
    // cuSPARSE consumes CSR directly — no conversion allocation, so
    // no budget gate: this is the guaranteed-supported terminal
    // fallback of the tuner's candidate chain (an input whose own CSR
    // arrays don't fit memory could never have been built).
    mat = a;
    ready = true;
    return Refusal::accept();
}

void
CuSparseKernel::compute(const DenseMatrix& b, DenseMatrix& c) const
{
    DTC_CHECK(ready);
    DTC_CHECK(mat.cols() == b.rows());
    DTC_CHECK(c.rows() == mat.rows() && c.cols() == b.cols());
    if (engine::enabled()) {
        engine::spmmCsrRounded(mat.rows(), mat.rowPtr().data(),
                               mat.colIdx().data(),
                               mat.values().data(), Precision::Fp32,
                               b, c, 64);
        return;
    }
    const int64_t n = b.cols();
    c.setZero();
    // Row-parallel: each chunk writes a disjoint slice of C.
    parallelFor(0, mat.rows(), 64, [&](int64_t r_lo, int64_t r_hi) {
        for (int64_t r = r_lo; r < r_hi; ++r) {
            float* crow = c.row(r);
            for (int64_t k = mat.rowPtr()[r]; k < mat.rowPtr()[r + 1];
                 ++k) {
                const float v = mat.values()[k];
                const float* brow = b.row(mat.colIdx()[k]);
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += v * brow[j];
            }
        }
    });
}

LaunchResult
CuSparseKernel::cost(int64_t n, const CostModel& cm) const
{
    DTC_CHECK(ready);
    const ArchSpec& arch = cm.arch();
    BTrafficMeter meter(arch, n);

    const int64_t num_tbs =
        (mat.rows() + kRowsPerTb - 1) / kRowsPerTb;
    std::vector<TbWork> tbs(static_cast<size_t>(num_tbs));
    const double nd = static_cast<double>(n);

    for (int64_t tb = 0; tb < num_tbs; ++tb) {
        const int64_t row_lo = tb * kRowsPerTb;
        const int64_t row_hi =
            std::min(row_lo + kRowsPerTb, mat.rows());
        TbWork& w = tbs[static_cast<size_t>(tb)];

        double e = 0.0;
        for (int64_t r = row_lo; r < row_hi; ++r) {
            for (int64_t k = mat.rowPtr()[r]; k < mat.rowPtr()[r + 1];
                 ++k) {
                meter.accessRow(mat.colIdx()[k],
                                static_cast<size_t>(tb));
                e += 1.0;
            }
        }
        const double rows = static_cast<double>(row_hi - row_lo);

        // One warp-level LDG.128 covers 128 B elements, so a nonzero's
        // N-wide row fetch takes n/128 warp instructions.
        w.ldg = e * (nd / 128.0) + 2.0 * e / 32.0 + rows / 32.0;
        // Address arithmetic: ~2 IMAD per B load instruction, ~3 per
        // nonzero for pointer/column decoding, plus per-row loop
        // setup for each column chunk — the overhead that dominates
        // on AvgRowL~2 matrices.
        w.imad = 2.0 * e * (nd / 128.0) + 3.0 * e / 32.0 +
                 4.0 * rows * (nd / 128.0);
        // The MACs: n thread-FMAs per nonzero.
        w.fma = e * nd / 32.0;
        w.syncs = 1.0;

        // Streamed A arrays (colIdx + values) and C writeback.
        w.bytesDram += e * 8.0 + rows * nd * 4.0;

        // Dependent index->B loads expose DRAM latency; short rows
        // give each warp little memory-level parallelism to hide it.
        const double avg_len = e / std::max(1.0, rows);
        const double mlp =
            std::clamp(avg_len * 8.0, 8.0, 32.0);
        w.stallCycles = e * arch.dramLatencyCycles / mlp;

        w.execSerialFrac = 1.0;
        w.memSerialFrac = 0.35;
        w.memEfficiency = 0.50;
        w.fixedCycles = 600.0;
    }

    meter.apportion(tbs);

    // cuSPARSE also tiles the dense dimension: each row chunk is
    // covered by N/32 thread blocks, each owning a 32-column slab.
    // Subdividing after metering splits every cost evenly.
    const int64_t col_tbs = std::clamp<int64_t>(n / 32, 1, 8);
    if (col_tbs > 1) {
        std::vector<TbWork> split;
        split.reserve(tbs.size() * static_cast<size_t>(col_tbs));
        const double inv = 1.0 / static_cast<double>(col_tbs);
        for (const TbWork& w : tbs) {
            TbWork part = w;
            part.hmma *= inv;
            part.fma *= inv;
            part.imad *= inv;
            part.ldg *= inv;
            part.sts *= inv;
            part.lds *= inv;
            part.atom *= inv;
            part.bytesL2Hit *= inv;
            part.bytesDram *= inv;
            part.stallCycles *= inv;
            for (int64_t c = 0; c < col_tbs; ++c)
                split.push_back(part);
        }
        tbs = std::move(split);
    }

    const double flops = 2.0 * static_cast<double>(mat.nnz()) * nd;
    return cm.launch(name(), tbs, flops, meter.hitRate());
}

} // namespace dtc
