/**
 * @file
 * SparTA baseline (Zheng et al., OSDI'22) — Tensor-with-Sparsity-
 * Attribute decomposition (paper Section 5.2, Table 4).
 *
 * SparTA splits the sparse matrix into a 2:4-structured component
 * (at most 2 nonzeros per aligned group of 4 columns) executed on
 * sparse tensor cores via cuSPARSELt, plus an unstructured remainder
 * executed on CUDA cores.  The cuSPARSELt path constrains matrix
 * dimensions; the paper reports "Not Supported" beyond 50,000
 * rows/columns.  With this repository's ~10x-scaled datasets the
 * limit scales to 5,000 (DESIGN.md), preserving Table 4's behaviour:
 * ddi (M=4267) runs, protein/reddit analogs do not.
 */
#ifndef DTC_KERNELS_SPARTA_LIKE_H
#define DTC_KERNELS_SPARTA_LIKE_H

#include "kernels/kernel.h"

namespace dtc {

/** The SparTA baseline. */
class SpartaKernel : public SpmmKernel
{
  public:
    /**
     * Default dimension limit of the cuSPARSELt path (scaled; see
     * above).  prepare() consults ResourceBudget::current()
     * .maxStructuredDim, whose default equals this constant.
     */
    static constexpr int64_t kDimLimit = 5000;

    std::string name() const override { return "SparTA"; }
    Refusal prepare(const CsrMatrix& a) override;
    bool prepared() const override { return ready; }
    void compute(const DenseMatrix& b, DenseMatrix& c) const override;
    LaunchResult cost(int64_t n, const CostModel& cm) const override;

    /** Nonzeros captured by the 2:4-structured component. */
    int64_t structuredNnz() const { return nnz24; }

    /** Nonzeros left in the unstructured remainder. */
    int64_t remainderNnz() const { return mat.nnz() - nnz24; }

  private:
    CsrMatrix mat;
    int64_t nnz24 = 0;
    /** Aligned 4-column groups holding at least one nonzero. */
    int64_t occupiedGroups = 0;
    bool ready = false;
};

} // namespace dtc

#endif // DTC_KERNELS_SPARTA_LIKE_H
