#include "kernels/kernel.h"

#include <sstream>

#include "common/check.h"
#include "kernels/block_spmm.h"
#include "kernels/cusparse_like.h"
#include "kernels/dtc.h"
#include "kernels/flash_llm_like.h"
#include "kernels/sparsetir_like.h"
#include "kernels/sparta_like.h"
#include "kernels/sputnik_like.h"
#include "kernels/tcgnn.h"
#include "kernels/vector_sparse.h"

namespace dtc {

const char*
kernelKindName(KernelKind kind)
{
    switch (kind) {
      case KernelKind::CuSparse:
        return "cuSPARSE-SpMM";
      case KernelKind::Tcgnn:
        return "TCGNN-SpMM";
      case KernelKind::Dtc:
        return "DTC-SpMM";
      case KernelKind::DtcBase:
        return "DTC-SpMM-base";
      case KernelKind::DtcBalanced:
        return "DTC-SpMM-balanced";
      case KernelKind::Sputnik:
        return "Sputnik";
      case KernelKind::SparseTir:
        return "SparseTIR";
      case KernelKind::BlockSpmm32:
        return "Block-SpMM(b=32)";
      case KernelKind::BlockSpmm64:
        return "Block-SpMM(b=64)";
      case KernelKind::VectorSparse4:
        return "VectorSparse(v=4)";
      case KernelKind::VectorSparse8:
        return "VectorSparse(v=8)";
      case KernelKind::FlashLlmV1:
        return "Flash-LLM(v1)";
      case KernelKind::FlashLlmV2:
        return "Flash-LLM(v2)";
      case KernelKind::SparTA:
        return "SparTA";
    }
    return "?";
}

int64_t
csrFootprintBytes(const CsrMatrix& a)
{
    return (a.rows() + 1) * 8 + a.nnz() * (4 + 4);
}

Refusal
refuseIfOverConversionBudget(const CsrMatrix& a,
                             const char* kernel_name)
{
    const int64_t bytes = csrFootprintBytes(a);
    const ResourceBudget& budget = ResourceBudget::current();
    if (!budget.allowsConversion(bytes)) {
        std::ostringstream os;
        os << "OOM: " << kernel_name << " format needs at least "
           << bytes / (1024 * 1024) << " MiB, conversion budget is "
           << budget.conversionBytes / (1024 * 1024) << " MiB";
        return Refusal::refuse(ErrorCode::ResourceExhausted, os.str());
    }
    return Refusal::accept();
}

const std::vector<KernelTraits>&
allKernelTraits()
{
    // One row per KernelKind, in enum order; NamesMatchRegistry and
    // the harness's coverage test keep this exhaustive.
    static const std::vector<KernelTraits> kTraits = {
        {KernelKind::CuSparse, Precision::Fp32, false, true},
        {KernelKind::Tcgnn, Precision::Tf32, false, true},
        {KernelKind::Dtc, Precision::Tf32, true, true},
        {KernelKind::DtcBase, Precision::Tf32, true, true},
        {KernelKind::DtcBalanced, Precision::Tf32, true, true},
        {KernelKind::Sputnik, Precision::Fp32, false, true},
        {KernelKind::SparseTir, Precision::Fp32, false, true},
        {KernelKind::BlockSpmm32, Precision::Tf32, false, true},
        {KernelKind::BlockSpmm64, Precision::Tf32, false, true},
        {KernelKind::VectorSparse4, Precision::Tf32, false, true},
        {KernelKind::VectorSparse8, Precision::Tf32, false, true},
        {KernelKind::FlashLlmV1, Precision::Tf32, false, true},
        {KernelKind::FlashLlmV2, Precision::Tf32, false, true},
        {KernelKind::SparTA, Precision::Tf32, false, false},
    };
    return kTraits;
}

const KernelTraits&
kernelTraits(KernelKind kind)
{
    for (const KernelTraits& t : allKernelTraits()) {
        if (t.kind == kind)
            return t;
    }
    DTC_ASSERT(false);
    return allKernelTraits().front();
}

std::vector<KernelKind>
allKernelKinds()
{
    std::vector<KernelKind> kinds;
    kinds.reserve(allKernelTraits().size());
    for (const KernelTraits& t : allKernelTraits())
        kinds.push_back(t.kind);
    return kinds;
}

std::vector<std::string>
allKernelNames()
{
    std::vector<std::string> names;
    names.reserve(allKernelTraits().size());
    for (const KernelTraits& t : allKernelTraits())
        names.emplace_back(kernelKindName(t.kind));
    return names;
}

bool
kernelSupportsPrecision(KernelKind kind, Precision p)
{
    const KernelTraits& t = kernelTraits(kind);
    if (t.precisionConfigurable) {
        // Any tensor-core precision, plus Fp32 which the kernel's own
        // prepare() refuses (the refusal is part of its behaviour).
        return true;
    }
    return p == t.nativePrecision;
}

std::unique_ptr<SpmmKernel>
makeKernelAt(KernelKind kind, Precision p)
{
    if (!kernelSupportsPrecision(kind, p))
        return nullptr;
    if (!kernelTraits(kind).precisionConfigurable)
        return makeKernel(kind);
    DtcOptions o;
    o.precision = p;
    switch (kind) {
      case KernelKind::Dtc:
        o.mode = DtcOptions::Mode::Auto;
        break;
      case KernelKind::DtcBase:
        o.mode = DtcOptions::Mode::Base;
        break;
      case KernelKind::DtcBalanced:
        o.mode = DtcOptions::Mode::Balanced;
        break;
      default:
        DTC_ASSERT(false);
    }
    return std::make_unique<DtcKernel>(o);
}

std::unique_ptr<SpmmKernel>
makeKernel(KernelKind kind)
{
    switch (kind) {
      case KernelKind::CuSparse:
        return std::make_unique<CuSparseKernel>();
      case KernelKind::Tcgnn:
        return std::make_unique<TcgnnKernel>();
      case KernelKind::Dtc:
        return std::make_unique<DtcKernel>();
      case KernelKind::DtcBase: {
        DtcOptions o;
        o.mode = DtcOptions::Mode::Base;
        return std::make_unique<DtcKernel>(o);
      }
      case KernelKind::DtcBalanced: {
        DtcOptions o;
        o.mode = DtcOptions::Mode::Balanced;
        return std::make_unique<DtcKernel>(o);
      }
      case KernelKind::Sputnik:
        return std::make_unique<SputnikKernel>();
      case KernelKind::SparseTir:
        return std::make_unique<SparseTirKernel>();
      case KernelKind::BlockSpmm32:
        return std::make_unique<BlockSpmmKernel>(32);
      case KernelKind::BlockSpmm64:
        return std::make_unique<BlockSpmmKernel>(64);
      case KernelKind::VectorSparse4:
        return std::make_unique<VectorSparseKernel>(4);
      case KernelKind::VectorSparse8:
        return std::make_unique<VectorSparseKernel>(8);
      case KernelKind::FlashLlmV1:
        return std::make_unique<FlashLlmKernel>(1);
      case KernelKind::FlashLlmV2:
        return std::make_unique<FlashLlmKernel>(2);
      case KernelKind::SparTA:
        return std::make_unique<SpartaKernel>();
    }
    DTC_ASSERT(false);
    return nullptr;
}

} // namespace dtc
