/**
 * @file
 * Reference SpMM implementations — the correctness oracles.
 *
 * referenceSpmm accumulates in double precision (the "ground truth"
 * all kernels are compared against); referenceSpmmRounded applies the
 * requested operand rounding (TF32/BF16/FP16, or none for FP32) with
 * FP32 accumulation in per-row ascending-column order — the exact
 * numerics of every kernel in the registry except SparTA — so kernels
 * can be checked for bit-level agreement rather than tolerance.
 * referenceSpmmTf32 is the paper-precision shorthand.
 */
#ifndef DTC_KERNELS_REFERENCE_H
#define DTC_KERNELS_REFERENCE_H

#include "common/precision.h"
#include "matrix/csr.h"
#include "matrix/dense.h"

namespace dtc {

/** C = A * B with double accumulation, rounded to float at the end. */
void referenceSpmm(const CsrMatrix& a, const DenseMatrix& b,
                   DenseMatrix& c);

/**
 * C = A * B with both operands rounded to precision @p p and FP32
 * accumulation in per-row ascending-column order.
 */
void referenceSpmmRounded(const CsrMatrix& a, const DenseMatrix& b,
                          DenseMatrix& c, Precision p);

/** C = A * B with TF32 operand rounding and FP32 accumulation. */
void referenceSpmmTf32(const CsrMatrix& a, const DenseMatrix& b,
                       DenseMatrix& c);

/**
 * Analytic per-row error bound for one SpMM output row vs the
 * double-accumulation reference:
 *
 *     safety * (2u(p) + (len + 8) * eps32) * rowAbsSum * maxAbsB
 *
 * where u(p) is the operand-rounding unit roundoff, len the row's
 * nonzero count, rowAbsSum = sum_k |a_rk| and maxAbsB the largest
 * |b| element.  Shared by the conformance oracle (testing/oracle.cc)
 * and the runtime's online result guard (runtime/guard.cc) so both
 * judge with identical semantics.
 */
double spmmRowErrorBound(Precision p, int64_t row_len,
                         double row_abs_sum, double max_abs_b,
                         double safety);

} // namespace dtc

#endif // DTC_KERNELS_REFERENCE_H
