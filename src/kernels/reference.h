/**
 * @file
 * Reference SpMM implementations — the correctness oracles.
 *
 * referenceSpmm accumulates in double precision (the "ground truth"
 * all kernels are compared against); referenceSpmmTf32 applies TF32
 * operand rounding with FP32 accumulation, the exact numerics of a
 * tensor-core kernel, so TC kernels can be checked for bit-level
 * agreement rather than tolerance.
 */
#ifndef DTC_KERNELS_REFERENCE_H
#define DTC_KERNELS_REFERENCE_H

#include "matrix/csr.h"
#include "matrix/dense.h"

namespace dtc {

/** C = A * B with double accumulation, rounded to float at the end. */
void referenceSpmm(const CsrMatrix& a, const DenseMatrix& b,
                   DenseMatrix& c);

/** C = A * B with TF32 operand rounding and FP32 accumulation. */
void referenceSpmmTf32(const CsrMatrix& a, const DenseMatrix& b,
                       DenseMatrix& c);

} // namespace dtc

#endif // DTC_KERNELS_REFERENCE_H
