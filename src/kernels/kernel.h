/**
 * @file
 * Common interface of every SpMM kernel in the library.
 *
 * A kernel is a pair of behaviours over one prepared sparse matrix:
 *   - compute(): the functional result C = A * B, bit-faithful to the
 *     kernel's numerics (TF32 rounding for tensor-core kernels, FP32
 *     for CUDA-core kernels);
 *   - cost(): a simulated launch on a CostModel, tallying the same
 *     events the real kernel's instruction stream would produce
 *     (HMMA/IMAD/LDG counts, L2/DRAM traffic, pipeline overlap).
 *
 * prepare() performs the format conversion a real library would do
 * once per matrix; it can refuse the input the way the corresponding
 * baseline does (Block-SpMM OOM, SparTA dimension limit, Flash-LLM
 * dense-staging OOM), returning a structured Refusal whose ErrorCode
 * tells callers *why* (ResourceExhausted vs Unsupported) — the
 * machine-readable form of Table 4's refusal cells.  Byte and
 * dimension limits come from ResourceBudget::current(), not
 * hard-coded constants.
 */
#ifndef DTC_KERNELS_KERNEL_H
#define DTC_KERNELS_KERNEL_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/error.h"
#include "common/precision.h"
#include "gpusim/cost_model.h"
#include "matrix/csr.h"
#include "matrix/dense.h"

namespace dtc {

/** Abstract SpMM kernel (see file comment). */
class SpmmKernel
{
  public:
    virtual ~SpmmKernel() = default;

    /** Kernel display name, matching the paper's naming. */
    virtual std::string name() const = 0;

    /**
     * Converts @p a into the kernel's storage format.
     * @return Refusal::accept() on success, else the refusal code +
     *         reason (e.g. ResourceExhausted "OOM", Unsupported
     *         "Not Supported").
     */
    virtual Refusal prepare(const CsrMatrix& a) = 0;

    /** True once prepare() succeeded. */
    virtual bool prepared() const = 0;

    /** Functional SpMM: @p c = A * @p b.  @pre prepared(). */
    virtual void compute(const DenseMatrix& b, DenseMatrix& c) const = 0;

    /**
     * Simulates one launch with dense width @p n on @p cm.
     * @pre prepared().
     */
    virtual LaunchResult cost(int64_t n, const CostModel& cm) const = 0;
};

/** Identifiers for the factory in registry.h. */
enum class KernelKind
{
    CuSparse,      ///< cuSPARSE CSR SpMM (CUDA cores).
    Tcgnn,         ///< TCGNN-SpMM (TCF + WMMA).
    Dtc,           ///< DTC-SpMM with Selector-chosen balancing.
    DtcBase,       ///< DTC-SpMM, row-window thread blocks.
    DtcBalanced,   ///< DTC-SpMM, strict-balance thread blocks.
    Sputnik,       ///< Sputnik 1-D tiling (CUDA cores).
    SparseTir,     ///< SparseTIR composable hybrid (CUDA cores).
    BlockSpmm32,   ///< cuSPARSE Block-SpMM, BELL block size 32.
    BlockSpmm64,   ///< cuSPARSE Block-SpMM, BELL block size 64.
    VectorSparse4, ///< VectorSparse, CVSE vector length 4.
    VectorSparse8, ///< VectorSparse, CVSE vector length 8.
    FlashLlmV1,    ///< Flash-LLM v1 (Load-as-Sparse-Compute-as-Dense).
    FlashLlmV2,    ///< Flash-LLM v2 (deeper pipeline variant).
    SparTA,        ///< SparTA 2:4 + unstructured hybrid.
};

/** Display name of a kernel kind. */
const char* kernelKindName(KernelKind kind);

/**
 * Static properties of one registered kernel, exposed so tools (the
 * differential oracle, the tuner, future CLIs) can enumerate and
 * instantiate every kernel without hard-coding the list.
 */
struct KernelTraits
{
    KernelKind kind;

    /** Operand precision of the kernel's fixed numerics. */
    Precision nativePrecision;

    /**
     * True for the DTC family: the kernel can be instantiated at any
     * tensor-core precision (Tf32/Bf16/Fp16), not just its native one.
     */
    bool precisionConfigurable;

    /**
     * True when compute() is bit-identical to referenceSpmmRounded at
     * the precision it runs at (same per-row ascending-column FP32
     * accumulation).  False only for SparTA, whose structured /
     * remainder split mixes TF32 and FP32 numerics.
     */
    bool bitExactRounded;
};

/** Every registered kernel, in registry order. */
const std::vector<KernelTraits>& allKernelTraits();

/** Traits of one kind. */
const KernelTraits& kernelTraits(KernelKind kind);

/** Every registered KernelKind, in registry order. */
std::vector<KernelKind> allKernelKinds();

/** Display names of every registered kernel, in registry order. */
std::vector<std::string> allKernelNames();

/** True when @p kind can be instantiated at operand precision @p p. */
bool kernelSupportsPrecision(KernelKind kind, Precision p);

/** Device bytes of @p a's CSR arrays (rowPtr + colIdx + values). */
int64_t csrFootprintBytes(const CsrMatrix& a);

/**
 * Shared prepare() gate: a format at least as large as the input's
 * CSR arrays must fit the conversion budget.  Returns the
 * ResourceExhausted refusal when it cannot, Refusal::accept()
 * otherwise.  @p kernel_name labels the reason.
 */
Refusal refuseIfOverConversionBudget(const CsrMatrix& a,
                                     const char* kernel_name);

/** Creates a kernel instance. */
std::unique_ptr<SpmmKernel> makeKernel(KernelKind kind);

/**
 * Creates a kernel instance configured for operand precision @p p, or
 * nullptr when kernelSupportsPrecision(kind, p) is false (the combo is
 * not expressible — distinct from a Refusal, which is the kernel
 * itself declining a concrete input).  For the DTC family this sets
 * DtcOptions::precision; Precision::Fp32 returns a DTC kernel whose
 * prepare() refuses, mirroring real tensor-core constraints.
 */
std::unique_ptr<SpmmKernel> makeKernelAt(KernelKind kind, Precision p);

} // namespace dtc

#endif // DTC_KERNELS_KERNEL_H
