#include "kernels/block_spmm.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/tf32.h"
#include "kernels/b_traffic.h"

namespace dtc {

Refusal
BlockSpmmKernel::prepare(const CsrMatrix& a)
{
    // The conversion budget bounds the padded BELL footprint (paper:
    // BELL padding "can lead to OOM issues on large-scale matrices").
    // Structure only: the padded value array is materialized lazily
    // by compute(), so cost-model sweeps never allocate it.
    BellBuildResult res = bellTryBuild(
        a, blockSize, ResourceBudget::current().conversionBytes,
        /*materialize_values=*/false);
    if (res.oom) {
        std::ostringstream os;
        os << "OOM: BELL needs "
           << res.projectedBytes / (1024 * 1024) << " MiB padded";
        return Refusal::refuse(ErrorCode::ResourceExhausted, os.str());
    }
    mat = std::move(res.matrix);
    src = a;
    ready = true;
    return Refusal::accept();
}

void
BlockSpmmKernel::compute(const DenseMatrix& b, DenseMatrix& c) const
{
    DTC_CHECK(ready);
    DTC_CHECK(mat.cols() == b.rows());
    DTC_CHECK(c.rows() == mat.rows() && c.cols() == b.cols());
    // Materialize the padded values now (functional paths only run
    // on matrices small enough for the full array).
    BellBuildResult full = bellTryBuild(
        src, blockSize, ResourceBudget::current().conversionBytes);
    DTC_ASSERT(!full.oom);
    const BellMatrix& m = full.matrix;

    const int64_t n = b.cols();
    const int64_t bs = m.blockSize();
    c.setZero();
    for (int64_t br = 0; br < m.numBlockRows(); ++br) {
        for (int64_t s = 0; s < m.ellCols(); ++s) {
            const int32_t bc = m.blockColIdx()[br * m.ellCols() + s];
            if (bc == BellMatrix::kPadBlock)
                continue;
            const float* blk =
                m.values().data() +
                (br * m.ellCols() + s) * bs * bs;
            for (int64_t i = 0; i < bs; ++i) {
                const int64_t row = br * bs + i;
                if (row >= m.rows())
                    break;
                float* crow = c.row(row);
                for (int64_t j = 0; j < bs; ++j) {
                    const float v = tf32Round(blk[i * bs + j]);
                    if (v == 0.0f)
                        continue;
                    const int64_t col = bc * bs + j;
                    if (col >= b.rows())
                        break;
                    const float* brow = b.row(col);
                    for (int64_t jj = 0; jj < n; ++jj)
                        crow[jj] += v * tf32Round(brow[jj]);
                }
            }
        }
    }
}

LaunchResult
BlockSpmmKernel::cost(int64_t n, const CostModel& cm) const
{
    DTC_CHECK(ready);
    const ArchSpec& arch = cm.arch();
    BTrafficMeter meter(arch, n);
    const double nd = static_cast<double>(n);
    const int64_t bs = mat.blockSize();

    // One thread block per block row; dense MMA over every stored
    // block including ELL padding.
    std::vector<TbWork> tbs(static_cast<size_t>(mat.numBlockRows()));
    for (int64_t br = 0; br < mat.numBlockRows(); ++br) {
        TbWork& tb = tbs[static_cast<size_t>(br)];
        double real_blocks = 0.0;
        for (int64_t s = 0; s < mat.ellCols(); ++s) {
            const int32_t bc =
                mat.blockColIdx()[br * mat.ellCols() + s];
            if (bc == BellMatrix::kPadBlock)
                continue;
            real_blocks += 1.0;
            for (int64_t j = 0; j < bs; ++j) {
                const int64_t col = bc * bs + j;
                if (col < mat.cols())
                    meter.accessRow(static_cast<int32_t>(col),
                                    static_cast<size_t>(br));
            }
        }
        // Dense flops per stored block: bs*bs*N MACs.
        const double macs = real_blocks *
                            static_cast<double>(bs) *
                            static_cast<double>(bs) * nd;
        tb.hmma = macs / ArchSpec::kMacsPerHmma;
        // A-block values stream from DRAM, padding included.
        tb.bytesDram += real_blocks * static_cast<double>(bs * bs) * 4.0;
        tb.ldg = real_blocks *
                     (static_cast<double>(bs * bs) / 128.0 +
                      static_cast<double>(bs) * nd / 128.0);
        tb.imad = tb.ldg; // regular tiled addressing, ~1 IMAD/load
        tb.sts = real_blocks * static_cast<double>(bs * bs) / 32.0;
        tb.lds = tb.sts;
        tb.syncs = 2.0 * real_blocks;
        tb.bytesDram += static_cast<double>(
                            std::min<int64_t>(bs, mat.rows() - br * bs)) *
                        nd * 4.0;
        // Vendor GEMM-grade pipelining.
        tb.execSerialFrac = 0.3;
        tb.memSerialFrac = 0.25;
        tb.memEfficiency = 0.90;
        tb.fixedCycles = 700.0;
    }

    meter.apportion(tbs);
    const double flops = 2.0 * static_cast<double>(mat.nnz()) * nd;
    return cm.launch(name(), tbs, flops, meter.hitRate());
}

} // namespace dtc
