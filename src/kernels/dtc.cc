#include "kernels/dtc.h"

#include <algorithm>
#include <sstream>

#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/tf32.h"
#include "engine/engine.h"
#include "engine/prepared_dense.h"
#include "engine/simd/simd.h"
#include "kernels/b_traffic.h"
#include "obs/metrics.h"

namespace dtc {

// name() used to rebuild this ostringstream on every cost()/launch()
// call; the options are fixed at construction, so format it once.
DtcKernel::DtcKernel(DtcOptions options) : opts(options)
{
    std::ostringstream os;
    os << "DTC-SpMM";
    if (opts.precision != Precision::Tf32)
        os << "<" << precisionName(opts.precision) << ">";
    switch (opts.mode) {
      case DtcOptions::Mode::Base:
        os << "-base";
        break;
      case DtcOptions::Mode::Balanced:
        os << "-balanced";
        break;
      case DtcOptions::Mode::Auto:
        break;
    }
    if (!(opts.smb && opts.ip && opts.sdb && opts.vfd)) {
        os << "[";
        if (opts.smb)
            os << "+SMB";
        if (opts.ip)
            os << "+IP";
        if (opts.sdb)
            os << "+SDB";
        if (opts.vfd)
            os << "+VFD";
        if (!opts.smb && !opts.ip && !opts.sdb && !opts.vfd)
            os << "ME-TCF only";
        os << "]";
    }
    cachedName = os.str();
}

Refusal
DtcKernel::prepare(const CsrMatrix& a)
{
    DTC_TRACE_SCOPE("dtc.prepare");
    obs::ScopedTimerMs timer("dtc.prepare_ms");
    static obs::Counter& prepares =
        obs::metrics::counter("dtc.prepares");
    prepares.add(1);
    if (opts.precision == Precision::Fp32) {
        return Refusal::refuse(ErrorCode::Unsupported,
                               "FP32 is not a tensor-core precision");
    }
    if (Refusal r = refuseIfOverConversionBudget(a, "ME-TCF");
        !r.ok())
        return r;
    format = MeTcfMatrix::build(a);
    buildLanes();
    ready = true;
    return Refusal::accept();
}

void
DtcKernel::buildLanes()
{
    const int64_t wh = format.shape().windowHeight;
    const int64_t bw = format.shape().blockWidth;
    const int64_t tile_elems = wh * bw;
    const int64_t num_blocks = format.numTcBlocks();
    const auto& rwo = format.rowWindowOffset();
    const auto& tco = format.tcOffset();
    const auto& lid = format.tcLocalId();
    const auto& atob = format.sparseAtoB();
    const auto& vals = format.values();

    lanes.row.resize(static_cast<size_t>(format.nnz()));
    lanes.col.resize(static_cast<size_t>(format.nnz()));
    lanes.val.resize(static_cast<size_t>(format.nnz()));

    // A fully-occupied block has every (row, lane) slot populated, so
    // its expanded tile multiplies with no skip tests and — unlike a
    // partially-filled tile — cannot change numerics: a padded slot's
    // 0 * b[j] would be NaN for b rounded to infinity (FP16
    // saturation), so only 100%-occupancy blocks take the dense path.
    lanes.denseTileOf.assign(static_cast<size_t>(num_blocks), -1);
    int64_t num_dense = 0;
    for (int64_t blk = 0; blk < num_blocks; ++blk) {
        if (format.nnzInBlock(blk) == tile_elems)
            lanes.denseTileOf[blk] = num_dense++;
    }
    lanes.denseTiles.resize(static_cast<size_t>(num_dense) *
                            tile_elems);

    parallelFor(0, format.numWindows(), 16,
                [&](int64_t w_lo, int64_t w_hi) {
        for (int64_t w = w_lo; w < w_hi; ++w) {
            for (int64_t blk = rwo[w]; blk < rwo[w + 1]; ++blk) {
                const int32_t* cols = atob.data() + blk * bw;
                for (int64_t k = tco[blk]; k < tco[blk + 1]; ++k) {
                    const int64_t local = lid[k];
                    lanes.row[k] = static_cast<int32_t>(
                        w * wh + local / bw);
                    lanes.col[k] = cols[local % bw];
                    lanes.val[k] =
                        roundToPrecision(vals[k], opts.precision);
                }
                const int64_t t = lanes.denseTileOf[blk];
                if (t >= 0) {
                    // Full block: every tile slot is written.
                    float* tile =
                        lanes.denseTiles.data() + t * tile_elems;
                    for (int64_t k = tco[blk]; k < tco[blk + 1]; ++k)
                        tile[lid[k]] = lanes.val[k];
                }
            }
        }
    });
}

void
DtcKernel::compute(const DenseMatrix& b, DenseMatrix& c) const
{
    DTC_TRACE_SCOPE("dtc.compute");
    static obs::Counter& computes =
        obs::metrics::counter("dtc.computes");
    computes.add(1);
    DTC_CHECK(ready);
    DTC_CHECK(format.cols() == b.rows());
    DTC_CHECK(c.rows() == format.rows() && c.cols() == b.cols());
    const int64_t n = b.cols();
    const int64_t wh = format.shape().windowHeight;
    const int64_t bw = format.shape().blockWidth;
    const auto& rwo = format.rowWindowOffset();
    const auto& tco = format.tcOffset();
    const auto& lid = format.tcLocalId();
    const auto& atob = format.sparseAtoB();
    const auto& vals = format.values();

    c.setZero();
    // Traverse blocks left-to-right per window, nonzeros in ascending
    // local id: per output row this accumulates in ascending-column
    // order with TF32 operand rounding — identical numerics to the
    // mma.m16n8k4 pipeline and to referenceSpmmTf32.  Window-parallel
    // like the real grid: each window writes a disjoint row slab of C.
    if (engine::enabled()) {
        // Engine path: B pre-rounded once (PreparedDense), nonzero
        // coordinates and rounded values read from the flat lanes
        // built in prepare() (IP), N walked in cache-sized column
        // panels (VFD/SMB).  Per C element the accumulation order is
        // unchanged, so outputs match the scalar loop bitwise.
        const engine::PreparedDense pb(b, opts.precision);
        const int64_t tile_elems = wh * bw;
        // SIMD table and panel width resolved on the calling thread:
        // ScopedSimdMode / ScopedPanelCols are thread-local and would
        // not reach parallelFor workers.
        const engine::simd::Kernels& K = engine::simd::kernels();
        const int64_t pw = engine::panelCols(n);
        parallelFor(0, format.numWindows(), 16,
                    [&](int64_t w_lo, int64_t w_hi) {
            std::vector<const float*> brows(
                static_cast<size_t>(bw));
            for (int64_t j0 = 0; j0 < n; j0 += pw) {
                const int64_t pn = std::min(pw, n - j0);
                for (int64_t w = w_lo; w < w_hi; ++w) {
                    for (int64_t blk = rwo[w]; blk < rwo[w + 1];
                         ++blk) {
                        const int64_t t = lanes.denseTileOf[blk];
                        if (t >= 0) {
                            // Full block: the 16x8 tile inner
                            // product.  All lanes are real columns
                            // (100% occupancy), so each B row
                            // pointer is valid.
                            const float* tile =
                                lanes.denseTiles.data() +
                                t * tile_elems;
                            const int32_t* cols =
                                atob.data() + blk * bw;
                            for (int64_t l = 0; l < bw; ++l)
                                brows[l] = pb.row(cols[l]) + j0;
                            K.tileInner(c.row(w * wh) + j0,
                                        c.cols(), tile,
                                        brows.data(), wh, bw, pn);
                            continue;
                        }
                        // Residue lanes: broadcast-value axpy with a
                        // software prefetch of the next lane's B row
                        // (the non-condensed fetch path).
                        const int64_t k_end = tco[blk + 1];
                        for (int64_t k = tco[blk]; k < k_end; ++k) {
                            const float* next_b =
                                k + 1 < k_end
                                    ? pb.row(lanes.col[k + 1]) + j0
                                    : nullptr;
                            K.axpyPrefetch(
                                c.row(lanes.row[k]) + j0,
                                pb.row(lanes.col[k]) + j0,
                                lanes.val[k], pn, next_b);
                        }
                    }
                }
            }
        });
        return;
    }
    parallelFor(0, format.numWindows(), 16,
                [&](int64_t w_lo, int64_t w_hi) {
        for (int64_t w = w_lo; w < w_hi; ++w) {
            for (int64_t blk = rwo[w]; blk < rwo[w + 1]; ++blk) {
                for (int64_t k = tco[blk]; k < tco[blk + 1]; ++k) {
                    const int64_t local = lid[k];
                    const int64_t row = w * wh + local / bw;
                    const int32_t col = atob[blk * bw + local % bw];
                    const float v =
                        roundToPrecision(vals[k], opts.precision);
                    const float* brow = b.row(col);
                    float* crow = c.row(row);
                    for (int64_t j = 0; j < n; ++j)
                        crow[j] += v * roundToPrecision(
                                           brow[j], opts.precision);
                }
            }
        }
    });
}

void
DtcKernel::blockWork(int64_t block, int64_t n, TbWork& tb,
                     size_t tb_index, BTrafficMeter& meter) const
{
    const double kDramStallLatency = 600.0;
    const int64_t bw = format.shape().blockWidth;
    const double nd = static_cast<double>(n);
    const double e =
        static_cast<double>(format.nnzInBlock(block));

    // VFetchDense: the 8 B rows behind this block's lanes.
    const auto& atob = format.sparseAtoB();
    for (int64_t lane = 0; lane < bw; ++lane) {
        int32_t col = atob[block * bw + lane];
        if (col != MeTcfMatrix::kPadColumn)
            meter.accessRow(col, tb_index);
    }

    // Tensor-core compute: mma.m16n8k4 with k-depth 8 over N
    // outputs; FP16/BF16 MMA retires at twice the TF32 rate.
    tb.hmma += nd / 4.0 / tcRateMultiplier(opts.precision);

    // FetchSparse(Async): tcLocalId bytes + values + sparseAtoB move
    // as wide copies; one warp-level LDG.128 covers 512 bytes.
    const double sparse_bytes = 5.0 * e + 8.0 * 4.0 + 16.0;
    tb.ldg += sparse_bytes / 512.0;
    tb.imad += (opts.ip ? 1.5 : 5.0) * e / 32.0;
    // Expanding the A fragment from the shared-memory tile.
    tb.lds += 4.0;

    // VFetchDense instruction stream: 8*N elements.
    const double dense_loads = 8.0 * nd / (opts.vfd ? 128.0 : 32.0);
    tb.ldg += dense_loads;
    tb.imad += (opts.ip ? 2.0 : 6.0) * dense_loads +
               (opts.ip ? 0.0 : 2.0) * 8.0 * nd / 32.0;
    if (!opts.smb) {
        // Without bypassing, B tiles round-trip shared memory.
        tb.sts += 8.0 * nd / 32.0;
        tb.lds += 8.0 * nd / 32.0;
        tb.syncs += 1.0;
    }
    if (opts.sequentialAccess) {
        // Warp transpose to restore the column-major fragment
        // distribution: one shuffle round per fetched element group.
        tb.shfl += 8.0 * nd / 32.0;
    }
    tb.syncs += opts.sdb ? 0.5 : 1.0;
    // Eight wide row fetches per block keep plenty of loads in
    // flight; double buffering hides the sparse-tile latency too.
    tb.stallCycles += kDramStallLatency / (opts.sdb ? 24.0 : 8.0);

    // A-format traffic streams from DRAM exactly once (linear pass —
    // no TCGNN-style quadratic rescans).
    tb.bytesDram += sparse_bytes;
}

void
DtcKernel::applyPipelineProfile(TbWork& tb) const
{
    double esf = 1.0;
    double msf = 0.70;
    double eff = 0.70;
    if (opts.smb) {
        // No staging barriers between fetch and mma.
        esf -= 0.15;
        msf -= 0.08;
        eff += 0.08;
    }
    if (opts.sdb) {
        // FetchSparseAsync hides behind TCCompute.
        esf -= 0.20;
        msf -= 0.25;
        eff += 0.10;
    }
    if (opts.vfd) {
        // Wider transactions drain the LSU queue sooner and sustain
        // near-peak bandwidth.
        msf -= 0.05;
        eff += 0.08;
    }
    tb.execSerialFrac = std::clamp(esf, 0.3, 1.0);
    tb.memSerialFrac = std::clamp(msf, 0.25, 1.0);
    tb.memEfficiency = std::clamp(eff, 0.5, 0.96);
    tb.fixedCycles = 400.0;
}

LaunchResult
DtcKernel::costBase(int64_t n, const CostModel& cm) const
{
    const ArchSpec& arch = cm.arch();
    BTrafficMeter meter(arch, n);
    const double nd = static_cast<double>(n);
    const int64_t wh = format.shape().windowHeight;
    const auto& rwo = format.rowWindowOffset();

    std::vector<TbWork> tbs(static_cast<size_t>(format.numWindows()));
    for (int64_t w = 0; w < format.numWindows(); ++w) {
        TbWork& tb = tbs[static_cast<size_t>(w)];
        for (int64_t blk = rwo[w]; blk < rwo[w + 1]; ++blk)
            blockWork(blk, n, tb, static_cast<size_t>(w), meter);
        // Epilogue: StoreCRemapping writes the window's C rows once.
        const double rows = static_cast<double>(
            std::min<int64_t>(wh, format.rows() - w * wh));
        tb.bytesDram += rows * nd * 4.0;
        applyPipelineProfile(tb);
    }
    meter.apportion(tbs);

    const double flops = 2.0 * static_cast<double>(format.nnz()) * nd;
    return cm.launch(name(), tbs, flops, meter.hitRate());
}

LaunchResult
DtcKernel::costBalanced(int64_t n, const CostModel& cm) const
{
    const ArchSpec& arch = cm.arch();
    BTrafficMeter meter(arch, n);
    const double nd = static_cast<double>(n);
    const int64_t wh = format.shape().windowHeight;
    const int64_t num_blocks = format.numTcBlocks();
    const auto& rwo = format.rowWindowOffset();

    // Map block -> window once (blocks are window-sorted).
    std::vector<int32_t> block_window(
        static_cast<size_t>(num_blocks));
    for (int64_t w = 0; w < format.numWindows(); ++w)
        for (int64_t blk = rwo[w]; blk < rwo[w + 1]; ++blk)
            block_window[blk] = static_cast<int32_t>(w);

    std::vector<TbWork> tbs;
    std::vector<bool> window_written(
        static_cast<size_t>(format.numWindows()), false);
    for (int64_t lo = 0; lo < num_blocks; lo += kBlocksPerBalancedTb) {
        const int64_t hi =
            std::min(lo + kBlocksPerBalancedTb, num_blocks);
        TbWork tb;
        int32_t last_window = -1;
        for (int64_t blk = lo; blk < hi; ++blk) {
            blockWork(blk, n, tb, tbs.size(), meter);
            if (block_window[blk] != last_window) {
                last_window = block_window[blk];
                const double rows = static_cast<double>(
                    std::min<int64_t>(wh, format.rows() -
                                              last_window * wh));
                // Each window fragment combines its partial C rows
                // with atomics: an L2 read-modify-write per fragment
                // (C stays resident), ...
                tb.atom += rows * nd / 32.0;
                tb.bytesL2Hit += 2.0 * rows * nd * 4.0;
                // ... plus one dirty writeback to DRAM per window,
                // same as the base kernel's single store.
                if (!window_written[last_window]) {
                    window_written[last_window] = true;
                    tb.bytesDram += rows * nd * 4.0;
                }
            }
        }
        applyPipelineProfile(tb);
        tbs.push_back(tb);
    }
    meter.apportion(tbs);

    const double flops = 2.0 * static_cast<double>(format.nnz()) * nd;
    return cm.launch(name(), tbs, flops, meter.hitRate());
}

SelectorDecision
DtcKernel::decide(const ArchSpec& arch) const
{
    DTC_CHECK(ready);
    return selectKernel(format, arch);
}

LaunchResult
DtcKernel::cost(int64_t n, const CostModel& cm) const
{
    DTC_CHECK(ready);
    switch (opts.mode) {
      case DtcOptions::Mode::Base:
        return costBase(n, cm);
      case DtcOptions::Mode::Balanced:
        return costBalanced(n, cm);
      case DtcOptions::Mode::Auto: {
        SelectorDecision d = decide(cm.arch());
        return d.useBalanced ? costBalanced(n, cm) : costBase(n, cm);
      }
    }
    DTC_ASSERT(false);
    return {};
}

} // namespace dtc
