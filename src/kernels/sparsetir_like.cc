#include "kernels/sparsetir_like.h"

#include <algorithm>

#include "common/check.h"
#include "kernels/b_traffic.h"

namespace dtc {

Refusal
SparseTirKernel::prepare(const CsrMatrix& a)
{
    if (Refusal r = refuseIfOverConversionBudget(a, "SparseTIR");
        !r.ok())
        return r;
    mat = a;
    segBuckets.clear();
    for (int64_t r = 0; r < a.rows(); ++r) {
        int64_t k = a.rowPtr()[r];
        const int64_t end = a.rowPtr()[r + 1];
        while (k < end) {
            const int64_t len = std::min(end - k, kMaxSegment);
            size_t bucket = 0;
            int64_t width = 1;
            while (width < len) {
                width <<= 1;
                bucket++;
            }
            if (segBuckets.size() <= bucket)
                segBuckets.resize(bucket + 1);
            segBuckets[bucket].push_back(
                {static_cast<int32_t>(r), k, k + len});
            k += len;
        }
    }
    ready = true;
    return Refusal::accept();
}

void
SparseTirKernel::compute(const DenseMatrix& b, DenseMatrix& c) const
{
    DTC_CHECK(ready);
    DTC_CHECK(mat.cols() == b.rows());
    DTC_CHECK(c.rows() == mat.rows() && c.cols() == b.cols());
    const int64_t n = b.cols();
    c.setZero();
    // Padded ELL positions multiply by zero and segments of one row
    // accumulate into the same output row, so execution is
    // numerically identical to row-order CSR accumulation.
    for (int64_t r = 0; r < mat.rows(); ++r) {
        float* crow = c.row(r);
        for (int64_t k = mat.rowPtr()[r]; k < mat.rowPtr()[r + 1];
             ++k) {
            const float v = mat.values()[k];
            const float* brow = b.row(mat.colIdx()[k]);
            for (int64_t j = 0; j < n; ++j)
                crow[j] += v * brow[j];
        }
    }
}

LaunchResult
SparseTirKernel::cost(int64_t n, const CostModel& cm) const
{
    DTC_CHECK(ready);
    const ArchSpec& arch = cm.arch();
    BTrafficMeter meter(arch, n);
    const double nd = static_cast<double>(n);

    std::vector<TbWork> tbs;
    for (size_t bi = 0; bi < segBuckets.size(); ++bi) {
        const auto& bucket = segBuckets[bi];
        const double width = static_cast<double>(int64_t{1} << bi);
        // Bound the *work* per thread block: wide buckets take
        // fewer segments each so hub buckets don't serialize on one
        // SM.
        const size_t segs_per_tb = std::clamp<size_t>(
            static_cast<size_t>(512.0 / width), 2, 64);
        for (size_t pos = 0; pos < bucket.size();
             pos += segs_per_tb) {
            const size_t end =
                std::min(pos + segs_per_tb, bucket.size());
            TbWork w;
            const double segs = static_cast<double>(end - pos);
            // Padded entries are loaded and multiplied like real
            // ones (bucket kernels are dense-regular).
            const double padded = segs * width;
            double atomic_segments = 0.0;
            for (size_t i = pos; i < end; ++i) {
                const Segment& s = bucket[i];
                for (int64_t k = s.kLo; k < s.kHi; ++k)
                    meter.accessRow(mat.colIdx()[k], tbs.size());
                // Split rows combine partial results atomically.
                if (mat.rowLength(s.row) > kMaxSegment)
                    atomic_segments += 1.0;
            }
            w.ldg = padded * (nd / 128.0) + 2.0 * padded / 128.0;
            // Compiled/tuned addressing: ~1 IMAD per load.
            w.imad = padded * (nd / 128.0);
            w.fma = padded * nd / 32.0;
            w.atom = atomic_segments * nd / 32.0;
            w.syncs = 1.0;
            w.bytesDram += padded * 8.0 + segs * nd * 4.0;
            // Regular bucket kernels pipeline loads well.
            w.stallCycles = padded * arch.dramLatencyCycles / 80.0;
            w.execSerialFrac = 1.0;
            w.memSerialFrac = 0.22;
            w.memEfficiency = 0.66;
            // One launch per bucket adds prologue spread over TBs.
            w.fixedCycles = 500.0;
            tbs.push_back(w);
        }
    }

    meter.apportion(tbs);
    const double flops = 2.0 * static_cast<double>(mat.nnz()) * nd;
    return cm.launch(name(), tbs, flops, meter.hitRate());
}

} // namespace dtc
