#include "kernels/sputnik_like.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "engine/engine.h"
#include "engine/spmm_csr.h"
#include "kernels/b_traffic.h"

namespace dtc {

Refusal
SputnikKernel::prepare(const CsrMatrix& a)
{
    // int32 index-space limit of the real library (NNZ and row
    // offsets are computed in int32).
    if (a.nnz() > std::numeric_limits<int32_t>::max() ||
        a.rows() > std::numeric_limits<int32_t>::max()) {
        return Refusal::refuse(
            ErrorCode::Unsupported,
            "int32 index overflow (segfault in real Sputnik)");
    }
    if (Refusal r = refuseIfOverConversionBudget(a, "Sputnik");
        !r.ok())
        return r;
    mat = a;
    swizzle.resize(static_cast<size_t>(a.rows()));
    std::iota(swizzle.begin(), swizzle.end(), 0);
    std::stable_sort(swizzle.begin(), swizzle.end(),
                     [&](int32_t x, int32_t y) {
                         return mat.rowLength(x) > mat.rowLength(y);
                     });
    ready = true;
    return Refusal::accept();
}

void
SputnikKernel::compute(const DenseMatrix& b, DenseMatrix& c) const
{
    DTC_CHECK(ready);
    DTC_CHECK(mat.cols() == b.rows());
    DTC_CHECK(c.rows() == mat.rows() && c.cols() == b.cols());
    if (engine::enabled()) {
        // The swizzle only changes scheduling: every row writes a
        // disjoint C slab, so natural row order (and row-parallel
        // chunks) is bitwise-identical to the swizzled serial walk.
        engine::spmmCsrRounded(mat.rows(), mat.rowPtr().data(),
                               mat.colIdx().data(),
                               mat.values().data(), Precision::Fp32,
                               b, c, 64);
        return;
    }
    const int64_t n = b.cols();
    c.setZero();
    // Swizzle changes scheduling, not math: results match row order.
    for (int32_t r : swizzle) {
        float* crow = c.row(r);
        for (int64_t k = mat.rowPtr()[r]; k < mat.rowPtr()[r + 1]; ++k) {
            const float v = mat.values()[k];
            const float* brow = b.row(mat.colIdx()[k]);
            for (int64_t j = 0; j < n; ++j)
                crow[j] += v * brow[j];
        }
    }
}

LaunchResult
SputnikKernel::cost(int64_t n, const CostModel& cm) const
{
    DTC_CHECK(ready);
    const ArchSpec& arch = cm.arch();
    BTrafficMeter meter(arch, n);
    const double nd = static_cast<double>(n);

    // Thread blocks own kTilesPerTb 1-D tiles; tiles are cut from the
    // swizzled row order so concurrent blocks see similar lengths.
    std::vector<TbWork> tbs;
    TbWork cur;
    int64_t tiles_in_cur = 0;
    auto flush = [&]() {
        if (tiles_in_cur > 0) {
            cur.syncs = 1.0;
            cur.execSerialFrac = 1.0;
            cur.memSerialFrac = 0.20;
            cur.memEfficiency = 0.58;
            cur.fixedCycles = 500.0;
            tbs.push_back(cur);
            cur = TbWork();
            tiles_in_cur = 0;
        }
    };

    for (int32_t r : swizzle) {
        const int64_t len = mat.rowLength(r);
        const int64_t row_tiles =
            std::max<int64_t>(1, (len + kTileNnz - 1) / kTileNnz);
        for (int64_t t = 0; t < row_tiles; ++t) {
            const int64_t k_lo = mat.rowPtr()[r] + t * kTileNnz;
            const int64_t k_hi =
                std::min(k_lo + kTileNnz, mat.rowPtr()[r + 1]);
            const double e = static_cast<double>(k_hi - k_lo);
            for (int64_t k = k_lo; k < k_hi; ++k)
                meter.accessRow(mat.colIdx()[k], tbs.size());

            // Vector loads throughout (reverse offset alignment):
            // B rows via LDG.128, A indices/values via LDG.128 pairs.
            cur.ldg += e * (nd / 128.0) + 2.0 * e / 128.0;
            // Leaner index math than cuSPARSE: precomputed tile
            // descriptors leave ~1 IMAD per load plus 1 per nonzero.
            cur.imad += e * (nd / 128.0) + e / 32.0;
            cur.fma += e * nd / 32.0;
            // Partial-row tiles combine results with atomics.
            if (row_tiles > 1)
                cur.atom += nd / 32.0 / static_cast<double>(row_tiles);
            cur.bytesDram += e * 8.0 + nd * 4.0 /
                                 static_cast<double>(row_tiles);
            // Aligned vector loads give each warp far more loads in
            // flight than plain row-split.
            cur.stallCycles += e * arch.dramLatencyCycles / 96.0;
            if (++tiles_in_cur == kTilesPerTb)
                flush();
        }
    }
    flush();

    meter.apportion(tbs);
    const double flops = 2.0 * static_cast<double>(mat.nnz()) * nd;
    return cm.launch(name(), tbs, flops, meter.hitRate());
}

} // namespace dtc
