/**
 * @file
 * Block-SpMM baseline — cuSPARSE's Blocked-ELL tensor-core SpMM
 * (paper Section 5.2, Fig. 12).
 *
 * The matrix is converted to BELL (formats/bell.h); every stored
 * block is computed densely on tensor cores, padding included.  On
 * the unstructured GNN/SC matrices of this paper the fill efficiency
 * collapses, so Block-SpMM either wastes almost all its FLOPs or runs
 * out of memory converting (both reproduced).
 */
#ifndef DTC_KERNELS_BLOCK_SPMM_H
#define DTC_KERNELS_BLOCK_SPMM_H

#include "formats/bell.h"
#include "kernels/kernel.h"

namespace dtc {

/** The Block-SpMM (Blocked-ELL) baseline. */
class BlockSpmmKernel : public SpmmKernel
{
  public:
    explicit BlockSpmmKernel(int64_t block_size)
        : blockSize(block_size),
          cachedName("Block-SpMM(b=" + std::to_string(block_size) +
                     ")")
    {}

    std::string name() const override { return cachedName; }
    Refusal prepare(const CsrMatrix& a) override;
    bool prepared() const override { return ready; }
    void compute(const DenseMatrix& b, DenseMatrix& c) const override;
    LaunchResult cost(int64_t n, const CostModel& cm) const override;

    /** The BELL representation (for padding analysis). */
    const BellMatrix& bell() const { return mat; }

  private:
    int64_t blockSize;
    std::string cachedName;
    /** Structure-only BELL (values materialized only by compute()). */
    BellMatrix mat;
    /** Source matrix kept for on-demand value materialization. */
    CsrMatrix src;
    bool ready = false;
};

} // namespace dtc

#endif // DTC_KERNELS_BLOCK_SPMM_H
