/**
 * @file
 * cuSPARSE-style CSR SpMM baseline (CUDA cores).
 *
 * Models cusparseSpMM with CUSPARSE_SPMM_ALG_DEFAULT over
 * CUSPARSE_FORMAT_CSR, the paper's primary baseline: thread blocks
 * cover fixed-size row chunks, warps iterate nonzeros, each nonzero
 * fetches one B-row segment with vectorized loads, accumulation in
 * FP32 registers.  Load distribution follows rows, so heavily skewed
 * row lengths produce the imbalance Observation 4 describes.
 */
#ifndef DTC_KERNELS_CUSPARSE_LIKE_H
#define DTC_KERNELS_CUSPARSE_LIKE_H

#include "kernels/kernel.h"

namespace dtc {

/** The cuSPARSE-SpMM baseline. */
class CuSparseKernel : public SpmmKernel
{
  public:
    /** Rows covered by one thread block. */
    static constexpr int64_t kRowsPerTb = 64;

    std::string name() const override { return "cuSPARSE-SpMM"; }
    Refusal prepare(const CsrMatrix& a) override;
    bool prepared() const override { return ready; }
    void compute(const DenseMatrix& b, DenseMatrix& c) const override;
    LaunchResult cost(int64_t n, const CostModel& cm) const override;

  private:
    CsrMatrix mat;
    bool ready = false;
};

} // namespace dtc

#endif // DTC_KERNELS_CUSPARSE_LIKE_H
