/**
 * @file
 * Flash-LLM baseline (Xia et al., 2023) — Load-as-Sparse-
 * Compute-as-Dense SpMM for unstructured weight sparsity (paper
 * Section 5.2, Table 4).
 *
 * Flash-LLM tiles A into 64x64 tiles; tiles are *loaded* in a
 * compressed form (reducing memory traffic) but *computed* densely on
 * tensor cores, with double buffering on the dense B feed.  That
 * trade is excellent at 60-90% sparsity and small weight matrices,
 * and catastrophic at the >95% sparsity of GNN matrices, where nearly
 * every tile is nonempty yet nearly empty — the dense FLOPs dwarf the
 * useful work (Table 4: >8x slower than DTC on reddit/protein).
 *
 * Its format conversion stages the matrix *uncompressed* (dense) in
 * host memory first, the OOM source Table 4 notes for YeastH-class
 * matrices; reproduced against ArchSpec::hostMemBytes.
 *
 * v1/v2 differ in pipeline depth: v2's deeper software pipeline has
 * higher fixed overhead per tile (slower on the tiny ddi) and
 * slightly better bandwidth utilization.
 */
#ifndef DTC_KERNELS_FLASH_LLM_LIKE_H
#define DTC_KERNELS_FLASH_LLM_LIKE_H

#include <vector>

#include "kernels/kernel.h"

namespace dtc {

/** The Flash-LLM baseline. */
class FlashLlmKernel : public SpmmKernel
{
  public:
    /** A-tile edge length. */
    static constexpr int64_t kTile = 64;

    explicit FlashLlmKernel(int version)
        : ver(version),
          cachedName("Flash-LLM(v" + std::to_string(version) + ")")
    {}

    std::string name() const override { return cachedName; }
    Refusal prepare(const CsrMatrix& a) override;
    bool prepared() const override { return ready; }
    void compute(const DenseMatrix& b, DenseMatrix& c) const override;
    LaunchResult cost(int64_t n, const CostModel& cm) const override;

    /** Nonempty 64x64 tiles per tile row (for tests). */
    const std::vector<std::vector<int32_t>>& tileCols() const
    {
        return tiles;
    }

  private:
    int ver;
    std::string cachedName;
    CsrMatrix mat;
    /** tiles[tileRow] = sorted nonempty tile-column indices. */
    std::vector<std::vector<int32_t>> tiles;
    bool ready = false;
};

} // namespace dtc

#endif // DTC_KERNELS_FLASH_LLM_LIKE_H
