/**
 * @file
 * VectorSparse baseline (Chen et al., SC'21) — 1-D column-vector
 * sparsity on tensor cores (paper Section 5.2, Fig. 12).
 *
 * Uses CVSE (formats/cvse.h): row panels of height vecLen store one
 * dense column vector per distinct nonzero column.  Vectors are
 * gathered into tensor-core fragments in groups; padding inside the
 * vectors (rows without that column) is computed as zeros.  Finer
 * than BELL, but on unstructured matrices most vector slots are
 * still padding.
 */
#ifndef DTC_KERNELS_VECTOR_SPARSE_H
#define DTC_KERNELS_VECTOR_SPARSE_H

#include "formats/cvse.h"
#include "kernels/kernel.h"

namespace dtc {

/** The VectorSparse (CVSE) baseline. */
class VectorSparseKernel : public SpmmKernel
{
  public:
    explicit VectorSparseKernel(int64_t vec_len)
        : vecLen(vec_len),
          cachedName("VectorSparse(v=" + std::to_string(vec_len) + ")")
    {}

    std::string name() const override { return cachedName; }
    Refusal prepare(const CsrMatrix& a) override;
    bool prepared() const override { return ready; }
    void compute(const DenseMatrix& b, DenseMatrix& c) const override;
    LaunchResult cost(int64_t n, const CostModel& cm) const override;

    /** The CVSE representation (for padding analysis). */
    const CvseMatrix& cvse() const { return mat; }

  private:
    int64_t vecLen;
    std::string cachedName;
    CvseMatrix mat;
    bool ready = false;
};

} // namespace dtc

#endif // DTC_KERNELS_VECTOR_SPARSE_H
