/**
 * @file
 * TCGNN-SpMM baseline (Wang et al., USENIX ATC'23) — the
 * state-of-the-art TC-based general SpMM the paper analyzes in
 * Section 3 and improves upon.
 *
 * Behaviour reproduced (paper Section 2.3 and Observations 1-4):
 *   - TCF storage (5 arrays, ~168% more memory than CSR);
 *   - one thread block per row window; per TC block, the FetchSparse
 *     stage re-scans the *entire* window edge list to find the
 *     block's nonzeros (the quadratic coordinate-computation cost
 *     behind the huge #IMAD/#HMMA ratios on long-row matrices);
 *   - ScatterFetchDense stages B tiles through shared memory with
 *     scalar LDG.32 + STS, then wmma::load_matrix_sync;
 *   - C-level WMMA (m16n16k8 TF32) compute, fully synchronous
 *     stages — no overlap, hence the <8% TC pipe utilization.
 */
#ifndef DTC_KERNELS_TCGNN_H
#define DTC_KERNELS_TCGNN_H

#include "formats/sgt.h"
#include "formats/tcf.h"
#include "kernels/kernel.h"

namespace dtc {

/** The TCGNN-SpMM baseline. */
class TcgnnKernel : public SpmmKernel
{
  public:
    std::string name() const override { return "TCGNN-SpMM"; }
    Refusal prepare(const CsrMatrix& a) override;
    bool prepared() const override { return ready; }
    void compute(const DenseMatrix& b, DenseMatrix& c) const override;
    LaunchResult cost(int64_t n, const CostModel& cm) const override;

    /** The TCF representation (exposed for Observation-1 analysis). */
    const TcfMatrix& tcf() const { return format; }

    /** Thread-ops per scanned edge in the quadratic FetchSparse. */
    static constexpr double kScanOpsPerEdge = 11.0;

    /** Thread-ops of coordinate math per fetched B element. */
    static constexpr double kDenseFetchOpsPerElement = 12.0;

  private:
    TcfMatrix format;
    SgtResult sgt;
    bool ready = false;
};

} // namespace dtc

#endif // DTC_KERNELS_TCGNN_H
