#include "kernels/vector_sparse.h"

#include <algorithm>

#include "common/check.h"
#include "common/tf32.h"
#include "kernels/b_traffic.h"

namespace dtc {

Refusal
VectorSparseKernel::prepare(const CsrMatrix& a)
{
    if (Refusal r = refuseIfOverConversionBudget(a, "CVSE"); !r.ok())
        return r;
    mat = CvseMatrix::build(a, vecLen);
    ready = true;
    return Refusal::accept();
}

void
VectorSparseKernel::compute(const DenseMatrix& b, DenseMatrix& c) const
{
    DTC_CHECK(ready);
    DTC_CHECK(mat.cols() == b.rows());
    DTC_CHECK(c.rows() == mat.rows() && c.cols() == b.cols());
    const int64_t n = b.cols();
    const int64_t v = mat.vecLen();
    c.setZero();
    // Vectors are stored per panel in ascending column order, so each
    // output row accumulates in ascending-column order (TF32).
    for (int64_t p = 0; p < mat.numPanels(); ++p) {
        const int64_t row_lo = p * v;
        for (int64_t s = mat.panelOffset()[p];
             s < mat.panelOffset()[p + 1]; ++s) {
            const int32_t col = mat.vecCol()[s];
            const float* brow = b.row(col);
            for (int64_t i = 0; i < v; ++i) {
                const int64_t row = row_lo + i;
                if (row >= mat.rows())
                    break;
                const float val = tf32Round(mat.values()[s * v + i]);
                if (val == 0.0f)
                    continue;
                float* crow = c.row(row);
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += val * tf32Round(brow[j]);
            }
        }
    }
}

LaunchResult
VectorSparseKernel::cost(int64_t n, const CostModel& cm) const
{
    DTC_CHECK(ready);
    const ArchSpec& arch = cm.arch();
    BTrafficMeter meter(arch, n);
    const double nd = static_cast<double>(n);
    const double v = static_cast<double>(mat.vecLen());

    // Panels are grouped so each thread block owns ~16/v panels
    // (one 16-row MMA slab).
    const int64_t panels_per_tb =
        std::max<int64_t>(1, 16 / mat.vecLen());
    std::vector<TbWork> tbs;
    for (int64_t p0 = 0; p0 < mat.numPanels(); p0 += panels_per_tb) {
        const int64_t p1 =
            std::min(p0 + panels_per_tb, mat.numPanels());
        TbWork tb;
        double vectors = 0.0;
        for (int64_t p = p0; p < p1; ++p) {
            for (int64_t s = mat.panelOffset()[p];
                 s < mat.panelOffset()[p + 1]; ++s) {
                meter.accessRow(mat.vecCol()[s], tbs.size());
                vectors += 1.0;
            }
        }
        // Each vector contributes v*N MACs (padding included).
        tb.hmma = vectors * v * nd / ArchSpec::kMacsPerHmma;
        tb.ldg = vectors * (v / 128.0 + nd / 128.0 + 1.0 / 32.0);
        // Gather/format bookkeeping per vector.
        tb.imad = vectors * (3.0 / 32.0 + nd / 128.0);
        tb.sts = vectors * v / 32.0;
        tb.lds = tb.sts;
        tb.syncs = 2.0;
        tb.bytesDram += vectors * (v * 4.0 + 4.0);
        tb.bytesDram += 16.0 * nd * 4.0; // C slab writeback
        // Gathered vector loads sustain less bandwidth than DTC's
        // block-wide fetches, and padding rides along in every
        // transaction.
        tb.stallCycles = vectors * 600.0 / 24.0;
        tb.execSerialFrac = 0.5;
        tb.memSerialFrac = 0.35;
        tb.memEfficiency = 0.62;
        tb.fixedCycles = 650.0;
        tbs.push_back(tb);
    }

    meter.apportion(tbs);
    const double flops = 2.0 * static_cast<double>(mat.nnz()) * nd;
    return cm.launch(name(), tbs, flops, meter.hitRate());
}

} // namespace dtc
