/**
 * @file
 * B-matrix traffic meter: routes a kernel's B-row access stream
 * through the shared L2 model and splits each thread block's bytes
 * into L2-hit and DRAM traffic.
 *
 * The cache line is one B-row segment (N floats): GPU SpMM kernels
 * fetch whole row segments per nonzero/TC-block column, and the L2
 * keeps or evicts them as units for our purposes.  25% of capacity is
 * reserved for streaming traffic (format arrays, C writeback) that
 * pollutes the L2 without reuse.
 *
 * Accesses are simulated in launch order to capture inter-block
 * locality (the Cache-Aware reordering effect), but hits and misses
 * are *apportioned* to thread blocks at the launch-wide rate: the
 * real kernel runs blocks concurrently, so cold misses are shared by
 * all resident blocks rather than billed to whichever block the
 * sequential simulation touched first.  Kernels must call
 * apportion() after metering all blocks.
 */
#ifndef DTC_KERNELS_B_TRAFFIC_H
#define DTC_KERNELS_B_TRAFFIC_H

#include <cstdint>
#include <vector>

#include "gpusim/arch.h"
#include "gpusim/cost_model.h"
#include "gpusim/l2cache.h"

namespace dtc {

/** Meters B-row fetches of one simulated kernel launch. */
class BTrafficMeter
{
  public:
    BTrafficMeter(const ArchSpec& arch, int64_t n_cols)
        : rowBytes(n_cols * 4),
          cache(arch.l2Bytes * 3 / 4, arch.l2Ways, rowBytes)
    {}

    /**
     * Fetches B row @p row for thread block @p tb_index (an index
     * into the vector later passed to apportion()).
     */
    void
    accessRow(int32_t row, size_t tb_index)
    {
        cache.accessLine(static_cast<uint64_t>(row));
        if (pending.size() <= tb_index)
            pending.resize(tb_index + 1, 0.0);
        pending[tb_index] += static_cast<double>(rowBytes);
    }

    /**
     * Splits each block's metered B bytes into L2-hit and DRAM
     * traffic at the launch-wide hit rate.
     */
    void
    apportion(std::vector<TbWork>& tbs)
    {
        const double rate = cache.hitRate();
        for (size_t i = 0; i < pending.size() && i < tbs.size();
             ++i) {
            tbs[i].bytesL2Hit += pending[i] * rate;
            tbs[i].bytesDram += pending[i] * (1.0 - rate);
        }
        pending.clear();
    }

    /** Hit rate of the stream so far. */
    double hitRate() const { return cache.hitRate(); }

  private:
    int64_t rowBytes;
    L2Cache cache;
    std::vector<double> pending;
};

} // namespace dtc

#endif // DTC_KERNELS_B_TRAFFIC_H
