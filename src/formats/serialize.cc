#include "formats/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/budget.h"
#include "common/check.h"
#include "common/fault.h"
#include "common/fault_sites.h"

namespace dtc {

namespace {

constexpr char kCsrMagic[8] = {'D', 'T', 'C', 'C', 'S', 'R', '1', 0};
constexpr char kMeTcfMagic[8] = {'D', 'T', 'C', 'M', 'E', 'T', '1', 0};
constexpr uint32_t kVersion = 1;

/** Streaming FNV-1a over everything written/read after the magic. */
class Checksum
{
  public:
    void
    feed(const void* data, size_t bytes)
    {
        const auto* p = static_cast<const unsigned char*>(data);
        for (size_t i = 0; i < bytes; ++i) {
            state ^= p[i];
            state *= 0x100000001b3ull;
        }
    }

    uint64_t value() const { return state; }

  private:
    uint64_t state = 0xcbf29ce484222325ull;
};

/** Binary writer with checksum accumulation. */
class Writer
{
  public:
    Writer(std::ostream& out, const char magic[8]) : stream(out)
    {
        stream.write(magic, 8);
        pod(kVersion);
    }

    template <typename T>
    void
    pod(const T& v)
    {
        stream.write(reinterpret_cast<const char*>(&v), sizeof(T));
        sum.feed(&v, sizeof(T));
    }

    template <typename T>
    void
    vec(const std::vector<T>& v)
    {
        pod(static_cast<uint64_t>(v.size()));
        if (!v.empty()) {
            stream.write(reinterpret_cast<const char*>(v.data()),
                         static_cast<std::streamsize>(v.size() *
                                                      sizeof(T)));
            sum.feed(v.data(), v.size() * sizeof(T));
        }
    }

    void
    finish()
    {
        const uint64_t checksum = sum.value();
        stream.write(reinterpret_cast<const char*>(&checksum),
                     sizeof(checksum));
        DTC_CHECK_MSG(stream.good(), "write failed");
    }

  private:
    std::ostream& stream;
    Checksum sum;
};

/**
 * Binary reader, hardened against corrupt and hostile streams.
 *
 * The constructor slurps the stream (bounded by the staging budget),
 * verifies the trailing checksum over the whole payload *first*, and
 * only then serves pod()/vec() reads out of the buffer.  Array length
 * prefixes are validated against the actual remaining payload bytes —
 * never trusted for allocation — so a bit-flipped or hostile u64
 * length cannot trigger a multi-GB resize: it either fails the
 * checksum or exceeds the remaining-byte bound, both CorruptData.
 */
class Reader
{
  public:
    Reader(std::istream& in, const char magic[8])
    {
        char got[8];
        in.read(got, 8);
        if (!in.good() || std::memcmp(got, magic, 8) != 0) {
            DTC_RAISE_CTX(ErrorCode::CorruptData,
                          "bad magic: not a " << magic << " file",
                          (ErrorContext{.component = "serialize",
                                        .byteOffset = 0}));
        }

        // Slurp the rest in budget-capped slabs; a stream longer than
        // the staging budget is refused before the buffer grows past
        // it.
        const int64_t cap = ResourceBudget::current().stagingBytes;
        constexpr size_t kSlab = 1 << 20;
        while (in.good()) {
            const size_t old = buf.size();
            if (static_cast<int64_t>(old) > cap) {
                DTC_RAISE_CTX(
                    ErrorCode::ResourceExhausted,
                    "stream exceeds the staging budget of "
                        << cap << " bytes",
                    (ErrorContext{.component = "serialize"}));
            }
            buf.resize(old + kSlab);
            in.read(buf.data() + old,
                    static_cast<std::streamsize>(kSlab));
            buf.resize(old + static_cast<size_t>(in.gcount()));
            if (in.gcount() == 0)
                break;
        }
        DTC_CHECK_CODE(static_cast<int64_t>(buf.size()) <= cap,
                       ErrorCode::ResourceExhausted,
                       "stream exceeds the staging budget of "
                           << cap << " bytes");

        // Checksum before interpreting anything: the last 8 bytes
        // must be the FNV-1a of everything before them.
        if (buf.size() < sizeof(uint64_t) + sizeof(uint32_t)) {
            DTC_RAISE_CTX(ErrorCode::CorruptData,
                          "truncated stream (no room for header and "
                          "checksum)",
                          (ErrorContext{.component = "serialize",
                                        .byteOffset = offset()}));
        }
        payloadEnd = buf.size() - sizeof(uint64_t);
        uint64_t stored = 0;
        std::memcpy(&stored, buf.data() + payloadEnd,
                    sizeof(stored));
        Checksum sum;
        sum.feed(buf.data(), payloadEnd);
        if (stored != sum.value()) {
            DTC_RAISE_CTX(ErrorCode::CorruptData,
                          "checksum mismatch (corrupt file)",
                          (ErrorContext{.component = "serialize",
                                        .byteOffset = static_cast<
                                            int64_t>(payloadEnd)}));
        }

        const uint32_t version = pod<uint32_t>();
        DTC_CHECK_CODE(version == kVersion, ErrorCode::Unsupported,
                       "unsupported version " << version);
    }

    template <typename T>
    T
    pod()
    {
        T v{};
        need(sizeof(T));
        std::memcpy(&v, buf.data() + pos, sizeof(T));
        pos += sizeof(T);
        return v;
    }

    template <typename T>
    std::vector<T>
    vec()
    {
        DTC_FAULT_POINT(fault::sites::kSerializeReadArray);
        const uint64_t len = pod<uint64_t>();
        // Remaining-byte bound, computed without len*sizeof(T)
        // overflow.
        const uint64_t remaining = payloadEnd - pos;
        if (len > remaining / sizeof(T)) {
            DTC_RAISE_CTX(
                ErrorCode::CorruptData,
                "array length " << len << " exceeds the "
                    << remaining << " remaining payload bytes",
                (ErrorContext{.component = "serialize",
                              .byteOffset = offset()}));
        }
        ResourceBudget::current().checkStaging(
            static_cast<int64_t>(len * sizeof(T)), "serialize");
        std::vector<T> v(static_cast<size_t>(len));
        if (len > 0) {
            std::memcpy(v.data(), buf.data() + pos,
                        len * sizeof(T));
            pos += len * sizeof(T);
        }
        return v;
    }

    void
    finish()
    {
        // The checksum was verified up front; here we only reject
        // payload bytes no field accounted for.
        DTC_CHECK_CODE(pos == payloadEnd, ErrorCode::CorruptData,
                       "trailing garbage: " << (payloadEnd - pos)
                           << " unread payload bytes");
    }

  private:
    /** Stream offset of the cursor (magic included), for context. */
    int64_t
    offset() const
    {
        return static_cast<int64_t>(pos) + 8;
    }

    void
    need(size_t bytes)
    {
        if (payloadEnd - pos < bytes) {
            DTC_RAISE_CTX(ErrorCode::CorruptData, "truncated stream",
                          (ErrorContext{.component = "serialize",
                                        .byteOffset = offset()}));
        }
    }

    std::vector<char> buf; ///< Everything after the magic.
    size_t pos = 0;        ///< Cursor into buf.
    size_t payloadEnd = 0; ///< Payload bytes (buf minus checksum).
};

} // namespace

void
saveCsr(std::ostream& out, const CsrMatrix& m)
{
    Writer w(out, kCsrMagic);
    w.pod(m.rows());
    w.pod(m.cols());
    w.vec(m.rowPtr());
    w.vec(m.colIdx());
    w.vec(m.values());
    w.finish();
}

CsrMatrix
loadCsr(std::istream& in)
{
    Reader r(in, kCsrMagic);
    const int64_t rows = r.pod<int64_t>();
    const int64_t cols = r.pod<int64_t>();
    auto row_ptr = r.vec<int64_t>();
    auto col_idx = r.vec<int32_t>();
    auto values = r.vec<float>();
    r.finish();
    // A stream can pass the checksum yet violate CSR invariants (it
    // was written corrupt, or crafted); that is corrupt *data*, not a
    // library bug — re-type validation failures accordingly.
    try {
        return CsrMatrix::fromParts(rows, cols, std::move(row_ptr),
                                    std::move(col_idx),
                                    std::move(values));
    } catch (const DtcError&) {
        throw;
    } catch (const std::exception& e) {
        DTC_RAISE_CTX(ErrorCode::CorruptData,
                      "stream violates CSR invariants: " << e.what(),
                      (ErrorContext{.component = "serialize",
                                    .rows = rows,
                                    .cols = cols}));
    }
}

void
saveMeTcf(std::ostream& out, const MeTcfMatrix& m)
{
    Writer w(out, kMeTcfMagic);
    w.pod(m.rows());
    w.pod(m.cols());
    w.pod(static_cast<int32_t>(m.shape().windowHeight));
    w.pod(static_cast<int32_t>(m.shape().blockWidth));
    w.vec(m.rowWindowOffset());
    w.vec(m.tcOffset());
    w.vec(m.tcLocalId());
    w.vec(m.sparseAtoB());
    w.vec(m.values());
    w.finish();
}

MeTcfMatrix
loadMeTcf(std::istream& in)
{
    Reader r(in, kMeTcfMagic);
    const int64_t rows = r.pod<int64_t>();
    const int64_t cols = r.pod<int64_t>();
    TcBlockShape shape;
    shape.windowHeight = r.pod<int32_t>();
    shape.blockWidth = r.pod<int32_t>();
    auto rwo = r.vec<int64_t>();
    auto tco = r.vec<int64_t>();
    auto lid = r.vec<uint8_t>();
    auto atob = r.vec<int32_t>();
    auto vals = r.vec<float>();
    r.finish();
    // See loadCsr: invariant violations in a checksum-valid stream
    // are corrupt data, not internal errors.
    try {
        return MeTcfMatrix::fromParts(rows, cols, shape,
                                      std::move(rwo), std::move(tco),
                                      std::move(lid), std::move(atob),
                                      std::move(vals));
    } catch (const DtcError&) {
        throw;
    } catch (const std::exception& e) {
        DTC_RAISE_CTX(
            ErrorCode::CorruptData,
            "stream violates ME-TCF invariants: " << e.what(),
            (ErrorContext{.component = "serialize",
                          .rows = rows,
                          .cols = cols}));
    }
}

void
saveCsrFile(const std::string& path, const CsrMatrix& m)
{
    std::ofstream f(path, std::ios::binary);
    DTC_CHECK_MSG(f.good(), "cannot open " << path);
    saveCsr(f, m);
}

CsrMatrix
loadCsrFile(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    DTC_CHECK_MSG(f.good(), "cannot open " << path);
    return loadCsr(f);
}

void
saveMeTcfFile(const std::string& path, const MeTcfMatrix& m)
{
    std::ofstream f(path, std::ios::binary);
    DTC_CHECK_MSG(f.good(), "cannot open " << path);
    saveMeTcf(f, m);
}

MeTcfMatrix
loadMeTcfFile(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    DTC_CHECK_MSG(f.good(), "cannot open " << path);
    return loadMeTcf(f);
}

} // namespace dtc
