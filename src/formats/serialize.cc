#include "formats/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/check.h"

namespace dtc {

namespace {

constexpr char kCsrMagic[8] = {'D', 'T', 'C', 'C', 'S', 'R', '1', 0};
constexpr char kMeTcfMagic[8] = {'D', 'T', 'C', 'M', 'E', 'T', '1', 0};
constexpr uint32_t kVersion = 1;

/** Streaming FNV-1a over everything written/read after the magic. */
class Checksum
{
  public:
    void
    feed(const void* data, size_t bytes)
    {
        const auto* p = static_cast<const unsigned char*>(data);
        for (size_t i = 0; i < bytes; ++i) {
            state ^= p[i];
            state *= 0x100000001b3ull;
        }
    }

    uint64_t value() const { return state; }

  private:
    uint64_t state = 0xcbf29ce484222325ull;
};

/** Binary writer with checksum accumulation. */
class Writer
{
  public:
    Writer(std::ostream& out, const char magic[8]) : stream(out)
    {
        stream.write(magic, 8);
        pod(kVersion);
    }

    template <typename T>
    void
    pod(const T& v)
    {
        stream.write(reinterpret_cast<const char*>(&v), sizeof(T));
        sum.feed(&v, sizeof(T));
    }

    template <typename T>
    void
    vec(const std::vector<T>& v)
    {
        pod(static_cast<uint64_t>(v.size()));
        if (!v.empty()) {
            stream.write(reinterpret_cast<const char*>(v.data()),
                         static_cast<std::streamsize>(v.size() *
                                                      sizeof(T)));
            sum.feed(v.data(), v.size() * sizeof(T));
        }
    }

    void
    finish()
    {
        const uint64_t checksum = sum.value();
        stream.write(reinterpret_cast<const char*>(&checksum),
                     sizeof(checksum));
        DTC_CHECK_MSG(stream.good(), "write failed");
    }

  private:
    std::ostream& stream;
    Checksum sum;
};

/** Binary reader with checksum verification. */
class Reader
{
  public:
    Reader(std::istream& in, const char magic[8]) : stream(in)
    {
        char got[8];
        stream.read(got, 8);
        DTC_CHECK_MSG(stream.good() &&
                          std::memcmp(got, magic, 8) == 0,
                      "bad magic: not a " << magic << " file");
        const uint32_t version = pod<uint32_t>();
        DTC_CHECK_MSG(version == kVersion,
                      "unsupported version " << version);
    }

    template <typename T>
    T
    pod()
    {
        T v{};
        stream.read(reinterpret_cast<char*>(&v), sizeof(T));
        DTC_CHECK_MSG(stream.good(), "truncated stream");
        sum.feed(&v, sizeof(T));
        return v;
    }

    template <typename T>
    std::vector<T>
    vec(uint64_t max_len = (1ull << 33))
    {
        const uint64_t len = pod<uint64_t>();
        DTC_CHECK_MSG(len <= max_len, "implausible array length");
        std::vector<T> v(static_cast<size_t>(len));
        if (len > 0) {
            stream.read(reinterpret_cast<char*>(v.data()),
                        static_cast<std::streamsize>(len * sizeof(T)));
            DTC_CHECK_MSG(stream.good(), "truncated stream");
            sum.feed(v.data(), v.size() * sizeof(T));
        }
        return v;
    }

    void
    finish()
    {
        uint64_t stored = 0;
        stream.read(reinterpret_cast<char*>(&stored), sizeof(stored));
        DTC_CHECK_MSG(stream.good() && stored == sum.value(),
                      "checksum mismatch (corrupt file)");
    }

  private:
    std::istream& stream;
    Checksum sum;
};

} // namespace

void
saveCsr(std::ostream& out, const CsrMatrix& m)
{
    Writer w(out, kCsrMagic);
    w.pod(m.rows());
    w.pod(m.cols());
    w.vec(m.rowPtr());
    w.vec(m.colIdx());
    w.vec(m.values());
    w.finish();
}

CsrMatrix
loadCsr(std::istream& in)
{
    Reader r(in, kCsrMagic);
    const int64_t rows = r.pod<int64_t>();
    const int64_t cols = r.pod<int64_t>();
    auto row_ptr = r.vec<int64_t>();
    auto col_idx = r.vec<int32_t>();
    auto values = r.vec<float>();
    r.finish();
    return CsrMatrix::fromParts(rows, cols, std::move(row_ptr),
                                std::move(col_idx),
                                std::move(values));
}

void
saveMeTcf(std::ostream& out, const MeTcfMatrix& m)
{
    Writer w(out, kMeTcfMagic);
    w.pod(m.rows());
    w.pod(m.cols());
    w.pod(static_cast<int32_t>(m.shape().windowHeight));
    w.pod(static_cast<int32_t>(m.shape().blockWidth));
    w.vec(m.rowWindowOffset());
    w.vec(m.tcOffset());
    w.vec(m.tcLocalId());
    w.vec(m.sparseAtoB());
    w.vec(m.values());
    w.finish();
}

MeTcfMatrix
loadMeTcf(std::istream& in)
{
    Reader r(in, kMeTcfMagic);
    const int64_t rows = r.pod<int64_t>();
    const int64_t cols = r.pod<int64_t>();
    TcBlockShape shape;
    shape.windowHeight = r.pod<int32_t>();
    shape.blockWidth = r.pod<int32_t>();
    auto rwo = r.vec<int64_t>();
    auto tco = r.vec<int64_t>();
    auto lid = r.vec<uint8_t>();
    auto atob = r.vec<int32_t>();
    auto vals = r.vec<float>();
    r.finish();
    return MeTcfMatrix::fromParts(rows, cols, shape, std::move(rwo),
                                  std::move(tco), std::move(lid),
                                  std::move(atob), std::move(vals));
}

void
saveCsrFile(const std::string& path, const CsrMatrix& m)
{
    std::ofstream f(path, std::ios::binary);
    DTC_CHECK_MSG(f.good(), "cannot open " << path);
    saveCsr(f, m);
}

CsrMatrix
loadCsrFile(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    DTC_CHECK_MSG(f.good(), "cannot open " << path);
    return loadCsr(f);
}

void
saveMeTcfFile(const std::string& path, const MeTcfMatrix& m)
{
    std::ofstream f(path, std::ios::binary);
    DTC_CHECK_MSG(f.good(), "cannot open " << path);
    saveMeTcf(f, m);
}

MeTcfMatrix
loadMeTcfFile(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    DTC_CHECK_MSG(f.good(), "cannot open " << path);
    return loadMeTcf(f);
}

} // namespace dtc
