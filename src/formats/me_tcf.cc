#include "formats/me_tcf.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/fault.h"
#include "common/fault_sites.h"
#include "common/parallel.h"
#include "matrix/coo.h"
#include "obs/metrics.h"

namespace dtc {

namespace {

/** Windows per parallelFor chunk for the conversion passes. */
constexpr int64_t kWindowGrain = 64;

} // namespace

MeTcfMatrix
MeTcfMatrix::build(const CsrMatrix& m, TcBlockShape shape)
{
    DTC_CHECK_MSG(shape.windowHeight * shape.blockWidth <= 256,
                  "TC block too large for 8-bit local ids");
    DTC_FAULT_POINT(fault::sites::kMeTcfConvert);
    DTC_TRACE_SCOPE("metcf.convert");
    obs::ScopedTimerMs timer("metcf.convert_ms");
    static obs::Counter& builds =
        obs::metrics::counter("metcf.builds");
    builds.add(1);
    SgtResult sgt = sgtCondense(m, shape);

    MeTcfMatrix t;
    t.nRows = m.rows();
    t.nCols = m.cols();
    t.blockShape = shape;

    // Prefix-sum blocks-per-window into rowWindowOffset.
    t.rowWindowOffsetArr.resize(static_cast<size_t>(sgt.numWindows) + 1,
                                0);
    for (int64_t w = 0; w < sgt.numWindows; ++w) {
        t.rowWindowOffsetArr[w + 1] =
            t.rowWindowOffsetArr[w] + sgt.blocksPerWindow[w];
    }
    const int64_t num_blocks = t.rowWindowOffsetArr.back();
    DTC_ASSERT(num_blocks == sgt.numTcBlocks);

    // sparseAtoB: the original column behind each block lane.  Each
    // window owns a disjoint block range, so the window-parallel
    // passes below write disjoint slots and stay bitwise identical
    // to the serial order.
    t.sparseAtoBArr.assign(
        static_cast<size_t>(num_blocks) * shape.blockWidth, kPadColumn);
    parallelFor(0, sgt.numWindows, kWindowGrain,
                [&](int64_t w_lo, int64_t w_hi) {
        for (int64_t w = w_lo; w < w_hi; ++w) {
            const int32_t* cols = sgt.windowColsBegin(w);
            const int64_t count = sgt.windowColCount(w);
            const int64_t block0 = t.rowWindowOffsetArr[w];
            for (int64_t j = 0; j < count; ++j) {
                int64_t b = block0 + j / shape.blockWidth;
                int64_t lane = j % shape.blockWidth;
                t.sparseAtoBArr[b * shape.blockWidth + lane] = cols[j];
            }
        }
    });

    // Count nonzeros per TC block, then place (localId, value) pairs.
    const auto& row_ptr = m.rowPtr();
    const auto& col_idx = m.colIdx();
    const auto& vals = m.values();

    // The counting pass resolves each nonzero's condensed column via
    // std::lower_bound; memoize it (windows own disjoint row — hence
    // nonzero — ranges) so the placement pass below reuses the value
    // instead of repeating the identical binary search.
    std::vector<int32_t> newcol_of(static_cast<size_t>(m.nnz()));
    t.tcOffsetArr.assign(static_cast<size_t>(num_blocks) + 1, 0);
    parallelFor(0, sgt.numWindows, kWindowGrain,
                [&](int64_t w_lo, int64_t w_hi) {
        for (int64_t w = w_lo; w < w_hi; ++w) {
            const int64_t row_lo = w * shape.windowHeight;
            const int64_t row_hi =
                std::min(row_lo + shape.windowHeight, m.rows());
            const int32_t* cols_begin = sgt.windowColsBegin(w);
            const int32_t* cols_end =
                cols_begin + sgt.windowColCount(w);
            for (int64_t r = row_lo; r < row_hi; ++r) {
                for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
                    auto it = std::lower_bound(cols_begin, cols_end,
                                               col_idx[k]);
                    int64_t newcol = it - cols_begin;
                    newcol_of[k] = static_cast<int32_t>(newcol);
                    int64_t b = t.rowWindowOffsetArr[w] +
                                newcol / shape.blockWidth;
                    t.tcOffsetArr[b + 1]++;
                }
            }
        }
    });
    for (size_t i = 1; i < t.tcOffsetArr.size(); ++i)
        t.tcOffsetArr[i] += t.tcOffsetArr[i - 1];

    t.localIdArr.resize(static_cast<size_t>(m.nnz()));
    t.valArr.resize(static_cast<size_t>(m.nnz()));
    std::vector<int64_t> cursor(t.tcOffsetArr.begin(),
                                t.tcOffsetArr.end() - 1);
    parallelFor(0, sgt.numWindows, kWindowGrain,
                [&](int64_t w_lo, int64_t w_hi) {
        for (int64_t w = w_lo; w < w_hi; ++w) {
            const int64_t row_lo = w * shape.windowHeight;
            const int64_t row_hi =
                std::min(row_lo + shape.windowHeight, m.rows());
            for (int64_t r = row_lo; r < row_hi; ++r) {
                for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
                    int64_t newcol = newcol_of[k];
                    int64_t b = t.rowWindowOffsetArr[w] +
                                newcol / shape.blockWidth;
                    int64_t local =
                        (r - row_lo) * shape.blockWidth +
                        newcol % shape.blockWidth;
                    int64_t pos = cursor[b]++;
                    t.localIdArr[pos] = static_cast<uint8_t>(local);
                    t.valArr[pos] = vals[k];
                }
            }
        }
    });

    // Rows are visited in order and columns ascend within a row, so
    // entries land in each block sorted by (localRow, localCol) — i.e.
    // ascending localId.  Assert rather than re-sort.
    return t;
}

MeTcfMatrix
MeTcfMatrix::fromParts(int64_t rows, int64_t cols, TcBlockShape shape,
                       std::vector<int64_t> row_window_offset,
                       std::vector<int64_t> tc_offset,
                       std::vector<uint8_t> tc_local_id,
                       std::vector<int32_t> sparse_a_to_b,
                       std::vector<float> values)
{
    MeTcfMatrix t;
    t.nRows = rows;
    t.nCols = cols;
    t.blockShape = shape;
    t.rowWindowOffsetArr = std::move(row_window_offset);
    t.tcOffsetArr = std::move(tc_offset);
    t.localIdArr = std::move(tc_local_id);
    t.sparseAtoBArr = std::move(sparse_a_to_b);
    t.valArr = std::move(values);
    t.validate();
    return t;
}

double
MeTcfMatrix::meanNnzTc() const
{
    const int64_t blocks = numTcBlocks();
    return blocks > 0 ? static_cast<double>(nnz()) /
                            static_cast<double>(blocks)
                      : 0.0;
}

int64_t
MeTcfMatrix::indexElementCount() const
{
    const int64_t windows = numWindows();
    const int64_t blocks = numTcBlocks();
    // Paper accounting: ceil(M/16) + 9*NumTCBlocks + NNZ/4 + 2, with
    // tcLocalId packed 4-per-32-bit-word (rounded up).
    return windows + 1 + blocks + 1 +
           blocks * blockShape.blockWidth + (nnz() + 3) / 4;
}

void
MeTcfMatrix::expandBlock(int64_t b, float* tile) const
{
    const int64_t tile_elems =
        blockShape.windowHeight * blockShape.blockWidth;
    std::fill(tile, tile + tile_elems, 0.0f);
    for (int64_t k = tcOffsetArr[b]; k < tcOffsetArr[b + 1]; ++k)
        tile[localIdArr[k]] = valArr[k];
}

void
MeTcfMatrix::validate() const
{
    DTC_ASSERT(!rowWindowOffsetArr.empty());
    DTC_ASSERT(rowWindowOffsetArr.front() == 0);
    DTC_ASSERT(rowWindowOffsetArr.back() == numTcBlocks());
    DTC_ASSERT(tcOffsetArr.front() == 0);
    DTC_ASSERT(tcOffsetArr.back() ==
               static_cast<int64_t>(localIdArr.size()));
    DTC_ASSERT(localIdArr.size() == valArr.size());
    DTC_ASSERT(static_cast<int64_t>(sparseAtoBArr.size()) ==
               numTcBlocks() * blockShape.blockWidth);

    const int max_local =
        blockShape.windowHeight * blockShape.blockWidth;
    for (int64_t b = 0; b < numTcBlocks(); ++b) {
        DTC_ASSERT(tcOffsetArr[b] <= tcOffsetArr[b + 1]);
        for (int64_t k = tcOffsetArr[b]; k < tcOffsetArr[b + 1]; ++k) {
            DTC_ASSERT(localIdArr[k] < max_local);
            if (k > tcOffsetArr[b])
                DTC_ASSERT(localIdArr[k - 1] < localIdArr[k]);
            // A populated local column must have a real source column.
            int lane = localIdArr[k] % blockShape.blockWidth;
            DTC_ASSERT(sparseAtoBArr[b * blockShape.blockWidth + lane] !=
                       kPadColumn);
        }
    }
    for (int32_t c : sparseAtoBArr)
        DTC_ASSERT(c == kPadColumn || (c >= 0 && c < nCols));
}

CsrMatrix
MeTcfMatrix::toCsr() const
{
    CooMatrix coo(nRows, nCols);
    coo.reserve(static_cast<size_t>(nnz()));
    const int64_t wh = blockShape.windowHeight;
    const int64_t bw = blockShape.blockWidth;
    for (int64_t w = 0; w < numWindows(); ++w) {
        for (int64_t b = rowWindowOffsetArr[w];
             b < rowWindowOffsetArr[w + 1]; ++b) {
            for (int64_t k = tcOffsetArr[b]; k < tcOffsetArr[b + 1];
                 ++k) {
                int64_t local = localIdArr[k];
                int64_t row = w * wh + local / bw;
                int32_t col = sparseAtoBArr[b * bw + local % bw];
                DTC_ASSERT(col != kPadColumn);
                coo.add(static_cast<int32_t>(row), col, valArr[k]);
            }
        }
    }
    return CsrMatrix::fromCoo(coo);
}

} // namespace dtc
