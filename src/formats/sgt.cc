#include "formats/sgt.h"

#include <algorithm>

#include "common/check.h"
#include "common/fault.h"
#include "common/fault_sites.h"
#include "common/parallel.h"
#include "obs/metrics.h"

namespace dtc {

namespace {

/** Windows per parallelFor chunk (fixed: part of the result layout). */
constexpr int64_t kWindowGrain = 64;

} // namespace

SgtResult
sgtCondense(const CsrMatrix& m, TcBlockShape shape)
{
    DTC_CHECK(shape.windowHeight > 0 && shape.blockWidth > 0);
    DTC_TRACE_SCOPE("sgt.condense");
    obs::ScopedTimerMs timer("sgt.condense_ms");

    SgtResult res;
    res.rows = m.rows();
    res.cols = m.cols();
    res.nnz = m.nnz();
    res.shape = shape;
    res.numWindows =
        (m.rows() + shape.windowHeight - 1) / shape.windowHeight;
    res.windowColOffset.resize(static_cast<size_t>(res.numWindows) + 1, 0);
    res.blocksPerWindow.resize(static_cast<size_t>(res.numWindows), 0);

    const auto& row_ptr = m.rowPtr();
    const auto& col_idx = m.colIdx();

    // Window-parallel condensation: each chunk of windows dedups its
    // windows into a private buffer and records per-window counts in
    // disjoint slots; the buffers are then concatenated in chunk
    // order, so the result is identical for any thread count.
    const int64_t num_chunks =
        res.numWindows > 0
            ? (res.numWindows + kWindowGrain - 1) / kWindowGrain
            : 0;
    std::vector<std::vector<int32_t>> chunk_cols(
        static_cast<size_t>(num_chunks));

    parallelFor(0, res.numWindows, kWindowGrain,
                [&](int64_t w_lo, int64_t w_hi) {
        // Per-chunk fault point: fires by deterministic chunk ordinal
        // (common/fault.h), so injected failures here are identical
        // at any thread count.
        DTC_FAULT_POINT(fault::sites::kSgtCondenseChunk);
        std::vector<int32_t>& out =
            chunk_cols[static_cast<size_t>(w_lo / kWindowGrain)];
        std::vector<int32_t> scratch;
        for (int64_t w = w_lo; w < w_hi; ++w) {
            const int64_t row_lo = w * shape.windowHeight;
            const int64_t row_hi =
                std::min(row_lo + shape.windowHeight, m.rows());
            scratch.clear();
            for (int64_t r = row_lo; r < row_hi; ++r) {
                scratch.insert(scratch.end(),
                               col_idx.begin() + row_ptr[r],
                               col_idx.begin() + row_ptr[r + 1]);
            }
            std::sort(scratch.begin(), scratch.end());
            scratch.erase(std::unique(scratch.begin(), scratch.end()),
                          scratch.end());

            out.insert(out.end(), scratch.begin(), scratch.end());
            const int64_t distinct =
                static_cast<int64_t>(scratch.size());
            // Stored as a per-window count here; prefix-summed below.
            res.windowColOffset[w + 1] = distinct;
            res.blocksPerWindow[w] = static_cast<int32_t>(
                (distinct + shape.blockWidth - 1) / shape.blockWidth);
        }
    });

    for (int64_t w = 0; w < res.numWindows; ++w) {
        res.windowColOffset[w + 1] += res.windowColOffset[w];
        res.numTcBlocks += res.blocksPerWindow[w];
    }

    res.windowCols.reserve(static_cast<size_t>(
        res.numWindows > 0 ? res.windowColOffset[res.numWindows] : 0));
    for (const auto& cols : chunk_cols)
        res.windowCols.insert(res.windowCols.end(), cols.begin(),
                              cols.end());

    res.meanNnzTc = res.numTcBlocks > 0
                        ? static_cast<double>(res.nnz) /
                              static_cast<double>(res.numTcBlocks)
                        : 0.0;
    static obs::Counter& calls =
        obs::metrics::counter("sgt.condense_calls");
    static obs::Counter& blocks =
        obs::metrics::counter("sgt.tc_blocks");
    calls.add(1);
    blocks.add(static_cast<uint64_t>(res.numTcBlocks));
    return res;
}

} // namespace dtc
