#include "formats/sgt.h"

#include <algorithm>

#include "common/check.h"

namespace dtc {

SgtResult
sgtCondense(const CsrMatrix& m, TcBlockShape shape)
{
    DTC_CHECK(shape.windowHeight > 0 && shape.blockWidth > 0);

    SgtResult res;
    res.rows = m.rows();
    res.cols = m.cols();
    res.nnz = m.nnz();
    res.shape = shape;
    res.numWindows =
        (m.rows() + shape.windowHeight - 1) / shape.windowHeight;
    res.windowColOffset.resize(static_cast<size_t>(res.numWindows) + 1, 0);
    res.blocksPerWindow.resize(static_cast<size_t>(res.numWindows), 0);
    res.windowCols.reserve(static_cast<size_t>(m.nnz()));

    const auto& row_ptr = m.rowPtr();
    const auto& col_idx = m.colIdx();

    std::vector<int32_t> scratch;
    for (int64_t w = 0; w < res.numWindows; ++w) {
        const int64_t row_lo = w * shape.windowHeight;
        const int64_t row_hi =
            std::min(row_lo + shape.windowHeight, m.rows());
        scratch.clear();
        for (int64_t r = row_lo; r < row_hi; ++r) {
            scratch.insert(scratch.end(),
                           col_idx.begin() + row_ptr[r],
                           col_idx.begin() + row_ptr[r + 1]);
        }
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()),
                      scratch.end());

        res.windowCols.insert(res.windowCols.end(), scratch.begin(),
                              scratch.end());
        res.windowColOffset[w + 1] =
            static_cast<int64_t>(res.windowCols.size());
        const int64_t distinct = static_cast<int64_t>(scratch.size());
        res.blocksPerWindow[w] = static_cast<int32_t>(
            (distinct + shape.blockWidth - 1) / shape.blockWidth);
        res.numTcBlocks += res.blocksPerWindow[w];
    }

    res.meanNnzTc = res.numTcBlocks > 0
                        ? static_cast<double>(res.nnz) /
                              static_cast<double>(res.numTcBlocks)
                        : 0.0;
    return res;
}

} // namespace dtc
