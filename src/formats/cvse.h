/**
 * @file
 * Column Vector Sparse Encoding (CVSE) — the format behind the
 * VectorSparse baseline (Chen et al., SC'21; paper Section 5.2).
 *
 * Rows are grouped into panels of height vecLen.  Within each panel,
 * every distinct nonzero column is stored as one dense column vector
 * of vecLen values (zero-padded where a row lacks that column).  This
 * is finer-grained than BELL blocks, so padding is milder, but every
 * vector still pays for absent rows — which is why VectorSparse loses
 * on highly unstructured matrices.
 */
#ifndef DTC_FORMATS_CVSE_H
#define DTC_FORMATS_CVSE_H

#include <cstdint>
#include <vector>

#include "matrix/csr.h"

namespace dtc {

/** A matrix stored in Column Vector Sparse Encoding. */
class CvseMatrix
{
  public:
    /** Builds CVSE with panels of height @p vec_len. */
    static CvseMatrix build(const CsrMatrix& m, int64_t vec_len);

    int64_t rows() const { return nRows; }
    int64_t cols() const { return nCols; }
    int64_t nnz() const { return nNnz; }
    int64_t vecLen() const { return vLen; }
    int64_t numPanels() const
    {
        return static_cast<int64_t>(panelOffsetArr.size()) - 1;
    }
    int64_t numVectors() const
    {
        return static_cast<int64_t>(vecColArr.size());
    }

    /** First vector of each panel (size numPanels()+1). */
    const std::vector<int64_t>& panelOffset() const
    {
        return panelOffsetArr;
    }

    /** Original column of each vector. */
    const std::vector<int32_t>& vecCol() const { return vecColArr; }

    /** Vector values: numVectors x vecLen, row within panel major. */
    const std::vector<float>& values() const { return valArr; }

    /** Mean nonzeros per stored vector (condensation quality). */
    double meanNnzPerVector() const;

    /** Fraction of stored value slots holding real nonzeros. */
    double fillEfficiency() const;

    /** Bytes of values + index arrays. */
    int64_t footprintBytes() const;

  private:
    int64_t nRows = 0;
    int64_t nCols = 0;
    int64_t nNnz = 0;
    int64_t vLen = 0;
    std::vector<int64_t> panelOffsetArr;
    std::vector<int32_t> vecColArr;
    std::vector<float> valArr;
};

} // namespace dtc

#endif // DTC_FORMATS_CVSE_H
