/**
 * @file
 * Binary (de)serialization of CSR and ME-TCF matrices.
 *
 * Section 6 of the paper argues that sparse-matrix collections and
 * GNN frameworks should "perform reordering and format conversion
 * once on the stored sparse matrices" and amortize the cost across
 * every application built on them.  That deployment story needs the
 * converted format to be persistable; this module provides a simple
 * versioned little-endian container for it.
 *
 * Layout: 8-byte magic, u32 version, then the arrays with u64
 * length prefixes.  Integrity is guarded by the magic/version and a
 * trailing FNV-1a checksum over the payload.
 */
#ifndef DTC_FORMATS_SERIALIZE_H
#define DTC_FORMATS_SERIALIZE_H

#include <iosfwd>
#include <string>

#include "formats/me_tcf.h"
#include "matrix/csr.h"

namespace dtc {

/** Writes @p m to a binary stream. */
void saveCsr(std::ostream& out, const CsrMatrix& m);

/** Reads a CSR matrix written by saveCsr. Throws on corruption. */
CsrMatrix loadCsr(std::istream& in);

/** Writes an ME-TCF matrix to a binary stream. */
void saveMeTcf(std::ostream& out, const MeTcfMatrix& m);

/** Reads an ME-TCF matrix written by saveMeTcf. */
MeTcfMatrix loadMeTcf(std::istream& in);

/** File-path conveniences. */
void saveCsrFile(const std::string& path, const CsrMatrix& m);
CsrMatrix loadCsrFile(const std::string& path);
void saveMeTcfFile(const std::string& path, const MeTcfMatrix& m);
MeTcfMatrix loadMeTcfFile(const std::string& path);

} // namespace dtc

#endif // DTC_FORMATS_SERIALIZE_H
