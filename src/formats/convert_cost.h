/**
 * @file
 * Cost models for format conversion (paper Section 6, overhead 1).
 *
 * DTC-SpMM converts CSR to ME-TCF with "highly parallel CUDA
 * kernels": a per-window column histogram/dedup pass, prefix sums
 * over windows and TC blocks, and a scatter pass writing TCLocalId /
 * SparseAtoB.  The paper measures this at 1.48x (YeastH) and 14.5x
 * (protein) of one SpMM, and 101x/72x faster than TC-GNN's
 * CPU-side conversion.
 *
 * This module reproduces those comparisons on the simulator: the
 * GPU conversion is costed as streaming passes over the CSR and
 * ME-TCF arrays (sort-dominated within windows), and TC-GNN's
 * conversion as a single-threaded CPU pass.
 */
#ifndef DTC_FORMATS_CONVERT_COST_H
#define DTC_FORMATS_CONVERT_COST_H

#include "gpusim/cost_model.h"
#include "matrix/csr.h"

namespace dtc {

/**
 * Simulated time of the GPU-accelerated CSR -> ME-TCF conversion.
 * One thread block per row window; per window the cost covers
 * loading the window's nonzeros, an in-shared-memory sort/dedup of
 * column indices (the SGT condensation), and scattering local ids,
 * lane tables and values.
 */
LaunchResult meTcfConversionCost(const CsrMatrix& m,
                                 const CostModel& cm);

/**
 * Modeled time of TC-GNN's conversion, which "does not utilize GPU
 * acceleration" (paper Fig. 16 footnote): a single-threaded CPU
 * pass building the five TCF arrays with per-edge hash-map lookups.
 * Calibrated at ~80 ns per nonzero on the paper's host.
 */
double tcgnnCpuConversionMs(const CsrMatrix& m);

} // namespace dtc

#endif // DTC_FORMATS_CONVERT_COST_H
