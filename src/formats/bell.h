/**
 * @file
 * Blocked-Ellpack (BELL) format — the structured-sparsity format
 * behind cuSPARSE's Block-SpMM baseline (paper Section 5.2).
 *
 * The matrix is tiled into blockSize x blockSize blocks.  Every block
 * row stores the same number of block columns (the maximum over block
 * rows, ELL-style), padding with zero blocks.  Dense values of every
 * stored block are materialized including zeros — this padding is why
 * BELL "can lead to out-of-memory (OOM) issues when applied to
 * large-scale matrices" (paper, Fig. 12 discussion), which tryBuild
 * reproduces by projecting the footprint before materializing.
 */
#ifndef DTC_FORMATS_BELL_H
#define DTC_FORMATS_BELL_H

#include <cstdint>
#include <vector>

#include "matrix/csr.h"

namespace dtc {

struct BellBuildResult;

/** A matrix stored in Blocked-Ellpack format. */
class BellMatrix
{
  public:
    /** Sentinel block-column index for ELL padding. */
    static constexpr int32_t kPadBlock = -1;

    int64_t rows() const { return nRows; }
    int64_t cols() const { return nCols; }
    int64_t nnz() const { return nNnz; }
    int64_t blockSize() const { return bSize; }
    int64_t numBlockRows() const { return nBlockRows; }

    /** Block columns stored per block row (the padded ELL width). */
    int64_t ellCols() const { return nEllCols; }

    /** Number of genuinely nonzero blocks (before ELL padding). */
    int64_t numNonzeroBlocks() const { return nRealBlocks; }

    /** Block-column index array, kPadBlock where padded. */
    const std::vector<int32_t>& blockColIdx() const { return blockColArr; }

    /** Dense block values: [blockRow][ellSlot][r][c], row-major. */
    const std::vector<float>& values() const { return valArr; }

    /** Bytes of the values + index arrays. */
    int64_t footprintBytes() const;

    /** Fraction of stored value slots that hold real nonzeros. */
    double fillEfficiency() const;

    friend BellBuildResult bellTryBuild(const CsrMatrix& m,
                                        int64_t block_size,
                                        int64_t mem_limit_bytes,
                                        bool materialize_values);

  private:
    int64_t nRows = 0;
    int64_t nCols = 0;
    int64_t nNnz = 0;
    int64_t bSize = 0;
    int64_t nBlockRows = 0;
    int64_t nEllCols = 0;
    int64_t nRealBlocks = 0;
    std::vector<int32_t> blockColArr;
    std::vector<float> valArr;
};

/** Outcome of a BELL conversion attempt. */
struct BellBuildResult
{
    bool oom = false;            ///< Projected footprint over the limit.
    int64_t projectedBytes = 0;  ///< Footprint the conversion would need.
    BellMatrix matrix;           ///< Valid only when !oom.
};

/**
 * Converts @p m to BELL with the given block size, refusing (oom=true)
 * if the padded footprint would exceed @p mem_limit_bytes — modelling
 * the 24 GB device-memory budget of the paper's GPUs.
 *
 * With @p materialize_values = false only the block-column structure
 * is built (values() stays empty): enough for cost analysis without
 * allocating the multi-GiB padded value array.
 */
BellBuildResult bellTryBuild(const CsrMatrix& m, int64_t block_size,
                             int64_t mem_limit_bytes,
                             bool materialize_values = true);

} // namespace dtc

#endif // DTC_FORMATS_BELL_H
