/**
 * @file
 * TCF — the TC-GNN Compressed Format (paper Section 2.3).
 *
 * TCF stores an SGT-condensed matrix in five arrays:
 *   - blockPartition: TC blocks per row window      (ceil(M/16) elems)
 *   - nodePointer:    CSR-style row offsets         (M + 1 elems)
 *   - edgeList:       original column per nonzero   (NNZ elems)
 *   - edgeToColumn:   compressed column per nonzero (NNZ elems)
 *   - edgeToRow:      row index per nonzero         (NNZ elems)
 * for a total of ceil(M/16) + M + 1 + 3*NNZ index elements — the
 * memory inefficiency the paper's Observation 1 measures (~168% more
 * than CSR's M + 1 + NNZ).
 *
 * The nonzero ordering is CSR order (row-major, ascending column),
 * exactly what TCGNN-SpMM's FetchSparse stage walks.
 */
#ifndef DTC_FORMATS_TCF_H
#define DTC_FORMATS_TCF_H

#include <cstdint>
#include <vector>

#include "formats/sgt.h"
#include "matrix/csr.h"

namespace dtc {

/** The TC-GNN Compressed Format. */
class TcfMatrix
{
  public:
    /** Builds TCF from CSR (runs SGT internally). */
    static TcfMatrix build(const CsrMatrix& m, TcBlockShape shape = {});

    int64_t rows() const { return nRows; }
    int64_t cols() const { return nCols; }
    int64_t nnz() const { return static_cast<int64_t>(edgeListArr.size()); }
    int64_t numWindows() const
    {
        return static_cast<int64_t>(blockPartitionArr.size());
    }
    int64_t numTcBlocks() const { return nTcBlocks; }
    const TcBlockShape& shape() const { return blockShape; }

    /** TC blocks in each row window. */
    const std::vector<int32_t>& blockPartition() const
    {
        return blockPartitionArr;
    }

    /** CSR-style row offsets into the edge arrays. */
    const std::vector<int64_t>& nodePointer() const
    {
        return nodePointerArr;
    }

    /** Original column index of each nonzero (CSR order). */
    const std::vector<int32_t>& edgeList() const { return edgeListArr; }

    /** SGT-compressed column index of each nonzero. */
    const std::vector<int32_t>& edgeToColumn() const
    {
        return edgeToColumnArr;
    }

    /** Row index of each nonzero. */
    const std::vector<int32_t>& edgeToRow() const { return edgeToRowArr; }

    /** Nonzero values, aligned with edgeList. */
    const std::vector<float>& values() const { return valArr; }

    /** MeanNnzTC of the underlying condensation. */
    double meanNnzTc() const;

    /**
     * Index-array footprint in 32-bit-element units, as Observation 1
     * counts: ceil(M/16) + M + 1 + 3*NNZ.
     */
    int64_t indexElementCount() const;

  private:
    int64_t nRows = 0;
    int64_t nCols = 0;
    int64_t nTcBlocks = 0;
    TcBlockShape blockShape;
    std::vector<int32_t> blockPartitionArr;
    std::vector<int64_t> nodePointerArr;
    std::vector<int32_t> edgeListArr;
    std::vector<int32_t> edgeToColumnArr;
    std::vector<int32_t> edgeToRowArr;
    std::vector<float> valArr;
};

} // namespace dtc

#endif // DTC_FORMATS_TCF_H
