#include "formats/bell.h"

#include <algorithm>

#include "common/check.h"

namespace dtc {

int64_t
BellMatrix::footprintBytes() const
{
    // Computed from dimensions so structure-only builds report the
    // footprint a full materialization would need.
    return nBlockRows * nEllCols * (bSize * bSize * 4 + 4);
}

double
BellMatrix::fillEfficiency() const
{
    const int64_t slots = nBlockRows * nEllCols * bSize * bSize;
    return slots > 0 ? static_cast<double>(nNnz) /
                           static_cast<double>(slots)
                     : 0.0;
}

BellBuildResult
bellTryBuild(const CsrMatrix& m, int64_t block_size,
             int64_t mem_limit_bytes, bool materialize_values)
{
    DTC_CHECK(block_size > 0);
    BellBuildResult res;

    const int64_t block_rows = (m.rows() + block_size - 1) / block_size;
    const auto& row_ptr = m.rowPtr();
    const auto& col_idx = m.colIdx();

    // Pass 1: distinct block columns per block row.
    std::vector<std::vector<int32_t>> bcols(
        static_cast<size_t>(block_rows));
    std::vector<int32_t> scratch;
    int64_t ell_cols = 0;
    int64_t real_blocks = 0;
    for (int64_t br = 0; br < block_rows; ++br) {
        const int64_t row_lo = br * block_size;
        const int64_t row_hi = std::min(row_lo + block_size, m.rows());
        scratch.clear();
        for (int64_t r = row_lo; r < row_hi; ++r) {
            for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
                scratch.push_back(
                    static_cast<int32_t>(col_idx[k] / block_size));
        }
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()),
                      scratch.end());
        bcols[br] = scratch;
        ell_cols = std::max(
            ell_cols, static_cast<int64_t>(scratch.size()));
        real_blocks += static_cast<int64_t>(scratch.size());
    }

    res.projectedBytes =
        block_rows * ell_cols * (block_size * block_size * 4 + 4);
    if (res.projectedBytes > mem_limit_bytes) {
        res.oom = true;
        return res;
    }

    BellMatrix& b = res.matrix;
    b.nRows = m.rows();
    b.nCols = m.cols();
    b.nNnz = m.nnz();
    b.bSize = block_size;
    b.nBlockRows = block_rows;
    b.nEllCols = ell_cols;
    b.nRealBlocks = real_blocks;
    b.blockColArr.assign(
        static_cast<size_t>(block_rows * ell_cols), BellMatrix::kPadBlock);
    if (materialize_values) {
        b.valArr.assign(static_cast<size_t>(block_rows * ell_cols *
                                            block_size * block_size),
                        0.0f);
    }

    // Pass 2: scatter values into their dense blocks.
    for (int64_t br = 0; br < block_rows; ++br) {
        const auto& cols = bcols[br];
        for (size_t s = 0; s < cols.size(); ++s)
            b.blockColArr[br * ell_cols + static_cast<int64_t>(s)] =
                cols[s];
        if (!materialize_values)
            continue;

        const int64_t row_lo = br * block_size;
        const int64_t row_hi = std::min(row_lo + block_size, m.rows());
        for (int64_t r = row_lo; r < row_hi; ++r) {
            for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
                int32_t bc = static_cast<int32_t>(
                    col_idx[k] / block_size);
                auto it =
                    std::lower_bound(cols.begin(), cols.end(), bc);
                int64_t slot = it - cols.begin();
                int64_t lr = r - row_lo;
                int64_t lc = col_idx[k] % block_size;
                b.valArr[((br * ell_cols + slot) * block_size + lr) *
                             block_size +
                         lc] = m.values()[k];
            }
        }
    }
    return res;
}

} // namespace dtc
