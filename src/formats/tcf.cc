#include "formats/tcf.h"

#include <algorithm>

#include "common/check.h"

namespace dtc {

TcfMatrix
TcfMatrix::build(const CsrMatrix& m, TcBlockShape shape)
{
    SgtResult sgt = sgtCondense(m, shape);

    TcfMatrix t;
    t.nRows = m.rows();
    t.nCols = m.cols();
    t.nTcBlocks = sgt.numTcBlocks;
    t.blockShape = shape;
    t.blockPartitionArr = sgt.blocksPerWindow;
    t.nodePointerArr = m.rowPtr();
    t.edgeListArr = m.colIdx();
    t.valArr = m.values();
    t.edgeToColumnArr.resize(static_cast<size_t>(m.nnz()));
    t.edgeToRowArr.resize(static_cast<size_t>(m.nnz()));

    const auto& row_ptr = m.rowPtr();
    const auto& col_idx = m.colIdx();
    for (int64_t w = 0; w < sgt.numWindows; ++w) {
        const int64_t row_lo = w * shape.windowHeight;
        const int64_t row_hi =
            std::min(row_lo + shape.windowHeight, m.rows());
        const int32_t* cols_begin = sgt.windowColsBegin(w);
        const int32_t* cols_end = cols_begin + sgt.windowColCount(w);
        for (int64_t r = row_lo; r < row_hi; ++r) {
            for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
                // Compressed column = rank of the original column in
                // the window's sorted distinct-column list.
                auto it = std::lower_bound(cols_begin, cols_end,
                                           col_idx[k]);
                DTC_ASSERT(it != cols_end && *it == col_idx[k]);
                t.edgeToColumnArr[k] =
                    static_cast<int32_t>(it - cols_begin);
                t.edgeToRowArr[k] = static_cast<int32_t>(r);
            }
        }
    }
    return t;
}

double
TcfMatrix::meanNnzTc() const
{
    return nTcBlocks > 0
               ? static_cast<double>(nnz()) /
                     static_cast<double>(nTcBlocks)
               : 0.0;
}

int64_t
TcfMatrix::indexElementCount() const
{
    const int64_t windows =
        (nRows + blockShape.windowHeight - 1) / blockShape.windowHeight;
    return windows + nRows + 1 + 3 * nnz();
}

} // namespace dtc
