/**
 * @file
 * Sparse Graph Translation (SGT) condensation.
 *
 * SGT (introduced by TC-GNN, reused by DTC-SpMM) partitions a sparse
 * matrix into row windows of height 16 and, within each window,
 * compresses the distinct nonzero column indices "to the left": each
 * distinct original column gets a compressed index 0..c-1.  Groups of
 * 8 consecutive compressed columns x 16 rows form TC blocks — the
 * 16x8 operand tiles consumed by tensor-core MMA.
 *
 * The condensation quality metric is MeanNnzTC = NNZ / NumTCBlocks
 * (paper Observation 2): higher means denser TC blocks, less tensor-
 * core work per nonzero and more reuse of B rows.
 */
#ifndef DTC_FORMATS_SGT_H
#define DTC_FORMATS_SGT_H

#include <cstdint>
#include <vector>

#include "matrix/csr.h"

namespace dtc {

/** TC-block geometry shared by all condensed formats. */
struct TcBlockShape
{
    int windowHeight = 16; ///< Rows per row window (MMA m).
    int blockWidth = 8;    ///< Compressed columns per TC block (MMA n... k).
};

/** Result of SGT condensation of one matrix. */
struct SgtResult
{
    int64_t rows = 0;
    int64_t cols = 0;
    int64_t nnz = 0;
    TcBlockShape shape;

    /** Number of row windows: ceil(rows / windowHeight). */
    int64_t numWindows = 0;

    /** Start of each window's distinct-column list in windowCols. */
    std::vector<int64_t> windowColOffset;

    /**
     * Concatenated per-window distinct original column indices in
     * ascending order; the position within a window's slice is the
     * compressed column index SGT assigns.
     */
    std::vector<int32_t> windowCols;

    /** TC blocks per window: ceil(distinctCols / blockWidth). */
    std::vector<int32_t> blocksPerWindow;

    /** Total TC blocks across all windows. */
    int64_t numTcBlocks = 0;

    /** NNZ / NumTCBlocks — the condensation-quality metric. */
    double meanNnzTc = 0.0;

    /** Number of distinct columns in window @p w. */
    int64_t
    windowColCount(int64_t w) const
    {
        return windowColOffset[w + 1] - windowColOffset[w];
    }

    /** Pointer to window @p w's distinct columns. */
    const int32_t*
    windowColsBegin(int64_t w) const
    {
        return windowCols.data() + windowColOffset[w];
    }
};

/**
 * Runs SGT condensation over @p m.
 *
 * O(NNZ log W) where W is the max window population: per window the
 * distinct columns of up to windowHeight sorted rows are merged.
 */
SgtResult sgtCondense(const CsrMatrix& m, TcBlockShape shape = {});

} // namespace dtc

#endif // DTC_FORMATS_SGT_H
