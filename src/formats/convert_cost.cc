#include "formats/convert_cost.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dtc {

LaunchResult
meTcfConversionCost(const CsrMatrix& m, const CostModel& cm)
{
    const int64_t windows = (m.rows() + 15) / 16;
    std::vector<TbWork> tbs(static_cast<size_t>(windows));
    const auto& row_ptr = m.rowPtr();

    for (int64_t w = 0; w < windows; ++w) {
        TbWork& tb = tbs[static_cast<size_t>(w)];
        const int64_t row_lo = w * 16;
        const int64_t row_hi = std::min<int64_t>(row_lo + 16, m.rows());
        const double e = static_cast<double>(row_ptr[row_hi] -
                                             row_ptr[row_lo]);
        if (e == 0.0) {
            tb.fixedCycles = 300.0;
            continue;
        }

        // Multi-pass conversion: radix-sort the (window, column)
        // pairs (4 passes, read + write + histogram each), then
        // dedup, prefix-sum and scatter — each pass is a separate
        // kernel over global memory with poor access regularity.
        tb.bytesDram += e * 48.0;
        tb.ldg = e * 6.0 / 64.0;
        const double log_e = std::max(1.0, std::log2(e));
        tb.imad = e * log_e * log_e / 32.0 * 8.0;
        tb.sts = e * log_e / 32.0;
        tb.lds = tb.sts;
        tb.syncs = 8.0 * log_e;
        // Scatter TCLocalId (1B), values (4B), SparseAtoB + offsets.
        tb.bytesDram += e * 5.0 + (e / 8.0) * 9.0 * 4.0;
        tb.execSerialFrac = 0.9;
        tb.memSerialFrac = 0.8;
        // Scattered sort/scatter passes sustain little bandwidth.
        tb.memEfficiency = 0.20;
        tb.fixedCycles = 1500.0;
    }

    return cm.launch("ME-TCF conversion (GPU)", tbs, 0.0, 0.0);
}

double
tcgnnCpuConversionMs(const CsrMatrix& m)
{
    // Single-threaded CPU pass: per nonzero a hash lookup to assign
    // the compressed column plus three array writes; per window a
    // map rebuild.  ~80 ns/nonzero matches the magnitude the paper
    // reports (minutes for 100M-nonzero graphs).
    return static_cast<double>(m.nnz()) * 80e-6 +
           static_cast<double>(m.rows()) * 5e-6;
}

} // namespace dtc
