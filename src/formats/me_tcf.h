/**
 * @file
 * ME-TCF — DTC-SpMM's Memory-Efficient TC Format (paper Section 4.2).
 *
 * ME-TCF stores an SGT-condensed matrix in four index arrays:
 *   - rowWindowOffset: first TC block of each window (ceil(M/16)+1)
 *   - tcOffset:        first nonzero of each TC block (NumTCBlocks+1)
 *   - tcLocalId:       8-bit local position of each nonzero inside its
 *                      16x8 block: localRow*8 + localCol, in [0, 127]
 *                      (NNZ bytes = NNZ/4 32-bit elements)
 *   - sparseAtoB:      original B-row index of each of a block's 8
 *                      columns, kPadColumn for padding
 *                      (NumTCBlocks*8 elements)
 * Total: ceil(M/16) + 9*NumTCBlocks + NNZ/4 + 2 elements — the memory
 * reduction vs. TCF that Observation 1 / Section 5.3 quantify.
 *
 * Nonzeros are stored grouped by TC block (ascending local id within a
 * block), which is the traversal order of the DTC-SpMM runtime kernel
 * and what makes index-precomputing possible: a thread knows the
 * nonzero's register slot directly from tcLocalId with no coordinate
 * arithmetic.
 */
#ifndef DTC_FORMATS_ME_TCF_H
#define DTC_FORMATS_ME_TCF_H

#include <cstdint>
#include <vector>

#include "formats/sgt.h"
#include "matrix/csr.h"
#include "matrix/dense.h"

namespace dtc {

/** The Memory-Efficient TC Format. */
class MeTcfMatrix
{
  public:
    /** Sentinel in sparseAtoB for padded (absent) block columns. */
    static constexpr int32_t kPadColumn = -1;

    /** Builds ME-TCF from CSR (runs SGT internally). */
    static MeTcfMatrix build(const CsrMatrix& m, TcBlockShape shape = {});

    /**
     * Reassembles an ME-TCF matrix from its raw arrays (validated) —
     * the deserialization path of formats/serialize.h.
     */
    static MeTcfMatrix fromParts(int64_t rows, int64_t cols,
                                 TcBlockShape shape,
                                 std::vector<int64_t> row_window_offset,
                                 std::vector<int64_t> tc_offset,
                                 std::vector<uint8_t> tc_local_id,
                                 std::vector<int32_t> sparse_a_to_b,
                                 std::vector<float> values);

    int64_t rows() const { return nRows; }
    int64_t cols() const { return nCols; }
    int64_t nnz() const { return static_cast<int64_t>(localIdArr.size()); }
    int64_t numWindows() const
    {
        return static_cast<int64_t>(rowWindowOffsetArr.size()) - 1;
    }
    int64_t numTcBlocks() const
    {
        return static_cast<int64_t>(tcOffsetArr.size()) - 1;
    }
    const TcBlockShape& shape() const { return blockShape; }

    /** First TC block of each row window (size numWindows()+1). */
    const std::vector<int64_t>& rowWindowOffset() const
    {
        return rowWindowOffsetArr;
    }

    /** First nonzero of each TC block (size numTcBlocks()+1). */
    const std::vector<int64_t>& tcOffset() const { return tcOffsetArr; }

    /** 8-bit local position of each nonzero inside its block. */
    const std::vector<uint8_t>& tcLocalId() const { return localIdArr; }

    /** Original B-row per block column (size numTcBlocks()*8). */
    const std::vector<int32_t>& sparseAtoB() const { return sparseAtoBArr; }

    /** Nonzero values aligned with tcLocalId. */
    const std::vector<float>& values() const { return valArr; }

    /** TC blocks in row window @p w. */
    int64_t
    blocksInWindow(int64_t w) const
    {
        return rowWindowOffsetArr[w + 1] - rowWindowOffsetArr[w];
    }

    /** Nonzeros in TC block @p b. */
    int64_t
    nnzInBlock(int64_t b) const
    {
        return tcOffsetArr[b + 1] - tcOffsetArr[b];
    }

    /** MeanNnzTC = NNZ / NumTCBlocks. */
    double meanNnzTc() const;

    /**
     * Index footprint in 32-bit-element units per the paper's
     * accounting: ceil(M/16) + 9*NumTCBlocks + NNZ/4 + 2.
     */
    int64_t indexElementCount() const;

    /**
     * Reconstructs the dense 16x8 tile of TC block @p b into
     * @p tile (row-major 16x8, zero-filled first).  Used by tests and
     * by the functional tensor-core kernels.
     */
    void expandBlock(int64_t b, float* tile) const;

    /** Validates all structural invariants (throws on violation). */
    void validate() const;

    /** Converts back to CSR (for round-trip testing). */
    CsrMatrix toCsr() const;

  private:
    int64_t nRows = 0;
    int64_t nCols = 0;
    TcBlockShape blockShape;
    std::vector<int64_t> rowWindowOffsetArr;
    std::vector<int64_t> tcOffsetArr;
    std::vector<uint8_t> localIdArr;
    std::vector<int32_t> sparseAtoBArr;
    std::vector<float> valArr;
};

} // namespace dtc

#endif // DTC_FORMATS_ME_TCF_H
