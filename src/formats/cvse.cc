#include "formats/cvse.h"

#include <algorithm>

#include "common/check.h"

namespace dtc {

CvseMatrix
CvseMatrix::build(const CsrMatrix& m, int64_t vec_len)
{
    DTC_CHECK(vec_len > 0);
    CvseMatrix v;
    v.nRows = m.rows();
    v.nCols = m.cols();
    v.nNnz = m.nnz();
    v.vLen = vec_len;

    const int64_t panels = (m.rows() + vec_len - 1) / vec_len;
    v.panelOffsetArr.resize(static_cast<size_t>(panels) + 1, 0);

    const auto& row_ptr = m.rowPtr();
    const auto& col_idx = m.colIdx();
    const auto& vals = m.values();

    std::vector<int32_t> scratch;
    for (int64_t p = 0; p < panels; ++p) {
        const int64_t row_lo = p * vec_len;
        const int64_t row_hi = std::min(row_lo + vec_len, m.rows());
        scratch.clear();
        for (int64_t r = row_lo; r < row_hi; ++r) {
            scratch.insert(scratch.end(),
                           col_idx.begin() + row_ptr[r],
                           col_idx.begin() + row_ptr[r + 1]);
        }
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()),
                      scratch.end());

        const int64_t first_vec = static_cast<int64_t>(v.vecColArr.size());
        v.vecColArr.insert(v.vecColArr.end(), scratch.begin(),
                           scratch.end());
        v.valArr.resize(v.vecColArr.size() * vec_len, 0.0f);

        for (int64_t r = row_lo; r < row_hi; ++r) {
            for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
                auto it = std::lower_bound(scratch.begin(),
                                           scratch.end(), col_idx[k]);
                int64_t vec = first_vec + (it - scratch.begin());
                v.valArr[vec * vec_len + (r - row_lo)] = vals[k];
            }
        }
        v.panelOffsetArr[p + 1] =
            static_cast<int64_t>(v.vecColArr.size());
    }
    return v;
}

double
CvseMatrix::meanNnzPerVector() const
{
    return numVectors() > 0 ? static_cast<double>(nNnz) /
                                  static_cast<double>(numVectors())
                            : 0.0;
}

double
CvseMatrix::fillEfficiency() const
{
    if (valArr.empty())
        return 0.0;
    return static_cast<double>(nNnz) / static_cast<double>(valArr.size());
}

int64_t
CvseMatrix::footprintBytes() const
{
    return static_cast<int64_t>(valArr.size()) * 4 +
           static_cast<int64_t>(vecColArr.size()) * 4 +
           static_cast<int64_t>(panelOffsetArr.size()) * 4;
}

} // namespace dtc
