/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All dataset generators and randomized algorithms in this library draw
 * from Rng so that every experiment is reproducible from a seed.  The
 * core generator is SplitMix64 (Steele et al., "Fast splittable
 * pseudorandom number generators"), which is tiny, fast, and passes
 * BigCrush when used as a 64-bit stream.
 */
#ifndef DTC_COMMON_RNG_H
#define DTC_COMMON_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dtc {

/**
 * A small deterministic PRNG with convenience samplers.
 *
 * Not thread-safe; create one per thread/task.  Copyable so generator
 * state can be forked cheaply for sub-streams.
 */
class Rng
{
  public:
    /** Creates a generator seeded with @p seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state(seed) {}

    /** Returns the next raw 64-bit value. */
    uint64_t next64();

    /** Returns a uniform integer in [0, bound). @pre bound > 0. */
    uint64_t nextBounded(uint64_t bound);

    /** Returns a uniform double in [0, 1). */
    double nextDouble();

    /** Returns a uniform float in [lo, hi). */
    float nextFloat(float lo, float hi);

    /** Returns a uniform integer in [lo, hi] inclusive. */
    int64_t nextInt(int64_t lo, int64_t hi);

    /** Returns true with probability @p p. */
    bool nextBernoulli(double p) { return nextDouble() < p; }

    /**
     * Samples from a Zipf distribution over {0, ..., n-1} with skew
     * @p s (s = 0 is uniform; larger s is more skewed).  Uses rejection
     * sampling (Hormann's method) so setup is O(1).
     */
    uint64_t nextZipf(uint64_t n, double s);

    /** Fisher-Yates shuffles @p v in place. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = nextBounded(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Samples @p k distinct values from [0, n) without replacement.
     * Uses Floyd's algorithm; O(k) expected time, O(k) space.
     */
    std::vector<uint64_t> sampleWithoutReplacement(uint64_t n, uint64_t k);

    /** Returns a forked sub-stream generator (independent sequence). */
    Rng fork() { return Rng(next64() ^ 0xda3e39cb94b95bdbull); }

    /**
     * Raw generator state, for checkpointing.  Restoring the bits
     * with setStateBits() resumes the exact same stream — the pair
     * exists so crash-safe training checkpoints can capture the RNG
     * cursor and replay bitwise-identically.
     */
    uint64_t stateBits() const { return state; }

    /** Restores a state captured with stateBits(). */
    void setStateBits(uint64_t bits) { state = bits; }

    /**
     * Returns the @p index-th derived sub-stream WITHOUT advancing
     * this generator.  This is the parallel-safe way to randomize a
     * parallelFor body: fork one stream per chunk (or per case) from
     * an immutable parent so no mutable Rng is ever shared across
     * threads, and the streams do not depend on execution order or
     * thread count.
     */
    Rng forkAt(uint64_t index) const;

  private:
    uint64_t state;
};

} // namespace dtc

#endif // DTC_COMMON_RNG_H
