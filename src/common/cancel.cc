#include "common/cancel.h"

#include "common/error.h"
#include "obs/trace.h"

namespace dtc {

namespace {

thread_local CancelToken* tlsCurrentToken = nullptr;

} // namespace

void
CancelToken::setDeadlineInMs(double rel_ms)
{
    deadlineUs = obs::monotonicNowUs() + rel_ms * 1e3;
}

bool
CancelToken::tripped()
{
    if (state.load(std::memory_order_relaxed) != 0)
        return true;
    if (checkBudget.load(std::memory_order_relaxed) > 0 &&
        checkBudget.fetch_sub(1, std::memory_order_relaxed) == 1) {
        trip(2);
        return true;
    }
    if (deadlineUs >= 0.0 && obs::monotonicNowUs() > deadlineUs) {
        trip(2);
        return true;
    }
    return false;
}

void
CancelToken::check()
{
    if (!tripped())
        return;
    if (state.load(std::memory_order_relaxed) == 1) {
        throw DtcError(ErrorCode::Cancelled, "operation cancelled",
                       {.component = "cancel"});
    }
    throw DtcError(ErrorCode::DeadlineExceeded, "deadline exceeded",
                   {.component = "cancel"});
}

namespace cancel {

CancelToken*
current()
{
    return tlsCurrentToken;
}

ScopedCancel::ScopedCancel(CancelToken* token) : prev(tlsCurrentToken)
{
    tlsCurrentToken = token;
}

ScopedCancel::~ScopedCancel()
{
    tlsCurrentToken = prev;
}

} // namespace cancel
} // namespace dtc
