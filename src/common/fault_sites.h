/**
 * @file
 * Central registry of fault-injection site names.
 *
 * DTC_FAULT_POINT sites used to be string literals scattered across
 * call sites; a typo in a test's fault::arm() (or in a DTC_FAULT env
 * spec) armed a site that no code would ever hit, and the "injected"
 * failure silently never fired.  Every real site now has exactly one
 * constant here; call sites reference the constant, arm()/DTC_FAULT
 * reject names that are not registered (listing the valid ones), and
 * tests/test_fault.cc enumerates allFaultSites() with a per-site
 * driver so an orphaned registration can never go un-exercised.
 *
 * Ad-hoc sites for unit tests and benchmarks use the "test." /
 * "bench." prefixes, which are exempt from registration (they name
 * probes in test code, not failure-capable library sites).
 */
#ifndef DTC_COMMON_FAULT_SITES_H
#define DTC_COMMON_FAULT_SITES_H

#include <string>
#include <vector>

namespace dtc {
namespace fault {
namespace sites {

// Preprocessing / IO pipeline (PR 2).
inline constexpr char kMmIoRead[] = "mm_io.read";
inline constexpr char kSerializeReadArray[] = "serialize.read_array";
inline constexpr char kSgtCondenseChunk[] = "sgt.condense.chunk";
inline constexpr char kMeTcfConvert[] = "me_tcf.convert";
inline constexpr char kTunerPrepare[] = "tuner.prepare";
inline constexpr char kSelectorDecide[] = "selector.decide";

// GNN training loop.
inline constexpr char kTrainerStep[] = "trainer.step";
inline constexpr char kTrainerEpochEnd[] = "trainer.epoch_end";
inline constexpr char kTrainerCheckpointWrite[] =
    "trainer.checkpoint.write";
inline constexpr char kTrainerCheckpointRename[] =
    "trainer.checkpoint.rename";

// Resilient runtime (src/runtime/).
inline constexpr char kRuntimeCompute[] = "runtime.compute";
inline constexpr char kRuntimeGuardCheck[] = "runtime.guard.check";

} // namespace sites

/** Every registered library fault site, sorted. */
const std::vector<std::string>& allFaultSites();

/**
 * True when @p site may be armed: either registered above, or an
 * ad-hoc "test." / "bench."-prefixed probe.
 */
bool isValidFaultSite(const std::string& site);

/** Comma-separated registry listing for error messages. */
std::string validFaultSiteList();

} // namespace fault
} // namespace dtc

#endif // DTC_COMMON_FAULT_SITES_H
