#include "common/rng.h"

#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace dtc {

uint64_t
Rng::next64()
{
    // SplitMix64 step.
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    DTC_CHECK(bound > 0);
    // Lemire's nearly-divisionless bounded sampling.
    uint64_t x = next64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
        uint64_t t = -bound % bound;
        while (l < t) {
            x = next64();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

float
Rng::nextFloat(float lo, float hi)
{
    return lo + static_cast<float>(nextDouble()) * (hi - lo);
}

int64_t
Rng::nextInt(int64_t lo, int64_t hi)
{
    DTC_CHECK(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBounded(span));
}

uint64_t
Rng::nextZipf(uint64_t n, double s)
{
    DTC_CHECK(n > 0);
    if (n == 1 || s <= 0.0)
        return nextBounded(n);

    // Rejection-inversion sampling (W. Hormann, G. Derflinger).
    const double nd = static_cast<double>(n);
    auto h = [s](double x) {
        // Integral of x^-s.
        if (s == 1.0)
            return std::log(x);
        return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
    };
    auto hInv = [s](double y) {
        if (s == 1.0)
            return std::exp(y);
        return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
    };
    const double hX1 = h(1.5) - 1.0;
    const double hN = h(nd + 0.5);
    for (;;) {
        double u = hX1 + nextDouble() * (hN - hX1);
        double x = hInv(u);
        uint64_t k = static_cast<uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n)
            k = n;
        double kd = static_cast<double>(k);
        if (u >= h(kd + 0.5) - std::pow(kd, -s))
            return k - 1;
    }
}

Rng
Rng::forkAt(uint64_t index) const
{
    // SplitMix64-style finalizer over (state, index): decorrelates
    // the derived seed from both the parent stream and neighbouring
    // indices without touching the parent's state.
    uint64_t z = state + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return Rng(z ^ (z >> 31));
}

std::vector<uint64_t>
Rng::sampleWithoutReplacement(uint64_t n, uint64_t k)
{
    DTC_CHECK(k <= n);
    // Floyd's algorithm: for j = n-k .. n-1 pick t in [0, j]; insert t
    // unless already present, else insert j.
    std::unordered_set<uint64_t> chosen;
    chosen.reserve(k * 2);
    std::vector<uint64_t> out;
    out.reserve(k);
    for (uint64_t j = n - k; j < n; ++j) {
        uint64_t t = nextBounded(j + 1);
        if (chosen.count(t)) {
            chosen.insert(j);
            out.push_back(j);
        } else {
            chosen.insert(t);
            out.push_back(t);
        }
    }
    return out;
}

} // namespace dtc
