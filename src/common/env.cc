#include "common/env.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/error.h"

namespace dtc {
namespace env {

int64_t
parseInt64(const std::string& text, const char* what, int64_t lo,
           int64_t hi)
{
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (text.empty() || end == text.c_str() || *end != '\0' ||
        errno == ERANGE) {
        DTC_RAISE(ErrorCode::InvalidInput,
                  what << " is not an integer: \"" << text << "\"");
    }
    if (v < lo || v > hi) {
        DTC_RAISE(ErrorCode::InvalidInput,
                  what << " = " << v << " is outside [" << lo << ", "
                       << hi << "]");
    }
    return static_cast<int64_t>(v);
}

std::optional<int64_t>
readInt64(const char* name, int64_t lo, int64_t hi)
{
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0')
        return std::nullopt;
    return parseInt64(raw, name, lo, hi);
}

std::optional<double>
readDouble(const char* name, double lo, double hi)
{
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0')
        return std::nullopt;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(raw, &end);
    if (end == raw || *end != '\0' || errno == ERANGE ||
        !std::isfinite(v)) {
        DTC_RAISE(ErrorCode::InvalidInput,
                  name << " is not a finite number: \"" << raw
                       << "\"");
    }
    if (v < lo || v > hi) {
        DTC_RAISE(ErrorCode::InvalidInput,
                  name << " = " << v << " is outside [" << lo << ", "
                       << hi << "]");
    }
    return v;
}

std::optional<std::string>
readString(const char* name)
{
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0')
        return std::nullopt;
    return std::string(raw);
}

} // namespace env
} // namespace dtc
