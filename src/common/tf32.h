/**
 * @file
 * TF32 numeric emulation.
 *
 * NVIDIA's TF32 tensor-core precision keeps FP32's 8-bit exponent but
 * truncates the mantissa to 10 explicit bits before the multiply; the
 * accumulation happens in full FP32.  The functions here reproduce that
 * rounding (round-to-nearest-even on the dropped 13 mantissa bits) so
 * the tensor-core kernels in this library are numerically faithful to
 * the hardware the paper targets.
 */
#ifndef DTC_COMMON_TF32_H
#define DTC_COMMON_TF32_H

#include <cstdint>

namespace dtc {

/**
 * Rounds an FP32 value to TF32 (10 explicit mantissa bits,
 * round-to-nearest-even).  NaN and infinity pass through unchanged.
 */
float tf32Round(float x);

/**
 * One TF32 multiply-accumulate step: acc + tf32(a) * tf32(b), with the
 * product and accumulation carried out in FP32 as the hardware does.
 */
inline float
tf32Fma(float a, float b, float acc)
{
    return acc + tf32Round(a) * tf32Round(b);
}

/** Number of explicit mantissa bits kept by TF32. */
constexpr int kTf32MantissaBits = 10;

} // namespace dtc

#endif // DTC_COMMON_TF32_H
