#include "common/precision.h"

#include <bit>
#include <cmath>

namespace dtc {

namespace {

/** RNE-truncates the low @p drop mantissa bits of a finite float. */
float
roundMantissa(float x, int drop)
{
    if (!std::isfinite(x))
        return x;
    uint32_t bits = std::bit_cast<uint32_t>(x);
    const uint32_t lsb = (bits >> drop) & 1u;
    bits += (1u << (drop - 1)) - 1u + lsb;
    bits &= ~((1u << drop) - 1u);
    return std::bit_cast<float>(bits);
}

} // namespace

const char*
precisionName(Precision p)
{
    switch (p) {
      case Precision::Fp32:
        return "FP32";
      case Precision::Tf32:
        return "TF32";
      case Precision::Bf16:
        return "BF16";
      case Precision::Fp16:
        return "FP16";
    }
    return "?";
}

float
bf16Round(float x)
{
    // BF16 = FP32 with the mantissa cut to 7 bits; same exponent
    // range, so no saturation concerns.
    return roundMantissa(x, 23 - 7);
}

float
fp16Round(float x)
{
    if (!std::isfinite(x))
        return x;
    const float r = roundMantissa(x, 23 - 10);
    // FP16 range: max normal 65504; below the min normal the
    // hardware MMA path flushes to zero.
    if (std::abs(r) > 65504.0f)
        return std::copysign(
            std::numeric_limits<float>::infinity(), r);
    if (r != 0.0f && std::abs(r) < 6.103515625e-5f)
        return std::copysign(0.0f, r);
    return r;
}

float
roundToPrecision(float x, Precision p)
{
    switch (p) {
      case Precision::Fp32:
        return x;
      case Precision::Tf32:
        return tf32Round(x);
      case Precision::Bf16:
        return bf16Round(x);
      case Precision::Fp16:
        return fp16Round(x);
    }
    return x;
}

double
unitRoundoff(Precision p)
{
    switch (p) {
      case Precision::Fp32:
        return 0.0;
      case Precision::Tf32:
        return std::ldexp(1.0, -11);
      case Precision::Bf16:
        return std::ldexp(1.0, -8);
      case Precision::Fp16:
        return std::ldexp(1.0, -11);
    }
    return 0.0;
}

double
tcRateMultiplier(Precision p)
{
    switch (p) {
      case Precision::Fp32:
        return 0.0;
      case Precision::Tf32:
        return 1.0;
      case Precision::Bf16:
      case Precision::Fp16:
        return 2.0;
    }
    return 0.0;
}

} // namespace dtc
