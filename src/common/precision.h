/**
 * @file
 * Matrix-unit precision emulation beyond TF32.
 *
 * The paper targets TF32 but closes by noting the design "can be
 * extended to support other precisions".  This module provides the
 * operand-rounding semantics of the tensor-core input formats NVIDIA
 * supports for MMA with FP32 accumulation:
 *
 *   - TF32: 8-bit exponent, 10 explicit mantissa bits;
 *   - BF16: 8-bit exponent,  7 explicit mantissa bits;
 *   - FP16: 5-bit exponent, 10 explicit mantissa bits (values
 *           outside +-65504 saturate to infinity, subnormals flush);
 *   - FP32: pass-through (CUDA-core reference).
 *
 * All conversions round-to-nearest-even, matching hardware.
 */
#ifndef DTC_COMMON_PRECISION_H
#define DTC_COMMON_PRECISION_H

#include <cstdint>

#include "common/tf32.h"

namespace dtc {

/** Tensor-core operand precisions. */
enum class Precision
{
    Fp32, ///< No rounding (CUDA-core path).
    Tf32, ///< The paper's target precision.
    Bf16,
    Fp16,
};

/** Display name. */
const char* precisionName(Precision p);

/** Rounds @p x to BF16 (RNE), returned widened to float. */
float bf16Round(float x);

/** Rounds @p x to FP16 (RNE, saturating), widened to float. */
float fp16Round(float x);

/** Rounds @p x to the given operand precision. */
float roundToPrecision(float x, Precision p);

/**
 * Relative unit-roundoff of one operand conversion (2^-(mantissa+1));
 * 0 for FP32.  Used by accuracy tests to bound kernel error.
 */
double unitRoundoff(Precision p);

/**
 * Tensor-core MAC throughput multiplier relative to TF32 on
 * Ampere/Ada-class parts: FP16/BF16 run 2x, FP32 (CUDA cores) is
 * not a tensor-core path (returns 0).
 */
double tcRateMultiplier(Precision p);

} // namespace dtc

#endif // DTC_COMMON_PRECISION_H
