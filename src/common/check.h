/**
 * @file
 * Error-checking macros used across the library.
 *
 * DTC_CHECK is for user-facing precondition violations (bad arguments,
 * inconsistent matrix dimensions): it throws std::invalid_argument so
 * callers can recover.  DTC_ASSERT is for internal invariants that
 * indicate a library bug; it throws std::logic_error.
 */
#ifndef DTC_COMMON_CHECK_H
#define DTC_COMMON_CHECK_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace dtc {

namespace detail {

/** Builds the exception message for a failed check. */
inline std::string
checkMessage(const char* kind, const char* expr, const char* file, int line,
             const std::string& extra)
{
    std::ostringstream os;
    os << kind << " failed: (" << expr << ") at " << file << ":" << line;
    if (!extra.empty())
        os << " — " << extra;
    return os.str();
}

} // namespace detail

} // namespace dtc

/** Throws std::invalid_argument when a caller-visible precondition fails. */
#define DTC_CHECK(cond)                                                     \
    do {                                                                    \
        if (!(cond)) {                                                      \
            throw std::invalid_argument(::dtc::detail::checkMessage(        \
                "DTC_CHECK", #cond, __FILE__, __LINE__, ""));               \
        }                                                                   \
    } while (0)

/** DTC_CHECK with an extra human-readable message (streamable). */
#define DTC_CHECK_MSG(cond, msg)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream os_;                                         \
            os_ << msg;                                                     \
            throw std::invalid_argument(::dtc::detail::checkMessage(        \
                "DTC_CHECK", #cond, __FILE__, __LINE__, os_.str()));        \
        }                                                                   \
    } while (0)

/** Throws std::logic_error when an internal invariant is violated. */
#define DTC_ASSERT(cond)                                                    \
    do {                                                                    \
        if (!(cond)) {                                                      \
            throw std::logic_error(::dtc::detail::checkMessage(             \
                "DTC_ASSERT", #cond, __FILE__, __LINE__, ""));              \
        }                                                                   \
    } while (0)

#endif // DTC_COMMON_CHECK_H
