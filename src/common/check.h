/**
 * @file
 * Error-checking macros used across the library.
 *
 * DTC_CHECK is for user-facing precondition violations (bad arguments,
 * inconsistent matrix dimensions): it throws DtcError with code
 * InvalidInput — which derives std::invalid_argument, so callers that
 * predate the taxonomy keep recovering.  DTC_ASSERT is for internal
 * invariants that indicate a library bug; it throws DtcInternalError
 * (a std::logic_error).  For other codes use DTC_CHECK_CODE /
 * DTC_RAISE from common/error.h.
 */
#ifndef DTC_COMMON_CHECK_H
#define DTC_COMMON_CHECK_H

#include <sstream>
#include <stdexcept>
#include <string>

#include "common/error.h"

namespace dtc {

namespace detail {

/** Builds the exception message for a failed check. */
inline std::string
checkMessage(const char* kind, const char* expr, const char* file, int line,
             const std::string& extra)
{
    std::ostringstream os;
    os << kind << " failed: (" << expr << ") at " << file << ":" << line;
    if (!extra.empty())
        os << " — " << extra;
    return os.str();
}

} // namespace detail

} // namespace dtc

/** Throws DtcError(InvalidInput) when a precondition fails. */
#define DTC_CHECK(cond)                                                     \
    do {                                                                    \
        if (!(cond)) {                                                      \
            throw ::dtc::DtcError(                                          \
                ::dtc::ErrorCode::InvalidInput,                             \
                ::dtc::detail::checkMessage("DTC_CHECK", #cond, __FILE__,   \
                                            __LINE__, ""));                 \
        }                                                                   \
    } while (0)

/** DTC_CHECK with an extra human-readable message (streamable). */
#define DTC_CHECK_MSG(cond, msg)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream os_;                                         \
            os_ << msg;                                                     \
            throw ::dtc::DtcError(                                          \
                ::dtc::ErrorCode::InvalidInput,                             \
                ::dtc::detail::checkMessage("DTC_CHECK", #cond, __FILE__,   \
                                            __LINE__, os_.str()));          \
        }                                                                   \
    } while (0)

/** Throws DtcInternalError when an internal invariant is violated. */
#define DTC_ASSERT(cond)                                                    \
    do {                                                                    \
        if (!(cond)) {                                                      \
            throw ::dtc::DtcInternalError(::dtc::detail::checkMessage(      \
                "DTC_ASSERT", #cond, __FILE__, __LINE__, ""));              \
        }                                                                   \
    } while (0)

#endif // DTC_COMMON_CHECK_H
