#include "common/fault.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/env.h"
#include "common/fault_sites.h"
#include "common/parallel.h"
#include "obs/metrics.h"

namespace dtc {
namespace fault {

namespace detail {

std::atomic<int> gState{2}; // env not yet parsed

namespace {

struct SiteState
{
    FaultSpec spec;
    bool armed = false;
    int64_t serialHits = 0; ///< Program-order hits (outside chunks).
    bool fired = false;     ///< Each arming fires at most once.
};

std::mutex gMu;
std::map<std::string, SiteState>&
registry()
{
    static std::map<std::string, SiteState> sites;
    return sites;
}

/** Parses the env var once; caller holds gMu. */
void
parseEnvLocked()
{
    if (gState.load(std::memory_order_relaxed) != 2)
        return;
    const char* env = std::getenv("DTC_FAULT");
    if (env == nullptr || *env == '\0') {
        gState.store(0, std::memory_order_relaxed);
        return;
    }
    // armFromSpec re-enters the lock; parse inline instead.
    std::string spec(env);
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string one = spec.substr(pos, comma - pos);
        pos = comma + 1;
        const size_t c1 = one.find(':');
        const size_t c2 =
            c1 == std::string::npos ? std::string::npos
                                    : one.find(':', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos) {
            gState.store(0, std::memory_order_relaxed);
            throw DtcError(ErrorCode::InvalidInput,
                           "DTC_FAULT entry is not "
                           "<site>:<nth>:<code>: " +
                               one,
                           {.component = "fault"});
        }
        const std::string site = one.substr(0, c1);
        if (!isValidFaultSite(site)) {
            // A typo'd site used to arm a fault no code would ever
            // hit — the injection silently never fired.  Fail loudly
            // and list what is valid.
            gState.store(0, std::memory_order_relaxed);
            throw DtcError(ErrorCode::InvalidInput,
                           "DTC_FAULT names unknown site \"" + site +
                               "\"; valid sites: " +
                               validFaultSiteList(),
                           {.component = "fault"});
        }
        SiteState& st = registry()[site];
        st.spec.site = site;
        try {
            st.spec.nth =
                env::parseInt64(one.substr(c1 + 1, c2 - c1 - 1),
                                "DTC_FAULT nth", 1, INT64_MAX);
            st.spec.code = parseErrorCode(one.substr(c2 + 1));
        } catch (...) {
            gState.store(0, std::memory_order_relaxed);
            throw;
        }
        st.armed = true;
        st.serialHits = 0;
        st.fired = false;
    }
    gState.store(1, std::memory_order_relaxed);
}

/** Recomputes gState from the registry; caller holds gMu. */
void
refreshStateLocked()
{
    if (gState.load(std::memory_order_relaxed) == 2)
        return; // env still pending; keep the slow path live
    for (const auto& [site, st] : registry()) {
        if (st.armed) {
            gState.store(1, std::memory_order_relaxed);
            return;
        }
    }
    gState.store(0, std::memory_order_relaxed);
}

} // namespace

void
hitSlow(const char* site)
{
    FaultSpec to_throw;
    bool fire = false;
    {
        std::lock_guard<std::mutex> lk(gMu);
        parseEnvLocked();
        if (gState.load(std::memory_order_relaxed) == 0)
            return;
        // While the subsystem is active, fault-site traversals are
        // tallied in the metrics registry (disarmed fault points
        // still cost nothing).
        obs::metrics::counter(std::string("fault.hits.") + site)
            .add(1);
        auto it = registry().find(site);
        if (it == registry().end())
            return;
        SiteState& st = it->second;
        const int64_t chunk = currentChunkOrdinal();
        int64_t ordinal;
        if (chunk >= 0) {
            // Positional ordinal: deterministic for any thread count.
            ordinal = chunk + 1;
        } else {
            ordinal = ++st.serialHits;
        }
        if (st.armed && !st.fired && ordinal == st.spec.nth) {
            st.fired = true;
            to_throw = st.spec;
            fire = true;
        }
    }
    if (fire) {
        throw DtcError(to_throw.code,
                       "fault injected (hit " +
                           std::to_string(to_throw.nth) + ")",
                       {.component = to_throw.site});
    }
}

} // namespace detail

void
arm(const std::string& site, int64_t nth, ErrorCode code)
{
    DTC_CHECK_CODE(nth >= 1, ErrorCode::InvalidInput,
                   "fault nth must be >= 1, got " << nth);
    DTC_CHECK_CODE(isValidFaultSite(site), ErrorCode::InvalidInput,
                   "unknown fault site \""
                       << site << "\"; valid sites: "
                       << validFaultSiteList()
                       << " (or a test./bench. prefix)");
    std::lock_guard<std::mutex> lk(detail::gMu);
    detail::SiteState& st = detail::registry()[site];
    st.spec = {site, nth, code};
    st.armed = true;
    st.serialHits = 0;
    st.fired = false;
    detail::gState.store(1, std::memory_order_relaxed);
}

void
armFromSpec(const std::string& spec)
{
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string one = spec.substr(pos, comma - pos);
        pos = comma + 1;
        const size_t c1 = one.find(':');
        const size_t c2 = c1 == std::string::npos
                              ? std::string::npos
                              : one.find(':', c1 + 1);
        DTC_CHECK_CODE(c1 != std::string::npos &&
                           c2 != std::string::npos,
                       ErrorCode::InvalidInput,
                       "fault spec entry is not <site>:<nth>:<code>: "
                           << one);
        const int64_t nth =
            env::parseInt64(one.substr(c1 + 1, c2 - c1 - 1),
                            "fault spec nth", 1, INT64_MAX);
        arm(one.substr(0, c1), nth,
            parseErrorCode(one.substr(c2 + 1)));
    }
}

void
disarm(const std::string& site)
{
    std::lock_guard<std::mutex> lk(detail::gMu);
    auto it = detail::registry().find(site);
    if (it != detail::registry().end())
        it->second.armed = false;
    detail::refreshStateLocked();
}

void
disarmAll()
{
    std::lock_guard<std::mutex> lk(detail::gMu);
    detail::registry().clear();
    if (detail::gState.load(std::memory_order_relaxed) != 2)
        detail::gState.store(0, std::memory_order_relaxed);
}

int64_t
hitCount(const std::string& site)
{
    std::lock_guard<std::mutex> lk(detail::gMu);
    auto it = detail::registry().find(site);
    return it == detail::registry().end() ? 0
                                          : it->second.serialHits;
}

std::vector<FaultSpec>
armedFaults()
{
    std::lock_guard<std::mutex> lk(detail::gMu);
    std::vector<FaultSpec> out;
    for (const auto& [site, st] : detail::registry()) {
        if (st.armed)
            out.push_back(st.spec);
    }
    return out;
}

void
reloadFromEnv()
{
    {
        std::lock_guard<std::mutex> lk(detail::gMu);
        detail::registry().clear();
        detail::gState.store(2, std::memory_order_relaxed);
    }
    // Parse eagerly so bad specs surface here, not at a random site.
    std::lock_guard<std::mutex> lk(detail::gMu);
    detail::parseEnvLocked();
}

} // namespace fault
} // namespace dtc
