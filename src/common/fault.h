/**
 * @file
 * Deterministic fault injection.
 *
 * Code marks failure-capable sites with DTC_FAULT_POINT("name"); a
 * disarmed fault point costs one relaxed atomic load and a predicted
 * branch (see bench_micro_host's BM_FaultPointDisarmed row).  Armed —
 * programmatically via fault::arm() / ScopedFault, or from the
 * environment via
 *
 *     DTC_FAULT=<site>:<nth>:<code>[,<site>:<nth>:<code>...]
 *     e.g.  DTC_FAULT=tuner.prepare:1:ResourceExhausted
 *
 * — the site throws DtcError(code) on its Nth hit (1-based), exactly
 * once per arming.
 *
 * Determinism contract:
 *   - Outside parallel regions, hits are counted per site in program
 *     order, so the Nth hit is the Nth call — deterministic.
 *   - Inside a parallelFor chunk, a hit's ordinal is the chunk's
 *     ordinal + 1 in the deterministic (begin, end, grain)
 *     decomposition — NOT its racy arrival order — so arming nth=K
 *     fires in chunk K-1 for every thread count, and parallelFor
 *     surfaces the same typed error at threads=1 and threads=8.
 *     (All hits within one chunk share the chunk's ordinal; the
 *     first to fire unwinds the chunk.)
 */
#ifndef DTC_COMMON_FAULT_H
#define DTC_COMMON_FAULT_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace dtc {
namespace fault {

/** One armed fault. */
struct FaultSpec
{
    std::string site; ///< DTC_FAULT_POINT name to fire at.
    int64_t nth = 1;  ///< 1-based hit ordinal to fire on.
    ErrorCode code = ErrorCode::Internal; ///< Code of the DtcError.
};

/**
 * Arms @p site to throw DtcError(@p code) on its @p nth hit.
 * Re-arming a site replaces its spec and resets its hit counter.
 */
void arm(const std::string& site, int64_t nth, ErrorCode code);

/** Arms from a "<site>:<nth>:<code>[,...]" spec (DTC_FAULT syntax). */
void armFromSpec(const std::string& spec);

/** Disarms one site (counter kept for hitCount()). */
void disarm(const std::string& site);

/** Disarms every site and clears all hit counters. */
void disarmAll();

/**
 * Serial-order hits observed at @p site while *any* fault was armed
 * (disarmed fault points skip all bookkeeping, so this is 0 unless
 * the subsystem was active).  Chunk-ordinal (parallel) hits are not
 * counted — their ordinal is positional, not cumulative.
 */
int64_t hitCount(const std::string& site);

/** Currently armed faults (for diagnostics). */
std::vector<FaultSpec> armedFaults();

/**
 * Re-reads DTC_FAULT after disarming everything.  The environment is
 * otherwise parsed once, on the first hit.
 */
void reloadFromEnv();

namespace detail {

/** 0 = disarmed, 1 = armed, 2 = environment not yet parsed. */
extern std::atomic<int> gState;

/** Slow path: parses the env on first use, counts, maybe throws. */
void hitSlow(const char* site);

} // namespace detail

/** Fault-point probe (prefer the DTC_FAULT_POINT macro). */
inline void
hit(const char* site)
{
    if (detail::gState.load(std::memory_order_relaxed) == 0)
        return;
    detail::hitSlow(site);
}

/** RAII arming for tests: arms in ctor, disarms the site in dtor. */
class ScopedFault
{
  public:
    ScopedFault(const std::string& site, int64_t nth, ErrorCode code)
        : armedSite(site)
    {
        arm(site, nth, code);
    }
    ~ScopedFault() { disarm(armedSite); }

    ScopedFault(const ScopedFault&) = delete;
    ScopedFault& operator=(const ScopedFault&) = delete;

  private:
    std::string armedSite;
};

} // namespace fault
} // namespace dtc

/** Names a failure-capable site; zero-cost while disarmed. */
#define DTC_FAULT_POINT(site) ::dtc::fault::hit(site)

#endif // DTC_COMMON_FAULT_H
