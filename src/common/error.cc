#include "common/error.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

namespace dtc {

const char*
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::InvalidInput:
        return "InvalidInput";
      case ErrorCode::CorruptData:
        return "CorruptData";
      case ErrorCode::ResourceExhausted:
        return "ResourceExhausted";
      case ErrorCode::Unsupported:
        return "Unsupported";
      case ErrorCode::Internal:
        return "Internal";
      case ErrorCode::DeadlineExceeded:
        return "DeadlineExceeded";
      case ErrorCode::Cancelled:
        return "Cancelled";
    }
    return "?";
}

ErrorCode
parseErrorCode(const std::string& name)
{
    std::string s = name;
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    for (ErrorCode code :
         {ErrorCode::InvalidInput, ErrorCode::CorruptData,
          ErrorCode::ResourceExhausted, ErrorCode::Unsupported,
          ErrorCode::Internal, ErrorCode::DeadlineExceeded,
          ErrorCode::Cancelled}) {
        std::string want = errorCodeName(code);
        std::transform(want.begin(), want.end(), want.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(std::tolower(c));
                       });
        if (s == want)
            return code;
    }
    throw DtcError(ErrorCode::InvalidInput,
                   "unknown error code name: " + name);
}

namespace detail {

std::string
errorMessage(ErrorCode code, const std::string& message,
             const ErrorContext& ctx)
{
    std::ostringstream os;
    os << "[" << errorCodeName(code) << "]";
    if (!ctx.component.empty())
        os << " " << ctx.component << ":";
    os << " " << message;
    const bool dims = ctx.rows >= 0 || ctx.cols >= 0;
    if (dims || ctx.byteOffset >= 0) {
        os << " (";
        if (dims)
            os << "dims=" << ctx.rows << "x" << ctx.cols;
        if (ctx.byteOffset >= 0)
            os << (dims ? ", " : "") << "byte " << ctx.byteOffset;
        os << ")";
    }
    return os.str();
}

} // namespace detail

DtcError::DtcError(ErrorCode code, const std::string& message,
                   ErrorContext context)
    : std::invalid_argument(
          detail::errorMessage(code, message, context)),
      errCode(code), ctx(std::move(context))
{}

DtcInternalError::DtcInternalError(const std::string& message,
                                   ErrorContext context)
    : std::logic_error(detail::errorMessage(ErrorCode::Internal,
                                            message, context)),
      ctx(std::move(context))
{}

Refusal
Refusal::refuse(ErrorCode code, std::string reason)
{
    Refusal r;
    r.code = code;
    r.reason = std::move(reason);
    return r;
}

bool
operator==(const Refusal& r, const char* reason)
{
    return r.reason == reason;
}

bool
operator==(const Refusal& r, const std::string& reason)
{
    return r.reason == reason;
}

std::ostream&
operator<<(std::ostream& os, const Refusal& r)
{
    if (r.ok())
        return os << "ok";
    return os << errorCodeName(r.code) << ": " << r.reason;
}

} // namespace dtc
