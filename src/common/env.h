/**
 * @file
 * Validated environment-variable parsing.
 *
 * Every DTC_* knob used to be read with strtol-and-shrug: a typo'd
 * value (DTC_NUM_THREADS=fuor, DTC_GUARD_SAMPLE=1%, DTC_DEADLINE_MS=
 * "10 ms") was silently ignored and the default ran instead — the
 * worst failure mode for a knob that exists to change behaviour.
 * These helpers parse strictly and raise a typed
 * DtcError(InvalidInput) naming the variable, the offending value and
 * the accepted range, so a misconfigured deployment fails loudly at
 * the first use instead of silently running with defaults.
 *
 * All helpers re-read the environment on every call (the established
 * pattern of DTC_NUM_THREADS / DTC_ENGINE, so tests can toggle knobs
 * with setenv); callers that need one-shot semantics cache the result
 * behind their own atomic.
 */
#ifndef DTC_COMMON_ENV_H
#define DTC_COMMON_ENV_H

#include <cstdint>
#include <optional>
#include <string>

namespace dtc {
namespace env {

/**
 * Integer knob: unset/empty returns nullopt; anything that is not a
 * whole base-10 integer within [lo, hi] raises
 * DtcError(InvalidInput).
 */
std::optional<int64_t> readInt64(const char* name, int64_t lo,
                                 int64_t hi);

/**
 * Floating-point knob: unset/empty returns nullopt; anything that is
 * not a finite decimal number within [lo, hi] raises
 * DtcError(InvalidInput).
 */
std::optional<double> readDouble(const char* name, double lo,
                                 double hi);

/** String knob: unset or empty returns nullopt. */
std::optional<std::string> readString(const char* name);

/**
 * Strictly parses @p text as a whole base-10 integer (no trailing
 * garbage, no empty string).  @p what labels the error message, e.g.
 * "DTC_FAULT nth".  Raises DtcError(InvalidInput) on anything else.
 */
int64_t parseInt64(const std::string& text, const char* what,
                   int64_t lo, int64_t hi);

} // namespace env
} // namespace dtc

#endif // DTC_COMMON_ENV_H
