#include "common/budget.h"

#include "common/check.h"
#include "gpusim/arch.h"

namespace dtc {

namespace {

thread_local const ResourceBudget* tlsBudgetOverride = nullptr;

} // namespace

ResourceBudget
ResourceBudget::defaults()
{
    const ArchSpec arch = ArchSpec::rtx4090();
    ResourceBudget b;
    b.conversionBytes = arch.deviceMemBytes;
    b.stagingBytes = arch.hostMemBytes;
    b.maxStructuredDim = 5000; // SparTA's scaled limit (DESIGN.md)
    return b;
}

const ResourceBudget&
ResourceBudget::current()
{
    if (tlsBudgetOverride != nullptr)
        return *tlsBudgetOverride;
    static const ResourceBudget global = defaults();
    return global;
}

void
ResourceBudget::checkConversion(int64_t bytes,
                                const char* component) const
{
    if (!allowsConversion(bytes)) {
        DTC_RAISE_CTX(ErrorCode::ResourceExhausted,
                      "conversion needs " << bytes
                          << " bytes, budget is " << conversionBytes,
                      (ErrorContext{.component = component}));
    }
}

void
ResourceBudget::checkStaging(int64_t bytes,
                             const char* component) const
{
    if (!allowsStaging(bytes)) {
        DTC_RAISE_CTX(ErrorCode::ResourceExhausted,
                      "staging needs " << bytes
                          << " bytes, budget is " << stagingBytes,
                      (ErrorContext{.component = component}));
    }
}

ScopedResourceBudget::ScopedResourceBudget(const ResourceBudget& budget)
    : active(budget), prev(tlsBudgetOverride)
{
    DTC_CHECK(budget.conversionBytes >= 0 &&
              budget.stagingBytes >= 0 &&
              budget.maxStructuredDim >= 0);
    tlsBudgetOverride = &active;
}

ScopedResourceBudget::~ScopedResourceBudget()
{
    tlsBudgetOverride = prev;
}

} // namespace dtc
