#include "common/fault_sites.h"

#include <algorithm>

namespace dtc {
namespace fault {

const std::vector<std::string>&
allFaultSites()
{
    static const std::vector<std::string> kSites = [] {
        std::vector<std::string> s = {
            sites::kMmIoRead,
            sites::kSerializeReadArray,
            sites::kSgtCondenseChunk,
            sites::kMeTcfConvert,
            sites::kTunerPrepare,
            sites::kSelectorDecide,
            sites::kTrainerStep,
            sites::kTrainerEpochEnd,
            sites::kTrainerCheckpointWrite,
            sites::kTrainerCheckpointRename,
            sites::kRuntimeCompute,
            sites::kRuntimeGuardCheck,
        };
        std::sort(s.begin(), s.end());
        return s;
    }();
    return kSites;
}

bool
isValidFaultSite(const std::string& site)
{
    if (site.rfind("test.", 0) == 0 || site.rfind("bench.", 0) == 0)
        return true;
    const std::vector<std::string>& all = allFaultSites();
    return std::binary_search(all.begin(), all.end(), site);
}

std::string
validFaultSiteList()
{
    std::string out;
    for (const std::string& s : allFaultSites()) {
        if (!out.empty())
            out += ", ";
        out += s;
    }
    return out;
}

} // namespace fault
} // namespace dtc
