#include "common/stopwatch.h"

namespace dtc {

void
Stopwatch::reset()
{
    start = std::chrono::steady_clock::now();
}

double
Stopwatch::elapsedSeconds() const
{
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start).count();
}

} // namespace dtc
