/**
 * @file
 * Parallel runtime for host-side hot paths: a lazily-initialized
 * global ThreadPool plus parallelFor / parallelReduce helpers.
 *
 * Determinism contract: the chunk decomposition of a range depends
 * only on (begin, end, grain) — never on the thread count — and
 * parallelReduce folds chunk partials in ascending chunk order.  A
 * body whose chunks write disjoint outputs (every use in this
 * library) therefore produces bitwise-identical results for any
 * DTC_NUM_THREADS, including the serial threads=1 fallback.
 *
 * Thread count resolution, strongest first:
 *   1. an active ScopedNumThreads override on the calling thread,
 *   2. the DTC_NUM_THREADS environment variable (re-read per call so
 *      tests can toggle it),
 *   3. std::thread::hardware_concurrency().
 *
 * Nested parallelFor calls (a body that itself calls parallelFor)
 * run the inner loop serially on the worker, so they can never
 * deadlock the pool.
 */
#ifndef DTC_COMMON_PARALLEL_H
#define DTC_COMMON_PARALLEL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dtc {

/**
 * A chunked-static thread pool.  One job runs at a time; workers and
 * the submitting thread pull task indices from a shared counter, so
 * scheduling is dynamic but the task set itself is fixed up front.
 *
 * Most code should not touch this class directly — use parallelFor /
 * parallelReduce, which drive the lazily-created global() pool.
 */
class ThreadPool
{
  public:
    /** Spawns @p num_workers worker threads (0 is valid). */
    explicit ThreadPool(int num_workers);

    /** Stops and joins all workers; pending jobs must be finished. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Current worker-thread count (excluding submitting threads). */
    int workerCount() const;

    /** Grows the worker set to at least @p num_workers threads. */
    void ensureWorkers(int num_workers);

    /**
     * Runs @p task(i) for every i in [0, num_tasks), on up to
     * @p max_threads threads including the calling thread, and blocks
     * until all tasks finished.  @p task must not throw (parallelFor
     * wraps bodies to capture exceptions).  Not reentrant: must not
     * be called from inside a pool task.
     */
    void run(int64_t num_tasks, int max_threads,
             const std::function<void(int64_t)>& task);

    /** The process-wide pool, created on first use. */
    static ThreadPool& global();

    /** True on a thread currently executing a pool task. */
    static bool insideTask();

  private:
    void workerLoop();
    void drainTasks(const std::function<void(int64_t)>& task,
                    int64_t num_tasks);

    /** Serializes run() submissions (one job in flight at a time). */
    std::mutex runMu;

    mutable std::mutex mu;
    std::condition_variable wakeCv;
    std::condition_variable doneCv;
    std::vector<std::thread> workers;
    bool stopping = false;

    // State of the in-flight job, guarded by mu except nextTask.
    uint64_t jobGeneration = 0;
    const std::function<void(int64_t)>* job = nullptr;
    int64_t jobNumTasks = 0;
    int jobMaxWorkers = 0;
    int jobEntered = 0;
    int jobActive = 0;
    int64_t jobCompleted = 0;
    std::atomic<int64_t> nextTask{0};
};

/**
 * Number of threads parallelFor would use right now on this thread
 * (>= 1): ScopedNumThreads override, else DTC_NUM_THREADS, else
 * hardware concurrency.
 */
int currentNumThreads();

/**
 * Ordinal of the parallelFor chunk executing on this thread, or -1
 * outside any chunk.  The ordinal is the chunk's position in the
 * deterministic decomposition of (begin, end, grain) — identical for
 * every thread count — which is what lets fault injection
 * (common/fault.h) fire deterministically inside parallel regions.
 */
int64_t currentChunkOrdinal();

/** Thread count from DTC_NUM_THREADS / hardware, ignoring overrides. */
int defaultNumThreads();

/**
 * RAII thread-count override for the current thread — used by
 * benchmarks and the parallel-vs-serial equivalence tests to pin the
 * width of every parallelFor in scope.  Nests; restores on exit.
 */
class ScopedNumThreads
{
  public:
    explicit ScopedNumThreads(int num_threads);
    ~ScopedNumThreads();

    ScopedNumThreads(const ScopedNumThreads&) = delete;
    ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

  private:
    int prev;
};

/**
 * Runs @p body(chunk_begin, chunk_end) over [begin, end) split into
 * ceil((end-begin)/grain) contiguous chunks of at most @p grain
 * elements.  Chunks may run concurrently; the decomposition is a
 * pure function of (begin, end, grain).
 *
 * The first exception (from the lowest-indexed throwing chunk) is
 * rethrown on the calling thread; once a chunk throws, chunks not
 * yet started are skipped.
 */
void parallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body);

/**
 * Parallel reduction with a deterministic ordered merge: computes
 * @p chunk(chunk_begin, chunk_end) -> T for each chunk (concurrently)
 * and folds the partials left-to-right in chunk order with
 * @p combine(acc, partial), starting from @p init.  Identical chunk
 * structure and fold order for every thread count, so floating-point
 * results are bitwise-stable.
 */
template <typename T, typename ChunkFn, typename CombineFn>
T
parallelReduce(int64_t begin, int64_t end, int64_t grain, T init,
               ChunkFn&& chunk, CombineFn&& combine)
{
    if (end <= begin)
        return init;
    const int64_t g = grain > 0 ? grain : 1;
    const int64_t num_chunks = (end - begin + g - 1) / g;
    std::vector<T> partials(static_cast<size_t>(num_chunks), init);
    parallelFor(begin, end, g, [&](int64_t b, int64_t e) {
        partials[static_cast<size_t>((b - begin) / g)] = chunk(b, e);
    });
    T acc = std::move(init);
    for (int64_t i = 0; i < num_chunks; ++i)
        acc = combine(std::move(acc),
                      std::move(partials[static_cast<size_t>(i)]));
    return acc;
}

} // namespace dtc

#endif // DTC_COMMON_PARALLEL_H
