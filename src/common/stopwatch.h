/**
 * @file
 * Wall-clock stopwatch for host-side overhead measurements.
 *
 * Performance *results* in this repository come from the deterministic
 * GPU cost model (see gpusim/), not wall clocks.  The stopwatch exists
 * for the host-side overhead study (Section 6 of the paper: format
 * conversion, reordering and Selector preprocessing cost) and the
 * google-benchmark microbenchmarks.
 */
#ifndef DTC_COMMON_STOPWATCH_H
#define DTC_COMMON_STOPWATCH_H

#include <chrono>

namespace dtc {

/** A simple monotonic wall-clock stopwatch. */
class Stopwatch
{
  public:
    /** Constructs and starts the stopwatch. */
    Stopwatch() { reset(); }

    /** Restarts timing from now. */
    void reset();

    /** Returns seconds elapsed since construction or the last reset. */
    double elapsedSeconds() const;

    /** Returns milliseconds elapsed since construction or last reset. */
    double elapsedMs() const { return elapsedSeconds() * 1e3; }

  private:
    std::chrono::steady_clock::time_point start;
};

} // namespace dtc

#endif // DTC_COMMON_STOPWATCH_H
