/**
 * @file
 * Wall-clock stopwatch — a thin shim over the observability clock
 * (obs/trace.h).  Kept for source compatibility; new code should use
 * obs::ScopedTimerMs (metrics histogram) or DTC_TRACE_SCOPE (trace
 * span) so host-side timings land in the machine-readable snapshots
 * instead of ad-hoc locals.
 *
 * Performance *results* in this repository come from the
 * deterministic GPU cost model (see gpusim/), not wall clocks; wall
 * time only appears in the Section-6 overhead study and the
 * microbenchmarks.
 */
#ifndef DTC_COMMON_STOPWATCH_H
#define DTC_COMMON_STOPWATCH_H

#include "obs/trace.h"

namespace dtc {

/** A simple monotonic wall-clock stopwatch. */
class Stopwatch
{
  public:
    /** Constructs and starts the stopwatch. */
    Stopwatch() { reset(); }

    /** Restarts timing from now. */
    void reset() { startUs = obs::monotonicNowUs(); }

    /** Returns seconds elapsed since construction or the last reset. */
    double elapsedSeconds() const
    {
        return (obs::monotonicNowUs() - startUs) / 1e6;
    }

    /** Returns milliseconds elapsed since construction or last reset. */
    double elapsedMs() const
    {
        return (obs::monotonicNowUs() - startUs) / 1e3;
    }

  private:
    double startUs = 0;
};

} // namespace dtc

#endif // DTC_COMMON_STOPWATCH_H
