#include "common/tf32.h"

#include <bit>
#include <cmath>

namespace dtc {

float
tf32Round(float x)
{
    if (!std::isfinite(x))
        return x;

    uint32_t bits = std::bit_cast<uint32_t>(x);

    // FP32 has 23 explicit mantissa bits; TF32 keeps the top 10, so we
    // round away the low 13.  Round-to-nearest-even: add half of the
    // dropped range, plus the parity bit of the kept LSB, then truncate.
    constexpr uint32_t kDropBits = 23 - kTf32MantissaBits;
    const uint32_t lsb = (bits >> kDropBits) & 1u;
    const uint32_t round = (1u << (kDropBits - 1)) - 1u + lsb;
    bits += round;
    bits &= ~((1u << kDropBits) - 1u);

    float out = std::bit_cast<float>(bits);
    // Rounding can overflow the exponent into infinity; that matches
    // hardware saturation semantics for TF32 conversion.
    return out;
}

} // namespace dtc
