#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <limits>

#include "common/cancel.h"
#include "common/check.h"
#include "common/env.h"

namespace dtc {

namespace {

thread_local int tlsNumThreadsOverride = 0;
thread_local bool tlsInsidePoolTask = false;
thread_local int64_t tlsChunkOrdinal = -1;

/** RAII chunk-ordinal marker; exception-safe, nests (inner wins). */
class ChunkOrdinalScope
{
  public:
    explicit ChunkOrdinalScope(int64_t ordinal) : prev(tlsChunkOrdinal)
    {
        tlsChunkOrdinal = ordinal;
    }
    ~ChunkOrdinalScope() { tlsChunkOrdinal = prev; }

  private:
    int64_t prev;
};

} // namespace

ThreadPool::ThreadPool(int num_workers)
{
    DTC_CHECK(num_workers >= 0);
    ensureWorkers(num_workers);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopping = true;
    }
    wakeCv.notify_all();
    for (std::thread& t : workers)
        t.join();
}

int
ThreadPool::workerCount() const
{
    std::lock_guard<std::mutex> lk(mu);
    return static_cast<int>(workers.size());
}

void
ThreadPool::ensureWorkers(int num_workers)
{
    std::lock_guard<std::mutex> lk(mu);
    DTC_ASSERT(!stopping);
    while (static_cast<int>(workers.size()) < num_workers)
        workers.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::drainTasks(const std::function<void(int64_t)>& task,
                       int64_t num_tasks)
{
    tlsInsidePoolTask = true;
    int64_t i;
    while ((i = nextTask.fetch_add(1, std::memory_order_relaxed)) <
           num_tasks) {
        task(i);
        std::lock_guard<std::mutex> lk(mu);
        ++jobCompleted;
    }
    tlsInsidePoolTask = false;
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
        wakeCv.wait(lk,
                    [&] { return stopping || jobGeneration != seen; });
        if (stopping)
            return;
        seen = jobGeneration;
        if (job == nullptr || jobEntered >= jobMaxWorkers)
            continue;
        ++jobEntered;
        ++jobActive;
        const std::function<void(int64_t)>* task = job;
        const int64_t num_tasks = jobNumTasks;
        lk.unlock();
        drainTasks(*task, num_tasks);
        lk.lock();
        --jobActive;
        doneCv.notify_all();
    }
}

void
ThreadPool::run(int64_t num_tasks, int max_threads,
                const std::function<void(int64_t)>& task)
{
    DTC_CHECK(!tlsInsidePoolTask);
    if (num_tasks <= 0)
        return;
    // One job at a time: concurrent submitters queue up here.
    std::lock_guard<std::mutex> run_lk(runMu);
    {
        std::lock_guard<std::mutex> lk(mu);
        job = &task;
        jobNumTasks = num_tasks;
        jobMaxWorkers = std::max(0, max_threads - 1);
        jobEntered = 0;
        jobActive = 0;
        jobCompleted = 0;
        nextTask.store(0, std::memory_order_relaxed);
        ++jobGeneration;
    }
    wakeCv.notify_all();

    drainTasks(task, num_tasks);

    std::unique_lock<std::mutex> lk(mu);
    doneCv.wait(lk, [&] {
        return jobCompleted == jobNumTasks && jobActive == 0;
    });
    job = nullptr;
}

ThreadPool&
ThreadPool::global()
{
    static ThreadPool pool(std::max(0, defaultNumThreads() - 1));
    return pool;
}

bool
ThreadPool::insideTask()
{
    return tlsInsidePoolTask;
}

int
defaultNumThreads()
{
    // Re-read the environment on every call so tests and tools can
    // toggle DTC_NUM_THREADS without touching pool state.  Garbage
    // or out-of-range values raise a typed InvalidInput instead of
    // silently falling back to hardware concurrency.
    if (auto v = env::readInt64("DTC_NUM_THREADS", 1, 1024))
        return static_cast<int>(*v);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

int64_t
currentChunkOrdinal()
{
    return tlsChunkOrdinal;
}

int
currentNumThreads()
{
    if (tlsNumThreadsOverride > 0)
        return tlsNumThreadsOverride;
    return defaultNumThreads();
}

ScopedNumThreads::ScopedNumThreads(int num_threads)
    : prev(tlsNumThreadsOverride)
{
    DTC_CHECK(num_threads >= 1);
    tlsNumThreadsOverride = num_threads;
}

ScopedNumThreads::~ScopedNumThreads()
{
    tlsNumThreadsOverride = prev;
}

void
parallelFor(int64_t begin, int64_t end, int64_t grain,
            const std::function<void(int64_t, int64_t)>& body)
{
    if (end <= begin)
        return;
    const int64_t g = grain > 0 ? grain : 1;
    const int64_t num_chunks = (end - begin + g - 1) / g;
    const int threads = currentNumThreads();

    // The submitting thread's cancel token rides into every chunk,
    // polled at each chunk boundary — the cooperative abort point of
    // runWithDeadline (common/cancel.h).
    CancelToken* tok = cancel::current();

    // Serial fallback: one thread requested, a single chunk, or a
    // nested call from inside a pool task (which would deadlock the
    // single-job pool).  Chunk boundaries are identical either way.
    if (threads <= 1 || num_chunks == 1 || ThreadPool::insideTask()) {
        for (int64_t c = 0; c < num_chunks; ++c) {
            if (tok)
                tok->check();
            const int64_t b = begin + c * g;
            ChunkOrdinalScope scope(c);
            body(b, std::min(b + g, end));
        }
        return;
    }

    ThreadPool& pool = ThreadPool::global();
    pool.ensureWorkers(threads - 1);

    std::mutex err_mu;
    std::exception_ptr err;
    int64_t err_chunk = std::numeric_limits<int64_t>::max();
    std::atomic<bool> failed{false};

    pool.run(num_chunks, threads, [&](int64_t c) {
        if (failed.load(std::memory_order_relaxed))
            return;
        const int64_t b = begin + c * g;
        try {
            cancel::ScopedCancel cancel_scope(tok);
            if (tok)
                tok->check();
            ChunkOrdinalScope scope(c);
            body(b, std::min(b + g, end));
        } catch (...) {
            std::lock_guard<std::mutex> lk(err_mu);
            if (c < err_chunk) {
                err_chunk = c;
                err = std::current_exception();
            }
            failed.store(true, std::memory_order_relaxed);
        }
    });

    if (err)
        std::rethrow_exception(err);
}

} // namespace dtc
