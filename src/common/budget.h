/**
 * @file
 * Resource budgets for conversions, staging, and deserialization.
 *
 * Every SpmmKernel::prepare() path and the binary serializer consult
 * one ResourceBudget instead of scattering hard-coded constants
 * (Flash-LLM's host-staging bytes, Block-SpMM's device bytes, SparTA's
 * cuSPARSELt dimension cap).  An allocation that would exceed the
 * budget surfaces as ErrorCode::ResourceExhausted — a typed refusal
 * the tuner can skip past — never an abort or a silent mis-model.
 *
 * The defaults mirror the modeled deployment (RTX 4090 device memory,
 * host RAM); tests and callers override them with ScopedResourceBudget
 * (a thread-local override, like ScopedNumThreads).
 */
#ifndef DTC_COMMON_BUDGET_H
#define DTC_COMMON_BUDGET_H

#include <cstdint>

#include "common/error.h"

namespace dtc {

/** Byte/dimension budgets consulted by prepare() and the serializer. */
struct ResourceBudget
{
    /** Device-resident bytes a converted format may occupy. */
    int64_t conversionBytes = 0;

    /** Host bytes for staging and deserialization buffers. */
    int64_t stagingBytes = 0;

    /**
     * Dimension cap of the structured-sparse (cuSPARSELt) path —
     * SparTA's Table-4 "Not Supported" limit, scaled per DESIGN.md.
     */
    int64_t maxStructuredDim = 0;

    /** Deployment defaults (RTX 4090 device + host memory, dim 5000). */
    static ResourceBudget defaults();

    /** Budget in effect on this thread (override, else defaults). */
    static const ResourceBudget& current();

    bool allowsConversion(int64_t bytes) const
    {
        return bytes <= conversionBytes;
    }

    bool allowsStaging(int64_t bytes) const
    {
        return bytes <= stagingBytes;
    }

    /** Throws DtcError(ResourceExhausted) when over budget. */
    void checkConversion(int64_t bytes, const char* component) const;
    void checkStaging(int64_t bytes, const char* component) const;
};

/**
 * RAII budget override for the current thread; nests, restores on
 * exit.  Used by tests to provoke ResourceExhausted deterministically.
 */
class ScopedResourceBudget
{
  public:
    explicit ScopedResourceBudget(const ResourceBudget& budget);
    ~ScopedResourceBudget();

    ScopedResourceBudget(const ScopedResourceBudget&) = delete;
    ScopedResourceBudget& operator=(const ScopedResourceBudget&) =
        delete;

  private:
    ResourceBudget active; ///< Owned copy the override points at.
    const ResourceBudget* prev;
};

} // namespace dtc

#endif // DTC_COMMON_BUDGET_H
