/**
 * @file
 * Cooperative cancellation & deadlines.
 *
 * A CancelToken is shared between a controller (who cancels or arms a
 * deadline) and the code doing the work (which polls at natural
 * yield points).  Polling is threaded through the runtime's long
 * loops:
 *
 *   - parallelFor / parallelReduce poll at every chunk boundary, on
 *     whichever thread runs the chunk (the token installed on the
 *     submitting thread propagates to pool workers);
 *   - the engine's SpMM drivers poll at every column-panel boundary
 *     (engine/spmm_csr.cc), so even a single huge chunk cannot stall
 *     past one panel;
 *   - Runtime::run (src/runtime/) installs a deadline token around
 *     the whole prepare/compute/guard pipeline.
 *
 * A tripped token surfaces as a typed DtcError — Cancelled for an
 * explicit cancel(), DeadlineExceeded for an expired deadline — and
 * unwinds through the normal exception path, so no state leaks: the
 * thread pool finishes in-flight chunks and the partially-written
 * output stays caller-owned scratch.
 *
 * Cost when no token is installed: one thread-local pointer read per
 * poll.  Determinism: wall-clock deadlines are inherently racy, so
 * tests use expireAfterChecks(n) — the token trips on its nth poll,
 * which is deterministic under ScopedNumThreads(1).
 */
#ifndef DTC_COMMON_CANCEL_H
#define DTC_COMMON_CANCEL_H

#include <atomic>
#include <cstdint>

namespace dtc {

/** Shared cancellation/deadline flag (see file comment). */
class CancelToken
{
  public:
    CancelToken() = default;

    CancelToken(const CancelToken&) = delete;
    CancelToken& operator=(const CancelToken&) = delete;

    /** Requests cancellation; the next poll throws Cancelled. */
    void cancel() { trip(1); }

    /**
     * Arms a deadline @p rel_ms milliseconds from now; a poll after
     * expiry throws DeadlineExceeded.  Arm before sharing the token.
     */
    void setDeadlineInMs(double rel_ms);

    /**
     * Deterministic test hook: the @p n-th poll (1-based) throws
     * DeadlineExceeded regardless of wall clock.  n <= 0 disarms.
     */
    void expireAfterChecks(int64_t n)
    {
        checkBudget.store(n, std::memory_order_relaxed);
    }

    /** Non-throwing probe; evaluates the deadline. */
    bool tripped();

    /** True once cancel()/deadline tripped (no deadline re-check). */
    bool cancelled() const
    {
        return state.load(std::memory_order_relaxed) != 0;
    }

    /**
     * Cooperative yield point: throws DtcError(Cancelled) or
     * DtcError(DeadlineExceeded) once the token tripped.
     */
    void check();

  private:
    void trip(int reason)
    {
        int expected = 0;
        state.compare_exchange_strong(expected, reason,
                                      std::memory_order_relaxed);
    }

    /** 0 = live, 1 = cancelled, 2 = deadline expired. */
    std::atomic<int> state{0};

    /** Absolute monotonic deadline in us; <0 = none. */
    double deadlineUs = -1.0;

    /** Polls remaining before a forced trip; <=0 = disabled. */
    std::atomic<int64_t> checkBudget{0};
};

namespace cancel {

/** Token installed on this thread, or nullptr. */
CancelToken* current();

/**
 * RAII install of @p token as this thread's current token (nullptr
 * uninstalls).  parallelFor re-installs the submitting thread's token
 * inside every chunk, so bodies and their callees see it on pool
 * workers too.
 */
class ScopedCancel
{
  public:
    explicit ScopedCancel(CancelToken* token);
    ~ScopedCancel();

    ScopedCancel(const ScopedCancel&) = delete;
    ScopedCancel& operator=(const ScopedCancel&) = delete;

  private:
    CancelToken* prev;
};

/**
 * Polls the current token, if any — one thread-local read when no
 * token is installed.  The poll sites named in the file comment call
 * this.
 */
inline void
poll()
{
    if (CancelToken* t = current())
        t->check();
}

} // namespace cancel
} // namespace dtc

#endif // DTC_COMMON_CANCEL_H
