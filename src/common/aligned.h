/**
 * @file
 * 64-byte-aligned heap allocation.
 *
 * The SIMD engine (src/engine/simd/) loads the lane/tile arrays built
 * by DtcKernel::prepare() and the rounded B panels of PreparedDense
 * with vector instructions.  A default-aligned std::vector<float> only
 * guarantees alignof(float); issuing *aligned* vector loads against it
 * would be UB, and even with unaligned loads a buffer that straddles
 * cache lines costs split accesses.  AlignedVector pins every such
 * buffer to a 64-byte boundary (one x86 cache line, the widest vector
 * register in play) so the start of each array is both cache-line
 * clean and legal for any load width.
 *
 * Note the micro-kernels still use unaligned load *instructions* for
 * interior addresses (row pointers offset by a column panel need not
 * stay aligned); the allocator guarantee is about the buffer base.
 */
#ifndef DTC_COMMON_ALIGNED_H
#define DTC_COMMON_ALIGNED_H

#include <cstddef>
#include <new>
#include <vector>

namespace dtc {

/** Minimal C++17 aligned-new allocator (default: one cache line). */
template <typename T, std::size_t Align = 64>
class AlignedAllocator
{
  public:
    static_assert((Align & (Align - 1)) == 0,
                  "alignment must be a power of two");
    static_assert(Align >= alignof(T),
                  "alignment must not weaken the type's own");

    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept
    {
    }

    T*
    allocate(std::size_t n)
    {
        return static_cast<T*>(::operator new(
            n * sizeof(T), std::align_val_t(Align)));
    }

    void
    deallocate(T* p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(Align));
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    friend bool
    operator==(const AlignedAllocator&, const AlignedAllocator&)
    {
        return true;
    }
    friend bool
    operator!=(const AlignedAllocator&, const AlignedAllocator&)
    {
        return false;
    }
};

/** std::vector whose buffer starts on a 64-byte boundary. */
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

} // namespace dtc

#endif // DTC_COMMON_ALIGNED_H
