/**
 * @file
 * Structured error taxonomy for the whole library.
 *
 * Every refusal, corruption, or exhaustion the pipeline can hit maps
 * onto one machine-readable ErrorCode, so callers (the tuner, the
 * trainer, deployment glue) can *act* on a failure instead of string-
 * matching.  Two exception classes carry the code plus structured
 * context:
 *
 *   - DtcError (derives std::invalid_argument): recoverable failures
 *     of inputs, persisted data, or resources — a caller can retry
 *     with a different kernel, budget, or file.
 *   - DtcInternalError (derives std::logic_error): a library bug; the
 *     code is always ErrorCode::Internal.
 *
 * Deriving from the standard exception types keeps every pre-existing
 * catch (std::invalid_argument) / catch (std::logic_error) site
 * working unchanged.
 *
 * Refusal is the non-throwing flavour used by SpmmKernel::prepare():
 * baselines refuse inputs as part of their *modeled behaviour* (paper
 * Table 4's "OOM" / "Not Supported" cells), which is an answer, not
 * an error — so prepare() returns it instead of throwing.
 */
#ifndef DTC_COMMON_ERROR_H
#define DTC_COMMON_ERROR_H

#include <cstdint>
#include <iosfwd>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dtc {

/** Machine-readable failure categories (see file comment). */
enum class ErrorCode
{
    InvalidInput,      ///< Malformed or inconsistent caller input.
    CorruptData,       ///< Persisted bytes fail validation.
    ResourceExhausted, ///< An allocation would exceed a ResourceBudget.
    Unsupported,       ///< Valid input outside a component's domain.
    Internal,          ///< Library invariant violated (a bug).
    DeadlineExceeded,  ///< A runtime deadline expired mid-operation.
    Cancelled,         ///< The caller cancelled the operation.
};

/** Stable display name of an error code (e.g. "ResourceExhausted"). */
const char* errorCodeName(ErrorCode code);

/**
 * Parses an error-code name (case-insensitive).  Throws DtcError
 * (InvalidInput) on an unknown name — used by the DTC_FAULT parser.
 */
ErrorCode parseErrorCode(const std::string& name);

/**
 * Structured context attached to an error: which component raised it
 * and, when known, the matrix dimensions and byte offset involved.
 * Fields are -1 / empty when not applicable.
 */
struct ErrorContext
{
    std::string component; ///< e.g. "serialize", "mm_io", "tuner".
    int64_t rows = -1;     ///< Matrix rows, if dimension-related.
    int64_t cols = -1;     ///< Matrix cols, if dimension-related.
    int64_t byteOffset = -1; ///< Stream position, if stream-related.
};

/** Recoverable structured error (see file comment). */
class DtcError : public std::invalid_argument
{
  public:
    DtcError(ErrorCode code, const std::string& message,
             ErrorContext context = {});

    ErrorCode code() const noexcept { return errCode; }
    const ErrorContext& context() const noexcept { return ctx; }

  private:
    ErrorCode errCode;
    ErrorContext ctx;
};

/** Internal-invariant violation; code() is always Internal. */
class DtcInternalError : public std::logic_error
{
  public:
    explicit DtcInternalError(const std::string& message,
                              ErrorContext context = {});

    ErrorCode code() const noexcept { return ErrorCode::Internal; }
    const ErrorContext& context() const noexcept { return ctx; }

  private:
    ErrorContext ctx;
};

/**
 * A kernel's structured refusal of an input (empty reason = accepted).
 * Returned by SpmmKernel::prepare(); the tuner copies code + reason
 * into its per-candidate report.
 */
struct Refusal
{
    /** Meaningful only when !ok(). */
    ErrorCode code = ErrorCode::Unsupported;

    /** Human-readable reason; empty means the input was accepted. */
    std::string reason;

    /** True when the kernel accepted the input. */
    bool ok() const { return reason.empty(); }

    /** String-compatible alias of ok() (migration shim). */
    bool empty() const { return reason.empty(); }

    /** Accepts the input. */
    static Refusal accept() { return {}; }

    /** Refuses with a code and reason (reason must be non-empty). */
    static Refusal refuse(ErrorCode code, std::string reason);

    /** Implicit reason view so string-typed call sites keep working. */
    operator std::string() const { return reason; }
};

/** Compares against the reason string ("" = accepted). */
bool operator==(const Refusal& r, const char* reason);
bool operator==(const Refusal& r, const std::string& reason);

/** Prints "<code>: <reason>" (or "ok"). */
std::ostream& operator<<(std::ostream& os, const Refusal& r);

namespace detail {

/** Formats "[Code] component: message (rows=…, byte …)". */
std::string errorMessage(ErrorCode code, const std::string& message,
                         const ErrorContext& ctx);

} // namespace detail

} // namespace dtc

/** Throws DtcError with a streamable message and optional context. */
#define DTC_RAISE(code, msg)                                            \
    do {                                                                \
        std::ostringstream os_;                                         \
        os_ << msg;                                                     \
        throw ::dtc::DtcError((code), os_.str());                       \
    } while (0)

/** DTC_RAISE with an ErrorContext. */
#define DTC_RAISE_CTX(code, msg, ctx)                                   \
    do {                                                                \
        std::ostringstream os_;                                         \
        os_ << msg;                                                     \
        throw ::dtc::DtcError((code), os_.str(), (ctx));                \
    } while (0)

/** DTC_CHECK_MSG with an explicit error code. */
#define DTC_CHECK_CODE(cond, code, msg)                                 \
    do {                                                                \
        if (!(cond)) {                                                  \
            DTC_RAISE((code), msg);                                     \
        }                                                               \
    } while (0)

#endif // DTC_COMMON_ERROR_H
