#include "obs/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iterator>

namespace dtc {
namespace obs {

namespace {

[[noreturn]] void
raiseJson(const std::string& msg, int64_t offset = -1)
{
    throw DtcError(ErrorCode::InvalidInput, "json: " + msg,
                   ErrorContext{.component = "json",
                                .byteOffset = offset});
}

void
requireKind(JsonValue::Kind want, JsonValue::Kind got,
            const char* what)
{
    if (want != got)
        raiseJson(std::string("value is not a ") + what);
}

/** Recursive-descent parser over a complete in-memory document. */
class Parser
{
  public:
    explicit Parser(const std::string& text) : s(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos != s.size())
            raiseJson("trailing characters after document",
                      static_cast<int64_t>(pos));
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            pos++;
    }

    char
    peek()
    {
        if (pos >= s.size())
            raiseJson("unexpected end of input",
                      static_cast<int64_t>(pos));
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            raiseJson(std::string("expected '") + c + "', got '" +
                          s[pos] + "'",
                      static_cast<int64_t>(pos));
        pos++;
    }

    bool
    consumeLiteral(const char* lit)
    {
        const size_t len = std::char_traits<char>::length(lit);
        if (s.compare(pos, len, lit) == 0) {
            pos += len;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return JsonValue::makeString(parseString());
          case 't':
            if (consumeLiteral("true"))
                return JsonValue::makeBool(true);
            raiseJson("bad literal", static_cast<int64_t>(pos));
          case 'f':
            if (consumeLiteral("false"))
                return JsonValue::makeBool(false);
            raiseJson("bad literal", static_cast<int64_t>(pos));
          case 'n':
            if (consumeLiteral("null"))
                return JsonValue::makeNull();
            raiseJson("bad literal", static_cast<int64_t>(pos));
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        std::map<std::string, JsonValue> members;
        skipWs();
        if (peek() == '}') {
            pos++;
            return JsonValue::makeObject(std::move(members));
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            members.insert_or_assign(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect('}');
            return JsonValue::makeObject(std::move(members));
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        std::vector<JsonValue> items;
        skipWs();
        if (peek() == ']') {
            pos++;
            return JsonValue::makeArray(std::move(items));
        }
        for (;;) {
            items.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect(']');
            return JsonValue::makeArray(std::move(items));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos >= s.size())
                raiseJson("unterminated string",
                          static_cast<int64_t>(pos));
            const char c = s[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= s.size())
                raiseJson("unterminated escape",
                          static_cast<int64_t>(pos));
            const char e = s[pos++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos + 4 > s.size())
                    raiseJson("truncated \\u escape",
                              static_cast<int64_t>(pos));
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        raiseJson("bad \\u escape",
                                  static_cast<int64_t>(pos));
                }
                // Metrics/bench names are ASCII; reject the rest
                // rather than mis-encode it.
                if (code > 0x7f)
                    raiseJson("non-ASCII \\u escape unsupported",
                              static_cast<int64_t>(pos));
                out.push_back(static_cast<char>(code));
                break;
              }
              default:
                raiseJson("bad escape character",
                          static_cast<int64_t>(pos));
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const size_t start = pos;
        if (peek() == '-')
            pos++;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            pos++;
        if (pos == start)
            raiseJson("expected a value",
                      static_cast<int64_t>(start));
        const std::string tok = s.substr(start, pos - start);
        char* end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0')
            raiseJson("malformed number: " + tok,
                      static_cast<int64_t>(start));
        return JsonValue::makeNumber(v);
    }

    const std::string& s;
    size_t pos = 0;
};

} // namespace

bool
JsonValue::asBool() const
{
    requireKind(Kind::Bool, k, "bool");
    return b;
}

double
JsonValue::asNumber() const
{
    requireKind(Kind::Number, k, "number");
    return num;
}

const std::string&
JsonValue::asString() const
{
    requireKind(Kind::String, k, "string");
    return str;
}

const std::vector<JsonValue>&
JsonValue::asArray() const
{
    requireKind(Kind::Array, k, "array");
    return arr;
}

const std::map<std::string, JsonValue>&
JsonValue::asObject() const
{
    requireKind(Kind::Object, k, "object");
    return obj;
}

bool
JsonValue::has(const std::string& key) const
{
    return k == Kind::Object && obj.find(key) != obj.end();
}

const JsonValue&
JsonValue::at(const std::string& key) const
{
    requireKind(Kind::Object, k, "object");
    auto it = obj.find(key);
    if (it == obj.end())
        raiseJson("missing object member: " + key);
    return it->second;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.k = Kind::Bool;
    v.b = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v.k = Kind::Number;
    v.num = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.k = Kind::String;
    v.str = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> a)
{
    JsonValue v;
    v.k = Kind::Array;
    v.arr = std::move(a);
    return v;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> o)
{
    JsonValue v;
    v.k = Kind::Object;
    v.obj = std::move(o);
    return v;
}

namespace json {

JsonValue
parse(const std::string& text)
{
    Parser p(text);
    return p.parseDocument();
}

JsonValue
parseFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        throw DtcError(ErrorCode::InvalidInput,
                       "json: cannot open " + path,
                       ErrorContext{.component = "json"});
    }
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    return parse(text);
}

} // namespace json
} // namespace obs
} // namespace dtc
