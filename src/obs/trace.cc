#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

namespace dtc {
namespace obs {

namespace {

std::chrono::steady_clock::time_point
processEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

/** Forces the epoch before main() so timestamps are process-wide. */
const bool gEpochInit = (processEpoch(), true);

} // namespace

double
monotonicNowUs()
{
    (void)gEpochInit;
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - processEpoch())
        .count();
}

namespace trace {
namespace detail {

std::atomic<int> gState{2}; // env not yet parsed

namespace {

/**
 * Per-thread span buffer.  The owning thread appends under buf.mu
 * (uncontended except while a snapshot/writeJson drains it); depth
 * is only ever touched by the owner.
 */
struct ThreadBuf
{
    std::mutex mu;
    std::vector<SpanRecord> spans;
    int tid = 0;
    int depth = 0;
};

std::mutex gRegistryMu;
std::vector<std::unique_ptr<ThreadBuf>>&
registry()
{
    static auto* r = new std::vector<std::unique_ptr<ThreadBuf>>();
    return *r;
}

std::string gEnvOutPath; ///< Set once under gRegistryMu.

ThreadBuf&
threadBuf()
{
    thread_local ThreadBuf* buf = [] {
        auto owned = std::make_unique<ThreadBuf>();
        ThreadBuf* p = owned.get();
        std::lock_guard<std::mutex> lk(gRegistryMu);
        p->tid = static_cast<int>(registry().size());
        registry().push_back(std::move(owned));
        return p;
    }();
    return *buf;
}

void
writeEnvOutputAtExit()
{
    std::string path;
    {
        std::lock_guard<std::mutex> lk(gRegistryMu);
        path = gEnvOutPath;
    }
    if (!path.empty() && !writeJson(path))
        std::fprintf(stderr, "[dtc] trace: cannot write %s\n",
                     path.c_str());
}

/** Parses DTC_TRACE once; caller holds gRegistryMu. */
void
parseEnvLocked()
{
    if (gState.load(std::memory_order_relaxed) != 2)
        return;
    const char* env = std::getenv("DTC_TRACE");
    if (env == nullptr || *env == '\0') {
        gState.store(0, std::memory_order_relaxed);
        return;
    }
    gEnvOutPath = env;
    static bool registered = false;
    if (!registered) {
        registered = true;
        std::atexit(writeEnvOutputAtExit);
    }
    gState.store(1, std::memory_order_relaxed);
}

} // namespace

int64_t
threadBufferCount()
{
    std::lock_guard<std::mutex> lk(gRegistryMu);
    return static_cast<int64_t>(registry().size());
}

void
beginSlow(const char* name, void** cookie, double* t0)
{
    (void)name;
    if (gState.load(std::memory_order_relaxed) == 2) {
        std::lock_guard<std::mutex> lk(gRegistryMu);
        parseEnvLocked();
    }
    if (gState.load(std::memory_order_relaxed) == 0)
        return; // leave *cookie null: destructor records nothing
    ThreadBuf& buf = threadBuf();
    buf.depth++;
    *cookie = &buf;
    *t0 = monotonicNowUs();
}

void
endSlow(void* cookie, const char* name, double t0)
{
    const double now = monotonicNowUs();
    auto* buf = static_cast<ThreadBuf*>(cookie);
    buf->depth--;
    SpanRecord rec;
    rec.name = name;
    rec.tsUs = t0;
    rec.durUs = now - t0;
    rec.tid = buf->tid;
    rec.depth = buf->depth;
    std::lock_guard<std::mutex> lk(buf->mu);
    buf->spans.push_back(std::move(rec));
}

} // namespace detail

void
enable()
{
    std::lock_guard<std::mutex> lk(detail::gRegistryMu);
    detail::gState.store(1, std::memory_order_relaxed);
}

void
disable()
{
    std::lock_guard<std::mutex> lk(detail::gRegistryMu);
    detail::gState.store(0, std::memory_order_relaxed);
}

bool
enabled()
{
    return detail::gState.load(std::memory_order_relaxed) == 1;
}

void
clear()
{
    std::lock_guard<std::mutex> lk(detail::gRegistryMu);
    for (auto& buf : detail::registry()) {
        std::lock_guard<std::mutex> blk(buf->mu);
        buf->spans.clear();
    }
}

std::vector<SpanRecord>
snapshot()
{
    std::vector<SpanRecord> out;
    {
        std::lock_guard<std::mutex> lk(detail::gRegistryMu);
        for (auto& buf : detail::registry()) {
            std::lock_guard<std::mutex> blk(buf->mu);
            out.insert(out.end(), buf->spans.begin(),
                       buf->spans.end());
        }
    }
    std::sort(out.begin(), out.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.tsUs < b.tsUs;
              });
    return out;
}

bool
writeJson(const std::string& path)
{
    const std::vector<SpanRecord> spans = snapshot();
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\n  \"displayTimeUnit\": \"ms\",\n"
        << "  \"traceEvents\": [\n";
    char buf[512];
    for (size_t i = 0; i < spans.size(); ++i) {
        const SpanRecord& s = spans[i];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"cat\": \"dtc\", "
                      "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                      "\"pid\": 1, \"tid\": %d, "
                      "\"args\": {\"depth\": %d}}%s\n",
                      s.name.c_str(), s.tsUs, s.durUs, s.tid,
                      s.depth, i + 1 < spans.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n}\n";
    return out.good();
}

void
reloadFromEnv()
{
    clear();
    std::lock_guard<std::mutex> lk(detail::gRegistryMu);
    detail::gState.store(2, std::memory_order_relaxed);
    detail::parseEnvLocked();
}

} // namespace trace
} // namespace obs
} // namespace dtc
