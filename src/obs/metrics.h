/**
 * @file
 * Process-wide metrics registry: named counters, gauges and
 * histograms, dumped as a stable machine-readable JSON snapshot
 * (schema "dtc-metrics-v1", see toJson()).
 *
 * This registry absorbs the ad-hoc counters that used to be
 * scattered around the library: engine::Stats (B-rounding and panel
 * cache counts) is now a view over registry counters, the GCN
 * trainer's fallback events, the tuner's refusal tallies and armed
 * fault-site hits all land here too.
 *
 * Usage pattern in hot-ish code — resolve the registry entry once:
 *
 *     static obs::Counter& c = obs::metrics::counter("dtc.computes");
 *     c.add(1);
 *
 * Registry entries are never destroyed, so references stay valid for
 * the life of the process; metrics::reset() zeroes values in place.
 * Counter deliberately mimics std::atomic<uint64_t>'s load / store /
 * fetch_add so existing atomic call sites keep compiling.
 *
 * Determinism: counters count *work* (elements rounded, candidates
 * evaluated, fallbacks taken), never time, so their values are
 * identical across runs, thread counts and build types — which is
 * what lets bench_compare gate on them exactly.  Histograms hold
 * wall-clock samples; only their sample *count* is deterministic.
 */
#ifndef DTC_OBS_METRICS_H
#define DTC_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace dtc {
namespace obs {

/** Monotonic event count (atomic; relaxed everywhere). */
class Counter
{
  public:
    void add(uint64_t n = 1)
    {
        v.fetch_add(n, std::memory_order_relaxed);
    }

    // std::atomic<uint64_t>-compatible surface (engine::Stats).
    uint64_t
    fetch_add(uint64_t n,
              std::memory_order = std::memory_order_relaxed)
    {
        return v.fetch_add(n, std::memory_order_relaxed);
    }
    uint64_t
    load(std::memory_order = std::memory_order_relaxed) const
    {
        return v.load(std::memory_order_relaxed);
    }
    void
    store(uint64_t n,
          std::memory_order = std::memory_order_relaxed)
    {
        v.store(n, std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> v{0};
};

/** Last-write-wins scalar (atomic double bits). */
class Gauge
{
  public:
    void set(double value);
    double value() const;

  private:
    std::atomic<int64_t> bits{0};
};

/**
 * Wall-clock-style sample distribution with nearest-rank quantiles.
 * count / sum / min / max are exact over every sample; quantiles are
 * computed from the first kMaxSamples samples (deterministic, bounded
 * memory — benchmark loops can record millions of samples).
 */
class Histogram
{
  public:
    static constexpr size_t kMaxSamples = 4096;

    void record(double sample);

    int64_t count() const;
    double sum() const;
    double min() const;
    double max() const;
    /** Nearest-rank quantile, q in [0, 1]; 0 when empty. */
    double quantile(double q) const;

    void reset();

  private:
    mutable std::mutex mu;
    std::vector<double> samples; ///< First kMaxSamples only.
    int64_t n = 0;
    double total = 0;
    double lo = 0;
    double hi = 0;
};

namespace metrics {

/** The counter registered under @p name (created on first use). */
Counter& counter(const std::string& name);

/** The gauge registered under @p name (created on first use). */
Gauge& gauge(const std::string& name);

/** The histogram registered under @p name (created on first use). */
Histogram& histogram(const std::string& name);

/** Value of a counter, 0 when it was never registered. */
uint64_t counterValue(const std::string& name);

/**
 * JSON snapshot, schema "dtc-metrics-v1":
 *
 *     {
 *       "schema": "dtc-metrics-v1",
 *       "counters":   {"name": <uint>, ...},
 *       "gauges":     {"name": <double>, ...},
 *       "histograms": {"name": {"count": <int>, "sum": <double>,
 *                               "min": <double>, "max": <double>,
 *                               "p50": <double>, "p95": <double>},
 *                      ...}
 *     }
 *
 * Keys are sorted, so snapshots of identical state are identical
 * text.  bench_compare consumes this format.
 */
std::string toJson();

/** Writes toJson() to @p path; false when the file cannot open. */
bool writeJson(const std::string& path);

/**
 * Zeroes every counter/gauge and empties every histogram *in place*
 * — registry entries are never destroyed, so references obtained
 * before reset() stay valid.
 */
void reset();

} // namespace metrics

/**
 * RAII phase timer: records elapsed milliseconds into the named
 * histogram at scope exit.  Pair with DTC_TRACE_SCOPE for phases
 * that should show up both in traces and in metrics snapshots.
 * The name must outlive the scope (use a string literal).
 */
class ScopedTimerMs
{
  public:
    explicit ScopedTimerMs(const char* histogram_name)
        : name(histogram_name), t0(monotonicNowUs())
    {
    }
    ~ScopedTimerMs()
    {
        metrics::histogram(name).record(
            (monotonicNowUs() - t0) / 1e3);
    }

    ScopedTimerMs(const ScopedTimerMs&) = delete;
    ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

  private:
    const char* name;
    double t0;
};

} // namespace obs
} // namespace dtc

#endif // DTC_OBS_METRICS_H
