/**
 * @file
 * Lightweight tracing: RAII spans over the pipeline phases the paper
 * costs out in Section 6 (condensation, conversion, reordering,
 * selector decision, kernel time).
 *
 * Code marks a phase with DTC_TRACE_SCOPE("sgt.condense"); a disarmed
 * span costs one relaxed atomic load and a predicted branch — the
 * same pattern as DTC_FAULT_POINT (common/fault.h), backed by the
 * BM_TraceScopeDisarmed row in bench_micro_host.  Armed —
 * programmatically via trace::enable(), or from the environment via
 *
 *     DTC_TRACE=out.json
 *
 * — each span records (name, start, duration, thread, depth) into a
 * per-thread buffer; DTC_TRACE additionally writes a
 * chrome://tracing-loadable JSON file at process exit (load it at
 * chrome://tracing or https://ui.perfetto.dev).
 *
 * Threading: spans are thread-aware.  Worker threads of the PR-1
 * thread pool (common/parallel.h) get their own stable thread
 * ordinal the first time they open a span; nesting depth is tracked
 * per thread.  Span names must outlive the scope — use string
 * literals.
 */
#ifndef DTC_OBS_TRACE_H
#define DTC_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dtc {
namespace obs {

/** Monotonic wall clock in microseconds since the process epoch. */
double monotonicNowUs();

/** One finished span, as recorded by TraceScope. */
struct SpanRecord
{
    std::string name; ///< Phase name ("sgt.condense", ...).
    double tsUs = 0;  ///< Start, microseconds since process epoch.
    double durUs = 0; ///< Duration in microseconds.
    int tid = 0;      ///< Stable per-thread ordinal (0-based).
    int depth = 0;    ///< Nesting depth within the thread (0 = top).
};

namespace trace {

/** Arms span recording (independent of any DTC_TRACE file). */
void enable();

/** Disarms span recording; already-recorded spans are kept. */
void disable();

/** True while spans are being recorded. */
bool enabled();

/** Drops every recorded span (buffers are kept for reuse). */
void clear();

/** Copies out all recorded spans, ordered by (tid, start time). */
std::vector<SpanRecord> snapshot();

/**
 * Writes the recorded spans as chrome://tracing "trace event" JSON.
 * Returns false when the file cannot be opened.
 */
bool writeJson(const std::string& path);

/**
 * Re-reads DTC_TRACE after disabling and clearing.  The environment
 * is otherwise parsed once, on the first span.  When DTC_TRACE names
 * a file, recording is armed and the file is written at process exit.
 */
void reloadFromEnv();

namespace detail {

/** 0 = disarmed, 1 = armed, 2 = environment not yet parsed. */
extern std::atomic<int> gState;

/** Number of thread buffers ever created (allocation probe). */
int64_t threadBufferCount();

void beginSlow(const char* name, void** cookie, double* t0);
void endSlow(void* cookie, const char* name, double t0);

} // namespace detail
} // namespace trace

/**
 * RAII span (prefer the DTC_TRACE_SCOPE macro).  While tracing is
 * disarmed, construction and destruction perform no clock read and
 * no allocation.
 */
class TraceScope
{
  public:
    explicit TraceScope(const char* name)
    {
        if (trace::detail::gState.load(std::memory_order_relaxed) ==
            0)
            return;
        spanName = name;
        trace::detail::beginSlow(name, &cookie, &startUs);
    }

    ~TraceScope()
    {
        if (cookie != nullptr)
            trace::detail::endSlow(cookie, spanName, startUs);
    }

    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

  private:
    const char* spanName = nullptr;
    void* cookie = nullptr; ///< Thread buffer; null while disarmed.
    double startUs = 0;
};

} // namespace obs
} // namespace dtc

#define DTC_OBS_CONCAT_INNER(a, b) a##b
#define DTC_OBS_CONCAT(a, b) DTC_OBS_CONCAT_INNER(a, b)

/** Opens a named span covering the rest of the enclosing scope. */
#define DTC_TRACE_SCOPE(name)                                        \
    ::dtc::obs::TraceScope DTC_OBS_CONCAT(dtcTraceScope_,            \
                                          __LINE__)(name)

#endif // DTC_OBS_TRACE_H
