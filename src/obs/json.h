/**
 * @file
 * Minimal JSON reader for the repo's machine-readable artifacts
 * (BENCH_*.json from the smoke bench, dtc-metrics-v1 snapshots).
 * Full JSON value model, recursive-descent parser, typed DtcError on
 * malformed input — no third-party dependency.
 *
 * This is a *reader* for trusted, self-produced files: it accepts
 * standard JSON (objects, arrays, strings with the common escapes,
 * numbers, true/false/null) and rejects everything else with
 * ErrorCode::InvalidInput.
 */
#ifndef DTC_OBS_JSON_H
#define DTC_OBS_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"

namespace dtc {
namespace obs {

/** A parsed JSON value (tree-owning). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }
    bool isBool() const { return k == Kind::Bool; }
    bool isNumber() const { return k == Kind::Number; }
    bool isString() const { return k == Kind::String; }
    bool isArray() const { return k == Kind::Array; }
    bool isObject() const { return k == Kind::Object; }

    /** Value accessors; DtcError(InvalidInput) on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string& asString() const;
    const std::vector<JsonValue>& asArray() const;
    const std::map<std::string, JsonValue>& asObject() const;

    /** True when this is an object with member @p key. */
    bool has(const std::string& key) const;

    /** Object member; DtcError(InvalidInput) when absent. */
    const JsonValue& at(const std::string& key) const;

    // Construction (used by the parser; handy in tests).
    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> a);
    static JsonValue makeObject(std::map<std::string, JsonValue> o);

  private:
    Kind k = Kind::Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<JsonValue> arr;
    std::map<std::string, JsonValue> obj;
};

namespace json {

/**
 * Parses one complete JSON document; trailing non-whitespace is an
 * error.  Throws DtcError(ErrorCode::InvalidInput) with a position
 * on malformed input.
 */
JsonValue parse(const std::string& text);

/** parse() over a whole file; DtcError when the file cannot open. */
JsonValue parseFile(const std::string& path);

} // namespace json
} // namespace obs
} // namespace dtc

#endif // DTC_OBS_JSON_H
