#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

namespace dtc {
namespace obs {

void
Gauge::set(double value)
{
    int64_t b;
    static_assert(sizeof(b) == sizeof(value));
    std::memcpy(&b, &value, sizeof(b));
    bits.store(b, std::memory_order_relaxed);
}

double
Gauge::value() const
{
    const int64_t b = bits.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &b, sizeof(v));
    return v;
}

void
Histogram::record(double sample)
{
    std::lock_guard<std::mutex> lk(mu);
    if (n == 0) {
        lo = sample;
        hi = sample;
    } else {
        lo = std::min(lo, sample);
        hi = std::max(hi, sample);
    }
    n++;
    total += sample;
    if (samples.size() < kMaxSamples)
        samples.push_back(sample);
}

int64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lk(mu);
    return n;
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lk(mu);
    return total;
}

double
Histogram::min() const
{
    std::lock_guard<std::mutex> lk(mu);
    return n > 0 ? lo : 0.0;
}

double
Histogram::max() const
{
    std::lock_guard<std::mutex> lk(mu);
    return n > 0 ? hi : 0.0;
}

double
Histogram::quantile(double q) const
{
    std::lock_guard<std::mutex> lk(mu);
    if (samples.empty())
        return 0.0;
    std::vector<double> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    const double clamped = std::clamp(q, 0.0, 1.0);
    // Nearest rank: the ceil(q * N)-th smallest sample (1-based).
    size_t rank = static_cast<size_t>(std::ceil(
        clamped * static_cast<double>(sorted.size())));
    if (rank == 0)
        rank = 1;
    return sorted[rank - 1];
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lk(mu);
    samples.clear();
    n = 0;
    total = 0;
    lo = 0;
    hi = 0;
}

namespace metrics {

namespace {

/**
 * Node-based maps keep element addresses stable, and entries are
 * never erased — references returned by counter()/gauge()/histogram()
 * stay valid for the life of the process.
 */
struct Registry
{
    std::mutex mu;
    std::map<std::string, Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, Histogram> histograms;
};

Registry&
registry()
{
    static auto* r = new Registry();
    return *r;
}

std::string
fmtDouble(double v)
{
    if (!std::isfinite(v))
        return "0";
    std::ostringstream os;
    os.precision(6);
    os.setf(std::ios::fixed);
    os << v;
    return os.str();
}

} // namespace

Counter&
counter(const std::string& name)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    return r.counters[name];
}

Gauge&
gauge(const std::string& name)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    return r.gauges[name];
}

Histogram&
histogram(const std::string& name)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    return r.histograms[name];
}

uint64_t
counterValue(const std::string& name)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    auto it = r.counters.find(name);
    return it == r.counters.end() ? 0 : it->second.load();
}

std::string
toJson()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    std::ostringstream os;
    os << "{\n  \"schema\": \"dtc-metrics-v1\",\n";

    os << "  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : r.counters) {
        os << (first ? "\n" : ",\n") << "    \"" << name
           << "\": " << c.load();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : r.gauges) {
        os << (first ? "\n" : ",\n") << "    \"" << name
           << "\": " << fmtDouble(g.value());
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : r.histograms) {
        os << (first ? "\n" : ",\n") << "    \"" << name
           << "\": {\"count\": " << h.count()
           << ", \"sum\": " << fmtDouble(h.sum())
           << ", \"min\": " << fmtDouble(h.min())
           << ", \"max\": " << fmtDouble(h.max())
           << ", \"p50\": " << fmtDouble(h.quantile(0.5))
           << ", \"p95\": " << fmtDouble(h.quantile(0.95)) << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
    return os.str();
}

bool
writeJson(const std::string& path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson();
    return out.good();
}

void
reset()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (auto& [name, c] : r.counters)
        c.store(0);
    for (auto& [name, g] : r.gauges)
        g.set(0.0);
    for (auto& [name, h] : r.histograms)
        h.reset();
}

} // namespace metrics
} // namespace obs
} // namespace dtc
