#include "obs/bench_compare.h"

#include <cmath>
#include <sstream>

namespace dtc {
namespace obs {
namespace compare {

namespace {

std::string
fmtNum(double v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

void
checkSchema(const JsonValue& doc, const char* expect, Report* rep)
{
    rep->checks++;
    if (!doc.has("schema") || !doc.at("schema").isString() ||
        doc.at("schema").asString() != expect) {
        rep->failures.push_back(std::string("schema is not \"") +
                                expect + "\"");
    }
}

void
checkExact(const std::string& what, double base, double cur,
           Report* rep)
{
    rep->checks++;
    if (base != cur) {
        rep->failures.push_back(what + ": expected " + fmtNum(base) +
                                ", got " + fmtNum(cur) +
                                " (exact-match metric)");
    }
}

void
checkWallclock(const std::string& what, double base, double cur,
               const Options& opts, Report* rep)
{
    rep->checks++;
    const double diff = std::fabs(cur - base);
    const double allowed =
        std::max(opts.tolerance * std::fabs(base), opts.absFloorMs);
    if (diff <= allowed)
        return;
    std::ostringstream os;
    os << what << ": " << fmtNum(base) << " -> " << fmtNum(cur)
       << " (" << fmtNum(diff) << " off, tolerance "
       << fmtNum(allowed) << ")";
    if (opts.wallclockAdvisory)
        rep->advisories.push_back(os.str() + " [advisory]");
    else
        rep->failures.push_back(os.str());
}

} // namespace

std::string
Report::toString() const
{
    std::ostringstream os;
    os << checks << " checks, " << failures.size() << " failures, "
       << advisories.size() << " advisories\n";
    for (const std::string& f : failures)
        os << "  FAIL " << f << "\n";
    for (const std::string& a : advisories)
        os << "  note " << a << "\n";
    return os.str();
}

Report
compareEngineBench(const JsonValue& baseline, const JsonValue& current,
                   const Options& opts)
{
    Report rep;
    checkSchema(baseline, "dtc-bench-engine-v1", &rep);
    checkSchema(current, "dtc-bench-engine-v1", &rep);
    if (!rep.ok())
        return rep;

    for (const char* key : {"rows", "cols", "nnz"}) {
        checkExact(std::string("matrix.") + key,
                   baseline.at("matrix").at(key).asNumber(),
                   current.at("matrix").at(key).asNumber(), &rep);
    }
    checkExact("reps", baseline.at("reps").asNumber(),
               current.at("reps").asNumber(), &rep);

    auto rowKey = [](const JsonValue& row) {
        return row.at("kernel").asString() + " n=" +
               fmtNum(row.at("n").asNumber());
    };

    const auto& base_rows = baseline.at("results").asArray();
    const auto& cur_rows = current.at("results").asArray();
    for (const JsonValue& brow : base_rows) {
        const std::string key = rowKey(brow);
        const JsonValue* crow = nullptr;
        for (const JsonValue& c : cur_rows) {
            if (rowKey(c) == key) {
                crow = &c;
                break;
            }
        }
        rep.checks++;
        if (crow == nullptr) {
            rep.failures.push_back("result row missing: " + key);
            continue;
        }
        for (const char* counter :
             {"legacy_b_round_ops", "engine_b_round_ops"}) {
            checkExact(key + " " + counter,
                       brow.at(counter).asNumber(),
                       crow->at(counter).asNumber(), &rep);
        }
        for (const char* wall : {"engine_off_ms", "engine_on_ms"}) {
            checkWallclock(key + " " + wall,
                           brow.at(wall).asNumber(),
                           crow->at(wall).asNumber(), opts, &rep);
        }
    }
    for (const JsonValue& crow : cur_rows) {
        const std::string key = rowKey(crow);
        bool known = false;
        for (const JsonValue& brow : base_rows)
            if (rowKey(brow) == key)
                known = true;
        if (!known)
            rep.advisories.push_back(
                "new result row (not in baseline): " + key);
    }
    return rep;
}

Report
compareMetrics(const JsonValue& baseline, const JsonValue& current,
               const Options& opts)
{
    Report rep;
    checkSchema(baseline, "dtc-metrics-v1", &rep);
    checkSchema(current, "dtc-metrics-v1", &rep);
    if (!rep.ok())
        return rep;

    for (const auto& [name, bval] :
         baseline.at("counters").asObject()) {
        rep.checks++;
        if (!current.at("counters").has(name)) {
            rep.failures.push_back("counter missing: " + name);
            continue;
        }
        checkExact("counter " + name, bval.asNumber(),
                   current.at("counters").at(name).asNumber(), &rep);
    }
    for (const auto& [name, cval] :
         current.at("counters").asObject()) {
        if (!baseline.at("counters").has(name))
            rep.advisories.push_back(
                "new counter (not in baseline): " + name + " = " +
                fmtNum(cval.asNumber()));
    }

    for (const auto& [name, bval] :
         baseline.at("gauges").asObject()) {
        rep.checks++;
        if (!current.at("gauges").has(name)) {
            rep.failures.push_back("gauge missing: " + name);
            continue;
        }
        checkWallclock("gauge " + name, bval.asNumber(),
                       current.at("gauges").at(name).asNumber(),
                       opts, &rep);
    }

    for (const auto& [name, bhist] :
         baseline.at("histograms").asObject()) {
        rep.checks++;
        if (!current.at("histograms").has(name)) {
            rep.failures.push_back("histogram missing: " + name);
            continue;
        }
        const JsonValue& chist =
            current.at("histograms").at(name);
        // Sample counts are work counts: exact.  The statistics are
        // wall-clock.
        checkExact("histogram " + name + " count",
                   bhist.at("count").asNumber(),
                   chist.at("count").asNumber(), &rep);
        for (const char* stat : {"sum", "min", "max", "p50", "p95"}) {
            checkWallclock("histogram " + name + " " + stat,
                           bhist.at(stat).asNumber(),
                           chist.at(stat).asNumber(), opts, &rep);
        }
    }
    return rep;
}

} // namespace compare
} // namespace obs
} // namespace dtc
