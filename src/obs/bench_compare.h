/**
 * @file
 * Baseline comparison for the repo's machine-readable perf
 * artifacts — the regression gate behind the `bench_compare` CLI and
 * the CI perf-smoke job.
 *
 * Two artifact kinds are understood:
 *   - "dtc-bench-engine-v1": bench_micro_host --smoke output
 *     (BENCH_engine.json).  Rows are matched by (kernel, n);
 *     deterministic counters (*_b_round_ops, matrix shape, reps)
 *     must match exactly, wall-clock fields (*_ms) compare within a
 *     relative tolerance.
 *   - "dtc-metrics-v1": metrics::toJson() snapshots.  Counters are
 *     exact (they count work, not time); histogram sample counts are
 *     exact; histogram statistics and gauges are wall-clock class.
 *
 * Wall-clock checks can be downgraded to advisories (annotate, don't
 * fail) for noisy single-core CI runners; counter mismatches always
 * fail.  The derived "speedup" field is ignored — it is the ratio of
 * two independently-tolerated times.
 */
#ifndef DTC_OBS_BENCH_COMPARE_H
#define DTC_OBS_BENCH_COMPARE_H

#include <string>
#include <vector>

#include "obs/json.h"

namespace dtc {
namespace obs {
namespace compare {

struct Options
{
    /** Relative tolerance for wall-clock fields (0.25 = ±25%). */
    double tolerance = 0.25;

    /**
     * Absolute slack (ms) under which wall-clock diffs never count:
     * sub-floor phases are pure timer noise.
     */
    double absFloorMs = 0.05;

    /** Wall-clock violations annotate instead of failing. */
    bool wallclockAdvisory = false;
};

struct Report
{
    int checks = 0; ///< Individual comparisons performed.
    std::vector<std::string> failures;   ///< Gate-breaking.
    std::vector<std::string> advisories; ///< Informational only.

    bool ok() const { return failures.empty(); }

    /** Human-readable multi-line summary. */
    std::string toString() const;
};

/** Compares two "dtc-bench-engine-v1" documents. */
Report compareEngineBench(const JsonValue& baseline,
                          const JsonValue& current,
                          const Options& opts);

/** Compares two "dtc-metrics-v1" documents. */
Report compareMetrics(const JsonValue& baseline,
                      const JsonValue& current, const Options& opts);

} // namespace compare
} // namespace obs
} // namespace dtc

#endif // DTC_OBS_BENCH_COMPARE_H
