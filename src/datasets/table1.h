/**
 * @file
 * Analogs of the paper's Table-1 benchmark matrices.
 *
 * The eight representative matrices (YeastH, OVCAR-8H, Yeast, DD,
 * web-BerkStan, reddit, ddi, protein) are synthesized with the
 * generators in generators.h, scaled down to fit a single-core CPU
 * budget (see DESIGN.md).  Each analog preserves the property the
 * paper's analysis keys on: its structural class and its average row
 * length regime (Type I: AvgRowL 2-12, Type II: AvgRowL ~250-600).
 *
 * The scaling factors per matrix:
 *   - Type I matrices keep AvgRowL exactly and shrink M ~10-25x.
 *   - Type II matrices keep AvgRowL within the paper's regime and
 *     shrink M so NNZ stays in the low millions.  ddi keeps the
 *     paper's exact M = 4267 (it matters for the SparTA size-limit
 *     reproduction in Table 4).
 */
#ifndef DTC_DATASETS_TABLE1_H
#define DTC_DATASETS_TABLE1_H

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/csr.h"

namespace dtc {

/** Which AvgRowL regime a matrix belongs to (paper Section 3). */
enum class MatrixType { TypeI, TypeII };

/** Descriptor of one Table-1 analog matrix. */
struct Table1Entry
{
    std::string name;   ///< Full dataset name (paper spelling).
    std::string abbr;   ///< Abbreviation used in the paper's tables.
    MatrixType type;    ///< Type I (short rows) or Type II (long rows).
    int64_t paperRows;  ///< M (=K) in the paper.
    int64_t paperNnz;   ///< NNZ in the paper.
    double paperAvgRowL; ///< AvgRowL in the paper.
    uint64_t seed;      ///< Generator seed (deterministic build).

    /** Builds the scaled analog matrix (labels shuffled). */
    CsrMatrix make() const;
};

/** Returns the eight Table-1 analog descriptors, in paper order. */
const std::vector<Table1Entry>& table1Entries();

/** Looks an entry up by abbreviation ("YH", "reddit", ...). */
const Table1Entry& table1ByAbbr(const std::string& abbr);

/**
 * The four graphs of the Fig. 16 end-to-end GCN case study: YeastH,
 * protein (from Table 1) plus analogs of IGB-tiny and IGB-small
 * (homogeneous Illinois Graph Benchmark graphs).
 */
const std::vector<Table1Entry>& gnnCaseStudyEntries();

} // namespace dtc

#endif // DTC_DATASETS_TABLE1_H
