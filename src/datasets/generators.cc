#include "datasets/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "matrix/coo.h"

namespace dtc {

namespace {

/** Random nonzero value; kept away from zero so sums stay nonzero. */
float
randValue(Rng& rng)
{
    return rng.nextFloat(0.5f, 1.5f);
}

/** Finalizes a COO pattern: symmetrize, canonicalize, convert. */
CsrMatrix
finalize(CooMatrix& coo)
{
    coo.symmetrize();
    return CsrMatrix::fromCoo(coo);
}

} // namespace

CsrMatrix
genUniform(int64_t n, double avg_deg, Rng& rng)
{
    DTC_CHECK(n > 0 && avg_deg > 0.0);
    // Symmetrization roughly doubles off-diagonal entries, so draw
    // half the target count.
    int64_t draws = static_cast<int64_t>(
        static_cast<double>(n) * avg_deg / 2.0);
    CooMatrix coo(n, n);
    coo.reserve(static_cast<size_t>(draws) * 2);
    for (int64_t i = 0; i < draws; ++i) {
        int32_t r = static_cast<int32_t>(rng.nextBounded(n));
        int32_t c = static_cast<int32_t>(rng.nextBounded(n));
        coo.add(r, c, randValue(rng));
    }
    return finalize(coo);
}

CsrMatrix
genPowerLaw(int64_t n, double avg_deg, double skew, Rng& rng)
{
    DTC_CHECK(n > 0 && avg_deg > 0.0 && skew >= 0.0);
    // Draw per-row degrees from Zipf over [1, n), then rescale to hit
    // the average.  Hub columns: column index drawn as Zipf too, then
    // mapped through a fixed random permutation so hubs are scattered.
    std::vector<int32_t> hub_map(static_cast<size_t>(n));
    std::iota(hub_map.begin(), hub_map.end(), 0);
    rng.shuffle(hub_map);

    std::vector<double> raw(static_cast<size_t>(n));
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        raw[i] = 1.0 + static_cast<double>(
                           rng.nextZipf(static_cast<uint64_t>(n), skew));
        sum += raw[i];
    }
    // Scale so the symmetrized matrix lands near avg_deg.
    double scale = static_cast<double>(n) * avg_deg / 2.0 / sum;

    CooMatrix coo(n, n);
    for (int64_t r = 0; r < n; ++r) {
        double want = raw[r] * scale;
        int64_t deg = static_cast<int64_t>(want);
        if (rng.nextDouble() < want - static_cast<double>(deg))
            deg++;
        for (int64_t k = 0; k < deg; ++k) {
            uint64_t z = rng.nextZipf(static_cast<uint64_t>(n), 0.8);
            coo.add(static_cast<int32_t>(r), hub_map[z], randValue(rng));
        }
    }
    return finalize(coo);
}

CsrMatrix
genRmat(int64_t n, int64_t nnz_target, double a, double b, double c,
        Rng& rng)
{
    DTC_CHECK(n > 0 && nnz_target > 0);
    DTC_CHECK_MSG(a + b + c <= 1.0 + 1e-9, "RMAT probabilities exceed 1");
    int levels = 0;
    int64_t dim = 1;
    while (dim < n) {
        dim <<= 1;
        levels++;
    }

    CooMatrix coo(n, n);
    coo.reserve(static_cast<size_t>(nnz_target));
    int64_t placed = 0;
    int64_t attempts = 0;
    const int64_t max_attempts = nnz_target * 8;
    while (placed < nnz_target / 2 && attempts < max_attempts) {
        attempts++;
        int64_t r = 0, col = 0;
        for (int l = 0; l < levels; ++l) {
            double p = rng.nextDouble();
            // Add per-level noise so the matrix is not perfectly
            // self-similar (standard RMAT practice).
            double aa = a * (0.9 + 0.2 * rng.nextDouble());
            double bb = b * (0.9 + 0.2 * rng.nextDouble());
            double cc = c * (0.9 + 0.2 * rng.nextDouble());
            double norm = aa + bb + cc + (1.0 - a - b - c);
            aa /= norm;
            bb /= norm;
            cc /= norm;
            r <<= 1;
            col <<= 1;
            if (p < aa) {
                // top-left quadrant
            } else if (p < aa + bb) {
                col |= 1;
            } else if (p < aa + bb + cc) {
                r |= 1;
            } else {
                r |= 1;
                col |= 1;
            }
        }
        if (r >= n || col >= n)
            continue;
        coo.add(static_cast<int32_t>(r), static_cast<int32_t>(col),
                randValue(rng));
        placed++;
    }
    return finalize(coo);
}

CsrMatrix
genBanded(int64_t n, int64_t band, double avg_deg, Rng& rng)
{
    DTC_CHECK(n > 0 && band > 0 && avg_deg > 0.0);
    CooMatrix coo(n, n);
    for (int64_t r = 0; r < n; ++r) {
        double want = avg_deg / 2.0;
        int64_t deg = static_cast<int64_t>(want);
        if (rng.nextDouble() < want - static_cast<double>(deg))
            deg++;
        for (int64_t k = 0; k < deg; ++k) {
            int64_t off = rng.nextInt(-band, band);
            int64_t c = r + off;
            if (c < 0 || c >= n)
                continue;
            coo.add(static_cast<int32_t>(r), static_cast<int32_t>(c),
                    randValue(rng));
        }
    }
    return finalize(coo);
}

CsrMatrix
genBlockDiagonal(int64_t n, int64_t block, double fill, Rng& rng)
{
    DTC_CHECK(n > 0 && block > 0 && fill > 0.0 && fill <= 1.0);
    CooMatrix coo(n, n);
    for (int64_t base = 0; base < n; base += block) {
        int64_t size = std::min(block, n - base);
        for (int64_t i = 0; i < size; ++i) {
            for (int64_t j = i; j < size; ++j) {
                if (rng.nextDouble() < fill) {
                    coo.add(static_cast<int32_t>(base + i),
                            static_cast<int32_t>(base + j),
                            randValue(rng));
                }
            }
        }
    }
    return finalize(coo);
}

CsrMatrix
genCommunity(int64_t n, int64_t n_comm, double avg_deg, double p_intra,
             Rng& rng, double degree_skew)
{
    DTC_CHECK(n > 0 && n_comm > 0 && n_comm <= n);
    DTC_CHECK(p_intra >= 0.0 && p_intra <= 1.0);
    const int64_t comm_size = (n + n_comm - 1) / n_comm;

    // Optional skewed degree sequence, rescaled to avg_deg.
    std::vector<double> deg_scale;
    if (degree_skew > 0.0) {
        deg_scale.resize(static_cast<size_t>(n));
        double sum = 0.0;
        for (int64_t i = 0; i < n; ++i) {
            deg_scale[i] = 1.0 + static_cast<double>(rng.nextZipf(
                                     static_cast<uint64_t>(n),
                                     degree_skew));
            sum += deg_scale[i];
        }
        const double norm = static_cast<double>(n) / sum;
        for (double& d : deg_scale)
            d *= norm;
    }

    CooMatrix coo(n, n);
    coo.reserve(static_cast<size_t>(static_cast<double>(n) * avg_deg));
    for (int64_t r = 0; r < n; ++r) {
        int64_t comm = r / comm_size;
        int64_t lo = comm * comm_size;
        int64_t hi = std::min(lo + comm_size, n);
        double want = avg_deg / 2.0;
        if (!deg_scale.empty())
            want *= deg_scale[r];
        int64_t deg = static_cast<int64_t>(want);
        if (rng.nextDouble() < want - static_cast<double>(deg))
            deg++;
        for (int64_t k = 0; k < deg; ++k) {
            int64_t c;
            if (rng.nextDouble() < p_intra) {
                c = lo + static_cast<int64_t>(rng.nextBounded(hi - lo));
            } else {
                c = static_cast<int64_t>(rng.nextBounded(n));
            }
            coo.add(static_cast<int32_t>(r), static_cast<int32_t>(c),
                    randValue(rng));
        }
    }
    return finalize(coo);
}

CsrMatrix
genComponents(int64_t n, int64_t comp_min, int64_t comp_max,
              double extra_edge_frac, Rng& rng)
{
    DTC_CHECK(n > 0 && comp_min > 1 && comp_min <= comp_max);
    CooMatrix coo(n, n);
    int64_t base = 0;
    while (base < n) {
        int64_t size =
            std::min(rng.nextInt(comp_min, comp_max), n - base);
        if (size < 2) {
            // A singleton node keeps a self-loop so no row is empty.
            coo.add(static_cast<int32_t>(base), static_cast<int32_t>(base),
                    randValue(rng));
            base += size;
            continue;
        }
        // Random spanning tree: each node links to a random earlier one.
        for (int64_t i = 1; i < size; ++i) {
            int64_t parent = rng.nextInt(0, i - 1);
            coo.add(static_cast<int32_t>(base + i),
                    static_cast<int32_t>(base + parent), randValue(rng));
        }
        int64_t extras = static_cast<int64_t>(
            extra_edge_frac * static_cast<double>(size));
        for (int64_t e = 0; e < extras; ++e) {
            int64_t i = rng.nextInt(0, size - 1);
            int64_t j = rng.nextInt(0, size - 1);
            if (i != j) {
                coo.add(static_cast<int32_t>(base + i),
                        static_cast<int32_t>(base + j), randValue(rng));
            }
        }
        base += size;
    }
    return finalize(coo);
}

std::vector<int32_t>
randomPermutation(int64_t n, Rng& rng)
{
    std::vector<int32_t> perm(static_cast<size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    rng.shuffle(perm);
    return perm;
}

CsrMatrix
shuffleLabels(const CsrMatrix& m, Rng& rng)
{
    return m.permuteSymmetric(randomPermutation(m.rows(), rng));
}

} // namespace dtc
