/**
 * @file
 * Synthetic sparse-matrix generators.
 *
 * The paper evaluates on real graphs (Table 1) and 414 SuiteSparse
 * matrices.  Those datasets are not available offline, so generators
 * here synthesize matrices of the same structural classes: molecular
 * graphs made of many small components (YeastH/OVCAR-8H/Yeast/DD),
 * power-law web graphs (web-BerkStan), dense community graphs
 * (reddit/protein), near-dense interaction graphs (ddi), plus banded /
 * block-diagonal / uniform matrices typical of SuiteSparse's
 * scientific-computing population.
 *
 * All generators are deterministic given an Rng, emit square matrices
 * with sorted CSR rows, and symmetrize patterns (GNN adjacency
 * convention, which the paper's pipeline assumes).
 */
#ifndef DTC_DATASETS_GENERATORS_H
#define DTC_DATASETS_GENERATORS_H

#include <cstdint>
#include <vector>

#include "matrix/csr.h"

namespace dtc {

class Rng;

/**
 * Uniform Erdos-Renyi-style random matrix: n*avg_deg entries placed
 * uniformly at random (duplicates merged, so the realized NNZ can be
 * slightly lower).  This is the "naturally balanced" class the paper
 * uses to calibrate the Selector threshold.
 */
CsrMatrix genUniform(int64_t n, double avg_deg, Rng& rng);

/**
 * Power-law matrix: row degrees follow a Zipf(@p skew) distribution
 * scaled to the requested average; columns are drawn preferentially
 * towards low indices, giving the heavy-hub structure of web/social
 * graphs.
 */
CsrMatrix genPowerLaw(int64_t n, double avg_deg, double skew, Rng& rng);

/**
 * R-MAT (recursive matrix) generator with partition probabilities
 * @p a, @p b, @p c (d = 1-a-b-c).  n is rounded up to a power of two
 * internally; indices outside [0, n) are re-drawn.
 */
CsrMatrix genRmat(int64_t n, int64_t nnz_target, double a, double b,
                  double c, Rng& rng);

/** Banded matrix: each row has ~avg_deg entries within +/- band. */
CsrMatrix genBanded(int64_t n, int64_t band, double avg_deg, Rng& rng);

/**
 * Block-diagonal matrix with dense-ish blocks of size @p block and
 * in-block fill probability @p fill.
 */
CsrMatrix genBlockDiagonal(int64_t n, int64_t block, double fill,
                           Rng& rng);

/**
 * Planted-community graph: nodes are split into @p n_comm equal
 * communities; each node draws ~avg_deg neighbours, a fraction
 * @p p_intra of them inside its own community.  @p degree_skew > 0
 * draws per-node degrees from a Zipf distribution rescaled to the
 * requested average (social-network-style hubs), which is what makes
 * per-window TC-block counts uneven and strict balancing worthwhile.
 */
CsrMatrix genCommunity(int64_t n, int64_t n_comm, double avg_deg,
                       double p_intra, Rng& rng,
                       double degree_skew = 0.0);

/**
 * Molecular-graph-style matrix: many independent small components of
 * size in [comp_min, comp_max], each a random spanning tree plus
 * @p extra_edge_frac * size extra random in-component edges.  Average
 * row length lands slightly above 2, matching the Type I matrices of
 * Table 1.
 */
CsrMatrix genComponents(int64_t n, int64_t comp_min, int64_t comp_max,
                        double extra_edge_frac, Rng& rng);

/** Returns a uniformly random permutation of [0, n). */
std::vector<int32_t> randomPermutation(int64_t n, Rng& rng);

/**
 * Randomly relabels rows/columns of @p m (symmetric permutation).
 * Generators produce matrices whose structure is aligned with the
 * index order; shuffling hides it so that reordering algorithms have
 * real work to do, as with real-world graph labelings.
 */
CsrMatrix shuffleLabels(const CsrMatrix& m, Rng& rng);

} // namespace dtc

#endif // DTC_DATASETS_GENERATORS_H
