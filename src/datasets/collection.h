/**
 * @file
 * A synthetic stand-in for the paper's 414-matrix SuiteSparse set.
 *
 * The paper sweeps 414 SuiteSparse matrices with >= 1M nonzeros,
 * square (TCGNN constraint) and int32-indexable (Sputnik constraint).
 * This module deterministically generates a collection with the same
 * cardinality and a comparable diversity of structure classes
 * (banded/FEM-like, power-law, block-diagonal, community, uniform,
 * R-MAT), scaled down in NNZ per DESIGN.md.
 */
#ifndef DTC_DATASETS_COLLECTION_H
#define DTC_DATASETS_COLLECTION_H

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/csr.h"

namespace dtc {

/** Structure class of a collection matrix. */
enum class CollectionClass
{
    Banded,
    PowerLaw,
    BlockDiagonal,
    Community,
    Uniform,
    Rmat,
};

/** Human-readable name of a collection class. */
const char* collectionClassName(CollectionClass c);

/** Descriptor of one matrix in the synthetic collection. */
struct CollectionEntry
{
    int id;                 ///< Index in [0, size).
    std::string name;       ///< e.g. "ss042_powerlaw".
    CollectionClass klass;  ///< Structure class.
    int64_t n;              ///< Rows = cols.
    int64_t nnzTarget;      ///< Approximate NNZ aimed for.
    uint64_t seed;          ///< Generator seed.

    /** Builds the matrix (deterministic; labels shuffled). */
    CsrMatrix make() const;
};

/**
 * Returns descriptors for the collection.  @p count defaults to the
 * paper's 414; smaller counts take a prefix (useful in tests).
 */
std::vector<CollectionEntry> makeCollection(int count = 414,
                                            uint64_t seed = 0x5517e);

} // namespace dtc

#endif // DTC_DATASETS_COLLECTION_H
