#include "datasets/collection.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "datasets/generators.h"

namespace dtc {

const char*
collectionClassName(CollectionClass c)
{
    switch (c) {
      case CollectionClass::Banded:
        return "banded";
      case CollectionClass::PowerLaw:
        return "powerlaw";
      case CollectionClass::BlockDiagonal:
        return "blockdiag";
      case CollectionClass::Community:
        return "community";
      case CollectionClass::Uniform:
        return "uniform";
      case CollectionClass::Rmat:
        return "rmat";
    }
    return "?";
}

CsrMatrix
CollectionEntry::make() const
{
    Rng rng(seed);
    double avg = static_cast<double>(nnzTarget) / static_cast<double>(n);
    CsrMatrix m;
    switch (klass) {
      case CollectionClass::Banded:
        m = genBanded(n, std::max<int64_t>(8, n / 64), avg, rng);
        break;
      case CollectionClass::PowerLaw:
        m = genPowerLaw(n, avg, 1.4, rng);
        break;
      case CollectionClass::BlockDiagonal: {
        // Choose block size so the requested fill is ~35%.
        int64_t block = std::max<int64_t>(
            8, static_cast<int64_t>(avg / 0.35));
        m = genBlockDiagonal(n, block, 0.35, rng);
        break;
      }
      case CollectionClass::Community:
        m = genCommunity(n, std::max<int64_t>(4, n / 1024), avg, 0.8,
                         rng);
        break;
      case CollectionClass::Uniform:
        m = genUniform(n, avg, rng);
        break;
      case CollectionClass::Rmat:
        m = genRmat(n, nnzTarget, 0.55, 0.2, 0.2, rng);
        break;
    }
    return shuffleLabels(m, rng);
}

std::vector<CollectionEntry>
makeCollection(int count, uint64_t seed)
{
    DTC_CHECK(count > 0);
    Rng rng(seed);
    std::vector<CollectionEntry> out;
    out.reserve(static_cast<size_t>(count));
    const CollectionClass classes[] = {
        CollectionClass::Banded,       CollectionClass::PowerLaw,
        CollectionClass::BlockDiagonal, CollectionClass::Community,
        CollectionClass::Uniform,      CollectionClass::Rmat,
    };
    for (int i = 0; i < count; ++i) {
        CollectionEntry e;
        e.id = i;
        e.klass = classes[i % 6];
        // Spread sizes log-uniformly: n in [2k, 48k].
        double t = rng.nextDouble();
        e.n = static_cast<int64_t>(2048.0 * std::pow(24.0, t));
        // Average row length in [8, 96], also log-uniform, but capped
        // so NNZ stays within the collection budget.
        double avg = 8.0 * std::pow(12.0, rng.nextDouble());
        int64_t nnz = static_cast<int64_t>(avg * static_cast<double>(e.n));
        const int64_t nnz_lo = 60000, nnz_hi = 900000;
        if (nnz < nnz_lo)
            nnz = nnz_lo;
        if (nnz > nnz_hi)
            nnz = nnz_hi;
        e.nnzTarget = nnz;
        e.seed = rng.next64();
        std::ostringstream name;
        name << "ss" << i << "_" << collectionClassName(e.klass);
        e.name = name.str();
        out.push_back(std::move(e));
    }
    return out;
}

} // namespace dtc
