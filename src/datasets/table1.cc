#include "datasets/table1.h"

#include "common/check.h"
#include "common/rng.h"
#include "datasets/generators.h"

namespace dtc {

CsrMatrix
Table1Entry::make() const
{
    Rng rng(seed);
    CsrMatrix m;
    if (abbr == "YH") {
        // Protein-interaction bio-assay graphs: huge forests of tiny
        // molecular components, AvgRowL ~2.07.
        m = genComponents(120000, 8, 28, 0.10, rng);
    } else if (abbr == "OH") {
        m = genComponents(76000, 8, 26, 0.11, rng);
    } else if (abbr == "Yt") {
        m = genComponents(68000, 8, 24, 0.14, rng);
    } else if (abbr == "DD") {
        // Protein-structure graphs: denser small components, ~5/row.
        m = genComponents(33000, 30, 120, 1.6, rng);
    } else if (abbr == "WB") {
        // Web graph: power-law with hubs, AvgRowL ~11.
        m = genRmat(48000, 48000 * 11, 0.57, 0.19, 0.19, rng);
    } else if (abbr == "reddit") {
        // Social graph: strong communities, very long rows, heavy
        // hubs (degree skew drives the Fig. 15 imbalance).
        m = genCommunity(24576, 24, 520.0, 0.85, rng, 1.6);
    } else if (abbr == "ddi") {
        // Drug-drug interactions: small and near-dense (~12% density).
        m = genUniform(4267, 500.0, rng);
    } else if (abbr == "protein") {
        // Protein associations: dense biological communities.
        m = genCommunity(26112, 24, 215.0, 0.80, rng);
    } else if (abbr == "IGB-tiny") {
        // IGB homogeneous tiny: citation-style communities, avg ~12.
        m = genCommunity(20000, 64, 12.0, 0.7, rng);
    } else if (abbr == "IGB-small") {
        m = genCommunity(60000, 128, 12.0, 0.7, rng);
    } else {
        DTC_CHECK_MSG(false, "unknown Table-1 abbreviation: " << abbr);
    }
    // Real-world labelings do not align with generator order.
    return shuffleLabels(m, rng);
}

const std::vector<Table1Entry>&
table1Entries()
{
    static const std::vector<Table1Entry> entries = {
        {"YeastH", "YH", MatrixType::TypeI, 3138114, 6487230, 2.07,
         0xa11ce001},
        {"OVCAR-8H", "OH", MatrixType::TypeI, 1889542, 3946402, 2.09,
         0xa11ce002},
        {"Yeast", "Yt", MatrixType::TypeI, 1710902, 3636546, 2.13,
         0xa11ce003},
        {"DD", "DD", MatrixType::TypeI, 334925, 1686092, 5.03,
         0xa11ce004},
        {"web-BerkStan", "WB", MatrixType::TypeI, 685230, 7600595, 11.09,
         0xa11ce005},
        {"reddit", "reddit", MatrixType::TypeII, 232965, 114848857,
         492.99, 0xa11ce006},
        {"ddi", "ddi", MatrixType::TypeII, 4267, 2140089, 501.54,
         0xa11ce007},
        {"protein", "protein", MatrixType::TypeII, 132534, 79255038,
         598.00, 0xa11ce008},
    };
    return entries;
}

const std::vector<Table1Entry>&
gnnCaseStudyEntries()
{
    static const std::vector<Table1Entry> entries = {
        table1ByAbbr("YH"),
        table1ByAbbr("protein"),
        {"IGB-tiny", "IGB-tiny", MatrixType::TypeI, 100000, 547416,
         5.47, 0xa11ce009},
        {"IGB-small", "IGB-small", MatrixType::TypeI, 1000000,
         12070502, 12.07, 0xa11ce00a},
    };
    return entries;
}

const Table1Entry&
table1ByAbbr(const std::string& abbr)
{
    for (const auto& e : table1Entries()) {
        if (e.abbr == abbr)
            return e;
    }
    DTC_CHECK_MSG(false, "no Table-1 entry named " << abbr);
    throw std::logic_error("unreachable");
}

} // namespace dtc
