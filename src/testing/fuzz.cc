#include "testing/fuzz.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/fault.h"
#include "common/fault_sites.h"
#include "common/rng.h"
#include "formats/serialize.h"
#include "gpusim/arch.h"
#include "gpusim/cost_model.h"
#include "matrix/mm_io.h"
#include "runtime/runtime.h"
#include "serve/prepared_cache.h"
#include "serve/service.h"
#include "testing/generators.h"
#include "testing/properties.h"

namespace dtc {
namespace testing {

namespace {

/** Stable stem for a dumped artifact. */
std::string
artifactStem(StructureFamily family, uint64_t seed,
             const OracleOutcome& o)
{
    std::ostringstream os;
    os << structureFamilyName(family) << "-s" << seed << "-k"
       << static_cast<int>(o.kind) << "-" << precisionName(o.precision)
       << "-e" << (o.engineOn ? 1 : 0) << "-v" << (o.simdOn ? 1 : 0)
       << "-t" << o.threads;
    return os.str();
}

void
logLine(const FuzzOptions& opt, const std::string& line)
{
    if (opt.log)
        *opt.log << line << "\n";
}

/**
 * One fault-contract run: executes @p body under an armed fault and
 * classifies the outcome.  @p body returns the failure description
 * from the oracle's judgement ("" = verified correct).
 */
void
faultRun(FuzzStats& stats, const FuzzOptions& opt,
         const std::string& what,
         const std::function<std::string()>& body)
{
    ++stats.faultRuns;
    try {
        const std::string verdict = body();
        if (!verdict.empty()) {
            ++stats.failures;
            stats.failureLines.push_back(
                "fault sweep [" + what +
                "]: silent corruption — " + verdict);
            logLine(opt, stats.failureLines.back());
        }
    } catch (const DtcError&) {
        // Typed error: the contract's happy unhappy-path.
    } catch (const std::exception& e) {
        ++stats.failures;
        stats.failureLines.push_back("fault sweep [" + what +
                                     "]: untyped exception — " +
                                     e.what());
        logLine(opt, stats.failureLines.back());
    }
}

} // namespace

std::string
FuzzStats::summary() const
{
    std::ostringstream os;
    os << cases << " cases, " << combos << " combos (" << passes
       << " pass, " << refusals << " refused, " << skips
       << " skipped), " << properties << " properties, " << faultRuns
       << " fault runs, " << failures << " failures";
    return os.str();
}

FuzzStats
fuzzOneCase(StructureFamily family, uint64_t seed,
            const FuzzOptions& opt)
{
    FuzzStats stats;
    stats.cases = 1;

    OracleCase c;
    c.a = generateStructure(family, seed, opt.scale);
    c.denseWidth = opt.denseWidth;
    c.seed = seed ^ 0xfeedface12345678ull;
    {
        std::ostringstream os;
        os << structureFamilyName(family) << " seed=" << seed
           << " scale=" << opt.scale;
        c.label = os.str();
    }

    const OracleReport report = runOracle(c, opt.oracle);
    stats.combos = report.combos();
    stats.passes = report.passes;
    stats.refusals = report.refusals;
    stats.skips = report.skips;
    stats.failures = report.failures;
    if (report.ok()) {
        logLine(opt, c.label + ": " + report.summary());
        return stats;
    }

    // Shrink the first failing combo and dump a replayable artifact.
    const OracleOutcome& f = *report.firstFailure();
    const auto predicate = [&](const CsrMatrix& m) {
        return comboFails(f.kind, f.precision, f.engineOn, f.simdOn,
                          f.threads, m, c.denseWidth, c.seed,
                          opt.oracle.toleranceSafety);
    };
    const ShrinkResult shrunk =
        shrinkMatrix(c.a, predicate, opt.shrinkEvaluations);

    std::string fresh_detail;
    comboFails(f.kind, f.precision, f.engineOn, f.simdOn, f.threads,
               shrunk.matrix, c.denseWidth, c.seed,
               opt.oracle.toleranceSafety, &fresh_detail);

    std::ostringstream line;
    line << c.label << ": " << f.describe() << " | shrunk to "
         << shrunk.matrix.rows() << "x" << shrunk.matrix.cols()
         << " nnz=" << shrunk.matrix.nnz() << " in "
         << shrunk.evaluations << " evals: " << fresh_detail;
    stats.failureLines.push_back(line.str());
    logLine(opt, line.str());

    if (!opt.corpusDir.empty()) {
        FailureArtifact info;
        info.family = structureFamilyName(family);
        info.structSeed = seed;
        info.scale = opt.scale;
        info.kind = f.kind;
        info.precision = f.precision;
        info.engineOn = f.engineOn;
        info.simdOn = f.simdOn;
        info.threads = f.threads;
        info.denseWidth = c.denseWidth;
        info.denseSeed = c.seed;
        info.detail = fresh_detail.empty() ? f.detail : fresh_detail;
        const std::string path = writeFailureArtifact(
            opt.corpusDir, artifactStem(family, seed, f),
            shrunk.matrix, info);
        logLine(opt, "  artifact: " + path);
    }
    return stats;
}

FuzzStats
runSmokeCampaign(const FuzzOptions& opt)
{
    FuzzStats stats;
    for (StructureFamily family : allStructureFamilies())
        for (uint64_t seed : opt.seeds)
            stats.absorb(fuzzOneCase(family, seed, opt));
    stats.absorb(runPropertySweep(opt));
    stats.absorb(runFaultSweep(opt));
    return stats;
}

FuzzStats
runTimedCampaign(const FuzzOptions& opt, double minutes,
                 uint64_t base_seed)
{
    FuzzStats stats;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(minutes * 60.0));
    uint64_t seed = base_seed;
    size_t family_idx = 0;
    const auto& families = allStructureFamilies();
    while (std::chrono::steady_clock::now() < deadline) {
        stats.absorb(
            fuzzOneCase(families[family_idx], seed, opt));
        family_idx = (family_idx + 1) % families.size();
        if (family_idx == 0)
            ++seed;
    }
    return stats;
}

FuzzStats
runSoakCampaign(const FuzzOptions& opt, int64_t rounds,
                uint64_t base_seed)
{
    FuzzStats stats;
    const CostModel cm(ArchSpec::rtx4090());
    const auto& families = allStructureFamilies();
    const std::vector<std::string>& sites = fault::allFaultSites();
    const ErrorCode codes[] = {ErrorCode::ResourceExhausted,
                               ErrorCode::Internal,
                               ErrorCode::CorruptData};
    for (int64_t round = 0; round < rounds; ++round) {
        // One independent seeded scenario per round: a structure
        // family, a fault site/ordinal/code, a deadline (counted in
        // cancellation polls, so the round terminates without any
        // wall-clock dependence), and the guard on or off.
        Rng r(base_seed + static_cast<uint64_t>(round) * 0x9e3779b9ull);
        const StructureFamily family =
            families[r.nextBounded(families.size())];
        const uint64_t seed = 1 + r.nextBounded(1u << 20);
        const std::string& site = sites[r.nextBounded(sites.size())];
        const int64_t nth =
            1 + static_cast<int64_t>(r.nextBounded(4));
        const ErrorCode code = codes[r.nextBounded(3)];
        runtime::RuntimeOptions ropt;
        ropt.deadlineMs = 0; // deterministic: polls, not wall-clock
        if (r.nextBounded(4) != 0)
            ropt.deadlineChecks =
                1 + static_cast<int64_t>(r.nextBounded(256));
        ropt.guard.sampleFraction =
            r.nextBounded(2) != 0 ? 0.05 : 0.0;

        std::ostringstream scen;
        scen << "soak round=" << round << " family="
             << structureFamilyName(family) << " seed=" << seed
             << " fault=" << site << ":" << nth << ":"
             << errorCodeName(code)
             << " deadlineChecks=" << ropt.deadlineChecks
             << " guard=" << ropt.guard.sampleFraction;

        ++stats.cases;
        ++stats.faultRuns;
        try {
            fault::ScopedFault f(site, nth, code);
            const CsrMatrix a =
                generateStructure(family, seed, opt.scale);
            const DenseMatrix b =
                makeDenseOperand(a.cols(), opt.denseWidth, seed);
            DenseMatrix c(a.rows(), b.cols());
            runtime::RunReport rep;
            runtime::Runtime rt(a, cm, ropt);
            rt.run(b, c, &rep);
            // The run completed, so the result must be correct: the
            // fault and the deadline may delay or reroute a request,
            // never corrupt it.
            const std::string verdict =
                judgeResult(a, b, c, rep.precision,
                            /*bit_exact=*/false,
                            /*tolerance_safety=*/8.0);
            if (verdict.empty()) {
                ++stats.passes;
                logLine(opt,
                        scen.str() + " -> ok kernel=" + rep.kernel);
            } else {
                ++stats.failures;
                stats.failureLines.push_back(
                    scen.str() + " -> silent corruption: " + verdict);
                logLine(opt, stats.failureLines.back());
            }
        } catch (const DtcError& e) {
            // A typed error is the contract's other legal outcome.
            ++stats.passes;
            logLine(opt, scen.str() + " -> typed " +
                             errorCodeName(e.code()));
        } catch (const std::exception& e) {
            ++stats.failures;
            stats.failureLines.push_back(
                scen.str() +
                " -> untyped exception: " + std::string(e.what()));
            logLine(opt, stats.failureLines.back());
        }
    }
    return stats;
}

FuzzStats
runServeSoakCampaign(const FuzzOptions& opt, int64_t rounds,
                     uint64_t base_seed)
{
    FuzzStats stats;
    const CostModel cm(ArchSpec::rtx4090());
    const auto& families = allStructureFamilies();
    const Precision precisions[] = {Precision::Fp32, Precision::Tf32,
                                    Precision::Fp16};
    const std::vector<std::string>& sites = fault::allFaultSites();
    const ErrorCode codes[] = {ErrorCode::ResourceExhausted,
                               ErrorCode::Internal,
                               ErrorCode::CorruptData};

    for (int64_t round = 0; round < rounds; ++round) {
        Rng r(base_seed +
              static_cast<uint64_t>(round) * 0x9e3779b97f4a7c15ull);

        // A small shared matrix pool: tenants resubmitting the same
        // contents is what exercises cache hits and coalesced
        // batches; a tight byte budget (sometimes) forces evictions
        // mid-traffic.
        const size_t pool_n = 2 + r.nextBounded(2);
        std::vector<CsrMatrix> pool;
        for (size_t i = 0; i < pool_n; ++i)
            pool.push_back(generateStructure(
                families[r.nextBounded(families.size())],
                1 + r.nextBounded(1u << 20), opt.scale));

        serve::ServeOptions so;
        so.threads = 1 + static_cast<int>(r.nextBounded(3));
        so.queueCapacity = 4 + static_cast<int64_t>(r.nextBounded(28));
        so.maxBatch = 1 + static_cast<int64_t>(r.nextBounded(8));
        so.deterministic = r.nextBounded(4) == 0;
        so.cacheBytes =
            r.nextBounded(3) == 0
                ? serve::PreparedCache::entryBytes(pool[0]) + 1
                : int64_t{64} << 20;
        so.runtime.guard.sampleFraction =
            r.nextBounded(2) != 0 ? 0.05 : 0.0;

        // Occasionally arm a fault for the whole round; arming is
        // thread-safe, and the contract below covers both outcomes.
        std::unique_ptr<fault::ScopedFault> armed;
        std::string fault_desc = "none";
        if (r.nextBounded(3) == 0) {
            const std::string& site =
                sites[r.nextBounded(sites.size())];
            const int64_t nth =
                1 + static_cast<int64_t>(r.nextBounded(4));
            const ErrorCode code = codes[r.nextBounded(3)];
            armed = std::make_unique<fault::ScopedFault>(site, nth,
                                                         code);
            fault_desc = site + ":" + std::to_string(nth) + ":" +
                         errorCodeName(code);
        }

        std::ostringstream scen;
        scen << "serve-soak round=" << round << " pool=" << pool_n
             << " threads=" << so.threads << " queue="
             << so.queueCapacity << " maxBatch=" << so.maxBatch
             << " det=" << so.deterministic << " fault="
             << fault_desc;
        ++stats.cases;

        // One issued request: the operands the judge needs plus the
        // future carrying the outcome.
        struct Issued
        {
            const CsrMatrix* a;
            DenseMatrix b;
            std::future<serve::SubmitResult> fut;
        };
        std::mutex imu;
        std::vector<Issued> issued;
        std::atomic<int64_t> typed_at_submit{0};
        std::atomic<int64_t> untyped_at_submit{0};

        {
            serve::SpmmService svc(so, &cm);
            const int clients = 2 + static_cast<int>(r.nextBounded(3));
            std::vector<std::thread> threads;
            for (int ci = 0; ci < clients; ++ci) {
                const uint64_t cseed =
                    r.next64() ^ (static_cast<uint64_t>(ci) << 32);
                threads.emplace_back([&, cseed]() {
                    Rng cr(cseed);
                    const int n =
                        2 + static_cast<int>(cr.nextBounded(5));
                    for (int i = 0; i < n; ++i) {
                        const CsrMatrix& a =
                            pool[cr.nextBounded(pool.size())];
                        DenseMatrix b = makeDenseOperand(
                            a.cols(), opt.denseWidth, cr.next64());
                        serve::SubmitOptions sub;
                        if (cr.nextBounded(4) == 0)
                            sub.deadlineMs =
                                1 + static_cast<int64_t>(
                                        cr.nextBounded(50));
                        const Precision p =
                            precisions[cr.nextBounded(3)];
                        DenseMatrix b_copy(b.rows(), b.cols());
                        std::copy(b.data(), b.data() + b.size(),
                                  b_copy.data());
                        try {
                            auto fut =
                                svc.submit(svc.attach(a),
                                           std::move(b_copy), p, sub);
                            std::lock_guard<std::mutex> lock(imu);
                            issued.push_back(
                                {&a, std::move(b), std::move(fut)});
                        } catch (const DtcError&) {
                            // Admission rejection (queue full) or a
                            // typed submit-path failure: legal.
                            typed_at_submit.fetch_add(1);
                        } catch (...) {
                            untyped_at_submit.fetch_add(1);
                        }
                    }
                });
            }
            for (std::thread& t : threads)
                t.join();
            svc.drain();
        }

        stats.passes += typed_at_submit.load();
        stats.combos += typed_at_submit.load();
        if (untyped_at_submit.load() != 0) {
            stats.failures += untyped_at_submit.load();
            stats.failureLines.push_back(
                scen.str() + " -> untyped exception at submit");
            logLine(opt, stats.failureLines.back());
        }

        for (Issued& iss : issued) {
            ++stats.combos;
            ++stats.faultRuns;
            try {
                serve::SubmitResult res = iss.fut.get();
                const std::string verdict = judgeResult(
                    *iss.a, iss.b, res.c, res.report.precision,
                    /*bit_exact=*/false, /*tolerance_safety=*/8.0);
                if (verdict.empty()) {
                    ++stats.passes;
                } else {
                    ++stats.failures;
                    stats.failureLines.push_back(
                        scen.str() +
                        " -> silent corruption: " + verdict);
                    logLine(opt, stats.failureLines.back());
                }
            } catch (const DtcError& e) {
                // Typed failure through the future (deadline,
                // exhausted reroute chain, injected fault): legal.
                ++stats.passes;
                logLine(opt, scen.str() + " -> typed " +
                                 errorCodeName(e.code()));
            } catch (const std::exception& e) {
                ++stats.failures;
                stats.failureLines.push_back(
                    scen.str() + " -> untyped exception: " +
                    std::string(e.what()));
                logLine(opt, stats.failureLines.back());
            }
        }
        logLine(opt, scen.str() + " -> " +
                         std::to_string(issued.size()) +
                         " served, " +
                         std::to_string(typed_at_submit.load()) +
                         " rejected typed");
    }
    return stats;
}

FuzzStats
runPropertySweep(const FuzzOptions& opt)
{
    FuzzStats stats;

    // A representative kernel slice: the paper's kernel at its target
    // precision, a CUDA-core baseline, and the deepest-pipelined TC
    // baseline.  The oracle already differentials every kernel; the
    // properties guard the *pipeline* (reorder, serialize), so a
    // slice keeps the sweep inside the smoke budget.
    struct Slice
    {
        KernelKind kind;
        Precision precision;
    };
    const std::vector<Slice> slice = {
        {KernelKind::Dtc, Precision::Tf32},
        {KernelKind::CuSparse, Precision::Fp32},
        {KernelKind::FlashLlmV2, Precision::Tf32},
    };
    const std::vector<ReorderMethod> methods = {
        ReorderMethod::Tca, ReorderMethod::Louvain,
        ReorderMethod::Metis};

    auto record = [&](const PropertyResult& r,
                      const std::string& what) {
        ++stats.properties;
        if (!r.passed) {
            ++stats.failures;
            stats.failureLines.push_back("property [" + what +
                                         "]: " + r.detail);
            logLine(opt, stats.failureLines.back());
        }
    };

    for (StructureFamily family : allStructureFamilies()) {
        const uint64_t seed = opt.seeds.empty() ? 1 : opt.seeds[0];
        const CsrMatrix a =
            generateStructure(family, seed, opt.scale);
        const uint64_t dense_seed = seed ^ 0xfeedface12345678ull;
        const std::string where =
            std::string(structureFamilyName(family)) + " seed=" +
            std::to_string(seed);
        ++stats.cases;

        for (const Slice& s : slice) {
            const std::string label =
                where + " " + kernelKindName(s.kind);
            record(checkLinearity(a, s.kind, s.precision,
                                  opt.denseWidth, dense_seed,
                                  opt.oracle.toleranceSafety),
                   label + " linearity");
            record(checkScalarScaling(a, s.kind, s.precision,
                                      opt.denseWidth, dense_seed),
                   label + " scalar-scaling");
            record(checkSerializeRoundTrip(a, s.kind, s.precision,
                                           opt.denseWidth,
                                           dense_seed),
                   label + " serialize-round-trip");
        }
        for (ReorderMethod method : methods)
            record(checkReorderInvariance(
                       a, method, KernelKind::Dtc, Precision::Tf32,
                       opt.denseWidth, dense_seed,
                       opt.oracle.toleranceSafety),
                   where + std::string(" reorder-invariance-") +
                       reorderMethodName(method));
    }
    return stats;
}

FuzzStats
runFaultSweep(const FuzzOptions& opt)
{
    FuzzStats stats;
    const CsrMatrix a =
        generateStructure(StructureFamily::PowerLaw, 7, 0);
    const DenseMatrix b =
        makeDenseOperand(a.cols(), opt.denseWidth, 7);

    const std::vector<ErrorCode> codes = {
        ErrorCode::ResourceExhausted, ErrorCode::CorruptData};
    const std::vector<int64_t> nths = {1, 2};

    // Kernel pipeline sites: SGT condensation, ME-TCF conversion and
    // the selector all run inside DtcKernel::prepare.
    for (const char* site : {"sgt.condense.chunk", "me_tcf.convert",
                             "selector.decide"})
        for (int64_t nth : nths)
            for (ErrorCode code : codes) {
                std::ostringstream what;
                what << site << ":" << nth << ":"
                     << errorCodeName(code);
                faultRun(stats, opt, what.str(), [&]() {
                    fault::ScopedFault guard(site, nth, code);
                    std::unique_ptr<SpmmKernel> kernel =
                        makeKernel(KernelKind::Dtc);
                    const Refusal r = kernel->prepare(a);
                    if (!r.ok())
                        return std::string(); // structured refusal
                    DenseMatrix got(a.rows(), b.cols());
                    kernel->compute(b, got);
                    return judgeResult(a, b, got, Precision::Tf32,
                                       /*bit_exact=*/true,
                                       opt.oracle.toleranceSafety);
                });
            }

    // Serialization site: load must throw or reproduce the matrix.
    for (int64_t nth : nths)
        for (ErrorCode code : codes) {
            std::ostringstream what;
            what << "serialize.read_array:" << nth << ":"
                 << errorCodeName(code);
            faultRun(stats, opt, what.str(), [&]() {
                std::stringstream io;
                saveCsr(io, a);
                fault::ScopedFault guard("serialize.read_array", nth,
                                         code);
                const CsrMatrix reloaded = loadCsr(io);
                return reloaded == a
                           ? std::string()
                           : std::string(
                                 "reloaded CSR differs from saved");
            });
        }

    // Matrix Market reader site.
    for (ErrorCode code : codes) {
        std::ostringstream what;
        what << "mm_io.read:1:" << errorCodeName(code);
        faultRun(stats, opt, what.str(), [&]() {
            std::stringstream io;
            writeMatrixMarket(io, a.toCoo());
            fault::ScopedFault guard("mm_io.read", 1, code);
            const CsrMatrix reloaded =
                CsrMatrix::fromCoo(readMatrixMarket(io));
            return reloaded == a
                       ? std::string()
                       : std::string(
                             "re-read matrix differs from written");
        });
    }
    return stats;
}

FuzzStats
replayCorpus(const std::string& dir, std::ostream* log)
{
    FuzzStats stats;
    for (const std::string& path : listCaseFiles(dir)) {
        ++stats.cases;
        ++stats.combos;
        std::string detail;
        const LoadedArtifact artifact = loadFailureArtifact(path);
        if (replayArtifact(artifact, &detail)) {
            ++stats.failures;
            stats.failureLines.push_back("corpus regression " + path +
                                         ": " + detail);
            if (log)
                *log << stats.failureLines.back() << "\n";
        } else {
            ++stats.passes;
            if (log)
                *log << path << ": pass\n";
        }
    }
    return stats;
}

std::vector<std::string>
listCaseFiles(const std::string& dir)
{
    std::vector<std::string> paths;
    if (!std::filesystem::is_directory(dir))
        return paths;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".case")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

} // namespace testing
} // namespace dtc
