/**
 * @file
 * Metamorphic properties of SpMM — oracles that need no ground truth.
 *
 * Each check derives a second input from the first by a transformation
 * with a known effect on the output (paper Section 4's reorder-then-
 * condense pipeline makes these the natural invariants):
 *
 *   - reorder invariance: symmetric relabeling by any registry
 *     reordering (TCA/Louvain/METIS/...) permutes C's rows and nothing
 *     else, and the inverse permutation restores the original matrix
 *     exactly;
 *   - linearity: A(B1 + B2) = A*B1 + A*B2 within the accumulated
 *     rounding budget;
 *   - scalar scaling: A(2B) is bit-identical to 2*(A*B) — powers of
 *     two commute with every rounding mode;
 *   - serialize round trip: CSR and ME-TCF survive
 *     save -> load -> compute with bit-identical results.
 */
#ifndef DTC_TESTING_PROPERTIES_H
#define DTC_TESTING_PROPERTIES_H

#include <cstdint>
#include <string>

#include "common/precision.h"
#include "kernels/kernel.h"
#include "matrix/csr.h"
#include "reorder/orderings.h"

namespace dtc {
namespace testing {

/** Outcome of one metamorphic check. */
struct PropertyResult
{
    bool passed = true;

    /** Non-empty on failure; on a pass may note "refused"/"skipped". */
    std::string detail;

    static PropertyResult pass(std::string note = std::string())
    {
        return {true, std::move(note)};
    }

    static PropertyResult fail(std::string why)
    {
        return {false, std::move(why)};
    }
};

/**
 * Symmetric relabeling invariance: with P from @p method,
 * kernel(P A P^T) applied to the row-permuted B must equal the
 * row-permuted kernel(A) B within tolerance, and
 * permuteSymmetric(perm) then permuteSymmetric(perm^-1) must restore
 * @p a exactly.  Non-square inputs and kernel refusals pass with a
 * note.
 */
PropertyResult checkReorderInvariance(const CsrMatrix& a,
                                      ReorderMethod method,
                                      KernelKind kind, Precision p,
                                      int64_t dense_width,
                                      uint64_t seed,
                                      double tolerance_safety = 8.0);

/** A(B1+B2) = A*B1 + A*B2 within the combined rounding budget. */
PropertyResult checkLinearity(const CsrMatrix& a, KernelKind kind,
                              Precision p, int64_t dense_width,
                              uint64_t seed,
                              double tolerance_safety = 8.0);

/**
 * A(2B) bit-equals 2*(A*B) for bit-exact kernels (tolerance-checked
 * for the rest): multiplying by a power of two commutes with TF32/
 * BF16/FP16 rounding and with FP32 accumulation.
 */
PropertyResult checkScalarScaling(const CsrMatrix& a, KernelKind kind,
                                  Precision p, int64_t dense_width,
                                  uint64_t seed);

/**
 * CSR and ME-TCF binary round trips: save -> load reproduces the
 * matrix exactly (operator== / toCsr), and computing on the reloaded
 * CSR is bit-identical to computing on the original.
 */
PropertyResult checkSerializeRoundTrip(const CsrMatrix& a,
                                       KernelKind kind, Precision p,
                                       int64_t dense_width,
                                       uint64_t seed);

} // namespace testing
} // namespace dtc

#endif // DTC_TESTING_PROPERTIES_H
