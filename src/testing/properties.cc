#include "testing/properties.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "common/rng.h"
#include "formats/me_tcf.h"
#include "formats/serialize.h"
#include "kernels/reference.h"
#include "testing/oracle.h"

namespace dtc {
namespace testing {

namespace {

constexpr double kEps32 = 5.97e-8; // 2^-24, rounded up

bool
bitEqual(const DenseMatrix& x, const DenseMatrix& y)
{
    if (x.rows() != y.rows() || x.cols() != y.cols())
        return false;
    if (x.size() == 0) // memcmp forbids null even for length 0
        return true;
    return std::memcmp(x.data(), y.data(),
                       x.size() * sizeof(float)) == 0;
}

/**
 * Runs @p kind at @p p on (a, b).  Returns false when the kernel
 * refuses or the combo is inexpressible (@p note explains); throws
 * whatever the kernel throws.
 */
bool
computeWith(KernelKind kind, Precision p, const CsrMatrix& a,
            const DenseMatrix& b, DenseMatrix& c, std::string* note)
{
    std::unique_ptr<SpmmKernel> kernel = makeKernelAt(kind, p);
    if (!kernel) {
        if (note)
            *note = "combo not expressible";
        return false;
    }
    const Refusal r = kernel->prepare(a);
    if (!r.ok()) {
        if (note)
            *note = "refused: " + r.reason;
        return false;
    }
    c = DenseMatrix(a.rows(), b.cols());
    kernel->compute(b, c);
    return true;
}

/** Per-row tolerance bound shared by the metamorphic checks. */
std::vector<double>
rowTolerances(const CsrMatrix& a, Precision p, double max_abs_b,
              double safety)
{
    const double u = unitRoundoff(p);
    std::vector<double> tol(static_cast<size_t>(a.rows()), 0.0);
    for (int64_t r = 0; r < a.rows(); ++r) {
        double abs_sum = 0.0;
        for (int64_t k = a.rowPtr()[r]; k < a.rowPtr()[r + 1]; ++k)
            abs_sum += std::fabs(static_cast<double>(a.values()[k]));
        const int64_t len = a.rowLength(r);
        tol[static_cast<size_t>(r)] =
            safety * (2.0 * u + static_cast<double>(len + 8) * kEps32) *
            abs_sum * max_abs_b;
    }
    return tol;
}

std::vector<int32_t>
invertPermutation(const std::vector<int32_t>& perm)
{
    std::vector<int32_t> inv(perm.size());
    for (size_t i = 0; i < perm.size(); ++i)
        inv[static_cast<size_t>(perm[i])] = static_cast<int32_t>(i);
    return inv;
}

} // namespace

PropertyResult
checkReorderInvariance(const CsrMatrix& a, ReorderMethod method,
                       KernelKind kind, Precision p,
                       int64_t dense_width, uint64_t seed,
                       double tolerance_safety)
{
    if (a.rows() != a.cols())
        return PropertyResult::pass("skipped: non-square");

    const std::vector<int32_t> perm = computeReordering(a, method);
    if (!isPermutation(perm, a.rows())) {
        std::ostringstream os;
        os << reorderMethodName(method)
           << " did not return a permutation of [0, " << a.rows()
           << ")";
        return PropertyResult::fail(os.str());
    }

    const CsrMatrix ap = a.permuteSymmetric(perm);

    // Exact structural round trip through the inverse permutation.
    if (!(ap.permuteSymmetric(invertPermutation(perm)) == a)) {
        std::ostringstream os;
        os << "permuteSymmetric(" << reorderMethodName(method)
           << ") then inverse did not restore the matrix";
        return PropertyResult::fail(os.str());
    }

    const DenseMatrix b = makeDenseOperand(a.cols(), dense_width, seed);
    DenseMatrix bp(b.rows(), b.cols());
    for (int64_t r = 0; r < b.rows(); ++r)
        std::memcpy(bp.row(r), b.row(perm[static_cast<size_t>(r)]),
                    static_cast<size_t>(b.cols()) * sizeof(float));

    std::string note;
    DenseMatrix c1;
    if (!computeWith(kind, p, a, b, c1, &note))
        return PropertyResult::pass(note);
    DenseMatrix c2;
    if (!computeWith(kind, p, ap, bp, c2, &note))
        return PropertyResult::pass(note);

    // c2 row r must match c1 row perm[r].  Tolerance only: relabeling
    // permutes each row's accumulation order.
    double max_abs_b = 0.0;
    for (size_t i = 0; i < b.size(); ++i)
        max_abs_b = std::max(
            max_abs_b, std::fabs(static_cast<double>(b.data()[i])));
    const std::vector<double> tol =
        rowTolerances(ap, p, max_abs_b, tolerance_safety);
    for (int64_t r = 0; r < c2.rows(); ++r) {
        const int64_t src = perm[static_cast<size_t>(r)];
        for (int64_t j = 0; j < c2.cols(); ++j) {
            const double diff = std::fabs(
                static_cast<double>(c2.at(r, j)) - c1.at(src, j));
            if (!(diff <= tol[static_cast<size_t>(r)])) {
                std::ostringstream os;
                os << reorderMethodName(method)
                   << " invariance broken at permuted row " << r
                   << " col " << j << ": |" << c2.at(r, j) << " - "
                   << c1.at(src, j) << "| > "
                   << tol[static_cast<size_t>(r)];
                return PropertyResult::fail(os.str());
            }
        }
    }
    return PropertyResult::pass();
}

PropertyResult
checkLinearity(const CsrMatrix& a, KernelKind kind, Precision p,
               int64_t dense_width, uint64_t seed,
               double tolerance_safety)
{
    const DenseMatrix b1 = makeDenseOperand(a.cols(), dense_width, seed);
    const DenseMatrix b2 =
        makeDenseOperand(a.cols(), dense_width, seed ^ 0x5ca1ab1eull);
    DenseMatrix bsum(b1.rows(), b1.cols());
    for (size_t i = 0; i < bsum.size(); ++i)
        bsum.data()[i] = b1.data()[i] + b2.data()[i];

    std::string note;
    DenseMatrix c1, c2, csum;
    if (!computeWith(kind, p, a, b1, c1, &note) ||
        !computeWith(kind, p, a, b2, c2, &note) ||
        !computeWith(kind, p, a, bsum, csum, &note))
        return PropertyResult::pass(note);

    // Three rounded computations stack: budget them jointly, with
    // |B| bounded by the sum's magnitude (<= 2).
    const std::vector<double> tol =
        rowTolerances(a, p, 2.0, 3.0 * tolerance_safety);
    for (int64_t r = 0; r < csum.rows(); ++r)
        for (int64_t j = 0; j < csum.cols(); ++j) {
            const double want = static_cast<double>(c1.at(r, j)) +
                                static_cast<double>(c2.at(r, j));
            const double diff =
                std::fabs(static_cast<double>(csum.at(r, j)) - want);
            if (!(diff <= tol[static_cast<size_t>(r)])) {
                std::ostringstream os;
                os << "linearity broken at (" << r << "," << j
                   << "): A(B1+B2)=" << csum.at(r, j)
                   << " vs AB1+AB2=" << want << ", tol "
                   << tol[static_cast<size_t>(r)];
                return PropertyResult::fail(os.str());
            }
        }
    return PropertyResult::pass();
}

PropertyResult
checkScalarScaling(const CsrMatrix& a, KernelKind kind, Precision p,
                   int64_t dense_width, uint64_t seed)
{
    const DenseMatrix b = makeDenseOperand(a.cols(), dense_width, seed);
    DenseMatrix b2x(b.rows(), b.cols());
    for (size_t i = 0; i < b.size(); ++i)
        b2x.data()[i] = 2.0f * b.data()[i];

    std::string note;
    DenseMatrix c, c2x;
    if (!computeWith(kind, p, a, b, c, &note) ||
        !computeWith(kind, p, a, b2x, c2x, &note))
        return PropertyResult::pass(note);

    DenseMatrix scaled(c.rows(), c.cols());
    for (size_t i = 0; i < c.size(); ++i)
        scaled.data()[i] = 2.0f * c.data()[i];

    if (kernelTraits(kind).bitExactRounded) {
        if (!bitEqual(c2x, scaled))
            return PropertyResult::fail(
                "A(2B) is not bit-identical to 2*(A*B)");
        return PropertyResult::pass();
    }
    // SparTA-class kernels: same bound as the oracle, doubled |B|.
    const std::vector<double> tol = rowTolerances(a, p, 2.0, 16.0);
    for (int64_t r = 0; r < c2x.rows(); ++r)
        for (int64_t j = 0; j < c2x.cols(); ++j)
            if (!(std::fabs(static_cast<double>(c2x.at(r, j)) -
                            scaled.at(r, j)) <=
                  tol[static_cast<size_t>(r)]))
                return PropertyResult::fail(
                    "A(2B) deviates from 2*(A*B) beyond tolerance");
    return PropertyResult::pass();
}

PropertyResult
checkSerializeRoundTrip(const CsrMatrix& a, KernelKind kind,
                        Precision p, int64_t dense_width,
                        uint64_t seed)
{
    // CSR binary round trip is exact.
    std::stringstream csr_io;
    saveCsr(csr_io, a);
    const CsrMatrix reloaded = loadCsr(csr_io);
    if (!(reloaded == a))
        return PropertyResult::fail(
            "CSR save -> load did not reproduce the matrix");

    // ME-TCF round trip: serialize the condensed format, reload, and
    // the expansion must land back on the original CSR exactly.
    const MeTcfMatrix me = MeTcfMatrix::build(a);
    std::stringstream me_io;
    saveMeTcf(me_io, me);
    const MeTcfMatrix me2 = loadMeTcf(me_io);
    me2.validate();
    if (!(me2.toCsr() == a))
        return PropertyResult::fail(
            "ME-TCF save -> load -> toCsr did not reproduce the "
            "matrix");

    // Compute on the reloaded CSR: bit-identical to the original.
    const DenseMatrix b = makeDenseOperand(a.cols(), dense_width, seed);
    std::string note;
    DenseMatrix c1, c2;
    if (!computeWith(kind, p, a, b, c1, &note))
        return PropertyResult::pass(note);
    if (!computeWith(kind, p, reloaded, b, c2, &note))
        return PropertyResult::fail(
            "kernel accepted the original but not the reloaded "
            "matrix: " + note);
    if (!bitEqual(c1, c2))
        return PropertyResult::fail(
            "compute on reloaded CSR differs bitwise from the "
            "original");
    return PropertyResult::pass();
}

} // namespace testing
} // namespace dtc
